// Command grcalint runs the project's custom analyzers (internal/lint)
// over the module: the clock discipline (nakedtime, utctime), stdout
// hygiene (noprint), and deterministic-output (mapiter) checks that
// ordinary go vet cannot express. It is a multichecker in the
// golang.org/x/tools/go/analysis mold, built on the standard library
// alone.
//
// Usage:
//
//	grcalint [-list] [package ...]
//
// With no arguments every package in the module is checked. Package
// arguments are import paths ("grca/internal/engine") or "./..." for the
// whole module. Exit status is 1 when any diagnostic is reported, 2 on
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"grca/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "module root directory")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fail(err)
	}
	paths := flag.Args()
	if len(paths) == 0 || (len(paths) == 1 && paths[0] == "./...") {
		if paths, err = loader.Walk(); err != nil {
			fail(err)
		}
	}

	analyzers := lint.Analyzers()
	found := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		for _, d := range lint.RunAll(pkg.Pass(loader.Fset), analyzers) {
			found++
			fmt.Println(d)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "grcalint: %d diagnostics\n", found)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "grcalint: %v\n", err)
	os.Exit(2)
}
