// Command grcalint runs the project's custom analyzers (internal/lint)
// over the module: the clock discipline (nakedtime, utctime), stdout
// hygiene (noprint), deterministic-output (mapiter) checks, and the
// concurrency-correctness suite (lockorder, deferunlock, atomicmix,
// hookreentry, goroutinelife) that ordinary go vet cannot express. It is
// a multichecker in the golang.org/x/tools/go/analysis mold, built on the
// standard library alone.
//
// Usage:
//
//	grcalint [-list] [-json] [-allow file] [package ...]
//
// With no arguments every package in the module is checked. Package
// arguments are import paths ("grca/internal/engine") or "./..." for the
// whole module. -json emits the findings as the same JSON envelope `grca
// vet -json` uses, so downstream tooling can merge the two streams.
// -allow overrides the embedded lock-order allowlist
// (internal/lint/lockorder.allow). Exit status is 1 when any diagnostic
// is reported, 2 on load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"grca/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "module root directory")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array (grca vet envelope)")
	allowPath := flag.String("allow", "", "lock-order allowlist file (default: embedded lockorder.allow)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fail(err)
	}
	paths := flag.Args()
	if len(paths) == 0 || (len(paths) == 1 && paths[0] == "./...") {
		if paths, err = loader.Walk(); err != nil {
			fail(err)
		}
	}

	passes := make([]*lint.Pass, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		passes = append(passes, pkg.Pass(loader.Fset))
	}
	prog := lint.NewProgram(passes)
	if *allowPath != "" {
		src, err := os.ReadFile(*allowPath)
		if err != nil {
			fail(err)
		}
		if prog.Allow, err = lint.ParseAllowlist(string(src)); err != nil {
			fail(fmt.Errorf("%s: %v", *allowPath, err))
		}
	}

	diags := lint.RunSuite(prog, lint.Analyzers())
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grcalint: %d diagnostics\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "grcalint: %v\n", err)
	os.Exit(2)
}
