package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func TestRunMiningCommand(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 91, PoPs: 2, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 10 * 24 * time.Hour, BGPFlapIncidents: 150,
		ProvisioningBugIncidents: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := platform.Save(dir, platform.BundleFromDataset(d)); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error { return run(dir, false, 10) })
	if !strings.Contains(out, "workflow:provision-customer") {
		t.Errorf("prefiltered mining output missing provisioning series:\n%s", out)
	}
	if !strings.Contains(out, "CPU-related BGP flaps") {
		t.Errorf("output missing prefilter label:\n%s", out)
	}
	outAll := captureStdout(t, func() error { return run(dir, true, 10) })
	if !strings.Contains(outAll, "all BGP flaps") {
		t.Errorf("unfiltered output wrong:\n%s", outAll)
	}
	if err := run(t.TempDir(), false, 5); err == nil {
		t.Error("empty bundle dir accepted")
	}
}

func TestCPURelatedPredicate(t *testing.T) {
	node := func(name string, children ...*engine.Node) *engine.Node {
		return &engine.Node{Event: name, Children: children}
	}
	mk := func(root *engine.Node) engine.Diagnosis {
		return engine.Diagnosis{Root: root}
	}
	// HTE + CPU, no link: selected.
	d := mk(node(event.EBGPFlap, node(event.EBGPHoldTimerExpired, node(event.CPUHighSpike))))
	if !cpuRelated(d) {
		t.Error("cpu-related flap not selected")
	}
	// HTE + CPU + interface flap: link evidence excludes it.
	d = mk(node(event.EBGPFlap,
		node(event.EBGPHoldTimerExpired, node(event.CPUHighSpike)),
		node(event.InterfaceFlap)))
	if cpuRelated(d) {
		t.Error("link-explained flap selected")
	}
	// HTE alone: no CPU signature.
	d = mk(node(event.EBGPFlap, node(event.EBGPHoldTimerExpired)))
	if cpuRelated(d) {
		t.Error("HTE-only flap selected")
	}
}

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outc <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	if runErr != nil {
		t.Fatalf("run failed: %v\n%s", runErr, out)
	}
	return out
}
