// Command grca-nice runs the statistical rule-mining loop of paper §IV-B
// (Fig. 7): it diagnoses every BGP flap with the rule-based engine,
// prefilters the CPU-related flaps — those explained by a hold-timer
// expiry plus a high-CPU signature but no link evidence — and tests their
// time series against every candidate signature series (syslog mnemonics
// and workflow actions) with the NICE circular permutation test.
//
// Run with -all to skip the prefiltering and observe the paper's contrast:
// against the full flap population, the provisioning correlation sinks
// into the noise.
//
// Usage:
//
//	grca-nice -data /tmp/corpus [-all] [-top 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
)

func main() {
	var (
		data = flag.String("data", "", "dataset bundle directory (required)")
		all  = flag.Bool("all", false, "correlate ALL flaps instead of the CPU-related subset")
		top  = flag.Int("top", 15, "show the top N candidate series")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "grca-nice: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *all, *top); err != nil {
		fmt.Fprintf(os.Stderr, "grca-nice: %v\n", err)
		os.Exit(1)
	}
}

func run(data string, all bool, top int) error {
	bundle, err := platform.Load(data)
	if err != nil {
		return err
	}
	// Generic signature series ("syslog:*", "workflow:*") are the
	// candidate population of the study.
	sys, err := bundle.Assemble(platform.Options{GenericSignatures: true})
	if err != nil {
		return err
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		return err
	}
	ds := eng.DiagnoseAll()

	subset := ds
	label := "all BGP flaps"
	if !all {
		subset = browser.Filter(ds, cpuRelated)
		label = "CPU-related BGP flaps (prefiltered by the RCA engine)"
	}
	fmt.Printf("%d of %d flaps selected: %s\n", len(subset), len(ds), label)
	if len(subset) == 0 {
		return fmt.Errorf("no symptoms selected")
	}

	var symptoms []*event.Instance
	for _, d := range subset {
		symptoms = append(symptoms, d.Symptom)
	}
	m := browser.Miner{Store: sys.Store, Bin: time.Minute, Smooth: 5}
	candidates := m.CandidateSeries("syslog:", "workflow:")
	fmt.Printf("testing %d candidate series over %v\n", len(candidates), bundle.Duration)

	results, err := m.Mine(symptoms, candidates, bundle.Start, bundle.Start.Add(bundle.Duration))
	if err != nil {
		return err
	}
	sig := browser.Significant(results)
	fmt.Printf("%d series significantly correlated (score > 3σ under circular permutation)\n\n", len(sig))
	fmt.Printf("%-40s %10s %10s %12s\n", "series", "corr", "score", "significant")
	for i, r := range results {
		if i >= top {
			break
		}
		fmt.Printf("%-40s %10.4f %10.2f %12v\n", r.Series, r.Result.Corr, r.Result.Score, r.Result.Significant)
	}
	return nil
}

// cpuRelated implements the paper's prefilter: flaps associated with a
// hold-timer expiry and a high-CPU signature, with no link-failure
// evidence that could explain them.
func cpuRelated(d engine.Diagnosis) bool {
	hasHTE, hasCPU, hasLink := false, false, false
	d.Root.Walk(func(n *engine.Node) {
		switch n.Event {
		case event.EBGPHoldTimerExpired:
			hasHTE = true
		case event.CPUHighSpike, event.CPUHighAverage:
			hasCPU = true
		case event.InterfaceFlap, event.LineProtoFlap,
			event.SONETRestoration, event.OpticalFast, event.OpticalRegular:
			hasLink = true
		}
	})
	return hasHTE && hasCPU && !hasLink
}
