// Command grca-sim generates a synthetic ISP operational dataset — the
// configuration archive, every raw monitoring feed, and the ground truth —
// and writes it as a bundle directory consumable by cmd/grca and
// cmd/grca-nice.
//
// Usage:
//
//	grca-sim -out /tmp/corpus -days 7 -bgp 600 -cdn 300 -pim 300
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		seed     = flag.Int64("seed", 1, "random seed")
		pops     = flag.Int("pops", 4, "number of PoPs")
		pers     = flag.Int("pers", 2, "provider-edge routers per PoP")
		sessions = flag.Int("sessions", 12, "customer eBGP sessions per PER")
		days     = flag.Int("days", 7, "observation window in days")
		bgp      = flag.Int("bgp", 600, "BGP-flap study incidents (0 disables)")
		cdnN     = flag.Int("cdn", 300, "CDN study incidents (0 disables)")
		pimN     = flag.Int("pim", 300, "PIM study incidents (0 disables)")
		bbone    = flag.Int("backbone", 0, "in-network loss study incidents (0 disables)")
		linecard = flag.Bool("linecard", false, "inject the §IV-C line-card crash")
		provbug  = flag.Int("provbug", 0, "inject N §IV-B provisioning-bug incidents")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "grca-sim: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := simnet.Config{
		Seed:                     *seed,
		PoPs:                     *pops,
		PERsPerPoP:               *pers,
		SessionsPerPER:           *sessions,
		Duration:                 time.Duration(*days) * 24 * time.Hour,
		BGPFlapIncidents:         *bgp,
		CDNIncidents:             *cdnN,
		PIMIncidents:             *pimN,
		BackboneIncidents:        *bbone,
		LineCardCrash:            *linecard,
		ProvisioningBugIncidents: *provbug,
	}
	d, err := simnet.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grca-sim: %v\n", err)
		os.Exit(1)
	}
	if err := platform.Save(*out, platform.BundleFromDataset(d)); err != nil {
		fmt.Fprintf(os.Stderr, "grca-sim: %v\n", err)
		os.Exit(1)
	}

	lines := 0
	for _, feed := range d.Feeds {
		for _, c := range feed {
			if c == '\n' {
				lines++
			}
		}
	}
	fmt.Printf("wrote %s: %d routers, %d sessions, %d MVPNs, %d raw records, %d ground-truth incidents\n",
		*out, len(d.Topo.Routers), len(d.Sessions), len(d.MVPNs), lines, len(d.Truth))
	for _, study := range []string{"bgp", "cdn", "pim", "backbone"} {
		if b := d.TruthBreakdown(study); b != nil {
			fmt.Printf("  %s study: %d truth kinds\n", study, len(b))
		}
	}
}
