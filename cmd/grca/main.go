// Command grca is the G-RCA platform front end. It runs the packaged RCA
// applications over a dataset bundle, prints root-cause breakdown tables
// in the paper's format, lists the Knowledge Library, trends events over
// time, and drills into individual diagnoses.
//
// Usage:
//
//	grca run bgpflap -data /tmp/corpus [-score] [-trend 24h] [-show 3]
//	grca run cdn     -data /tmp/corpus [-trace] [-slowest 3] [-metrics-addr :6060]
//	grca run pim     -data /tmp/corpus
//	grca stats bgpflap -data /tmp/corpus # pipeline metrics after a batch + streaming pass
//	grca stats -addr http://127.0.0.1:8080  # metrics from a running grca serve
//	grca events
//	grca rules
//	grca bayes -data /tmp/corpus        # §IV-C group inference
//	grca serve -data-dir /var/lib/grca -bundle /tmp/corpus  # durable HTTP diagnosis service
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/browser"
	"grca/internal/collector"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/realtime"
	"grca/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runApp(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "events":
		err = listEvents()
	case "rules":
		err = listRules()
	case "bayes":
		err = runBayes(os.Args[2:])
	case "check":
		err = runCheck(os.Args[2:])
	case "vet":
		err = runVet(os.Args[2:])
	case "graph":
		err = runGraph(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "promote":
		err = runPromote(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "grca: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  grca run <bgpflap|cdn|pim|backbone> -data DIR [-score] [-trend DUR] [-show N] [-trace] [-slowest N] [-metrics-addr ADDR]
  grca stats <bgpflap|cdn|pim|backbone> -data DIR  # pipeline metrics after a batch + streaming pass
  grca stats -addr URL                   # /v1/stats from a running grca serve
  grca events
  grca rules
  grca bayes -data DIR
  grca check <bgpflap|cdn|pim|backbone> -data DIR
  grca vet [spec.grca ...] [-json] [-validate -data DIR]  # static spec/graph validation; no args vets the built-ins
  grca graph <bgpflap|cdn|pim|backbone>            # Graphviz DOT of the diagnosis graph
  grca report <bgpflap|cdn|pim|backbone> -data DIR # full SQM report (breakdown, trend, drill-downs)
  grca chaos -data DIR [-seed N] [-faults LIST] [-apps LIST] [-o FILE]  # fault-injection accuracy matrix (JSON)
  grca serve -data-dir DIR -bundle DIR [-addr :8080] [-fsync batch|interval] [-snapshot-every N] [-retention DUR] [-max-inflight N] [-replica-of URL]
  grca promote -addr URL                 # flip a running replica into a standalone primary`)
}

type app struct {
	study   string
	display func(string) string
	engine  func(store.Store, *netstate.View) (*engine.Engine, error)
	title   string
}

var apps = map[string]app{
	"bgpflap":  {"bgp", bgpflap.DisplayLabel, bgpflap.NewEngine, "Root Cause Breakdown of BGP Flaps (cf. Table IV)"},
	"cdn":      {"cdn", cdn.DisplayLabel, cdn.NewEngine, "Root Cause Breakdown of End-to-End RTT Degradations (cf. Table VI)"},
	"pim":      {"pim", pim.DisplayLabel, pim.NewEngine, "Root Cause Breakdown of PIM Adjacency Losses (cf. Table VIII)"},
	"backbone": {"backbone", backbone.DisplayLabel, backbone.NewEngine, "Root Cause Breakdown of In-Network Packet Loss (§I scenario)"},
}

func runApp(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: application name required")
	}
	a, ok := apps[args[0]]
	if !ok {
		return fmt.Errorf("run: unknown application %q", args[0])
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required)")
	score := fs.Bool("score", false, "score diagnoses against ground truth when available")
	trend := fs.Duration("trend", 0, "print a symptom trend with the given bin width")
	show := fs.Int("show", 0, "print the first N full diagnoses (evidence chains)")
	trace := fs.Bool("trace", false, "record per-stage diagnosis traces and print the slowest ones")
	slowest := fs.Int("slowest", 3, "with -trace, how many of the slowest diagnoses to print")
	metricsAddr := fs.String("metrics-addr", "", "serve expvar/pprof on this address (e.g. :6060) while running")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("run: -data is required")
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*metricsAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics: expvar at http://%s/debug/vars, pprof at http://%s/debug/pprof/\n", bound, bound)
	}

	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	sys, err := bundle.Assemble(platform.Options{})
	if err != nil {
		return err
	}
	warnDrops(sys.Collector)
	eng, err := a.engine(sys.Store, sys.View)
	if err != nil {
		return err
	}
	eng.Tracing = *trace
	began := time.Now()
	ds := eng.DiagnoseAll()
	elapsed := time.Since(began)

	rows := browser.Breakdown(ds, a.display)
	if err := browser.WriteTable(os.Stdout, a.title, rows); err != nil {
		return err
	}
	per := time.Duration(0)
	if len(ds) > 0 {
		per = elapsed / time.Duration(len(ds))
	}
	fmt.Printf("\n%d symptoms diagnosed in %v (%v/event)\n", len(ds), elapsed.Round(time.Millisecond), per.Round(time.Microsecond))

	if *score && len(bundle.Truth) > 0 {
		s := platform.ScoreDiagnoses(bundle.Truth, a.study, ds, 10*time.Minute)
		fmt.Printf("ground truth: %d/%d correct (%.1f%%), %d unmatched\n",
			s.Correct, s.Total, 100*s.Accuracy(), s.Unmatched)
	}
	if *trend > 0 && len(ds) > 0 {
		printTrend(sys.Store, eng.Graph.Root, bundle.Start, bundle.Start.Add(bundle.Duration), *trend)
	}
	for i := 0; i < *show && i < len(ds); i++ {
		printDiagnosis(ds[i])
	}
	if *trace {
		printSlowest(ds, *slowest)
	}
	return nil
}

// warnDrops surfaces the collector's per-source parse failures: a nonzero
// drop rate means the diagnosis below ran on an incomplete evidence base,
// and a quarantined source means a whole feed tail went unread.
func warnDrops(c *collector.Collector) {
	sum := c.Summary()
	if sum.Totals.Malformed == 0 && len(sum.Quarantined()) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "warning: %d/%d raw lines malformed and skipped (%.2f%% drop rate)\n",
		sum.Totals.Malformed, sum.Totals.Lines, 100*sum.Totals.DropRate())
	for _, s := range sum.Sources {
		if s.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "  %-10s %d/%d lines dropped (%.2f%%)\n",
				s.Source, s.Malformed, s.Lines, 100*s.DropRate())
		}
		if s.Quarantined() {
			fmt.Fprintf(os.Stderr, "  %-10s QUARANTINED: %s\n", s.Source, s.Quarantine)
		}
	}
}

// printSlowest renders the per-stage traces of the n slowest diagnoses —
// where the paper's per-event latency budget (§III) actually went.
func printSlowest(ds []engine.Diagnosis, n int) {
	slow := append([]engine.Diagnosis(nil), ds...)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].Elapsed > slow[j].Elapsed })
	if n > len(slow) {
		n = len(slow)
	}
	if n <= 0 {
		return
	}
	fmt.Printf("\nSlowest %d diagnoses (per-stage traces):\n", n)
	for _, d := range slow[:n] {
		fmt.Println()
		if err := d.Trace.Write(os.Stdout); err != nil {
			fmt.Printf("  (trace unavailable: %v)\n", err)
		}
	}
}

func printTrend(st store.Store, name string, from, to time.Time, bin time.Duration) {
	fmt.Printf("\nTrend of %q per %v:\n", name, bin)
	for _, p := range browser.Trend(st, name, from, to, bin) {
		fmt.Printf("  %s  %4d  %s\n", p.Start.Format("2006-01-02 15:04"), p.Count, bar(p.Count))
	}
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func printDiagnosis(d engine.Diagnosis) {
	fmt.Printf("\nsymptom %s\n  root cause: %s\n", d.Symptom, d.Label())
	var walk func(n *engine.Node, depth int)
	walk = func(n *engine.Node, depth int) {
		for _, c := range n.Children {
			fmt.Printf("  %*s<- %s (priority %d)\n", depth*2, "", c.Instance, c.Rule.Priority)
			walk(c, depth+1)
		}
	}
	walk(d.Root, 1)
	for _, w := range d.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
}

// runStats exercises the full pipeline over a bundle — batch diagnosis
// plus a streaming replay of the same corpus — and prints the resulting
// metrics registry, giving the operator the numbers behind the paper's
// §III latency claims without attaching a debugger.
func runStats(args []string) error {
	// Remote mode: `grca stats -addr http://host:port` fetches /v1/stats
	// from a running `grca serve` instead of assembling a local bundle,
	// so a live service can be inspected without shell access to it.
	if len(args) >= 1 && strings.HasPrefix(args[0], "-") {
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		addr := fs.String("addr", "", "base URL of a running grca serve (e.g. http://127.0.0.1:8080)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *addr == "" {
			return fmt.Errorf("stats: application name or -addr required")
		}
		return remoteStats(*addr)
	}
	if len(args) < 1 {
		return fmt.Errorf("stats: application name or -addr required")
	}
	a, ok := apps[args[0]]
	if !ok {
		return fmt.Errorf("stats: unknown application %q", args[0])
	}
	build := appBuilders[args[0]]
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required)")
	stream := fs.Bool("stream", true, "also replay the corpus through the streaming processor")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("stats: -data is required")
	}
	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	sys, err := bundle.Assemble(platform.Options{})
	if err != nil {
		return err
	}
	warnDrops(sys.Collector)
	eng, err := a.engine(sys.Store, sys.View)
	if err != nil {
		return err
	}
	began := time.Now()
	ds := eng.DiagnoseAll()
	batch := time.Since(began)

	streamed, lateArrivals := 0, 0
	if *stream {
		// Replay the corpus in availability order so the realtime.* gauges
		// and grace-wait histogram reflect this dataset too.
		_, g, err := build()
		if err != nil {
			return err
		}
		proc := realtime.New(sys.View, g, realtime.GraceFor(g, 15*time.Minute))
		var ins []*event.Instance
		for _, name := range sys.Store.Names() {
			ins = append(ins, sys.Store.All(name)...)
		}
		sort.SliceStable(ins, func(i, j int) bool { return ins[i].End.Before(ins[j].End) })
		for _, in := range ins {
			if _, late := proc.Observe(*in); !late {
				streamed++
			} else {
				lateArrivals++
			}
		}
		proc.Flush()
	}

	fmt.Printf("%s: %d events in store, %d symptoms diagnosed in %v batch",
		args[0], sys.Store.Len(), len(ds), batch.Round(time.Millisecond))
	if *stream {
		fmt.Printf("; %d events replayed through the streaming processor", streamed)
		if lateArrivals > 0 {
			fmt.Printf(" (%d late)", lateArrivals)
		}
	}
	fmt.Print("\n\n")
	return obs.WriteText(os.Stdout, obs.Default().Snapshot())
}

// remoteStats renders a running server's /v1/stats in the same text
// format the local stats path uses.
func remoteStats(base string) error {
	base = strings.TrimRight(base, "/")
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s/v1/stats returned %s", base, resp.Status)
	}
	var body struct {
		Phase   string       `json:"phase"`
		Events  int          `json:"events"`
		Metrics obs.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("stats: decoding /v1/stats: %v", err)
	}
	fmt.Printf("%s: phase %s, %d events in store\n\n", base, body.Phase, body.Events)
	return obs.WriteText(os.Stdout, body.Metrics)
}

func listEvents() error {
	lib := event.Knowledge()
	fmt.Println("G-RCA Knowledge Library: common event definitions (Table I)")
	fmt.Println()
	for _, name := range lib.Names() {
		d, _ := lib.Get(name)
		fmt.Printf("%-46s %-20s %s\n", d.Name, d.LocType, d.Source)
		fmt.Printf("    %s\n", d.Description)
	}
	return nil
}

func listRules() error {
	cat := dgraph.Knowledge()
	fmt.Println("G-RCA Knowledge Library: common diagnosis rules (Table II)")
	fmt.Println()
	rules := cat.All()
	sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
	for _, r := range rules {
		fmt.Printf("%-46s <- %-46s join %-14s sym(%s) diag(%s)\n",
			r.Symptom, r.Diagnostic, r.JoinLevel, r.Temporal.Symptom, r.Temporal.Diagnostic)
	}
	fmt.Printf("\n%d rules\n", len(rules))
	return nil
}

// runBayes reproduces the §IV-C study: group flaps by line card and run
// joint Bayesian inference, comparing against the rule-based verdicts.
func runBayes(args []string) error {
	fs := flag.NewFlagSet("bayes", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required)")
	window := fs.Duration("window", 3*time.Minute, "grouping window")
	minMulti := fs.Int("min-multi", 4, "flaps per card+window to count as a multi-flap group")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("bayes: -data is required")
	}
	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	sys, err := bundle.Assemble(platform.Options{})
	if err != nil {
		return err
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		return err
	}
	ds := eng.DiagnoseAll()
	cfg, err := bgpflap.BayesConfig()
	if err != nil {
		return err
	}
	groups := bgpflap.GroupByCard(sys.Topo, ds, *window)
	disagreements := 0
	for _, g := range groups {
		res, err := bgpflap.ClassifyGroup(cfg, g, *minMulti)
		if err != nil {
			return err
		}
		ruleVerdicts := map[string]bool{}
		for _, d := range g.Diagnoses {
			ruleVerdicts[d.Primary()] = true
		}
		if res.Best == bgpflap.ClassLineCard {
			disagreements++
			fmt.Printf("card %-16s %s: %d flaps within %v\n  Bayesian: %s | rule-based verdicts: %v\n",
				g.Card, g.Start.Format(time.DateTime), len(g.Diagnoses), *window, res.Best, keys(ruleVerdicts))
		}
	}
	fmt.Printf("\n%d flaps in %d card groups; %d groups flagged as line-card issues\n",
		len(ds), len(groups), disagreements)
	return nil
}

// appBuilders maps application names to their Build functions.
var appBuilders = map[string]func() (*event.Library, *dgraph.Graph, error){
	"bgpflap":  bgpflap.Build,
	"cdn":      cdn.Build,
	"pim":      pim.Build,
	"backbone": backbone.Build,
}

// runGraph emits the application's diagnosis graph as Graphviz DOT — a
// rendering of the paper's Figs. 4, 5, or 6.
func runGraph(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("graph: application name required")
	}
	build, ok := appBuilders[args[0]]
	if !ok {
		return fmt.Errorf("graph: unknown application %q", args[0])
	}
	lib, g, err := build()
	if err != nil {
		return err
	}
	// Application-specific events are the ones absent from the shared
	// Knowledge Library.
	base := event.Knowledge()
	appSpecific := map[string]bool{}
	for _, name := range lib.Names() {
		if _, inBase := base.Get(name); !inBase {
			appSpecific[name] = true
		}
	}
	fmt.Print(g.DOT(args[0], appSpecific))
	return nil
}

// runReport renders the full SQM report for an application over a bundle.
func runReport(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("report: application name required")
	}
	a, ok := apps[args[0]]
	if !ok {
		return fmt.Errorf("report: unknown application %q", args[0])
	}
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required)")
	trendBin := fs.Duration("trend", 24*time.Hour, "trend bucket width")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("report: -data is required")
	}
	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	sys, err := bundle.Assemble(platform.Options{})
	if err != nil {
		return err
	}
	eng, err := a.engine(sys.Store, sys.View)
	if err != nil {
		return err
	}
	ds := eng.DiagnoseAll()
	return browser.WriteReport(os.Stdout, sys.Store, ds, browser.ReportOptions{
		Title:    a.title,
		Display:  a.display,
		TrendBin: *trendBin,
		View:     sys.View,
		Metrics:  obs.Default(),
	})
}

// runCheck validates every diagnosis rule of an application against the
// dataset with the Correlation Tester (§II-E): rules whose symptom and
// diagnostic series are not statistically correlated are flagged.
func runCheck(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("check: application name required")
	}
	build, ok := appBuilders[args[0]]
	if !ok {
		return fmt.Errorf("check: unknown application %q", args[0])
	}
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("check: -data is required")
	}
	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	sys, err := bundle.Assemble(platform.Options{})
	if err != nil {
		return err
	}
	_, g, err := build()
	if err != nil {
		return err
	}
	m := browser.Miner{Store: sys.Store}
	verdicts := m.ValidateGraph(g, bundle.Start, bundle.Start.Add(bundle.Duration))
	pass, fail, skip := 0, 0, 0
	for _, v := range verdicts {
		switch {
		case v.Err != nil:
			skip++
			fmt.Printf("SKIP  %-60s (%v)\n", v.Rule.Key(), v.Err)
		case v.Result.Significant:
			pass++
			fmt.Printf("PASS  %-60s score %6.2f\n", v.Rule.Key(), v.Result.Score)
		default:
			fail++
			fmt.Printf("FAIL  %-60s score %6.2f\n", v.Rule.Key(), v.Result.Score)
		}
	}
	fmt.Printf("\n%d rules: %d pass, %d fail, %d untestable on this data\n", len(verdicts), pass, fail, skip)
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
