package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grca/internal/simnet"
)

func TestChaosCommandDeterministicReport(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 61, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 6,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	args := []string{"-data", dir, "-seed", "5", "-apps", "bgpflap", "-faults", "duplicate,truncate"}
	run := func(out string) string {
		t.Helper()
		if err := runChaos(append(args, "-o", out)); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	r1 := run(filepath.Join(t.TempDir(), "a.json"))
	r2 := run(filepath.Join(t.TempDir(), "b.json"))
	if r1 != r2 {
		t.Fatal("chaos report not byte-identical across two runs of the same seed")
	}

	var rep struct {
		Seed      int64
		Clean     []struct{ App string }
		Scenarios []struct{ Fault string }
	}
	if err := json.Unmarshal([]byte(r1), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Seed != 5 || len(rep.Clean) != 1 || rep.Clean[0].App != "bgpflap" || len(rep.Scenarios) != 2 {
		t.Fatalf("unexpected report shape: %s", r1[:200])
	}

	out := capture(t, func() error { return runChaos(args) })
	if !strings.Contains(out, "\"Fault\": \"duplicate\"") {
		t.Fatalf("stdout report missing duplicate scenario:\n%s", out)
	}
}

func TestChaosCommandRejectsBadInput(t *testing.T) {
	if err := runChaos([]string{}); err == nil {
		t.Fatal("missing -data not rejected")
	}
	dir := writeBundle(t, simnet.Config{
		Seed: 62, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 4,
		Duration: 24 * time.Hour, BGPFlapIncidents: 5,
	})
	if err := runChaos([]string{"-data", dir, "-faults", "meteor"}); err == nil {
		t.Fatal("unknown fault class not rejected")
	}
	if err := runChaos([]string{"-data", dir, "-apps", "nope"}); err == nil {
		t.Fatal("unknown app not rejected")
	}
}
