package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grca/internal/chaos"
	"grca/internal/platform"
)

// runChaos executes the fault-injection scenario matrix over a dataset
// bundle and emits the deterministic JSON accuracy report.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	data := fs.String("data", "", "dataset bundle directory (required; must carry ground truth)")
	seed := fs.Int64("seed", 1, "injection seed; the same seed reproduces the report byte for byte")
	faults := fs.String("faults", "", "comma-separated fault classes (default all: "+faultList()+")")
	appsFlag := fs.String("apps", "", "comma-separated applications (default all)")
	tolerance := fs.Duration("tolerance", 10*time.Minute, "truth-matching window")
	maxPending := fs.Int("max-pending", 256, "streaming pending-queue bound in the delay scenario (0 = unbounded)")
	out := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("chaos: -data is required")
	}

	bundle, err := platform.Load(*data)
	if err != nil {
		return err
	}
	if len(bundle.Truth) == 0 {
		return fmt.Errorf("chaos: bundle %s carries no ground truth; accuracy cannot be scored", *data)
	}

	opts := chaos.Options{Tolerance: *tolerance, MaxPending: *maxPending}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	if *faults != "" {
		known := map[chaos.Fault]bool{}
		for _, f := range chaos.AllFaults() {
			known[f] = true
		}
		for _, name := range strings.Split(*faults, ",") {
			f := chaos.Fault(strings.TrimSpace(name))
			if !known[f] {
				return fmt.Errorf("chaos: unknown fault %q (have %s)", name, faultList())
			}
			opts.Faults = append(opts.Faults, f)
		}
	}

	rep, err := chaos.RunMatrix(bundle, chaos.Config{Seed: *seed}, opts)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

func faultList() string {
	var names []string
	for _, f := range chaos.AllFaults() {
		names = append(names, string(f))
	}
	return strings.Join(names, ",")
}
