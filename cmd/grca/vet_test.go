package main

import (
	"path/filepath"
	"testing"
)

// TestRunVetBuiltinsClean pins the CI contract: vetting the compiled-in
// specs and catalogue succeeds (info findings do not fail the run).
func TestRunVetBuiltinsClean(t *testing.T) {
	if err := runVet(nil); err != nil {
		t.Errorf("vet over builtins failed: %v", err)
	}
}

// TestRunVetBrokenSpecFails pins the other half: a spec with an
// error-level defect makes runVet return an error, which main turns into
// a non-zero exit.
func TestRunVetBrokenSpecFails(t *testing.T) {
	broken := filepath.Join("..", "..", "internal", "grcavet", "testdata", "graph-cycle.grca")
	if err := runVet([]string{broken}); err == nil {
		t.Error("vet accepted a spec with a causal cycle")
	}
}

// TestRunVetExampleSpecs vets the on-disk copies of the specs.
func TestRunVetExampleSpecs(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.grca"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no example specs: %v", err)
	}
	if err := runVet(specs); err != nil {
		t.Errorf("vet over example specs failed: %v", err)
	}
}
