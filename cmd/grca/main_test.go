package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grca/internal/platform"
	"grca/internal/simnet"
)

// writeBundle generates a small corpus on disk for CLI tests.
func writeBundle(t *testing.T, cfg simnet.Config) string {
	t.Helper()
	d, err := simnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := platform.Save(dir, platform.BundleFromDataset(d)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outc <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput: %s", runErr, out)
	}
	return out
}

func TestRunBGPFlapCommand(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 61, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 6,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	out := capture(t, func() error {
		return runApp([]string{"bgpflap", "-data", dir, "-score", "-show", "1"})
	})
	for _, want := range []string{"Root Cause Breakdown of BGP Flaps", "symptoms diagnosed", "ground truth:", "root cause:"} {
		if !containsStr(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFlag(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 61, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 6,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	out := capture(t, func() error {
		return runApp([]string{"bgpflap", "-data", dir, "-trace", "-slowest", "2"})
	})
	for _, want := range []string{"Slowest 2 diagnoses", "diagnose ", "rule ", "reason"} {
		if !containsStr(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsCommand(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 61, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 6,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	out := capture(t, func() error {
		return runStats([]string{"bgpflap", "-data", dir})
	})
	for _, want := range []string{
		"symptoms diagnosed",
		"streaming processor",
		"collector.parsed",
		"store.queries",
		"engine.diagnose.seconds",
		"realtime.diagnosed",
		"p95",
	} {
		if !containsStr(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	if err := runStats(nil); err == nil {
		t.Error("stats without app accepted")
	}
	if err := runStats([]string{"bgpflap"}); err == nil {
		t.Error("stats without -data accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := runApp(nil); err == nil {
		t.Error("missing app accepted")
	}
	if err := runApp([]string{"nope", "-data", "x"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := runApp([]string{"bgpflap"}); err == nil {
		t.Error("missing -data accepted")
	}
	if err := runApp([]string{"bgpflap", "-data", t.TempDir()}); err == nil {
		t.Error("empty bundle dir accepted")
	}
	if err := runBayes(nil); err == nil {
		t.Error("bayes without -data accepted")
	}
	if err := runCheck(nil); err == nil {
		t.Error("check without app accepted")
	}
	if err := runCheck([]string{"nope", "-data", "x"}); err == nil {
		t.Error("check unknown app accepted")
	}
}

func TestListCommands(t *testing.T) {
	out := capture(t, listEvents)
	if !containsStr(out, "Link congestion alarm") || !containsStr(out, "Table I") {
		t.Errorf("events listing:\n%s", out)
	}
	out = capture(t, listRules)
	if !containsStr(out, "55 rules") {
		t.Errorf("rules listing:\n%s", out)
	}
}

func TestCheckCommand(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 67, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 8,
		Duration: 4 * 24 * time.Hour, BGPFlapIncidents: 120,
	})
	out := capture(t, func() error {
		return runCheck([]string{"bgpflap", "-data", dir})
	})
	if !containsStr(out, "PASS") || !containsStr(out, "pass,") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestBayesCommand(t *testing.T) {
	dir := writeBundle(t, simnet.Config{
		Seed: 71, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 10,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 30, LineCardCrash: true,
	})
	out := capture(t, func() error {
		return runBayes([]string{"-data", dir})
	})
	if !containsStr(out, "Line-card Issue") || !containsStr(out, "1 groups flagged") {
		t.Errorf("bayes output:\n%s", out)
	}
}

func containsStr(haystack, needle string) bool { return strings.Contains(haystack, needle) }
