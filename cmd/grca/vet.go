package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"grca/internal/browser"
	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/grcavet"
	"grca/internal/platform"
	"grca/internal/rulespec"
)

// runVet statically validates rulespec files and the assembled diagnosis
// graphs without running any diagnosis. With no file arguments it vets the
// compiled-in application specs and the Table II rule catalogue — the
// pre-release gate CI runs. With -validate and -data it additionally
// chains every clean spec into the Correlation Tester (§II-E).
//
// Exit status: 0 when no error-level findings, 1 otherwise — warnings and
// info findings are reported but do not fail the run.
func runVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	strict := fs.Bool("strict", false, "treat warnings as errors (CI mode)")
	validate := fs.Bool("validate", false, "also correlation-test each clean spec's rules (requires -data)")
	data := fs.String("data", "", "dataset bundle directory for -validate")
	retention := fs.Duration("retention", grcavet.DefaultRetention, "event store retention horizon for window checks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate && *data == "" {
		return fmt.Errorf("vet: -validate requires -data")
	}
	opts := grcavet.Options{Retention: *retention}

	type source struct {
		file string
		src  string
	}
	var sources []source
	if fs.NArg() == 0 {
		for _, b := range grcavet.Builtins() {
			sources = append(sources, source{"builtin:" + b.Name, b.Src})
		}
	} else {
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("vet: %v", err)
			}
			sources = append(sources, source{path, string(src)})
		}
	}

	var findings []grcavet.Finding
	clean := make([]source, 0, len(sources))
	for _, s := range sources {
		fs := grcavet.CheckSource(s.file, s.src, opts)
		findings = append(findings, fs...)
		if grcavet.ErrorCount(fs) == 0 {
			clean = append(clean, s)
		}
	}
	if fs.NArg() == 0 {
		findings = append(findings, grcavet.CheckCatalogue(opts)...)
	}

	if *validate {
		bundle, err := platform.Load(*data)
		if err != nil {
			return err
		}
		sys, err := bundle.Assemble(platform.Options{})
		if err != nil {
			return err
		}
		m := browser.Miner{Store: sys.Store}
		for _, s := range clean {
			findings = append(findings, chainValidate(s.file, s.src, m,
				bundle.Start, bundle.Start.Add(bundle.Duration))...)
		}
	}

	if *asJSON {
		if findings == nil {
			// Match grcalint -json: an empty report is "[]", not "null",
			// so downstream tooling can treat both artifacts uniformly.
			findings = []grcavet.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("%d findings (%d errors) across %d specs\n",
			len(findings), grcavet.ErrorCount(findings), len(sources))
	}
	if n := grcavet.ErrorCount(findings); n > 0 {
		return fmt.Errorf("vet: %d error-level findings", n)
	}
	if *strict && grcavet.MaxSeverity(findings) >= grcavet.Warning {
		return fmt.Errorf("vet: warnings present and -strict set")
	}
	return nil
}

// chainValidate runs a statically-clean spec's assembled graph through the
// Correlation Tester, translating verdicts into vet findings with the
// rule's source line where the spec declares it.
func chainValidate(file, src string, m browser.Miner, from, to time.Time) []grcavet.Finding {
	spec, err := rulespec.Parse(src)
	if err != nil {
		return nil // already reported by the static pass
	}
	_, g, err := spec.Build(event.Knowledge(), dgraph.Knowledge())
	if err != nil {
		return nil
	}
	lines := map[string]int{}
	for _, r := range spec.Rules {
		lines[r.Key()] = r.Line
	}
	for _, u := range spec.Uses {
		lines[u.Symptom+" <- "+u.Diagnostic] = u.Line
	}
	var out []grcavet.Finding
	for _, v := range m.ValidateGraph(g, from, to) {
		f := grcavet.Finding{
			File:    file,
			Line:    lines[v.Rule.Key()],
			Subject: v.Rule.Key(),
		}
		switch {
		case errors.Is(v.Err, browser.ErrUntestable):
			f.Check = grcavet.CheckUntestable
			f.Severity = grcavet.Info
			f.Message = fmt.Sprintf("rule %q could not be correlation-tested: %v", v.Rule.Key(), v.Err)
		case v.Err != nil:
			f.Check = grcavet.CheckUntestable
			f.Severity = grcavet.Warning
			f.Message = fmt.Sprintf("rule %q correlation test failed to run: %v", v.Rule.Key(), v.Err)
		case !v.Result.Significant:
			f.Check = grcavet.CheckUncorrelated
			f.Severity = grcavet.Warning
			f.Message = fmt.Sprintf("rule %q is not statistically correlated on this data (score %.2f)", v.Rule.Key(), v.Result.Score)
		default:
			continue
		}
		f.Level = f.Severity.String()
		out = append(out, f)
	}
	return out
}
