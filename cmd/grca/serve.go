package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/server"
	"grca/internal/wal"
)

// runServe starts the durable diagnosis service: the bundle supplies the
// configuration archive and deployment metadata, feeds arrive over HTTP,
// and everything accepted survives restarts via the WAL + ingest journal
// under -data-dir.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataDir := fs.String("data-dir", "", "durable state directory (WAL, snapshots, journal; required)")
	bundleDir := fs.String("bundle", "", "dataset bundle directory supplying configs + manifest (required)")
	fsync := fs.String("fsync", "batch", "WAL durability policy: batch (sync per commit) or interval")
	fsyncEvery := fs.Duration("fsync-interval", 200*time.Millisecond, "background sync period with -fsync=interval")
	snapshotEvery := fs.Int("snapshot-every", 50000, "snapshot the store every N WAL records (0 = only on shutdown/eviction)")
	retention := fs.Duration("retention", 0, "evict events older than this behind the stream head (0 = keep everything)")
	shards := fs.Int("shards", 1, "store/WAL shard count: independent commit lanes the ingest path parallelizes across (fixed at data-dir creation)")
	maxInflight := fs.Int("max-inflight", 64, "per-shard ingest queue depth; beyond it clients get 429")
	timeout := fs.Duration("request-timeout", 60*time.Second, "per-request applier wait bound")
	legacyParsers := fs.Bool("legacy-parsers", false, "use the reference string parsers instead of the zero-copy fast path (parity-tested escape hatch)")
	replayWorkers := fs.Int("replay-workers", 0, "WAL recovery decode parallelism (0 = GOMAXPROCS)")
	metricsAddr := fs.String("metrics-addr", "",
		"serve expvar/pprof on a dedicated address (e.g. :6060); "+
			"when unset, the same handlers are mounted on the main -addr under /debug/")
	replicaOf := fs.String("replica-of", "",
		"run as a live read replica of the primary at this base URL (e.g. http://primary:8080); "+
			"writes are redirected there until `grca promote`")
	replicaGrace := fs.Duration("replica-grace", 0,
		"primary-side WAL retention grace for detached replicas (0 = default)")
	replicaPoll := fs.Duration("replica-poll", 0,
		"primary-side shipping poll interval (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *bundleDir == "" {
		return fmt.Errorf("serve: -data-dir and -bundle are required")
	}
	policy, err := wal.ParseFsyncPolicy(*fsync)
	if err != nil {
		return err
	}
	bundle, err := platform.Load(*bundleDir)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*metricsAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics: expvar at http://%s/debug/vars, pprof at http://%s/debug/pprof/\n", bound, bound)
	}

	s, err := server.Open(server.Config{
		DataDir:        *dataDir,
		Bundle:         bundle,
		Fsync:          policy,
		FsyncInterval:  *fsyncEvery,
		SnapshotEvery:  *snapshotEvery,
		Retention:      *retention,
		Shards:         *shards,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		LegacyParsers:  *legacyParsers,
		ReplayWorkers:  *replayWorkers,
		ReplicaOf:      *replicaOf,
		ReplicaGrace:   *replicaGrace,
		ReplicaPoll:    *replicaPoll,
		// No dedicated metrics listener: expose /debug/ on the main
		// address so a single-port deployment still has expvar/pprof.
		Debug: *metricsAddr == "",
	})
	if err != nil {
		return err
	}
	rec := s.Recovery()
	phase := "loading"
	if rec.Finalized {
		phase = "serving"
	}
	fmt.Fprintf(os.Stderr, "serve: recovered %d batches, %d events (phase %s", rec.Batches, rec.Events, phase)
	if rec.WALRebuilt {
		fmt.Fprint(os.Stderr, "; WAL rebuilt from journal")
	}
	fmt.Fprintln(os.Stderr, ")")
	if *replicaOf != "" {
		fmt.Fprintf(os.Stderr, "serve: replica of %s — writes redirect to the primary until promotion\n", *replicaOf)
	}

	bound, err := s.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (data under %s, shards=%d, fsync=%s)\n", bound, *dataDir, rec.Shards, policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "serve: %v — draining\n", got)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "serve: stopped cleanly")
	return nil
}

// runPromote flips a running replica into a standalone primary: it
// seals the replication streams, finishes replay, reopens through the
// normal recovery path (whose journal-vs-WAL reconcile verifies the
// shipped state), and reports the promoted node's per-shard digests.
func runPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "base URL of the replica to promote (e.g. http://127.0.0.1:8081; required)")
	timeout := fs.Duration("timeout", 5*time.Minute, "how long to wait for the promotion replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("promote: -addr is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(*addr, "/")+"/v1/replication/promote", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("promote: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var info server.PromoteInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("promote: bad response: %v", err)
	}
	fmt.Printf("promoted: role=%s boot=%s applied_seq=%d\n", info.Role, info.BootID, info.AppliedSeq)
	fmt.Printf("recovered %d batches, %d events (finalized=%v, wal_rebuilt=%v)\n",
		info.Recovery.Batches, info.Recovery.Events, info.Recovery.Finalized, info.Recovery.WALRebuilt)
	for i, d := range info.Digests {
		fmt.Printf("shard %d digest %s\n", i, d)
	}
	return nil
}
