package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/server"
	"grca/internal/wal"
)

// runServe starts the durable diagnosis service: the bundle supplies the
// configuration archive and deployment metadata, feeds arrive over HTTP,
// and everything accepted survives restarts via the WAL + ingest journal
// under -data-dir.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataDir := fs.String("data-dir", "", "durable state directory (WAL, snapshots, journal; required)")
	bundleDir := fs.String("bundle", "", "dataset bundle directory supplying configs + manifest (required)")
	fsync := fs.String("fsync", "batch", "WAL durability policy: batch (sync per commit) or interval")
	fsyncEvery := fs.Duration("fsync-interval", 200*time.Millisecond, "background sync period with -fsync=interval")
	snapshotEvery := fs.Int("snapshot-every", 50000, "snapshot the store every N WAL records (0 = only on shutdown/eviction)")
	retention := fs.Duration("retention", 0, "evict events older than this behind the stream head (0 = keep everything)")
	shards := fs.Int("shards", 1, "store/WAL shard count: independent commit lanes the ingest path parallelizes across (fixed at data-dir creation)")
	maxInflight := fs.Int("max-inflight", 64, "per-shard ingest queue depth; beyond it clients get 429")
	timeout := fs.Duration("request-timeout", 60*time.Second, "per-request applier wait bound")
	legacyParsers := fs.Bool("legacy-parsers", false, "use the reference string parsers instead of the zero-copy fast path (parity-tested escape hatch)")
	replayWorkers := fs.Int("replay-workers", 0, "WAL recovery decode parallelism (0 = GOMAXPROCS)")
	metricsAddr := fs.String("metrics-addr", "",
		"serve expvar/pprof on a dedicated address (e.g. :6060); "+
			"when unset, the same handlers are mounted on the main -addr under /debug/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" || *bundleDir == "" {
		return fmt.Errorf("serve: -data-dir and -bundle are required")
	}
	policy, err := wal.ParseFsyncPolicy(*fsync)
	if err != nil {
		return err
	}
	bundle, err := platform.Load(*bundleDir)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*metricsAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics: expvar at http://%s/debug/vars, pprof at http://%s/debug/pprof/\n", bound, bound)
	}

	s, err := server.Open(server.Config{
		DataDir:        *dataDir,
		Bundle:         bundle,
		Fsync:          policy,
		FsyncInterval:  *fsyncEvery,
		SnapshotEvery:  *snapshotEvery,
		Retention:      *retention,
		Shards:         *shards,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		LegacyParsers:  *legacyParsers,
		ReplayWorkers:  *replayWorkers,
		// No dedicated metrics listener: expose /debug/ on the main
		// address so a single-port deployment still has expvar/pprof.
		Debug: *metricsAddr == "",
	})
	if err != nil {
		return err
	}
	rec := s.Recovery()
	phase := "loading"
	if rec.Finalized {
		phase = "serving"
	}
	fmt.Fprintf(os.Stderr, "serve: recovered %d batches, %d events (phase %s", rec.Batches, rec.Events, phase)
	if rec.WALRebuilt {
		fmt.Fprint(os.Stderr, "; WAL rebuilt from journal")
	}
	fmt.Fprintln(os.Stderr, ")")

	bound, err := s.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (data under %s, shards=%d, fsync=%s)\n", bound, *dataDir, rec.Shards, policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "serve: %v — draining\n", got)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "serve: stopped cleanly")
	return nil
}
