// Command grca-load drives a running `grca serve` instance over HTTP: it
// loads a bundle's raw feeds, finalizes, then streams batches of
// normalized events from concurrent workers and reports sustained ingest
// throughput. The CI serve-smoke job uses it to produce BENCH_SERVE.json.
//
// Usage:
//
//	grca-load -addr http://localhost:8080 -bundle /tmp/corpus \
//	  [-events 200000] [-batch 500] [-c 4] [-wire json|binary] \
//	  [-read-from http://replica:8081] [-o BENCH_SERVE.json]
//
// With -read-from, a reader loops the probe path at the replica while
// the write stream runs, and the report carries both endpoints' read
// latency percentiles.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/collector"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/wire"
)

var feedOrder = []string{
	collector.SourceOSPFMon, collector.SourceBGPMon, collector.SourceSyslog,
	collector.SourceSNMP, collector.SourceTACACS, collector.SourceWorkflow,
	collector.SourceLayer1, collector.SourcePerfMon, collector.SourceKeynote,
	collector.SourceServer,
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "serve base URL")
	bundleDir := flag.String("bundle", "", "bundle to load before streaming (skip load phase when empty)")
	events := flag.Int("events", 200000, "normalized events to stream after finalize")
	batch := flag.Int("batch", 500, "events per ingest batch")
	workers := flag.Int("c", 4, "concurrent streaming workers")
	out := flag.String("o", "", "write the throughput report to this JSON file (default stdout)")
	probe := flag.String("probe", "", "after streaming, GET this path repeatedly and report latency percentiles")
	probes := flag.Int("probes", 200, "probe request count with -probe")
	wireMode := flag.String("wire", "json", "ingest encoding: json or binary (the compact wire batch format)")
	readFrom := flag.String("read-from", "",
		"base URL of a read replica: the -probe path is hammered there while the write stream runs, "+
			"and both endpoints' read latency percentiles land in the report (default probe: /v1/breakdown?app=bgpflap)")
	flag.Parse()

	if *wireMode != "json" && *wireMode != "binary" {
		fmt.Fprintf(os.Stderr, "grca-load: -wire must be json or binary, got %q\n", *wireMode)
		os.Exit(1)
	}
	if *readFrom != "" && *probe == "" {
		*probe = "/v1/breakdown?app=bgpflap"
	}
	if err := run(*addr, *bundleDir, *events, *batch, *workers, *out, *probe, *probes, *wireMode == "binary", *readFrom); err != nil {
		fmt.Fprintf(os.Stderr, "grca-load: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, bundleDir string, events, batchSize, workers int, out, probe string, probes int, binary bool, readFrom string) error {
	contentType := "application/json"
	if binary {
		contentType = wire.ContentType
	}
	start := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	if bundleDir != "" {
		b, err := platform.Load(bundleDir)
		if err != nil {
			return err
		}
		start = b.Start.Add(b.Duration)
		loadBegan := time.Now()
		for _, src := range feedOrder {
			feed, ok := b.Feeds[src]
			if !ok {
				continue
			}
			var body []byte
			if binary {
				body = wire.AppendFeed(nil, src, feed)
			} else {
				var err error
				body, err = json.Marshal(map[string]string{"source": src, "lines": feed})
				if err != nil {
					return err
				}
			}
			if err := postOK(addr+"/v1/ingest", contentType, body); err != nil {
				return fmt.Errorf("ingest %s: %v", src, err)
			}
		}
		// 409 means a recovered server is already serving — fine.
		if err := postOK(addr+"/v1/finalize", "application/json", []byte("{}")); err != nil && !isConflict(err) {
			return fmt.Errorf("finalize: %v", err)
		}
		fmt.Fprintf(os.Stderr, "grca-load: bundle loaded and finalized in %v\n",
			time.Since(loadBegan).Round(time.Millisecond))
	}

	// Stream phase: each worker owns a disjoint interface namespace so the
	// generated up events never interleave on one location, and stamps
	// strictly increasing times so the realtime clock only moves forward.
	// Each worker keeps its own latency samples and 429 count — merged
	// into the request-latency percentiles and the per-worker rejection
	// breakdown of the report (a skewed breakdown means one worker was
	// starved, not the whole pipeline).
	type workerStats struct {
		lat      []float64 // ms per accepted ingest request
		rejected int64
	}
	batches := make(chan []byte, workers)
	var sent int64
	stats := make([]workerStats, workers)
	var wg sync.WaitGroup
	began := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			for body := range batches {
				for {
					reqBegan := time.Now()
					code, err := postCode(addr+"/v1/ingest", contentType, body)
					if err != nil {
						fmt.Fprintf(os.Stderr, "grca-load: %v\n", err)
						return
					}
					if code == http.StatusTooManyRequests {
						st.rejected++
						time.Sleep(50 * time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						fmt.Fprintf(os.Stderr, "grca-load: ingest status %d\n", code)
						return
					}
					st.lat = append(st.lat, float64(time.Since(reqBegan).Microseconds())/1000)
					break
				}
			}
		}(w)
	}
	type jsonEvent struct {
		Name  string    `json:"name"`
		Start time.Time `json:"start"`
		End   time.Time `json:"end"`
		Loc   struct {
			Type string `json:"type"`
			A    string `json:"a"`
		} `json:"loc"`
	}
	ifaceType, err := locus.ParseType("interface")
	if err != nil {
		return err
	}
	// Replica read mix: while the write stream hammers the primary, one
	// reader loops the probe path at the replica. Non-200s (still
	// bootstrapping, not yet finalized) count as unready rather than
	// failing the run — replication lag is the thing being measured.
	var replicaLat []float64
	var replicaUnready int
	stopReads := make(chan struct{})
	var readWG sync.WaitGroup
	if readFrom != "" {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			url := readFrom + probe
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				reqBegan := time.Now()
				resp, err := http.Get(url)
				if err != nil {
					replicaUnready++
					time.Sleep(100 * time.Millisecond)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					replicaUnready++
					time.Sleep(50 * time.Millisecond)
					continue
				}
				replicaLat = append(replicaLat, float64(time.Since(reqBegan).Microseconds())/1000)
			}
		}()
	}
	// Location names repeat mod 64: precompute them so the generator does
	// not spend the shared CPU formatting strings per event.
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("load-r%d", i)
	}
	produced := 0
	for produced < events {
		n := batchSize
		if events-produced < n {
			n = events - produced
		}
		var body []byte
		if binary {
			ins := make([]event.Instance, n)
			for i := range ins {
				at := start.Add(time.Duration(produced+i) * time.Millisecond)
				ins[i] = event.Instance{
					Name: event.InterfaceUp, Start: at, End: at,
					Loc: locus.At(ifaceType, names[(produced+i)%64]),
				}
			}
			body = wire.AppendEvents(nil, ins)
		} else {
			evs := make([]jsonEvent, n)
			for i := range evs {
				at := start.Add(time.Duration(produced+i) * time.Millisecond)
				evs[i].Name = event.InterfaceUp
				evs[i].Start, evs[i].End = at, at
				evs[i].Loc.Type = "interface"
				evs[i].Loc.A = names[(produced+i)%64]
			}
			var err error
			body, err = json.Marshal(map[string]any{"events": evs})
			if err != nil {
				return err
			}
		}
		batches <- body
		produced += n
		atomic.AddInt64(&sent, int64(n))
	}
	close(batches)
	wg.Wait()
	elapsed := time.Since(began)
	close(stopReads)
	readWG.Wait()

	mode := "json"
	if binary {
		mode = "binary"
	}
	var allLat []float64
	rejectedPer := make([]int64, workers)
	var rejected int64
	for w := range stats {
		allLat = append(allLat, stats[w].lat...)
		rejectedPer[w] = stats[w].rejected
		rejected += stats[w].rejected
	}
	sort.Float64s(allLat)
	pct := func(q float64) float64 {
		if len(allLat) == 0 {
			return 0
		}
		return allLat[int(q*float64(len(allLat)-1))]
	}
	report := map[string]any{
		"events":              atomic.LoadInt64(&sent),
		"batch_size":          batchSize,
		"workers":             workers,
		"wire":                mode,
		"seconds":             elapsed.Seconds(),
		"events_per_sec":      float64(atomic.LoadInt64(&sent)) / elapsed.Seconds(),
		"retries_429":         rejected,
		"rejected_per_worker": rejectedPer,
		"ingest_p50_ms":       pct(0.50),
		"ingest_p95_ms":       pct(0.95),
		"ingest_p99_ms":       pct(0.99),
	}
	fmt.Fprintf(os.Stderr, "grca-load: ingest latency p50=%.2fms p95=%.2fms p99=%.2fms over %d requests\n",
		pct(0.50), pct(0.95), pct(0.99), len(allLat))
	if readFrom != "" {
		sort.Float64s(replicaLat)
		rpct := func(q float64) float64 {
			if len(replicaLat) == 0 {
				return 0
			}
			return replicaLat[int(q*float64(len(replicaLat)-1))]
		}
		report["read_from"] = readFrom
		report["replica_reads"] = len(replicaLat)
		report["replica_reads_unready"] = replicaUnready
		report["replica_read_p50_ms"] = rpct(0.50)
		report["replica_read_p95_ms"] = rpct(0.95)
		report["replica_read_p99_ms"] = rpct(0.99)
		fmt.Fprintf(os.Stderr, "grca-load: replica read latency p50=%.2fms p95=%.2fms p99=%.2fms over %d requests (%d unready)\n",
			rpct(0.50), rpct(0.95), rpct(0.99), len(replicaLat), replicaUnready)
	}
	if probe != "" {
		p50, p99, err := probeLatency(addr+probe, probes)
		if err != nil {
			return fmt.Errorf("probe %s: %v", probe, err)
		}
		report["probe"] = probe
		report["probe_p50_ms"] = p50
		report["probe_p99_ms"] = p99
		fmt.Fprintf(os.Stderr, "grca-load: probe %s p50=%.2fms p99=%.2fms over %d requests\n",
			probe, p50, p99, probes)
		if readFrom != "" {
			p50, p99, err := probeLatency(readFrom+probe, probes)
			if err != nil {
				return fmt.Errorf("replica probe %s: %v", probe, err)
			}
			report["replica_probe_p50_ms"] = p50
			report["replica_probe_p99_ms"] = p99
			fmt.Fprintf(os.Stderr, "grca-load: replica probe %s p50=%.2fms p99=%.2fms over %d requests\n",
				probe, p50, p99, probes)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	fmt.Fprintf(os.Stderr, "grca-load: %d events in %v (%.0f events/s, %d 429 retries)\n",
		report["events"], elapsed.Round(time.Millisecond), report["events_per_sec"], report["retries_429"])
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// probeLatency GETs url n times sequentially and returns the p50/p99
// request latencies in milliseconds — the serve-smoke job probes
// /v1/breakdown before and after the event stream to assert the rollup
// keeps its latency flat as the store grows.
func probeLatency(url string, n int) (p50, p99 float64, err error) {
	if n <= 0 {
		n = 1
	}
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		began := time.Now()
		resp, err := http.Get(url)
		if err != nil {
			return 0, 0, err
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil {
			return 0, 0, cerr
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, statusErr(resp.StatusCode)
		}
		lat = append(lat, float64(time.Since(began).Microseconds())/1000)
	}
	sort.Float64s(lat)
	pct := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return pct(0.50), pct(0.99), nil
}

func postCode(url, contentType string, body []byte) (int, error) {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	return resp.StatusCode, nil
}

type statusErr int

func (e statusErr) Error() string { return fmt.Sprintf("status %d", int(e)) }

func isConflict(err error) bool {
	var se statusErr
	return errors.As(err, &se) && se == http.StatusConflict
}

func postOK(url, contentType string, body []byte) error {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if len(msg) > 0 {
			return fmt.Errorf("%w: %s", statusErr(resp.StatusCode), msg)
		}
		return statusErr(resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	return nil
}
