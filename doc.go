// Package grca is the root of a from-scratch reproduction of "G-RCA: A
// Generic Root Cause Analysis Platform for Service Quality Management in
// Large IP Networks" (Yan, Breslau, Ge, Massey, Pei, Yates — CoNEXT 2010 /
// IEEE-ACM ToN 2012).
//
// The library lives under internal/ (see DESIGN.md for the module map),
// runnable tools under cmd/, scenario walk-throughs under examples/, and
// the benchmark harness regenerating every table and figure of the paper's
// evaluation in bench_test.go.
package grca
