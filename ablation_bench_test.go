// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// temporal-margin sensitivity, spatial join level, and rule-based versus
// Bayesian reasoning on identical evidence.
package grca_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/nice"
	"grca/internal/platform"
	"grca/internal/simnet"
)

// mutateMargins returns a copy of the BGP-flap graph with every temporal
// margin scaled by factor (minimum one second, preserving the expanding
// options).
func bgpGraphWithMarginScale(b *testing.B, factor float64) *dgraph.Graph {
	b.Helper()
	_, g, err := bgpflap.Build()
	if err != nil {
		b.Fatal(err)
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) * factor)
		if s < time.Second {
			s = time.Second
		}
		return s
	}
	for _, r := range g.Rules() {
		r.Temporal.Symptom.Left = scale(r.Temporal.Symptom.Left)
		r.Temporal.Symptom.Right = scale(r.Temporal.Symptom.Right)
		r.Temporal.Diagnostic.Left = scale(r.Temporal.Diagnostic.Left)
		r.Temporal.Diagnostic.Right = scale(r.Temporal.Diagnostic.Right)
		if err := g.Replace(r); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// BenchmarkAblationTemporalMargins regenerates Table IV under scaled
// temporal margins. Shrinking the margins below the hold-timer/syslog-fuzz
// physics misses evidence (accuracy drops toward Unknown); inflating them
// admits coincidental evidence. The default margins sit at the accuracy
// plateau — the paper's §VI motivation for making temporal rules less
// sensitive.
func BenchmarkAblationTemporalMargins(b *testing.B) {
	c := bgpCorpus(b)
	for _, tc := range []struct {
		name   string
		factor float64
	}{
		{"x0.25", 0.25},
		{"x1", 1},
		{"x20", 20},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := bgpGraphWithMarginScale(b, tc.factor)
			eng := engine.New(c.sys.Store, c.sys.View, g)
			var ds []engine.Diagnosis
			for i := 0; i < b.N; i++ {
				ds = eng.DiagnoseAll()
			}
			score := platform.ScoreDiagnoses(c.dataset.Truth, "bgp", ds, 2*time.Minute)
			b.ReportMetric(100*score.Accuracy(), "accuracy%")
		})
	}
}

// denseCorpus generates a BGP corpus with relaxed router spacing: flaps on
// different sessions of the same PER may coincide, which is exactly the
// regime where spatial precision matters.
var (
	denseOnce sync.Once
	denseC    *corpus
)

func denseCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &denseOnce, &denseC, simnet.Config{
		Seed: 5, PoPs: 2, PERsPerPoP: 2, SessionsPerPER: 16,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 700,
		RelaxRouterSpacing: true,
	}, platform.Options{})
}

// BenchmarkAblationJoinLevel regenerates Table IV with the interface-level
// spatial joins of the flap rules coarsened to router level: any interface
// flap anywhere on the PER then explains any session's flap, so accuracy
// degrades — quantifying the value of the fine-grained spatial model. The
// corpus uses relaxed router spacing so that concurrent same-router flaps
// actually occur.
func BenchmarkAblationJoinLevel(b *testing.B) {
	c := denseCorpus(b)
	for _, tc := range []struct {
		name  string
		level locus.Type
	}{
		{"interface", locus.Interface},
		{"router", locus.Router},
	} {
		b.Run(tc.name, func(b *testing.B) {
			_, g, err := bgpflap.Build()
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range g.Rules() {
				if r.JoinLevel == locus.Interface {
					r.JoinLevel = tc.level
					if err := g.Replace(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			eng := engine.New(c.sys.Store, c.sys.View, g)
			var ds []engine.Diagnosis
			for i := 0; i < b.N; i++ {
				ds = eng.DiagnoseAll()
			}
			score := platform.ScoreDiagnoses(c.dataset.Truth, "bgp", ds, 2*time.Minute)
			b.ReportMetric(100*score.Accuracy(), "accuracy%")
		})
	}
}

// BenchmarkAblationReasoners compares rule-based reasoning and Bayesian
// classification on identical per-flap evidence (§II-D.3: operators
// usually prefer rule-based; Bayes matches it on observable causes and
// only pulls ahead on unobservable ones, cf. BenchmarkFig8_BayesLineCard).
func BenchmarkAblationReasoners(b *testing.B) {
	c := bgpCorpus(b)
	eng, err := bgpflap.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	cfg, err := bgpflap.BayesConfig()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("rule-based", func(b *testing.B) {
		var out []engine.Diagnosis
		for i := 0; i < b.N; i++ {
			out = eng.DiagnoseAll()
		}
		score := platform.ScoreDiagnoses(c.dataset.Truth, "bgp", out, 2*time.Minute)
		b.ReportMetric(100*score.Accuracy(), "accuracy%")
	})

	b.Run("bayes", func(b *testing.B) {
		agree := 0
		for i := 0; i < b.N; i++ {
			agree = 0
			for _, d := range ds {
				res, err := cfg.Classify(bgpflap.Features(d))
				if err != nil {
					b.Fatal(err)
				}
				if bayesAgrees(res.Best, d.Primary()) {
					agree++
				}
			}
		}
		b.ReportMetric(100*float64(agree)/float64(len(ds)), "agreement%")
	})
}

// BenchmarkAblationTester contrasts the NICE circular-permutation test
// against a canonical chi-squared independence test on independent but
// *bursty* event series (the autocorrelation regime the paper built NICE
// for, §II-E/§V): the reported metric is the false-positive percentage of
// each tester over the same pairs.
func BenchmarkAblationTester(b *testing.B) {
	const n = 4000
	const pairs = 30
	mk := func(rng *rand.Rand) *nice.Series {
		s := nice.NewSeries(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), time.Minute, n)
		for burst := 0; burst < 12; burst++ {
			at := rng.Intn(n - 60)
			for i := 0; i < 30; i++ {
				s.Mark(s.Start.Add(time.Duration(at+i) * time.Minute))
			}
		}
		return s
	}
	type tester interface {
		Test(a, b *nice.Series) (nice.Result, error)
	}
	for _, tc := range []struct {
		name string
		t    tester
	}{
		{"nice", nice.Tester{}},
		{"chi-squared", nice.ChiSquared{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fp := 0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(29))
				fp = 0
				for p := 0; p < pairs; p++ {
					res, err := tc.t.Test(mk(rng), mk(rng))
					if err != nil {
						b.Fatal(err)
					}
					if res.Significant {
						fp++
					}
				}
			}
			b.ReportMetric(100*float64(fp)/pairs, "false-positive%")
		})
	}
}

// bayesAgrees maps Bayesian class verdicts onto rule-based labels for the
// agreement metric.
func bayesAgrees(class, primary string) bool {
	switch class {
	case bgpflap.ClassIface:
		return primary == event.InterfaceFlap || primary == event.LineProtoFlap ||
			primary == event.SONETRestoration || primary == event.OpticalFast ||
			primary == event.OpticalRegular
	case bgpflap.ClassCPU:
		return primary == event.CPUHighSpike || primary == event.CPUHighAverage ||
			primary == event.EBGPHoldTimerExpired
	case bgpflap.ClassCustomer:
		return primary == event.CustomerResetSession
	}
	return false
}
