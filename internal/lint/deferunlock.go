package lint

import (
	"go/ast"
	"go/types"
)

// DeferUnlock checks critical-section shape inside a single function:
//
//   - return-while-held: a Lock/RLock whose enclosing block can reach a
//     return statement before the matching unlock (and with no defer
//     unlock in force) leaks the lock on that path — the classic bug in
//     functions with multiple returns;
//   - body-end leak: the function ends with the lock still held;
//   - upgrade-resume: RUnlock immediately followed by Lock, with an RLock
//     taken again afterwards — the PR 3 store race. Dropping the read
//     lock, writing, then resuming reading silently invalidates every
//     conclusion reached under the original read lock; redo the read
//     under the write lock instead (DESIGN.md §13).
//
// The plain RUnlock→Lock upgrade with a re-check and no RLock resume is
// idiomatic (obs.Registry, engine's expand cache) and is not flagged.
var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "flags returns and function ends that leak a held mutex, and RLock→Lock upgrades that resume reading",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		for _, f := range pass.Files {
			for fn := range functionBodies(f) {
				out = append(out, checkBody(pass, fn)...)
			}
		}
		return out
	},
}

// functionBodies yields every function-shaped body in the file: declared
// functions and (outermost) function literals, each analyzed as its own
// scope.
func functionBodies(f *ast.File) map[*ast.BlockStmt]bool {
	bodies := map[*ast.BlockStmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies[n.Body] = true
			}
		case *ast.FuncLit:
			bodies[n.Body] = true
		}
		return true
	})
	return bodies
}

func checkBody(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	out = append(out, checkUpgradeResume(pass, body)...)
	// Scan every block in this body (but not nested function literals)
	// for lock statements and their release discipline.
	var walkBlocks func(b *ast.BlockStmt, isFuncBody bool)
	seen := map[*ast.BlockStmt]bool{}
	walkBlocks = func(b *ast.BlockStmt, isFuncBody bool) {
		if seen[b] {
			return
		}
		seen[b] = true
		out = append(out, scanBlock(pass, b, isFuncBody)...)
		for _, stmt := range b.List {
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // its own scope
				case *ast.BlockStmt:
					walkBlocks(n, false)
					return false
				}
				return true
			})
		}
	}
	walkBlocks(body, true)
	return out
}

// exprLockOp unwraps an ExprStmt to a mutex operation.
func exprLockOp(info *types.Info, stmt ast.Stmt) (lockOp, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return lockOp{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockOp{}, false
	}
	return resolveLockOp(info, call)
}

// scanBlock checks each top-level Lock/RLock in the block: every return
// reachable after it (before release) is a leak; reaching the end of a
// function body unreleased is a leak.
func scanBlock(pass *Pass, b *ast.BlockStmt, isFuncBody bool) []Diagnostic {
	var out []Diagnostic
	for i, stmt := range b.List {
		op, ok := exprLockOp(pass.Info, stmt)
		if !ok || !op.kind.acquires() {
			continue
		}
		released := false
		for _, later := range b.List[i+1:] {
			if d, ok := later.(*ast.DeferStmt); ok {
				if unlockIn(pass.Info, d, op.v) {
					released = true
					break
				}
				continue
			}
			if lop, ok := exprLockOp(pass.Info, later); ok && lop.v == op.v && !lop.kind.acquires() {
				released = true
				break
			}
			if ret, ok := later.(*ast.ReturnStmt); ok {
				out = append(out, pass.diag("deferunlock", ret.Pos(),
					"return while %s is held (locked at line %d); unlock first or defer the unlock",
					op.name, pass.Fset.Position(op.pos).Line))
				released = true // report once per lock statement
				break
			}
			// A nested statement: returns inside it must be preceded (in
			// source order within the statement) by a release; any release
			// inside makes the lock state ambiguous beyond it, so stop.
			if stmtReleases(pass, later, op, &out) {
				released = true
				break
			}
		}
		if !released && isFuncBody {
			out = append(out, pass.diag("deferunlock", op.pos,
				"%s is still held when the function returns; add defer %s", op.name, "Unlock/RUnlock"))
		}
	}
	return out
}

// unlockIn reports whether the defer statement releases v, either
// directly (defer mu.Unlock()) or inside a deferred closure.
func unlockIn(info *types.Info, d *ast.DeferStmt, v *types.Var) bool {
	if op, ok := resolveLockOp(info, d.Call); ok {
		return op.v == v && !op.kind.acquires()
	}
	found := false
	ast.Inspect(d.Call, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := resolveLockOp(info, call); ok && op.v == v && !op.kind.acquires() {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtReleases inspects a nested statement (if/for/switch/...) while the
// lock is held. It appends a diagnostic for every return not preceded
// within the statement by a release of op.v, and reports whether the
// statement contains any release (after which the caller stops tracking —
// conditional releases make the linear scan ambiguous).
func stmtReleases(pass *Pass, stmt ast.Stmt, op lockOp, out *[]Diagnostic) bool {
	type point struct {
		pos    int
		isRet  bool
		retPos ast.Node
	}
	var points []point
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			points = append(points, point{pos: int(n.Pos()), isRet: true, retPos: n})
		case *ast.DeferStmt:
			if unlockIn(pass.Info, n, op.v) {
				points = append(points, point{pos: int(n.Pos())})
			}
			return false
		case *ast.CallExpr:
			if lop, ok := resolveLockOp(pass.Info, n); ok && lop.v == op.v && !lop.kind.acquires() {
				points = append(points, point{pos: int(n.Pos())})
			}
		}
		return true
	})
	releases := false
	releasedBefore := func(p int) bool {
		for _, pt := range points {
			if !pt.isRet && pt.pos < p {
				return true
			}
		}
		return false
	}
	for _, pt := range points {
		if !pt.isRet {
			releases = true
			continue
		}
		if !releasedBefore(pt.pos) {
			*out = append(*out, pass.diag("deferunlock", pt.retPos.Pos(),
				"return while %s is held (locked at line %d); unlock first or defer the unlock",
				op.name, pass.Fset.Position(op.pos).Line))
		}
	}
	return releases
}

// checkUpgradeResume flags the RUnlock→Lock→...→RLock shape on one mutex
// within one function body.
func checkUpgradeResume(pass *Pass, body *ast.BlockStmt) []Diagnostic {
	ops := map[*types.Var][]lockOp{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own scope, scanned separately
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := resolveLockOp(pass.Info, call); ok {
				ops[op.v] = append(ops[op.v], op)
			}
		}
		return true
	})
	var out []Diagnostic
	for _, seq := range ops {
		for i := 0; i+1 < len(seq); i++ {
			if seq[i].kind != opRUnlock || seq[i+1].kind != opLock {
				continue
			}
			for _, later := range seq[i+2:] {
				if later.kind == opRLock {
					out = append(out, pass.diag("deferunlock", seq[i+1].pos,
						"%s: RLock→Lock upgrade resumes reading with RLock afterwards; state observed before the upgrade is stale — redo the read under the write lock (PR 3 store race)",
						seq[i+1].name))
					break
				}
			}
		}
	}
	// Deterministic order: ops map iteration is random, sort by position.
	sortDiagnostics(out)
	return out
}
