// Package lockorder holds deliberately broken lock-nesting exemplars for
// the lockorder analyzer's golden test.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var c C

var d D

// Both nests B.mu under A.mu; with BBoth's inverse nesting this is the
// classic AB/BA deadlock cycle. Both edges are also undocumented.
func (a *A) Both() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}

// BBoth nests A.mu under B.mu — the inverse of Both.
func (b *B) BBoth() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}

// Touch re-acquires A.mu through a helper: a guaranteed self-deadlock.
func (a *A) Touch() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.locked()
}

func (a *A) locked() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// WithC nests C.mu under A.mu; the directive suppresses the finding.
func (a *A) WithC() {
	a.mu.Lock()
	//lint:ignore lockorder exemplar: the A→C nesting is sanctioned here
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}

// WithD nests D.mu under A.mu; the golden test's allowlist sanctions it.
func (a *A) WithD() {
	a.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	a.mu.Unlock()
}
