// Package ignore exercises the //lint:ignore escape hatch itself: a
// malformed directive must not suppress anything and must be reported
// under the badignore ID.
package ignore

import "time"

// A bad analyzer ID: the directive is a badignore diagnostic and the
// nakedtime finding below it still fires.
//
//lint:ignore nosuchcheck this ID does not exist
var t0 = time.Now()

// A missing reason: same story.
//
//lint:ignore nakedtime
var t1 = time.Now()

// Missing everything.
//
//lint:ignore
var t2 = time.Now()

// A well-formed directive suppresses its finding.
//
//lint:ignore nakedtime exemplar: sanctioned clock read for this test
var t3 = time.Now()
