// Package hookreentry holds deliberately broken hook-callback exemplars
// for the hookreentry analyzer's golden test. Store mirrors the real
// store's OnAppend/OnEvict registration and invocation shape.
package hookreentry

import "sync"

type Item struct{ ID int }

type Store struct {
	mu       sync.RWMutex
	items    []Item
	onAppend []func(Item)
	onEvict  []func(Item)
}

func (s *Store) OnAppend(fn func(Item)) {
	s.onAppend = append(s.onAppend, fn)
}

func (s *Store) OnEvict(fn func(Item)) {
	s.onEvict = append(s.onEvict, fn)
}

// Add invokes the append hooks while holding the write lock.
func (s *Store) Add(it Item) {
	s.mu.Lock()
	s.items = append(s.items, it)
	for _, fn := range s.onAppend {
		fn(it)
	}
	s.mu.Unlock()
}

// Evict snapshots the callbacks under the lock and invokes them outside
// it — the sanctioned OnEvict pattern.
func (s *Store) Evict() {
	s.mu.Lock()
	var gone Item
	if len(s.items) > 0 {
		gone, s.items = s.items[0], s.items[1:]
	}
	cbs := s.onEvict
	s.mu.Unlock()
	for _, cb := range cbs {
		cb(gone)
	}
}

func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Register binds an append hook that re-enters the store under its own
// lock: deadlock.
func Register(s *Store) {
	s.OnAppend(func(Item) {
		_ = s.Len()
	})
}

// RegisterEvict binds an evict hook that mutates the store that fired
// it: re-entrant mutation.
func RegisterEvict(s *Store) {
	s.OnEvict(func(it Item) {
		s.Add(it)
	})
}

// RegisterSuppressed is the same deadlock, acknowledged by directive.
func RegisterSuppressed(s *Store) {
	//lint:ignore hookreentry exemplar: acknowledged re-entry for the golden test
	s.OnAppend(func(Item) { _ = s.Len() })
}

// RegisterClean binds a callback that never touches the store again —
// the correct shape, not flagged.
func RegisterClean(s *Store, sink chan<- Item) {
	s.OnEvict(func(it Item) {
		select {
		case sink <- it:
		default:
		}
	})
}
