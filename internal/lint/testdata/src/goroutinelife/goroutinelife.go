// Package goroutinelife holds deliberately leaked goroutines for the
// goroutinelife analyzer's golden test.
package goroutinelife

type Feed struct {
	ch   chan int
	stop chan struct{}
}

func (f *Feed) process(int) {}

// StartLoop leaks: the goroutine spins forever with no stop signal.
func (f *Feed) StartLoop() {
	go func() {
		for i := 0; ; i++ {
			f.process(i)
		}
	}()
}

// StartSpin leaks through a named function.
func (f *Feed) StartSpin() {
	go f.spin()
}

func (f *Feed) spin() {
	for {
		f.process(0)
	}
}

// StartDrain is tied: the range ends when ch is closed.
func (f *Feed) StartDrain() {
	go func() {
		for v := range f.ch {
			f.process(v)
		}
	}()
}

// StartTicker is tied: it selects on the stop channel.
func (f *Feed) StartTicker() {
	go func() {
		for {
			select {
			case <-f.stop:
				return
			case v := <-f.ch:
				f.process(v)
			}
		}
	}()
}

// StartExternal cannot be proven locally; the directive documents the
// caller-owned lifecycle.
func (f *Feed) StartExternal(run func()) {
	//lint:ignore goroutinelife exemplar: run's lifecycle is owned by the caller
	go run()
}
