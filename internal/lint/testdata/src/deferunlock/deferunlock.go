// Package deferunlock holds deliberately broken critical-section
// exemplars for the deferunlock analyzer's golden test.
package deferunlock

import "sync"

type Reg struct {
	mu    sync.RWMutex
	items map[string]int
}

// Lookup leaks mu on the early return.
func (r *Reg) Lookup(k string) int {
	r.mu.Lock()
	v, ok := r.items[k]
	if !ok {
		return -1
	}
	r.mu.Unlock()
	return v
}

// Touch leaks mu at the end of the body.
func (r *Reg) Touch(k string) {
	r.mu.Lock()
	r.items[k]++
}

// Resort is the PR 3 store race: read-to-write upgrade that resumes on
// the read lock, trusting state observed before the upgrade.
func (r *Reg) Resort() {
	r.mu.RLock()
	if len(r.items) == 0 {
		r.mu.RUnlock()
		return
	}
	r.mu.RUnlock()
	r.mu.Lock()
	r.items["sorted"] = 1
	r.mu.Unlock()
	r.mu.RLock()
	_ = len(r.items)
	r.mu.RUnlock()
}

// Peek leaks too, but the directive acknowledges it.
func (r *Reg) Peek(k string) (int, bool) {
	r.mu.RLock()
	v, ok := r.items[k]
	if !ok {
		//lint:ignore deferunlock exemplar: deliberately leaked read lock
		return 0, false
	}
	r.mu.RUnlock()
	return v, ok
}

// Clean is the idiomatic check-unlock-relock upgrade that must NOT be
// flagged: no read resumes after the write section.
func (r *Reg) Clean(k string) int {
	r.mu.RLock()
	if v, ok := r.items[k]; ok {
		r.mu.RUnlock()
		return v
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = 0
	return 0
}
