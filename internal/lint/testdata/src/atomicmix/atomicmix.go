// Package atomicmix holds deliberately broken atomics exemplars for the
// atomicmix analyzer's golden test.
package atomicmix

import "sync/atomic"

type Counter struct {
	hits  int64
	calls int64
}

func (c *Counter) Hit() { atomic.AddInt64(&c.hits, 1) }

// Snapshot reads hits plainly: races with Hit.
func (c *Counter) Snapshot() int64 { return c.hits }

func (c *Counter) Call() { atomic.AddInt64(&c.calls, 1) }

// Reset writes calls plainly: races with Call.
func (c *Counter) Reset() { c.calls = 0 }

var gen uint64

func Bump() { atomic.AddUint64(&gen, 1) }

// Seed writes gen plainly; the directive acknowledges the init-time use.
func Seed(v uint64) {
	//lint:ignore atomicmix exemplar: init-time write precedes concurrency
	gen = v
}

// typed is the sanctioned shape: a typed atomic cannot be mixed.
type typed struct {
	n atomic.Int64
}

func (t *typed) Inc() int64 { return t.n.Add(1) }
