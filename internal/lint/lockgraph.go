package lint

// The lock graph: a linear-scan simulation of every function body tracks
// which mutexes are held at each acquisition, call, and hook-invocation
// site. Interprocedural context comes in two forms that deliberately do
// not overlap:
//
//   - edges held-at-callsite × transAcquires(callee) cover locks taken
//     deeper in the call tree (and through hook callbacks, which
//     transAcquires folds in), so edge emission only ever consults the
//     locally-held set;
//   - an entered-while-holding fixed point propagates held sets into
//     callees and hook callbacks, and is consulted only for re-acquisition
//     (self-deadlock) detection and for the held-at-invocation snapshots
//     the hookreentry analyzer needs.
//
// The scan is a source-order heuristic, not a CFG: Lock adds the mutex to
// the held set, Unlock removes it, defer Unlock pins it for the rest of
// the body. That matches how this codebase writes critical sections; the
// //lint:ignore escape hatch covers the exceptions.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A lockEdge records that `from` was held while `to` was acquired.
type lockEdge struct {
	from, to *types.Var
	fromName string
	toName   string
	pos      token.Position // acquisition or callsite position
	fn       string         // enclosing function label
	via      string         // call path witness, "" for a direct acquisition
}

// A selfAcquire records a mutex acquired while already held.
type selfAcquire struct {
	name string
	pos  token.Position
	fn   string
	via  string
}

// An invokeFact is a hook-field invocation with its held-lock snapshot.
type invokeFact struct {
	field *types.Var
	held  map[*types.Var]bool
	pos   token.Position
	fn    string
}

type lockGraph struct {
	edges   []lockEdge
	selfs   []selfAcquire
	invokes []invokeFact
}

// heldSet is an insertion-ordered set of held mutexes.
type heldSet struct {
	order []*types.Var
	names map[*types.Var]string
}

func newHeldSet() *heldSet { return &heldSet{names: map[*types.Var]string{}} }

func (h *heldSet) add(v *types.Var, name string) {
	if _, ok := h.names[v]; ok {
		return
	}
	h.names[v] = name
	h.order = append(h.order, v)
}

func (h *heldSet) remove(v *types.Var) {
	if _, ok := h.names[v]; !ok {
		return
	}
	delete(h.names, v)
	for i, x := range h.order {
		if x == v {
			h.order = append(h.order[:i:i], h.order[i+1:]...)
			break
		}
	}
}

func (h *heldSet) has(v *types.Var) bool { _, ok := h.names[v]; return ok }

// lockGraph runs the entered-while-holding fixed point and then the
// collection pass, memoized on the facts.
func (fs *facts) lockGraph() *lockGraph {
	if fs.graph != nil {
		return fs.graph
	}
	entry := map[*types.Func]map[*types.Var]bool{}
	litEntry := map[*ast.FuncLit]map[*types.Var]bool{}

	// Fixed point: propagate held-at-callsite into callees (and bound
	// callbacks at hook invocations) until no entry set grows.
	for changed := true; changed; {
		changed = false
		for _, ff := range fs.ordered {
			fs.simulate(ff, entry[ff.fn], simHooks{
				onCall: func(cs callSite, held *heldSet) {
					if growEntry(entry, cs.callee, held, entryOf(entry, ff.fn)) {
						changed = true
					}
				},
				onInvoke: func(hi hookInvoke, held *heldSet) {
					for _, b := range fs.bindings {
						if b.field != hi.field {
							continue
						}
						if b.fn != nil {
							if growEntry(entry, b.fn, held, entryOf(entry, ff.fn)) {
								changed = true
							}
						} else if growLitEntry(litEntry, b.lit, held, entryOf(entry, ff.fn)) {
							changed = true
						}
					}
				},
			})
		}
	}

	g := &lockGraph{}
	seenEdge := map[[2]*types.Var]bool{}
	addEdge := func(e lockEdge) {
		key := [2]*types.Var{e.from, e.to}
		if seenEdge[key] {
			return
		}
		seenEdge[key] = true
		g.edges = append(g.edges, e)
	}
	collect := func(ff *funcFacts, label string, ent map[*types.Var]bool) {
		fs.simulate(ff, ent, simHooks{
			onAcquire: func(op lockOp, held *heldSet, entered map[*types.Var]bool) {
				if held.has(op.v) || entered[op.v] {
					g.selfs = append(g.selfs, selfAcquire{
						name: op.name, pos: ff.pass.Fset.Position(op.pos), fn: label,
					})
					return
				}
				for _, from := range held.order {
					addEdge(lockEdge{
						from: from, to: op.v,
						fromName: held.names[from], toName: op.name,
						pos: ff.pass.Fset.Position(op.pos), fn: label,
					})
				}
			},
			onCall: func(cs callSite, held *heldSet) {
				if len(held.order) == 0 {
					return
				}
				for v, a := range fs.transAcquires(cs.callee) {
					for _, from := range held.order {
						if from == v {
							g.selfs = append(g.selfs, selfAcquire{
								name: held.names[from],
								pos:  ff.pass.Fset.Position(cs.pos),
								fn:   label, via: witness(cs.callee, a),
							})
							continue
						}
						addEdge(lockEdge{
							from: from, to: v,
							fromName: held.names[from], toName: fs.lockNames[v],
							pos: ff.pass.Fset.Position(cs.pos), fn: label,
							via: witness(cs.callee, a),
						})
					}
				}
			},
			onInvoke: func(hi hookInvoke, held *heldSet) {
				snap := map[*types.Var]bool{}
				for _, v := range held.order {
					snap[v] = true
				}
				for v := range entryOf(entry, ff.fn) {
					snap[v] = true
				}
				g.invokes = append(g.invokes, invokeFact{
					field: hi.field, held: snap,
					pos: ff.pass.Fset.Position(hi.pos), fn: label,
				})
				for _, b := range fs.bindings {
					if b.field != hi.field {
						continue
					}
					var sub map[*types.Var]acquire
					var blabel string
					if b.fn != nil {
						sub, blabel = fs.transAcquires(b.fn), funcLabel(b.fn)
					} else {
						sub, blabel = fs.litAcquires(b.lit), "registered func literal"
					}
					for v, a := range sub {
						for _, from := range held.order {
							if from == v {
								continue // hookreentry reports these
							}
							via := "hook " + blabel
							if a.via != "" {
								via += " → " + a.via
							}
							addEdge(lockEdge{
								from: from, to: v,
								fromName: held.names[from], toName: fs.lockNames[v],
								pos: ff.pass.Fset.Position(hi.pos), fn: label, via: via,
							})
						}
					}
				}
			},
		})
	}
	for _, ff := range fs.ordered {
		collect(ff, funcLabel(ff.fn), entryOf(entry, ff.fn))
	}
	for _, b := range fs.bindings {
		if b.lit != nil {
			collect(fs.litFacts[b.lit], "registered func literal", litEntry[b.lit])
		}
	}
	fs.graph = g
	return g
}

func witness(callee *types.Func, a acquire) string {
	if a.via == "" {
		return funcLabel(callee)
	}
	return funcLabel(callee) + " → " + a.via
}

func entryOf(entry map[*types.Func]map[*types.Var]bool, fn *types.Func) map[*types.Var]bool {
	if fn == nil {
		return nil
	}
	return entry[fn]
}

func growEntry(entry map[*types.Func]map[*types.Var]bool, fn *types.Func, held *heldSet, callerEntry map[*types.Var]bool) bool {
	grew := false
	set := entry[fn]
	add := func(v *types.Var) {
		if set == nil {
			set = map[*types.Var]bool{}
			entry[fn] = set
		}
		if !set[v] {
			set[v] = true
			grew = true
		}
	}
	for _, v := range held.order {
		add(v)
	}
	for v := range callerEntry {
		add(v)
	}
	return grew
}

func growLitEntry(entry map[*ast.FuncLit]map[*types.Var]bool, lit *ast.FuncLit, held *heldSet, callerEntry map[*types.Var]bool) bool {
	grew := false
	set := entry[lit]
	add := func(v *types.Var) {
		if set == nil {
			set = map[*types.Var]bool{}
			entry[lit] = set
		}
		if !set[v] {
			set[v] = true
			grew = true
		}
	}
	for _, v := range held.order {
		add(v)
	}
	for v := range callerEntry {
		add(v)
	}
	return grew
}

type simHooks struct {
	onAcquire func(lockOp, *heldSet, map[*types.Var]bool)
	onCall    func(callSite, *heldSet)
	onInvoke  func(hookInvoke, *heldSet)
}

// simulate replays a function's events (lock ops, calls, hook
// invocations) in source order, maintaining the held set.
func (fs *facts) simulate(ff *funcFacts, entered map[*types.Var]bool, h simHooks) {
	if ff == nil {
		return
	}
	type event struct {
		pos    token.Pos
		op     *lockOp
		call   *callSite
		invoke *hookInvoke
	}
	events := make([]event, 0, len(ff.ops)+len(ff.calls)+len(ff.hooks))
	for i := range ff.ops {
		events = append(events, event{pos: ff.ops[i].pos, op: &ff.ops[i]})
	}
	for i := range ff.calls {
		events = append(events, event{pos: ff.calls[i].pos, call: &ff.calls[i]})
	}
	for i := range ff.hooks {
		events = append(events, event{pos: ff.hooks[i].pos, invoke: &ff.hooks[i]})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := newHeldSet()
	for _, ev := range events {
		switch {
		case ev.op != nil:
			op := ev.op
			if op.kind.acquires() {
				if h.onAcquire != nil {
					h.onAcquire(*op, held, entered)
				}
				held.add(op.v, op.name)
			} else if !op.deferred {
				held.remove(op.v)
			}
		case ev.call != nil:
			if h.onCall != nil {
				h.onCall(*ev.call, held)
			}
		case ev.invoke != nil:
			if h.onInvoke != nil {
				h.onInvoke(*ev.invoke, held)
			}
		}
	}
}
