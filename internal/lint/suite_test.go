package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// concurrencyIDs are the five analyzers of the concurrency suite.
var concurrencyIDs = []string{"lockorder", "deferunlock", "atomicmix", "hookreentry", "goroutinelife"}

// loadBroken loads the deliberately-broken exemplar module under
// testdata/src as a Program. The allowlist sanctions exactly one edge so
// the goldens prove allowlisting works.
func loadBroken(t *testing.T) *Program {
	t.Helper()
	l, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Walk()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("Walk found %d packages in testdata/src, want ≥ 6: %v", len(paths), paths)
	}
	var passes []*Pass
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		passes = append(passes, pkg.Pass(l.Fset))
	}
	prog := NewProgram(passes)
	prog.Allow, err = ParseAllowlist("lockorder.A.mu -> lockorder.D.mu")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// brokenDiagLines runs the full suite over the exemplars and renders the
// diagnostics with testdata/src-relative paths, grouped by analyzer.
func brokenDiagLines(t *testing.T) map[string][]string {
	t.Helper()
	diags := RunSuite(loadBroken(t), Analyzers())
	byID := map[string][]string{}
	for _, d := range diags {
		rel, err := filepath.Rel("testdata/src", d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		byID[d.Analyzer] = append(byID[d.Analyzer],
			fmt.Sprintf("%s:%d:%d: %s: %s", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return byID
}

// TestGoldens compares each analyzer's findings over the broken
// exemplars against its golden file. Run with -update to regenerate.
func TestGoldens(t *testing.T) {
	byID := brokenDiagLines(t)
	goldenIDs := append(append([]string{}, concurrencyIDs...), BadIgnore, "nakedtime")
	expected := map[string]bool{}
	for _, id := range goldenIDs {
		expected[id] = true
	}
	for id := range byID {
		if !expected[id] {
			t.Errorf("exemplars produced diagnostics for unexpected analyzer %q:\n%s",
				id, strings.Join(byID[id], "\n"))
		}
	}
	for _, id := range goldenIDs {
		got := strings.Join(byID[id], "\n") + "\n"
		path := filepath.Join("testdata", "golden", id+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run go test ./internal/lint -update to generate)", path, err)
		}
		if got != string(want) {
			t.Errorf("%s findings differ from %s:\n--- got ---\n%s--- want ---\n%s", id, path, got, want)
		}
	}
	for _, id := range concurrencyIDs {
		if len(byID[id]) < 2 {
			t.Errorf("%s has %d positive exemplars, want ≥ 2", id, len(byID[id]))
		}
	}
}

// TestSuppressedExemplars proves each concurrency analyzer (and
// nakedtime) has a working //lint:ignore exemplar: the directive exists
// in testdata/src and no diagnostic for that ID survives on the
// directive's line or the line below it.
func TestSuppressedExemplars(t *testing.T) {
	diags := RunSuite(loadBroken(t), Analyzers())
	type dir struct {
		file string
		line int
	}
	directives := map[string][]dir{}
	re := regexp.MustCompile(`^//lint:ignore (\S+) \S`)
	err := filepath.WalkDir("testdata/src", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := re.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
				directives[m[1]] = append(directives[m[1]], dir{file: path, line: i + 1})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(append([]string{}, concurrencyIDs...), "nakedtime") {
		if len(directives[id]) == 0 {
			t.Errorf("no suppressed exemplar for %s in testdata/src", id)
			continue
		}
		for _, dd := range directives[id] {
			for _, diag := range diags {
				if diag.Analyzer != id {
					continue
				}
				if filepath.Clean(diag.Pos.Filename) == filepath.Clean(dd.file) &&
					(diag.Pos.Line == dd.line || diag.Pos.Line == dd.line+1) {
					t.Errorf("directive at %s:%d did not suppress %s", dd.file, dd.line, diag)
				}
			}
		}
	}
}

// TestSuiteCleanOnRepo is the zero-findings gate CI relies on: the full
// suite over the real module must be empty.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Walk()
	if err != nil {
		t.Fatal(err)
	}
	var passes []*Pass
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		passes = append(passes, pkg.Pass(l.Fset))
	}
	diags := RunSuite(NewProgram(passes), Analyzers())
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestAllowlistMatchesDesign keeps lockorder.allow and the DESIGN.md §13
// lock-order table in lockstep.
func TestAllowlistMatchesDesign(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	i := strings.Index(doc, "## 13")
	if i < 0 {
		t.Fatal("DESIGN.md has no §13")
	}
	section := doc[i:]
	if j := strings.Index(section[3:], "\n## "); j >= 0 {
		section = section[:j+3]
	}
	re := regexp.MustCompile("(?m)^\\| `([^`]+)` +\\| `([^`]+)` +\\|")
	documented := map[[2]string]bool{}
	for _, m := range re.FindAllStringSubmatch(section, -1) {
		documented[[2]string{m[1], m[2]}] = true
	}
	allowed := DefaultAllowlist().Edges()
	for _, e := range allowed {
		if !documented[e] {
			t.Errorf("lockorder.allow edge %s -> %s is missing from the DESIGN.md §13 table", e[0], e[1])
		}
		delete(documented, e)
	}
	for e := range documented {
		t.Errorf("DESIGN.md §13 documents %s -> %s but lockorder.allow does not sanction it", e[0], e[1])
	}
	if len(allowed) == 0 {
		t.Error("embedded allowlist is empty")
	}
}
