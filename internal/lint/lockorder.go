package lint

import (
	"bufio"
	_ "embed"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Allowlist is the sanctioned lock-nesting order: an edge "A -> B" means
// code may acquire B while holding A. Any observed nesting outside the
// list, and any cycle among observed nestings, is a lockorder diagnostic.
// The canonical list lives in internal/lint/lockorder.allow and is
// documented as the lock-order graph in DESIGN.md §13 — the two are kept
// in sync by a test.
type Allowlist struct {
	edges map[[2]string]bool
}

//go:embed lockorder.allow
var defaultAllow string

// DefaultAllowlist parses the embedded lockorder.allow.
func DefaultAllowlist() *Allowlist {
	a, err := ParseAllowlist(defaultAllow)
	if err != nil {
		// The embedded file is validated by tests; a parse failure here is
		// a build defect, not a runtime condition.
		panic("lint: embedded lockorder.allow: " + err.Error())
	}
	return a
}

// EmptyAllowlist sanctions nothing; test programs use it.
func EmptyAllowlist() *Allowlist { return &Allowlist{edges: map[[2]string]bool{}} }

// ParseAllowlist reads "from -> to" lines; '#' starts a comment.
func ParseAllowlist(src string) (*Allowlist, error) {
	a := &Allowlist{edges: map[[2]string]bool{}}
	sc := bufio.NewScanner(strings.NewReader(src))
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		from, to, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"from -> to\", got %q", n, line)
		}
		a.edges[[2]string{strings.TrimSpace(from), strings.TrimSpace(to)}] = true
	}
	return a, sc.Err()
}

// Edges lists the sanctioned pairs, sorted, for the docs-sync test.
func (a *Allowlist) Edges() [][2]string {
	out := make([][2]string, 0, len(a.edges))
	for e := range a.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (a *Allowlist) allows(from, to string) bool {
	return a.edges[[2]string{from, to}]
}

// LockOrder builds the whole-program mutex acquisition graph and flags
// (a) a mutex acquired while already held — sync mutexes are not
// reentrant, so that is a guaranteed or writer-pending deadlock; (b) any
// nesting edge absent from the sanctioned allowlist; and (c) cycles among
// the observed edges, the classic AB/BA deadlock.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex self-acquisition, lock nestings outside lockorder.allow, and acquisition-order cycles",
	RunProgram: func(prog *Program) []Diagnostic {
		g := prog.Facts().lockGraph()
		allow := prog.Allow
		if allow == nil {
			allow = EmptyAllowlist()
		}
		var out []Diagnostic
		for _, s := range g.selfs {
			msg := fmt.Sprintf("%s acquired in %s while already held; sync mutexes are not reentrant", s.name, s.fn)
			if s.via != "" {
				msg += " (via " + s.via + ")"
			}
			out = append(out, Diagnostic{Pos: s.pos, Analyzer: "lockorder", Message: msg})
		}
		for _, e := range g.edges {
			if allow.allows(e.fromName, e.toName) {
				continue
			}
			msg := fmt.Sprintf("%s acquired while holding %s in %s", e.toName, e.fromName, e.fn)
			if e.via != "" {
				msg += " (via " + e.via + ")"
			}
			msg += "; undocumented lock nesting — add to lockorder.allow and DESIGN.md §13 if sanctioned"
			out = append(out, Diagnostic{Pos: e.pos, Analyzer: "lockorder", Message: msg})
		}
		out = append(out, lockCycles(g.edges)...)
		return out
	},
}

// lockCycles reports each cycle in the observed nesting graph once, at
// the lexically first edge on the cycle.
func lockCycles(edges []lockEdge) []Diagnostic {
	adj := map[*types.Var][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*types.Var]int{}
	var out []Diagnostic
	var stack []lockEdge
	var visit func(v *types.Var)
	visit = func(v *types.Var) {
		color[v] = gray
		for _, e := range adj[v] {
			switch color[e.to] {
			case white:
				stack = append(stack, e)
				visit(e.to)
				stack = stack[:len(stack)-1]
			case gray:
				cycle := append(append([]lockEdge{}, stackSince(stack, e.to)...), e)
				out = append(out, cycleDiag(cycle))
			}
		}
		color[v] = black
	}
	// Deterministic start order: edges are already in discovery order.
	for _, e := range edges {
		if color[e.from] == white {
			visit(e.from)
		}
	}
	return out
}

// stackSince returns the suffix of the DFS stack starting at the edge
// leaving v (the cycle entry point).
func stackSince(stack []lockEdge, v *types.Var) []lockEdge {
	for i, e := range stack {
		if e.from == v {
			return stack[i:]
		}
	}
	return stack
}

func cycleDiag(cycle []lockEdge) Diagnostic {
	names := make([]string, 0, len(cycle)+1)
	for _, e := range cycle {
		names = append(names, e.fromName)
	}
	names = append(names, cycle[len(cycle)-1].toName)
	first := cycle[0]
	return Diagnostic{
		Pos:      first.pos,
		Analyzer: "lockorder",
		Message: fmt.Sprintf("lock-order cycle %s: inconsistent nesting can deadlock",
			strings.Join(names, " → ")),
	}
}
