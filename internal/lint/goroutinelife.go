package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife flags fire-and-forget goroutines in library packages.
// Every goroutine the platform starts (server applier, WAL flusher, SSE
// writers, parallel diagnosis workers) must have a visible lifecycle: it
// drains a channel that Close shuts, selects on a stop/context signal, or
// signals a WaitGroup. A `go` statement with none of those is a leak —
// restarts and tests accumulate them, and shutdown can't drain them.
//
// The analyzer looks for lifecycle evidence in the goroutine body: a
// range over a channel, a receive, a select, ctx.Done(), or a
// sync.WaitGroup Done/Add discipline — following calls to same-package
// functions a few levels deep. Goroutines whose lifecycle lives outside
// the module (http.Server.Serve's listener close, say) carry a
// //lint:ignore goroutinelife directive explaining the tie.
// Package main is exempt: process lifetime is the lifecycle there.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "flags goroutines in library packages not tied to a channel close, stop signal, context, or WaitGroup",
	Run: func(pass *Pass) []Diagnostic {
		if pass.Pkg.Name() == "main" {
			return nil
		}
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
						decls[fn] = fd
					}
				}
			}
		}
		var out []Diagnostic
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineTied(pass, decls, g.Call, map[*types.Func]bool{}, 3) {
					out = append(out, pass.diag("goroutinelife", g.Pos(),
						"goroutine is not visibly tied to a channel close, stop signal, context, or WaitGroup; give it a lifecycle or document the external tie with //lint:ignore goroutinelife <reason>"))
				}
				return true
			})
		}
		return out
	},
}

// goroutineTied reports whether the spawned call has lifecycle evidence.
func goroutineTied(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, visiting map[*types.Func]bool, depth int) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyTied(pass, decls, lit.Body, visiting, depth)
	}
	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		return false
	}
	fd, ok := decls[callee]
	if !ok {
		return false // external or other-package target: not provable here
	}
	return bodyTied(pass, decls, fd.Body, visiting, depth)
}

// bodyTied scans a body for lifecycle constructs, following same-package
// calls up to depth levels.
func bodyTied(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visiting map[*types.Func]bool, depth int) bool {
	tied := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
					return false
				}
			}
		case *ast.SelectStmt:
			tied = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if isWaitGroupMethod(fn, "Done") {
					tied = true
					return false
				}
				callees = append(callees, fn)
			}
		}
		return true
	})
	if tied {
		return true
	}
	if depth == 0 {
		return false
	}
	for _, fn := range callees {
		if visiting[fn] {
			continue
		}
		if fd, ok := decls[fn]; ok {
			visiting[fn] = true
			if bodyTied(pass, decls, fd.Body, visiting, depth-1) {
				return true
			}
		}
	}
	return false
}

func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
