package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"reflect"
	"testing"

	"grca/internal/grcavet"
)

// TestEnvelopeSchemaMatchesVet asserts `grcalint -json` and `grca vet
// -json` emit the same envelope shape, field for field (name, JSON tag,
// and Go type), so downstream tooling can merge the two streams.
func TestEnvelopeSchemaMatchesVet(t *testing.T) {
	tags := func(st reflect.Type) []string {
		var out []string
		for i := 0; i < st.NumField(); i++ {
			tag := st.Field(i).Tag.Get("json")
			if tag == "" || tag == "-" {
				continue // unexported to JSON (e.g. the Severity enum)
			}
			out = append(out, tag+" "+st.Field(i).Type.String())
		}
		return out
	}
	got := tags(reflect.TypeOf(Envelope{}))
	want := tags(reflect.TypeOf(grcavet.Finding{}))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lint.Envelope JSON schema diverged from grcavet.Finding:\n lint: %v\n  vet: %v", got, want)
	}
}

// TestEnvelopeRoundTrip checks a lint diagnostic serialized through the
// envelope parses back as a grcavet.Finding — byte-level mergeability.
func TestEnvelopeRoundTrip(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "internal/store/store.go", Line: 7, Column: 2},
		Analyzer: "lockorder",
		Message:  "example finding",
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Diagnostic{d}); err != nil {
		t.Fatal(err)
	}
	var fs []grcavet.Finding
	if err := json.Unmarshal(buf.Bytes(), &fs); err != nil {
		t.Fatalf("grca vet's Finding cannot parse grcalint -json output: %v", err)
	}
	if len(fs) != 1 || fs[0].Check != "lockorder" || fs[0].File != "internal/store/store.go" ||
		fs[0].Line != 7 || fs[0].Level != "error" || fs[0].Message != "example finding" {
		t.Errorf("round-trip mangled the finding: %+v", fs)
	}
	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got := string(bytes.TrimSpace(empty.Bytes())); got != "[]" {
		t.Errorf("empty finding set serializes as %q, want []", got)
	}
}
