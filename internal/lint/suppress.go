package lint

// //lint:ignore handling. A directive of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it
// suppresses that analyzer's diagnostics there. The reason is mandatory
// and the analyzer ID must exist: a malformed directive suppresses
// nothing and is itself reported under the badignore ID, so dead or
// typo'd escape hatches cannot silently accumulate.

import (
	"go/token"
	"strconv"
	"strings"
)

// BadIgnore is the analyzer ID under which malformed //lint:ignore
// directives are reported. It is reserved: badignore diagnostics cannot
// themselves be suppressed.
const BadIgnore = "badignore"

type directive struct {
	pos    token.Position
	id     string
	reason string
}

// collectDirectives scans every file's comments for lint:ignore
// directives.
func collectDirectives(prog *Program) []directive {
	var dirs []directive
	for _, pass := range prog.Passes {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					d := directive{pos: pass.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						d.id = fields[0]
					}
					if len(fields) > 1 {
						d.reason = strings.Join(fields[1:], " ")
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs
}

// applySuppressions filters diagnostics matched by a well-formed
// directive and appends a badignore diagnostic for each malformed one.
// known maps valid analyzer IDs.
func applySuppressions(dirs []directive, known map[string]bool, diags []Diagnostic) []Diagnostic {
	var good []directive
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.id == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: BadIgnore,
				Message: "//lint:ignore needs an analyzer ID and a reason"})
		case d.id == BadIgnore || !known[d.id]:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: BadIgnore,
				Message: "//lint:ignore names unknown analyzer " + strconv.Quote(d.id)})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: BadIgnore,
				Message: "//lint:ignore " + d.id + " is missing a reason; say why the finding is safe"})
		default:
			good = append(good, d)
		}
	}
	for _, diag := range diags {
		if !suppressed(good, diag) {
			out = append(out, diag)
		}
	}
	return out
}

func suppressed(dirs []directive, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.id != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1 {
			return true
		}
	}
	return false
}
