package lint

// Shared concurrency facts. computeFacts walks every function body in the
// program once and extracts, per function: the linear sequence of mutex
// operations, the statically resolvable calls, and the hook-field
// registrations/invocations (the store's OnAppend/OnEvict pattern). From
// those it derives the transitive lock-acquisition sets (which locks a
// call may take, directly or through callees and hook callbacks) used by
// the lockorder and hookreentry analyzers.
//
// The walk deliberately does not descend into function literals: a
// closure's lock operations belong to the context that eventually invokes
// it, not to the function that happens to contain its text. Literals
// re-enter the analysis where their invocation point is known — hook
// registrations (the literal is bound to a hook field and runs at that
// field's invocation sites) and `go` statements (goroutinelife inspects
// the body directly).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// opKind classifies a mutex operation.
type opKind uint8

const (
	opLock opKind = iota
	opRLock
	opUnlock
	opRUnlock
)

func (k opKind) String() string {
	return [...]string{"Lock", "RLock", "Unlock", "RUnlock"}[k]
}

func (k opKind) acquires() bool { return k == opLock || k == opRLock }
func (k opKind) write() bool    { return k == opLock || k == opUnlock }

// A lockOp is one mutex method call in a function body.
type lockOp struct {
	v        *types.Var // the mutex variable (field or package/local var)
	name     string     // display ID, e.g. "store.Store.mu"
	kind     opKind
	deferred bool
	pos      token.Pos
}

// A callSite is one statically resolved call to a module-local function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

// A hookInvoke marks a call through a hook field's elements (directly,
// via range, or via a local alias of the field).
type hookInvoke struct {
	field *types.Var
	pos   token.Pos
}

// A binding records a callback registered onto a hook field.
type binding struct {
	field *types.Var
	fn    *types.Func  // named function/method, or nil when lit != nil
	lit   *ast.FuncLit // literal callback
	pass  *Pass
	pos   token.Pos // registration callsite
}

// funcFacts are the extracted facts for one declared function.
type funcFacts struct {
	fn    *types.Func
	pass  *Pass
	decl  *ast.FuncDecl
	ops   []lockOp
	calls []callSite
	hooks []hookInvoke
}

// acquire is one entry of a transitive acquisition set: the lock, the
// strongest mode seen, and a human-readable witness path.
type acquire struct {
	write bool
	via   string // call path, "" for a direct acquisition
}

type facts struct {
	prog  *Program
	funcs map[*types.Func]*funcFacts
	// ordered lists every funcFacts in deterministic (package, position)
	// order; all whole-program iteration goes through it so diagnostics
	// and witness paths are stable across runs.
	ordered []*funcFacts
	// lockNames memoizes display IDs per mutex variable.
	lockNames map[*types.Var]string
	// hookFields maps a func-slice field to the registration methods that
	// append to it; presence marks the field as a hook.
	hookFields map[*types.Var]bool
	// regMethods maps a registration method to the hook field it appends
	// its parameter to.
	regMethods map[*types.Func]*types.Var
	bindings   []binding
	// trans memoizes transitive acquisition sets for declared functions.
	trans map[*types.Func]map[*types.Var]acquire
	// litTrans holds the same for registered literal callbacks.
	litTrans map[*ast.FuncLit]map[*types.Var]acquire
	// litFacts holds extracted facts for registered literal callbacks.
	litFacts map[*ast.FuncLit]*funcFacts
	// graph memoizes the lock-graph collection pass (lockgraph.go).
	graph *lockGraph
}

func computeFacts(prog *Program) *facts {
	fs := &facts{
		prog:       prog,
		funcs:      map[*types.Func]*funcFacts{},
		lockNames:  map[*types.Var]string{},
		hookFields: map[*types.Var]bool{},
		regMethods: map[*types.Func]*types.Var{},
		trans:      map[*types.Func]map[*types.Var]acquire{},
		litTrans:   map[*ast.FuncLit]map[*types.Var]acquire{},
		litFacts:   map[*ast.FuncLit]*funcFacts{},
	}
	// Pass 1: extract per-function ops/calls and find registration methods.
	for _, pass := range prog.Passes {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFacts{fn: obj, pass: pass, decl: fd}
				fs.extract(pass, fd.Body, ff)
				fs.funcs[obj] = ff
				fs.ordered = append(fs.ordered, ff)
				if field := fs.registrationField(pass, fd); field != nil {
					fs.regMethods[obj] = field
					fs.hookFields[field] = true
				}
			}
		}
	}
	sort.Slice(fs.ordered, func(i, j int) bool {
		a, b := fs.ordered[i], fs.ordered[j]
		if a.pass.Path != b.pass.Path {
			return a.pass.Path < b.pass.Path
		}
		ap := a.pass.Fset.Position(a.decl.Pos())
		bp := b.pass.Fset.Position(b.decl.Pos())
		if ap.Filename != bp.Filename {
			return ap.Filename < bp.Filename
		}
		return ap.Line < bp.Line
	})
	// Pass 2: hook invocations and registration callsites need the full
	// hook-field set, so resolve them after pass 1.
	for _, ff := range fs.ordered {
		fs.resolveHooks(ff)
	}
	// Extract facts for literal callbacks now that bindings are known.
	for _, b := range fs.bindings {
		if b.lit != nil && fs.litFacts[b.lit] == nil {
			lf := &funcFacts{pass: b.pass}
			fs.extract(b.pass, b.lit.Body, lf)
			fs.litFacts[b.lit] = lf
		}
	}
	return fs
}

// extract walks body in source order, recording mutex ops and calls.
// Function literals are skipped (see the package comment above).
func (fs *facts) extract(pass *Pass, body *ast.BlockStmt, ff *funcFacts) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if op, ok := fs.lockCall(pass, n.Call); ok {
				op.deferred = true
				ff.ops = append(ff.ops, op)
				return false
			}
		case *ast.CallExpr:
			if op, ok := fs.lockCall(pass, n); ok {
				ff.ops = append(ff.ops, op)
				return true
			}
			if callee := calleeFunc(pass.Info, n); callee != nil && fs.moduleLocal(callee) {
				ff.calls = append(ff.calls, callSite{callee: callee, pos: n.Pos()})
			}
		}
		return true
	})
	sort.Slice(ff.ops, func(i, j int) bool { return ff.ops[i].pos < ff.ops[j].pos })
	sort.Slice(ff.calls, func(i, j int) bool { return ff.calls[i].pos < ff.calls[j].pos })
}

// moduleLocal reports whether the function belongs to a package in the
// program (we only have syntax for those).
func (fs *facts) moduleLocal(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	for _, pass := range fs.prog.Passes {
		if pass.Pkg == fn.Pkg() {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to its static callee, handling
// plain functions, package-qualified functions, and method calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// lockCall recognizes a mutex operation and memoizes the lock's display
// name for whole-program messages.
func (fs *facts) lockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	op, ok := resolveLockOp(pass.Info, call)
	if ok {
		fs.lockNames[op.v] = op.name
	}
	return op, ok
}

// resolveLockOp recognizes x.Lock/RLock/Unlock/RUnlock on sync.Mutex or
// sync.RWMutex and resolves the mutex variable plus a stable display ID:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level
// mutexes, the bare identifier for locals.
func resolveLockOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	v, name := lockVar(info, sel.X)
	if v == nil {
		return lockOp{}, false
	}
	return lockOp{v: v, name: name, kind: kind, pos: call.Pos()}, true
}

func lockVar(info *types.Info, x ast.Expr) (*types.Var, string) {
	switch x := x.(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return nil, ""
		}
		if v.Pkg() != nil && !v.IsField() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
		return v, v.Name()
	case *ast.SelectorExpr:
		selInfo, ok := info.Selections[x]
		if !ok {
			return nil, ""
		}
		v, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return nil, ""
		}
		t := selInfo.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return v, named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Name()
		}
		if v.Pkg() != nil {
			return v, v.Pkg().Name() + "." + v.Name()
		}
		return v, v.Name()
	}
	return nil, ""
}

// registrationField detects the hook-registration shape: a method whose
// body appends one of its function-typed parameters to a func-slice field
// of the receiver, e.g.
//
//	func (s *Store) OnAppend(fn func(*event.Instance)) {
//	    s.onAppend = append(s.onAppend, fn)
//	}
func (fs *facts) registrationField(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || fd.Type.Params == nil {
		return nil
	}
	params := map[types.Object]bool{}
	for _, p := range fd.Type.Params.List {
		if _, ok := p.Type.(*ast.FuncType); !ok {
			continue
		}
		for _, n := range p.Names {
			if obj := pass.Info.Defs[n]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return nil
	}
	var field *types.Var
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		arg, ok := call.Args[len(call.Args)-1].(*ast.Ident)
		if !ok || !params[pass.Info.Uses[arg]] {
			return true
		}
		if sel, ok := asg.Lhs[0].(*ast.SelectorExpr); ok {
			if si, ok := pass.Info.Selections[sel]; ok {
				if v, ok := si.Obj().(*types.Var); ok && v.IsField() {
					field = v
					return false
				}
			}
		}
		return true
	})
	return field
}

// resolveHooks finds, inside one function, (a) calls to registration
// methods — recording what callback was bound — and (b) invocations of
// hook-field elements: direct indexing, range over the field, or range
// over a local alias assigned from the field.
func (fs *facts) resolveHooks(ff *funcFacts) {
	if ff.decl == nil {
		return
	}
	pass := ff.pass
	// aliases maps local variables assigned (only) from a hook field.
	aliases := map[types.Object]*types.Var{}
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok && len(asg.Lhs) == len(asg.Rhs) {
			for i, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if f := fs.hookFieldOf(pass, asg.Rhs[i]); f != nil {
					if obj := pass.Info.Defs[id]; obj != nil {
						aliases[obj] = f
					} else if obj := pass.Info.Uses[id]; obj != nil {
						aliases[obj] = f
					}
				}
			}
		}
		return true
	})
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Registration callsite?
			if callee := calleeFunc(pass.Info, n); callee != nil {
				if field, ok := fs.regMethods[callee]; ok && len(n.Args) >= 1 {
					fs.bind(pass, field, n.Args[0], n.Pos())
					return true
				}
			}
			// Direct element invocation: x.hooks[i](...) .
			if idx, ok := n.Fun.(*ast.IndexExpr); ok {
				if f := fs.hookFieldOf(pass, idx.X); f != nil {
					ff.hooks = append(ff.hooks, hookInvoke{field: f, pos: n.Pos()})
				}
			}
		case *ast.RangeStmt:
			// for _, fn := range x.hooks { fn(...) }  — also via alias.
			f := fs.hookFieldOf(pass, n.X)
			if f == nil {
				if id, ok := n.X.(*ast.Ident); ok {
					f = aliases[pass.Info.Uses[id]]
				}
			}
			if f == nil {
				return true
			}
			val, ok := n.Value.(*ast.Ident)
			if !ok {
				return true
			}
			valObj := pass.Info.Defs[val]
			ast.Inspect(n.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && pass.Info.Uses[id] == valObj && valObj != nil {
					ff.hooks = append(ff.hooks, hookInvoke{field: f, pos: call.Pos()})
				}
				return true
			})
		}
		return true
	})
	sort.Slice(ff.hooks, func(i, j int) bool { return ff.hooks[i].pos < ff.hooks[j].pos })
}

// hookFieldOf resolves an expression to a known hook field, or nil.
func (fs *facts) hookFieldOf(pass *Pass, x ast.Expr) *types.Var {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	si, ok := pass.Info.Selections[sel]
	if !ok {
		return nil
	}
	v, ok := si.Obj().(*types.Var)
	if !ok || !fs.hookFields[v] {
		return nil
	}
	return v
}

// bind records a callback registered at a callsite.
func (fs *facts) bind(pass *Pass, field *types.Var, arg ast.Expr, pos token.Pos) {
	b := binding{field: field, pass: pass, pos: pos}
	switch arg := arg.(type) {
	case *ast.FuncLit:
		b.lit = arg
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[arg].(*types.Func); ok {
			b.fn = fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[arg.Sel].(*types.Func); ok {
			b.fn = fn
		}
	}
	if b.fn != nil || b.lit != nil {
		fs.bindings = append(fs.bindings, b)
	}
}

// transAcquires returns the set of locks fn may acquire, directly or
// through module-local callees and hook callbacks, with witness paths.
func (fs *facts) transAcquires(fn *types.Func) map[*types.Var]acquire {
	if got, ok := fs.trans[fn]; ok {
		return got // nil during in-progress recursion: cycle-safe
	}
	fs.trans[fn] = nil
	ff := fs.funcs[fn]
	if ff == nil {
		fs.trans[fn] = map[*types.Var]acquire{}
		return fs.trans[fn]
	}
	out := fs.transOf(ff)
	fs.trans[fn] = out
	return out
}

// litAcquires is transAcquires for a registered literal callback.
func (fs *facts) litAcquires(lit *ast.FuncLit) map[*types.Var]acquire {
	if got, ok := fs.litTrans[lit]; ok {
		return got
	}
	fs.litTrans[lit] = nil
	ff := fs.litFacts[lit]
	if ff == nil {
		fs.litTrans[lit] = map[*types.Var]acquire{}
		return fs.litTrans[lit]
	}
	out := fs.transOf(ff)
	fs.litTrans[lit] = out
	return out
}

// transOf unions a function's direct acquisitions with its callees' and
// invoked hook callbacks' transitive sets.
func (fs *facts) transOf(ff *funcFacts) map[*types.Var]acquire {
	out := map[*types.Var]acquire{}
	add := func(v *types.Var, a acquire) {
		if prev, ok := out[v]; ok {
			if a.write && !prev.write {
				prev.write = true
				out[v] = prev
			}
			return
		}
		out[v] = a
	}
	for _, op := range ff.ops {
		if op.kind.acquires() {
			add(op.v, acquire{write: op.kind.write()})
		}
	}
	for _, cs := range ff.calls {
		for v, a := range fs.transAcquires(cs.callee) {
			via := funcLabel(cs.callee)
			if a.via != "" {
				via += " → " + a.via
			}
			add(v, acquire{write: a.write, via: via})
		}
	}
	for _, hi := range ff.hooks {
		for _, b := range fs.bindings {
			if b.field != hi.field {
				continue
			}
			var sub map[*types.Var]acquire
			var blabel string
			if b.fn != nil {
				sub = fs.transAcquires(b.fn)
				blabel = funcLabel(b.fn)
			} else {
				sub = fs.litAcquires(b.lit)
				blabel = "registered func literal"
			}
			for v, a := range sub {
				via := "hook " + blabel
				if a.via != "" {
					via += " → " + a.via
				}
				add(v, acquire{write: a.write, via: via})
			}
		}
	}
	return out
}

// funcLabel renders a function as pkg.Name or pkg.(Type).Method.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// mutexFieldsOf returns the sync.Mutex/RWMutex fields declared on the
// struct that owns the given field (used to tie hook fields to their
// guarding locks).
func mutexFieldsOf(field *types.Var) []*types.Var {
	st := owningStruct(field)
	if st == nil {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			out = append(out, f)
		}
	}
	return out
}

// owningStruct finds the struct type containing the field by scanning the
// field's package scope for a named struct declaring it.
func owningStruct(field *types.Var) *types.Struct {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return st
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
