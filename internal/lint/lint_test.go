package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// check type-checks one synthetic file as the package at path and runs
// every analyzer, returning the diagnostics' "analyzer: message" strings.
func check(t *testing.T, path, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return RunAll(&Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info, Path: path}, Analyzers())
}

func assertDiags(t *testing.T, got []Diagnostic, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i].String(), w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], w)
		}
	}
}

func TestNakedTime(t *testing.T) {
	src := `package p
import "time"
var began = time.Now()
func elapsed() time.Duration { return time.Since(began) }
`
	assertDiags(t, check(t, "grca/internal/fake", src),
		"nakedtime: naked time.Now", "nakedtime: naked time.Since")

	// Sanctioned packages: main and the obs package itself.
	assertDiags(t, check(t, "grca/cmd/fake", strings.Replace(src, "package p", "package main", 1)))
	assertDiags(t, check(t, "grca/internal/obs", src))
}

func TestNakedTimeResolvesImports(t *testing.T) {
	// A local type named time must not fool the analyzer, and an aliased
	// std import must still be caught.
	clean := `package p
type clock struct{}
func (clock) Now() int { return 0 }
var time clock
var x = time.Now()
`
	assertDiags(t, check(t, "grca/internal/fake", clean))

	aliased := `package p
import tm "time"
var x = tm.Now()
`
	assertDiags(t, check(t, "grca/internal/fake", aliased), "nakedtime: naked time.Now")
}

func TestUTCTime(t *testing.T) {
	bad := `package p
import "time"
var loc = time.FixedZone("x", 3600)
var a = time.Date(2010, 1, 1, 0, 0, 0, 0, loc)
var b = time.Now().In(time.Local)
`
	// One utctime for the zoned Date, then (in line order) a nakedtime for
	// the time.Now and a utctime for time.Local.
	assertDiags(t, check(t, "grca/internal/fake", bad),
		"utctime: time.Date in a non-UTC zone", "nakedtime", "utctime: time.Local")

	good := `package p
import "time"
var loc = time.FixedZone("x", 3600)
var a = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
var b = time.Date(2010, 1, 1, 0, 0, 0, 0, loc).UTC()
`
	assertDiags(t, check(t, "grca/internal/fake", good))
}

func TestNoPrint(t *testing.T) {
	src := `package p
import "fmt"
func f() {
	fmt.Println("boo")
	fmt.Printf("%d", 1)
	_ = fmt.Sprintf("ok")
	fmt.Errorf("ok")
}
`
	assertDiags(t, check(t, "grca/internal/fake", src),
		"noprint: fmt.Println", "noprint: fmt.Printf")
	// Outside internal/ (and in package main) printing is fine.
	assertDiags(t, check(t, "grca/cmd/fake", strings.Replace(src, "package p", "package main", 1)))
}

func TestMapIter(t *testing.T) {
	bad := `package p
import "fmt"
import "os"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stderr, "%s=%d", k, v)
	}
}
`
	assertDiags(t, check(t, "grca/internal/fake", bad),
		"mapiter: Fprintf inside range over map")

	good := `package p
import (
	"fmt"
	"os"
	"sort"
)
func f(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "%s=%d", k, m[k])
	}
}
`
	assertDiags(t, check(t, "grca/internal/fake", good))
}

// TestLoaderOnRepo loads a real module package through the source loader
// and checks the Walk discovery covers the well-known packages.
func TestLoaderOnRepo(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "grca" {
		t.Fatalf("module = %q, want grca", l.Module)
	}
	pkg, err := l.Load("grca/internal/locus")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Pkg.Name() != "locus" || len(pkg.Files) == 0 {
		t.Errorf("loaded %q with %d files", pkg.Pkg.Name(), len(pkg.Files))
	}
	if ds := RunAll(pkg.Pass(l.Fset), Analyzers()); len(ds) != 0 {
		t.Errorf("locus has diagnostics: %v", ds)
	}

	paths, err := l.Walk()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}
	for _, want := range []string{"grca/internal/engine", "grca/cmd/grca", "grca/cmd/grcalint", "grca/internal/lint"} {
		if !seen[want] {
			t.Errorf("Walk missed %s (got %d paths)", want, len(paths))
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Walk descended into testdata: %s", p)
		}
	}
}
