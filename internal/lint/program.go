package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// A Program presents every type-checked package of one module to the
// whole-program analyzers. The concurrency checks (lockorder, hookreentry)
// need the cross-package view: the lock-acquisition edges this codebase
// cares about span store → rollup, store → wal, server → realtime.
type Program struct {
	Passes []*Pass
	// Allow is the sanctioned lock-order allowlist consulted by the
	// lockorder analyzer. Defaults to the embedded lockorder.allow.
	Allow *Allowlist

	facts *facts
}

// NewProgram wraps the passes for whole-program analysis.
func NewProgram(passes []*Pass) *Program {
	return &Program{Passes: passes, Allow: DefaultAllowlist()}
}

// Facts computes (once) the shared concurrency facts: per-function lock
// operations, the static call graph, transitive lock acquisitions, and
// hook-field bindings.
func (p *Program) Facts() *facts {
	if p.facts == nil {
		p.facts = computeFacts(p)
	}
	return p.facts
}

// RunSuite applies every analyzer — per-package and whole-program — to the
// program, applies //lint:ignore suppressions, reports malformed ignore
// directives as badignore diagnostics, and returns the survivors sorted by
// position.
func RunSuite(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			out = append(out, a.RunProgram(prog)...)
		case a.Run != nil:
			for _, pass := range prog.Passes {
				out = append(out, a.Run(pass)...)
			}
		}
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs := collectDirectives(prog)
	out = applySuppressions(dirs, known, out)
	sortDiagnostics(out)
	return out
}

// Envelope is the JSON shape shared with `grca vet -json`
// (grcavet.Finding): downstream tooling can merge the two streams. The
// field set and tags are asserted identical by a cross-tool schema test.
type Envelope struct {
	Check   string `json:"check"`
	Level   string `json:"level"`
	File    string `json:"file"`
	Line    int    `json:"line,omitempty"`
	Subject string `json:"subject,omitempty"`
	Message string `json:"message"`
}

// Envelope converts the diagnostic to the shared JSON envelope. Every
// lint diagnostic gates CI, so the level is always "error".
func (d Diagnostic) Envelope() Envelope {
	return Envelope{
		Check:   d.Analyzer,
		Level:   "error",
		File:    d.Pos.Filename,
		Line:    d.Pos.Line,
		Message: d.Message,
	}
}

// WriteJSON writes the diagnostics as an indented JSON array of envelopes
// ("[]" when empty), mirroring `grca vet -json`.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	envs := make([]Envelope, 0, len(diags))
	for _, d := range diags {
		envs = append(envs, d.Envelope())
	}
	sort.SliceStable(envs, func(i, j int) bool {
		if envs[i].File != envs[j].File {
			return envs[i].File < envs[j].File
		}
		return envs[i].Line < envs[j].Line
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envs)
}
