package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicMix flags variables (typically struct fields) that one part of a
// package accesses through sync/atomic and another part reads or writes
// plainly. Mixing the two gives neither atomicity nor visibility: the
// plain access races with the atomic one, and the race detector only
// catches it when both sides actually interleave under test. The fix in
// this codebase is the typed atomics (atomic.Int64 & friends, as obs
// uses), which make plain access a compile error.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags variables accessed both via sync/atomic and via plain reads/writes in the same package",
	Run: func(pass *Pass) []Diagnostic {
		type access struct {
			atomicPos []ast.Node
			plainPos  []ast.Node
		}
		accesses := map[*types.Var]*access{}
		names := map[*types.Var]string{}
		get := func(v *types.Var) *access {
			a, ok := accesses[v]
			if !ok {
				a = &access{}
				accesses[v] = a
			}
			return a
		}
		// First pass: operands of &v arguments to sync/atomic calls.
		atomicArgs := map[ast.Expr]bool{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !selectsPackage(pass.Info, sel, "sync/atomic") {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					if v, name := addressedVar(pass.Info, un.X); v != nil {
						atomicArgs[un.X] = true
						get(v).atomicPos = append(get(v).atomicPos, un)
						names[v] = name
					}
				}
				return true
			})
		}
		if len(accesses) == 0 {
			return nil
		}
		// Second pass: every other mention of those variables is a plain
		// access.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok || atomicArgs[expr] {
					return true
				}
				v, _ := addressedVar(pass.Info, expr)
				if v == nil {
					return true
				}
				if a, tracked := accesses[v]; tracked {
					// Skip the inner Ident/Selector of an already-counted
					// expression: only count the outermost mention.
					if !withinAtomicArg(atomicArgs, expr) {
						a.plainPos = append(a.plainPos, expr)
					}
					return false
				}
				return true
			})
		}
		var vars []*types.Var
		for v, a := range accesses {
			if len(a.plainPos) > 0 {
				vars = append(vars, v)
			}
		}
		sort.Slice(vars, func(i, j int) bool { return names[vars[i]] < names[vars[j]] })
		var out []Diagnostic
		for _, v := range vars {
			a := accesses[v]
			first := a.plainPos[0]
			for _, p := range a.plainPos[1:] {
				if p.Pos() < first.Pos() {
					first = p
				}
			}
			out = append(out, pass.diag("atomicmix", first.Pos(),
				"%s is accessed with sync/atomic (e.g. line %d) but read/written plainly here; use a typed atomic (atomic.Int64 etc.) for every access",
				names[v], pass.Fset.Position(a.atomicPos[0].Pos()).Line))
		}
		return out
	},
}

// addressedVar resolves an identifier or field selector to its variable.
func addressedVar(info *types.Info, x ast.Expr) (*types.Var, string) {
	switch x := x.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, v.Name()
		}
	case *ast.SelectorExpr:
		return lockVar(info, x) // same resolution + naming as for mutexes
	}
	return nil, ""
}

// withinAtomicArg reports whether expr is a sub-expression of a counted
// &arg operand (the selector inside &s.field, say).
func withinAtomicArg(atomicArgs map[ast.Expr]bool, expr ast.Expr) bool {
	for arg := range atomicArgs {
		if arg.Pos() <= expr.Pos() && expr.End() <= arg.End() {
			return true
		}
	}
	return false
}
