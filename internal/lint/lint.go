// Package lint is a small, dependency-free static-analysis framework for
// this repository, plus the project's custom analyzers. It fills the role
// of golang.org/x/tools/go/analysis without the dependency: packages are
// parsed with go/parser, type-checked with go/types against a
// source-level importer (loader.go), and each Analyzer's Run inspects the
// typed syntax and reports Diagnostics.
//
// The analyzers encode project invariants that ordinary `go vet` cannot
// see:
//
//   - nakedtime: the pipeline reads wall time through obs.Now/obs.Since so
//     replays and tests can substitute a deterministic clock; a naked
//     time.Now() in internal/ silently escapes that control.
//   - utctime: every feed in the paper's Data Collector normalizes device
//     timestamps to UTC (router syslog arrives in four device-local
//     zones); constructing a time.Time in any other zone reintroduces the
//     exact class of correlation bug the normalizer exists to prevent.
//   - noprint: internal packages must not write to stdout behind the
//     report writers' backs; fmt.Print* belongs to package main.
//   - mapiter: report/emit paths that iterate a map while writing output
//     produce nondeterministically ordered reports — sort the keys first.
//
// On top of the style checks sits the concurrency-correctness suite
// (DESIGN.md §13): lockorder, deferunlock, atomicmix, hookreentry, and
// goroutinelife, built on whole-program facts (facts.go, lockgraph.go)
// and gated by the shared //lint:ignore suppression core (suppress.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files are the package's non-test compilation units.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path (e.g. "grca/internal/engine").
	Path string
}

func (p *Pass) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// An Analyzer is one named check. Per-package analyzers set Run; whole-
// program analyzers (those that need the cross-package lock and call-graph
// facts) set RunProgram instead. Exactly one of the two is non-nil.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) []Diagnostic
	RunProgram func(*Program) []Diagnostic
}

// Analyzers returns the project's checks in stable order: the original
// style checks first, then the concurrency-correctness suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NakedTime, UTCTime, NoPrint, MapIter,
		LockOrder, DeferUnlock, AtomicMix, HookReentry, GoroutineLife,
	}
}

// RunAll applies every per-package analyzer to the pass and returns the
// merged diagnostics sorted by position. Program-level analyzers are
// skipped; use RunSuite for the full set.
func RunAll(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		out = append(out, a.Run(pass)...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// stdPkgFunc reports whether the call expression invokes pkgPath.name —
// resolved through the type checker, so aliased imports and shadowed
// identifiers are handled correctly.
func stdPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return selectsPackage(info, sel, pkgPath)
}

// selectsPackage reports whether sel.X names the given package.
func selectsPackage(info *types.Info, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// clockSanctioned reports whether the package may read the wall clock
// directly: package main (the CLIs and examples own the process) and the
// obs package, which defines the sanctioned clock.
func clockSanctioned(pass *Pass) bool {
	return pass.Pkg.Name() == "main" || pass.Path == "grca/internal/obs"
}

// NakedTime flags direct time.Now (and time.Since, its hidden twin)
// calls outside the sanctioned packages.
var NakedTime = &Analyzer{
	Name: "nakedtime",
	Doc:  "flags time.Now/time.Since outside package main and grca/internal/obs; use obs.Now/obs.Since",
	Run: func(pass *Pass) []Diagnostic {
		if clockSanctioned(pass) {
			return nil
		}
		var out []Diagnostic
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range []string{"Now", "Since"} {
					if stdPkgFunc(pass.Info, call, "time", fn) {
						out = append(out, pass.diag("nakedtime", call.Pos(),
							"naked time.%s: use obs.%s so tests and replays control the clock", fn, fn))
					}
				}
				return true
			})
		}
		return out
	},
}

// UTCTime flags time.Time construction in non-UTC zones: time.Date whose
// location argument is not time.UTC (unless the result is immediately
// converted with .UTC()), and any mention of time.Local.
var UTCTime = &Analyzer{
	Name: "utctime",
	Doc:  "flags time.Date in non-UTC zones and uses of time.Local; the pipeline normalizes all timestamps to UTC",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		for _, f := range pass.Files {
			// A time.Date call is exempt when its value is immediately
			// normalized: time.Date(..., loc).UTC().
			exempt := map[*ast.CallExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "UTC" {
					if inner, ok := sel.X.(*ast.CallExpr); ok {
						exempt[inner] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if stdPkgFunc(pass.Info, n, "time", "Date") && !exempt[n] && len(n.Args) == 8 {
						if sel, ok := n.Args[7].(*ast.SelectorExpr); !ok || sel.Sel.Name != "UTC" || !selectsPackage(pass.Info, sel, "time") {
							out = append(out, pass.diag("utctime", n.Pos(),
								"time.Date in a non-UTC zone: normalize with time.UTC or convert immediately with .UTC()"))
						}
					}
				case *ast.SelectorExpr:
					if n.Sel.Name == "Local" && selectsPackage(pass.Info, n, "time") {
						out = append(out, pass.diag("utctime", n.Pos(),
							"time.Local leaks the host zone into the pipeline; all timestamps are UTC"))
					}
				}
				return true
			})
		}
		return out
	},
}

// NoPrint flags fmt.Print/Printf/Println in internal packages: implicit
// stdout writes belong to package main and the report writers.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "flags fmt.Print* in grca/internal/...; write through an io.Writer or the obs layer instead",
	Run: func(pass *Pass) []Diagnostic {
		if !strings.HasPrefix(pass.Path, "grca/internal/") || pass.Pkg.Name() == "main" {
			return nil
		}
		var out []Diagnostic
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range []string{"Print", "Printf", "Println"} {
					if stdPkgFunc(pass.Info, call, "fmt", fn) {
						out = append(out, pass.diag("noprint", call.Pos(),
							"fmt.%s writes to stdout from an internal package; take an io.Writer", fn))
					}
				}
				return true
			})
		}
		return out
	},
}

// emitCall reports whether the call looks like an output operation:
// Print/Fprint/Write families, resolved by method or function name.
func emitCall(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", false
	}
	for _, prefix := range []string{"Print", "Fprint", "Write"} {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

// MapIter flags for-range loops over maps whose bodies emit output: map
// iteration order is randomized per run, so such loops produce
// nondeterministically ordered reports. Collect the keys, sort, then emit.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags range-over-map loops that write output in the loop body; iteration order is nondeterministic",
	Run: func(pass *Pass) []Diagnostic {
		var out []Diagnostic
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(rng.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := emitCall(call); ok {
						out = append(out, pass.diag("mapiter", call.Pos(),
							"%s inside range over map: iteration order is nondeterministic; sort the keys first", name))
					}
					return true
				})
				return true
			})
		}
		return out
	},
}
