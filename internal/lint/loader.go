package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages of one module from source, with no
// dependency on go/packages. Module-local imports resolve recursively
// through the loader itself; standard-library imports resolve through the
// compiler's source importer. Both are cached, so a package is checked at
// most once per Loader.
type Loader struct {
	Root   string // module root directory
	Module string // module path from go.mod
	Fset   *token.FileSet

	std   types.ImporterFrom
	cache map[string]*Package
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader returns a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", dir)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{Root: dir, Module: module, Fset: fset, std: std, cache: map[string]*Package{}}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom, routing module-local paths to
// the source loader and everything else to the standard importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the module-local package with the given
// import path. Test files (_test.go) are excluded: they may form separate
// packages and are not part of the shipped build.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle guard

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Files: files, Pkg: pkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// Pass adapts a loaded package for the analyzers.
func (p *Package) Pass(fset *token.FileSet) *Pass {
	return &Pass{Fset: fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info, Path: p.Path}
}

// sourceFiles lists the non-test .go files of dir that build on the
// host platform, sorted. Build constraints — `//go:build` lines and
// `_GOOS`/`_GOARCH` filename suffixes — are honored via go/build, so a
// package with per-platform variants of one function (e.g. the WAL's
// fdatasync wrapper) type-checks exactly as the compiler would see it
// rather than with both variants redeclared.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Walk discovers every package directory under root (skipping testdata,
// hidden directories, and vendor) and returns their import paths, sorted.
func (l *Loader) Walk() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := sourceFiles(path)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
