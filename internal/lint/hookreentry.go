package lint

import (
	"fmt"
	"go/types"
)

// HookReentry guards the store's hook contract (DESIGN.md §12): callbacks
// registered through an OnXxx method are invoked by the hook-bearing type
// itself, sometimes while its own mutex is held. Two rules follow:
//
//  1. a callback whose invocation site holds the owner's mutex must not
//     re-acquire that mutex, directly or transitively — sync mutexes are
//     not reentrant, so OnAppend → store method → s.mu is a deadlock;
//  2. a callback invoked outside the owner's mutex (the OnEvict pattern)
//     must not write-acquire it: mutating the source store from its own
//     eviction hook re-enters the hook machinery with unbounded recursion.
//     Read access (e.g. snapshotting the store from an evict hook) is fine.
//
// Diagnostics point at the registration callsite — that is where the
// decision to bind the callback was made.
var HookReentry = &Analyzer{
	Name: "hookreentry",
	Doc:  "flags hook callbacks that re-enter their owner's mutex: deadlock when invoked under it, re-entrant mutation otherwise",
	RunProgram: func(prog *Program) []Diagnostic {
		fs := prog.Facts()
		g := fs.lockGraph()

		// For each hook field: is any invocation site under one of the
		// owner struct's mutexes? Which mutexes can be involved at all?
		type fieldCtx struct {
			underLock map[*types.Var]bool // owner mutexes held at ≥1 invocation
			owners    []*types.Var        // owner struct's mutex fields
		}
		ctxs := map[*types.Var]*fieldCtx{}
		ctxFor := func(field *types.Var) *fieldCtx {
			c, ok := ctxs[field]
			if !ok {
				c = &fieldCtx{underLock: map[*types.Var]bool{}, owners: mutexFieldsOf(field)}
				ctxs[field] = c
			}
			return c
		}
		for _, inv := range g.invokes {
			c := ctxFor(inv.field)
			for _, m := range c.owners {
				if inv.held[m] {
					c.underLock[m] = true
				}
			}
		}

		var out []Diagnostic
		seen := map[string]bool{}
		report := func(b binding, format string, args ...any) {
			d := Diagnostic{
				Pos:      b.pass.Fset.Position(b.pos),
				Analyzer: "hookreentry",
				Message:  fmt.Sprintf(format, args...),
			}
			key := d.Pos.String() + d.Message
			if !seen[key] {
				seen[key] = true
				out = append(out, d)
			}
		}
		for _, b := range fs.bindings {
			c := ctxFor(b.field)
			var acq map[*types.Var]acquire
			var label string
			if b.fn != nil {
				acq, label = fs.transAcquires(b.fn), funcLabel(b.fn)
			} else {
				acq, label = fs.litAcquires(b.lit), "func literal"
			}
			fieldName := fs.fieldLabel(b.field)
			for _, m := range c.owners {
				a, takes := acq[m]
				if !takes {
					continue
				}
				mName := fs.lockNames[m]
				if mName == "" {
					mName = fs.fieldLabel(m)
				}
				via := ""
				if a.via != "" {
					via = " (via " + a.via + ")"
				}
				if c.underLock[m] {
					report(b, "callback %s registered on %s runs under %s and re-acquires it%s: deadlock",
						label, fieldName, mName, via)
				} else if a.write {
					report(b, "callback %s registered on %s write-acquires %s%s: hooks must not mutate the type that fires them",
						label, fieldName, mName, via)
				}
			}
		}
		return out
	},
}

// fieldLabel renders a hook field as pkg.Type.field.
func (fs *facts) fieldLabel(field *types.Var) string {
	if n, ok := fs.lockNames[field]; ok {
		return n
	}
	st := owningStruct(field)
	name := field.Name()
	if field.Pkg() != nil {
		prefix := field.Pkg().Name()
		if st != nil {
			if tn := structTypeName(field.Pkg(), st); tn != "" {
				prefix += "." + tn
			}
		}
		return prefix + "." + name
	}
	return name
}

// structTypeName finds the named type in pkg whose underlying struct is st.
func structTypeName(pkg *types.Package, st *types.Struct) string {
	for _, name := range pkg.Scope().Names() {
		if tn, ok := pkg.Scope().Lookup(name).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok && named.Underlying() == st {
				return tn.Name()
			}
		}
	}
	return ""
}
