package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWalkCoversInternalPackages is the regression gate for the loader
// satellite: every directory under internal/ that holds non-test Go
// files must appear in Walk's output and load successfully. A loader
// that silently skips a package (as a stale importer could after the
// PR 4–6 package additions) makes grcalint report "clean" vacuously.
func TestWalkCoversInternalPackages(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Walk()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}

	root := filepath.Join("..", "..")
	var wantPkgs []string
	err = filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor" {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil || len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		wantPkgs = append(wantPkgs, "grca/"+filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPkgs) < 15 {
		t.Fatalf("filesystem scan found only %d internal packages: %v", len(wantPkgs), wantPkgs)
	}
	for _, p := range wantPkgs {
		if !seen[p] {
			t.Errorf("Walk silently skipped %s", p)
			continue
		}
		if _, err := l.Load(p); err != nil {
			t.Errorf("Load(%s): %v", p, err)
		}
	}

	// The packages PRs 4–6 added must be in the covered set by name —
	// guards against the filesystem scan and Walk sharing a blind spot.
	for _, p := range []string{
		"grca/internal/rollup", "grca/internal/wal", "grca/internal/server",
		"grca/internal/realtime", "grca/internal/store", "grca/internal/obs",
		"grca/internal/engine", "grca/internal/ospf", "grca/internal/bgp",
		"grca/internal/lint", "grca/internal/grcavet", "grca/internal/chaos",
	} {
		if !seen[p] {
			t.Errorf("Walk missed %s", p)
		}
	}
}
