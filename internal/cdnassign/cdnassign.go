// Package cdnassign models the CDN request-routing layer of paper §III-B:
// "through dynamic DNS binding, HTTP requests are directed to the
// 'closest' data centers and served from there." Closeness is evaluated
// against the same reconstructed network condition the RCA engine uses,
// so the package can answer the question behind the paper's repair story —
// after a routing failure, which users should DNS move to a closer node
// "as measured by the new network routing", even before the network
// itself is repaired.
package cdnassign

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"

	"grca/internal/netstate"
)

// Node is one CDN data-center site.
type Node struct {
	Name   string
	Router string // attachment router inside the ISP
}

// Service is the assignment policy engine. It is immutable except for
// policy pins and safe for concurrent readers otherwise.
type Service struct {
	view  *netstate.View
	nodes []Node
	pins  map[netip.Prefix]string // client prefix → pinned node
}

// New builds an assignment service over the network view. At least one
// node is required; nodes must be registered with the view (Register on
// the cdn deployment or netstate.RegisterServer).
func New(view *netstate.View, nodes []Node) (*Service, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cdnassign: no nodes")
	}
	s := &Service{view: view, pins: map[netip.Prefix]string{}}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Name == "" || n.Router == "" {
			return nil, fmt.Errorf("cdnassign: node without name or router")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cdnassign: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		s.nodes = append(s.nodes, n)
	}
	sort.Slice(s.nodes, func(i, j int) bool { return s.nodes[i].Name < s.nodes[j].Name })
	return s, nil
}

// Pin overrides assignment for every client inside prefix — the
// "CDN assignment policy change" of Table V, expressed as configuration.
func (s *Service) Pin(prefix netip.Prefix, node string) error {
	for _, n := range s.nodes {
		if n.Name == node {
			s.pins[prefix.Masked()] = node
			return nil
		}
	}
	return fmt.Errorf("cdnassign: unknown node %q", node)
}

// Unpin removes a policy pin.
func (s *Service) Unpin(prefix netip.Prefix) { delete(s.pins, prefix.Masked()) }

// Cost is one node's distance to a client at a point in time.
type Cost struct {
	Node Node
	// IGPDistance is the intradomain distance from the node's attachment
	// router to the egress carrying the client's traffic at time t;
	// unreachable clients cost math.MaxInt.
	IGPDistance int
}

// Rank evaluates every node's cost toward the client at time t, cheapest
// first (ties break by node name). The client may be a registered agent
// name or an address literal.
func (s *Service) Rank(client string, t time.Time) ([]Cost, error) {
	costs := make([]Cost, 0, len(s.nodes))
	for _, n := range s.nodes {
		c := Cost{Node: n, IGPDistance: math.MaxInt}
		if egress, err := s.view.EgressFor(n.Router, client, t); err == nil {
			c.IGPDistance = s.view.OSPF.Distance(n.Router, egress, t)
		}
		costs = append(costs, c)
	}
	sort.SliceStable(costs, func(i, j int) bool { return costs[i].IGPDistance < costs[j].IGPDistance })
	if costs[0].IGPDistance == math.MaxInt {
		return costs, fmt.Errorf("cdnassign: client %q unreachable from every node at %v", client, t)
	}
	return costs, nil
}

// Assign picks the serving node for a client at time t: a policy pin when
// one covers the client's address, otherwise the closest node by Rank.
func (s *Service) Assign(client string, t time.Time) (Node, error) {
	if addr, ok := s.clientAddr(client); ok {
		for pfx, node := range s.pins {
			if pfx.Contains(addr) {
				for _, n := range s.nodes {
					if n.Name == node {
						return n, nil
					}
				}
			}
		}
	}
	costs, err := s.Rank(client, t)
	if err != nil {
		return Node{}, err
	}
	return costs[0].Node, nil
}

func (s *Service) clientAddr(client string) (netip.Addr, bool) {
	if a, ok := s.view.ClientAddr(client); ok {
		return a, true
	}
	a, err := netip.ParseAddr(client)
	return a, err == nil
}

// Repair is one DNS-table update the §III-B story calls for: a client
// whose best node changed between two instants (e.g. before and after a
// peering failure).
type Repair struct {
	Client   string
	From, To Node
	// Saving is the IGP-distance improvement of the move under the new
	// routing.
	Saving int
}

// PlanRepairs compares each client's best node before and after a routing
// change and returns the moves worth making — the parallel repair the CDN
// operations team applied while the network team fixed the link.
func (s *Service) PlanRepairs(clients []string, before, after time.Time) ([]Repair, error) {
	var out []Repair
	for _, client := range clients {
		prev, err := s.Assign(client, before)
		if err != nil {
			return nil, err
		}
		costs, err := s.Rank(client, after)
		if err != nil {
			return nil, err
		}
		best := costs[0]
		if best.Node == prev {
			continue
		}
		// Find the old node's cost under the new routing.
		oldCost := math.MaxInt
		for _, c := range costs {
			if c.Node == prev {
				oldCost = c.IGPDistance
			}
		}
		saving := oldCost - best.IGPDistance
		if saving <= 0 {
			continue
		}
		out = append(out, Repair{Client: client, From: prev, To: best.Node, Saving: saving})
	}
	return out, nil
}
