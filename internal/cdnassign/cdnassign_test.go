package cdnassign

import (
	"net/netip"
	"testing"
	"time"

	"grca/internal/ospf"
	"grca/internal/testnet"
)

// fixture: two CDN nodes on the testnet, one in nyc and one in wdc. The
// agent's prefix is announced at chi-per1 and wdc-per1, so the wdc node is
// closest (distance 0 to its co-located egress) and nyc second.
func fixture(t *testing.T) (*testnet.Net, *Service) {
	t.Helper()
	n := testnet.Build(t.Fatalf)
	n.View.RegisterServer("cdn-wdc-s1", "cdn-wdc", "wdc-per1")
	s, err := New(n.View, []Node{
		{Name: "cdn-nyc", Router: "nyc-per1"},
		{Name: "cdn-wdc", Router: "wdc-per1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, s
}

func TestValidation(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	if _, err := New(n.View, nil); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := New(n.View, []Node{{Name: "x"}}); err == nil {
		t.Error("router-less node accepted")
	}
	if _, err := New(n.View, []Node{
		{Name: "x", Router: "r"}, {Name: "x", Router: "r"},
	}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestAssignClosest(t *testing.T) {
	_, s := fixture(t)
	// wdc-per1 is itself an egress for the agent prefix: distance 0.
	node, err := s.Assign("agent-1", testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "cdn-wdc" {
		t.Errorf("assigned %q, want cdn-wdc (co-located with an egress)", node.Name)
	}
	costs, err := s.Rank("agent-1", testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	if costs[0].IGPDistance != 0 {
		t.Errorf("closest distance = %d, want 0", costs[0].IGPDistance)
	}
	if costs[1].Node.Name != "cdn-nyc" || costs[1].IGPDistance <= 0 {
		t.Errorf("second choice = %+v", costs[1])
	}
	// Address-literal clients work too.
	node, err = s.Assign(testnet.AgentAddr.String(), testnet.T0)
	if err != nil || node.Name != "cdn-wdc" {
		t.Errorf("literal client = %v, %v", node, err)
	}
}

func TestPinOverridesDistance(t *testing.T) {
	_, s := fixture(t)
	if err := s.Pin(testnet.ClientPrefix, "cdn-nyc"); err != nil {
		t.Fatal(err)
	}
	node, err := s.Assign("agent-1", testnet.T0)
	if err != nil || node.Name != "cdn-nyc" {
		t.Errorf("pinned assignment = %v, %v", node, err)
	}
	s.Unpin(testnet.ClientPrefix)
	node, _ = s.Assign("agent-1", testnet.T0)
	if node.Name != "cdn-wdc" {
		t.Errorf("after unpin = %v", node)
	}
	if err := s.Pin(testnet.ClientPrefix, "ghost"); err == nil {
		t.Error("pin to unknown node accepted")
	}
}

// TestRepairStory reproduces §III-B.2: the egress near the serving node
// fails; the client's traffic detours; PlanRepairs recommends moving the
// client to the node that is closer under the *new* routing — the DNS
// update the CDN operations team applied in parallel with the network
// repair.
func TestRepairStory(t *testing.T) {
	n, s := fixture(t)
	t1 := testnet.T0.Add(2 * time.Hour)
	// The peering failure: wdc's egress withdraws the client prefix, and
	// the wdc–chi backbone plane is down too, so traffic from the wdc
	// node now detours through nyc with larger delays.
	if err := n.BGP.Withdraw(t1, testnet.ClientPrefix, "wdc-per1"); err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"chi-wdc-1", "chi-wdc-2"} {
		if err := n.OSPF.SetWeight(t1, l, ospf.Infinity); err != nil {
			t.Fatal(err)
		}
	}
	repairs, err := s.PlanRepairs([]string{"agent-1"}, t1.Add(-time.Minute), t1.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 1 {
		t.Fatalf("repairs = %+v, want 1", repairs)
	}
	r := repairs[0]
	if r.From.Name != "cdn-wdc" || r.To.Name != "cdn-nyc" || r.Saving <= 0 {
		t.Errorf("repair = %+v", r)
	}
	// With routing unchanged, no repairs are proposed.
	none, err := s.PlanRepairs([]string{"agent-1"}, testnet.T0, testnet.T0.Add(time.Minute))
	if err != nil || len(none) != 0 {
		t.Errorf("steady-state repairs = %+v, %v", none, err)
	}
}

func TestUnreachableClient(t *testing.T) {
	_, s := fixture(t)
	if _, err := s.Rank("203.0.113.9", testnet.T0); err == nil {
		t.Error("unreachable client ranked without error")
	}
	if _, err := s.Assign("203.0.113.9", testnet.T0); err == nil {
		t.Error("unreachable client assigned")
	}
	// Unregistered, unparsable client: no pin lookup possible, falls back
	// to ranking, which fails.
	if _, err := s.Assign("nobody", testnet.T0); err == nil {
		t.Error("unknown client assigned")
	}
}

func TestPinUsesMaskedPrefix(t *testing.T) {
	_, s := fixture(t)
	// A pin given with host bits set still covers the whole prefix.
	sloppy := netip.PrefixFrom(testnet.AgentAddr, 24)
	if err := s.Pin(sloppy, "cdn-nyc"); err != nil {
		t.Fatal(err)
	}
	node, err := s.Assign("agent-1", testnet.T0)
	if err != nil || node.Name != "cdn-nyc" {
		t.Errorf("sloppy pin = %v, %v", node, err)
	}
}
