package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

// TestPaperTemporalExample reproduces the worked example of §II-C: an
// "eBGP flap" symptom (Start/Start, X=180, Y=5) spanning [1000, 2000]
// expands to [820, 1005]; an "Interface flap" diagnostic (Start/End, X=5,
// Y=5) spanning [900, 901] expands to [895, 906]; the two are joined.
func TestPaperTemporalExample(t *testing.T) {
	r := Rule{
		Symptom:    Expansion{Option: StartStart, Left: 180 * time.Second, Right: 5 * time.Second},
		Diagnostic: Expansion{Option: StartEnd, Left: 5 * time.Second, Right: 5 * time.Second},
	}
	sLo, sHi := r.Symptom.Window(at(1000), at(2000))
	if !sLo.Equal(at(820)) || !sHi.Equal(at(1005)) {
		t.Errorf("symptom window = [%v, %v], want [820, 1005]", sLo.Sub(epoch).Seconds(), sHi.Sub(epoch).Seconds())
	}
	dLo, dHi := r.Diagnostic.Window(at(900), at(901))
	if !dLo.Equal(at(895)) || !dHi.Equal(at(906)) {
		t.Errorf("diagnostic window = [%v, %v], want [895, 906]", dLo.Sub(epoch).Seconds(), dHi.Sub(epoch).Seconds())
	}
	if !r.Joined(at(1000), at(2000), at(900), at(901)) {
		t.Error("paper example not joined")
	}
	// An interface flap well before the hold-timer horizon does not join.
	if r.Joined(at(1000), at(2000), at(700), at(701)) {
		t.Error("too-early diagnostic joined")
	}
	// One just after the symptom start + fuzz does not join either.
	if r.Joined(at(1000), at(2000), at(1011), at(1012)) {
		t.Error("too-late diagnostic joined")
	}
}

func TestExpansionOptions(t *testing.T) {
	start, end := at(100), at(200)
	x, y := 10*time.Second, 20*time.Second
	cases := []struct {
		opt    Option
		lo, hi int
	}{
		{StartEnd, 90, 220},
		{StartStart, 90, 120},
		{EndEnd, 190, 220},
	}
	for _, c := range cases {
		lo, hi := (Expansion{Option: c.opt, Left: x, Right: y}).Window(start, end)
		if !lo.Equal(at(c.lo)) || !hi.Equal(at(c.hi)) {
			t.Errorf("%v window = [%d, %d], want [%d, %d]", c.opt,
				int(lo.Sub(epoch).Seconds()), int(hi.Sub(epoch).Seconds()), c.lo, c.hi)
		}
	}
}

func TestNegativeMargins(t *testing.T) {
	// A negative left margin shifts the window start forward.
	e := Expansion{Option: StartEnd, Left: -5 * time.Second, Right: -5 * time.Second}
	lo, hi := e.Window(at(100), at(200))
	if !lo.Equal(at(105)) || !hi.Equal(at(195)) {
		t.Errorf("negative margins window = [%v, %v]", lo, hi)
	}
}

func TestTouchingWindowsJoin(t *testing.T) {
	r := Rule{} // zero rule: windows equal raw spans
	if !r.Joined(at(0), at(10), at(10), at(20)) {
		t.Error("touching intervals should join (closed intervals)")
	}
	if r.Joined(at(0), at(10), at(11), at(20)) {
		t.Error("disjoint intervals joined")
	}
	if !r.Joined(at(5), at(5), at(5), at(5)) {
		t.Error("coincident instants should join")
	}
}

func TestOptionParseRoundTrip(t *testing.T) {
	for _, o := range []Option{StartEnd, StartStart, EndEnd} {
		got, err := ParseOption(o.String())
		if err != nil || got != o {
			t.Errorf("round trip %v: got %v, %v", o, got, err)
		}
	}
	if _, err := ParseOption("middle/middle"); err == nil {
		t.Error("ParseOption accepted junk")
	}
	if got, err := ParseOption(" START/END "); err != nil || got != StartEnd {
		t.Error("ParseOption should be case/space tolerant")
	}
	if Option(9).String() == "" {
		t.Error("out-of-range option String empty")
	}
}

func TestExpansionString(t *testing.T) {
	e := Expansion{Option: StartStart, Left: 180 * time.Second, Right: 5 * time.Second}
	if got := e.String(); got != "start/start expand 3m0s 5s" {
		t.Errorf("String = %q", got)
	}
}

// TestJoinSymmetryOfOverlap checks that joining is symmetric in the
// overlap test itself: swapping which interval is "symptom" while also
// swapping the expansions preserves the verdict.
func TestJoinSymmetryOfOverlap(t *testing.T) {
	f := func(ss, se, ds, de uint16, opt1, opt2 uint8) bool {
		e1 := Expansion{Option: Option(opt1 % 3), Left: 7 * time.Second, Right: 3 * time.Second}
		e2 := Expansion{Option: Option(opt2 % 3), Left: 2 * time.Second, Right: 9 * time.Second}
		s0, s1 := at(int(ss)), at(int(ss)+int(se%1000))
		d0, d1 := at(int(ds)), at(int(ds)+int(de%1000))
		fwd := Rule{Symptom: e1, Diagnostic: e2}.Joined(s0, s1, d0, d1)
		rev := Rule{Symptom: e2, Diagnostic: e1}.Joined(d0, d1, s0, s1)
		return fwd == rev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestJoinMonotonicMargins: widening any margin can only turn non-joined
// pairs into joined ones, never the reverse.
func TestJoinMonotonicMargins(t *testing.T) {
	f := func(ss, ds uint16, dur1, dur2 uint8, grow uint8) bool {
		base := Rule{
			Symptom:    Expansion{Option: StartEnd, Left: 5 * time.Second, Right: 5 * time.Second},
			Diagnostic: Expansion{Option: StartEnd, Left: 5 * time.Second, Right: 5 * time.Second},
		}
		wide := base
		wide.Symptom.Left += time.Duration(grow) * time.Second
		wide.Diagnostic.Right += time.Duration(grow) * time.Second
		s0, s1 := at(int(ss)), at(int(ss)+int(dur1))
		d0, d1 := at(int(ds)), at(int(ds)+int(dur2))
		if base.Joined(s0, s1, d0, d1) && !wide.Joined(s0, s1, d0, d1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSearchWindowSound: every diagnostic interval that joins also overlaps
// the SearchWindow bound, for all option combinations and random spans.
func TestSearchWindowSound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		r := Rule{
			Symptom: Expansion{
				Option: Option(rng.Intn(3)),
				Left:   time.Duration(rng.Intn(300)) * time.Second,
				Right:  time.Duration(rng.Intn(300)) * time.Second,
			},
			Diagnostic: Expansion{
				Option: Option(rng.Intn(3)),
				Left:   time.Duration(rng.Intn(300)) * time.Second,
				Right:  time.Duration(rng.Intn(300)) * time.Second,
			},
		}
		ss := at(rng.Intn(5000))
		se := ss.Add(time.Duration(rng.Intn(600)) * time.Second)
		ds := at(rng.Intn(5000))
		de := ds.Add(time.Duration(rng.Intn(600)) * time.Second)
		if !r.Joined(ss, se, ds, de) {
			continue
		}
		lo, hi := r.SearchWindow(ss, se)
		if ds.After(hi) || de.Before(lo) {
			t.Fatalf("joined diagnostic [%v,%v] outside search window [%v,%v] for rule %+v",
				ds, de, lo, hi, r)
		}
	}
}
