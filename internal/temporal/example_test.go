package temporal_test

import (
	"fmt"
	"time"

	"grca/internal/temporal"
)

// The paper's worked example (§II-C): an eBGP flap spanning [1000, 2000]
// seconds with a Start/Start 180/5 expansion joins an interface flap
// spanning [900, 901] with a Start/End 5/5 expansion.
func ExampleRule_Joined() {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	at := func(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

	rule := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: 180 * time.Second, Right: 5 * time.Second},
		Diagnostic: temporal.Expansion{Option: temporal.StartEnd, Left: 5 * time.Second, Right: 5 * time.Second},
	}
	lo, hi := rule.Symptom.Window(at(1000), at(2000))
	fmt.Printf("symptom window: [%d, %d]\n", int(lo.Sub(t0).Seconds()), int(hi.Sub(t0).Seconds()))
	fmt.Println("joined:", rule.Joined(at(1000), at(2000), at(900), at(901)))
	// Output:
	// symptom window: [820, 1005]
	// joined: true
}
