// Package temporal implements G-RCA's temporal joining rules (paper
// §II-C, Fig. 3). A symptom and a diagnostic event are "at the same time"
// when their expanded time windows overlap; each side's expansion is
// governed by three parameters — an expanding option and left/right margins
// X and Y — for six parameters per rule.
//
// The expanding option selects the anchor endpoints of the window before
// margins are applied:
//
//	Start/End:   [start−X, end+Y]  (the default: pad the whole interval)
//	Start/Start: [start−X, start+Y] (anchor both edges at the start)
//	End/End:     [end−X, end+Y]     (anchor both edges at the end)
//
// Margins may be negative, shifting an edge the other way. The paper's
// worked example: an eBGP flap with (Start/Start, X=180s, Y=5s) spanning
// [1000, 2000] expands to [820, 1005] — X models the 180-second BGP hold
// timer between cause and effect, Y the ±5 s timestamp fuzz of syslog.
package temporal

import (
	"fmt"
	"strings"
	"time"
)

// Option is the window-expanding option of Fig. 3.
type Option uint8

const (
	// StartEnd expands [start−X, end+Y].
	StartEnd Option = iota
	// StartStart expands [start−X, start+Y].
	StartStart
	// EndEnd expands [end−X, end+Y].
	EndEnd
)

var optionNames = [...]string{"start/end", "start/start", "end/end"}

// String returns the option's rule-language spelling.
func (o Option) String() string {
	if int(o) < len(optionNames) {
		return optionNames[o]
	}
	return fmt.Sprintf("temporal.Option(%d)", uint8(o))
}

// ParseOption parses the rule-language spelling of an option.
func ParseOption(s string) (Option, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "start/end":
		return StartEnd, nil
	case "start/start":
		return StartStart, nil
	case "end/end":
		return EndEnd, nil
	}
	return 0, fmt.Errorf("temporal: unknown expanding option %q", s)
}

// Expansion is one side of a temporal rule: the expanding option plus the
// left and right margins.
type Expansion struct {
	Option Option
	Left   time.Duration // X: subtracted from the left anchor
	Right  time.Duration // Y: added to the right anchor
}

// Window returns the expanded interval for an event spanning [start, end].
func (e Expansion) Window(start, end time.Time) (time.Time, time.Time) {
	switch e.Option {
	case StartStart:
		return start.Add(-e.Left), start.Add(e.Right)
	case EndEnd:
		return end.Add(-e.Left), end.Add(e.Right)
	default: // StartEnd
		return start.Add(-e.Left), end.Add(e.Right)
	}
}

// String renders the expansion in rule-language form, e.g.
// "start/start expand 180s 5s".
func (e Expansion) String() string {
	return fmt.Sprintf("%s expand %s %s", e.Option, e.Left, e.Right)
}

// Rule is a complete six-parameter temporal joining rule.
type Rule struct {
	Symptom    Expansion
	Diagnostic Expansion
}

// Joined reports whether a symptom spanning [ss, se] and a diagnostic
// spanning [ds, de] are temporally joined under the rule: their expanded
// windows overlap (touching endpoints count as overlap, matching the
// paper's closed intervals).
func (r Rule) Joined(ss, se, ds, de time.Time) bool {
	sLo, sHi := r.Symptom.Window(ss, se)
	dLo, dHi := r.Diagnostic.Window(ds, de)
	return !sLo.After(dHi) && !dLo.After(sHi)
}

// SearchWindow returns an interval [lo, hi] such that any diagnostic event
// that temporally joins a symptom spanning [ss, se] must itself overlap
// [lo, hi]. Callers query the event store with this window and then apply
// Joined per candidate; the window is tight for all three expanding
// options.
//
// Derivation: the diagnostic's expanded window must intersect the
// symptom's expanded window [sLo, sHi]. For every expanding option the
// left expansion anchor is at or before the event start and the right
// anchor at or after... more precisely, for each option the joinable raw
// span satisfies End ≥ sLo − Right and Start ≤ sHi + Left, which is
// exactly the overlap condition with [sLo − Right, sHi + Left].
func (r Rule) SearchWindow(ss, se time.Time) (time.Time, time.Time) {
	sLo, sHi := r.Symptom.Window(ss, se)
	lo := sLo.Add(-r.Diagnostic.Right)
	hi := sHi.Add(r.Diagnostic.Left)
	return lo, hi
}
