// Package conf renders and parses router configuration snapshots. The
// paper's G-RCA derives much of its spatial model from daily router
// configuration archives (§II-B): router → line-card → interface
// containment, interface addressing (the /30 association that pairs up
// point-to-point links), customer attachments, uplink designations, and
// logical-to-physical circuit mappings. This package round-trips all of
// that: the simulator renders per-device configs, and the Data Collector
// parses the archive back into a netmodel.Topology.
//
// The format is a Cisco-flavoured plain-text config:
//
//	hostname chi-per1
//	! role: provider-edge
//	! pop: chi
//	clock timezone America/Chicago
//	interface Loopback0
//	 ip address 10.255.0.3 255.255.255.255
//	interface so-0/0/0
//	 card 1
//	 ip address 10.0.0.6 255.255.255.252
//	 description UPLINK to chi-cr1 circuit=chi-up1
//	interface se-0/1/0
//	 card 0
//	 ip address 10.1.0.1 255.255.255.252
//	 description CUST custB circuit=custB-att
//
// A separate layer-1 inventory (the paper's "external database") maps
// circuits to physical links and layer-1 devices:
//
//	circuit,physical,kind,devices
//	chi-up1,chi-up1-c1,optical-mesh,mesh-chi-agg
package conf

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"grca/internal/netmodel"
)

// DeviceConfig is one rendered configuration snapshot.
type DeviceConfig struct {
	Hostname string
	Text     string
}

var roleNames = map[string]netmodel.Role{
	"core":          netmodel.RoleCore,
	"aggregation":   netmodel.RoleAggregation,
	"provider-edge": netmodel.RoleProviderEdge,
	"customer":      netmodel.RoleCustomer,
	"cdn":           netmodel.RoleCDN,
}

// Render produces a configuration snapshot for every router in topo,
// sorted by hostname.
func Render(topo *netmodel.Topology) []DeviceConfig {
	var out []DeviceConfig
	for _, name := range topo.RouterNames() {
		r := topo.Routers[name]
		var b strings.Builder
		fmt.Fprintf(&b, "hostname %s\n", r.Name)
		fmt.Fprintf(&b, "! role: %s\n", r.Role)
		fmt.Fprintf(&b, "! pop: %s\n", r.PoP)
		if r.TZName != "" {
			fmt.Fprintf(&b, "clock timezone %s\n", r.TZName)
		}
		if r.Loopback.IsValid() {
			fmt.Fprintf(&b, "interface Loopback0\n ip address %s 255.255.255.255\n", r.Loopback)
		}
		for _, c := range r.Cards {
			fmt.Fprintf(&b, "card %d\n", c.Slot)
		}
		for _, c := range r.Cards {
			for _, p := range c.Ports {
				fmt.Fprintf(&b, "interface %s\n card %d\n", p.Name, c.Slot)
				if p.Addr.IsValid() {
					fmt.Fprintf(&b, " ip address %s %s\n", p.IP, maskString(p.Addr))
				}
				desc := describe(p)
				if desc != "" {
					fmt.Fprintf(&b, " description %s\n", desc)
				}
			}
		}
		out = append(out, DeviceConfig{Hostname: r.Name, Text: b.String()})
	}
	return out
}

func describe(p *netmodel.Interface) string {
	circuit := ""
	if p.Link != nil {
		circuit = " circuit=" + p.Link.ID
	}
	switch {
	case p.CustomerFacing:
		return "CUST " + p.Peer + circuit
	case p.Uplink:
		far := ""
		if p.Link != nil {
			if o := p.Link.Other(p.Router.Name); o != nil {
				far = " to " + o.Router.Name
			}
		}
		return "UPLINK" + far + circuit
	case p.Link != nil:
		far := ""
		if o := p.Link.Other(p.Router.Name); o != nil {
			far = " to " + o.Router.Name
		}
		return "BACKBONE" + far + circuit
	}
	return ""
}

func maskString(p netip.Prefix) string {
	bits := p.Bits()
	var m [4]byte
	for i := 0; i < bits; i++ {
		m[i/8] |= 1 << (7 - i%8)
	}
	return fmt.Sprintf("%d.%d.%d.%d", m[0], m[1], m[2], m[3])
}

func maskBits(s string) (int, error) {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		return 0, fmt.Errorf("conf: bad netmask %q", s)
	}
	b := a.As4()
	bits := 0
	seenZero := false
	for _, octet := range b {
		for i := 7; i >= 0; i-- {
			if octet&(1<<i) != 0 {
				if seenZero {
					return 0, fmt.Errorf("conf: non-contiguous netmask %q", s)
				}
				bits++
			} else {
				seenZero = true
			}
		}
	}
	return bits, nil
}

// RenderInventory produces the layer-1 inventory CSV for topo.
func RenderInventory(topo *netmodel.Topology) string {
	var b strings.Builder
	b.WriteString("circuit,physical,kind,devices\n")
	ids := make([]string, 0, len(topo.Phys))
	for id := range topo.Phys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := topo.Phys[id]
		var devs []string
		for _, d := range p.L1 {
			devs = append(devs, d.Name)
		}
		circuit := ""
		if p.Logical != nil {
			circuit = p.Logical.ID
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s\n", circuit, p.ID, p.Kind, strings.Join(devs, ";"))
	}
	return b.String()
}

type parsedIface struct {
	router   string
	name     string
	card     int
	ip       netip.Addr
	prefix   netip.Prefix
	desc     string
	loopback bool
}

type parsedDevice struct {
	hostname string
	role     netmodel.Role
	roleSet  bool
	pop      string
	tz       string
	loopback netip.Addr
	cards    []int
	ifaces   []*parsedIface
}

// Parse reconstructs a topology from a configuration archive plus the
// layer-1 inventory text (may be empty). Interfaces sharing a /30 are
// paired into logical links named by their configured circuit IDs.
func Parse(configs []DeviceConfig, inventory string) (*netmodel.Topology, error) {
	topo := netmodel.NewTopology()
	var devices []*parsedDevice
	for _, cfg := range configs {
		d, err := parseDevice(cfg)
		if err != nil {
			return nil, err
		}
		devices = append(devices, d)
	}

	// Materialize routers and interfaces.
	ifaceObjs := map[*parsedIface]*netmodel.Interface{}
	for _, d := range devices {
		r := &netmodel.Router{Name: d.hostname, PoP: d.pop, Role: d.role, TZName: d.tz, Loopback: d.loopback}
		if err := topo.AddRouter(r); err != nil {
			return nil, err
		}
		maxCard := -1
		for _, c := range d.cards {
			if c > maxCard {
				maxCard = c
			}
		}
		for _, pi := range d.ifaces {
			if pi.card > maxCard {
				maxCard = pi.card
			}
		}
		for i := 0; i <= maxCard; i++ {
			topo.AddCard(r)
		}
		for _, pi := range d.ifaces {
			if pi.card < 0 || pi.card >= len(r.Cards) {
				return nil, fmt.Errorf("conf: %s interface %s on unknown card %d", d.hostname, pi.name, pi.card)
			}
			obj, err := topo.AddInterface(r.Cards[pi.card], pi.name, pi.prefix, pi.ip)
			if err != nil {
				return nil, err
			}
			ifaceObjs[pi] = obj
		}
	}

	// Pair interfaces by shared subnet and connect links.
	bySubnet := map[netip.Prefix][]*parsedIface{}
	var order []netip.Prefix
	for _, d := range devices {
		for _, pi := range d.ifaces {
			if !pi.prefix.IsValid() || pi.prefix.Bits() >= 31 {
				continue
			}
			key := pi.prefix.Masked()
			if _, seen := bySubnet[key]; !seen {
				order = append(order, key)
			}
			bySubnet[key] = append(bySubnet[key], pi)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	for _, pfx := range order {
		members := bySubnet[pfx]
		if len(members) != 2 {
			continue // stub network or misconfiguration: no link
		}
		a, b := members[0], members[1]
		id := circuitOf(a.desc)
		if id == "" {
			id = circuitOf(b.desc)
		}
		if id == "" {
			id = "link-" + pfx.Masked().Addr().String()
		}
		l, err := topo.Connect(id, ifaceObjs[a], ifaceObjs[b])
		if err != nil {
			return nil, err
		}
		for _, pi := range members {
			obj := ifaceObjs[pi]
			switch {
			case strings.HasPrefix(pi.desc, "CUST "):
				obj.CustomerFacing = true
				other := l.Other(obj.Router.Name)
				if other != nil {
					obj.Peer = other.Router.Name
					obj.PeerIP = other.IP
				}
			case strings.HasPrefix(pi.desc, "UPLINK"):
				obj.Uplink = true
			}
		}
	}

	if err := parseInventory(topo, inventory); err != nil {
		return nil, err
	}
	return topo, nil
}

func circuitOf(desc string) string {
	for _, f := range strings.Fields(desc) {
		if rest, ok := strings.CutPrefix(f, "circuit="); ok {
			return rest
		}
	}
	return ""
}

func parseDevice(cfg DeviceConfig) (*parsedDevice, error) {
	d := &parsedDevice{role: netmodel.RoleCore}
	var cur *parsedIface
	sc := bufio.NewScanner(strings.NewReader(cfg.Text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		indented := raw[0] == ' ' || raw[0] == '\t'
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "! role:"):
			name := strings.TrimSpace(strings.TrimPrefix(line, "! role:"))
			role, ok := roleNames[name]
			if !ok {
				return nil, fmt.Errorf("conf: %s line %d: unknown role %q", cfg.Hostname, lineNo, name)
			}
			d.role, d.roleSet = role, true
		case strings.HasPrefix(line, "! pop:"):
			d.pop = strings.TrimSpace(strings.TrimPrefix(line, "! pop:"))
		case strings.HasPrefix(line, "!"):
			// comment
		case indented && cur != nil:
			if err := parseIfaceLine(cfg.Hostname, lineNo, cur, fields, d); err != nil {
				return nil, err
			}
		case fields[0] == "hostname":
			if len(fields) != 2 {
				return nil, fmt.Errorf("conf: %s line %d: bad hostname", cfg.Hostname, lineNo)
			}
			d.hostname = fields[1]
		case fields[0] == "clock" && len(fields) == 3 && fields[1] == "timezone":
			d.tz = fields[2]
		case fields[0] == "card" && len(fields) == 2:
			var slot int
			if _, err := fmt.Sscanf(fields[1], "%d", &slot); err != nil {
				return nil, fmt.Errorf("conf: %s line %d: bad card %q", cfg.Hostname, lineNo, fields[1])
			}
			d.cards = append(d.cards, slot)
		case fields[0] == "interface" && len(fields) == 2:
			cur = &parsedIface{router: d.hostname, name: fields[1], card: 0}
			if fields[1] == "Loopback0" {
				cur.loopback = true
			} else {
				d.ifaces = append(d.ifaces, cur)
			}
		default:
			return nil, fmt.Errorf("conf: %s line %d: unrecognized statement %q", cfg.Hostname, lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d.hostname == "" {
		return nil, fmt.Errorf("conf: config %q without hostname", cfg.Hostname)
	}
	return d, nil
}

func parseIfaceLine(host string, lineNo int, cur *parsedIface, fields []string, d *parsedDevice) error {
	switch fields[0] {
	case "card":
		if len(fields) != 2 {
			return fmt.Errorf("conf: %s line %d: bad card", host, lineNo)
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &cur.card); err != nil {
			return fmt.Errorf("conf: %s line %d: bad card %q", host, lineNo, fields[1])
		}
	case "ip":
		if len(fields) != 4 || fields[1] != "address" {
			return fmt.Errorf("conf: %s line %d: bad ip statement", host, lineNo)
		}
		addr, err := netip.ParseAddr(fields[2])
		if err != nil {
			return fmt.Errorf("conf: %s line %d: %v", host, lineNo, err)
		}
		bits, err := maskBits(fields[3])
		if err != nil {
			return fmt.Errorf("conf: %s line %d: %v", host, lineNo, err)
		}
		if cur.loopback {
			d.loopback = addr
			return nil
		}
		cur.ip = addr
		cur.prefix = netip.PrefixFrom(addr, bits)
	case "description":
		cur.desc = strings.Join(fields[1:], " ")
	default:
		return fmt.Errorf("conf: %s line %d: unknown interface statement %q", host, lineNo, fields[0])
	}
	return nil
}

func parseInventory(topo *netmodel.Topology, inventory string) error {
	if strings.TrimSpace(inventory) == "" {
		return nil
	}
	sc := bufio.NewScanner(strings.NewReader(inventory))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || lineNo == 1 && strings.HasPrefix(line, "circuit,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return fmt.Errorf("conf: inventory line %d: want 4 fields, got %d", lineNo, len(parts))
		}
		circuit, physID, kindName, devs := parts[0], parts[1], parts[2], parts[3]
		l, ok := topo.Links[circuit]
		if !ok {
			return fmt.Errorf("conf: inventory line %d: unknown circuit %q", lineNo, circuit)
		}
		var kind netmodel.L1Kind
		switch kindName {
		case "sonet":
			kind = netmodel.L1SONET
		case "optical-mesh":
			kind = netmodel.L1OpticalMesh
		default:
			return fmt.Errorf("conf: inventory line %d: unknown kind %q", lineNo, kindName)
		}
		var names []string
		for _, n := range strings.Split(devs, ";") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		topo.AddPhysical(physID, l, kind, names...)
	}
	return sc.Err()
}

// WriteArchive writes the full archive (configs + inventory) to w in a
// single concatenated stream, separated by "=== <hostname> ===" markers;
// ReadArchive reverses it. This is the on-disk format of cmd/grca-sim.
func WriteArchive(w io.Writer, configs []DeviceConfig, inventory string) error {
	for _, c := range configs {
		if _, err := fmt.Fprintf(w, "=== %s ===\n%s", c.Hostname, c.Text); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "=== inventory ===\n%s", inventory)
	return err
}

// ReadArchive parses a stream produced by WriteArchive.
func ReadArchive(r io.Reader) ([]DeviceConfig, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var configs []DeviceConfig
	var cur *DeviceConfig
	var inventory strings.Builder
	inInventory := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "=== ") && strings.HasSuffix(line, " ===") {
			name := strings.TrimSuffix(strings.TrimPrefix(line, "=== "), " ===")
			if name == "inventory" {
				inInventory = true
				cur = nil
				continue
			}
			configs = append(configs, DeviceConfig{Hostname: name})
			cur = &configs[len(configs)-1]
			inInventory = false
			continue
		}
		switch {
		case inInventory:
			inventory.WriteString(line)
			inventory.WriteByte('\n')
		case cur != nil:
			cur.Text += line + "\n"
		default:
			return nil, "", fmt.Errorf("conf: archive content before first marker: %q", line)
		}
	}
	return configs, inventory.String(), sc.Err()
}
