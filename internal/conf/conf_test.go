package conf

import (
	"strings"
	"testing"

	"grca/internal/netmodel"
	"grca/internal/testnet"
)

func TestRoundTrip(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	configs := Render(n.Topo)
	inventory := RenderInventory(n.Topo)

	got, err := Parse(configs, inventory)
	if err != nil {
		t.Fatal(err)
	}

	// Routers survive with role, PoP, TZ, loopback.
	if len(got.Routers) != len(n.Topo.Routers) {
		t.Fatalf("routers = %d, want %d", len(got.Routers), len(n.Topo.Routers))
	}
	for name, want := range n.Topo.Routers {
		r, ok := got.Routers[name]
		if !ok {
			t.Fatalf("router %s missing after round trip", name)
		}
		if r.Role != want.Role || r.PoP != want.PoP || r.TZName != want.TZName || r.Loopback != want.Loopback {
			t.Errorf("router %s = {%v %s %s %v}, want {%v %s %s %v}",
				name, r.Role, r.PoP, r.TZName, r.Loopback, want.Role, want.PoP, want.TZName, want.Loopback)
		}
		if len(r.Cards) != len(want.Cards) {
			t.Errorf("router %s cards = %d, want %d", name, len(r.Cards), len(want.Cards))
		}
	}

	// Links survive with IDs and endpoints.
	if len(got.Links) != len(n.Topo.Links) {
		t.Fatalf("links = %d, want %d", len(got.Links), len(n.Topo.Links))
	}
	for id, want := range n.Topo.Links {
		l, ok := got.Links[id]
		if !ok {
			t.Fatalf("link %s missing", id)
		}
		wantEnds := map[string]bool{want.A.Router.Name: true, want.B.Router.Name: true}
		if !wantEnds[l.A.Router.Name] || !wantEnds[l.B.Router.Name] {
			t.Errorf("link %s endpoints %s—%s", id, l.A.Router.Name, l.B.Router.Name)
		}
	}

	// Customer-facing and uplink flags survive.
	ifc, ok := got.InterfaceByName("chi-per1", "to-custB")
	if !ok || !ifc.CustomerFacing || ifc.Peer != "custB" {
		t.Errorf("customer-facing flags lost: %+v", ifc)
	}
	up, ok := got.InterfaceByName("nyc-per1", "to-nyc-cr1")
	if !ok || !up.Uplink {
		t.Error("uplink flag lost")
	}

	// Card assignment survives (uplinks on card 1).
	if up.Card.Slot != 1 {
		t.Errorf("uplink card slot = %d, want 1", up.Card.Slot)
	}

	// Layer-1 inventory survives.
	if len(got.Phys) != len(n.Topo.Phys) {
		t.Fatalf("physical links = %d, want %d", len(got.Phys), len(n.Topo.Phys))
	}
	l := got.Links["custB-att"]
	devs := got.Layer1For(l)
	if len(devs) != 2 || devs[0].Kind != netmodel.L1SONET {
		t.Errorf("layer-1 devices for custB-att = %v", devs)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	configs := Render(n.Topo)
	inventory := RenderInventory(n.Topo)

	var buf strings.Builder
	if err := WriteArchive(&buf, configs, inventory); err != nil {
		t.Fatal(err)
	}
	gotConfigs, gotInv, err := ReadArchive(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotConfigs) != len(configs) {
		t.Fatalf("configs = %d, want %d", len(gotConfigs), len(configs))
	}
	for i := range configs {
		if gotConfigs[i] != configs[i] {
			t.Errorf("config %d mismatch:\n%q\nvs\n%q", i, gotConfigs[i], configs[i])
		}
	}
	if gotInv != inventory {
		t.Errorf("inventory mismatch")
	}
	// And the re-read archive parses.
	if _, err := Parse(gotConfigs, gotInv); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no hostname", "interface so-0/0/0\n ip address 10.0.0.1 255.255.255.252\n"},
		{"bad role", "hostname r1\n! role: emperor\n"},
		{"bad mask", "hostname r1\ninterface x\n ip address 10.0.0.1 255.0.255.0\n"},
		{"bad addr", "hostname r1\ninterface x\n ip address banana 255.255.255.252\n"},
		{"unknown statement", "hostname r1\nfrobnicate\n"},
		{"unknown iface statement", "hostname r1\ninterface x\n shutdown now\n"},
		{"bad card", "hostname r1\ncard x\n"},
	}
	for _, c := range cases {
		if _, err := Parse([]DeviceConfig{{Hostname: "r1", Text: c.text}}, ""); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestInventoryErrors(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	configs := Render(n.Topo)
	cases := []string{
		"circuit,physical,kind,devices\nnope,c1,sonet,d1\n",     // unknown circuit
		"circuit,physical,kind,devices\ncustB-att,c1,warp,d1\n", // unknown kind
		"circuit,physical,kind,devices\ncustB-att,c1,sonet\n",   // short row
	}
	for i, inv := range cases {
		if _, err := Parse(configs, inv); err == nil {
			t.Errorf("inventory case %d accepted", i)
		}
	}
	// Empty inventory is fine.
	if _, err := Parse(configs, "   \n"); err != nil {
		t.Errorf("empty inventory rejected: %v", err)
	}
}

func TestStubSubnetIgnored(t *testing.T) {
	// An interface with no /30 peer parses but creates no link.
	cfg := DeviceConfig{Hostname: "r1", Text: strings.Join([]string{
		"hostname r1",
		"! role: provider-edge",
		"! pop: xx",
		"interface so-0/0/0",
		" ip address 10.9.0.1 255.255.255.252",
	}, "\n") + "\n"}
	topo, err := Parse([]DeviceConfig{cfg}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Links) != 0 {
		t.Errorf("stub subnet created a link: %v", topo.LinkIDs())
	}
	if _, ok := topo.InterfaceByName("r1", "so-0/0/0"); !ok {
		t.Error("interface missing")
	}
}

func TestMaskBits(t *testing.T) {
	cases := map[string]int{
		"255.255.255.252": 30,
		"255.255.255.255": 32,
		"255.255.254.0":   23,
		"0.0.0.0":         0,
	}
	for s, want := range cases {
		got, err := maskBits(s)
		if err != nil || got != want {
			t.Errorf("maskBits(%s) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, bad := range []string{"255.0.255.0", "banana", "255.255.255.253"} {
		if _, err := maskBits(bad); err == nil {
			t.Errorf("maskBits(%s) accepted", bad)
		}
	}
}
