package replica

import (
	"bytes"
	"io"
	"testing"

	"grca/internal/wal"
)

// FuzzStreamDecode drives the replication stream decoder — WAL framing
// outside, protocol messages inside — with arbitrary bytes: torn
// frames, flipped CRCs, truncated segment hand-offs, absurd lengths.
// The decoder must never panic, never allocate proportionally to a
// claimed (rather than delivered) size, and must classify every stream
// as some prefix of messages followed by clean EOF or ErrTornFrame.
func FuzzStreamDecode(f *testing.F) {
	// Seed with a well-formed stream of every message type...
	var good []byte
	good = AppendHello(good, "boot-fuzz", 4, StreamJournal, 12)
	good = AppendJournalRec(good, 1, []byte{42, 'r', 'e', 'c'})
	good = AppendWALRec(good, []byte{9, 'w'})
	good = AppendSnapBegin(good, 512, 64)
	good = AppendSnapChunk(good, bytes.Repeat([]byte{0xab}, 64))
	good = AppendSnapEnd(good)
	good = AppendHeartbeat(good, 99, []int64{1, 2, 3, 4}, []int{5, 6, 7, 8})
	good = AppendEOF(good, "seal")
	f.Add(good)
	// ...its truncations (torn frames and a mid-payload cut)...
	f.Add(good[:len(good)-3])
	f.Add(good[:5])
	// ...a CRC flip, a huge claimed length, and junk.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte("not a stream at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(wal.NewFrameReader(bytes.NewReader(data)))
		msgs := 0
		for {
			m, err := r.Next()
			if err == io.EOF || err == wal.ErrTornFrame {
				break
			}
			if err != nil {
				// A framed-but-bogus payload: fine, but it must not loop.
				break
			}
			// Parsed fields must stay within the bounds ParseMsg promises.
			if m.Shards < 0 || m.Shards > maxShards {
				t.Fatalf("hello shards out of bounds: %d", m.Shards)
			}
			if len(m.JournalBytes) > maxShards || len(m.WALNext) > maxShards {
				t.Fatalf("heartbeat arrays out of bounds: %d/%d", len(m.JournalBytes), len(m.WALNext))
			}
			msgs++
			if msgs > 1<<20 {
				t.Fatal("decoder emitted over a million messages from a bounded input")
			}
		}
	})
}
