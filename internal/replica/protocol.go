// Package replica is the WAL-shipping replication subsystem: a
// primary-side Source that tails the serving pipeline's ingest journals
// and per-shard WAL segments and streams them over HTTP, and the
// follower-side pieces — a reconnecting Client, a WALSink that
// materializes shipped segments and snapshots on the follower's disk —
// that keep a live read replica byte-identical to its primary.
//
// The stream reuses the WAL's record framing (len | CRC32C | payload),
// so the wire format is the on-disk format; each frame's payload is one
// protocol message: a type byte followed by a type-specific body. Two
// stream kinds exist:
//
//   - The journal stream ships every shard's ingest-journal records
//     merged into global sequence order (each tagged with its owner
//     shard). It is totally ordered, so the follower applies records in
//     arrival order through the same replay path crash recovery uses —
//     same routing, same dense ID allocation, same store digests.
//   - A WAL stream per shard ships that shard's event-WAL records (and,
//     when the follower's frontier predates the oldest retained segment,
//     the latest snapshot first). Shipped bytes go to the follower's
//     disk only; on promotion they are reconciled against the journal
//     replay exactly as a restarting primary reconciles its own WAL.
//
// Heartbeats carry the primary's sealed sequence and per-shard
// journal/WAL frontiers — the lag signal — on every stream.
package replica

import (
	"encoding/binary"
	"fmt"

	"grca/internal/wal"
)

// Protocol message types. One frame carries one message.
const (
	// MsgHello is the server's first frame on every stream: protocol
	// version, the primary's boot ID, its shard count, the stream kind,
	// and the resume point the server honored.
	MsgHello byte = 1
	// MsgJournalRec carries one ingest-journal record and the shard whose
	// journal owns it. Journal-stream only; records arrive in global
	// sequence order.
	MsgJournalRec byte = 2
	// MsgWALRec carries one event-WAL segment record (explicit store ID
	// inside). WAL-stream only; records arrive in ascending ID order.
	MsgWALRec byte = 3
	// MsgSnapBegin announces a snapshot bootstrap: the follower's resume
	// point predates the oldest retained segment, so the latest snapshot
	// ships first. The follower resets its local WAL state for the shard.
	MsgSnapBegin byte = 4
	// MsgSnapChunk carries one chunk of the snapshot file, verbatim.
	MsgSnapChunk byte = 5
	// MsgSnapEnd closes the snapshot; WAL records from its next-ID bound
	// follow.
	MsgSnapEnd byte = 6
	// MsgHeartbeat carries the primary's sealed sequence and per-shard
	// journal byte sizes and WAL frontiers — the follower's lag inputs.
	MsgHeartbeat byte = 7
	// MsgEOF ends a stream deliberately (shutdown, seal) with a reason.
	MsgEOF byte = 8
)

// ProtocolVersion is negotiated via MsgHello; a follower refuses a
// primary speaking a different version.
const ProtocolVersion = 1

// Stream kinds named in MsgHello.
const (
	StreamJournal byte = 'j'
	StreamWAL     byte = 'w'
)

// maxShards bounds the per-shard arrays a heartbeat or hello may claim,
// so a corrupt frame cannot drive a huge allocation.
const maxShards = 1024

// Msg is one decoded protocol message; the populated fields depend on
// Type. Rec and Chunk alias the decoded frame's buffer — copy to retain
// across the next read.
type Msg struct {
	Type byte

	// MsgHello
	Ver    int
	BootID string
	Shards int
	Stream byte
	From   int

	// MsgJournalRec
	Shard int
	// MsgJournalRec, MsgWALRec
	Rec []byte
	// MsgSnapChunk
	Chunk []byte
	// MsgSnapBegin
	Next int
	Size int64

	// MsgHeartbeat
	Sealed       int
	JournalBytes []int64
	WALNext      []int

	// MsgEOF
	Reason string
}

func appendStreamString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readStreamString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return "", p, fmt.Errorf("replica: truncated string")
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

// appendMsg frames one encoded message payload onto b.
func appendMsg(b, payload []byte) []byte { return wal.AppendFrame(b, payload) }

// AppendHello frames a hello message onto b.
func AppendHello(b []byte, bootID string, shards int, stream byte, from int) []byte {
	p := make([]byte, 0, 32+len(bootID))
	p = append(p, MsgHello)
	p = binary.AppendUvarint(p, ProtocolVersion)
	p = appendStreamString(p, bootID)
	p = binary.AppendUvarint(p, uint64(shards))
	p = append(p, stream)
	p = binary.AppendVarint(p, int64(from))
	return appendMsg(b, p)
}

// AppendJournalRec frames one journal record (owner shard + verbatim
// on-disk record bytes) onto b.
func AppendJournalRec(b []byte, shard int, rec []byte) []byte {
	p := make([]byte, 0, 8+len(rec))
	p = append(p, MsgJournalRec)
	p = binary.AppendUvarint(p, uint64(shard))
	p = append(p, rec...)
	return appendMsg(b, p)
}

// AppendWALRec frames one WAL segment record (verbatim on-disk bytes)
// onto b.
func AppendWALRec(b []byte, rec []byte) []byte {
	p := make([]byte, 0, 1+len(rec))
	p = append(p, MsgWALRec)
	p = append(p, rec...)
	return appendMsg(b, p)
}

// AppendSnapBegin frames a snapshot-bootstrap announcement onto b.
func AppendSnapBegin(b []byte, next int, size int64) []byte {
	p := make([]byte, 0, 24)
	p = append(p, MsgSnapBegin)
	p = binary.AppendUvarint(p, uint64(next))
	p = binary.AppendUvarint(p, uint64(size))
	return appendMsg(b, p)
}

// AppendSnapChunk frames one snapshot file chunk onto b.
func AppendSnapChunk(b []byte, chunk []byte) []byte {
	p := make([]byte, 0, 1+len(chunk))
	p = append(p, MsgSnapChunk)
	p = append(p, chunk...)
	return appendMsg(b, p)
}

// AppendSnapEnd frames the snapshot terminator onto b.
func AppendSnapEnd(b []byte) []byte { return appendMsg(b, []byte{MsgSnapEnd}) }

// AppendHeartbeat frames a lag heartbeat onto b: the sealed global
// sequence plus, per shard, the journal's byte size and the WAL's next
// record ID on the primary.
func AppendHeartbeat(b []byte, sealed int, journalBytes []int64, walNext []int) []byte {
	p := make([]byte, 0, 16+20*len(journalBytes))
	p = append(p, MsgHeartbeat)
	p = binary.AppendVarint(p, int64(sealed))
	p = binary.AppendUvarint(p, uint64(len(journalBytes)))
	for i := range journalBytes {
		p = binary.AppendUvarint(p, uint64(journalBytes[i]))
		n := 0
		if i < len(walNext) {
			n = walNext[i]
		}
		p = binary.AppendUvarint(p, uint64(n))
	}
	return appendMsg(b, p)
}

// AppendEOF frames a deliberate end-of-stream onto b.
func AppendEOF(b []byte, reason string) []byte {
	p := make([]byte, 0, 1+len(reason)+8)
	p = append(p, MsgEOF)
	p = appendStreamString(p, reason)
	return appendMsg(b, p)
}

// ParseMsg decodes one frame payload into a Msg. It never panics on
// arbitrary input and bounds every allocation — torn frames, bad CRCs,
// and truncated hand-offs are the callers' (FrameReader's) department;
// this guards the payload layer.
func ParseMsg(p []byte) (Msg, error) {
	if len(p) < 1 {
		return Msg{}, fmt.Errorf("replica: empty message")
	}
	m := Msg{Type: p[0]}
	p = p[1:]
	switch m.Type {
	case MsgHello:
		ver, sz := binary.Uvarint(p)
		if sz <= 0 {
			return m, fmt.Errorf("replica: truncated hello version")
		}
		p = p[sz:]
		m.Ver = int(ver)
		var err error
		if m.BootID, p, err = readStreamString(p); err != nil {
			return m, err
		}
		shards, sz := binary.Uvarint(p)
		if sz <= 0 || shards == 0 || shards > maxShards {
			return m, fmt.Errorf("replica: bad hello shard count")
		}
		p = p[sz:]
		m.Shards = int(shards)
		if len(p) < 1 {
			return m, fmt.Errorf("replica: truncated hello stream kind")
		}
		m.Stream, p = p[0], p[1:]
		from, sz := binary.Varint(p)
		if sz <= 0 {
			return m, fmt.Errorf("replica: truncated hello resume point")
		}
		m.From = int(from)
	case MsgJournalRec:
		shard, sz := binary.Uvarint(p)
		if sz <= 0 || shard >= maxShards {
			return m, fmt.Errorf("replica: bad journal record shard")
		}
		m.Shard = int(shard)
		m.Rec = p[sz:]
	case MsgWALRec:
		m.Rec = p
	case MsgSnapBegin:
		next, sz := binary.Uvarint(p)
		if sz <= 0 {
			return m, fmt.Errorf("replica: truncated snapshot next")
		}
		p = p[sz:]
		size, sz := binary.Uvarint(p)
		if sz <= 0 {
			return m, fmt.Errorf("replica: truncated snapshot size")
		}
		m.Next, m.Size = int(next), int64(size)
	case MsgSnapChunk:
		m.Chunk = p
	case MsgSnapEnd, MsgEOF:
		if m.Type == MsgEOF {
			var err error
			if m.Reason, _, err = readStreamString(p); err != nil {
				return m, err
			}
		}
	case MsgHeartbeat:
		sealed, sz := binary.Varint(p)
		if sz <= 0 {
			return m, fmt.Errorf("replica: truncated heartbeat sealed seq")
		}
		p = p[sz:]
		m.Sealed = int(sealed)
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > maxShards {
			return m, fmt.Errorf("replica: bad heartbeat shard count")
		}
		p = p[sz:]
		m.JournalBytes = make([]int64, n)
		m.WALNext = make([]int, n)
		for i := uint64(0); i < n; i++ {
			jb, sz := binary.Uvarint(p)
			if sz <= 0 {
				return m, fmt.Errorf("replica: truncated heartbeat journal bytes")
			}
			p = p[sz:]
			wn, sz := binary.Uvarint(p)
			if sz <= 0 {
				return m, fmt.Errorf("replica: truncated heartbeat wal frontier")
			}
			p = p[sz:]
			m.JournalBytes[i] = int64(jb)
			m.WALNext[i] = int(wn)
		}
	default:
		return m, fmt.Errorf("replica: unknown message type %d", m.Type)
	}
	return m, nil
}

// JournalSeq reads the global sequence number off an encoded ingest
// journal record without decoding the rest — what the source's merge
// and the follower's lag tracking need.
func JournalSeq(p []byte) (int, error) {
	seq, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("replica: truncated journal record seq")
	}
	return int(seq), nil
}

// Reader decodes protocol messages from a byte stream: WAL framing
// outside, ParseMsg inside. Next returns io.EOF at a clean frame
// boundary and wal.ErrTornFrame on a torn or corrupt frame.
type Reader struct {
	fr *wal.FrameReader
}

// NewReader wraps an incremental frame reader.
func NewReader(fr *wal.FrameReader) *Reader { return &Reader{fr: fr} }

// Next returns the next message. Msg buffers alias the reader's internal
// buffer — copy to retain across calls.
func (r *Reader) Next() (Msg, error) {
	payload, err := r.fr.Next()
	if err != nil {
		return Msg{}, err
	}
	return ParseMsg(payload)
}
