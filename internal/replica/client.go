package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"grca/internal/obs"
	"grca/internal/wal"
)

var (
	mReconnects = obs.GetCounter("replica.client.reconnects")
	mStreamErrs = obs.GetCounter("replica.client.stream.errors")
)

// ErrFatal wraps a handler error that must stop the stream for good —
// boot-ID mismatch, protocol violation, local apply failure — instead
// of reconnecting into the same wall.
var ErrFatal = errors.New("replica: fatal stream error")

// Fatal marks err as non-retryable for the Client loop.
func Fatal(err error) error { return fmt.Errorf("%w: %w", ErrFatal, err) }

// Client maintains one replication stream: connect, decode frames,
// hand each message to Handle, and reconnect with exponential backoff
// when the stream drops. A clean MsgEOF (primary shutdown, deliberate
// seal) also reconnects — the primary may come back — unless Handle
// returned a Fatal error first.
type Client struct {
	// URL builds the stream request URL for a given resume point.
	URL func(from int) string
	// From returns the resume point at each (re)connect — the follower's
	// local frontier, so re-shipped records after a crash are minimal.
	From func() int
	// Handle applies one message. Wrap the return in Fatal to stop the
	// loop permanently; any other error reconnects.
	Handle func(Msg) error
	// HTTP issues the requests (default http.DefaultClient).
	HTTP *http.Client
	// Backoff is the initial reconnect delay (default 100ms), doubling to
	// MaxBackoff (default 5s). A connection that delivered messages
	// resets the ladder.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// OnState, when set, observes health transitions: nil after a
	// successful connect, the error after a failure. Called from the
	// client goroutine.
	OnState func(err error)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func (c *Client) defaults() {
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
}

// Start launches the stream loop. Stop (or a Fatal handler error) ends
// it; Wait blocks until it is down.
func (c *Client) Start() {
	c.defaults()
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run() // lifecycle: Stop closes c.stop, Wait joins c.done
}

// Stop asks the loop to exit and interrupts any in-flight read.
func (c *Client) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// Wait blocks until the loop has exited.
func (c *Client) Wait() { <-c.done }

func (c *Client) run() {
	defer close(c.done)
	backoff := c.Backoff
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		delivered, err := c.once()
		if err != nil && errors.Is(err, ErrFatal) {
			mStreamErrs.Inc()
			if c.OnState != nil {
				c.OnState(err)
			}
			return
		}
		if err != nil {
			mStreamErrs.Inc()
			if c.OnState != nil {
				c.OnState(err)
			}
		}
		if delivered {
			backoff = c.Backoff
		} else if backoff *= 2; backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
		select {
		case <-c.stop:
			return
		case <-time.After(backoff):
		}
		mReconnects.Inc()
	}
}

// once runs one connection to exhaustion. delivered reports whether any
// message arrived (the backoff-reset signal).
func (c *Client) once() (delivered bool, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL(c.From()), nil)
	if err != nil {
		return false, Fatal(err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return false, fmt.Errorf("replica: stream request: %s", resp.Status)
	}
	if c.OnState != nil {
		c.OnState(nil)
	}

	// A Stop while blocked in a read must interrupt it: cancel the
	// request context when stop closes. watchdone gates the watcher's
	// exit so this function never leaks it.
	watchdone := make(chan struct{})
	bodyDone := make(chan struct{})
	go func() { // lifecycle: joined via watchdone before once returns
		defer close(watchdone)
		select {
		case <-c.stop:
			cancel()
		case <-bodyDone:
		}
	}()
	defer func() { close(bodyDone); <-watchdone }()

	r := NewReader(wal.NewFrameReader(resp.Body))
	for {
		msg, err := r.Next()
		if err == io.EOF {
			return delivered, nil
		}
		if err != nil {
			select {
			case <-c.stop:
				return delivered, nil // interrupted read, not a stream fault
			default:
			}
			return delivered, err
		}
		delivered = true
		if msg.Type == MsgEOF {
			return delivered, nil
		}
		if err := c.Handle(msg); err != nil {
			return delivered, err
		}
	}
}
