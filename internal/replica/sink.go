package replica

import (
	"fmt"
	"os"
	"path/filepath"

	"grca/internal/wal"
)

// WALSink materializes one shard's shipped event-WAL stream on the
// follower's disk, in the exact layout the primary uses (wal/seg-*.log
// segments, snap/snap-*.snap snapshots), so that promotion — a plain
// wal.Open over the directory — recovers it like a restarting primary
// recovers its own log. The sink is not an applier: shipped bytes go to
// disk only; the follower's live store is fed by the journal stream.
//
// Durability is asynchronous: records are written without fsync and
// Sync is called at stream heartbeats. A follower crash tears off an
// unsynced tail; the reconnecting client resumes from the truncated
// frontier.
type WALSink struct {
	dir string
	// segBytes is the rotation threshold (primary default when zero).
	segBytes int64

	next     int // ID the next shipped record must carry or exceed
	seg      *os.File
	segPath  string
	segSize  int64
	frame    []byte
	snapTmp  *os.File
	snapNext int
	snapSize int64
	snapWant int64
}

// OpenWALSink scans the shard state under dir, truncates any torn tail
// (and drops segments beyond it), and returns a sink positioned at the
// first record ID not yet on disk — the resume point to request from
// the primary.
func OpenWALSink(dir string, segBytes int64) (*WALSink, error) {
	if segBytes <= 0 {
		segBytes = 64 << 20
	}
	for _, sub := range []string{wal.WALDirOf(dir), wal.SnapDirOf(dir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	s := &WALSink{dir: dir, segBytes: segBytes}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan walks the segments exactly as recovery would: ascending IDs, a
// torn frame truncates the file there and drops later segments. It
// leaves next at one past the highest intact record (or the snapshot
// bound when that is higher) and reopens the tail segment for append.
func (s *WALSink) scan() error {
	_, snapNext, ok, err := wal.LatestSnapshot(s.dir)
	if err != nil {
		return err
	}
	if ok {
		s.next = snapNext
	}
	segs, err := wal.Segments(s.dir)
	if err != nil {
		return err
	}
	torn := false
	var tail string
	var tailSize int64
	for _, seg := range segs {
		if torn {
			if err := os.Remove(seg.Path); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			return err
		}
		off := int64(0)
		rest := data
		last := -1
		for len(rest) > 0 {
			payload, r2, ok := wal.ReadFrame(rest)
			if !ok {
				torn = true
				if err := os.Truncate(seg.Path, off); err != nil {
					return err
				}
				break
			}
			id, err := wal.RecordID(payload)
			if err != nil {
				return fmt.Errorf("replica: sink %s: %v", seg.Path, err)
			}
			if id <= last {
				return fmt.Errorf("replica: sink %s: record ID %d not ascending", seg.Path, id)
			}
			last = id
			off += int64(wal.FrameHeader + len(payload))
			rest = r2
		}
		if last >= s.next-1 && last >= 0 {
			s.next = last + 1
		}
		tail, tailSize = seg.Path, off
	}
	if tail != "" {
		f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.seg, s.segPath, s.segSize = f, tail, tailSize
	}
	return nil
}

// Frontier returns the next record ID the sink needs — the resume point
// for the stream request.
func (s *WALSink) Frontier() int { return s.next }

// WriteRecord appends one shipped segment record. Records below the
// frontier (re-shipped after a reconnect) are dropped; IDs must
// otherwise ascend.
func (s *WALSink) WriteRecord(rec []byte) error {
	id, err := wal.RecordID(rec)
	if err != nil {
		return err
	}
	if id < s.next {
		return nil
	}
	if s.seg == nil || s.segSize >= s.segBytes {
		if err := s.rotateAt(id); err != nil {
			return err
		}
	}
	s.frame = wal.AppendFrame(s.frame[:0], rec)
	n, err := s.seg.Write(s.frame)
	s.segSize += int64(n)
	if err != nil {
		return err
	}
	s.next = id + 1
	return nil
}

// rotateAt closes the active segment and opens a fresh one named for
// first. O_TRUNC (not O_EXCL, as the primary uses): a reconnect after a
// total truncation may legitimately land on a name left by a removed
// run, and stale bytes under the same name must not survive.
func (s *WALSink) rotateAt(first int) error {
	if s.seg != nil {
		if err := fileSyncClose(s.seg); err != nil {
			return err
		}
		s.seg = nil
	}
	path := wal.SegPath(s.dir, first)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.seg, s.segPath, s.segSize = f, path, 0
	return nil
}

// BeginSnapshot starts a snapshot bootstrap: the primary compacted past
// our frontier, so local shard state is unusable — wipe every segment
// and snapshot and stage the shipped snapshot into a temp file.
func (s *WALSink) BeginSnapshot(next int, size int64) error {
	if s.seg != nil {
		s.seg.Close() //nolint:errcheck // the file is about to be deleted
		s.seg = nil
	}
	if s.snapTmp != nil {
		s.snapTmp.Close() //nolint:errcheck // restarting the bootstrap
		s.snapTmp = nil
	}
	segs, err := wal.Segments(s.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(seg.Path); err != nil {
			return err
		}
	}
	snaps, err := filepath.Glob(filepath.Join(wal.SnapDirOf(s.dir), "snap-*.snap"))
	if err != nil {
		return err
	}
	for _, p := range snaps {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	tmp := filepath.Join(wal.SnapDirOf(s.dir), "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.snapTmp, s.snapNext, s.snapWant, s.snapSize = f, next, size, 0
	return nil
}

// WriteSnapshotChunk appends one shipped snapshot chunk.
func (s *WALSink) WriteSnapshotChunk(chunk []byte) error {
	if s.snapTmp == nil {
		return fmt.Errorf("replica: snapshot chunk outside a bootstrap")
	}
	n, err := s.snapTmp.Write(chunk)
	s.snapSize += int64(n)
	return err
}

// EndSnapshot commits the staged snapshot (size-checked, synced,
// renamed into place) and moves the frontier to its bound; WAL records
// from there follow on the stream.
func (s *WALSink) EndSnapshot() error {
	if s.snapTmp == nil {
		return fmt.Errorf("replica: snapshot end outside a bootstrap")
	}
	f := s.snapTmp
	s.snapTmp = nil
	if s.snapSize != s.snapWant {
		f.Close() //nolint:errcheck // already failing
		return fmt.Errorf("replica: snapshot bootstrap got %d bytes, announced %d", s.snapSize, s.snapWant)
	}
	if err := fileSyncClose(f); err != nil {
		return err
	}
	tmp := filepath.Join(wal.SnapDirOf(s.dir), "snap.tmp")
	if err := os.Rename(tmp, wal.SnapPath(s.dir, s.snapNext)); err != nil {
		return err
	}
	if err := syncDir(wal.SnapDirOf(s.dir)); err != nil {
		return err
	}
	s.next = s.snapNext
	return nil
}

// Sync forces shipped records to stable storage (heartbeat cadence).
func (s *WALSink) Sync() error {
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Close syncs and closes the active segment and any staged snapshot.
func (s *WALSink) Close() error {
	var first error
	if s.snapTmp != nil {
		if err := s.snapTmp.Close(); err != nil {
			first = err
		}
		s.snapTmp = nil
	}
	if s.seg != nil {
		if err := fileSyncClose(s.seg); err != nil && first == nil {
			first = err
		}
		s.seg = nil
	}
	return first
}

func fileSyncClose(f *os.File) error {
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
