package replica

import (
	"fmt"
	"io"
	"os"
	"time"

	"grca/internal/obs"
	"grca/internal/wal"
)

var (
	mJournalShipped = obs.GetCounter("replica.source.journal.records")
	mWALShipped     = obs.GetCounter("replica.source.wal.records")
	mSnapshots      = obs.GetCounter("replica.source.snapshots.shipped")
	mFollowers      = obs.GetGauge("replica.source.followers")
)

// SourceConfig wires a Source into the serving pipeline it streams from.
type SourceConfig struct {
	// BootID identifies this primary incarnation; a follower refuses to
	// resume across a boot-ID change (recovery may renumber sequences).
	BootID string
	// Shards is the pipeline's shard count.
	Shards int
	// JournalPath returns shard i's ingest journal path.
	JournalPath func(i int) string
	// WALDir returns shard i's WAL state directory (holding wal/ and
	// snap/).
	WALDir func(i int) string
	// Sealed returns, per shard, the highest sequence number that shard's
	// journal can no longer gain records at or below — the merge's
	// emission watermark.
	Sealed func() []int
	// WALFrontier returns shard i's next WAL record ID on the primary
	// (heartbeat lag signal).
	WALFrontier func(i int) int
	// Registry tracks followers and feeds the compaction pin.
	Registry *Registry
	// Poll is the file-tail poll cadence (default 50ms).
	Poll time.Duration
	// Heartbeat is the idle heartbeat cadence (default 1s).
	Heartbeat time.Duration
}

func (c *SourceConfig) defaults() {
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
}

// Source serves replication streams off the primary's on-disk state. It
// holds no locks of the serving pipeline: it tails the journal and
// segment files the appliers write, and consults the sealed-sequence
// watermark to emit the merged journal in a total order no later append
// can contradict.
type Source struct {
	cfg SourceConfig
}

// NewSource returns a source over cfg.
func NewSource(cfg SourceConfig) *Source {
	cfg.defaults()
	return &Source{cfg: cfg}
}

// BootID returns the primary incarnation this source streams for.
func (s *Source) BootID() string { return s.cfg.BootID }

// Shards returns the shard count.
func (s *Source) Shards() int { return s.cfg.Shards }

// JournalSizes returns each shard journal's current byte size (0 for a
// journal not yet created).
func (s *Source) JournalSizes() []int64 {
	out := make([]int64, s.cfg.Shards)
	for i := range out {
		if st, err := os.Stat(s.cfg.JournalPath(i)); err == nil {
			out[i] = st.Size()
		}
	}
	return out
}

// WALFrontiers returns each shard's next WAL record ID.
func (s *Source) WALFrontiers() []int {
	out := make([]int, s.cfg.Shards)
	for i := range out {
		out[i] = s.cfg.WALFrontier(i)
	}
	return out
}

// heartbeat encodes the current lag heartbeat.
func (s *Source) heartbeat(b []byte) []byte {
	sealed := s.cfg.Sealed()
	minSealed := -1
	for i, v := range sealed {
		if i == 0 || v < minSealed {
			minSealed = v
		}
	}
	return AppendHeartbeat(b, minSealed, s.JournalSizes(), s.WALFrontiers())
}

// fileTail incrementally reads one append-only framed file, carrying a
// torn tail (a frame still being written) across fills.
type fileTail struct {
	path  string
	f     *os.File
	off   int64 // next read offset
	carry []byte
}

// fill reads everything currently readable and pushes each complete
// frame's payload to push. It returns whether any frame was delivered.
func (t *fileTail) fill(push func(payload []byte) error) (bool, error) {
	if t.f == nil {
		f, err := os.Open(t.path)
		if os.IsNotExist(err) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		t.f = f
	}
	progress := false
	buf := make([]byte, 1<<18)
	for {
		n, err := t.f.ReadAt(buf, t.off)
		if n > 0 {
			t.off += int64(n)
			t.carry = append(t.carry, buf[:n]...)
			for {
				payload, rest, ok := wal.ReadFrame(t.carry)
				if !ok {
					break
				}
				if err := push(payload); err != nil {
					return progress, err
				}
				progress = true
				t.carry = rest
			}
			// Keep the torn remainder without pinning the old backing array.
			if len(t.carry) > 0 {
				t.carry = append([]byte(nil), t.carry...)
			} else {
				t.carry = nil
			}
		}
		if err == io.EOF {
			return progress, nil
		}
		if err != nil {
			return progress, err
		}
	}
}

func (t *fileTail) close() {
	if t.f != nil {
		t.f.Close() //nolint:errcheck // read-only
		t.f = nil
	}
}

// streamConn is one live stream connection's write side: frames are
// batched into buf and flushed through w (an http.Flusher-backed writer
// in the server, a plain buffer in tests).
type streamConn struct {
	w     io.Writer
	flush func()
	buf   []byte
}

func (c *streamConn) push() error {
	if len(c.buf) == 0 {
		return nil
	}
	_, err := c.w.Write(c.buf)
	c.buf = c.buf[:0]
	if err == nil && c.flush != nil {
		c.flush()
	}
	return err
}

// jrec is one journal record queued for merge.
type jrec struct {
	seq     int
	payload []byte
}

// ServeJournal streams the merged ingest journal to one follower: every
// shard journal's records, merged into global sequence order, each
// tagged with its owner shard, starting after sequence `from`. The
// stream tails the files live and ends only on stop (server shutdown)
// or a write error (follower gone). flush may be nil.
func (s *Source) ServeJournal(w io.Writer, flush func(), followerID string, from int, stop <-chan struct{}) error {
	s.cfg.Registry.Attach(followerID)
	defer s.cfg.Registry.Detach(followerID)
	mFollowers.Set(int64(len(s.cfg.Registry.Status())))

	conn := &streamConn{w: w, flush: flush}
	conn.buf = AppendHello(conn.buf, s.cfg.BootID, s.cfg.Shards, StreamJournal, from)
	if err := conn.push(); err != nil {
		return err
	}

	tails := make([]*fileTail, s.cfg.Shards)
	queues := make([][]jrec, s.cfg.Shards)
	for i := range tails {
		tails[i] = &fileTail{path: s.cfg.JournalPath(i)}
		defer tails[i].close()
	}
	shipped := from
	lastBeat := obs.Now()
	for {
		// The watermark snapshot MUST precede the file reads: a record
		// durably appended but not yet read in this pass is still pending
		// (done follows the fsync), so its shard's watermark observed here
		// sits below it and the merge gate cannot emit past it. Sampling
		// sealed after the fill would let a concurrent commit advance the
		// watermark over records this pass never saw — the merge would
		// run ahead and the resume skip below would then drop them.
		sealed := s.cfg.Sealed()
		for i := range tails {
			if _, err := tails[i].fill(func(payload []byte) error {
				seq, err := JournalSeq(payload)
				if err != nil {
					return fmt.Errorf("replica: shard %d journal: %v", i, err)
				}
				queues[i] = append(queues[i], jrec{seq, append([]byte(nil), payload...)})
				return nil
			}); err != nil {
				conn.buf = AppendEOF(conn.buf, err.Error())
				conn.push() //nolint:errcheck // stream is ending either way
				return err
			}
		}
		// Emit every record whose order no future append can contradict: a
		// queued record with sequence s goes out once each other shard
		// either shows a queued record (necessarily later — per-shard
		// sequences ascend) or is sealed at or past s.
		emitted := false
		for {
			pick := -1
			for i := range queues {
				if len(queues[i]) > 0 && (pick < 0 || queues[i][0].seq < queues[pick][0].seq) {
					pick = i
				}
			}
			if pick < 0 {
				break
			}
			seq := queues[pick][0].seq
			ready := true
			for j := range queues {
				if j != pick && len(queues[j]) == 0 && sealed[j] < seq {
					ready = false
					break
				}
			}
			if !ready {
				break
			}
			rec := queues[pick][0]
			queues[pick] = queues[pick][1:]
			if seq <= shipped {
				continue // resume skip: the follower journaled this already
			}
			conn.buf = AppendJournalRec(conn.buf, pick, rec.payload)
			shipped = seq
			emitted = true
			mJournalShipped.Inc()
			if len(conn.buf) >= 1<<16 {
				if err := conn.push(); err != nil {
					return err
				}
			}
		}
		if emitted {
			s.cfg.Registry.NoteJournal(followerID, shipped)
			if err := conn.push(); err != nil {
				return err
			}
			lastBeat = obs.Now()
			continue // drain hot without sleeping
		}
		if obs.Since(lastBeat) >= s.cfg.Heartbeat {
			conn.buf = s.heartbeat(conn.buf)
			if err := conn.push(); err != nil {
				return err
			}
			lastBeat = obs.Now()
		}
		select {
		case <-stop:
			conn.buf = AppendEOF(conn.buf, "primary shutting down")
			conn.push() //nolint:errcheck // stream is ending either way
			return nil
		case <-time.After(s.cfg.Poll):
		}
	}
}

// ServeWAL streams one shard's event WAL to a follower from record ID
// `from`: the latest snapshot first when retention has compacted past
// the resume point, then every segment record in ID order, tailing the
// active segment and handing off at rotation. The registry pin is set
// before the segment listing, so compaction cannot delete a segment
// between the decision to ship it and the read.
func (s *Source) ServeWAL(w io.Writer, flush func(), followerID string, shard, from int, stop <-chan struct{}) error {
	if shard < 0 || shard >= s.cfg.Shards {
		return fmt.Errorf("replica: no shard %d", shard)
	}
	s.cfg.Registry.Attach(followerID)
	defer s.cfg.Registry.Detach(followerID)
	s.cfg.Registry.NoteWAL(followerID, shard, from)

	conn := &streamConn{w: w, flush: flush}
	conn.buf = AppendHello(conn.buf, s.cfg.BootID, s.cfg.Shards, StreamWAL, from)
	if err := conn.push(); err != nil {
		return err
	}
	sess := &walSession{src: s, conn: conn, followerID: followerID, shard: shard, next: from}
	return sess.run(stop)
}

// walSession is one WAL stream's server-side state.
type walSession struct {
	src        *Source
	conn       *streamConn
	followerID string
	shard      int
	dir        string
	next       int // next record ID to ship
	tail       *fileTail
	tailFirst  int  // first ID of the segment tail reads
	booted     bool // past the snapshot decision
	stalls     int  // polls with a torn carry while a newer segment exists
}

// bootstrap decides how the stream starts: from the follower's frontier
// when segments still cover it, from the latest snapshot otherwise.
func (w *walSession) bootstrap() error {
	w.dir = w.src.cfg.WALDir(w.shard)
	path, snapNext, ok, err := wal.LatestSnapshot(w.dir)
	if err != nil {
		return err
	}
	if ok && w.next < snapNext {
		// Records below the snapshot bound may be compacted away; ship the
		// snapshot file verbatim and resume records at its bound. (Read it
		// whole up front — the keep-two rule may delete it mid-stream.)
		data, err := os.ReadFile(path)
		if err != nil {
			// Deleted between listing and read: a newer snapshot exists now.
			path2, next2, ok2, err2 := wal.LatestSnapshot(w.dir)
			if err2 != nil || !ok2 {
				return fmt.Errorf("replica: shard %d snapshot vanished: %v", w.shard, err)
			}
			if data, err = os.ReadFile(path2); err != nil {
				return err
			}
			snapNext = next2
		}
		w.conn.buf = AppendSnapBegin(w.conn.buf, snapNext, int64(len(data)))
		const chunk = 256 << 10
		for off := 0; off < len(data); off += chunk {
			end := min(off+chunk, len(data))
			w.conn.buf = AppendSnapChunk(w.conn.buf, data[off:end])
			if err := w.conn.push(); err != nil {
				return err
			}
		}
		w.conn.buf = AppendSnapEnd(w.conn.buf)
		if err := w.conn.push(); err != nil {
			return err
		}
		w.next = snapNext
		mSnapshots.Inc()
	}
	w.src.cfg.Registry.NoteWAL(w.followerID, w.shard, w.next)
	w.booted = true
	return nil
}

// openSegmentFor positions the tail on the newest segment whose first ID
// is at or below next (records before it are already shipped or never
// existed on this sparse shard). Returns false when no segment exists
// yet.
func (w *walSession) openSegmentFor() (bool, error) {
	segs, err := wal.Segments(w.dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, nil
	}
	idx := 0
	for i := range segs {
		if segs[i].First <= w.next {
			idx = i
		}
	}
	w.tail = &fileTail{path: segs[idx].Path}
	w.tailFirst = segs[idx].First
	return true, nil
}

// advanceSegment hands off to the next segment after the current one,
// if one exists. Rotation closes a segment before creating its
// successor, so once a newer segment is listed the current one is
// complete.
func (w *walSession) advanceSegment() (bool, error) {
	segs, err := wal.Segments(w.dir)
	if err != nil {
		return false, err
	}
	for i := range segs {
		if segs[i].First > w.tailFirst {
			w.tail.close()
			w.tail = &fileTail{path: segs[i].Path}
			w.tailFirst = segs[i].First
			return true, nil
		}
	}
	return false, nil
}

func (w *walSession) run(stop <-chan struct{}) error {
	defer func() {
		if w.tail != nil {
			w.tail.close()
		}
	}()
	lastBeat := obs.Now()
	for {
		progress, err := w.step()
		if err != nil {
			w.conn.buf = AppendEOF(w.conn.buf, err.Error())
			w.conn.push() //nolint:errcheck // stream is ending either way
			return err
		}
		if progress {
			w.src.cfg.Registry.NoteWAL(w.followerID, w.shard, w.next)
			if err := w.conn.push(); err != nil {
				return err
			}
			lastBeat = obs.Now()
			continue
		}
		if obs.Since(lastBeat) >= w.src.cfg.Heartbeat {
			w.conn.buf = w.src.heartbeat(w.conn.buf)
			if err := w.conn.push(); err != nil {
				return err
			}
			lastBeat = obs.Now()
		}
		select {
		case <-stop:
			w.conn.buf = AppendEOF(w.conn.buf, "primary shutting down")
			w.conn.push() //nolint:errcheck // stream is ending either way
			return nil
		case <-time.After(w.src.cfg.Poll):
		}
	}
}

// step makes one unit of progress: bootstrap, open a segment, drain the
// current segment's new records, or hand off at rotation.
func (w *walSession) step() (bool, error) {
	if !w.booted {
		if err := w.bootstrap(); err != nil {
			return false, err
		}
		return true, nil
	}
	if w.tail == nil {
		ok, err := w.openSegmentFor()
		return ok, err
	}
	progress, err := w.tail.fill(func(payload []byte) error {
		id, err := wal.RecordID(payload)
		if err != nil {
			return fmt.Errorf("replica: shard %d segment %s: %v", w.shard, w.tail.path, err)
		}
		if id < w.next {
			return nil // below the resume point: already shipped
		}
		w.conn.buf = AppendWALRec(w.conn.buf, payload)
		w.next = id + 1
		mWALShipped.Inc()
		if len(w.conn.buf) >= 1<<16 {
			return w.conn.push()
		}
		return nil
	})
	if err != nil {
		return progress, err
	}
	if progress {
		w.stalls = 0
		return true, nil
	}
	// No new bytes. If rotation moved on, hand off — but only once the
	// carry is empty: a torn frame must complete in place first, and a
	// torn frame in a rotated-away (immutable) segment is corruption.
	if len(w.tail.carry) == 0 {
		ok, err := w.advanceSegment()
		return ok, err
	}
	advanced, err := w.advanceable()
	if err != nil {
		return false, err
	}
	if advanced {
		w.stalls++
		if w.stalls > 200 {
			return false, fmt.Errorf("replica: shard %d segment %s torn mid-stream", w.shard, w.tail.path)
		}
	}
	return false, nil
}

// advanceable reports whether a segment newer than the current one
// exists (the hand-off condition, checked while a torn carry blocks it).
func (w *walSession) advanceable() (bool, error) {
	segs, err := wal.Segments(w.dir)
	if err != nil {
		return false, err
	}
	for i := range segs {
		if segs[i].First > w.tailFirst {
			return true, nil
		}
	}
	return false, nil
}

// ShipWALOnce streams shard state under dir — the latest snapshot if
// `from` predates the oldest retained record, then every flushed segment
// record with ID >= the resume point — to w, and returns without
// tailing. It is the chaos harness's deterministic, single-shot form of
// ServeWAL, sharing walSession's bootstrap and scan.
func ShipWALOnce(dir string, bootID string, from int, w io.Writer) (next int, err error) {
	conn := &streamConn{w: w}
	conn.buf = AppendHello(conn.buf, bootID, 1, StreamWAL, from)
	if err := conn.push(); err != nil {
		return from, err
	}
	reg := NewRegistry(1, time.Hour)
	reg.Attach("once")
	src := NewSource(SourceConfig{
		BootID: bootID, Shards: 1,
		JournalPath: func(int) string { return "" },
		WALDir:      func(int) string { return dir },
		Sealed:      func() []int { return []int{-1} },
		WALFrontier: func(int) int { return 0 },
		Registry:    reg,
	})
	sess := &walSession{src: src, conn: conn, followerID: "once", shard: 0, next: from}
	for {
		progress, err := sess.step()
		if err != nil {
			return sess.next, err
		}
		if !progress {
			break
		}
		if err := conn.push(); err != nil {
			return sess.next, err
		}
	}
	if sess.tail != nil {
		sess.tail.close()
	}
	conn.buf = AppendEOF(conn.buf, "complete")
	if err := conn.push(); err != nil {
		return sess.next, err
	}
	return sess.next, nil
}
