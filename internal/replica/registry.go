package replica

import (
	"sort"
	"sync"
	"time"

	"grca/internal/obs"
)

// DefaultGrace is how long a disconnected follower's compaction pin
// survives: segments it has not shipped stay on disk for this window so
// a transient partition does not force a snapshot re-bootstrap.
const DefaultGrace = 5 * time.Minute

// Registry tracks attached followers on the primary: per-follower,
// per-shard shipped frontiers feed the WAL compaction pin, and the
// whole table backs /v1/replication/status. A follower that disconnects
// keeps its entry (and its pin) for the grace window; reconnecting
// within it resumes from retained segments instead of a snapshot.
type Registry struct {
	shards int
	grace  time.Duration

	mu        sync.Mutex
	followers map[string]*followerEntry
}

type followerEntry struct {
	id         string
	streams    int // open stream connections
	lastSeen   time.Time
	journalSeq int   // last merged-journal seq shipped
	walNext    []int // per-shard shipped WAL frontier (next un-shipped ID)
}

// FollowerStatus is one follower's row in the primary's replication
// status.
type FollowerStatus struct {
	ID         string  `json:"id"`
	Streams    int     `json:"streams"`
	Connected  bool    `json:"connected"`
	IdleSecs   float64 `json:"idle_seconds"`
	JournalSeq int     `json:"journal_seq"`
	WALNext    []int   `json:"wal_next"`
}

// NewRegistry returns a registry for a primary with the given shard
// count. grace <= 0 takes DefaultGrace.
func NewRegistry(shards int, grace time.Duration) *Registry {
	if grace <= 0 {
		grace = DefaultGrace
	}
	return &Registry{shards: shards, grace: grace, followers: map[string]*followerEntry{}}
}

// Attach registers one stream connection for the follower, creating its
// entry (with everything-pinned frontiers) on first contact.
func (r *Registry) Attach(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.followers[id]
	if e == nil {
		e = &followerEntry{id: id, journalSeq: -1, walNext: make([]int, r.shards)}
		r.followers[id] = e
	}
	e.streams++
	e.lastSeen = obs.Now()
}

// Detach drops one stream connection and stamps the grace-window clock.
func (r *Registry) Detach(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.followers[id]; e != nil {
		if e.streams > 0 {
			e.streams--
		}
		e.lastSeen = obs.Now()
	}
}

// NoteJournal records the merged-journal sequence shipped to the
// follower.
func (r *Registry) NoteJournal(id string, seq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.followers[id]; e != nil {
		if seq > e.journalSeq {
			e.journalSeq = seq
		}
		e.lastSeen = obs.Now()
	}
}

// NoteWAL records the follower's shipped WAL frontier for one shard:
// every record with ID < next has been sent.
func (r *Registry) NoteWAL(id string, shard, next int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.followers[id]
	if e == nil || shard < 0 || shard >= len(e.walNext) {
		return
	}
	if next > e.walNext[shard] {
		e.walNext[shard] = next
	}
	e.lastSeen = obs.Now()
}

// PinWAL returns shard's compaction pin — the lowest WAL record ID some
// live (attached, or disconnected within the grace window) follower has
// not shipped — or -1 when no follower pins the shard. Expired entries
// are dropped here, lazily.
func (r *Registry) PinWAL(shard int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	pin := -1
	for _, e := range r.followers {
		if shard < 0 || shard >= len(e.walNext) {
			continue
		}
		if pin < 0 || e.walNext[shard] < pin {
			pin = e.walNext[shard]
		}
	}
	return pin
}

// expireLocked removes disconnected entries past the grace window.
func (r *Registry) expireLocked() {
	for id, e := range r.followers {
		if e.streams == 0 && obs.Since(e.lastSeen) > r.grace {
			delete(r.followers, id)
		}
	}
}

// Status returns every live follower's row, sorted by ID.
func (r *Registry) Status() []FollowerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	out := make([]FollowerStatus, 0, len(r.followers))
	for _, e := range r.followers {
		wn := make([]int, len(e.walNext))
		copy(wn, e.walNext)
		out = append(out, FollowerStatus{
			ID: e.id, Streams: e.streams, Connected: e.streams > 0,
			IdleSecs:   obs.Since(e.lastSeen).Seconds(),
			JournalSeq: e.journalSeq, WALNext: wn,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
