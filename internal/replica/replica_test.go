package replica

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/wal"
)

var t0 = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

func inst(id int, name string) event.Instance {
	return event.Instance{
		ID:    id,
		Name:  name,
		Start: t0.Add(time.Duration(id) * time.Second),
		End:   t0.Add(time.Duration(id)*time.Second + time.Minute),
		Loc:   locus.Location{Type: locus.Router, A: fmt.Sprintf("r%d", id%7)},
		Attrs: map[string]string{"seq": fmt.Sprint(id)},
	}
}

// decodeStream parses a full byte stream into messages (deep-copied).
func decodeStream(t *testing.T, b []byte) []Msg {
	t.Helper()
	r := NewReader(wal.NewFrameReader(bytes.NewReader(b)))
	var out []Msg
	for {
		m, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode stream: %v (after %d msgs)", err, len(out))
		}
		m.Rec = append([]byte(nil), m.Rec...)
		m.Chunk = append([]byte(nil), m.Chunk...)
		out = append(out, m)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	var b []byte
	b = AppendHello(b, "boot-1", 4, StreamJournal, 17)
	b = AppendJournalRec(b, 2, []byte("journal-bytes"))
	b = AppendWALRec(b, []byte{7, 'w'})
	b = AppendSnapBegin(b, 1000, 12345)
	b = AppendSnapChunk(b, []byte("chunk"))
	b = AppendSnapEnd(b)
	b = AppendHeartbeat(b, 41, []int64{10, 20}, []int{5, 6})
	b = AppendEOF(b, "done")

	msgs := decodeStream(t, b)
	if len(msgs) != 8 {
		t.Fatalf("got %d messages, want 8", len(msgs))
	}
	h := msgs[0]
	if h.Type != MsgHello || h.Ver != ProtocolVersion || h.BootID != "boot-1" ||
		h.Shards != 4 || h.Stream != StreamJournal || h.From != 17 {
		t.Fatalf("hello mismatch: %+v", h)
	}
	if j := msgs[1]; j.Type != MsgJournalRec || j.Shard != 2 || string(j.Rec) != "journal-bytes" {
		t.Fatalf("journal rec mismatch: %+v", j)
	}
	if w := msgs[2]; w.Type != MsgWALRec || !bytes.Equal(w.Rec, []byte{7, 'w'}) {
		t.Fatalf("wal rec mismatch: %+v", w)
	}
	if s := msgs[3]; s.Type != MsgSnapBegin || s.Next != 1000 || s.Size != 12345 {
		t.Fatalf("snap begin mismatch: %+v", s)
	}
	if c := msgs[4]; c.Type != MsgSnapChunk || string(c.Chunk) != "chunk" {
		t.Fatalf("snap chunk mismatch: %+v", c)
	}
	if msgs[5].Type != MsgSnapEnd {
		t.Fatalf("snap end mismatch: %+v", msgs[5])
	}
	hb := msgs[6]
	if hb.Type != MsgHeartbeat || hb.Sealed != 41 ||
		len(hb.JournalBytes) != 2 || hb.JournalBytes[1] != 20 || hb.WALNext[1] != 6 {
		t.Fatalf("heartbeat mismatch: %+v", hb)
	}
	if e := msgs[7]; e.Type != MsgEOF || e.Reason != "done" {
		t.Fatalf("eof mismatch: %+v", e)
	}
}

func TestReaderTornStream(t *testing.T) {
	var b []byte
	b = AppendHello(b, "boot", 1, StreamWAL, 0)
	b = AppendWALRec(b, []byte{1, 2, 3})
	for cut := 1; cut < len(b); cut++ {
		r := NewReader(wal.NewFrameReader(bytes.NewReader(b[:cut])))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if err != io.EOF && err != wal.ErrTornFrame {
			t.Fatalf("cut %d: err = %v, want EOF or ErrTornFrame", cut, err)
		}
	}
	// Flipped byte inside a frame body must surface as a torn frame.
	bad := append([]byte(nil), b...)
	bad[len(bad)-2] ^= 0xff
	r := NewReader(wal.NewFrameReader(bytes.NewReader(bad)))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err != wal.ErrTornFrame {
		t.Fatalf("corrupt frame: err = %v, want ErrTornFrame", err)
	}
}

func TestRegistryPinAndGrace(t *testing.T) {
	r := NewRegistry(2, 30*time.Millisecond)
	if pin := r.PinWAL(0); pin != -1 {
		t.Fatalf("empty registry pin = %d, want -1", pin)
	}
	r.Attach("f1")
	if pin := r.PinWAL(0); pin != 0 {
		t.Fatalf("fresh follower pin = %d, want 0 (everything)", pin)
	}
	r.NoteWAL("f1", 0, 100)
	r.NoteWAL("f1", 1, 50)
	if pin := r.PinWAL(0); pin != 100 {
		t.Fatalf("shard 0 pin = %d, want 100", pin)
	}
	if pin := r.PinWAL(1); pin != 50 {
		t.Fatalf("shard 1 pin = %d, want 50", pin)
	}
	r.Attach("f2")
	r.NoteWAL("f2", 0, 10)
	if pin := r.PinWAL(0); pin != 10 {
		t.Fatalf("two-follower pin = %d, want min 10", pin)
	}
	// Disconnect f2: the pin holds through the grace window, then expires.
	r.Detach("f2")
	if pin := r.PinWAL(0); pin != 10 {
		t.Fatalf("graced pin = %d, want 10", pin)
	}
	time.Sleep(60 * time.Millisecond)
	if pin := r.PinWAL(0); pin != 100 {
		t.Fatalf("post-grace pin = %d, want 100", pin)
	}
	st := r.Status()
	if len(st) != 1 || st[0].ID != "f1" || !st[0].Connected {
		t.Fatalf("status = %+v, want connected f1 only", st)
	}
}

func TestWALSinkWriteScanResume(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALSink(dir, 256) // tiny segments to force rotation
	if err != nil {
		t.Fatal(err)
	}
	if s.Frontier() != 0 {
		t.Fatalf("fresh frontier = %d", s.Frontier())
	}
	recs := makeTestRecords(t, 40, "sink")
	for _, rec := range recs {
		if err := s.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate (re-shipped) records drop silently.
	if err := s.WriteRecord(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("got %d segments, want rotation to have split them", len(segs))
	}

	// Reopen: frontier resumes one past the last intact record.
	s2, err := OpenWALSink(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Frontier() != 40 {
		t.Fatalf("resumed frontier = %d, want 40", s2.Frontier())
	}
	s2.Close()

	// Tear the tail: frontier retreats to the committed prefix.
	tail := segs[len(segs)-1].Path
	st, _ := os.Stat(tail)
	if err := os.Truncate(tail, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenWALSink(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Frontier() >= 40 {
		t.Fatalf("torn-tail frontier = %d, want < 40", s3.Frontier())
	}
	// Re-shipping from the frontier completes the log again.
	for i := s3.Frontier(); i < 40; i++ {
		if err := s3.WriteRecord(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	_, mem, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, next, ins := mem.Dump()
	if next != 40 || len(ins) != 40 {
		t.Fatalf("recovered next=%d live=%d, want 40/40", next, len(ins))
	}
}

func TestWALSinkSnapshotBootstrap(t *testing.T) {
	// Build a primary log with a snapshot, ship it through the sink, and
	// check the follower recovers the identical store.
	prim := t.TempDir()
	l, st, _, err := wal.Open(prim, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := st.Put(inst(i, "boot")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 30; i++ {
		if _, err := st.Put(inst(i, "boot")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	want := wal.StoreDigest(st)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	next, err := ShipWALOnce(prim, "boot-x", 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if next != 30 {
		t.Fatalf("shipped next = %d, want 30", next)
	}

	foll := t.TempDir()
	sink, err := OpenWALSink(foll, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawSnap := false
	for _, m := range decodeStream(t, buf.Bytes()) {
		switch m.Type {
		case MsgSnapBegin:
			sawSnap = true
			if err := sink.BeginSnapshot(m.Next, m.Size); err != nil {
				t.Fatal(err)
			}
		case MsgSnapChunk:
			if err := sink.WriteSnapshotChunk(m.Chunk); err != nil {
				t.Fatal(err)
			}
		case MsgSnapEnd:
			if err := sink.EndSnapshot(); err != nil {
				t.Fatal(err)
			}
		case MsgWALRec:
			if err := sink.WriteRecord(m.Rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sawSnap {
		t.Fatal("stream from 0 after a snapshot should bootstrap via the snapshot")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	_, mem, _, err := wal.Open(foll, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wal.StoreDigest(mem); got != want {
		t.Fatalf("follower digest %s != primary %s", got, want)
	}
}

// collectWriter is a goroutine-safe sink for a live stream under test.
type collectWriter struct {
	mu sync.Mutex
	b  []byte
}

func (w *collectWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *collectWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.b...)
}

func TestServeJournalMergeOrder(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "j0.log"), filepath.Join(dir, "j1.log")}
	appendJ := func(shard, seq int, body string) {
		j, err := wal.OpenJournal(paths[shard])
		if err != nil {
			t.Fatal(err)
		}
		var rec []byte
		rec = appendUvarintTest(rec, seq)
		rec = append(rec, body...)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}
	// Shard 0 owns seqs 0 and 2; shard 1 owns seq 1. Sealed starts at
	// [-1,-1]: nothing may be emitted past a silent shard.
	appendJ(0, 0, "a")
	appendJ(0, 2, "c")

	var sealedMu sync.Mutex
	sealed := []int{-1, -1}
	reg := NewRegistry(2, time.Minute)
	src := NewSource(SourceConfig{
		BootID: "boot-m", Shards: 2,
		JournalPath: func(i int) string { return paths[i] },
		WALDir:      func(i int) string { return dir },
		Sealed: func() []int {
			sealedMu.Lock()
			defer sealedMu.Unlock()
			return append([]int(nil), sealed...)
		},
		WALFrontier: func(int) int { return 0 },
		Registry:    reg,
		Poll:        2 * time.Millisecond,
	})
	w := &collectWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- src.ServeJournal(w, nil, "t", -1, stop) }()

	countJ := func() int {
		n := 0
		for _, m := range decodeStream(t, w.bytes()) {
			if m.Type == MsgJournalRec {
				n++
			}
		}
		return n
	}
	waitJ := func(want int) {
		deadline := time.Now().Add(5 * time.Second)
		for countJ() < want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d journal recs (have %d)", want, countJ())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Nothing is sealed: seq 0 must be held (shard 1 might still get a
	// lower seq... no — but the merge can't know 0 is shard-global-min
	// until shard 1 seals past it or shows a record).
	time.Sleep(30 * time.Millisecond)
	if n := countJ(); n != 0 {
		t.Fatalf("emitted %d records before any seal", n)
	}
	// Seal shard 1 at 0: seq 0 may go; seq 2 still blocked (shard 1 could
	// own seq 1 or 2).
	sealedMu.Lock()
	sealed[1] = 0
	sealedMu.Unlock()
	waitJ(1)
	// Shard 1's record for seq 1 arrives: with both queues non-empty the
	// merge emits 1, then stalls on 2 until shard 1 seals past it.
	appendJ(1, 1, "b")
	waitJ(2)
	time.Sleep(20 * time.Millisecond)
	if n := countJ(); n != 2 {
		t.Fatalf("emitted %d records, want exactly 2 before sealing", n)
	}
	sealedMu.Lock()
	sealed[1] = 2
	sealedMu.Unlock()
	waitJ(3)
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var got []int
	var shards []int
	for _, m := range decodeStream(t, w.bytes()) {
		if m.Type != MsgJournalRec {
			continue
		}
		seq, err := JournalSeq(m.Rec)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seq)
		shards = append(shards, m.Shard)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("merged seqs = %v, want [0 1 2]", got)
	}
	if shards[0] != 0 || shards[1] != 1 || shards[2] != 0 {
		t.Fatalf("owner shards = %v, want [0 1 0]", shards)
	}
}

// TestServeJournalWatermarkBeforeFill pins the sample order inside the
// merge loop: the sealed watermark must be snapshotted BEFORE the file
// tails are read. The Sealed callback here plays the role of a shard
// applier finishing a commit between the two steps — it appends a
// record to shard 0's journal and advances the watermark past it in
// the same breath. If the source sampled sealed after the fill, that
// pass would see shard 0's queue empty, sealed past the new record,
// emit the later sequences, and the resume skip would then silently
// drop the record on the next pass (a permanently lagging follower).
func TestServeJournalWatermarkBeforeFill(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "j0.log"), filepath.Join(dir, "j1.log")}
	appendJ := func(shard, seq int, body string) {
		j, err := wal.OpenJournal(paths[shard])
		if err != nil {
			t.Fatal(err)
		}
		var rec []byte
		rec = appendUvarintTest(rec, seq)
		rec = append(rec, body...)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}
	// Shard 0 owns seqs 0 and 3 (3 lands mid-stream); shard 1 owns the
	// rest and is fully durable from the start.
	appendJ(0, 0, "a")
	appendJ(1, 1, "b")
	appendJ(1, 2, "c")
	appendJ(1, 4, "e")

	var mu sync.Mutex
	calls := 0
	appended := false
	reg := NewRegistry(2, time.Minute)
	src := NewSource(SourceConfig{
		BootID: "boot-w", Shards: 2,
		JournalPath: func(i int) string { return paths[i] },
		WALDir:      func(i int) string { return dir },
		Sealed: func() []int {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				// Seq 3 is still in flight toward shard 0's journal.
				return []int{0, 4}
			}
			if !appended {
				// The commit completes: seq 3 becomes durable and shard
				// 0's watermark moves past it, both "during" this call.
				appended = true
				appendJ(0, 3, "d")
			}
			return []int{4, 4}
		},
		WALFrontier: func(int) int { return 0 },
		Registry:    reg,
		Poll:        2 * time.Millisecond,
	})
	w := &collectWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- src.ServeJournal(w, nil, "t", -1, stop) }()

	seqs := func() []int {
		var got []int
		for _, m := range decodeStream(t, w.bytes()) {
			if m.Type != MsgJournalRec {
				continue
			}
			seq, err := JournalSeq(m.Rec)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, seq)
		}
		return got
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(seqs()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("stream stalled at %v, want [0 1 2 3 4] — a watermark sampled after the fill pass drops late-filled records", seqs())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := seqs()
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("merged seqs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged seqs = %v, want %v", got, want)
		}
	}
}

func TestServeWALLiveTailAndDigest(t *testing.T) {
	// Records written while the stream is live — across segment rotations
	// and snapshots (compaction racing the stream) — must all arrive, and
	// the sink-materialized log must recover to the primary's digest.
	prim := t.TempDir()
	l, st, _, err := wal.Open(prim, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(1, time.Minute)
	l.SetCompactPin(func() int { return reg.PinWAL(0) })

	src := NewSource(SourceConfig{
		BootID: "boot-w", Shards: 1,
		JournalPath: func(int) string { return filepath.Join(prim, "none.log") },
		WALDir:      func(int) string { return prim },
		Sealed:      func() []int { return []int{-1} },
		WALFrontier: func(int) int { return l.Frontier() },
		Registry:    reg,
		Poll:        2 * time.Millisecond,
	})
	w := &collectWriter{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- src.ServeWAL(w, nil, "t", 0, 0, stop) }()

	const total = 120
	for i := 0; i < total; i++ {
		if _, err := st.Put(inst(i, "live")); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if i%40 == 39 {
			if err := l.Snapshot(); err != nil { // compaction runs here
				t.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	want := wal.StoreDigest(st)

	// Wait until the stream's frontier covers everything. A completed
	// snapshot bootstrap covers records below its bound: when the writer
	// outruns the stream's attach, compaction may legitimately leave
	// nothing but the final snapshot to ship.
	deadline := time.Now().Add(10 * time.Second)
	for {
		frontier, pendingSnap := -1, -1
		for _, m := range decodeStream(t, w.bytes()) {
			switch m.Type {
			case MsgSnapBegin:
				pendingSnap = m.Next
			case MsgSnapEnd:
				if pendingSnap-1 > frontier {
					frontier = pendingSnap - 1
				}
			case MsgWALRec:
				id, err := wal.RecordID(m.Rec)
				if err != nil {
					t.Fatal(err)
				}
				frontier = id
			}
		}
		if frontier == total-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream stalled at record %d, want %d", frontier, total-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	foll := t.TempDir()
	sink, err := OpenWALSink(foll, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range decodeStream(t, w.bytes()) {
		switch m.Type {
		case MsgSnapBegin:
			err = sink.BeginSnapshot(m.Next, m.Size)
		case MsgSnapChunk:
			err = sink.WriteSnapshotChunk(m.Chunk)
		case MsgSnapEnd:
			err = sink.EndSnapshot()
		case MsgWALRec:
			err = sink.WriteRecord(m.Rec)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	_, mem, _, err := wal.Open(foll, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wal.StoreDigest(mem); got != want {
		t.Fatalf("follower digest %s != primary %s", got, want)
	}
}

func TestCompactionPinHoldsSegments(t *testing.T) {
	// With a follower pinned at 0, snapshots must not delete any segment;
	// releasing the pin lets the next snapshot compact.
	dir := t.TempDir()
	l, st, _, err := wal.Open(dir, wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	pin := 0
	var pinMu sync.Mutex
	l.SetCompactPin(func() int {
		pinMu.Lock()
		defer pinMu.Unlock()
		return pin
	})
	// Three commit+snapshot rounds at distinct next-IDs: the two retained
	// snapshots then give compaction a real horizon.
	for round := 0; round < 3; round++ {
		for i := round * 20; i < (round+1)*20; i++ {
			if _, err := st.Put(inst(i, "pin")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].First != 0 {
		t.Fatalf("pinned segments = %+v, want the full chain from 0", segs)
	}
	pinMu.Lock()
	pin = -1 // follower gone: nothing pinned
	pinMu.Unlock()
	for i := 60; i < 80; i++ {
		if _, err := st.Put(inst(i, "pin")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs, err = wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].First == 0 {
		t.Fatalf("post-release segments = %+v, want leading segments compacted", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientStreamsAndReconnects(t *testing.T) {
	// First request fails; second serves three messages then EOF. The
	// client must reconnect, deliver all messages, and honor Stop.
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		var b []byte
		b = AppendHello(b, "boot-c", 1, StreamWAL, 0)
		b = AppendWALRec(b, []byte{0, 'x'})
		b = AppendEOF(b, "bye")
		w.Write(b) //nolint:errcheck // test server
	}))
	defer srv.Close()

	got := make(chan Msg, 16)
	c := &Client{
		URL:     func(from int) string { return fmt.Sprintf("%s/stream?from=%d", srv.URL, from) },
		From:    func() int { return 0 },
		Handle:  func(m Msg) error { got <- m; return nil },
		Backoff: 5 * time.Millisecond,
	}
	c.Start()
	defer func() { c.Stop(); c.Wait() }()

	deadline := time.After(5 * time.Second)
	var seen []Msg
	for len(seen) < 2 {
		select {
		case m := <-got:
			seen = append(seen, m)
		case <-deadline:
			t.Fatalf("timed out; saw %d messages", len(seen))
		}
	}
	if seen[0].Type != MsgHello || seen[0].BootID != "boot-c" {
		t.Fatalf("first message %+v, want hello", seen[0])
	}
	if seen[1].Type != MsgWALRec {
		t.Fatalf("second message %+v, want wal rec", seen[1])
	}
	mu.Lock()
	if calls < 2 {
		t.Fatalf("calls = %d, want a reconnect after the 503", calls)
	}
	mu.Unlock()
}

func TestClientFatalStops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b []byte
		b = AppendHello(b, "other-boot", 1, StreamWAL, 0)
		w.Write(b) //nolint:errcheck // test server
	}))
	defer srv.Close()

	errs := make(chan error, 16)
	c := &Client{
		URL:  func(from int) string { return srv.URL },
		From: func() int { return 0 },
		Handle: func(m Msg) error {
			if m.Type == MsgHello && m.BootID != "boot-c" {
				return Fatal(fmt.Errorf("boot ID mismatch"))
			}
			return nil
		},
		Backoff: time.Millisecond,
		OnState: func(err error) {
			if err != nil {
				errs <- err
			}
		},
	}
	c.Start()
	waited := make(chan struct{})
	go func() { c.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("client did not stop on fatal error")
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("expected the fatal error reported")
		}
	default:
		t.Fatal("no error reported via OnState")
	}
}

// makeTestRecords encodes n segment records the way the WAL does — via
// a scratch log — so sink tests feed real on-disk record bytes.
func makeTestRecords(t *testing.T, n int, name string) [][]byte {
	t.Helper()
	dir := t.TempDir()
	l, st, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := st.Put(inst(i, name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, seg := range segs {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		for len(data) > 0 {
			payload, rest, ok := wal.ReadFrame(data)
			if !ok {
				t.Fatalf("bad test record in %s", seg.Path)
			}
			out = append(out, append([]byte(nil), payload...))
			data = rest
		}
	}
	if len(out) != n {
		t.Fatalf("encoded %d records, want %d", len(out), n)
	}
	return out
}

func appendUvarintTest(b []byte, v int) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
