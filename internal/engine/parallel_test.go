package engine

import (
	"fmt"
	"strings"
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/ospf"
)

// TestParallelMatchesSerial: parallel diagnosis must produce identical
// verdicts in identical order.
func TestParallelMatchesSerial(t *testing.T) {
	f := newFixture(t)
	// A spread of symptoms with varying evidence.
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 40; i++ {
		f.symptom(1000 + i*400)
	}
	serial := f.eng.DiagnoseAll()
	for _, workers := range []int{0, 1, 2, 8, 100} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Symptom != serial[i].Symptom {
				t.Fatalf("workers=%d: order diverged at %d", workers, i)
			}
			if par[i].Label() != serial[i].Label() {
				t.Errorf("workers=%d: diagnosis %d = %q, want %q",
					workers, i, par[i].Label(), serial[i].Label())
			}
		}
	}
}

// causeSig canonicalizes everything a diagnosis concluded — each cause's
// event, priority, evidence chain, and the exact instance IDs backing it,
// plus any warnings — so determinism checks catch divergence the
// Label-only comparison above would miss.
func causeSig(d Diagnosis) string {
	var b strings.Builder
	for _, c := range d.Causes {
		fmt.Fprintf(&b, "%s p%d chain=%s ids=", c.Event, c.Priority, strings.Join(c.Chain, "<-"))
		for _, in := range c.Instances {
			fmt.Fprintf(&b, "%d,", in.ID)
		}
		b.WriteString("; ")
	}
	if len(d.Warnings) > 0 {
		fmt.Fprintf(&b, "warnings=%v", d.Warnings)
	}
	return b.String()
}

// TestParallelDeterminism: on the testnet fixture, parallel diagnosis must
// reproduce the serial run exactly — same symptom order and, per symptom,
// the same causes down to evidence instance IDs — at several worker
// counts. This pins the engine's determinism contract now that workers
// share the instrumented store and expansion caches.
func TestParallelDeterminism(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CPUHighSpike, 2980, 30, locus.At(locus.Router, "chi-per1"))
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 60; i++ {
		f.symptom(800 + i*300)
	}
	serial := f.eng.DiagnoseAll()
	want := make([]string, len(serial))
	for i, d := range serial {
		want[i] = causeSig(d)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].Symptom.ID != serial[i].Symptom.ID {
				t.Fatalf("workers=%d: symptom order diverged at %d", workers, i)
			}
			if got := causeSig(par[i]); got != want[i] {
				t.Errorf("workers=%d diagnosis %d:\n got %s\nwant %s", workers, i, got, want[i])
			}
		}
	}
}

// TestSharedCacheDeterminism: diagnoses must be byte-identical — labels,
// causes down to instance IDs, and warnings — with the process-wide
// spatial cache enabled vs disabled, and across worker counts 1/2/8. The
// fixture records weight changes so the corpus spans several routing
// epochs and both cache layers (SPF memo, expansion cache) are exercised
// across epoch boundaries.
func TestSharedCacheDeterminism(t *testing.T) {
	f := newFixture(t)
	// Weight churn creating distinct routing epochs mid-corpus.
	for i, w := range []int{50, 5, 80, 5} {
		if err := f.net.OSPF.SetWeight(f.at(3000+i*3000), "chi-up1", w); err != nil {
			t.Fatal(err)
		}
	}
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CPUHighSpike, 2980, 30, locus.At(locus.Router, "chi-per1"))
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 60; i++ {
		f.symptom(800 + i*300)
	}
	f.eng.noShared = true
	base := f.eng.DiagnoseAll()
	f.eng.noShared = false
	want := make([]string, len(base))
	for i, d := range base {
		want[i] = causeSig(d)
	}
	for _, workers := range []int{1, 2, 8} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(base) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(base))
		}
		for i := range par {
			if par[i].Symptom.ID != base[i].Symptom.ID {
				t.Fatalf("workers=%d: symptom order diverged at %d", workers, i)
			}
			if got := causeSig(par[i]); got != want[i] {
				t.Errorf("cache on, workers=%d, diagnosis %d:\n got %s\nwant %s", workers, i, got, want[i])
			}
		}
	}
}

// TestSharedCacheInvalidatedByIngest: recording a routing change between
// diagnoses must invalidate the shared cache — the next diagnosis answers
// against the new network condition, identically to a cache-free engine.
func TestSharedCacheInvalidatedByIngest(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	sym := f.symptom(1000)
	before := f.eng.Diagnose(sym) // fills the cache at generation g
	// Cost out the customer attachment *at an earlier instant*: epoch
	// numbering shifts, so stale entries must not be reused.
	if err := f.net.OSPF.SetWeight(f.at(500), "custB-att", ospf.Infinity); err != nil {
		t.Fatal(err)
	}
	after := f.eng.Diagnose(sym)
	f.eng.noShared = true
	fresh := f.eng.Diagnose(sym)
	f.eng.noShared = false
	if causeSig(after) != causeSig(fresh) {
		t.Errorf("post-ingest diagnosis diverged from cache-free engine:\n got %s\nwant %s",
			causeSig(after), causeSig(fresh))
	}
	_ = before
}

func TestParallelEmptyStore(t *testing.T) {
	f := newFixture(t)
	if got := f.eng.DiagnoseAllParallel(4); len(got) != 0 {
		t.Errorf("empty parallel run = %v", got)
	}
}
