package engine

import (
	"fmt"
	"strings"
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
)

// TestParallelMatchesSerial: parallel diagnosis must produce identical
// verdicts in identical order.
func TestParallelMatchesSerial(t *testing.T) {
	f := newFixture(t)
	// A spread of symptoms with varying evidence.
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 40; i++ {
		f.symptom(1000 + i*400)
	}
	serial := f.eng.DiagnoseAll()
	for _, workers := range []int{0, 1, 2, 8, 100} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Symptom != serial[i].Symptom {
				t.Fatalf("workers=%d: order diverged at %d", workers, i)
			}
			if par[i].Label() != serial[i].Label() {
				t.Errorf("workers=%d: diagnosis %d = %q, want %q",
					workers, i, par[i].Label(), serial[i].Label())
			}
		}
	}
}

// causeSig canonicalizes everything a diagnosis concluded — each cause's
// event, priority, evidence chain, and the exact instance IDs backing it,
// plus any warnings — so determinism checks catch divergence the
// Label-only comparison above would miss.
func causeSig(d Diagnosis) string {
	var b strings.Builder
	for _, c := range d.Causes {
		fmt.Fprintf(&b, "%s p%d chain=%s ids=", c.Event, c.Priority, strings.Join(c.Chain, "<-"))
		for _, in := range c.Instances {
			fmt.Fprintf(&b, "%d,", in.ID)
		}
		b.WriteString("; ")
	}
	if len(d.Warnings) > 0 {
		fmt.Fprintf(&b, "warnings=%v", d.Warnings)
	}
	return b.String()
}

// TestParallelDeterminism: on the testnet fixture, parallel diagnosis must
// reproduce the serial run exactly — same symptom order and, per symptom,
// the same causes down to evidence instance IDs — at several worker
// counts. This pins the engine's determinism contract now that workers
// share the instrumented store and expansion caches.
func TestParallelDeterminism(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CPUHighSpike, 2980, 30, locus.At(locus.Router, "chi-per1"))
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 60; i++ {
		f.symptom(800 + i*300)
	}
	serial := f.eng.DiagnoseAll()
	want := make([]string, len(serial))
	for i, d := range serial {
		want[i] = causeSig(d)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].Symptom.ID != serial[i].Symptom.ID {
				t.Fatalf("workers=%d: symptom order diverged at %d", workers, i)
			}
			if got := causeSig(par[i]); got != want[i] {
				t.Errorf("workers=%d diagnosis %d:\n got %s\nwant %s", workers, i, got, want[i])
			}
		}
	}
}

func TestParallelEmptyStore(t *testing.T) {
	f := newFixture(t)
	if got := f.eng.DiagnoseAllParallel(4); len(got) != 0 {
		t.Errorf("empty parallel run = %v", got)
	}
}
