package engine

import (
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
)

// TestParallelMatchesSerial: parallel diagnosis must produce identical
// verdicts in identical order.
func TestParallelMatchesSerial(t *testing.T) {
	f := newFixture(t)
	// A spread of symptoms with varying evidence.
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.add(event.SONETRestoration, 8998, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.InterfaceFlap, 9000, 1, f.ifLoc)
	for i := 0; i < 40; i++ {
		f.symptom(1000 + i*400)
	}
	serial := f.eng.DiagnoseAll()
	for _, workers := range []int{0, 1, 2, 8, 100} {
		par := f.eng.DiagnoseAllParallel(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnoses, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Symptom != serial[i].Symptom {
				t.Fatalf("workers=%d: order diverged at %d", workers, i)
			}
			if par[i].Label() != serial[i].Label() {
				t.Errorf("workers=%d: diagnosis %d = %q, want %q",
					workers, i, par[i].Label(), serial[i].Label())
			}
		}
	}
}

func TestParallelEmptyStore(t *testing.T) {
	f := newFixture(t)
	if got := f.eng.DiagnoseAllParallel(4); len(got) != 0 {
		t.Errorf("empty parallel run = %v", got)
	}
}
