// Package engine implements the Generic RCA Engine (paper Fig. 1): for a
// symptom event instance it evaluates the application's diagnosis graph —
// querying the event store for diagnostic signatures within the temporal
// search window of each rule and testing the spatial join against the
// reconstructed network condition — and then applies rule-based reasoning
// to name the most likely root cause(s).
//
// Rule-based reasoning follows §II-D.1: after correlation, the symptom sits
// at the root of the diagnosis graph and joined diagnostic instances
// populate its nodes; the engine searches the evidence tree and identifies
// the leaf with the maximum edge priority as the root cause, reporting all
// tied leaves as joint root causes.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/store"
)

// Engine metrics (see internal/obs): the diagnosis-latency histogram is
// the repo's measurement of the paper's §III per-event latency claims
// (<5 s/event for BGP and PIM, <3 min/event for CDN); the expand-cache
// counters show how much of the spatial work the shared routing-epoch
// cache absorbs across all diagnoses (see spatialCache).
var (
	mDiagnoses       = obs.GetCounter("engine.diagnoses")
	mDiagnoseLatency = obs.GetHistogram("engine.diagnose.seconds", obs.LatencyBuckets)
	mRulesEvaluated  = obs.GetCounter("engine.rules.evaluated")
	mEvidenceNodes   = obs.GetCounter("engine.evidence.nodes")
	mWarnings        = obs.GetCounter("engine.warnings")
	mUnknowns        = obs.GetCounter("engine.unknown")
	mExpandHits      = obs.GetCounter("engine.expand.cache.hits")
	mExpandMisses    = obs.GetCounter("engine.expand.cache.misses")
)

// Unknown is the root-cause label for symptoms with no joined evidence.
const Unknown = "Unknown"

// Engine binds one diagnosis graph to a data store and network view. An
// Engine is cheap; build one per application.
type Engine struct {
	Store store.Store
	View  *netstate.View
	Graph *dgraph.Graph

	// MaxDepth bounds evidence-chain recursion as a backstop against
	// pathological graphs; the default (8) exceeds any graph in the paper.
	MaxDepth int

	// Tracing attaches an obs.Trace to every Diagnosis: one span per rule
	// evaluation carrying its store-query and spatial-join timings,
	// nested along the evidence chain. Off by default; the aggregate
	// latency histograms are recorded either way.
	Tracing bool

	// cache is the shared spatial-expansion cache, lazily created for the
	// view's current routing generations and shared by every Diagnose call
	// and every DiagnoseAllParallel worker on this engine.
	cache atomic.Pointer[spatialCache]

	// noShared disables the shared cache (every expansion recomputes);
	// used by tests to pin cache-on/cache-off determinism.
	noShared bool
}

// New returns an engine over the given substrates.
func New(st store.Store, view *netstate.View, g *dgraph.Graph) *Engine {
	return &Engine{Store: st, View: view, Graph: g, MaxDepth: 8}
}

// Node is one vertex of the correlated evidence tree. The root node holds
// the symptom instance; every other node holds a diagnostic instance that
// joined its parent under Rule.
type Node struct {
	Event    string
	Instance *event.Instance
	Rule     dgraph.Rule // edge from parent; zero value at the root
	Children []*Node
}

// Leaf reports whether no deeper evidence was found under the node.
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// Walk visits the tree pre-order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Cause is one diagnosed root cause.
type Cause struct {
	// Event names the root-cause signature.
	Event string
	// Instances lists the evidence instances supporting it.
	Instances []*event.Instance
	// Priority is the edge priority that selected it.
	Priority int
	// Chain is the event-name path from the symptom to the cause.
	Chain []string
}

// Diagnosis is the result of diagnosing one symptom instance.
type Diagnosis struct {
	Symptom *event.Instance
	// Root is the full evidence tree (the symptom at its root).
	Root *Node
	// Causes holds the maximum-priority leaf causes; empty means Unknown.
	Causes []Cause
	// Warnings records evidence lookups that could not be evaluated
	// (unmodeled locations, unroutable spans); they did not contribute
	// evidence but did not abort the diagnosis.
	Warnings []string
	// Elapsed is the wall-clock diagnosis time, the paper's per-event
	// latency metric.
	Elapsed time.Duration
	// Trace is the staged timeline of this diagnosis (per-rule store
	// query and spatial join timings); nil unless Engine.Tracing is on.
	Trace *obs.Trace
}

// Label returns the root-cause label: the joint cause events joined by
// " + ", or Unknown.
func (d Diagnosis) Label() string {
	if len(d.Causes) == 0 {
		return Unknown
	}
	s := d.Causes[0].Event
	for _, c := range d.Causes[1:] {
		s += " + " + c.Event
	}
	return s
}

// Primary returns the first (highest-priority, earliest-added) cause event
// name, or Unknown.
func (d Diagnosis) Primary() string {
	if len(d.Causes) == 0 {
		return Unknown
	}
	return d.Causes[0].Event
}

// spatialCache memoizes spatial expansions process-wide: CDN-style
// symptoms expand through the BGP and OSPF simulations, which dominate
// diagnosis latency (the paper's §III-B.2). Entries are keyed by
// (location, level, routing epoch) — a comparable struct, no string
// formatting on the hot path — so any two diagnoses (or workers of one
// DiagnoseAllParallel, or successive symptoms of a streaming processor)
// that expand the same location in the same epoch share one computation.
// The cache is striped across sharded RWMutexes to keep parallel workers
// off each other's locks, and the whole table is discarded when either
// routing change log grows (see Engine.spatial).
type spatialCache struct {
	ospfGen, bgpGen int64
	shards          [expandShards]expandShard
}

const expandShards = 32 // power of two; see expandKey.shard

// expandKey identifies one memoized expansion. Cached results are valid
// for every instant in the epoch, per netstate.Epoch's equivalence
// guarantee.
type expandKey struct {
	loc   locus.Location
	level locus.Type
	epoch netstate.Epoch
}

// shard hashes the key with FNV-1a, allocation-free.
func (k expandKey) shard() int {
	h := uint32(2166136261)
	h = (h ^ uint32(k.loc.Type)) * 16777619
	for i := 0; i < len(k.loc.A); i++ {
		h = (h ^ uint32(k.loc.A[i])) * 16777619
	}
	for i := 0; i < len(k.loc.B); i++ {
		h = (h ^ uint32(k.loc.B[i])) * 16777619
	}
	h = (h ^ uint32(k.level)) * 16777619
	h = (h ^ uint32(k.epoch.OSPF)) * 16777619
	h = (h ^ uint32(k.epoch.BGP)) * 16777619
	return int(h & (expandShards - 1))
}

type expandEntry struct {
	locs []locus.Location // shared; callers must not mutate
	err  error
}

type expandShard struct {
	mu sync.RWMutex
	m  map[expandKey]expandEntry
}

func newSpatialCache(ospfGen, bgpGen int64) *spatialCache {
	c := &spatialCache{ospfGen: ospfGen, bgpGen: bgpGen}
	for i := range c.shards {
		c.shards[i].m = map[expandKey]expandEntry{}
	}
	return c
}

// spatial returns the shared cache for the view's current routing
// generations, swapping in a fresh one if ingestion happened since it was
// filled. Called once per diagnosis: a SetWeight/Announce racing an
// in-flight diagnosis is out of scope (ingest-then-diagnose phasing), but
// ingest *between* diagnoses — the streaming case — invalidates cleanly.
func (e *Engine) spatial() *spatialCache {
	og, bg := e.View.Generations()
	for {
		c := e.cache.Load()
		if c != nil && c.ospfGen == og && c.bgpGen == bg {
			return c
		}
		nc := newSpatialCache(og, bg)
		if e.cache.CompareAndSwap(c, nc) {
			return nc
		}
	}
}

// expand answers one spatial expansion through the shared cache. The
// returned slice is shared across goroutines and must be treated as
// read-only (the engine only iterates it to build join sets).
func (e *Engine) expand(c *spatialCache, loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	if c == nil { // cache disabled (tests)
		return e.View.Expand(loc, level, t)
	}
	k := expandKey{loc: loc, level: level, epoch: e.View.EpochAt(t)}
	sh := &c.shards[k.shard()]
	sh.mu.RLock()
	ent, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		mExpandHits.Inc()
		return ent.locs, ent.err
	}
	mExpandMisses.Inc()
	locs, err := e.View.Expand(loc, level, t)
	sh.mu.Lock()
	sh.m[k] = expandEntry{locs: locs, err: err}
	sh.mu.Unlock()
	return locs, err
}

// Diagnose correlates and reasons about one symptom instance.
func (e *Engine) Diagnose(sym *event.Instance) Diagnosis {
	began := obs.Now()
	d := Diagnosis{Symptom: sym}
	var tr *obs.Trace
	if e.Tracing {
		tr = obs.StartTrace("diagnose " + sym.Name + " @ " + sym.Loc.String())
		d.Trace = tr
	}
	var cache *spatialCache
	if !e.noShared {
		cache = e.spatial()
	}
	root := &Node{Event: sym.Name, Instance: sym}
	visited := map[string]bool{sym.Name: true}
	e.correlate(root, visited, 0, cache, &d, tr)
	d.Root = root
	rs := tr.StartSpan("reason")
	d.Causes = e.reason(root)
	rs.End()
	d.Elapsed = obs.Since(began)
	tr.Finish()
	mDiagnoses.Inc()
	mDiagnoseLatency.ObserveDuration(d.Elapsed)
	if len(d.Causes) == 0 {
		mUnknowns.Inc()
	}
	if len(d.Warnings) > 0 {
		mWarnings.Add(int64(len(d.Warnings)))
	}
	return d
}

// correlate populates n.Children with joined diagnostic instances,
// recursively. With tracing on, each rule evaluation opens a span (so
// deeper evidence nests under the rule that admitted it) annotated with
// its expand, store-query, and spatial-join timings.
func (e *Engine) correlate(n *Node, visited map[string]bool, depth int, cache *spatialCache, d *Diagnosis, tr *obs.Trace) {
	if depth >= e.MaxDepth {
		return
	}
	for _, rule := range e.Graph.RulesFor(n.Event) {
		if visited[rule.Diagnostic] {
			continue
		}
		mRulesEvaluated.Inc()
		var sp *obs.Span
		if tr != nil {
			sp = tr.StartSpan("rule " + rule.Key())
		}
		in := n.Instance
		// The network condition is reconstructed at the symptom time —
		// and additionally at the start of the temporal search window.
		// Routing-change diagnostics (a costed-out link, a withdrawn
		// route) remove themselves from the service's path by the time
		// the symptom fires, so the elements supporting the service just
		// *before* the symptom matter as much as those at the symptom
		// instant.
		at := in.Start
		lo, hi := rule.Temporal.SearchWindow(in.Start, in.End)
		times := []time.Time{at}
		if !lo.Equal(at) {
			times = append(times, lo)
		}
		var stamp time.Time
		if sp != nil {
			stamp = obs.Now()
		}
		symSet := map[locus.Location]bool{}
		expanded := false
		for _, when := range times {
			locs, err := e.expand(cache, in.Loc, rule.JoinLevel, when)
			if err != nil {
				continue
			}
			expanded = true
			for _, l := range locs {
				symSet[l] = true
			}
		}
		if sp != nil {
			sp.AnnotateDuration("expand", obs.Since(stamp))
		}
		if !expanded {
			d.Warnings = append(d.Warnings,
				fmt.Sprintf("rule %q: symptom location %s unexpandable at %v", rule.Key(), in.Loc, at))
			sp.Annotate("outcome", "unexpandable")
			sp.End()
			continue
		}
		if len(symSet) == 0 {
			sp.Annotate("outcome", "no-footprint")
			sp.End()
			continue
		}
		if sp != nil {
			stamp = obs.Now()
		}
		cands := e.Store.Query(rule.Diagnostic, lo, hi)
		if sp != nil {
			sp.AnnotateDuration("query", obs.Since(stamp))
			sp.AnnotateInt("candidates", len(cands))
		}
		joined := 0
		var joinDur time.Duration
		for _, cand := range cands {
			if cand == in {
				continue
			}
			if sp != nil {
				stamp = obs.Now()
			}
			ok := rule.Temporal.Joined(in.Start, in.End, cand.Start, cand.End)
			if ok {
				candLocs, err := e.expand(cache, cand.Loc, rule.JoinLevel, at)
				if err != nil {
					d.Warnings = append(d.Warnings,
						fmt.Sprintf("rule %q: diagnostic location %s: %v", rule.Key(), cand.Loc, err))
					ok = false
				} else {
					ok = false
					for _, l := range candLocs {
						if symSet[l] {
							ok = true
							break
						}
					}
				}
			}
			if sp != nil {
				joinDur += obs.Since(stamp)
			}
			if !ok {
				continue
			}
			joined++
			mEvidenceNodes.Inc()
			child := &Node{Event: rule.Diagnostic, Instance: cand, Rule: rule}
			n.Children = append(n.Children, child)
			visited[rule.Diagnostic] = true
			e.correlate(child, visited, depth+1, cache, d, tr)
			delete(visited, rule.Diagnostic)
		}
		if sp != nil {
			sp.AnnotateDuration("join", joinDur)
			sp.AnnotateInt("joined", joined)
		}
		sp.End()
	}
}

// reason implements the rule-based reasoning of §II-D.1 over the evidence
// tree: collect every leaf evidence node, take the maximum incoming-edge
// priority, and return all events tied at that priority as joint causes.
func (e *Engine) reason(root *Node) []Cause {
	type leafInfo struct {
		node  *Node
		chain []string
	}
	var leaves []leafInfo
	var walk func(n *Node, chain []string)
	walk = func(n *Node, chain []string) {
		if n != root {
			chain = append(chain, n.Event)
			if n.Leaf() {
				leaves = append(leaves, leafInfo{node: n, chain: append([]string(nil), chain...)})
			}
		}
		for _, c := range n.Children {
			walk(c, chain)
		}
	}
	walk(root, nil)
	if len(leaves) == 0 {
		return nil
	}
	best := leaves[0].node.Rule.Priority
	for _, l := range leaves[1:] {
		if p := l.node.Rule.Priority; p > best {
			best = p
		}
	}
	// Group tied leaves by event name, preserving evidence instances.
	byEvent := map[string]*Cause{}
	var order []string
	for _, l := range leaves {
		if l.node.Rule.Priority != best {
			continue
		}
		c := byEvent[l.node.Event]
		if c == nil {
			c = &Cause{Event: l.node.Event, Priority: best, Chain: l.chain}
			byEvent[l.node.Event] = c
			order = append(order, l.node.Event)
		}
		dup := false
		for _, in := range c.Instances {
			if in == l.node.Instance {
				dup = true
				break
			}
		}
		if !dup {
			c.Instances = append(c.Instances, l.node.Instance)
		}
	}
	out := make([]Cause, 0, len(order))
	for _, name := range order {
		out = append(out, *byEvent[name])
	}
	return out
}

// DiagnoseAll diagnoses every stored instance of the graph's root symptom,
// ordered by start time.
func (e *Engine) DiagnoseAll() []Diagnosis {
	syms := e.Store.All(e.Graph.Root)
	out := make([]Diagnosis, 0, len(syms))
	for _, s := range syms {
		out = append(out, e.Diagnose(s))
	}
	return out
}

// DiagnoseAllParallel is DiagnoseAll fanned out over workers goroutines.
// Diagnosis is read-only over the store and network view, so symptoms are
// independent; results keep start-time order. workers < 1 selects
// GOMAXPROCS.
func (e *Engine) DiagnoseAllParallel(workers int) []Diagnosis {
	syms := e.Store.All(e.Graph.Root)
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(syms) {
		workers = len(syms)
	}
	if workers <= 1 {
		return e.DiagnoseAll()
	}
	out := make([]Diagnosis, len(syms))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(syms) {
					return
				}
				out[i] = e.Diagnose(syms[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Breakdown aggregates diagnoses into the Result Browser's root-cause
// breakdown: label → fraction of symptoms (the shape of Tables IV, VI,
// and VIII). Labels are the Primary cause per diagnosis.
func Breakdown(ds []Diagnosis) map[string]float64 {
	if len(ds) == 0 {
		return nil
	}
	counts := map[string]int{}
	for _, d := range ds {
		counts[d.Primary()]++
	}
	out := make(map[string]float64, len(counts))
	for k, v := range counts {
		out[k] = 100 * float64(v) / float64(len(ds))
	}
	return out
}

// SortedBreakdown renders a breakdown as (label, percent) rows, descending
// by percent then by label for determinism.
func SortedBreakdown(b map[string]float64) []struct {
	Label   string
	Percent float64
} {
	type row = struct {
		Label   string
		Percent float64
	}
	rows := make([]row, 0, len(b))
	for k, v := range b {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Percent != rows[j].Percent {
			return rows[i].Percent > rows[j].Percent
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}
