package engine

import (
	"strings"
	"testing"
	"time"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
	"grca/internal/temporal"
	"grca/internal/testnet"
)

// fixture assembles a miniature BGP-flap application over the testnet:
//
//	eBGP flap ← Interface flap (180) ← SONET restoration (190)
//	eBGP flap ← CPU high (spike) (20)
//	eBGP flap ← Customer reset session (200)
type fixture struct {
	net    *testnet.Net
	st     store.Store
	eng    *Engine
	adjLoc locus.Location // the eBGP session location on chi-per1
	ifLoc  locus.Location // its attachment interface
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := testnet.Build(t.Fatalf)
	ifc, ok := n.Topo.InterfaceByName("chi-per1", "to-custB")
	if !ok {
		t.Fatal("fixture interface missing")
	}
	g := dgraph.New(event.EBGPFlap)
	flapRule := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: dgraph.BGPHoldTimer, Right: dgraph.SyslogFuzz},
		Diagnostic: dgraph.Syslog5,
	}
	add := func(r dgraph.Rule) {
		t.Helper()
		if err := g.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(dgraph.Rule{Symptom: event.EBGPFlap, Diagnostic: event.InterfaceFlap,
		Temporal: flapRule, JoinLevel: locus.Interface, Priority: 180})
	add(dgraph.Rule{Symptom: event.EBGPFlap, Diagnostic: event.CPUHighSpike,
		Temporal: flapRule, JoinLevel: locus.Router, Priority: 20})
	add(dgraph.Rule{Symptom: event.EBGPFlap, Diagnostic: event.CustomerResetSession,
		Temporal:  temporal.Rule{Symptom: dgraph.Syslog5, Diagnostic: dgraph.Syslog5},
		JoinLevel: locus.RouterNeighbor, Priority: 200})
	restore := dgraph.Knowledge().MustFind(event.InterfaceFlap, event.SONETRestoration)
	restore.Priority = 190
	add(restore)

	st := store.New()
	return &fixture{
		net:    n,
		st:     st,
		eng:    New(st, n.View, g),
		adjLoc: locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String()),
		ifLoc:  locus.Between(locus.Interface, "chi-per1", "to-custB"),
	}
}

func (f *fixture) at(sec int) time.Time { return testnet.T0.Add(time.Duration(sec) * time.Second) }

func (f *fixture) add(name string, startSec, durSec int, loc locus.Location) *event.Instance {
	st := f.at(startSec)
	return f.st.Add(event.Instance{Name: name, Start: st, End: st.Add(time.Duration(durSec) * time.Second), Loc: loc})
}

func (f *fixture) symptom(sec int) *event.Instance {
	return f.add(event.EBGPFlap, sec, 60, f.adjLoc)
}

func TestDiagnoseUnknown(t *testing.T) {
	f := newFixture(t)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Label() != Unknown || d.Primary() != Unknown {
		t.Errorf("label = %q, want Unknown", d.Label())
	}
	if len(d.Root.Children) != 0 {
		t.Error("evidence found where none exists")
	}
}

func TestDiagnoseInterfaceFlap(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != event.InterfaceFlap {
		t.Fatalf("primary = %q, want interface flap (tree: %+v)", d.Primary(), d.Root)
	}
	if len(d.Causes) != 1 || d.Causes[0].Priority != 180 {
		t.Errorf("causes = %+v", d.Causes)
	}
}

func TestDiagnoseDeepestCauseWins(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.SONETRestoration, 899, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	f.add(event.CPUHighSpike, 950, 5, locus.At(locus.Router, "chi-per1"))
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != event.SONETRestoration {
		t.Fatalf("primary = %q, want SONET restoration", d.Primary())
	}
	// The chain must run symptom → interface flap → restoration.
	if got := d.Causes[0].Chain; len(got) != 2 || got[0] != event.InterfaceFlap || got[1] != event.SONETRestoration {
		t.Errorf("chain = %v", got)
	}
}

// TestPaperPriorityExample reproduces §III-A.1: a BGP flap joining both a
// high-CPU event and a layer flap is attributed to the flap because its
// edge priority (180) beats CPU's.
func TestPaperPriorityExample(t *testing.T) {
	f := newFixture(t)
	f.add(event.CPUHighSpike, 950, 5, locus.At(locus.Router, "chi-per1"))
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != event.InterfaceFlap {
		t.Fatalf("primary = %q, want interface flap over CPU", d.Primary())
	}
}

func TestSpatialDiscrimination(t *testing.T) {
	f := newFixture(t)
	// A flap on a *different* interface of the same router must not join
	// at Interface level.
	f.add(event.InterfaceFlap, 900, 1, locus.Between(locus.Interface, "chi-per1", "to-chi-cr1"))
	// CPU spike on a different router must not join at Router level.
	f.add(event.CPUHighSpike, 950, 5, locus.At(locus.Router, "nyc-per1"))
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != Unknown {
		t.Fatalf("primary = %q, want Unknown (evidence is spatially unrelated)", d.Primary())
	}
}

func TestTemporalDiscrimination(t *testing.T) {
	f := newFixture(t)
	// Interface flap 10 minutes before the symptom start: outside the
	// 180 s hold-timer window.
	f.add(event.InterfaceFlap, 400, 1, f.ifLoc)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != Unknown {
		t.Fatalf("primary = %q, want Unknown (evidence too old)", d.Primary())
	}
}

func TestJointCausesOnTie(t *testing.T) {
	f := newFixture(t)
	// Two distinct causes with equal priority: rig customer reset (200)
	// against a second rule also at 200.
	g := f.eng.Graph
	r := dgraph.Rule{Symptom: event.EBGPFlap, Diagnostic: event.RouterReboot,
		Temporal:  temporal.Rule{Symptom: dgraph.Syslog5, Diagnostic: dgraph.Syslog5},
		JoinLevel: locus.Router, Priority: 200}
	if err := g.Add(r); err != nil {
		t.Fatal(err)
	}
	f.add(event.CustomerResetSession, 1000, 1, f.adjLoc)
	f.add(event.RouterReboot, 1000, 30, locus.At(locus.Router, "chi-per1"))
	d := f.eng.Diagnose(f.symptom(1000))
	if len(d.Causes) != 2 {
		t.Fatalf("causes = %+v, want joint pair", d.Causes)
	}
	if !strings.Contains(d.Label(), " + ") {
		t.Errorf("label = %q, want joint label", d.Label())
	}
}

func TestEvidenceInstancesDeduplicated(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.InterfaceFlap, 950, 1, f.ifLoc)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Primary() != event.InterfaceFlap {
		t.Fatal(d.Primary())
	}
	if got := len(d.Causes[0].Instances); got != 2 {
		t.Errorf("evidence instances = %d, want 2 distinct flaps", got)
	}
}

func TestDiagnoseAllAndBreakdown(t *testing.T) {
	f := newFixture(t)
	// Three symptoms: one interface-flap-caused, one customer reset, one
	// unknown.
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.symptom(1000)
	f.add(event.CustomerResetSession, 5000, 1, f.adjLoc)
	f.symptom(5000)
	f.symptom(9000)

	ds := f.eng.DiagnoseAll()
	if len(ds) != 3 {
		t.Fatalf("diagnosed %d symptoms", len(ds))
	}
	b := Breakdown(ds)
	for _, want := range []string{event.InterfaceFlap, event.CustomerResetSession, Unknown} {
		if b[want] < 33 || b[want] > 34 {
			t.Errorf("breakdown[%q] = %.2f, want ≈33.3", want, b[want])
		}
	}
	rows := SortedBreakdown(b)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Percent < rows[i].Percent {
			t.Error("rows not sorted by percent")
		}
	}
	if Breakdown(nil) != nil {
		t.Error("empty breakdown should be nil")
	}
}

func TestWarningsOnUnmodeledLocation(t *testing.T) {
	f := newFixture(t)
	// A symptom whose neighbor element is neither a router nor an address
	// cannot be expanded; every rule should surface a warning rather than
	// silently joining nothing.
	sym := f.add(event.EBGPFlap, 1000, 60, locus.Between(locus.RouterNeighbor, "chi-per1", "garbage"))
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	d := f.eng.Diagnose(sym)
	if len(d.Warnings) == 0 {
		t.Error("expected a warning for unmodeled symptom location")
	}
	if d.Primary() != Unknown {
		t.Errorf("primary = %q", d.Primary())
	}

	// A diagnostic at an unmodeled location likewise warns when its rule
	// requires a real expansion (CPU joins at Router level; a ghost router
	// location is identity-expanded, so use the interface rule instead
	// with a diagnostic needing interface→interface identity — covered
	// above — and a symptom at a real location with a ghost diagnostic
	// needing lookup via the restoration rule's Layer1 level).
	f2 := newFixture(t)
	f2.add(event.InterfaceFlap, 900, 1, locus.Between(locus.Interface, "chi-per1", "ghost-if"))
	// The interface flap at a ghost interface joins nothing at Interface
	// level (identity on both sides, simply unequal) — no warning, no join.
	d2 := f2.eng.Diagnose(f2.symptom(1000))
	if d2.Primary() != Unknown {
		t.Errorf("ghost diagnostic joined: %q", d2.Primary())
	}
}

func TestElapsedRecorded(t *testing.T) {
	f := newFixture(t)
	d := f.eng.Diagnose(f.symptom(1000))
	if d.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestMaxDepthBounds(t *testing.T) {
	f := newFixture(t)
	f.eng.MaxDepth = 1
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.SONETRestoration, 899, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	d := f.eng.Diagnose(f.symptom(1000))
	// Depth 1 stops at the interface flap; restoration is never reached.
	if d.Primary() != event.InterfaceFlap {
		t.Errorf("primary with MaxDepth=1 = %q", d.Primary())
	}
}

func TestNodeWalk(t *testing.T) {
	f := newFixture(t)
	f.add(event.InterfaceFlap, 900, 1, f.ifLoc)
	f.add(event.SONETRestoration, 899, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
	d := f.eng.Diagnose(f.symptom(1000))
	var names []string
	d.Root.Walk(func(n *Node) { names = append(names, n.Event) })
	if len(names) != 3 || names[0] != event.EBGPFlap {
		t.Errorf("walk order = %v", names)
	}
}
