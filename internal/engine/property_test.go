package engine

import (
	"math/rand"
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
)

// TestDiagnosisInvariants seeds random evidence layouts and checks the
// structural invariants of every diagnosis:
//   - determinism: diagnosing the same symptom twice is identical;
//   - every reported cause names an event from the diagnosis graph;
//   - every cause's priority is the maximum over all leaf evidence;
//   - the evidence tree never contains the symptom instance itself.
func TestDiagnosisInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := newFixture(t)
		rng := rand.New(rand.NewSource(seed))
		graphEvents := map[string]bool{}
		for _, e := range f.eng.Graph.Events() {
			graphEvents[e] = true
		}
		// Random evidence soup around a few symptoms.
		for i := 0; i < 30; i++ {
			at := rng.Intn(20000)
			switch rng.Intn(4) {
			case 0:
				f.add(event.InterfaceFlap, at, 1+rng.Intn(60), f.ifLoc)
			case 1:
				f.add(event.CPUHighSpike, at, 5, locus.At(locus.Router, "chi-per1"))
			case 2:
				f.add(event.CustomerResetSession, at, 1, f.adjLoc)
			case 3:
				f.add(event.SONETRestoration, at, 2, locus.At(locus.Layer1Device, "sonet-chi-per1-a"))
			}
		}
		for i := 0; i < 5; i++ {
			sym := f.symptom(rng.Intn(20000))
			d1 := f.eng.Diagnose(sym)
			d2 := f.eng.Diagnose(sym)
			if d1.Label() != d2.Label() || len(d1.Causes) != len(d2.Causes) {
				t.Fatalf("seed %d: nondeterministic diagnosis: %q vs %q", seed, d1.Label(), d2.Label())
			}
			var maxLeaf int
			sawLeaf := false
			d1.Root.Walk(func(n *Node) {
				if n.Instance == sym && n != d1.Root {
					t.Fatalf("seed %d: symptom used as its own evidence", seed)
				}
				if n != d1.Root && n.Leaf() {
					sawLeaf = true
					if n.Rule.Priority > maxLeaf {
						maxLeaf = n.Rule.Priority
					}
				}
			})
			for _, c := range d1.Causes {
				if !graphEvents[c.Event] {
					t.Fatalf("seed %d: cause %q not in graph", seed, c.Event)
				}
				if !sawLeaf || c.Priority != maxLeaf {
					t.Fatalf("seed %d: cause priority %d, max leaf %d", seed, c.Priority, maxLeaf)
				}
			}
			if len(d1.Causes) == 0 && sawLeaf {
				t.Fatalf("seed %d: evidence present but diagnosis Unknown", seed)
			}
		}
	}
}
