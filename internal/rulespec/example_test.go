package rulespec_test

import (
	"fmt"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/rulespec"
)

// A complete miniature application: one application-specific event, one
// hand-written rule, one rule pulled from the Table II catalogue.
func ExampleParse() {
	spec, err := rulespec.Parse(`
app "mini" root "eBGP flap"

event "eBGP flap" {
    loctype  router:neighbor
    source   syslog
    desc     "session down and back up"
}

rule "eBGP flap" <- "Interface flap" {
    priority 180
    join     interface
    symptom  start/start expand 185s 10s
    diag     start/end   expand 5s 5s
}

use "Interface flap" <- "SONET restoration" priority 190
`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	lib, graph, err := spec.Build(event.Knowledge(), dgraph.Knowledge())
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	def, _ := lib.Get("eBGP flap")
	fmt.Printf("app %q root %q\n", spec.Name, graph.Root)
	fmt.Printf("event location type: %s\n", def.LocType)
	fmt.Printf("rules: %d\n", graph.Len())
	// Output:
	// app "mini" root "eBGP flap"
	// event location type: router:neighbor
	// rules: 2
}
