package rulespec

import (
	"strings"
	"testing"
	"time"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/temporal"
)

const bgpSpec = `
# BGP flap RCA application (paper Fig. 4 excerpt).
app "bgp-flap" root "eBGP flap"

event "eBGP flap" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP session goes down and comes up, BGP-5-ADJCHANGE msg."
}

event "Customer reset session" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP session is reset by the customer, BGP-5-NOTIFICATION msg."
}

redefine event "Link congestion alarm" {
    loctype  interface
    source   SNMP
    desc     ">= 90% link utilization in the SNMP traffic counter"
}

rule "eBGP flap" <- "Interface flap" {
    priority 180
    join     interface
    symptom  start/start expand 180s 5s
    diag     start/end   expand 5s 5s
    note     "BGP fast external fallover"
}

rule "eBGP flap" <- "Customer reset session" {
    priority 200
    join     router:neighbor
}

use "Interface flap" <- "SONET restoration" priority 190
`

func TestParseFullSpec(t *testing.T) {
	s, err := Parse(bgpSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "bgp-flap" || s.Root != "eBGP flap" {
		t.Errorf("header = %q root %q", s.Name, s.Root)
	}
	if len(s.Events) != 2 || len(s.Redefines) != 1 || len(s.Rules) != 2 || len(s.Uses) != 1 {
		t.Fatalf("counts: events=%d redefines=%d rules=%d uses=%d",
			len(s.Events), len(s.Redefines), len(s.Rules), len(s.Uses))
	}
	ev := s.Events[0]
	if ev.Name != "eBGP flap" || ev.LocType != locus.RouterNeighbor || ev.Source != "syslog" {
		t.Errorf("event = %+v", ev)
	}
	r := s.Rules[0]
	if r.Priority != 180 || r.JoinLevel != locus.Interface {
		t.Errorf("rule = %+v", r)
	}
	if r.Temporal.Symptom.Option != temporal.StartStart ||
		r.Temporal.Symptom.Left != 180*time.Second ||
		r.Temporal.Symptom.Right != 5*time.Second {
		t.Errorf("symptom expansion = %+v", r.Temporal.Symptom)
	}
	if r.Note != "BGP fast external fallover" {
		t.Errorf("note = %q", r.Note)
	}
	// Rule with defaulted temporal parameters.
	r2 := s.Rules[1]
	if r2.JoinLevel != locus.RouterNeighbor {
		t.Errorf("join level = %v", r2.JoinLevel)
	}
	if r2.Temporal.Symptom != dgraph.Syslog5 || r2.Temporal.Diagnostic != dgraph.Syslog5 {
		t.Errorf("default temporal = %+v", r2.Temporal)
	}
	u := s.Uses[0]
	if u.Symptom != "Interface flap" || u.Diagnostic != "SONET restoration" || u.Priority != 190 {
		t.Errorf("use = %+v", u)
	}
}

func TestBuild(t *testing.T) {
	s, err := Parse(bgpSpec)
	if err != nil {
		t.Fatal(err)
	}
	lib, g, err := s.Build(event.Knowledge(), dgraph.Knowledge())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.Get("eBGP flap"); !ok {
		t.Error("app event not defined")
	}
	d, _ := lib.Get(event.LinkCongestion)
	if !strings.Contains(d.Description, "90%") {
		t.Error("redefinition not applied")
	}
	if g.Root != "eBGP flap" || g.Len() != 3 {
		t.Errorf("graph root %q len %d", g.Root, g.Len())
	}
	rules := g.RulesFor("Interface flap")
	if len(rules) != 1 || rules[0].Priority != 190 {
		t.Errorf("catalogue pull = %+v", rules)
	}
	// The pulled rule keeps the catalogue's join level.
	if rules[0].JoinLevel != locus.Layer1Device {
		t.Errorf("pulled rule join level = %v", rules[0].JoinLevel)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown catalogue rule",
			`app "x" root "eBGP flap"
			 event "eBGP flap" { loctype router:neighbor }
			 use "eBGP flap" <- "no such event" priority 1`,
			"catalogue has no rule"},
		{"redefine unknown",
			`app "x" root "Interface flap"
			 redefine event "ghost" { loctype router }`,
			"redefine of unknown event"},
		{"duplicate event",
			`app "x" root "Interface flap"
			 event "Interface flap" { loctype interface }`,
			"already defined"},
		{"undefined rule event",
			`app "x" root "Interface flap"
			 rule "Interface flap" <- "ghost" { priority 1 join router }`,
			"undefined diagnostic"},
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", c.name, err)
			continue
		}
		_, _, err = s.Build(event.Knowledge(), dgraph.Knowledge())
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing app", `event "x" { loctype router }`},
		{"missing root", `app "x"`},
		{"unterminated string", `app "x`},
		{"newline in string", "app \"x\ny\" root \"r\""},
		{"bad escape", `app "x\q" root "r"`},
		{"unknown statement", `app "x" root "r" frobnicate`},
		{"unknown loctype", `app "x" root "r" event "e" { loctype quux }`},
		{"unknown event prop", `app "x" root "r" event "e" { color red }`},
		{"event missing loctype", `app "x" root "r" event "e" { source syslog }`},
		{"unknown rule prop", `app "x" root "r" rule "a" <- "b" { frob 1 }`},
		{"bad duration", `app "x" root "r" rule "a" <- "b" { symptom start/end expand zz 5s }`},
		{"numeric duration", `app "x" root "r" rule "a" <- "b" { symptom start/end expand 180 5s }`},
		{"bad option", `app "x" root "r" rule "a" <- "b" { symptom middle/middle expand 5s 5s }`},
		{"self-loop", `app "x" root "r" rule "a" <- "a" { priority 1 }`},
		{"missing arrow", `app "x" root "r" rule "a" "b" { priority 1 }`},
		{"stray char", `app "x" root "r" @`},
		{"lone <", `app "x" root "r" <`},
		{"use missing priority", `app "x" root "r" use "a" <- "b"`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestCommentsAndEscapes(t *testing.T) {
	src := `
# leading comment
app "x" root "r"   # trailing comment
event "r" {
    loctype router
    desc "tab\there \"quoted\" and backslash \\"
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := "tab\there \"quoted\" and backslash \\"; s.Events[0].Description != want {
		t.Errorf("desc = %q, want %q", s.Events[0].Description, want)
	}
}

func TestAppRuleOverridesCataloguePull(t *testing.T) {
	src := `
app "x" root "Line protocol flap"
use  "Line protocol flap" <- "Interface flap" priority 10
rule "Line protocol flap" <- "Interface flap" {
    priority 99
    join interface
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := s.Build(event.Knowledge(), dgraph.Knowledge())
	if err != nil {
		t.Fatal(err)
	}
	rules := g.RulesFor("Line protocol flap")
	if len(rules) != 1 || rules[0].Priority != 99 {
		t.Errorf("override failed: %+v", rules)
	}
}

// TestStatementLines pins the line provenance threaded through the parsed
// Spec: every statement must carry the 1-based source line its keyword
// appears on, with comments and blank lines accounted for exactly.
func TestStatementLines(t *testing.T) {
	src := `app "lines" root "eBGP flap"

# a comment that must advance the line counter
event "eBGP flap" {
    loctype router:neighbor
    source  syslog
}
redefine event "Interface flap" {
    loctype interface
    source  syslog
}

rule "eBGP flap" <- "Interface flap" {
    priority 10
    join     interface
}
use "Interface flap" <- "SONET restoration" priority 190
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Line != 1 {
		t.Errorf("app header line = %d, want 1", s.Line)
	}
	if got := s.Events[0].Line; got != 4 {
		t.Errorf("event line = %d, want 4", got)
	}
	if got := s.Redefines[0].Line; got != 8 {
		t.Errorf("redefine line = %d, want 8", got)
	}
	if got := s.Rules[0].Line; got != 13 {
		t.Errorf("rule line = %d, want 13", got)
	}
	if got := s.Uses[0].Line; got != 17 {
		t.Errorf("use line = %d, want 17", got)
	}
}

// TestErrorsCarryLines asserts that every Parse failure names a source
// line, including semantic (Validate) failures that used to surface bare.
func TestErrorsCarryLines(t *testing.T) {
	cases := []struct {
		src  string
		want string // required substring
	}{
		{"app \"x\" root \"r\"\nevent \"e\" {\n}", "line 2"},                               // missing loctype: Validate error
		{"app \"x\" root \"r\"\n\nrule \"a\" <- \"a\" { priority 1 }", "line 3"},           // self-loop: Validate error
		{"app \"x\" root \"r\"\nrule \"a\" <- \"b\" { priority x }", "line 2"},             // bad number token
		{"app \"x\" root \"r\"\n\n\nbogus \"s\"", "line 4"},                                // unknown statement
		{"app \"x\" root \"r\"\nevent \"e\" { loctype nowhere }", "line 2"},                // unknown location type
		{"app \"x\" root \"r\"\nrule \"a\" <- \"b\" { symptom start expand 1 }", "line 2"}, // bad expansion option
		{"app \"x\" root \"r\"\n\"unterminated", "line 2"},                                 // lexer error
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not name %q", c.src, err, c.want)
		}
	}
}
