package rulespec

import (
	"strings"
	"testing"
)

// FuzzParse asserts the specification parser never panics and that any
// successfully parsed specification carries its declared header fields.
func FuzzParse(f *testing.F) {
	f.Add(`app "x" root "r"`)
	f.Add(bgpSpec)
	f.Add(`app "x" root "r" event "e" { loctype router source syslog desc "d" }`)
	f.Add(`app "x" root "r" rule "a" <- "b" { priority 1 join router symptom start/start expand 180s 5s }`)
	f.Add(`app "x" root "r" use "a" <- "b" priority 3`)
	f.Add("app \"x\" root \"r\" # comment\n<-{}\"")
	f.Add(`app "x" root "r" event "e" { desc "\t\n\\\"" loctype router }`)
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		if spec.Name == "" && spec.Root == "" && !strings.Contains(src, `""`) {
			t.Errorf("parsed spec with empty header from %q", src)
		}
		for _, r := range spec.Rules {
			if r.Symptom == "" || r.Diagnostic == "" || !r.JoinLevel.Valid() {
				t.Errorf("invalid rule survived parsing: %+v", r)
			}
		}
		for _, e := range spec.Events {
			if e.Validate() != nil {
				t.Errorf("invalid event survived parsing: %+v", e)
			}
		}
	})
}
