package rulespec

import (
	"regexp"
	"strings"
	"testing"
)

// errLine matches the "line N" provenance every Parse error must carry.
var errLine = regexp.MustCompile(`line [0-9]+`)

// FuzzParse asserts the specification parser never panics, that any
// successfully parsed specification carries its declared header fields,
// and that every parse error names the source line it occurred on.
func FuzzParse(f *testing.F) {
	f.Add(`app "x" root "r"`)
	f.Add(bgpSpec)
	f.Add(`app "x" root "r" event "e" { loctype router source syslog desc "d" }`)
	f.Add(`app "x" root "r" rule "a" <- "b" { priority 1 join router symptom start/start expand 180s 5s }`)
	f.Add(`app "x" root "r" use "a" <- "b" priority 3`)
	f.Add("app \"x\" root \"r\" # comment\n<-{}\"")
	f.Add(`app "x" root "r" event "e" { desc "\t\n\\\"" loctype router }`)
	// Inputs that historically surfaced errors without line provenance:
	// semantic (Validate) failures after a syntactically valid statement.
	f.Add("app \"x\" root \"r\"\nevent \"e\" {\n}")                    // missing loctype
	f.Add("app \"x\" root \"r\"\nrule \"a\" <- \"a\" { priority 1 }")  // self-loop
	f.Add("app \"x\" root \"r\"\nredefine event \"e\" { desc \"d\" }") // invalid redefine
	// Line-accounting stress: comments, CRLF, negative durations, and
	// statements whose diagnostics must name the right line.
	f.Add("app \"x\" root \"r\"\r\n# c\r\nrule \"a\" <- \"b\" {\r\n    priority 1\r\n}")
	f.Add("app \"x\" root \"r\"\n\n\n\"unterminated")
	f.Add("app \"x\" root \"r\"\nrule \"a\" <- \"b\" { symptom start/start expand -10s -10s }")
	f.Add("app \"x\" root \"r\"\nevent \"e\" { loctype router } event \"e\" { loctype router }")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			if !errLine.MatchString(err.Error()) {
				t.Errorf("parse error without line provenance: %v (input %q)", err, src)
			}
			return
		}
		if spec.Name == "" && spec.Root == "" && !strings.Contains(src, `""`) {
			t.Errorf("parsed spec with empty header from %q", src)
		}
		for _, r := range spec.Rules {
			if r.Symptom == "" || r.Diagnostic == "" || !r.JoinLevel.Valid() {
				t.Errorf("invalid rule survived parsing: %+v", r)
			}
			if r.Line < 1 {
				t.Errorf("rule without line provenance: %+v", r)
			}
		}
		for _, e := range spec.Events {
			if e.Validate() != nil {
				t.Errorf("invalid event survived parsing: %+v", e)
			}
			if e.Line < 1 {
				t.Errorf("event without line provenance: %+v", e)
			}
		}
		for _, u := range spec.Uses {
			if u.Line < 1 {
				t.Errorf("use without line provenance: %+v", u)
			}
		}
	})
}
