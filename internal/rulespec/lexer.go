// Package rulespec implements G-RCA's rule specification language — the
// "simple yet flexible" configuration format (paper §I, §II-C) with which
// operators customize the platform into new RCA applications without
// programming: it declares application-specific events, redefines
// Knowledge Library events, writes application-specific diagnosis rules,
// and pulls catalogue rules in with one line.
//
// Grammar (line comments start with '#'; newlines are insignificant):
//
//	spec      = app { stmt } .
//	app       = "app" STRING "root" STRING .
//	stmt      = eventDecl | redefine | ruleDecl | useDecl .
//	eventDecl = "event" STRING "{" { eventProp } "}" .
//	redefine  = "redefine" eventDecl .
//	eventProp = "loctype" IDENT | "source" (IDENT|STRING) | "desc" STRING .
//	ruleDecl  = "rule" STRING "<-" STRING "{" { ruleProp } "}" .
//	ruleProp  = "priority" NUMBER | "join" IDENT
//	          | "symptom" expansion | "diag" expansion
//	          | "note" STRING .
//	expansion = IDENT "expand" DURATION DURATION .   # IDENT: start/end etc.
//	useDecl   = "use" STRING "<-" STRING "priority" NUMBER .
package rulespec

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokString
	tokIdent
	tokNumber
	tokLBrace
	tokRBrace
	tokArrow
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokString:
		return "string"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokArrow:
		return "'<-'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// identRune reports whether r may appear in an identifier. Identifiers are
// permissive so location types ("router:neighbor"), expanding options
// ("start/start"), and durations ("180s", "5m30s") all lex as single
// tokens.
func identRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		strings.ContainsRune(":/._-", r)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", line: l.line}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", line: l.line}, nil
	case c == '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{kind: tokArrow, text: "<-", line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
	case c == '"':
		return l.lexString()
	}
	start := l.pos
	for l.pos < len(l.src) && identRune(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos == start {
		return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if isNumber(text) {
		kind = tokNumber
	}
	return token{kind: kind, text: text, line: l.line}, nil
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '-' {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func (l *lexer) lexString() (token, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, fmt.Errorf("line %d: unterminated escape", line)
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, fmt.Errorf("line %d: unknown escape \\%c", line, e)
			}
			l.pos++
		case '\n':
			return token{}, fmt.Errorf("line %d: newline in string literal", line)
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, fmt.Errorf("line %d: unterminated string", line)
}
