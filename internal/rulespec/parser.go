package rulespec

import (
	"fmt"
	"strconv"
	"time"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/temporal"
)

// Use is a reference pulling a rule from the diagnosis-rule catalogue with
// an application-specific priority.
type Use struct {
	Symptom    string
	Diagnostic string
	Priority   int
	Line       int
}

// Event is one event (or redefine) statement: the definition plus the
// source line of its keyword, so downstream diagnostics (grca vet) can
// point back into the spec text.
type Event struct {
	event.Definition
	Line int
}

// Rule is one rule statement: the diagnosis rule plus its source line.
type Rule struct {
	dgraph.Rule
	Line int
}

// Spec is a parsed application specification. Every statement carries the
// source line it started on.
type Spec struct {
	// Name labels the application; Root names its symptom event.
	Name string
	Root string
	// Line is the source line of the "app" header.
	Line int
	// Events are application-specific event definitions; Redefines shadow
	// Knowledge Library entries.
	Events    []Event
	Redefines []Event
	// Rules are application-specific diagnosis rules.
	Rules []Rule
	// Uses pull catalogue rules into the graph.
	Uses []Use
}

type parser struct {
	lex *lexer
	tok token
}

// Parse parses a specification source text.
func Parse(src string) (*Spec, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseSpec()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("line %d: expected %v, found %v %q",
			p.tok.line, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) keyword(word string) error {
	if p.tok.kind != tokIdent || p.tok.text != word {
		return fmt.Errorf("line %d: expected %q, found %q", p.tok.line, word, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseSpec() (*Spec, error) {
	s := &Spec{Line: p.tok.line}
	if err := p.keyword("app"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	s.Name = name.text
	if err := p.keyword("root"); err != nil {
		return nil, err
	}
	root, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	s.Root = root.text

	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected a statement, found %q", p.tok.line, p.tok.text)
		}
		switch p.tok.text {
		case "event":
			d, err := p.parseEvent()
			if err != nil {
				return nil, err
			}
			s.Events = append(s.Events, d)
		case "redefine":
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, err := p.parseEvent()
			if err != nil {
				return nil, err
			}
			d.Line = line
			s.Redefines = append(s.Redefines, d)
		case "rule":
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			s.Rules = append(s.Rules, r)
		case "use":
			u, err := p.parseUse()
			if err != nil {
				return nil, err
			}
			s.Uses = append(s.Uses, u)
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", p.tok.line, p.tok.text)
		}
	}
	return s, nil
}

func (p *parser) parseEvent() (Event, error) {
	var d Event
	d.Line = p.tok.line
	if err := p.keyword("event"); err != nil {
		return d, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return d, err
	}
	d.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return d, err
	}
	for p.tok.kind != tokRBrace {
		prop, err := p.expect(tokIdent)
		if err != nil {
			return d, err
		}
		switch prop.text {
		case "loctype":
			t, err := p.expect(tokIdent)
			if err != nil {
				return d, err
			}
			lt, err := locus.ParseType(t.text)
			if err != nil {
				return d, fmt.Errorf("line %d: %v", t.line, err)
			}
			d.LocType = lt
		case "source":
			if p.tok.kind != tokIdent && p.tok.kind != tokString {
				return d, fmt.Errorf("line %d: source needs a value", p.tok.line)
			}
			d.Source = p.tok.text
			if err := p.advance(); err != nil {
				return d, err
			}
		case "desc":
			t, err := p.expect(tokString)
			if err != nil {
				return d, err
			}
			d.Description = t.text
		default:
			return d, fmt.Errorf("line %d: unknown event property %q", prop.line, prop.text)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return d, err
	}
	if err := d.Validate(); err != nil {
		return d, fmt.Errorf("line %d: %v", d.Line, err)
	}
	return d, nil
}

func (p *parser) parseRule() (Rule, error) {
	var r Rule
	r.Line = p.tok.line
	if err := p.keyword("rule"); err != nil {
		return r, err
	}
	sym, err := p.expect(tokString)
	if err != nil {
		return r, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return r, err
	}
	diag, err := p.expect(tokString)
	if err != nil {
		return r, err
	}
	r.Symptom, r.Diagnostic = sym.text, diag.text
	if _, err := p.expect(tokLBrace); err != nil {
		return r, err
	}
	// Defaults: syslog fuzz on both sides, join at interface level.
	r.Temporal = temporal.Rule{Symptom: dgraph.Syslog5, Diagnostic: dgraph.Syslog5}
	r.JoinLevel = locus.Interface
	for p.tok.kind != tokRBrace {
		prop, err := p.expect(tokIdent)
		if err != nil {
			return r, err
		}
		switch prop.text {
		case "priority":
			n, err := p.expect(tokNumber)
			if err != nil {
				return r, err
			}
			v, err := strconv.Atoi(n.text)
			if err != nil {
				return r, fmt.Errorf("line %d: bad priority %q", n.line, n.text)
			}
			r.Priority = v
		case "join":
			t, err := p.expect(tokIdent)
			if err != nil {
				return r, err
			}
			lt, err := locus.ParseType(t.text)
			if err != nil {
				return r, fmt.Errorf("line %d: %v", t.line, err)
			}
			r.JoinLevel = lt
		case "symptom":
			e, err := p.parseExpansion()
			if err != nil {
				return r, err
			}
			r.Temporal.Symptom = e
		case "diag":
			e, err := p.parseExpansion()
			if err != nil {
				return r, err
			}
			r.Temporal.Diagnostic = e
		case "note":
			t, err := p.expect(tokString)
			if err != nil {
				return r, err
			}
			r.Note = t.text
		default:
			return r, fmt.Errorf("line %d: unknown rule property %q", prop.line, prop.text)
		}
	}
	if err := p.advance(); err != nil {
		return r, err
	}
	if err := r.Validate(nil); err != nil {
		return r, fmt.Errorf("line %d: %v", r.Line, err)
	}
	return r, nil
}

func (p *parser) parseExpansion() (temporal.Expansion, error) {
	var e temporal.Expansion
	opt, err := p.expect(tokIdent)
	if err != nil {
		return e, err
	}
	o, err := temporal.ParseOption(opt.text)
	if err != nil {
		return e, fmt.Errorf("line %d: %v", opt.line, err)
	}
	e.Option = o
	if err := p.keyword("expand"); err != nil {
		return e, err
	}
	for i, dst := range []*time.Duration{&e.Left, &e.Right} {
		t := p.tok
		if t.kind != tokIdent && t.kind != tokNumber {
			return e, fmt.Errorf("line %d: expected duration, found %q", t.line, t.text)
		}
		d, err := time.ParseDuration(t.text)
		if err != nil {
			return e, fmt.Errorf("line %d: margin %d: %v", t.line, i+1, err)
		}
		*dst = d
		if err := p.advance(); err != nil {
			return e, err
		}
	}
	return e, nil
}

func (p *parser) parseUse() (Use, error) {
	var u Use
	u.Line = p.tok.line
	if err := p.keyword("use"); err != nil {
		return u, err
	}
	sym, err := p.expect(tokString)
	if err != nil {
		return u, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return u, err
	}
	diag, err := p.expect(tokString)
	if err != nil {
		return u, err
	}
	u.Symptom, u.Diagnostic = sym.text, diag.text
	if err := p.keyword("priority"); err != nil {
		return u, err
	}
	n, err := p.expect(tokNumber)
	if err != nil {
		return u, err
	}
	v, err := strconv.Atoi(n.text)
	if err != nil {
		return u, fmt.Errorf("line %d: bad priority %q", n.line, n.text)
	}
	u.Priority = v
	return u, nil
}

// Build materializes the specification into an application event library
// and diagnosis graph, resolving catalogue references against cat and
// layering event definitions over base. The returned library and graph are
// fully validated.
func (s *Spec) Build(base *event.Library, cat *dgraph.Catalogue) (*event.Library, *dgraph.Graph, error) {
	lib := base.Clone()
	for _, d := range s.Events {
		if err := lib.Define(d.Definition); err != nil {
			return nil, nil, fmt.Errorf("rulespec %q line %d: %v", s.Name, d.Line, err)
		}
	}
	for _, d := range s.Redefines {
		if _, ok := lib.Get(d.Name); !ok {
			return nil, nil, fmt.Errorf("rulespec %q line %d: redefine of unknown event %q", s.Name, d.Line, d.Name)
		}
		if err := lib.Redefine(d.Definition); err != nil {
			return nil, nil, fmt.Errorf("rulespec %q line %d: %v", s.Name, d.Line, err)
		}
	}
	g := dgraph.New(s.Root)
	for _, u := range s.Uses {
		r, ok := cat.Find(u.Symptom, u.Diagnostic)
		if !ok {
			return nil, nil, fmt.Errorf("rulespec %q line %d: catalogue has no rule %q <- %q",
				s.Name, u.Line, u.Symptom, u.Diagnostic)
		}
		r.Priority = u.Priority
		if err := g.Add(r); err != nil {
			return nil, nil, fmt.Errorf("rulespec %q: %v", s.Name, err)
		}
	}
	for _, r := range s.Rules {
		if err := g.Replace(r.Rule); err != nil { // app rules override catalogue pulls
			return nil, nil, fmt.Errorf("rulespec %q line %d: %v", s.Name, r.Line, err)
		}
	}
	if err := g.Validate(lib); err != nil {
		return nil, nil, fmt.Errorf("rulespec %q: %v", s.Name, err)
	}
	return lib, g, nil
}
