// Package realtime adds streaming root cause analysis to G-RCA — the
// paper's §VI future-work item "support real-time root cause
// applications". A Processor consumes the normalized event stream as the
// Data Collector produces it and diagnoses each symptom as soon as its
// evidence horizon has passed, rather than in an offline batch.
//
// An event becomes available at its end time (a flap is only a flap once
// the interface came back up). The processor holds each symptom for a
// grace period — long enough for every diagnostic its graph could join to
// have arrived — and then runs the standard engine against the data
// observed so far. Replaying a batch corpus through a Processor therefore
// yields byte-identical diagnoses to the offline run, which is the
// package's central test.
package realtime

import (
	"fmt"
	"time"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/store"
)

// Streaming-pipeline metrics: queue depth is the backpressure signal a
// real-time deployment watches, the grace-wait histogram shows how long
// symptoms sit before their evidence horizon passes (in event time), and
// rejects count the mis-ordered arrivals the paper's heterogeneous feeds
// would produce without collector-side normalization.
var (
	mObserved    = obs.GetCounter("realtime.observed")
	mRejected    = obs.GetCounter("realtime.rejected")
	mDiagnosed   = obs.GetCounter("realtime.diagnosed")
	mPending     = obs.GetGauge("realtime.pending")
	mPendingPeak = obs.GetGauge("realtime.pending.peak")
	mGraceWait   = obs.GetHistogram("realtime.grace.wait.seconds",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200, 21600, 86400})
)

// Processor is a streaming RCA pipeline for one application graph.
type Processor struct {
	// Grace is how long past a symptom's end diagnosis waits for trailing
	// evidence; see GraceFor.
	Grace time.Duration

	eng     *engine.Engine
	st      *store.Store
	pending []*event.Instance
	now     time.Time
}

// New builds a streaming processor. The store starts empty and fills from
// the observed stream; view supplies the (historically reconstructed)
// network condition exactly as in batch mode.
func New(view *netstate.View, g *dgraph.Graph, grace time.Duration) *Processor {
	st := store.New()
	return &Processor{Grace: grace, eng: engine.New(st, view, g), st: st}
}

// Store exposes the processor's event store (e.g. for trending).
func (p *Processor) Store() *store.Store { return p.st }

// Observe ingests one normalized event instance. Instances must arrive in
// nondecreasing order of availability (their End time), with a tolerance
// of Grace for cross-source skew; older instances are rejected so that a
// mis-ordered feed surfaces instead of silently degrading diagnoses.
//
// Observe returns the diagnoses of every pending symptom whose grace
// period elapsed as the stream clock advanced.
func (p *Processor) Observe(in event.Instance) ([]engine.Diagnosis, error) {
	avail := in.End
	if avail.Before(p.now.Add(-p.Grace)) {
		mRejected.Inc()
		return nil, fmt.Errorf("realtime: instance %v available at %v arrived after clock %v (beyond grace)",
			in.Name, avail, p.now)
	}
	mObserved.Inc()
	stored := p.st.Add(in)
	if avail.After(p.now) {
		p.now = avail
	}
	if in.Name == p.eng.Graph.Root {
		p.pending = append(p.pending, stored)
		mPendingPeak.SetMax(int64(len(p.pending)))
	}
	return p.drain(false), nil
}

// Flush diagnoses every still-pending symptom; call it when the stream
// ends.
func (p *Processor) Flush() []engine.Diagnosis { return p.drain(true) }

// Pending reports how many symptoms await their grace period.
func (p *Processor) Pending() int { return len(p.pending) }

func (p *Processor) drain(all bool) []engine.Diagnosis {
	var out []engine.Diagnosis
	kept := p.pending[:0]
	for _, sym := range p.pending {
		if all || !sym.End.Add(p.Grace).After(p.now) {
			// Grace wait in event time: how far the stream clock ran past
			// the symptom's end before it could be safely diagnosed.
			mGraceWait.ObserveDuration(p.now.Sub(sym.End))
			mDiagnosed.Inc()
			out = append(out, p.eng.Diagnose(sym))
		} else {
			kept = append(kept, sym)
		}
	}
	p.pending = kept
	mPending.Set(int64(len(p.pending)))
	return out
}

// GraceFor derives a safe grace period from a diagnosis graph: the
// maximum "future reach" of any evidence chain from the root — how long
// after a symptom ends the latest joinable diagnostic can still become
// available. maxEventDuration bounds how long an individual diagnostic
// event can run (e.g. the collector's flap window); it is added per chain
// level because a diagnostic's availability is its end time.
func GraceFor(g *dgraph.Graph, maxEventDuration time.Duration) time.Duration {
	memo := map[string]time.Duration{}
	var reach func(name string, onPath map[string]bool) time.Duration
	reach = func(name string, onPath map[string]bool) time.Duration {
		if r, ok := memo[name]; ok {
			return r
		}
		if onPath[name] {
			return 0 // defensive: validated graphs are acyclic
		}
		onPath[name] = true
		var best time.Duration
		for _, rule := range g.RulesFor(name) {
			r := rule.Temporal.Symptom.Right + rule.Temporal.Diagnostic.Left +
				maxEventDuration + reach(rule.Diagnostic, onPath)
			if r > best {
				best = r
			}
		}
		delete(onPath, name)
		memo[name] = best
		return best
	}
	return reach(g.Root, map[string]bool{})
}
