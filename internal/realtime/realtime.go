// Package realtime adds streaming root cause analysis to G-RCA — the
// paper's §VI future-work item "support real-time root cause
// applications". A Processor consumes the normalized event stream as the
// Data Collector produces it and diagnoses each symptom as soon as its
// evidence horizon has passed, rather than in an offline batch.
//
// An event becomes available at its end time (a flap is only a flap once
// the interface came back up). The processor holds each symptom for a
// grace period — long enough for every diagnostic its graph could join to
// have arrived — and then runs the standard engine against the data
// observed so far. Replaying a batch corpus through a Processor therefore
// yields byte-identical diagnoses to the offline run, which is the
// package's central test.
package realtime

import (
	"sync"
	"time"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/store"
)

// Streaming-pipeline metrics: queue depth is the backpressure signal a
// real-time deployment watches, the grace-wait histogram shows how long
// symptoms sit before their evidence horizon passes (in event time), late
// counts the arrivals past the grace window the paper's heterogeneous
// feeds would produce without collector-side normalization, and forced
// counts diagnoses emitted early because the pending queue hit its bound.
var (
	mObserved    = obs.GetCounter("realtime.observed")
	mLate        = obs.GetCounter("realtime.late")
	mDiagnosed   = obs.GetCounter("realtime.diagnosed")
	mForced      = obs.GetCounter("realtime.forced")
	mPending     = obs.GetGauge("realtime.pending")
	mPendingPeak = obs.GetGauge("realtime.pending.peak")
	mGraceWait   = obs.GetHistogram("realtime.grace.wait.seconds",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200, 21600, 86400})
)

// Processor is a streaming RCA pipeline for one application graph.
type Processor struct {
	// Grace is how long past a symptom's end diagnosis waits for trailing
	// evidence; see GraceFor.
	Grace time.Duration

	// MaxPending, when positive, bounds the pending-symptom queue: once
	// more than MaxPending symptoms await their grace period, the oldest
	// is diagnosed immediately with the evidence observed so far. This is
	// the backpressure valve for a feed storm (a line-card crash flapping
	// hundreds of sessions at once) — memory stays bounded and diagnoses
	// keep flowing, at the cost of possibly-incomplete evidence on the
	// force-drained symptoms. Zero means unbounded.
	MaxPending int

	// OnDiagnosis, when set, observes every diagnosis the processor
	// emits — from grace-elapsed drains, MaxPending force-drains, Flush,
	// and Close — on the goroutine driving the processor, before the
	// diagnosis is returned to the caller. The serving pipeline uses it
	// to fan emitted diagnoses out to the rollup aggregates and the SSE
	// stream. Set it before observing events.
	OnDiagnosis func(engine.Diagnosis)

	eng *engine.Engine
	st  store.Store
	// pmu guards pending (and closed) so PendingSymptoms can be read
	// from other goroutines (the HTTP result-browser handlers) while the
	// owning goroutine observes events. All other state is owned by the
	// driving goroutine.
	pmu     sync.Mutex
	pending []*event.Instance
	now     time.Time
	late    int
	forced  int
	closed  bool
}

// New builds a streaming processor. The store starts empty and fills from
// the observed stream; view supplies the (historically reconstructed)
// network condition exactly as in batch mode. The processor keeps one
// engine for its lifetime, so the engine's shared spatial cache carries
// across Observe calls: symptoms landing in an already-seen routing epoch
// reuse the expansions computed for earlier symptoms.
func New(view *netstate.View, g *dgraph.Graph, grace time.Duration) *Processor {
	st := store.New()
	return &Processor{Grace: grace, eng: engine.New(st, view, g), st: st}
}

// NewOnStore builds a streaming processor over an existing store that
// someone else fills — the serving pipeline, where the WAL-backed store
// is shared by ingest, diagnosis, and trending. Events reach the
// processor through ObserveStored after the owner has added them;
// calling Observe on such a processor would store them twice.
func NewOnStore(st store.Store, view *netstate.View, g *dgraph.Graph, grace time.Duration) *Processor {
	return &Processor{Grace: grace, eng: engine.New(st, view, g), st: st}
}

// Store exposes the processor's event store (e.g. for trending).
func (p *Processor) Store() store.Store { return p.st }

// Observe ingests one normalized event instance. Instances should arrive
// in nondecreasing order of availability (their End time), with a
// tolerance of Grace for cross-source skew. An instance older than that is
// still stored (trending and later symptoms must see it) but is flagged by
// the returned late marker and counted, because any symptom already
// diagnosed could not have used it — the delayed-feed failure mode a
// tier-1 collector lives with, surfaced instead of silently misjoined. A
// late root symptom is still diagnosed, immediately, since its grace
// period has already passed.
//
// Observe returns the diagnoses of every pending symptom whose grace
// period elapsed as the stream clock advanced.
func (p *Processor) Observe(in event.Instance) (ds []engine.Diagnosis, late bool) {
	return p.observe(p.st.Add(in))
}

// ObserveStored is Observe for an instance already added to the
// processor's (shared) store by its owner — the serving pipeline's
// applier. Same ordering contract and results as Observe.
func (p *Processor) ObserveStored(stored *event.Instance) (ds []engine.Diagnosis, late bool) {
	return p.observe(stored)
}

func (p *Processor) observe(stored *event.Instance) (ds []engine.Diagnosis, late bool) {
	if p.isClosed() {
		return nil, false
	}
	avail := stored.End
	if avail.Before(p.now.Add(-p.Grace)) {
		late = true
		p.late++
		mLate.Inc()
	}
	mObserved.Inc()
	if avail.After(p.now) {
		p.now = avail
	}
	if stored.Name == p.eng.Graph.Root {
		p.pmu.Lock()
		p.pending = append(p.pending, stored)
		mPendingPeak.SetMax(int64(len(p.pending)))
		p.pmu.Unlock()
	}
	ds = p.drain(false)
	// Backpressure: force-drain the oldest pending symptoms beyond the
	// queue bound.
	for {
		p.pmu.Lock()
		if p.MaxPending <= 0 || len(p.pending) <= p.MaxPending {
			p.pmu.Unlock()
			break
		}
		sym := p.pending[0]
		p.pending = p.pending[1:]
		mPending.Set(int64(len(p.pending)))
		p.pmu.Unlock()
		p.forced++
		mForced.Inc()
		mDiagnosed.Inc()
		ds = append(ds, p.emit(sym))
	}
	return ds, late
}

// emit diagnoses one symptom and fans the result out to OnDiagnosis.
func (p *Processor) emit(sym *event.Instance) engine.Diagnosis {
	d := p.eng.Diagnose(sym)
	if p.OnDiagnosis != nil {
		p.OnDiagnosis(d)
	}
	return d
}

// Flush diagnoses every still-pending symptom; call it when the stream
// ends.
func (p *Processor) Flush() []engine.Diagnosis { return p.drain(true) }

// Close retires the processor: every pending symptom is force-drained —
// diagnosed now with whatever evidence arrived, counted as forced since
// its grace period was cut short — the pending gauge is zeroed, and all
// further observations are ignored. Used on serving-pipeline shutdown,
// where the stream stops mid-grace rather than ending.
func (p *Processor) Close() []engine.Diagnosis {
	if p.isClosed() {
		return nil
	}
	n := p.Pending()
	ds := p.drain(true)
	p.forced += n
	mForced.Add(int64(n))
	p.pmu.Lock()
	p.closed = true
	p.pmu.Unlock()
	return ds
}

func (p *Processor) isClosed() bool {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.closed
}

// Pending reports how many symptoms await their grace period.
func (p *Processor) Pending() int {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return len(p.pending)
}

// PendingSymptoms returns a snapshot of the symptoms awaiting their
// grace period, in observation order. Safe to call from any goroutine;
// the result browser merges these (diagnosed on demand) into the rollup
// aggregates so a breakdown always covers every stored symptom.
func (p *Processor) PendingSymptoms() []*event.Instance {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return append([]*event.Instance(nil), p.pending...)
}

// Late reports how many observed instances arrived beyond the grace
// window (and so were invisible to any already-emitted diagnosis).
func (p *Processor) Late() int { return p.late }

// Forced reports how many pending symptoms were diagnosed early because
// the queue exceeded MaxPending.
func (p *Processor) Forced() int { return p.forced }

func (p *Processor) drain(all bool) []engine.Diagnosis {
	// Partition under the lock, diagnose outside it: Diagnose hits the
	// store and the spatial cache and must not serialize against
	// PendingSymptoms readers.
	var ripe []*event.Instance
	p.pmu.Lock()
	kept := p.pending[:0]
	for _, sym := range p.pending {
		if all || !sym.End.Add(p.Grace).After(p.now) {
			ripe = append(ripe, sym)
		} else {
			kept = append(kept, sym)
		}
	}
	for i := len(kept); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = kept
	mPending.Set(int64(len(p.pending)))
	p.pmu.Unlock()
	var out []engine.Diagnosis
	for _, sym := range ripe {
		// Grace wait in event time: how far the stream clock ran past
		// the symptom's end before it could be safely diagnosed.
		mGraceWait.ObserveDuration(p.now.Sub(sym.End))
		mDiagnosed.Inc()
		out = append(out, p.emit(sym))
	}
	return out
}

// GraceFor derives a safe grace period from a diagnosis graph: the
// maximum "future reach" of any evidence chain from the root — how long
// after a symptom ends the latest joinable diagnostic can still become
// available. maxEventDuration bounds how long an individual diagnostic
// event can run (e.g. the collector's flap window); it is added per chain
// level because a diagnostic's availability is its end time.
func GraceFor(g *dgraph.Graph, maxEventDuration time.Duration) time.Duration {
	memo := map[string]time.Duration{}
	var reach func(name string, onPath map[string]bool) time.Duration
	reach = func(name string, onPath map[string]bool) time.Duration {
		if r, ok := memo[name]; ok {
			return r
		}
		if onPath[name] {
			return 0 // defensive: validated graphs are acyclic
		}
		onPath[name] = true
		var best time.Duration
		for _, rule := range g.RulesFor(name) {
			r := rule.Temporal.Symptom.Right + rule.Temporal.Diagnostic.Left +
				maxEventDuration + reach(rule.Diagnostic, onPath)
			if r > best {
				best = r
			}
		}
		delete(onPath, name)
		memo[name] = best
		return best
	}
	return reach(g.Root, map[string]bool{})
}
