package realtime

import (
	"sort"
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
	"grca/internal/temporal"
	"grca/internal/testnet"
)

// TestReplayMatchesBatch streams a full simulated corpus through the
// processor and verifies every diagnosis matches the offline batch run —
// the package's defining property.
func TestReplayMatchesBatch(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 51, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 5 * 24 * time.Hour, BGPFlapIncidents: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := bgpflap.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Batch reference.
	batchEng := engine.New(sys.Store, sys.View, g)
	batch := map[string]string{} // symptom key → primary
	for _, diag := range batchEng.DiagnoseAll() {
		batch[diagKey(diag.Symptom)] = diag.Primary()
	}

	// Stream: all events ordered by availability (end time).
	var stream []event.Instance
	for _, name := range sys.Store.Names() {
		for _, in := range sys.Store.All(name) {
			stream = append(stream, *in)
		}
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].End.Before(stream[j].End) })

	grace := GraceFor(g, 15*time.Minute)
	if grace <= 0 {
		t.Fatalf("grace = %v", grace)
	}
	p := New(sys.View, g, grace)
	var live []engine.Diagnosis
	for _, in := range stream {
		out, err := p.Observe(in)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, out...)
	}
	live = append(live, p.Flush()...)
	if p.Pending() != 0 {
		t.Errorf("pending after flush = %d", p.Pending())
	}

	if len(live) != len(batch) {
		t.Fatalf("live diagnoses = %d, batch = %d", len(live), len(batch))
	}
	for _, diag := range live {
		want, ok := batch[diagKey(diag.Symptom)]
		if !ok {
			t.Fatalf("live symptom %v missing from batch", diag.Symptom)
		}
		if diag.Primary() != want {
			t.Errorf("symptom %v: live %q vs batch %q", diag.Symptom, diag.Primary(), want)
		}
	}
}

func diagKey(in *event.Instance) string {
	return in.Loc.Key() + "|" + in.Start.Format(time.RFC3339Nano)
}

// miniGraph is a one-rule graph for focused streaming tests.
func miniGraph(t *testing.T) *dgraph.Graph {
	t.Helper()
	g := dgraph.New(event.EBGPFlap)
	err := g.Add(dgraph.Rule{
		Symptom: event.EBGPFlap, Diagnostic: event.InterfaceFlap,
		Temporal: temporal.Rule{
			Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: 185 * time.Second, Right: 10 * time.Second},
			Diagnostic: dgraph.Syslog5,
		},
		JoinLevel: locus.Interface, Priority: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSymptomHeldForGrace(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	g := miniGraph(t)
	p := New(n.View, g, 10*time.Minute)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())

	// Symptom arrives first; no diagnosis yet.
	out, err := p.Observe(event.Instance{Name: event.EBGPFlap,
		Start: t0.Add(time.Hour), End: t0.Add(time.Hour + time.Minute), Loc: adj})
	if err != nil || len(out) != 0 || p.Pending() != 1 {
		t.Fatalf("premature diagnosis: %v %v pending=%d", out, err, p.Pending())
	}
	// Late evidence within grace still counts: the interface flap event
	// materializes three minutes after the symptom ended.
	out, err = p.Observe(event.Instance{Name: event.InterfaceFlap,
		Start: t0.Add(time.Hour - 2*time.Minute), End: t0.Add(time.Hour + 4*time.Minute),
		Loc: locus.Between(locus.Interface, "chi-per1", "to-custB")})
	if err != nil || len(out) != 0 {
		t.Fatalf("diagnosed before grace: %v %v", out, err)
	}
	// A later unrelated event advances the clock past the grace period.
	out, err = p.Observe(event.Instance{Name: "tick",
		Start: t0.Add(2 * time.Hour), End: t0.Add(2 * time.Hour),
		Loc: locus.At(locus.Router, "nyc-cr1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("diagnoses after grace = %d", len(out))
	}
	if out[0].Primary() != event.InterfaceFlap {
		t.Errorf("primary = %q, want interface flap (late evidence must be seen)", out[0].Primary())
	}
}

func TestOutOfOrderRejectedBeyondGrace(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Minute)
	t0 := testnet.T0
	if _, err := p.Observe(event.Instance{Name: "x", Start: t0.Add(time.Hour), End: t0.Add(time.Hour),
		Loc: locus.At(locus.Router, "nyc-cr1")}); err != nil {
		t.Fatal(err)
	}
	// 30 s of skew is within the 1-minute grace.
	if _, err := p.Observe(event.Instance{Name: "x", Start: t0.Add(time.Hour - 30*time.Second),
		End: t0.Add(time.Hour - 30*time.Second), Loc: locus.At(locus.Router, "nyc-cr1")}); err != nil {
		t.Errorf("skew within grace rejected: %v", err)
	}
	// Ten minutes back is a broken feed.
	if _, err := p.Observe(event.Instance{Name: "x", Start: t0.Add(50 * time.Minute),
		End: t0.Add(50 * time.Minute), Loc: locus.At(locus.Router, "nyc-cr1")}); err == nil {
		t.Error("gross reordering accepted")
	}
}

func TestGraceFor(t *testing.T) {
	_, g, err := bgpflap.Build()
	if err != nil {
		t.Fatal(err)
	}
	maxDur := 10 * time.Minute
	grace := GraceFor(g, maxDur)
	// The deepest chain is eBGP flap → HTE/line-proto → interface flap →
	// layer-1 restoration: three levels, so at least 3×maxDur.
	if grace < 3*maxDur {
		t.Errorf("grace = %v, want ≥ %v", grace, 3*maxDur)
	}
	// A graph with no rules needs no grace.
	if got := GraceFor(dgraph.New("root"), maxDur); got != 0 {
		t.Errorf("empty graph grace = %v", got)
	}
}
