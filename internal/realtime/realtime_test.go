package realtime

import (
	"sort"
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/simnet"
	"grca/internal/store"
	"grca/internal/temporal"
	"grca/internal/testnet"
)

// TestReplayMatchesBatch streams a full simulated corpus through the
// processor and verifies every diagnosis matches the offline batch run —
// the package's defining property.
func TestReplayMatchesBatch(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 51, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 5 * 24 * time.Hour, BGPFlapIncidents: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := bgpflap.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Batch reference.
	batchEng := engine.New(sys.Store, sys.View, g)
	batch := map[string]string{} // symptom key → primary
	for _, diag := range batchEng.DiagnoseAll() {
		batch[diagKey(diag.Symptom)] = diag.Primary()
	}

	// Stream: all events ordered by availability (end time).
	var stream []event.Instance
	for _, name := range sys.Store.Names() {
		for _, in := range sys.Store.All(name) {
			stream = append(stream, *in)
		}
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].End.Before(stream[j].End) })

	grace := GraceFor(g, 15*time.Minute)
	if grace <= 0 {
		t.Fatalf("grace = %v", grace)
	}
	p := New(sys.View, g, grace)
	var live []engine.Diagnosis
	for _, in := range stream {
		out, late := p.Observe(in)
		if late {
			t.Fatalf("instance %v marked late in an availability-ordered replay", in)
		}
		live = append(live, out...)
	}
	live = append(live, p.Flush()...)
	if p.Pending() != 0 {
		t.Errorf("pending after flush = %d", p.Pending())
	}

	if len(live) != len(batch) {
		t.Fatalf("live diagnoses = %d, batch = %d", len(live), len(batch))
	}
	for _, diag := range live {
		want, ok := batch[diagKey(diag.Symptom)]
		if !ok {
			t.Fatalf("live symptom %v missing from batch", diag.Symptom)
		}
		if diag.Primary() != want {
			t.Errorf("symptom %v: live %q vs batch %q", diag.Symptom, diag.Primary(), want)
		}
	}
}

func diagKey(in *event.Instance) string {
	return in.Loc.Key() + "|" + in.Start.Format(time.RFC3339Nano)
}

// miniGraph is a one-rule graph for focused streaming tests.
func miniGraph(t *testing.T) *dgraph.Graph {
	t.Helper()
	g := dgraph.New(event.EBGPFlap)
	err := g.Add(dgraph.Rule{
		Symptom: event.EBGPFlap, Diagnostic: event.InterfaceFlap,
		Temporal: temporal.Rule{
			Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: 185 * time.Second, Right: 10 * time.Second},
			Diagnostic: dgraph.Syslog5,
		},
		JoinLevel: locus.Interface, Priority: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSymptomHeldForGrace(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	g := miniGraph(t)
	p := New(n.View, g, 10*time.Minute)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())

	// Symptom arrives first; no diagnosis yet.
	out, late := p.Observe(event.Instance{Name: event.EBGPFlap,
		Start: t0.Add(time.Hour), End: t0.Add(time.Hour + time.Minute), Loc: adj})
	if late || len(out) != 0 || p.Pending() != 1 {
		t.Fatalf("premature diagnosis: %v late=%v pending=%d", out, late, p.Pending())
	}
	// Trailing evidence within grace still counts: the interface flap event
	// materializes three minutes after the symptom ended.
	out, late = p.Observe(event.Instance{Name: event.InterfaceFlap,
		Start: t0.Add(time.Hour - 2*time.Minute), End: t0.Add(time.Hour + 4*time.Minute),
		Loc: locus.Between(locus.Interface, "chi-per1", "to-custB")})
	if late || len(out) != 0 {
		t.Fatalf("diagnosed before grace: %v late=%v", out, late)
	}
	// A later unrelated event advances the clock past the grace period.
	out, _ = p.Observe(event.Instance{Name: "tick",
		Start: t0.Add(2 * time.Hour), End: t0.Add(2 * time.Hour),
		Loc: locus.At(locus.Router, "nyc-cr1")})
	if len(out) != 1 {
		t.Fatalf("diagnoses after grace = %d", len(out))
	}
	if out[0].Primary() != event.InterfaceFlap {
		t.Errorf("primary = %q, want interface flap (late evidence must be seen)", out[0].Primary())
	}
}

// TestLateMarkedBeyondGrace pins the late-arrival boundary: an instance
// available exactly Grace before the stream clock is on time; one
// nanosecond older is late — stored and counted, never silently misjoined
// into already-emitted diagnoses.
func TestLateMarkedBeyondGrace(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Minute)
	t0 := testnet.T0
	loc := locus.At(locus.Router, "nyc-cr1")
	obs := func(at time.Time) bool {
		_, late := p.Observe(event.Instance{Name: "x", Start: at, End: at, Loc: loc})
		return late
	}
	if obs(t0.Add(time.Hour)) {
		t.Fatal("clock-advancing instance marked late")
	}
	// 30 s of skew is within the 1-minute grace.
	if obs(t0.Add(time.Hour - 30*time.Second)) {
		t.Error("skew within grace marked late")
	}
	// Exactly Grace back is still on time (boundary is inclusive).
	if obs(t0.Add(time.Hour - time.Minute)) {
		t.Error("instance exactly at the grace boundary marked late")
	}
	// A nanosecond beyond the boundary is late.
	if !obs(t0.Add(time.Hour - time.Minute - time.Nanosecond)) {
		t.Error("instance beyond grace not marked late")
	}
	// Ten minutes back is a broken feed — late, but stored all the same.
	if !obs(t0.Add(50 * time.Minute)) {
		t.Error("gross reordering not marked late")
	}
	if p.Late() != 2 {
		t.Errorf("Late() = %d, want 2", p.Late())
	}
	if got := p.Store().Count("x"); got != 5 {
		t.Errorf("store count = %d, want 5 (late instances must still be stored)", got)
	}
}

// TestLateSymptomStillDiagnosed: a root symptom arriving beyond grace is
// past its own evidence horizon, so it is diagnosed immediately instead of
// being dropped.
func TestLateSymptomStillDiagnosed(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Minute)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())

	// Evidence and clock-advancing tick arrive first.
	p.Observe(event.Instance{Name: event.InterfaceFlap,
		Start: t0.Add(time.Hour - 2*time.Minute), End: t0.Add(time.Hour),
		Loc: locus.Between(locus.Interface, "chi-per1", "to-custB")})
	p.Observe(event.Instance{Name: "tick", Start: t0.Add(3 * time.Hour), End: t0.Add(3 * time.Hour),
		Loc: locus.At(locus.Router, "nyc-cr1")})

	// The symptom itself shows up hours later (delayed feed).
	out, late := p.Observe(event.Instance{Name: event.EBGPFlap,
		Start: t0.Add(time.Hour), End: t0.Add(time.Hour + time.Minute), Loc: adj})
	if !late {
		t.Fatal("delayed symptom not marked late")
	}
	if len(out) != 1 {
		t.Fatalf("late symptom diagnoses = %d, want immediate diagnosis", len(out))
	}
	if out[0].Primary() != event.InterfaceFlap {
		t.Errorf("late symptom primary = %q, want interface flap", out[0].Primary())
	}
}

// TestBackpressureBound: with MaxPending set, a symptom storm forces the
// oldest pending symptoms out early instead of growing the queue.
func TestBackpressureBound(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Hour)
	p.MaxPending = 2
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())

	var got []engine.Diagnosis
	for i := 0; i < 5; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		out, _ := p.Observe(event.Instance{Name: event.EBGPFlap, Start: at, End: at, Loc: adj})
		got = append(got, out...)
	}
	if p.Pending() != 2 {
		t.Errorf("Pending = %d, want bound 2", p.Pending())
	}
	if p.Forced() != 3 || len(got) != 3 {
		t.Errorf("Forced = %d, drained = %d, want 3 forced diagnoses", p.Forced(), len(got))
	}
	// Forced diagnoses pop oldest-first.
	if !got[0].Symptom.Start.Equal(t0) {
		t.Errorf("first forced symptom at %v, want oldest", got[0].Symptom.Start)
	}
	rest := p.Flush()
	if len(rest) != 2 || p.Pending() != 0 {
		t.Errorf("flush = %d pending = %d", len(rest), p.Pending())
	}
}

func TestGraceFor(t *testing.T) {
	_, g, err := bgpflap.Build()
	if err != nil {
		t.Fatal(err)
	}
	maxDur := 10 * time.Minute
	grace := GraceFor(g, maxDur)
	// The deepest chain is eBGP flap → HTE/line-proto → interface flap →
	// layer-1 restoration: three levels, so at least 3×maxDur.
	if grace < 3*maxDur {
		t.Errorf("grace = %v, want ≥ %v", grace, 3*maxDur)
	}
	// A graph with no rules needs no grace.
	if got := GraceFor(dgraph.New("root"), maxDur); got != 0 {
		t.Errorf("empty graph grace = %v", got)
	}
}

// TestStreamingSharesSpatialCache: the processor holds one engine for its
// lifetime, so the shared routing-epoch expansion cache must accumulate
// across Observe calls — the second symptom's expansions hit entries the
// first symptom filled.
func TestStreamingSharesSpatialCache(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Minute)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())
	hits := obs.GetCounter("engine.expand.cache.hits")
	misses := obs.GetCounter("engine.expand.cache.misses")

	sym := func(at time.Duration) event.Instance {
		return event.Instance{Name: event.EBGPFlap, Start: t0.Add(at), End: t0.Add(at + time.Minute), Loc: adj}
	}
	if out, _ := p.Observe(sym(time.Hour)); len(out) != 0 {
		t.Fatalf("premature diagnosis: %v", out)
	}
	// Advance the clock to flush the first symptom, note the miss level,
	// then stream a second symptom in the same routing epoch.
	if out := p.Flush(); len(out) != 1 {
		t.Fatalf("first flush = %d diagnoses", len(out))
	}
	h0, m0 := hits.Value(), misses.Value()
	if out, _ := p.Observe(sym(2 * time.Hour)); len(out) != 0 {
		t.Fatalf("premature diagnosis: %v", out)
	}
	if out := p.Flush(); len(out) != 1 {
		t.Fatalf("second flush = %d diagnoses", len(out))
	}
	if misses.Value() != m0 {
		t.Errorf("second symptom recomputed %d expansions; want all served from the shared cache",
			misses.Value()-m0)
	}
	if hits.Value() == h0 {
		t.Error("second symptom recorded no cache hits; shared cache not reused across Observe calls")
	}
}

// TestObserveStoredSharedStore: a processor over a shared store fed via
// ObserveStored behaves exactly like one owning its store fed via
// Observe — the serving pipeline's configuration.
func TestObserveStoredSharedStore(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	g := miniGraph(t)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())
	stream := []event.Instance{
		{Name: event.InterfaceFlap, Start: t0.Add(time.Hour - 2*time.Minute),
			End: t0.Add(time.Hour + 4*time.Minute), Loc: locus.Between(locus.Interface, "chi-per1", "to-custB")},
		{Name: event.EBGPFlap, Start: t0.Add(time.Hour), End: t0.Add(time.Hour + time.Minute), Loc: adj},
		{Name: "tick", Start: t0.Add(2 * time.Hour), End: t0.Add(2 * time.Hour),
			Loc: locus.At(locus.Router, "nyc-cr1")},
	}

	own := New(n.View, g, 10*time.Minute)
	var want []engine.Diagnosis
	for _, in := range stream {
		out, _ := own.Observe(in)
		want = append(want, out...)
	}

	st := store.New()
	shared := NewOnStore(st, n.View, g, 10*time.Minute)
	if shared.Store() != st {
		t.Fatal("NewOnStore did not adopt the given store")
	}
	var got []engine.Diagnosis
	for _, in := range stream {
		out, _ := shared.ObserveStored(st.Add(in))
		got = append(got, out...)
	}
	if st.Len() != len(stream) {
		t.Fatalf("shared store holds %d events, want %d (ObserveStored must not re-add)", st.Len(), len(stream))
	}
	if len(got) != len(want) || len(got) != 1 {
		t.Fatalf("shared-store diagnoses = %d, own-store = %d, want 1", len(got), len(want))
	}
	if got[0].Primary() != want[0].Primary() {
		t.Errorf("primary diverged: shared %q vs own %q", got[0].Primary(), want[0].Primary())
	}
}

// TestCloseForceDrains: Close diagnoses everything still pending, counts
// it as forced (the grace period was cut short), and turns further
// observations into no-ops.
func TestCloseForceDrains(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	p := New(n.View, miniGraph(t), time.Hour)
	t0 := testnet.T0
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		p.Observe(event.Instance{Name: event.EBGPFlap, Start: at, End: at, Loc: adj})
	}
	if p.Pending() != 3 {
		t.Fatalf("pending = %d", p.Pending())
	}
	ds := p.Close()
	if len(ds) != 3 || p.Pending() != 0 {
		t.Fatalf("Close drained %d, pending %d, want 3 and 0", len(ds), p.Pending())
	}
	if p.Forced() != 3 {
		t.Errorf("Forced = %d, want 3 (close cut their grace short)", p.Forced())
	}
	if again := p.Close(); again != nil {
		t.Errorf("second Close returned %d diagnoses", len(again))
	}
	out, late := p.Observe(event.Instance{Name: event.EBGPFlap,
		Start: t0.Add(time.Hour), End: t0.Add(time.Hour), Loc: adj})
	if out != nil || late || p.Pending() != 0 {
		t.Error("observation after Close was not ignored")
	}
}
