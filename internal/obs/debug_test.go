package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebug(t *testing.T) {
	GetCounter("test.debug.counter").Add(7)
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var payload struct {
		GRCA Snapshot `json:"grca"`
	}
	if err := json.Unmarshal([]byte(vars), &payload); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if payload.GRCA.Counters["test.debug.counter"] != 7 {
		t.Errorf("grca expvar missing counter: %v", payload.GRCA.Counters)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", idx)
	}
}
