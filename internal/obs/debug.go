package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the opt-in debug HTTP server on addr (e.g.
// "localhost:6060" or "127.0.0.1:0" for an ephemeral port) and returns
// the bound address. It serves:
//
//	/debug/vars   — expvar JSON, including the "grca" metrics snapshot
//	/debug/pprof/ — the standard net/http/pprof profile index
//
// The handlers are mounted on a private mux rather than
// http.DefaultServeMux, so importing this package never exposes profiling
// endpoints unless ServeDebug is called. The server runs until the
// process exits; the returned shutdown function closes it early (tests).
func ServeDebug(addr string) (boundAddr string, shutdown func(), err error) {
	mux := DebugMux()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goroutinelife lifecycle lives in net/http: the returned shutdown closes the server
	go srv.Serve(ln) //nolint:errcheck // closed via shutdown or process exit
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// DebugMux returns a mux serving the debug handlers above, for embedding
// under a prefix of an existing server instead of a dedicated listener —
// `grca serve` mounts it on the main address when -metrics-addr is
// unset.
func DebugMux() *http.ServeMux {
	Publish()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
