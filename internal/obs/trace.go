package obs

import (
	"fmt"
	"io"
	"time"
)

// A Trace records the staged timeline of one operation — in G-RCA, one
// diagnosis: which rules were evaluated, how long each store query and
// spatial join took, how the evidence recursion nested. Spans nest via a
// stack owned by the trace, so a single goroutine drives one trace (the
// engine's per-symptom invariant).
//
// A nil *Trace is a valid no-op recorder: every method on a nil trace or
// nil span does nothing and performs no clock reads, so instrumented code
// calls StartSpan/End unconditionally and pays nothing when tracing is
// off.
type Trace struct {
	root  *Span
	stack []*Span
}

// A Span is one named stage with a start time, a duration (set by End),
// ordered key=value attributes, and nested children.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Children []*Span

	t *Trace
}

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// StartTrace opens a trace whose root span has the given name.
func StartTrace(name string) *Trace {
	t := &Trace{}
	root := &Span{Name: name, Start: time.Now(), t: t}
	t.root = root
	t.stack = []*Span{root}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child of the innermost open span. Close it with End.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name, Start: time.Now(), t: t}
	top := t.stack[len(t.stack)-1]
	top.Children = append(top.Children, sp)
	t.stack = append(t.stack, sp)
	return sp
}

// Finish closes the root span (and any spans left open beneath it).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	for len(t.stack) > 0 {
		t.stack[len(t.stack)-1].End()
	}
}

// End closes the span, recording its duration. Children left open are
// closed first; ending a span not on the stack (already closed) only
// refreshes its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	t := s.t
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] != s {
			continue
		}
		// Close any children left open above s.
		for j := len(t.stack) - 1; j > i; j-- {
			open := t.stack[j]
			open.Duration = time.Since(open.Start)
		}
		t.stack = t.stack[:i]
		return
	}
}

// Annotate appends a key=value attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// AnnotateInt appends an integer attribute.
func (s *Span) AnnotateInt(key string, value int) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: fmt.Sprint(value)})
}

// AnnotateDuration appends a rounded duration attribute.
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: roundDur(d).String()})
}

// SpanJSON is the wire form of one span: durations as strings (rounded
// exactly as the text renderer rounds them), attributes as an ordered
// key=value list, children nested. It is the structured counterpart of
// Write, used by the Result Browser's drill-down endpoint to ship a
// diagnosis timeline to the dashboard.
type SpanJSON struct {
	Name     string     `json:"name"`
	Duration string     `json:"duration"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

// JSON exports the trace's span tree in wire form; nil for a nil or
// unstarted trace.
func (t *Trace) JSON() *SpanJSON {
	if t == nil || t.root == nil {
		return nil
	}
	out := t.root.json()
	return &out
}

func (s *Span) json() SpanJSON {
	out := SpanJSON{
		Name:     s.Name,
		Duration: roundDur(s.Duration).String(),
		Attrs:    s.Attrs,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.json())
	}
	return out
}

// Write renders the trace as an indented span tree:
//
//	diagnose eBGP flap                                 1.2ms
//	  rule eBGP flap <- Interface flap                 455µs  query=12µs join=30µs candidates=3 joined=1
//	    rule Interface flap <- SONET restoration       110µs  ...
//	  reason                                           4µs
func (t *Trace) Write(w io.Writer) error {
	if t == nil || t.root == nil {
		return nil
	}
	return writeSpan(w, t.root, 0)
}

func writeSpan(w io.Writer, s *Span, depth int) error {
	line := fmt.Sprintf("%*s%s", depth*2, "", s.Name)
	if _, err := fmt.Fprintf(w, "%-56s %9s", line, roundDur(s.Duration)); err != nil {
		return err
	}
	for _, a := range s.Attrs {
		if _, err := fmt.Fprintf(w, "  %s=%s", a.Key, a.Value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
