// Package obs is the self-monitoring substrate of the G-RCA pipeline. The
// paper's operational claims — §III-A.2's <5 s/event BGP diagnosis
// latency, §III-B.2's route-computation-dominated CDN latency, a Data
// Collector normalizing hundreds of heterogeneous feeds in real time —
// are all statements about pipeline health, and an industrial RCA system
// must watch its own ingestion and inference stages to make them.
//
// The package provides a metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with percentile snapshots) plus a lightweight
// per-diagnosis trace recorder (trace.go). Everything is standard library
// only and cheap enough to leave on: the hot-path cost of a counter is one
// atomic add, of a histogram observation a binary search over ~20 bounds
// plus three atomic adds. SetEnabled(false) turns every mutation into a
// no-op so the instrumentation overhead itself can be benchmarked.
//
// Metrics live in a process-wide Default registry under dotted names
// ("engine.diagnose.seconds", "collector.malformed"); Publish exposes the
// registry as the expvar variable "grca", and ServeDebug (debug.go) serves
// expvar plus net/http/pprof on an opt-in address.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every metric mutation; see SetEnabled.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the whole metrics layer on or off. Reads (snapshots)
// keep working while disabled; mutations become no-ops. The off switch
// exists so benchmarks can measure the instrumentation overhead.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric mutations are currently recorded.
func Enabled() bool { return enabled.Load() }

// ---------------------------------------------------------------------
// Counter and gauge
// ---------------------------------------------------------------------

// A Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is an instantaneous atomic value (queue depth, window size).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if enabled.Load() {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if enabled.Load() {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value (a
// high-water mark).
func (g *Gauge) SetMax(n int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// LatencyBuckets are the default histogram bounds for durations in
// seconds: 1–2.5–5 steps per decade from 1 µs to 10 s, bracketing every
// latency the paper quotes (µs-scale in-memory joins up to the <5 s/event
// and <3 min/event diagnosis bounds).
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// SizeBuckets are the default bounds for counts (query result sizes,
// queue depths).
var SizeBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// A Histogram accumulates float64 observations into fixed buckets. The
// i-th bucket counts observations ≤ Bounds[i]; one extra overflow bucket
// counts the rest. All mutation is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits, starts +Inf
	maxBits atomic.Uint64 // float64 bits, starts -Inf
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	updateFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	updateFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// updateFloat CAS-updates a float64-bits cell when better(current) holds;
// the ±Inf initial values lose to any real observation.
func updateFloat(bits *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Bucket is one histogram bucket in a snapshot. Upper is the inclusive
// upper bound; the overflow bucket has Upper = +Inf.
type Bucket struct {
	Upper float64 `json:"upper"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the overflow bucket's +Inf bound as the string
// "+Inf": encoding/json rejects infinite floats, which would otherwise
// abort every snapshot export once a single sample lands past the last
// bound.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Upper, 1) {
		return []byte(fmt.Sprintf(`{"upper":"+Inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"upper":%g,"count":%d}`, b.Upper, b.Count)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON, accepting either a float
// bound or the string "+Inf" — the round-trip a remote stats client
// (`grca stats -addr`) performs on a snapshot fetched over HTTP.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var wire struct {
		Upper any   `json:"upper"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	b.Count = wire.Count
	switch v := wire.Upper.(type) {
	case float64:
		b.Upper = v
	case string:
		if v != "+Inf" {
			return fmt.Errorf("obs: bucket bound %q is neither a number nor +Inf", v)
		}
		b.Upper = math.Inf(1)
	default:
		return fmt.Errorf("obs: bucket bound %T is neither a number nor +Inf", wire.Upper)
	}
	return nil
}

// HistogramSnapshot is a consistent-enough copy of a histogram: counts
// are read without a global lock, so a snapshot taken mid-observation may
// be off by the in-flight sample; percentiles are estimated by linear
// interpolation within the owning bucket and clamped to [Min, Max].
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot captures the histogram's current state with percentile
// estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s.Buckets = make([]Bucket, 0, len(counts))
	for i, c := range counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: upper, Count: c})
		}
	}
	s.P50 = h.quantile(counts, total, 0.50, s.Min, s.Max)
	s.P95 = h.quantile(counts, total, 0.95, s.Min, s.Max)
	s.P99 = h.quantile(counts, total, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the q-quantile from bucket counts: walk to the
// bucket containing the q·total-th observation and interpolate linearly
// across it.
func (h *Histogram) quantile(counts []int64, total int64, q, min, max float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lower := min
		if i > 0 {
			lower = math.Max(min, h.bounds[i-1])
		}
		upper := max
		if i < len(h.bounds) {
			upper = math.Min(max, h.bounds[i])
		}
		if upper < lower {
			upper = lower
		}
		frac := (rank - float64(prev)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return max
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

// A Registry holds named metrics. Lookup is get-or-create, so callers
// keep package-level metric variables without registration ceremony.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry. Most code uses Default.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline instruments.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored — first creation wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GetCounter/GetGauge/GetHistogram are the package-level shorthands over
// Default used by the instrumented packages.

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns the named histogram from the default registry.
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// Snapshot is a point-in-time copy of a whole registry, ready for JSON
// (the expvar export) or text rendering.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

var publishOnce sync.Once

// Publish exposes the default registry as the expvar variable "grca"
// (visible at /debug/vars alongside the runtime's memstats). Safe to call
// repeatedly; only the first call registers.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("grca", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}

// WriteText renders a snapshot as the aligned text block used by
// `grca stats` and the SQM report's pipeline-health section. Histograms
// whose name ends in ".seconds" are printed as durations.
func WriteText(w io.Writer, s Snapshot) error {
	names := func(m map[string]int64) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintf(w, "counters:\n"); err != nil {
			return err
		}
		for _, n := range names(s.Counters) {
			fmt.Fprintf(w, "  %-44s %12d\n", n, s.Counters[n])
		}
	}
	if ratios := CacheRatios(s); len(ratios) > 0 {
		fmt.Fprintf(w, "cache hit ratios:\n")
		for _, r := range ratios {
			fmt.Fprintf(w, "  %-44s %11.1f%%  (%d/%d)\n",
				r.Name, 100*r.Ratio, r.Hits, r.Hits+r.Misses)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, n := range names(s.Gauges) {
			fmt.Fprintf(w, "  %-44s %12d\n", n, s.Gauges[n])
		}
	}
	if len(s.Histograms) > 0 {
		hnames := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			hnames = append(hnames, k)
		}
		sort.Strings(hnames)
		fmt.Fprintf(w, "histograms:%34s %10s %10s %10s %10s %10s\n",
			"count", "mean", "p50", "p95", "p99", "max")
		for _, n := range hnames {
			h := s.Histograms[n]
			fv := func(v float64) string {
				if strings.HasSuffix(n, ".seconds") {
					return formatSeconds(v)
				}
				return fmt.Sprintf("%.4g", v)
			}
			fmt.Fprintf(w, "  %-42s %8d %10s %10s %10s %10s %10s\n",
				n, h.Count, fv(h.Mean()), fv(h.P50), fv(h.P95), fv(h.P99), fv(h.Max))
		}
	}
	return nil
}

// CacheRatio is one derived cache effectiveness figure: Name is the
// counter prefix (e.g. "engine.expand.cache"), Ratio is hits/(hits+misses).
type CacheRatio struct {
	Name         string
	Hits, Misses int64
	Ratio        float64
}

// CacheRatios derives hit ratios from every counter pair named
// "<layer>.cache.hits" / "<layer>.cache.misses" in the snapshot, sorted by
// name. Pairs that never fired are omitted.
func CacheRatios(s Snapshot) []CacheRatio {
	var out []CacheRatio
	for name, hits := range s.Counters {
		base, found := strings.CutSuffix(name, ".hits")
		if !found || !strings.HasSuffix(base, ".cache") {
			continue
		}
		misses, ok := s.Counters[base+".misses"]
		if !ok || hits+misses == 0 {
			continue
		}
		out = append(out, CacheRatio{
			Name: base, Hits: hits, Misses: misses,
			Ratio: float64(hits) / float64(hits+misses),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// formatSeconds renders a seconds value as a rounded time.Duration.
func formatSeconds(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
