package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if same := r.Counter("x"); same != c {
		t.Error("lookup did not return the same counter")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	g.SetMax(10)
	g.SetMax(7) // lower: must not move
	if got := g.Value(); got != 10 {
		t.Errorf("high-water = %d, want 10", got)
	}
}

// TestHistogramBuckets pins the bucket assignment rule: bucket i counts
// observations ≤ Bounds[i]; the overflow bucket catches the rest.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 1e9} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 1} // (≤1)×2, (≤10)×2, (≤100)×2, overflow×1
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Min != 0.5 || s.Max != 1e9 {
		t.Errorf("min/max = %v/%v, want 0.5/1e9", s.Min, s.Max)
	}
}

// TestHistogramZeroObservation: a genuine 0 must register as the minimum,
// not be mistaken for an uninitialized cell.
func TestHistogramZeroObservation(t *testing.T) {
	h := newHistogram(SizeBuckets)
	h.Observe(0)
	h.Observe(5)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 5 {
		t.Errorf("min/max = %v/%v, want 0/5", s.Min, s.Max)
	}
}

// TestHistogramPercentiles checks the interpolated quantiles on a uniform
// fill: 1..1000 observed into decade buckets must put p50 near 500 and
// p99 near 990, and every estimate must stay within the observed range.
func TestHistogramPercentiles(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100, 1000, 10000})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
		}
	}
	// 890 of 1000 samples land in the (100, 1000] bucket; interpolation
	// is linear within it, so the estimates are coarse but ordered.
	within("p50", s.P50, 100, 600)
	within("p95", s.P95, 800, 1000)
	within("p99", s.P99, 900, 1000)
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("percentiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max || s.P50 < s.Min {
		t.Error("percentiles escaped the observed range")
	}
	if want := 1000 * 1001 / 2; math.Abs(s.Sum-float64(want)) > 1e-6 {
		t.Errorf("sum = %v, want %d", s.Sum, want)
	}
}

// TestHistogramConcurrent exercises the lock-free mutation paths under
// -race: total count and sum must be exact, min/max must bracket.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i+1) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	n := float64(workers * per)
	if want := n * (n + 1) / 2 * 1e-6; math.Abs(s.Sum-want) > want*1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	if s.Min != 1e-6 || math.Abs(s.Max-n*1e-6) > 1e-12 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	s := newHistogram(LatencyBuckets).Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c, h, g := r.Counter("c"), r.Histogram("h", LatencyBuckets), r.Gauge("g")
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	g.Set(9)
	SetEnabled(true)
	if c.Value() != 0 || h.Snapshot().Count != 0 || g.Value() != 0 {
		t.Error("disabled metrics still recorded")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled counter did not record")
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("collector.lines").Add(42)
	r.Gauge("realtime.pending").Set(3)
	r.Histogram("engine.diagnose.seconds", LatencyBuckets).ObserveDuration(3 * time.Millisecond)
	s := r.Snapshot()
	if s.Counters["collector.lines"] != 42 || s.Gauges["realtime.pending"] != 3 {
		t.Errorf("snapshot scalars wrong: %+v", s)
	}
	if s.Histograms["engine.diagnose.seconds"].Count != 1 {
		t.Errorf("snapshot histogram wrong: %+v", s.Histograms)
	}
	var b strings.Builder
	if err := WriteText(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"collector.lines", "42", "realtime.pending", "engine.diagnose.seconds", "3ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestCacheRatios(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.expand.cache.hits").Add(30)
	r.Counter("engine.expand.cache.misses").Add(10)
	r.Counter("ospf.spf.cache.hits").Add(0)
	r.Counter("ospf.spf.cache.misses").Add(5)
	r.Counter("bgp.bestpath.cache.hits").Add(7) // no .misses pair: skipped
	r.Counter("collector.lines.hits").Add(3)    // not a .cache counter: skipped
	r.Counter("idle.cache.hits").Add(0)         // never fired: skipped
	r.Counter("idle.cache.misses").Add(0)
	got := CacheRatios(r.Snapshot())
	want := []CacheRatio{
		{Name: "engine.expand.cache", Hits: 30, Misses: 10, Ratio: 0.75},
		{Name: "ospf.spf.cache", Hits: 0, Misses: 5, Ratio: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("CacheRatios = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ratio %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cache hit ratios:") || !strings.Contains(out, "75.0%") {
		t.Errorf("text output missing cache ratio section:\n%s", out)
	}
}
