package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSpanNesting pins the stack discipline: children attach to the
// innermost open span, End pops exactly to the ended span.
func TestSpanNesting(t *testing.T) {
	tr := StartTrace("diagnose")
	a := tr.StartSpan("rule A")
	aq := tr.StartSpan("query")
	aq.End()
	ab := tr.StartSpan("rule B") // nested evidence chain under A
	ab.End()
	a.End()
	c := tr.StartSpan("reason")
	c.End()
	tr.Finish()

	root := tr.Root()
	if root.Name != "diagnose" || len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (%+v)", len(root.Children), root)
	}
	if root.Children[0] != a || root.Children[1] != c {
		t.Fatal("top-level spans misattached")
	}
	if len(a.Children) != 2 || a.Children[0] != aq || a.Children[1] != ab {
		t.Fatalf("rule A children wrong: %+v", a.Children)
	}
	if root.Duration <= 0 || a.Duration <= 0 || aq.Duration < 0 {
		t.Error("durations not recorded")
	}
	if a.Duration > root.Duration {
		t.Errorf("child outlived root: %v > %v", a.Duration, root.Duration)
	}
}

// TestUnbalancedEnd: ending an outer span closes the children left open
// rather than corrupting the stack.
func TestUnbalancedEnd(t *testing.T) {
	tr := StartTrace("op")
	outer := tr.StartSpan("outer")
	inner := tr.StartSpan("inner") // never explicitly ended
	outer.End()
	next := tr.StartSpan("next") // must attach to root, not inner
	next.End()
	tr.Finish()
	if inner.Duration <= 0 {
		t.Error("abandoned inner span has no duration")
	}
	root := tr.Root()
	if len(root.Children) != 2 || root.Children[1] != next {
		t.Fatalf("next span misattached: %+v", root.Children)
	}
}

// TestNilTrace: the nil recorder is a total no-op — instrumented code
// calls it unconditionally.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.End()
	sp.Annotate("k", "v")
	sp.AnnotateInt("n", 1)
	sp.AnnotateDuration("d", time.Second)
	tr.Finish()
	if tr.Root() != nil {
		t.Error("nil trace has a root")
	}
	if err := tr.Write(nil); err != nil {
		t.Error(err)
	}
}

func TestTraceWrite(t *testing.T) {
	tr := StartTrace("diagnose eBGP flap")
	sp := tr.StartSpan("rule eBGP flap <- Interface flap")
	sp.AnnotateInt("candidates", 3)
	sp.AnnotateDuration("query", 1500*time.Microsecond)
	sp.End()
	tr.Finish()
	var b strings.Builder
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"diagnose eBGP flap", "  rule eBGP flap <- Interface flap", "candidates=3", "query=1.5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}
