package obs

import "time"

// Now is the wall clock behind every latency measurement in the pipeline.
// Code under internal/ reads time through Now/Since rather than calling
// time.Now directly (enforced by grcalint's nakedtime analyzer) so tests
// and corpus replays can substitute a deterministic clock process-wide.
var Now = time.Now

// Since reports the elapsed wall time since t on the pipeline clock.
func Since(t time.Time) time.Duration { return Now().Sub(t) }
