// Package rollup maintains the pre-computed aggregates behind the live
// Result Browser (paper §II-F): per-application root-cause breakdown
// counters, time-binned trend series for events and causes, and a
// bounded ring of recent diagnoses for streaming. Aggregates are updated
// incrementally on the ingest/diagnose path — store append/evict hooks
// feed the event bins, the realtime processor's diagnosis fan-out feeds
// the cause counters — so the breakdown and trend endpoints answer from
// O(causes) and O(bins) state instead of re-diagnosing the store per
// request.
//
// # The breakdown invariant
//
// A Rollup's breakdown for an application equals the batch
// browser.Breakdown over one diagnosis of every live root symptom in the
// store, each diagnosed with its full evidence. Counters alone cannot
// provide that — symptoms sitting in the realtime processor's grace
// window have no diagnosis yet — so reads merge in on-demand diagnoses
// of the pending symptoms (see BreakdownCounts). The counted set
// (symptom ID → label) makes the merge exact under races: a symptom
// drained between the pending snapshot and the merge is skipped because
// it is already counted.
//
// Deviations from a from-scratch batch run, both inherited from the
// realtime package's contract: a force-drained symptom (MaxPending
// overflow or shutdown) was counted with possibly-incomplete evidence,
// and under retention eviction the remembered label is the one diagnosed
// at drain time even if the evidence supporting it has since been
// evicted.
package rollup

import (
	"sort"
	"sync"
	"time"

	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/obs"
	"grca/internal/store"
)

var (
	mEventsBinned = obs.GetCounter("rollup.events.binned")
	mCounted      = obs.GetCounter("rollup.diagnoses.counted")
	mRecounted    = obs.GetCounter("rollup.diagnoses.recounted")
	mEvictedEv    = obs.GetCounter("rollup.evicted.events")
	mEvictedDiag  = obs.GetCounter("rollup.evicted.diagnoses")
)

// Config sizes a Rollup.
type Config struct {
	// Bin is the base width of the trend bins (default one minute).
	// Trend queries may aggregate to any multiple of it.
	Bin time.Duration
	// RecentSize bounds the ring of recent diagnoses kept for the SSE
	// stream's replay catch-up (default 256).
	RecentSize int
}

// Entry is one diagnosis in the recent ring. Seq increases by one per
// live diagnosis and orders the SSE stream.
type Entry struct {
	Seq int64
	App string
	D   engine.Diagnosis
}

// causeSeries is one root-cause label's counters: total plus per-bin
// counts keyed by the symptom start truncated to the base bin (unix
// seconds).
type causeSeries struct {
	total int
	bins  map[int64]int
}

// appAgg aggregates one application's diagnoses.
type appAgg struct {
	labels map[string]*causeSeries
	// counted maps each counted symptom's store ID to the raw primary
	// label it was counted under — the dedupe set behind the breakdown
	// invariant and the decrement index for eviction.
	counted map[int]string
}

// Rollup holds the incrementally-maintained Result Browser aggregates.
// Safe for concurrent use: writers are the store hooks and diagnosis
// fan-out, readers the HTTP handlers.
type Rollup struct {
	bin        time.Duration
	recentSize int

	mu sync.RWMutex
	// events: event name → base-bin start (unix seconds) → count.
	events map[string]map[int64]int
	apps   map[string]*appAgg
	recent []Entry // fixed-size ring once full
	next   int     // ring write position
	seq    int64
}

// New returns an empty rollup.
func New(cfg Config) *Rollup {
	if cfg.Bin <= 0 {
		cfg.Bin = time.Minute
	}
	if cfg.RecentSize <= 0 {
		cfg.RecentSize = 256
	}
	return &Rollup{
		bin:        cfg.Bin,
		recentSize: cfg.RecentSize,
		events:     map[string]map[int64]int{},
		apps:       map[string]*appAgg{},
	}
}

// Bin returns the base bin width. Trend queries must use a multiple.
func (r *Rollup) Bin() time.Duration { return r.bin }

func (r *Rollup) key(t time.Time) int64 { return t.Truncate(r.bin).Unix() }

func (r *Rollup) app(name string) *appAgg {
	a := r.apps[name]
	if a == nil {
		a = &appAgg{labels: map[string]*causeSeries{}, counted: map[int]string{}}
		r.apps[name] = a
	}
	return a
}

// ObserveEvent bins one stored instance. Registered as a store OnAppend
// hook, so it runs under the store's write lock and stays O(1).
func (r *Rollup) ObserveEvent(in *event.Instance) {
	k := r.key(in.Start)
	r.mu.Lock()
	bins := r.events[in.Name]
	if bins == nil {
		bins = map[int64]int{}
		r.events[in.Name] = bins
	}
	bins[k]++
	r.mu.Unlock()
	mEventsBinned.Inc()
}

// SeedEvents replays every live instance of the store into the event
// bins — the recovery path, where the store was rebuilt from snapshot +
// WAL before the rollup existed. Register the hooks after seeding.
func (r *Rollup) SeedEvents(st store.Store) {
	_, _, ins := st.Dump()
	for i := range ins {
		r.ObserveEvent(&ins[i])
	}
}

// EvictEvents reverses ObserveEvent for retention-evicted instances and
// un-counts any evicted root symptoms, keeping the breakdown invariant
// scoped to live symptoms. Registered as a store OnEvict hook.
func (r *Rollup) EvictEvents(evicted []*event.Instance, cutoff time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range evicted {
		k := r.key(in.Start)
		if bins := r.events[in.Name]; bins != nil {
			if bins[k]--; bins[k] <= 0 {
				delete(bins, k)
			}
			if len(bins) == 0 {
				delete(r.events, in.Name)
			}
		}
		mEvictedEv.Inc()
		for _, a := range r.apps {
			label, ok := a.counted[in.ID]
			if !ok {
				continue
			}
			a.uncount(in.ID, label, k)
			mEvictedDiag.Inc()
		}
	}
}

func (a *appAgg) uncount(id int, label string, bin int64) {
	delete(a.counted, id)
	cs := a.labels[label]
	if cs == nil {
		return
	}
	cs.total--
	if cs.bins[bin]--; cs.bins[bin] <= 0 {
		delete(cs.bins, bin)
	}
	if cs.total <= 0 {
		delete(a.labels, label)
	}
}

// countLocked counts (or re-counts) one diagnosis for app. A symptom
// already counted has its label replaced — the later diagnosis saw at
// least as much evidence (seed-then-drain ordering).
func (r *Rollup) countLocked(app string, d engine.Diagnosis) {
	a := r.app(app)
	id := d.Symptom.ID
	k := r.key(d.Symptom.Start)
	label := d.Primary()
	if prev, ok := a.counted[id]; ok {
		if prev == label {
			return
		}
		a.uncount(id, prev, k)
		mRecounted.Inc()
	} else {
		mCounted.Inc()
	}
	a.counted[id] = label
	cs := a.labels[label]
	if cs == nil {
		cs = &causeSeries{bins: map[int64]int{}}
		a.labels[label] = cs
	}
	cs.total++
	cs.bins[k]++
}

// CountDiagnosis folds one diagnosis into the breakdown and cause-trend
// counters without touching the recent ring — the seed path, where
// startup diagnoses every stored root symptom to establish the
// invariant before live traffic resumes.
func (r *Rollup) CountDiagnosis(app string, d engine.Diagnosis) {
	r.mu.Lock()
	r.countLocked(app, d)
	r.mu.Unlock()
}

// AddDiagnosis is CountDiagnosis plus a push onto the recent ring; it
// returns the diagnosis' stream sequence number. This is the realtime
// processor's OnDiagnosis fan-out target.
func (r *Rollup) AddDiagnosis(app string, d engine.Diagnosis) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.countLocked(app, d)
	r.seq++
	e := Entry{Seq: r.seq, App: app, D: d}
	if len(r.recent) < r.recentSize {
		r.recent = append(r.recent, e)
	} else {
		r.recent[r.next] = e
	}
	r.next = (r.next + 1) % r.recentSize
	return r.seq
}

// LastSeq returns the sequence number of the newest ring entry (0 before
// any live diagnosis).
func (r *Rollup) LastSeq() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// RecentSince returns up to limit ring entries with Seq > after, oldest
// first — the SSE replay catch-up. limit <= 0 means no limit.
func (r *Rollup) RecentSince(after int64, limit int) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	n := len(r.recent)
	start := 0
	if n == r.recentSize {
		start = r.next // oldest slot once the ring wrapped
	}
	for i := 0; i < n; i++ {
		e := r.recent[(start+i)%n]
		if e.Seq <= after {
			continue
		}
		if limit > 0 && len(out) == limit {
			break
		}
		out = append(out, e)
	}
	return out
}

// BreakdownCounts returns the per-label counts and total for app's
// breakdown, merging extra — on-demand diagnoses of the symptoms still
// pending in the realtime processor — under the same lock so each
// symptom is counted exactly once even if it drains concurrently.
// A non-zero from restricts the tally to symptoms whose bin-truncated
// start is at or after from's bin. Labels are raw engine labels; callers
// apply display mapping.
func (r *Rollup) BreakdownCounts(app string, from time.Time, extra []engine.Diagnosis) (counts map[string]int, total int) {
	windowed := !from.IsZero()
	var fromKey int64
	if windowed {
		fromKey = from.Truncate(r.bin).Unix()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	counts = map[string]int{}
	a := r.apps[app]
	if a != nil {
		if !windowed {
			for label, cs := range a.labels {
				counts[label] = cs.total
			}
			total = len(a.counted)
		} else {
			for label, cs := range a.labels {
				n := 0
				for k, c := range cs.bins {
					if k >= fromKey {
						n += c
					}
				}
				if n > 0 {
					counts[label] = n
					total += n
				}
			}
		}
	}
	for _, d := range extra {
		if a != nil {
			if _, dup := a.counted[d.Symptom.ID]; dup {
				continue
			}
		}
		if windowed && r.key(d.Symptom.Start) < fromKey {
			continue
		}
		counts[d.Primary()]++
		total++
	}
	return counts, total
}

// Causes lists app's raw root-cause labels with live counts, sorted by
// descending count then label — the filter vocabulary of the Result
// Browser.
func (r *Rollup) Causes(app string) []browser.Row {
	counts, total := r.BreakdownCounts(app, time.Time{}, nil)
	return browser.Rows(counts, total)
}

// Apps lists the applications with counted diagnoses, sorted.
func (r *Rollup) Apps() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.apps))
	for name := range r.apps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Trend renders the event-occurrence series for name over [from, to] at
// the given bin width (a multiple of the base bin; from must lie on the
// bin grid). With from ≤ every live Start and to ≥ the store span's last
// end — the serving defaults — the result is exactly browser.Trend over
// the same store; for a narrower custom window the final bin counts by
// bin-truncated start (a base-bin-granular boundary) where browser.Trend
// cuts on raw start.
func (r *Rollup) Trend(name string, from, to time.Time, bin time.Duration) []browser.TrendPoint {
	points := browser.NewSeries(from, to, bin)
	if points == nil {
		return nil
	}
	fromSec, toSec, binSec := from.Unix(), to.Unix(), int64(bin/time.Second)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, n := range r.events[name] {
		if k < fromSec || k > toSec {
			continue
		}
		if i := int((k - fromSec) / binSec); i >= 0 && i < len(points) {
			points[i].Count += n
		}
	}
	return points
}

// CauseTrend renders the per-bin count of app diagnoses whose primary
// label is label, merging extra pending diagnoses exactly as
// BreakdownCounts does. Equals browser.TrendDiagnoses over one diagnosis
// of every live root symptom for any window aligned to the base-bin
// grid.
func (r *Rollup) CauseTrend(app, label string, from, to time.Time, bin time.Duration, extra []engine.Diagnosis) []browser.TrendPoint {
	points := browser.NewSeries(from, to, bin)
	if points == nil {
		return nil
	}
	fromSec, binSec := from.Unix(), int64(bin/time.Second)
	idx := func(k int64) int {
		if k < fromSec {
			return -1
		}
		return int((k - fromSec) / binSec)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	a := r.apps[app]
	if a != nil {
		if cs := a.labels[label]; cs != nil {
			for k, n := range cs.bins {
				if i := idx(k); i >= 0 && i < len(points) {
					points[i].Count += n
				}
			}
		}
	}
	for _, d := range extra {
		if d.Primary() != label {
			continue
		}
		if a != nil {
			if _, dup := a.counted[d.Symptom.ID]; dup {
				continue
			}
		}
		if i := idx(r.key(d.Symptom.Start)); i >= 0 && i < len(points) {
			points[i].Count++
		}
	}
	return points
}

// Counted reports how many diagnoses are counted for app.
func (r *Rollup) Counted(app string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if a := r.apps[app]; a != nil {
		return len(a.counted)
	}
	return 0
}
