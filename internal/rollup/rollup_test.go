package rollup

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/store"
)

var t0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// diag fabricates a diagnosis of a stored symptom with the given primary
// label ("" = Unknown).
func diag(sym *event.Instance, label string) engine.Diagnosis {
	d := engine.Diagnosis{Symptom: sym}
	if label != "" {
		d.Causes = []engine.Cause{{Event: label}}
	}
	return d
}

// fill stores n instances of name spaced by step and returns them.
func fill(st store.Store, name string, n int, start time.Time, step time.Duration) []*event.Instance {
	out := make([]*event.Instance, 0, n)
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(i) * step)
		out = append(out, st.Add(event.Instance{Name: name, Start: at, End: at.Add(time.Second)}))
	}
	return out
}

// TestBreakdownMatchesBatch: counting a diagnosis per live symptom makes
// BreakdownCounts byte-identical (through browser.Rows) to the batch
// browser.Breakdown over the same diagnoses.
func TestBreakdownMatchesBatch(t *testing.T) {
	st := store.New()
	r := New(Config{})
	st.OnAppend(r.ObserveEvent)
	syms := fill(st, "sym", 9, t0, time.Minute)

	labels := []string{"link down", "link down", "maintenance", "", "link down", "maintenance", "", "card failure", "link down"}
	var ds []engine.Diagnosis
	for i, sym := range syms {
		d := diag(sym, labels[i])
		ds = append(ds, d)
		r.CountDiagnosis("app", d)
	}

	counts, total := r.BreakdownCounts("app", time.Time{}, nil)
	got, _ := json.Marshal(browser.Rows(counts, total))
	want, _ := json.Marshal(browser.Breakdown(ds, nil))
	if !bytes.Equal(got, want) {
		t.Fatalf("rollup breakdown %s\n!= batch %s", got, want)
	}
	if n := r.Counted("app"); n != len(syms) {
		t.Errorf("Counted = %d, want %d", n, len(syms))
	}
}

// TestRecountReplacesLabel: re-counting the same symptom under a new
// label (the seed-then-drain overlap) replaces, never double-counts.
func TestRecountReplacesLabel(t *testing.T) {
	st := store.New()
	r := New(Config{})
	sym := st.Add(event.Instance{Name: "sym", Start: t0, End: t0.Add(time.Second)})

	r.CountDiagnosis("app", diag(sym, ""))
	r.CountDiagnosis("app", diag(sym, "link down"))
	counts, total := r.BreakdownCounts("app", time.Time{}, nil)
	if total != 1 {
		t.Fatalf("total = %d after recount, want 1", total)
	}
	if counts["link down"] != 1 || counts[engine.Unknown] != 0 {
		t.Fatalf("counts after recount = %v", counts)
	}
}

// TestExtraMerge: pending diagnoses merge into the breakdown exactly
// once — already-counted symptom IDs and pre-window symptoms are skipped.
func TestExtraMerge(t *testing.T) {
	st := store.New()
	r := New(Config{})
	syms := fill(st, "sym", 3, t0, time.Hour)
	r.CountDiagnosis("app", diag(syms[0], "link down"))

	extra := []engine.Diagnosis{
		diag(syms[0], "maintenance"), // already counted: must be skipped
		diag(syms[1], "maintenance"),
		diag(syms[2], "link down"),
	}
	counts, total := r.BreakdownCounts("app", time.Time{}, extra)
	if total != 3 || counts["link down"] != 2 || counts["maintenance"] != 1 {
		t.Fatalf("merged counts = %v (total %d)", counts, total)
	}

	// Windowed: only syms[1:] are inside; the counted syms[0] and the
	// duplicate extra both fall away.
	counts, total = r.BreakdownCounts("app", t0.Add(time.Hour), extra)
	if total != 2 || counts["maintenance"] != 1 || counts["link down"] != 1 {
		t.Fatalf("windowed counts = %v (total %d)", counts, total)
	}
}

// TestEvictionReversesCounting: retention eviction through the store
// hooks removes evicted instances from both the event bins and the
// breakdown, as if they had never been counted.
func TestEvictionReversesCounting(t *testing.T) {
	st := store.New()
	r := New(Config{})
	st.OnAppend(r.ObserveEvent)
	st.OnEvict(r.EvictEvents)
	syms := fill(st, "sym", 6, t0, time.Hour)
	for i, sym := range syms {
		label := "link down"
		if i%2 == 1 {
			label = "maintenance"
		}
		r.AddDiagnosis("app", diag(sym, label))
	}

	cutoff := t0.Add(3 * time.Hour) // evicts syms[0..2]
	if n := st.EvictBefore(cutoff); n != 3 {
		t.Fatalf("evicted %d, want 3", n)
	}
	counts, total := r.BreakdownCounts("app", time.Time{}, nil)
	if total != 3 || counts["link down"] != 1 || counts["maintenance"] != 2 {
		t.Fatalf("post-eviction counts = %v (total %d)", counts, total)
	}

	// The trend must now equal a from-scratch trend over the live store.
	from := t0.Truncate(time.Minute)
	_, last, _ := st.Span()
	got, _ := json.Marshal(r.Trend("sym", from, last, time.Minute))
	want, _ := json.Marshal(browser.Trend(st, "sym", from, last, time.Minute))
	if !bytes.Equal(got, want) {
		t.Fatalf("post-eviction trend diverged:\n%s\n%s", got, want)
	}
}

// TestTrendParity: over the serving defaults (from = span start on the
// grid, to = span end) the rollup trend equals browser.Trend over the
// same store, at the base bin and at multiples.
func TestTrendParity(t *testing.T) {
	st := store.New()
	r := New(Config{})
	st.OnAppend(r.ObserveEvent)
	// Uneven spacing so bins have mixed counts.
	for i := 0; i < 40; i++ {
		at := t0.Add(time.Duration(i*i%191) * time.Minute).Add(time.Duration(i%53) * time.Second)
		st.Add(event.Instance{Name: "sym", Start: at, End: at.Add(time.Second)})
	}
	first, last, _ := st.Span()
	for _, bin := range []time.Duration{time.Minute, 5 * time.Minute, time.Hour} {
		from := first.Truncate(bin)
		got, _ := json.Marshal(r.Trend("sym", from, last, bin))
		want, _ := json.Marshal(browser.Trend(st, "sym", from, last, bin))
		if !bytes.Equal(got, want) {
			t.Errorf("bin %v: rollup trend != browser.Trend", bin)
		}
	}
}

// TestCauseTrendParity: the cause series equals browser.TrendDiagnoses
// over the same diagnoses for a grid-aligned window, with pending extras
// merged.
func TestCauseTrendParity(t *testing.T) {
	st := store.New()
	r := New(Config{})
	syms := fill(st, "sym", 12, t0, 7*time.Minute)
	var ds []engine.Diagnosis
	for i, sym := range syms {
		label := "link down"
		if i%3 == 0 {
			label = "maintenance"
		}
		d := diag(sym, label)
		ds = append(ds, d)
		if i < 8 {
			r.CountDiagnosis("app", d)
		}
	}
	extra := ds[8:] // still pending: merged at read time

	from := t0
	bin := 10 * time.Minute
	to := syms[len(syms)-1].Start
	n := int(to.Sub(from)/bin) + 1
	got, _ := json.Marshal(r.CauseTrend("app", "link down", from, to, bin, extra))
	want, _ := json.Marshal(browser.TrendDiagnoses(ds, "link down", from, bin, n))
	if !bytes.Equal(got, want) {
		t.Fatalf("cause trend diverged:\n%s\n%s", got, want)
	}
}

// TestSeedEventsEqualsHooks: seeding from a pre-built store produces the
// same bins as having observed each append.
func TestSeedEventsEqualsHooks(t *testing.T) {
	st := store.New()
	hooked := New(Config{})
	st.OnAppend(hooked.ObserveEvent)
	fill(st, "a", 10, t0, time.Minute)
	fill(st, "b", 5, t0.Add(30*time.Second), 2*time.Minute)

	seeded := New(Config{})
	seeded.SeedEvents(st)

	first, last, _ := st.Span()
	from := first.Truncate(time.Minute)
	for _, name := range []string{"a", "b"} {
		got, _ := json.Marshal(seeded.Trend(name, from, last, time.Minute))
		want, _ := json.Marshal(hooked.Trend(name, from, last, time.Minute))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: seeded trend != hooked trend", name)
		}
	}
}

// TestRecentRing: the ring keeps the last RecentSize diagnoses in order,
// RecentSince filters by sequence and honors the limit.
func TestRecentRing(t *testing.T) {
	st := store.New()
	r := New(Config{RecentSize: 4})
	syms := fill(st, "sym", 10, t0, time.Minute)
	for _, sym := range syms {
		r.AddDiagnosis("app", diag(sym, "link down"))
	}
	if got := r.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	es := r.RecentSince(0, 0)
	if len(es) != 4 {
		t.Fatalf("ring holds %d, want 4", len(es))
	}
	for i, e := range es {
		if want := int64(7 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
	if es := r.RecentSince(8, 0); len(es) != 2 || es[0].Seq != 9 {
		t.Errorf("RecentSince(8) = %+v", es)
	}
	if es := r.RecentSince(0, 2); len(es) != 2 || es[0].Seq != 7 {
		t.Errorf("RecentSince(0, 2) = %+v", es)
	}
	if es := r.RecentSince(10, 0); len(es) != 0 {
		t.Errorf("RecentSince(last) returned %d entries", len(es))
	}
}
