package simnet

import (
	"fmt"
	"strings"
	"time"

	"grca/internal/collector"
	"grca/internal/netmodel"
)

// zoneCache caches time.LoadLocation lookups for emission.
var zoneCache = map[string]*time.Location{}

func zone(name string) *time.Location {
	if name == "" {
		return time.UTC
	}
	if loc, ok := zoneCache[name]; ok {
		return loc
	}
	loc, err := time.LoadLocation(name)
	if err != nil {
		loc = time.UTC
	}
	zoneCache[name] = loc
	return loc
}

// deviceRef renders a router reference the way one of the management
// systems would: short name, FQDN, or upper case, chosen pseudo-randomly
// so the collector's alias normalization is genuinely exercised.
func (d *Dataset) deviceRef(router string) string {
	switch d.rng.Intn(3) {
	case 0:
		return router
	case 1:
		return router + ".net.example.com"
	default:
		return strings.ToUpper(router)
	}
}

// syslog emits one syslog line stamped in the device's local wall time.
func (d *Dataset) syslog(at time.Time, router, msg string) {
	r := d.Topo.Routers[router]
	tz := time.UTC
	if r != nil {
		tz = zone(r.TZName)
	}
	local := at.In(tz)
	d.emit(collector.SourceSyslog, at,
		fmt.Sprintf("%s %s %s", local.Format("Jan _2 15:04:05"), d.deviceRef(router), msg))
}

// Cascade emitters for the common causal chains.

func (d *Dataset) linkUpDown(at time.Time, router, ifname, state string) {
	d.syslog(at, router, fmt.Sprintf("%%LINK-3-UPDOWN: Interface %s, changed state to %s", ifname, state))
}

func (d *Dataset) lineProtoUpDown(at time.Time, router, ifname, state string) {
	d.syslog(at, router, fmt.Sprintf("%%LINEPROTO-5-UPDOWN: Line protocol on Interface %s, changed state to %s", ifname, state))
}

func (d *Dataset) bgpAdj(at time.Time, router, neighbor, state, reason string) {
	msg := fmt.Sprintf("%%BGP-5-ADJCHANGE: neighbor %s %s", neighbor, state)
	if reason != "" {
		msg += " " + reason
	}
	d.syslog(at, router, msg)
}

func (d *Dataset) bgpHTE(at time.Time, router, neighbor string) {
	d.syslog(at, router, fmt.Sprintf("%%BGP-5-NOTIFICATION: sent to neighbor %s 4/0 (hold time expired)", neighbor))
}

func (d *Dataset) bgpCustomerReset(at time.Time, router, neighbor string) {
	d.syslog(at, router, fmt.Sprintf("%%BGP-5-NOTIFICATION: received from neighbor %s 6/4 (administrative reset)", neighbor))
}

func (d *Dataset) cpuSpike(at time.Time, router string, pct int) {
	d.syslog(at, router, fmt.Sprintf("%%SYS-1-CPURISINGTHRESHOLD: Threshold: Total CPU Utilization(Total/Intr): %d%%/2%%", pct))
}

func (d *Dataset) reboot(at time.Time, router string) {
	d.syslog(at, router, "%SYS-5-RESTART: System restarted")
}

// pimVRFChange emits the MVPN adjacency message: reporter lost (or
// regained) its PE neighbor in the customer VRF; the neighbor is named by
// loopback, as the protocol does.
func (d *Dataset) pimVRFChange(at time.Time, reporter, vrf, neighborPE, state string) {
	loop := d.Topo.Routers[neighborPE].Loopback
	d.syslog(at, reporter, fmt.Sprintf("%%PIM-5-NBRCHG: VRF %s: neighbor %s %s", vrf, loop, state))
}

func (d *Dataset) pimUplinkChange(at time.Time, reporter, ifname string, neighborIP string, state string) {
	d.syslog(at, reporter, fmt.Sprintf("%%PIM-5-NBRCHG: neighbor %s %s on interface %s", neighborIP, state, ifname))
}

// snmp emits one SNMP sample row.
func (d *Dataset) snmp(at time.Time, router, object, instance string, value float64) {
	d.emit(collector.SourceSNMP, at, fmt.Sprintf("%d,%s,%s,%s,%.1f",
		at.Unix(), d.deviceRef(router), object, instance, value))
}

// ospfMetric emits one OSPF monitor observation for a link, advertised
// from its A end.
func (d *Dataset) ospfMetric(at time.Time, l *netmodel.LogicalLink, metric int, initial bool) {
	suffix := ""
	if initial {
		suffix = " initial"
	}
	d.emit(collector.SourceOSPFMon, at, fmt.Sprintf("%s %s %s metric %d%s",
		at.UTC().Format(time.RFC3339), l.A.Router.Loopback, l.A.IP, metric, suffix))
}

// bgpAnnounce and bgpWithdraw emit reflector feed records.
func (d *Dataset) bgpAnnounce(at time.Time, prefix, egress string, localPref, asLen int) {
	loop := d.Topo.Routers[egress].Loopback
	d.emit(collector.SourceBGPMon, at, fmt.Sprintf("%d|A|%s|%s|%d|%d|0|0",
		at.Unix(), prefix, loop, localPref, asLen))
}

func (d *Dataset) bgpWithdraw(at time.Time, prefix, egress string) {
	loop := d.Topo.Routers[egress].Loopback
	d.emit(collector.SourceBGPMon, at, fmt.Sprintf("%d|W|%s|%s", at.Unix(), prefix, loop))
}

// tacacs emits a command-accounting record with a randomized zone offset.
func (d *Dataset) tacacs(at time.Time, router, user, command string) {
	offsets := []int{0, -5 * 3600, -6 * 3600}
	off := offsets[d.rng.Intn(len(offsets))]
	stamped := at.In(time.FixedZone("", off)).Format(time.RFC3339)
	d.emit(collector.SourceTACACS, at, fmt.Sprintf("%s|%s|%s|%s", stamped, d.deviceRef(router), user, command))
}

func (d *Dataset) workflow(at time.Time, router, ticket, action string) {
	d.emit(collector.SourceWorkflow, at, fmt.Sprintf("%s|%s|%s|%s",
		at.UTC().Format(time.RFC3339), d.deviceRef(router), ticket, action))
}

func (d *Dataset) layer1(at time.Time, device, kind, detail string) {
	offsets := []int{0, -5 * 3600}
	off := offsets[d.rng.Intn(len(offsets))]
	stamped := at.In(time.FixedZone("", off)).Format("2006/01/02 15:04:05 -0700")
	d.emit(collector.SourceLayer1, at, fmt.Sprintf("%s|%s|%s|%s", stamped, device, kind, detail))
}

func (d *Dataset) keynote(at time.Time, server, agent string, rttMS, tputKbps float64) {
	d.emit(collector.SourceKeynote, at, fmt.Sprintf("%d,%s,%s,%.1f,%.0f",
		at.Unix(), server, agent, rttMS, tputKbps))
}

func (d *Dataset) serverLog(at time.Time, record, who, value string) {
	d.emit(collector.SourceServer, at, fmt.Sprintf("%d,%s,%s,%s", at.Unix(), record, who, value))
}

func (d *Dataset) perf(at time.Time, ingress, egress string, delayMS, lossPct, tputMbps float64) {
	d.emit(collector.SourcePerfMon, at, fmt.Sprintf("%d,%s,%s,%.1f,%.2f,%.0f",
		at.Unix(), d.deviceRef(ingress), d.deviceRef(egress), delayMS, lossPct, tputMbps))
}
