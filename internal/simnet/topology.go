package simnet

import (
	"fmt"
	"net/netip"

	"grca/internal/netmodel"
)

// Deterministic device-local time zones assigned round-robin across PoPs,
// exercising the collector's timestamp normalization.
var popZones = []string{
	"America/New_York", "America/Chicago", "America/Denver",
	"America/Los_Angeles", "UTC", "Europe/London",
}

// addressing hands out /30 subnets and loopbacks deterministically.
type addressing struct {
	nextSub  int
	nextLoop int
}

func (a *addressing) subnet() (netip.Prefix, netip.Addr, netip.Addr) {
	n := a.nextSub
	a.nextSub++
	base := netip.AddrFrom4([4]byte{10, byte(n >> 14), byte(n >> 6), byte(n << 2)})
	return netip.PrefixFrom(base, 30), base.Next(), base.Next().Next()
}

func (a *addressing) loopback() netip.Addr {
	n := a.nextLoop
	a.nextLoop++
	return netip.AddrFrom4([4]byte{10, 255, byte(n >> 8), byte(n)})
}

// buildTopology constructs the multi-PoP ISP: two core routers per PoP
// connected as parallel planes in a ring across PoPs, PERs dual-homed to
// their PoP's cores, customer attachments over SONET or optical access
// circuits, a CDN node at the first PoP, and peering egresses at the last
// two PoPs announcing the measurement agents' prefixes.
func (d *Dataset) buildTopology() error {
	cfg := d.Config
	topo := netmodel.NewTopology()
	d.Topo = topo
	addr := &addressing{}

	newRouter := func(name, pop string, role netmodel.Role, zone string) (*netmodel.Router, error) {
		r := &netmodel.Router{Name: name, PoP: pop, Role: role, TZName: zone, Loopback: addr.loopback()}
		if err := topo.AddRouter(r); err != nil {
			return nil, err
		}
		return r, nil
	}

	link := func(id string, a, b *netmodel.LineCard, nameA, nameB string) (*netmodel.LogicalLink, error) {
		pfx, ipA, ipB := addr.subnet()
		iA, err := topo.AddInterface(a, nameA, pfx, ipA)
		if err != nil {
			return nil, err
		}
		iB, err := topo.AddInterface(b, nameB, pfx, ipB)
		if err != nil {
			return nil, err
		}
		return topo.Connect(id, iA, iB)
	}

	type popRouters struct {
		cores [2]*netmodel.Router
		pers  []*netmodel.Router
	}
	pops := make([]popRouters, cfg.PoPs)

	// Routers and cards.
	for p := 0; p < cfg.PoPs; p++ {
		pop := d.popName(p)
		zone := popZones[p%len(popZones)]
		for c := 0; c < 2; c++ {
			r, err := newRouter(fmt.Sprintf("%s-cr%d", pop, c+1), pop, netmodel.RoleCore, zone)
			if err != nil {
				return err
			}
			topo.AddCard(r)
			topo.AddCard(r)
			pops[p].cores[c] = r
		}
		for e := 0; e < cfg.PERsPerPoP; e++ {
			r, err := newRouter(fmt.Sprintf("%s-per%d", pop, e+1), pop, netmodel.RoleProviderEdge, zone)
			if err != nil {
				return err
			}
			// Card 0/1: customer-facing; card 2: uplinks.
			topo.AddCard(r)
			topo.AddCard(r)
			topo.AddCard(r)
			pops[p].pers = append(pops[p].pers, r)
		}
	}

	mesh := func(l *netmodel.LogicalLink, devs ...string) {
		d.Topo.AddPhysical(l.ID+"-c1", l, netmodel.L1OpticalMesh, devs...)
	}

	// Intra-PoP core pair links (weight 5) and inter-PoP ring on both
	// planes (weight 10).
	for p := 0; p < cfg.PoPs; p++ {
		pop := d.popName(p)
		l, err := link(pop+"-core", pops[p].cores[0].Cards[0], pops[p].cores[1].Cards[0],
			"to-"+pops[p].cores[1].Name, "to-"+pops[p].cores[0].Name)
		if err != nil {
			return err
		}
		d.weights[l.ID] = 5
		mesh(l, "mesh-"+pop+"-a", "mesh-"+pop+"-b")
		next := (p + 1) % cfg.PoPs
		if cfg.PoPs > 1 && !(cfg.PoPs == 2 && p == 1) {
			for plane := 0; plane < 2; plane++ {
				a, b := pops[p].cores[plane], pops[next].cores[plane]
				id := fmt.Sprintf("%s-%s-p%d", d.popName(p), d.popName(next), plane+1)
				l, err := link(id, a.Cards[1], b.Cards[1], "to-"+b.Name, "to-"+a.Name)
				if err != nil {
					return err
				}
				d.weights[l.ID] = 10
				mesh(l, "mesh-"+a.Name, "mesh-"+b.Name)
			}
		}
	}

	// PER uplinks: dual-homed to both cores of the PoP (weight 5).
	for p := range pops {
		for _, per := range pops[p].pers {
			for c, core := range pops[p].cores {
				id := fmt.Sprintf("%s-up%d", per.Name, c+1)
				l, err := link(id, per.Cards[2], core.Cards[0], "to-"+core.Name, "to-"+per.Name)
				if err != nil {
					return err
				}
				d.weights[l.ID] = 5
				mesh(l, "mesh-"+d.popName(p)+"-agg")
				if o := l.Other(core.Name); o != nil {
					o.Uplink = true
				}
			}
		}
	}

	// Customers. A deterministic fraction are two-site MVPNs: their
	// second site lands on a PER in another PoP.
	mvpnByVRF := map[string]*MVPN{}
	sessionIdx := 0
	for p := range pops {
		for _, per := range pops[p].pers {
			for s := 0; s < cfg.SessionsPerPER; s++ {
				sessionIdx++
				cust := fmt.Sprintf("cust%04d", sessionIdx)
				vrf := ""
				// Pair MVPN sites: every 1/MVPNFraction-th session joins a
				// VRF shared with the "mirror" PER in the next PoP.
				if cfg.PoPs > 1 && d.rng.Float64() < cfg.MVPNFraction {
					vrf = "vrf-" + cust
				}
				cr, err := newRouter(cust, "ext", netmodel.RoleCustomer, "UTC")
				if err != nil {
					return err
				}
				topo.AddCard(cr)
				card := per.Cards[s%2]
				id := fmt.Sprintf("%s-att%d", cust, 1)
				l, err := link(id, card, cr.Cards[0], "cust-"+cust, "to-"+per.Name)
				if err != nil {
					return err
				}
				perIfc := l.Other(cr.Name)
				perIfc.CustomerFacing = true
				perIfc.Peer = cust
				perIfc.PeerIP = l.Other(per.Name).IP
				// Access circuit layer 1: mostly SONET, some optical mesh.
				switch d.rng.Intn(10) {
				case 0:
					topo.AddPhysical(id+"-c1", l, netmodel.L1OpticalMesh,
						"mesh-acc-"+per.Name)
				default:
					topo.AddPhysical(id+"-c1", l, netmodel.L1SONET,
						"sonet-"+per.Name+"-a", "sonet-"+per.Name+"-b")
				}
				d.Sessions = append(d.Sessions, Session{
					PER: per.Name, Interface: perIfc.Name,
					NeighborIP: perIfc.PeerIP, Customer: cust, MVPN: vrf,
				})
				if vrf != "" {
					// Second site: same PER index in the next PoP.
					mp := (p + 1) % cfg.PoPs
					mper := pops[mp].pers[0]
					mvpnByVRF[vrf] = &MVPN{VRF: vrf, PEs: []string{per.Name, mper.Name}}
				}
			}
		}
	}
	for _, s := range d.Sessions {
		if m := mvpnByVRF[s.MVPN]; m != nil {
			d.MVPNs = append(d.MVPNs, *m)
		}
	}

	// CDN node at the first PoP's first PER.
	d.CDNNode = "cdn-" + d.popName(0)
	d.CDNServer = d.CDNNode + "-s1"
	d.CDNRouter = pops[0].pers[0].Name

	// Peering egresses at the last two PoPs (first PER each) announce the
	// agents' prefixes.
	lastA := pops[cfg.PoPs-1].pers[0].Name
	lastB := pops[(cfg.PoPs+cfg.PoPs/2)%cfg.PoPs].pers[0].Name
	if lastB == lastA && cfg.PoPs > 1 {
		lastB = pops[cfg.PoPs-2].pers[0].Name
	}
	d.PeerEgresses = []string{lastA, lastB}

	// Measurement agents, one per /24 in 198.51.x.0/24.
	for a := 0; a < 4; a++ {
		name := fmt.Sprintf("agent-%d", a+1)
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 51, byte(a), 0}), 24)
		d.Agents = append(d.Agents, name)
		d.AgentPrefix[name] = pfx
		d.AgentAddr[name] = netip.AddrFrom4([4]byte{198, 51, byte(a), 10})
	}
	return nil
}

// perList returns all provider-edge router names, sorted.
func (d *Dataset) perList() []string {
	var out []string
	for _, name := range d.Topo.RouterNames() {
		if d.Topo.Routers[name].Role == netmodel.RoleProviderEdge {
			out = append(out, name)
		}
	}
	return out
}
