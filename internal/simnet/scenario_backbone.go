package simnet

import (
	"fmt"
	"sort"
	"time"

	"grca/internal/event"
	"grca/internal/netmodel"
)

// backboneMix is the in-network packet-loss study of the paper's §I
// motivating scenario: sporadic losses observed by probe traffic between
// PoPs, whose dominant root cause decides the remediation — link
// congestion calls for capacity augmentation along the path, intradomain
// reconvergence for technologies like MPLS fast reroute. The paper
// publishes no breakdown table for this study, so the mix is a plausible
// operational blend.
var backboneMix = []struct {
	kind string
	frac float64
}{
	{event.LinkCongestion, 0.35},
	{event.OSPFReconvergence, 0.25},
	{event.InterfaceFlap, 0.15},
	{"Unknown", 0.15},
	{event.LinkLoss, 0.10},
}

func (d *Dataset) runBackboneScenario(total int) error {
	if len(d.ProbePairs) == 0 {
		return fmt.Errorf("simnet: backbone scenario requires probe pairs (PoPs >= 2)")
	}
	fracs := make([]float64, len(backboneMix))
	for i, m := range backboneMix {
		fracs[i] = m.frac
	}
	counts := allocate(total, fracs)
	for mi, m := range backboneMix {
		for i := 0; i < counts[mi]; i++ {
			if err := d.backboneIncident(m.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// backboneIncident bumps one probe pair's loss for one 5-minute bin and
// plants the cause's raw records on a link of that pair's path. Probe
// paths share backbone links, so incidents serialize network-wide with a
// gap beyond every join window.
func (d *Dataset) backboneIncident(kind string) error {
	pair := d.ProbePairs[d.rng.Intn(len(d.ProbePairs))]
	keys := []string{"backbone/all"}

	var link *netmodel.LogicalLink
	if kind != "Unknown" {
		pe, err := d.planner.Elements(pair[0], pair[1], d.Config.Start)
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(pe.Links))
		for id := range pe.Links {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		if len(ids) == 0 {
			return fmt.Errorf("simnet: empty probe path %v", pair)
		}
		link = d.Topo.Links[ids[d.rng.Intn(len(ids))]]
		keys = append(keys, "link/"+link.ID)
	}
	t, err := d.scheduleGap(15*time.Minute, keys...)
	if err != nil {
		return err
	}
	bin := d.cdnBin(t) // probe bins share the 5-minute grid
	start := d.binStart(bin)
	key := pair[0] + "|" + pair[1]
	if d.perfLoss[key] == nil {
		d.perfLoss[key] = map[int]float64{}
	}
	d.perfLoss[key][bin] = 1.5 + d.rng.Float64()*2

	where := pair[0] + ":" + pair[1]
	switch kind {
	case event.LinkCongestion:
		d.snmp(start, link.A.Router.Name, "ifutil", link.A.Name, 85+d.rng.Float64()*14)
	case event.LinkLoss:
		d.snmp(start, link.A.Router.Name, "iferrors", link.A.Name, 200+d.rng.Float64()*500)
	case event.OSPFReconvergence:
		w := d.weights[link.ID]
		d.ospfMetric(start.Add(10*time.Second), link, w+3, false)
		d.ospfMetric(start.Add(6*time.Minute), link, w, false)
	case event.InterfaceFlap:
		at := start.Add(30 * time.Second)
		up := at.Add(time.Duration(40+d.rng.Intn(40)) * time.Second)
		d.linkUpDown(at, link.A.Router.Name, link.A.Name, "down")
		d.linkUpDown(up, link.A.Router.Name, link.A.Name, "up")
		d.linkUpDown(at.Add(time.Second), link.B.Router.Name, link.B.Name, "down")
		d.linkUpDown(up.Add(time.Second), link.B.Router.Name, link.B.Name, "up")
	case "Unknown":
	default:
		return fmt.Errorf("simnet: unknown backbone incident kind %q", kind)
	}
	d.truth("backbone", kind, start, where)
	return nil
}
