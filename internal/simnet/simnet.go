// Package simnet synthesizes the operational substrate the paper's G-RCA
// deployment consumed from a live tier-1 ISP: a realistic multi-PoP
// topology (rendered as router configuration snapshots plus a layer-1
// inventory), and raw monitoring feeds — syslog, SNMP, OSPF monitor, BGP
// monitor, TACACS, workflow logs, layer-1 device logs, performance and CDN
// measurements — produced by a seeded ground-truth scenario engine.
//
// Every injected incident follows the causal cascades described in the
// paper (an interface flap escalates to a line-protocol flap and an eBGP
// flap after the hold timer; a SONET restoration rides below an interface
// flap; a CPU spike expires BGP hold timers; a costed-out router disturbs
// PIM adjacencies between PEs whose path crossed it), and the generator
// records the true root cause of every symptom so that diagnosis accuracy
// can be scored — something the paper's operators could not do.
//
// The root-cause mix of each scenario defaults to the published breakdowns
// (Tables IV, VI, and VIII), so regenerating the paper's tables is a
// matter of running the corresponding RCA application over the dataset.
package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"

	"grca/internal/conf"
	"grca/internal/netmodel"
	"grca/internal/ospf"
)

// Config parameterizes dataset generation. The zero value of every field
// takes the documented default; Seed 0 means seed 1.
type Config struct {
	Seed int64

	// Topology scale.
	PoPs           int // default 4
	PERsPerPoP     int // default 2
	SessionsPerPER int // eBGP customer sessions per PER, default 12

	// MVPNFraction of customers attach at two PoPs and run PIM between
	// their PEs (default 0.25).
	MVPNFraction float64

	// Start and Duration bound the simulated observation window
	// (defaults: 2010-01-01 UTC, 7 days).
	Start    time.Time
	Duration time.Duration

	// Scenario sizes: how many symptom incidents to inject per study.
	// Zero disables a study.
	BGPFlapIncidents  int
	CDNIncidents      int
	PIMIncidents      int
	BackboneIncidents int // in-network loss study (§I motivating scenario)

	// LineCardCrash injects the §IV-C scenario: one line card crash
	// flapping every session it carries within three minutes.
	LineCardCrash bool
	// ProvisioningBug injects the §IV-B hidden vendor bug: provisioning
	// activity on a PER that flaps customer BGP sessions via CPU, with no
	// link-layer evidence.
	ProvisioningBugIncidents int

	// RelaxRouterSpacing lets plain flap incidents (interface, line
	// protocol, unknown) of the BGP study collide on the same router —
	// only per-session separation is kept. The default strict spacing
	// keeps ground-truth attribution unambiguous; the relaxed mode exists
	// for ablations that quantify how much the fine-grained spatial model
	// buys when concurrent failures share a router.
	RelaxRouterSpacing bool

	// NoiseSyslogKinds and NoiseWorkflowKinds control how many unrelated
	// signature series the feeds carry (the §IV-B study tested 2533
	// syslog and 831 workflow series; defaults 40 and 15 at laptop scale).
	NoiseSyslogKinds   int
	NoiseWorkflowKinds int
	// NoiseEventsPerKind is the number of occurrences per noise series
	// (default 40).
	NoiseEventsPerKind int
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PoPs == 0 {
		c.PoPs = 4
	}
	if c.PERsPerPoP == 0 {
		c.PERsPerPoP = 2
	}
	if c.SessionsPerPER == 0 {
		c.SessionsPerPER = 12
	}
	if c.MVPNFraction == 0 {
		c.MVPNFraction = 0.25
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Duration == 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if c.NoiseSyslogKinds == 0 {
		c.NoiseSyslogKinds = 40
	}
	if c.NoiseWorkflowKinds == 0 {
		c.NoiseWorkflowKinds = 15
	}
	if c.NoiseEventsPerKind == 0 {
		c.NoiseEventsPerKind = 40
	}
}

// Truth is the ground-truth label for one injected symptom incident.
type Truth struct {
	// ID numbers the incident in injection order — a stable handle for
	// accuracy scorers and chaos reports to reference individual
	// incidents deterministically.
	ID int
	// Study is "bgp", "cdn", or "pim".
	Study string
	// Kind is the injected root cause label (e.g. "interface flap",
	// "external", "line-card crash").
	Kind string
	// At is the incident's anchor time.
	At time.Time
	// Where describes the affected element (session, agent, PE pair).
	Where string
}

// Session is one customer eBGP attachment.
type Session struct {
	PER        string
	Interface  string // customer-facing interface name
	NeighborIP netip.Addr
	Customer   string
	MVPN       string // VRF name when the customer is multi-site, else ""
}

// MVPN is one multi-site customer: the set of PEs carrying its VRF.
type MVPN struct {
	VRF string
	PEs []string
}

// Dataset is a generated corpus: parsed topology, its rendered
// configuration archive, the raw feeds keyed by collector source name, and
// the ground truth.
type Dataset struct {
	Config    Config
	Topo      *netmodel.Topology
	Configs   []conf.DeviceConfig
	Inventory string
	// Feeds maps collector source names to raw feed text, each sorted by
	// record time.
	Feeds map[string]string
	Truth []Truth

	Sessions []Session
	MVPNs    []MVPN
	// CDN layout: one node at the first PoP.
	CDNNode     string
	CDNServer   string
	CDNRouter   string
	Agents      []string
	AgentPrefix map[string]netip.Prefix
	AgentAddr   map[string]netip.Addr
	// PeerEgresses are the PERs announcing the agent prefixes.
	PeerEgresses []string

	rng     *rand.Rand
	feeds   map[string][]timedLine
	weights map[string]int // internal link → IGP metric
	planner *ospf.Sim      // static routing view used for incident placement

	// ProbePairs are the (ingress, egress) router pairs the in-network
	// performance monitor measures.
	ProbePairs [][2]string

	// Per-bin measurement overrides applied by scenarios before the
	// steady-state series are rendered.
	keynoteRTT map[string]map[int]float64 // agent → bin → RTT (ms)
	perfLoss   map[string]map[int]float64 // "a|b" → bin → loss percent
	busy       map[string][]time.Time     // spacing ledger per element
}

type timedLine struct {
	at   time.Time
	line string
}

// Generate builds a dataset for cfg.
func Generate(cfg Config) (*Dataset, error) {
	cfg.defaults()
	d := &Dataset{
		Config:      cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		feeds:       map[string][]timedLine{},
		AgentPrefix: map[string]netip.Prefix{},
		AgentAddr:   map[string]netip.Addr{},
		weights:     map[string]int{},
		keynoteRTT:  map[string]map[int]float64{},
		perfLoss:    map[string]map[int]float64{},
		busy:        map[string][]time.Time{},
	}
	if err := d.buildTopology(); err != nil {
		return nil, err
	}
	d.Configs = conf.Render(d.Topo)
	d.Inventory = conf.RenderInventory(d.Topo)

	d.planner = ospf.New(d.Topo, d.weights)
	d.ProbePairs = d.probePairs()
	d.emitRoutingBaseline()

	if cfg.BGPFlapIncidents > 0 {
		if err := d.runBGPScenario(cfg.BGPFlapIncidents); err != nil {
			return nil, err
		}
	}
	if cfg.ProvisioningBugIncidents > 0 {
		d.runProvisioningBug(cfg.ProvisioningBugIncidents)
	}
	if cfg.LineCardCrash {
		if err := d.runLineCardCrash(); err != nil {
			return nil, err
		}
	}
	if cfg.CDNIncidents > 0 {
		if err := d.runCDNScenario(cfg.CDNIncidents); err != nil {
			return nil, err
		}
	}
	if cfg.PIMIncidents > 0 {
		if err := d.runPIMScenario(cfg.PIMIncidents); err != nil {
			return nil, err
		}
	}
	if cfg.BackboneIncidents > 0 {
		if err := d.runBackboneScenario(cfg.BackboneIncidents); err != nil {
			return nil, err
		}
	}

	d.emitSteadyState()
	d.emitNoise()

	d.Feeds = map[string]string{}
	srcs := make([]string, 0, len(d.feeds))
	for src := range d.feeds {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		lines := d.feeds[src]
		sort.SliceStable(lines, func(i, j int) bool { return lines[i].at.Before(lines[j].at) })
		var b strings.Builder
		for _, l := range lines {
			b.WriteString(l.line)
			b.WriteByte('\n')
		}
		d.Feeds[src] = b.String()
	}
	d.feeds = nil
	return d, nil
}

// emit appends a raw line to a feed at a timestamp (for ordering).
func (d *Dataset) emit(source string, at time.Time, line string) {
	d.feeds[source] = append(d.feeds[source], timedLine{at: at, line: line})
}

// TruthBreakdown tallies the ground truth of one study as percentages.
func (d *Dataset) TruthBreakdown(study string) map[string]float64 {
	counts := map[string]int{}
	total := 0
	for _, t := range d.Truth {
		if t.Study == study {
			counts[t.Kind]++
			total++
		}
	}
	if total == 0 {
		return nil
	}
	out := map[string]float64{}
	for k, v := range counts {
		out[k] = 100 * float64(v) / float64(total)
	}
	return out
}

func (d *Dataset) popName(i int) string { return fmt.Sprintf("pop%02d", i) }
