package simnet

import (
	"fmt"
	"sort"
	"time"

	"grca/internal/event"
	"grca/internal/netmodel"
)

// spacing is the minimum separation between incidents sharing any element,
// keeping causal attributions unambiguous at generation time.
const spacing = 30 * time.Minute

// margin keeps incidents away from the observation window edges so
// baselines warm up and trailing records stay inside the window.
const margin = 3 * time.Hour

// schedule picks a random incident time such that every listed element key
// is free (no other incident within spacing), and reserves it.
func (d *Dataset) schedule(keys ...string) (time.Time, error) {
	return d.scheduleGap(spacing, keys...)
}

// scheduleGap is schedule with an explicit minimum separation.
func (d *Dataset) scheduleGap(gap time.Duration, keys ...string) (time.Time, error) {
	return d.scheduleEx(gap, keys, nil)
}

// scheduleEx picks a time clear of both reserve and avoid keys, but only
// registers the reservation under reserve keys: incidents listing a key in
// avoid keep away from reservers of that key without excluding each other.
func (d *Dataset) scheduleEx(gap time.Duration, reserve, avoid []string) (time.Time, error) {
	lo := d.Config.Start.Add(margin)
	span := d.Config.Duration - 2*margin
	if span <= 0 {
		return time.Time{}, fmt.Errorf("simnet: duration %v too short for scheduling", d.Config.Duration)
	}
	clear := func(t time.Time, keys []string) bool {
		for _, k := range keys {
			for _, used := range d.busy[k] {
				if delta := t.Sub(used); delta > -gap && delta < gap {
					return false
				}
			}
		}
		return true
	}
	for attempt := 0; attempt < 800; attempt++ {
		t := lo.Add(time.Duration(d.rng.Int63n(int64(span))))
		if !clear(t, reserve) || !clear(t, avoid) {
			continue
		}
		for _, k := range reserve {
			d.busy[k] = append(d.busy[k], t)
		}
		return t, nil
	}
	return time.Time{}, fmt.Errorf("simnet: could not place incident for %v (raise Duration or lower incident counts)", reserve)
}

// allocate distributes total across fractions with the largest-remainder
// method so the counts sum exactly to total.
func allocate(total int, fracs []float64) []int {
	counts := make([]int, len(fracs))
	rems := make([]float64, len(fracs))
	sum := 0
	for i, f := range fracs {
		exact := f * float64(total)
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		sum += counts[i]
	}
	type idxRem struct {
		i int
		r float64
	}
	order := make([]idxRem, len(fracs))
	for i := range fracs {
		order[i] = idxRem{i, rems[i]}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].r > order[b].r })
	for k := 0; sum < total && k < len(order); k++ {
		counts[order[k].i]++
		sum++
	}
	return counts
}

func (d *Dataset) truth(study, kind string, at time.Time, where string) {
	d.Truth = append(d.Truth, Truth{ID: len(d.Truth), Study: study, Kind: kind, At: at, Where: where})
}

// sessionWhere renders the location key of a session's eBGP symptom.
func sessionWhere(s Session) string { return s.PER + ":" + s.NeighborIP.String() }

// accessCircuit returns a session's access physical link.
func (d *Dataset) accessCircuit(s Session) *netmodel.PhysicalLink {
	l, ok := d.Topo.Links[s.Customer+"-att1"]
	if !ok || len(l.Phys) == 0 {
		return nil
	}
	return l.Phys[0]
}

// ------------------------------------------------------------------
// Routing baseline and steady-state feeds
// ------------------------------------------------------------------

// internalLinks returns the IGP links (both ends inside the ISP), sorted.
func (d *Dataset) internalLinks() []*netmodel.LogicalLink {
	var out []*netmodel.LogicalLink
	for _, id := range d.Topo.LinkIDs() {
		l := d.Topo.Links[id]
		if l.A.Router.Role != netmodel.RoleCustomer && l.B.Router.Role != netmodel.RoleCustomer {
			out = append(out, l)
		}
	}
	return out
}

// emitRoutingBaseline floods the initial OSPF LSDB and announces the agent
// prefixes at both peering egresses.
func (d *Dataset) emitRoutingBaseline() {
	at := d.Config.Start
	for _, l := range d.internalLinks() {
		d.ospfMetric(at, l, d.weights[l.ID], true)
	}
	for _, agent := range d.Agents {
		pfx := d.AgentPrefix[agent].String()
		for _, eg := range d.PeerEgresses {
			d.bgpAnnounce(at, pfx, eg, 100, 3)
		}
	}
}

// emitSteadyState renders the periodic measurement feeds: SNMP samples,
// inter-PoP performance probes, CDN measurements (with any scenario
// overrides applied), and CDN server load.
func (d *Dataset) emitSteadyState() {
	cfg := d.Config
	endAt := cfg.Start.Add(cfg.Duration)

	// SNMP: router CPU and backbone interface counters every 30 minutes.
	links := d.internalLinks()
	for at := cfg.Start; at.Before(endAt); at = at.Add(30 * time.Minute) {
		for _, name := range d.Topo.RouterNames() {
			r := d.Topo.Routers[name]
			if r.Role == netmodel.RoleCustomer {
				continue
			}
			d.snmp(at, name, "cpu5min", "", 20+d.rng.Float64()*30)
		}
		for _, l := range links {
			d.snmp(at, l.A.Router.Name, "ifutil", l.A.Name, 20+d.rng.Float64()*40)
			d.snmp(at, l.A.Router.Name, "iferrors", l.A.Name, d.rng.Float64()*5)
		}
	}

	// Inter-PoP performance probes, with scenario loss overrides applied.
	for _, p := range d.ProbePairs {
		overrides := d.perfLoss[p[0]+"|"+p[1]]
		base := 10 + 3*d.rng.Float64()
		bin := 0
		for at := cfg.Start; at.Before(endAt); at = at.Add(5 * time.Minute) {
			loss := d.rng.Float64() * 0.05
			if o, ok := overrides[bin]; ok {
				loss = o
			}
			d.perf(at, p[0], p[1], base+d.rng.Float64(), loss, 930+d.rng.Float64()*20)
			bin++
		}
	}

	// CDN measurements per agent per 5-minute bin with overrides.
	const baseRTT = 40.0
	for _, agent := range d.Agents {
		overrides := d.keynoteRTT[agent]
		bin := 0
		for at := cfg.Start; at.Before(endAt); at = at.Add(5 * time.Minute) {
			rtt := baseRTT + d.rng.Float64()*4 - 2
			if o, ok := overrides[bin]; ok {
				rtt = o
			}
			tput := 8800 * baseRTT / rtt * (0.95 + d.rng.Float64()*0.1)
			d.keynote(at, d.CDNServer, agent, rtt, tput)
			bin++
		}
	}

	// CDN server load every 30 minutes, nominal.
	for at := cfg.Start; at.Before(endAt); at = at.Add(30 * time.Minute) {
		d.serverLog(at, "load", d.CDNServer, fmt.Sprintf("%d", 20+d.rng.Intn(40)))
	}
}

// probePairs selects the (ingress, egress) router pairs the in-network
// performance monitor measures: the first PER of each PoP, full mesh at
// small scale, ring plus hub star beyond eight PoPs (a full mesh is
// quadratic; real probe deployments thin it the same way).
func (d *Dataset) probePairs() [][2]string {
	var probes []string
	for p := 0; p < d.Config.PoPs; p++ {
		probes = append(probes, fmt.Sprintf("%s-per1", d.popName(p)))
	}
	var pairs [][2]string
	if d.Config.PoPs <= 8 {
		for i := 0; i < len(probes); i++ {
			for j := i + 1; j < len(probes); j++ {
				pairs = append(pairs, [2]string{probes[i], probes[j]})
			}
		}
	} else {
		for i := 1; i < len(probes); i++ {
			pairs = append(pairs, [2]string{probes[0], probes[i]})
			pairs = append(pairs, [2]string{probes[i-1], probes[i]})
		}
	}
	return pairs
}

// emitNoise produces the unrelated signature series of §IV-B: benign
// syslog message kinds and workflow actions scattered across routers.
func (d *Dataset) emitNoise() {
	cfg := d.Config
	routers := d.perList()
	span := int64(cfg.Duration)
	for k := 0; k < cfg.NoiseSyslogKinds; k++ {
		tag := fmt.Sprintf("%%NOISE%02d-5-NOTICE: routine condition %d", k, k)
		for i := 0; i < cfg.NoiseEventsPerKind; i++ {
			at := cfg.Start.Add(time.Duration(d.rng.Int63n(span)))
			d.syslog(at, routers[d.rng.Intn(len(routers))], tag)
		}
	}
	for k := 0; k < cfg.NoiseWorkflowKinds; k++ {
		action := fmt.Sprintf("wf-task-%02d", k)
		for i := 0; i < cfg.NoiseEventsPerKind; i++ {
			at := cfg.Start.Add(time.Duration(d.rng.Int63n(span)))
			d.workflow(at, routers[d.rng.Intn(len(routers))],
				fmt.Sprintf("TKT%05d", d.rng.Intn(100000)), action)
		}
	}
}

// ------------------------------------------------------------------
// BGP flap study (Table IV)
// ------------------------------------------------------------------

// bgpMix is the Table IV root-cause composition. Router reboots are
// handled separately since one reboot flaps every session on the router.
var bgpMix = []struct {
	kind string
	frac float64
}{
	{event.InterfaceFlap, 0.6394},
	{event.LineProtoFlap, 0.1115},
	{"Unknown", 0.1095},
	{event.CPUHighSpike, 0.0644},
	{event.EBGPHoldTimerExpired, 0.0486},
	{event.CustomerResetSession, 0.0184},
	{event.SONETRestoration, 0.0029},
	{event.OpticalFast, 0.0014},
	{event.OpticalRegular, 0.0004},
	{event.CPUHighAverage, 0.0002},
}

const rebootFrac = 0.0033

func (d *Dataset) runBGPScenario(total int) error {
	// Reboot incidents first: each contributes SessionsPerPER flaps.
	perSessions := map[string][]Session{}
	for _, s := range d.Sessions {
		perSessions[s.PER] = append(perSessions[s.PER], s)
	}
	pers := d.perList()

	rebootFlaps := int(rebootFrac * float64(total))
	reboots := rebootFlaps / d.Config.SessionsPerPER
	if rebootFlaps > 0 && reboots == 0 && total >= 1000 {
		reboots = 1
	}
	remaining := total - reboots*d.Config.SessionsPerPER
	if remaining < 0 {
		remaining = 0
	}

	for i := 0; i < reboots; i++ {
		per := pers[d.rng.Intn(len(pers))]
		keys := []string{"router/" + per}
		for _, s := range perSessions[per] {
			keys = append(keys, "session/"+sessionWhere(s))
		}
		t, err := d.schedule(keys...)
		if err != nil {
			return err
		}
		d.reboot(t, per)
		for _, s := range perSessions[per] {
			down := t.Add(time.Duration(5+d.rng.Intn(10)) * time.Second)
			up := t.Add(time.Duration(150+d.rng.Intn(120)) * time.Second)
			d.bgpAdj(down, per, s.NeighborIP.String(), "Down", "")
			d.bgpAdj(up, per, s.NeighborIP.String(), "Up", "")
			d.truth("bgp", event.RouterReboot, down, sessionWhere(s))
		}
	}

	fracs := make([]float64, len(bgpMix))
	for i, m := range bgpMix {
		fracs[i] = m.frac
	}
	counts := allocate(remaining, fracs)

	for mi, m := range bgpMix {
		for i := 0; i < counts[mi]; i++ {
			if err := d.bgpIncident(m.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// pickSession selects a random session, optionally constrained to an
// access-circuit layer-1 kind.
func (d *Dataset) pickSession(wantKind netmodel.L1Kind, constrained bool) (Session, error) {
	for attempt := 0; attempt < 200; attempt++ {
		s := d.Sessions[d.rng.Intn(len(d.Sessions))]
		if !constrained {
			return s, nil
		}
		if p := d.accessCircuit(s); p != nil && p.Kind == wantKind {
			return s, nil
		}
	}
	return Session{}, fmt.Errorf("simnet: no session with required access circuit kind")
}

func (d *Dataset) bgpIncident(kind string) error {
	switch kind {
	case event.InterfaceFlap:
		s, err := d.pickSession(0, false)
		if err != nil {
			return err
		}
		return d.customerFlap(s, "", "bgp", event.InterfaceFlap)
	case event.SONETRestoration:
		s, err := d.pickSession(netmodel.L1SONET, true)
		if err != nil {
			return err
		}
		return d.customerFlap(s, "sonet", "bgp", event.SONETRestoration)
	case event.OpticalFast:
		s, err := d.pickSession(netmodel.L1OpticalMesh, true)
		if err != nil {
			return err
		}
		return d.customerFlap(s, "fast", "bgp", event.OpticalFast)
	case event.OpticalRegular:
		s, err := d.pickSession(netmodel.L1OpticalMesh, true)
		if err != nil {
			return err
		}
		return d.customerFlap(s, "regular", "bgp", event.OpticalRegular)
	case event.LineProtoFlap:
		return d.lineProtoIncident()
	case event.CPUHighSpike:
		return d.cpuIncident(true)
	case event.CPUHighAverage:
		return d.cpuIncident(false)
	case event.EBGPHoldTimerExpired:
		return d.simpleFlap(func(t time.Time, s Session) {
			d.bgpHTE(t, s.PER, s.NeighborIP.String())
		}, event.EBGPHoldTimerExpired)
	case event.CustomerResetSession:
		return d.simpleFlap(func(t time.Time, s Session) {
			d.bgpCustomerReset(t, s.PER, s.NeighborIP.String())
		}, event.CustomerResetSession)
	case "Unknown":
		return d.simpleFlap(nil, "Unknown")
	}
	return fmt.Errorf("simnet: unknown bgp incident kind %q", kind)
}

// customerFlap is the core cascade: (optional layer-1 restoration) →
// interface flap → line-protocol flap → eBGP flap (fast external fallover
// or hold-timer expiry) → PIM adjacency changes at remote MVPN PEs.
// study/truthKind label the ground truth ("bgp" study labels the eBGP
// flap; "pim" labels the remote adjacency change).
func (d *Dataset) customerFlap(s Session, l1 string, study, truthKind string) error {
	keys := []string{"session/" + sessionWhere(s)}
	var avoid []string
	// Plain interface flaps may share a router under relaxed spacing;
	// layer-1-caused flaps always keep strict spacing because their access
	// circuits share layer-1 devices PER-wide.
	if d.Config.RelaxRouterSpacing && l1 == "" {
		avoid = []string{"router/" + s.PER}
	} else {
		keys = append(keys, "router/"+s.PER)
	}
	if s.MVPN != "" {
		for _, m := range d.MVPNs {
			if m.VRF == s.MVPN {
				keys = append(keys, "pair/"+m.PEs[1]+":"+m.PEs[0])
			}
		}
	}
	t, err := d.scheduleEx(spacing, keys, avoid)
	if err != nil {
		return err
	}

	if l1 != "" {
		circuit := d.accessCircuit(s)
		dev := circuit.L1[d.rng.Intn(len(circuit.L1))]
		switch l1 {
		case "sonet":
			d.layer1(t.Add(-2*time.Second), dev.Name, "SONET-APS", "protection switch")
		default:
			d.layer1(t.Add(-2*time.Second), dev.Name, "MESH-RESTORE", l1)
		}
	}

	fast := d.rng.Intn(2) == 0
	var down, up time.Time
	ifUp := t.Add(time.Duration(30+d.rng.Intn(60)) * time.Second)
	if !fast {
		// The interface stays down past the hold timer.
		ifUp = t.Add(time.Duration(200+d.rng.Intn(200)) * time.Second)
	}
	d.linkUpDown(t, s.PER, s.Interface, "down")
	d.lineProtoUpDown(t.Add(time.Second), s.PER, s.Interface, "down")
	d.linkUpDown(ifUp, s.PER, s.Interface, "up")
	d.lineProtoUpDown(ifUp.Add(time.Second), s.PER, s.Interface, "up")

	if fast {
		down = t.Add(time.Second)
	} else {
		down = t.Add(180 * time.Second)
		d.bgpHTE(down, s.PER, s.NeighborIP.String())
	}
	up = ifUp.Add(time.Duration(10+d.rng.Intn(20)) * time.Second)
	if up.Before(down) {
		up = down.Add(30 * time.Second)
	}
	d.bgpAdj(down, s.PER, s.NeighborIP.String(), "Down", "")
	d.bgpAdj(up, s.PER, s.NeighborIP.String(), "Up", "")
	if study == "bgp" {
		d.truth("bgp", truthKind, down, sessionWhere(s))
	}

	// Remote MVPN PEs lose their adjacency to this PE.
	if s.MVPN != "" {
		for _, m := range d.MVPNs {
			if m.VRF != s.MVPN {
				continue
			}
			reporter, about := m.PEs[1], m.PEs[0]
			if about != s.PER {
				reporter, about = m.PEs[0], m.PEs[1]
			}
			nd := t.Add(2 * time.Second)
			d.pimVRFChange(nd, reporter, m.VRF, about, "DOWN")
			d.pimVRFChange(ifUp.Add(20*time.Second), reporter, m.VRF, about, "UP")
			if study == "pim" {
				d.truth("pim", truthKind, nd, reporter+":"+about)
			}
		}
	}
	return nil
}

// lineProtoIncident flaps only the line protocol (keepalive loss without a
// physical transition); the session drops via hold-timer expiry.
func (d *Dataset) lineProtoIncident() error {
	s, err := d.pickSession(0, false)
	if err != nil {
		return err
	}
	t, err := d.flapSlot(s)
	if err != nil {
		return err
	}
	protoUp := t.Add(time.Duration(200+d.rng.Intn(200)) * time.Second)
	d.lineProtoUpDown(t, s.PER, s.Interface, "down")
	d.lineProtoUpDown(protoUp, s.PER, s.Interface, "up")
	down := t.Add(180 * time.Second)
	d.bgpHTE(down, s.PER, s.NeighborIP.String())
	d.bgpAdj(down, s.PER, s.NeighborIP.String(), "Down", "")
	d.bgpAdj(protoUp.Add(15*time.Second), s.PER, s.NeighborIP.String(), "Up", "")
	d.truth("bgp", event.LineProtoFlap, down, sessionWhere(s))
	return nil
}

// cpuIncident drives sessions down through CPU exhaustion: a syslog spike
// (or a high 5-minute SNMP average) plus hold-timer expiries.
func (d *Dataset) cpuIncident(spike bool) error {
	pers := d.perList()
	per := pers[d.rng.Intn(len(pers))]
	var sessions []Session
	for _, s := range d.Sessions {
		if s.PER == per {
			sessions = append(sessions, s)
		}
	}
	if len(sessions) == 0 {
		return fmt.Errorf("simnet: PER %s has no sessions", per)
	}
	victim := sessions[d.rng.Intn(len(sessions))]
	t, err := d.schedule("router/"+per, "session/"+sessionWhere(victim))
	if err != nil {
		return err
	}
	kind := event.CPUHighAverage
	if spike {
		d.cpuSpike(t, per, 92+d.rng.Intn(8))
		kind = event.CPUHighSpike
	} else {
		bin := t.Truncate(5 * time.Minute)
		d.snmp(bin, per, "cpu5min", "", 85+d.rng.Float64()*10)
	}
	down := t.Add(time.Duration(20+d.rng.Intn(40)) * time.Second)
	d.bgpHTE(down, per, victim.NeighborIP.String())
	d.bgpAdj(down, per, victim.NeighborIP.String(), "Down", "")
	d.bgpAdj(down.Add(time.Duration(60+d.rng.Intn(60))*time.Second), per, victim.NeighborIP.String(), "Up", "")
	d.truth("bgp", kind, down, sessionWhere(victim))
	return nil
}

// flapSlot schedules a plain single-session flap, honoring the relaxed
// router-spacing mode.
func (d *Dataset) flapSlot(s Session) (time.Time, error) {
	if d.Config.RelaxRouterSpacing {
		return d.scheduleEx(spacing,
			[]string{"session/" + sessionWhere(s)},
			[]string{"router/" + s.PER})
	}
	return d.schedule("session/"+sessionWhere(s), "router/"+s.PER)
}

// simpleFlap drops one session with an optional accompanying signature
// (hold-timer notification, customer reset) and no deeper evidence.
func (d *Dataset) simpleFlap(pre func(t time.Time, s Session), truthKind string) error {
	s, err := d.pickSession(0, false)
	if err != nil {
		return err
	}
	var t time.Time
	if pre == nil { // the "Unknown" incident: relax-eligible
		t, err = d.flapSlot(s)
	} else {
		t, err = d.schedule("session/"+sessionWhere(s), "router/"+s.PER)
	}
	if err != nil {
		return err
	}
	if pre != nil {
		pre(t, s)
	}
	d.bgpAdj(t, s.PER, s.NeighborIP.String(), "Down", "")
	d.bgpAdj(t.Add(time.Duration(45+d.rng.Intn(60))*time.Second), s.PER, s.NeighborIP.String(), "Up", "")
	d.truth("bgp", truthKind, t, sessionWhere(s))
	return nil
}

// runProvisioningBug injects the §IV-B hidden vendor bug: provisioning
// activity that flaps unrelated customer sessions through CPU exhaustion,
// leaving no link-layer evidence.
func (d *Dataset) runProvisioningBug(count int) {
	pers := d.perList()
	for i := 0; i < count; i++ {
		per := pers[d.rng.Intn(len(pers))]
		var sessions []Session
		for _, s := range d.Sessions {
			if s.PER == per {
				sessions = append(sessions, s)
			}
		}
		if len(sessions) == 0 {
			continue
		}
		victim := sessions[d.rng.Intn(len(sessions))]
		t, err := d.schedule("router/"+per, "session/"+sessionWhere(victim))
		if err != nil {
			continue // best effort: the study needs many, not all
		}
		d.workflow(t, per, fmt.Sprintf("TKT%05d", d.rng.Intn(100000)), "provision-customer")
		d.cpuSpike(t.Add(30*time.Second), per, 93+d.rng.Intn(6))
		down := t.Add(time.Duration(60+d.rng.Intn(60)) * time.Second)
		d.bgpHTE(down, per, victim.NeighborIP.String())
		d.bgpAdj(down, per, victim.NeighborIP.String(), "Down", "")
		d.bgpAdj(down.Add(90*time.Second), per, victim.NeighborIP.String(), "Up", "")
		d.truth("bgp", "provisioning bug", down, sessionWhere(victim))
	}
}

// runLineCardCrash injects the §IV-C scenario: one customer-facing line
// card crashes, flapping every session it carries within three minutes.
// No card-level log exists — the root cause is unobservable.
func (d *Dataset) runLineCardCrash() error {
	// Choose the PER with the most sessions on card 0.
	perSessions := map[string][]Session{}
	for _, s := range d.Sessions {
		ifc, ok := d.Topo.InterfaceByName(s.PER, s.Interface)
		if ok && ifc.Card.Slot == 0 {
			perSessions[s.PER] = append(perSessions[s.PER], s)
		}
	}
	best := ""
	for per, ss := range perSessions {
		if best == "" || len(ss) > len(perSessions[best]) || (len(ss) == len(perSessions[best]) && per < best) {
			best = per
		}
	}
	if best == "" {
		return fmt.Errorf("simnet: no card-0 sessions for line-card crash")
	}
	victims := perSessions[best]
	keys := []string{"router/" + best}
	for _, s := range victims {
		keys = append(keys, "session/"+sessionWhere(s))
	}
	t, err := d.schedule(keys...)
	if err != nil {
		return err
	}
	for _, s := range victims {
		start := t.Add(time.Duration(d.rng.Intn(150)) * time.Second)
		up := start.Add(time.Duration(30+d.rng.Intn(60)) * time.Second)
		d.linkUpDown(start, best, s.Interface, "down")
		d.linkUpDown(up, best, s.Interface, "up")
		d.bgpAdj(start.Add(time.Second), best, s.NeighborIP.String(), "Down", "")
		d.bgpAdj(up.Add(10*time.Second), best, s.NeighborIP.String(), "Up", "")
		d.truth("bgp", "line-card crash", start.Add(time.Second), sessionWhere(s))
	}
	return nil
}
