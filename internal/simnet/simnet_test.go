package simnet

import (
	"math"
	"strings"
	"testing"
	"time"

	"grca/internal/collector"
	"grca/internal/conf"
	"grca/internal/event"
	"grca/internal/netmodel"
	"grca/internal/store"
)

func smallConfig() Config {
	return Config{
		Seed:             7,
		PoPs:             3,
		PERsPerPoP:       2,
		SessionsPerPER:   8,
		Duration:         4 * 24 * time.Hour,
		BGPFlapIncidents: 120,
		CDNIncidents:     60,
		PIMIncidents:     60,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for src, text := range a.Feeds {
		if b.Feeds[src] != text {
			t.Errorf("feed %s differs between runs with identical seed", src)
		}
	}
	if len(a.Truth) != len(b.Truth) {
		t.Error("truth differs between runs")
	}
	c, err := Generate(Config{Seed: 8, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 4 * 24 * time.Hour, BGPFlapIncidents: 120})
	if err != nil {
		t.Fatal(err)
	}
	if c.Feeds[collector.SourceSyslog] == a.Feeds[collector.SourceSyslog] {
		t.Error("different seeds produced identical syslog")
	}
}

func TestTopologyShape(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cores, pers, custs := 0, 0, 0
	for _, r := range d.Topo.Routers {
		switch r.Role {
		case netmodel.RoleCore:
			cores++
		case netmodel.RoleProviderEdge:
			pers++
		case netmodel.RoleCustomer:
			custs++
		}
	}
	if cores != 6 || pers != 6 || custs != 48 {
		t.Errorf("topology: cores=%d pers=%d custs=%d", cores, pers, custs)
	}
	if len(d.Sessions) != 48 {
		t.Errorf("sessions = %d", len(d.Sessions))
	}
	if len(d.MVPNs) == 0 {
		t.Error("no MVPNs generated")
	}
	if len(d.PeerEgresses) != 2 || d.PeerEgresses[0] == d.PeerEgresses[1] {
		t.Errorf("peer egresses = %v", d.PeerEgresses)
	}
	// Rendered configs parse back into an equivalent topology.
	topo, err := conf.Parse(d.Configs, d.Inventory)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != len(d.Topo.Routers) || len(topo.Links) != len(d.Topo.Links) {
		t.Errorf("config round trip: %d/%d routers, %d/%d links",
			len(topo.Routers), len(d.Topo.Routers), len(topo.Links), len(d.Topo.Links))
	}
}

func TestTruthMixMatchesTables(t *testing.T) {
	cfg := smallConfig()
	cfg.BGPFlapIncidents = 2000
	cfg.CDNIncidents = 0
	cfg.PIMIncidents = 0
	cfg.Duration = 28 * 24 * time.Hour
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := d.TruthBreakdown("bgp")
	// Shape checks against Table IV.
	if math.Abs(b[event.InterfaceFlap]-63.94) > 3 {
		t.Errorf("interface flap share = %.2f, want ≈63.94", b[event.InterfaceFlap])
	}
	if math.Abs(b[event.LineProtoFlap]-11.15) > 2 {
		t.Errorf("line proto share = %.2f", b[event.LineProtoFlap])
	}
	if math.Abs(b["Unknown"]-10.95) > 2 {
		t.Errorf("unknown share = %.2f", b["Unknown"])
	}
	if b[event.CPUHighSpike] < 3 || b[event.CPUHighSpike] > 10 {
		t.Errorf("cpu spike share = %.2f", b[event.CPUHighSpike])
	}
	if d.TruthBreakdown("nope") != nil {
		t.Error("unknown study breakdown should be nil")
	}
}

func TestFeedsParseCleanly(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := conf.Parse(d.Configs, d.Inventory)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	c := collector.New(topo, st, d.Config.Start.Year())
	for _, src := range []string{
		collector.SourceSyslog, collector.SourceSNMP, collector.SourceOSPFMon,
		collector.SourceBGPMon, collector.SourceTACACS, collector.SourceWorkflow,
		collector.SourceLayer1, collector.SourcePerfMon, collector.SourceKeynote,
		collector.SourceServer,
	} {
		if err := c.Ingest(src, strings.NewReader(d.Feeds[src])); err != nil {
			t.Fatalf("ingest %s: %v", src, err)
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if c.Malformed.Count != 0 {
		t.Fatalf("malformed lines: %d, samples %v", c.Malformed.Count, c.Malformed.Samples)
	}

	// Symptom volumes roughly match the injected incident counts. The PIM
	// study's customer-facing flaps (≈69% of 60 incidents) also flap the
	// eBGP session, on top of the 120 BGP-study incidents.
	flaps := st.Count(event.EBGPFlap)
	if flaps < 120 || flaps > 200 {
		t.Errorf("eBGP flaps = %d, want ≈120+41", flaps)
	}
	pim := st.Count(event.PIMAdjacencyChange)
	if pim < 40 {
		t.Errorf("PIM adjacency changes = %d, want ≥ 40", pim)
	}
	rtt := st.Count(event.CDNRTTIncrease)
	if rtt < 45 || rtt > 90 {
		t.Errorf("CDN RTT increases = %d, want ≈60", rtt)
	}
	// Diagnostic signatures from the cascades are present.
	for _, name := range []string{
		event.InterfaceFlap, event.LineProtoFlap, event.EBGPHoldTimerExpired,
		event.CPUHighSpike, event.OSPFReconvergence, event.LinkCostOutDown,
		event.RouterCostInOut, event.PIMConfigChange, event.CDNPolicyChange,
		event.LinkCongestion, event.CustomerResetSession,
	} {
		if st.Count(name) == 0 {
			t.Errorf("no %q events materialized", name)
		}
	}
}

func TestLineCardCrashScenario(t *testing.T) {
	cfg := Config{Seed: 3, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 10,
		Duration: 2 * 24 * time.Hour, LineCardCrash: true}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var crash []Truth
	for _, tr := range d.Truth {
		if tr.Kind == "line-card crash" {
			crash = append(crash, tr)
		}
	}
	if len(crash) < 4 {
		t.Fatalf("line-card crash flaps = %d, want several", len(crash))
	}
	// All within three minutes, all on one router.
	lo, hi := crash[0].At, crash[0].At
	for _, tr := range crash {
		if tr.At.Before(lo) {
			lo = tr.At
		}
		if tr.At.After(hi) {
			hi = tr.At
		}
		if !strings.HasPrefix(tr.Where, strings.SplitN(crash[0].Where, ":", 2)[0]) {
			t.Errorf("crash truth on unexpected router: %s", tr.Where)
		}
	}
	if hi.Sub(lo) > 3*time.Minute {
		t.Errorf("crash spread = %v, want ≤ 3m", hi.Sub(lo))
	}
}

func TestProvisioningBugScenario(t *testing.T) {
	cfg := Config{Seed: 5, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 10,
		Duration: 7 * 24 * time.Hour, ProvisioningBugIncidents: 20}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tr := range d.Truth {
		if tr.Kind == "provisioning bug" {
			n++
		}
	}
	if n < 15 {
		t.Errorf("provisioning bug incidents = %d, want ≈20", n)
	}
	if !strings.Contains(d.Feeds[collector.SourceWorkflow], "provision-customer") {
		t.Error("workflow feed missing provisioning records")
	}
}

func TestSchedulingExhaustion(t *testing.T) {
	// An impossible density must fail loudly, not hang or silently drop.
	cfg := Config{Seed: 1, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 2,
		Duration: 12 * time.Hour, BGPFlapIncidents: 5000}
	if _, err := Generate(cfg); err == nil {
		t.Error("over-dense scenario accepted")
	}
	// A too-short window fails in schedule.
	cfg = Config{Seed: 1, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 2,
		Duration: time.Hour, BGPFlapIncidents: 10}
	if _, err := Generate(cfg); err == nil {
		t.Error("too-short duration accepted")
	}
}

func TestAllocate(t *testing.T) {
	counts := allocate(100, []float64{0.5, 0.3, 0.2})
	if counts[0] != 50 || counts[1] != 30 || counts[2] != 20 {
		t.Errorf("allocate = %v", counts)
	}
	counts = allocate(7, []float64{0.5, 0.5})
	if counts[0]+counts[1] != 7 {
		t.Errorf("allocate sum = %v", counts)
	}
	counts = allocate(0, []float64{1})
	if counts[0] != 0 {
		t.Errorf("allocate(0) = %v", counts)
	}
}
