package simnet

import (
	"fmt"
	"sort"
	"time"

	"grca/internal/event"
	"grca/internal/netmodel"
	"grca/internal/ospf"
)

// ------------------------------------------------------------------
// CDN study (Table VI)
// ------------------------------------------------------------------

// cdnMix is the Table VI root-cause composition. "external" degradations
// have no evidence inside the network (the paper's "Outside of our
// network" 74.83%).
var cdnMix = []struct {
	kind string
	frac float64
}{
	{"external", 0.7483},
	{event.BGPEgressChange, 0.0571},
	{event.InterfaceFlap, 0.0465},
	{event.OSPFReconvergence, 0.0416},
	{event.CDNPolicyChange, 0.0383},
	{event.LinkCongestion, 0.0350},
	{event.LinkLoss, 0.0332},
}

// cdnBin converts a time to the agent measurement bin index.
func (d *Dataset) cdnBin(t time.Time) int {
	return int(t.Sub(d.Config.Start) / (5 * time.Minute))
}

func (d *Dataset) binStart(bin int) time.Time {
	return d.Config.Start.Add(time.Duration(bin) * 5 * time.Minute)
}

// nearEgress returns the hot-potato egress for traffic leaving the CDN
// router, per the static planning weights.
func (d *Dataset) nearEgress() string {
	best, bestDist := "", 0
	for _, eg := range d.PeerEgresses {
		dist := d.planner.Distance(d.CDNRouter, eg, d.Config.Start)
		if best == "" || dist < bestDist || (dist == bestDist && eg < best) {
			best, bestDist = eg, dist
		}
	}
	return best
}

// cdnPathLink picks one backbone link on the CDN router → egress path.
func (d *Dataset) cdnPathLink() (*netmodel.LogicalLink, error) {
	pe, err := d.planner.Elements(d.CDNRouter, d.nearEgress(), d.Config.Start)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(pe.Links))
	for id := range pe.Links {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("simnet: empty CDN path")
	}
	sort.Strings(ids)
	return d.Topo.Links[ids[d.rng.Intn(len(ids))]], nil
}

func (d *Dataset) runCDNScenario(total int) error {
	fracs := make([]float64, len(cdnMix))
	for i, m := range cdnMix {
		fracs[i] = m.frac
	}
	counts := allocate(total, fracs)
	for mi, m := range cdnMix {
		for i := 0; i < counts[mi]; i++ {
			if err := d.cdnIncident(m.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// cdnIncident degrades one agent's RTT for one measurement bin and plants
// the cause's raw records.
func (d *Dataset) cdnIncident(kind string) error {
	agent := d.Agents[d.rng.Intn(len(d.Agents))]
	// All agents measure through the same node, ingress, and (mostly) the
	// same backbone path, so a network-side cause for one agent's
	// degradation temporally adjacent to another agent's incident would
	// genuinely explain both. Incidents therefore serialize node-wide,
	// with a gap comfortably beyond every CDN join window.
	keys := []string{"cdn/" + d.CDNNode}

	var link *netmodel.LogicalLink
	switch kind {
	case event.InterfaceFlap, event.OSPFReconvergence, event.LinkCongestion, event.LinkLoss:
		l, err := d.cdnPathLink()
		if err != nil {
			return err
		}
		link = l
		keys = append(keys, "link/"+l.ID)
	case event.BGPEgressChange:
		keys = append(keys, "egress/"+d.nearEgress())
	}
	t, err := d.scheduleGap(15*time.Minute, keys...)
	if err != nil {
		return err
	}
	bin := d.cdnBin(t)
	start := d.binStart(bin)
	if d.keynoteRTT[agent] == nil {
		d.keynoteRTT[agent] = map[int]float64{}
	}
	d.keynoteRTT[agent][bin] = 100 + d.rng.Float64()*40

	where := d.CDNServer + ":" + agent
	switch kind {
	case "external":
		d.truth("cdn", "external", start, where)
	case event.BGPEgressChange:
		eg := d.nearEgress()
		pfx := d.AgentPrefix[agent].String()
		d.bgpWithdraw(start.Add(-time.Minute), pfx, eg)
		d.bgpAnnounce(start.Add(6*time.Minute), pfx, eg, 100, 3)
		d.truth("cdn", event.BGPEgressChange, start, where)
	case event.InterfaceFlap:
		at := start.Add(30 * time.Second)
		up := at.Add(time.Duration(40+d.rng.Intn(40)) * time.Second)
		d.linkUpDown(at, link.A.Router.Name, link.A.Name, "down")
		d.linkUpDown(up, link.A.Router.Name, link.A.Name, "up")
		d.linkUpDown(at.Add(time.Second), link.B.Router.Name, link.B.Name, "down")
		d.linkUpDown(up.Add(time.Second), link.B.Router.Name, link.B.Name, "up")
		d.truth("cdn", event.InterfaceFlap, start, where)
	case event.OSPFReconvergence:
		// A traffic-engineering weight tweak: reconvergence without a
		// cost-out. The revert happens inside this incident's own join
		// window (it explains the same degradation) and well clear of the
		// next incident's.
		w := d.weights[link.ID]
		d.ospfMetric(start.Add(10*time.Second), link, w+3, false)
		d.ospfMetric(start.Add(6*time.Minute), link, w, false)
		d.truth("cdn", event.OSPFReconvergence, start, where)
	case event.CDNPolicyChange:
		d.serverLog(start.Add(10*time.Second), "policy", d.CDNNode,
			fmt.Sprintf("rebalance-%d", d.rng.Intn(100)))
		d.truth("cdn", event.CDNPolicyChange, start, where)
	case event.LinkCongestion:
		d.snmp(start, link.A.Router.Name, "ifutil", link.A.Name, 85+d.rng.Float64()*14)
		d.truth("cdn", event.LinkCongestion, start, where)
	case event.LinkLoss:
		d.snmp(start, link.A.Router.Name, "iferrors", link.A.Name, 150+d.rng.Float64()*400)
		d.truth("cdn", event.LinkLoss, start, where)
	default:
		return fmt.Errorf("simnet: unknown cdn incident kind %q", kind)
	}
	return nil
}

// ------------------------------------------------------------------
// PIM / MVPN study (Table VIII)
// ------------------------------------------------------------------

// pimMix is the Table VIII root-cause composition.
var pimMix = []struct {
	kind string
	frac float64
}{
	{event.InterfaceFlap, 0.6921},
	{event.OSPFReconvergence, 0.1036},
	{event.RouterCostInOut, 0.1034},
	{event.PIMConfigChange, 0.0404},
	{event.PIMUplinkAdjacencyChange, 0.0195},
	{"Unknown", 0.0176},
	{event.LinkCostOutDown, 0.0150},
	{event.LinkCostInUp, 0.0084},
}

func (d *Dataset) runPIMScenario(total int) error {
	if len(d.MVPNs) == 0 {
		return fmt.Errorf("simnet: PIM scenario requires MVPN customers (raise MVPNFraction)")
	}
	fracs := make([]float64, len(pimMix))
	for i, m := range pimMix {
		fracs[i] = m.frac
	}
	counts := allocate(total, fracs)
	for mi, m := range pimMix {
		for i := 0; i < counts[mi]; i++ {
			if err := d.pimIncident(m.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// pimPathElements returns the routers and links between an MVPN's PEs.
func (d *Dataset) pimPathElements(m MVPN) (ospf.PathElements, error) {
	return d.planner.Elements(m.PEs[0], m.PEs[1], d.Config.Start)
}

func (d *Dataset) pimIncident(kind string) error {
	m := d.MVPNs[d.rng.Intn(len(d.MVPNs))]
	reporter, about := m.PEs[1], m.PEs[0]
	pairKey := "pair/" + reporter + ":" + about
	where := reporter + ":" + about

	blip := func(t time.Time) {
		d.pimVRFChange(t, reporter, m.VRF, about, "DOWN")
		d.pimVRFChange(t.Add(time.Duration(45+d.rng.Intn(60))*time.Second), reporter, m.VRF, about, "UP")
	}

	switch kind {
	case event.InterfaceFlap:
		// Customer-facing interface flap at the far PE: reuse the shared
		// cascade, labeling the PIM symptom.
		for _, s := range d.Sessions {
			if s.MVPN == m.VRF {
				return d.customerFlap(s, "", "pim", event.InterfaceFlap)
			}
		}
		return fmt.Errorf("simnet: MVPN %s has no session", m.VRF)

	case event.OSPFReconvergence, event.LinkCostOutDown, event.LinkCostInUp:
		pe, err := d.pimPathElements(m)
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(pe.Links))
		for id := range pe.Links {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		if len(ids) == 0 {
			return fmt.Errorf("simnet: empty PE path for %s", m.VRF)
		}
		link := d.Topo.Links[ids[d.rng.Intn(len(ids))]]
		t, err := d.schedule(pairKey, "link/"+link.ID)
		if err != nil {
			return err
		}
		w := d.weights[link.ID]
		switch kind {
		case event.OSPFReconvergence:
			d.ospfMetric(t, link, w+3, false)
			d.ospfMetric(t.Add(20*time.Minute), link, w, false)
		case event.LinkCostOutDown:
			d.ospfMetric(t, link, 65535, false)
			// Quiet revert: PIM re-converged make-before-break.
			d.ospfMetric(t.Add(20*time.Minute), link, w, false)
		case event.LinkCostInUp:
			d.ospfMetric(t.Add(-20*time.Minute), link, 65535, false)
			d.ospfMetric(t, link, w, false)
		}
		blip(t.Add(5 * time.Second))
		d.truth("pim", kind, t.Add(5*time.Second), where)
		return nil

	case event.RouterCostInOut:
		pe, err := d.pimPathElements(m)
		if err != nil {
			return err
		}
		var cores []string
		for r := range pe.Routers {
			if d.Topo.Routers[r].Role == netmodel.RoleCore {
				cores = append(cores, r)
			}
		}
		sort.Strings(cores)
		if len(cores) == 0 {
			return fmt.Errorf("simnet: no core router on PE path for %s", m.VRF)
		}
		core := cores[d.rng.Intn(len(cores))]
		var links []*netmodel.LogicalLink
		for _, l := range d.internalLinks() {
			if l.A.Router.Name == core || l.B.Router.Name == core {
				links = append(links, l)
			}
		}
		keys := []string{pairKey, "router/" + core}
		for _, l := range links {
			keys = append(keys, "link/"+l.ID)
		}
		t, err := d.schedule(keys...)
		if err != nil {
			return err
		}
		for i, l := range links {
			at := t.Add(time.Duration(i*5) * time.Second)
			d.tacacs(at.Add(-2*time.Second), core, "ops", "cost-out interface "+ifNameOn(l, core))
			d.ospfMetric(at, l, 65535, false)
		}
		// Quiet restore after maintenance.
		for i, l := range links {
			d.ospfMetric(t.Add(25*time.Minute+time.Duration(i*5)*time.Second), l, d.weights[l.ID], false)
		}
		blip(t.Add(10 * time.Second))
		d.truth("pim", event.RouterCostInOut, t.Add(10*time.Second), where)
		return nil

	case event.PIMConfigChange:
		t, err := d.schedule(pairKey, "router/"+about)
		if err != nil {
			return err
		}
		d.tacacs(t, about, "prov", "mvpn "+m.VRF+" remove")
		d.pimVRFChange(t.Add(5*time.Second), reporter, m.VRF, about, "DOWN")
		d.tacacs(t.Add(20*time.Minute), about, "prov", "mvpn "+m.VRF+" add")
		d.pimVRFChange(t.Add(20*time.Minute+5*time.Second), reporter, m.VRF, about, "UP")
		d.truth("pim", event.PIMConfigChange, t.Add(5*time.Second), where)
		return nil

	case event.PIMUplinkAdjacencyChange:
		ups := d.Topo.Uplinks(about)
		if len(ups) == 0 {
			return fmt.Errorf("simnet: PE %s has no uplinks", about)
		}
		up := ups[d.rng.Intn(len(ups))]
		t, err := d.schedule(pairKey, "router/"+about, "link/"+up.Link.ID)
		if err != nil {
			return err
		}
		far := up.Link.Other(about)
		d.pimUplinkChange(t, about, up.Name, far.IP.String(), "DOWN")
		d.pimUplinkChange(t.Add(time.Minute), about, up.Name, far.IP.String(), "UP")
		blip(t.Add(3 * time.Second))
		d.truth("pim", event.PIMUplinkAdjacencyChange, t.Add(3*time.Second), where)
		return nil

	case "Unknown":
		t, err := d.schedule(pairKey)
		if err != nil {
			return err
		}
		blip(t)
		d.truth("pim", "Unknown", t, where)
		return nil
	}
	return fmt.Errorf("simnet: unknown pim incident kind %q", kind)
}

// ifNameOn returns the interface name of link l on router r.
func ifNameOn(l *netmodel.LogicalLink, r string) string {
	if l.A.Router.Name == r {
		return l.A.Name
	}
	return l.B.Name
}
