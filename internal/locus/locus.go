// Package locus implements the G-RCA network location model (Fig. 2 of the
// paper). Every event carries a Location; a Location has a Type drawn from
// the fixed set of location types the spatial model understands, and one or
// two element identifiers.
//
// Single-element types (Router, LogicalLink, ...) use only field A. Scoped
// element types (Interface, LineCard) use A for the owning router and B for
// the element within it, matching the paper's notation
// "newyork-router1:serial-interface0". Pair types (IngressEgress,
// SourceDestination, ...) use A and B for the two endpoints; the paper's
// notation "A:B" denotes all network locations between points A and B.
package locus

import (
	"fmt"
	"strings"
)

// Type enumerates the location types of the G-RCA spatial model.
type Type uint8

// Location types. The ordering groups single-element types, router-scoped
// types, and endpoint-pair types.
const (
	// None is the zero Type; it marks an unset or unlocated event.
	None Type = iota

	// Router identifies a single router by canonical name.
	Router
	// PoP identifies a point of presence.
	PoP
	// LogicalLink identifies a layer-3 point-to-point link by canonical ID.
	LogicalLink
	// PhysicalLink identifies one physical circuit carrying a logical link.
	PhysicalLink
	// Layer1Device identifies a SONET or optical-mesh network element.
	Layer1Device
	// Server identifies a service element outside the routing plane: a CDN
	// server or a whole CDN node (data-center site).
	Server

	// Interface identifies an interface: A = router, B = interface name.
	Interface
	// LineCard identifies a line card: A = router, B = slot.
	LineCard
	// RouterNeighbor identifies a protocol adjacency seen from one router:
	// A = router, B = neighbor IP (typically outside the ISP).
	RouterNeighbor

	// IngressEgress spans the backbone between two ISP routers.
	IngressEgress
	// IngressDestination spans from an ISP ingress router to an external
	// destination address or prefix.
	IngressDestination
	// SourceDestination spans between two endpoints outside the ISP.
	SourceDestination
	// SourceIngress spans from an external source to the ISP ingress router.
	SourceIngress
	// EgressDestination spans from the ISP egress router to the destination.
	EgressDestination
	// ServerClient identifies a CDN server and a client measurement agent.
	ServerClient

	numTypes
)

var typeNames = [...]string{
	None:               "none",
	Router:             "router",
	PoP:                "pop",
	LogicalLink:        "logical-link",
	PhysicalLink:       "physical-link",
	Layer1Device:       "layer1-device",
	Server:             "server",
	Interface:          "interface",
	LineCard:           "line-card",
	RouterNeighbor:     "router:neighbor",
	IngressEgress:      "ingress:egress",
	IngressDestination: "ingress:destination",
	SourceDestination:  "source:destination",
	SourceIngress:      "source:ingress",
	EgressDestination:  "egress:destination",
	ServerClient:       "server:client",
}

// String returns the canonical lower-case name of the type, as used by the
// rule-specification language.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("locus.Type(%d)", uint8(t))
}

// Valid reports whether t is one of the defined location types (not None).
func (t Type) Valid() bool { return t > None && t < numTypes }

// Pair reports whether the type carries two element identifiers.
func (t Type) Pair() bool { return t >= Interface && t < numTypes }

// Scoped reports whether the type is a router-scoped element (A = router,
// B = element within the router).
func (t Type) Scoped() bool {
	return t == Interface || t == LineCard || t == RouterNeighbor
}

// Span reports whether the type denotes all locations between two endpoints
// (the paper's "A:B" notation) rather than a concrete element.
func (t Type) Span() bool { return t >= IngressEgress && t < numTypes }

// ParseType resolves a type name as written in the rule-specification
// language. It accepts the canonical names from String.
func ParseType(s string) (Type, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	for t := None + 1; t < numTypes; t++ {
		if typeNames[t] == s {
			return t, nil
		}
	}
	return None, fmt.Errorf("locus: unknown location type %q", s)
}

// A Location is a concrete place in the network at which an event occurred.
// The zero Location has Type None and matches nothing.
type Location struct {
	Type Type
	A    string
	B    string
}

// At constructs a single-element Location.
func At(t Type, a string) Location { return Location{Type: t, A: a} }

// Between constructs a two-element Location (scoped element or span).
func Between(t Type, a, b string) Location { return Location{Type: t, A: a, B: b} }

// String renders the location in the paper's "A" / "A:B" notation.
func (l Location) String() string {
	if l.Type == None {
		return "<nowhere>"
	}
	if l.B == "" {
		return l.A
	}
	return l.A + ":" + l.B
}

// Key returns a string usable as a map key, unambiguous across types.
func (l Location) Key() string {
	return l.Type.String() + "|" + l.A + "|" + l.B
}

// IsZero reports whether the location is unset.
func (l Location) IsZero() bool { return l.Type == None && l.A == "" && l.B == "" }

// Router returns the router name the location is anchored at, if any.
// For router-scoped types this is A; for Router itself it is A; for spans
// and network-wide types it returns "".
func (l Location) Router() string {
	switch l.Type {
	case Router, Interface, LineCard, RouterNeighbor:
		return l.A
	}
	return ""
}

// Parse parses "A" or "A:B" into a Location of type t, validating the arity
// against the type.
func Parse(t Type, s string) (Location, error) {
	if !t.Valid() {
		return Location{}, fmt.Errorf("locus: invalid type in Parse")
	}
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, ':')
	if t.Pair() {
		if i < 0 {
			return Location{}, fmt.Errorf("locus: location type %s requires \"A:B\", got %q", t, s)
		}
		a, b := s[:i], s[i+1:]
		if a == "" || b == "" {
			return Location{}, fmt.Errorf("locus: empty element in %q", s)
		}
		return Location{Type: t, A: a, B: b}, nil
	}
	if i >= 0 {
		return Location{}, fmt.Errorf("locus: location type %s takes a single element, got %q", t, s)
	}
	if s == "" {
		return Location{}, fmt.Errorf("locus: empty location")
	}
	return Location{Type: t, A: s}, nil
}
