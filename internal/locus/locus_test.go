package locus

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{Router, "router"},
		{Interface, "interface"},
		{Layer1Device, "layer1-device"},
		{IngressEgress, "ingress:egress"},
		{ServerClient, "server:client"},
		{None, "none"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.t, got, c.want)
		}
	}
	if got := Type(200).String(); got != "locus.Type(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for typ := None + 1; typ < numTypes; typ++ {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if _, err := ParseType("no-such-type"); err == nil {
		t.Error("ParseType accepted unknown name")
	}
	if _, err := ParseType(""); err == nil {
		t.Error("ParseType accepted empty name")
	}
}

func TestParseTypeCaseAndSpace(t *testing.T) {
	got, err := ParseType("  Ingress:Egress ")
	if err != nil || got != IngressEgress {
		t.Errorf("ParseType with case/space = %v, %v", got, err)
	}
}

func TestTypePredicates(t *testing.T) {
	if Router.Pair() {
		t.Error("Router should not be Pair")
	}
	if !Interface.Pair() || !Interface.Scoped() || Interface.Span() {
		t.Error("Interface predicates wrong")
	}
	if !IngressEgress.Pair() || !IngressEgress.Span() || IngressEgress.Scoped() {
		t.Error("IngressEgress predicates wrong")
	}
	if None.Valid() || !Router.Valid() || Type(99).Valid() {
		t.Error("Valid predicates wrong")
	}
}

func TestLocationString(t *testing.T) {
	if s := At(Router, "nyc-cr1").String(); s != "nyc-cr1" {
		t.Errorf("single String = %q", s)
	}
	if s := Between(Interface, "nyc-cr1", "so-1/0/0").String(); s != "nyc-cr1:so-1/0/0" {
		t.Errorf("pair String = %q", s)
	}
	if s := (Location{}).String(); s != "<nowhere>" {
		t.Errorf("zero String = %q", s)
	}
}

func TestLocationRouter(t *testing.T) {
	if r := Between(Interface, "r1", "if0").Router(); r != "r1" {
		t.Errorf("Interface Router = %q", r)
	}
	if r := At(Router, "r1").Router(); r != "r1" {
		t.Errorf("Router Router = %q", r)
	}
	if r := Between(IngressEgress, "r1", "r2").Router(); r != "" {
		t.Errorf("span Router = %q, want empty", r)
	}
	if r := At(LogicalLink, "l1").Router(); r != "" {
		t.Errorf("link Router = %q, want empty", r)
	}
}

func TestParse(t *testing.T) {
	loc, err := Parse(Interface, "r1:so-0/0/0")
	if err != nil {
		t.Fatal(err)
	}
	if loc.A != "r1" || loc.B != "so-0/0/0" {
		t.Errorf("Parse pair = %+v", loc)
	}
	if _, err := Parse(Interface, "r1"); err == nil {
		t.Error("Parse accepted missing element for pair type")
	}
	if _, err := Parse(Router, "r1:x"); err == nil {
		t.Error("Parse accepted pair for single type")
	}
	if _, err := Parse(Router, ""); err == nil {
		t.Error("Parse accepted empty location")
	}
	if _, err := Parse(Interface, ":x"); err == nil {
		t.Error("Parse accepted empty A")
	}
	if _, err := Parse(None, "r1"); err == nil {
		t.Error("Parse accepted None type")
	}
	loc, err = Parse(Router, " r9 ")
	if err != nil || loc.A != "r9" {
		t.Errorf("Parse should trim space: %+v, %v", loc, err)
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Locations differing only in type or element split must have distinct
	// keys. This is load-bearing: the engine indexes joined evidence by key.
	locs := []Location{
		At(Router, "a"),
		At(LogicalLink, "a"),
		Between(Interface, "a", "b"),
		Between(LineCard, "a", "b"),
		Between(Interface, "a:b", ""), // degenerate; still distinct
	}
	seen := map[string]Location{}
	for _, l := range locs {
		if prev, dup := seen[l.Key()]; dup {
			t.Errorf("key collision: %+v and %+v -> %q", prev, l, l.Key())
		}
		seen[l.Key()] = l
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		// Construct a parseable pair location and verify round trip.
		if a == "" || b == "" {
			return true
		}
		// Skip inputs the textual form cannot represent unambiguously.
		for _, r := range a + b {
			if r == ':' || r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				return true
			}
		}
		l := Between(IngressEgress, a, b)
		got, err := Parse(IngressEgress, l.String())
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
