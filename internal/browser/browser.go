// Package browser implements the G-RCA Result Browser (paper Fig. 1 and
// §II-E): root-cause breakdown tables (the outputs of Tables IV, VI, and
// VIII), trending of symptoms and causes over time, filtering of symptoms
// by diagnosed root cause, manual drill-down into co-located events, and
// the statistical rule-mining loop that couples the RCA engine with the
// Correlation Tester (Fig. 7).
package browser

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/nice"
	"grca/internal/store"
)

// Row is one line of a root-cause breakdown table.
type Row struct {
	Label   string  `json:"label"`
	Count   int     `json:"count"`
	Percent float64 `json:"percent"`
}

// Rows builds breakdown rows from per-label counts over total diagnoses,
// ordered by descending share then label. It is the single aggregation
// core shared by the batch Breakdown below and the serving rollups
// (internal/rollup), so the live /v1/breakdown endpoint and the CLI
// tables are byte-identical over the same counts by construction.
func Rows(counts map[string]int, total int) []Row {
	if total <= 0 {
		return nil
	}
	rows := make([]Row, 0, len(counts))
	for label, n := range counts {
		rows = append(rows, Row{Label: label, Count: n,
			Percent: 100 * float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Percent != rows[j].Percent {
			return rows[i].Percent > rows[j].Percent
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// CountPrimary tallies diagnoses by (display-mapped) primary cause — the
// counting half of Breakdown, reused wherever counts are merged from
// several sources before rendering.
func CountPrimary(ds []engine.Diagnosis, display func(string) string) map[string]int {
	if display == nil {
		display = func(s string) string { return s }
	}
	counts := map[string]int{}
	for _, d := range ds {
		counts[display(d.Primary())]++
	}
	return counts
}

// Breakdown aggregates diagnoses into table rows, applying an optional
// display-label mapping (each application maps engine labels to its
// paper-table row names). Rows are ordered by descending share.
func Breakdown(ds []engine.Diagnosis, display func(string) string) []Row {
	return Rows(CountPrimary(ds, display), len(ds))
}

// WriteTable renders rows in the paper's two-column table format.
func WriteTable(w io.Writer, title string, rows []Row) error {
	width := len("Root Cause")
	for _, r := range rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n%-*s  %10s  %6s\n", title, width, "Root Cause", "Percentage", "Count"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Repeat("-", width+20)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %9.2f%%  %6d\n", width, r.Label, r.Percent, r.Count); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the diagnoses satisfying pred — the §II-E workflow of
// taking out symptoms with known root causes to focus on the rest.
func Filter(ds []engine.Diagnosis, pred func(engine.Diagnosis) bool) []engine.Diagnosis {
	var out []engine.Diagnosis
	for _, d := range ds {
		if pred(d) {
			out = append(out, d)
		}
	}
	return out
}

// WithPrimary selects diagnoses whose primary cause is the given label.
func WithPrimary(label string) func(engine.Diagnosis) bool {
	return func(d engine.Diagnosis) bool { return d.Primary() == label }
}

// Unexplained selects diagnoses with no identified root cause.
func Unexplained() func(engine.Diagnosis) bool {
	return WithPrimary(engine.Unknown)
}

// TrendPoint is one bin of a trend series.
type TrendPoint struct {
	Start time.Time `json:"start"`
	Count int       `json:"count"`
}

// NewSeries allocates the bin grid for a trend over [from, to]: one point
// per bin of width bin, the last covering to. It is the series core
// shared by Trend, TrendDiagnoses, and the serving rollups, so every
// trend renderer agrees on bin count and bin starts by construction.
func NewSeries(from, to time.Time, bin time.Duration) []TrendPoint {
	if bin <= 0 || to.Before(from) {
		return nil
	}
	n := int(to.Sub(from)/bin) + 1
	points := make([]TrendPoint, n)
	for i := range points {
		points[i].Start = from.Add(time.Duration(i) * bin)
	}
	return points
}

// BinOf returns the series index of instant t on the grid starting at
// from, or -1 when t precedes from.
func BinOf(from, t time.Time, bin time.Duration) int {
	if t.Before(from) {
		return -1
	}
	return int(t.Sub(from) / bin)
}

// Trend counts event instances of name per bin over [from, to) — the
// trending view operators use to watch failure modes over time.
func Trend(st store.Store, name string, from, to time.Time, bin time.Duration) []TrendPoint {
	points := NewSeries(from, to, bin)
	if points == nil || !to.After(from) {
		return nil
	}
	for _, in := range st.Query(name, from, to) {
		if i := BinOf(from, in.Start, bin); i >= 0 && i < len(points) {
			points[i].Count++
		}
	}
	return points
}

// TrendDiagnoses counts diagnoses with the given primary label per bin.
func TrendDiagnoses(ds []engine.Diagnosis, label string, from time.Time, bin time.Duration, n int) []TrendPoint {
	points := make([]TrendPoint, n)
	for i := range points {
		points[i].Start = from.Add(time.Duration(i) * bin)
	}
	for _, d := range ds {
		if d.Primary() != label {
			continue
		}
		i := int(d.Symptom.Start.Sub(from) / bin)
		if i >= 0 && i < n {
			points[i].Count++
		}
	}
	return points
}

// DrillDown returns every stored event instance that is temporally within
// window of the symptom and spatially related to it at the given join
// level — the Result Browser's manual exploration view ("additional
// information such as syslog messages and workflow logs that appear on the
// same router or location as the event being analyzed", §IV-B).
func DrillDown(st store.Store, view *netstate.View, sym *event.Instance, window time.Duration, level locus.Type) ([]*event.Instance, error) {
	symLocs, err := view.Expand(sym.Loc, level, sym.Start)
	if err != nil {
		return nil, err
	}
	set := map[locus.Location]bool{}
	for _, l := range symLocs {
		set[l] = true
	}
	var out []*event.Instance
	for _, name := range st.Names() {
		for _, in := range st.Query(name, sym.Start.Add(-window), sym.End.Add(window)) {
			if in == sym {
				continue
			}
			locs, err := view.Expand(in.Loc, level, sym.Start)
			if err != nil {
				continue // unmodeled location: skip, don't abort exploration
			}
			for _, l := range locs {
				if set[l] {
					out = append(out, in)
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out, nil
}

// ---------------------------------------------------------------------
// Rule mining: the Fig. 7 loop between the RCA engine and the
// Correlation Tester.
// ---------------------------------------------------------------------

// MiningResult is one candidate series' correlation against the symptom
// series.
type MiningResult struct {
	Series string
	Result nice.Result
}

// Miner runs the correlation tester between a set of symptom instances and
// candidate diagnostic series drawn from the store.
type Miner struct {
	Store store.Store
	// Bin is the series bin width (default 1 minute).
	Bin time.Duration
	// Smooth dilates both series by this many bins to absorb causal lag
	// (default 5).
	Smooth int
	// Tester configures the significance test.
	Tester nice.Tester
}

// CandidateSeries lists the store's event names matching any of the given
// prefixes — e.g. "syslog:" and "workflow:" for the generic signature
// series of §IV-B.
func (m Miner) CandidateSeries(prefixes ...string) []string {
	var out []string
	for _, name := range m.Store.Names() {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// Mine tests every candidate series against the symptom set over
// [from, to] and returns all results, most significant first. Candidates
// whose series are degenerate (no occurrences in the window) are skipped.
func (m Miner) Mine(symptoms []*event.Instance, candidates []string, from, to time.Time) ([]MiningResult, error) {
	bin := m.Bin
	if bin <= 0 {
		bin = time.Minute
	}
	smooth := m.Smooth
	if smooth == 0 {
		smooth = 5
	}
	n := int(to.Sub(from)/bin) + 1
	if n < 8 {
		return nil, fmt.Errorf("browser: mining window too short")
	}
	symSeries := nice.FromInstances(symptoms, from, bin, n).Smooth(smooth)

	var out []MiningResult
	for _, cand := range candidates {
		ins := m.Store.Query(cand, from, to)
		if len(ins) == 0 {
			continue
		}
		candSeries := nice.FromInstances(ins, from, bin, n).Smooth(smooth)
		res, err := m.Tester.Test(symSeries, candSeries)
		if err != nil {
			continue // degenerate series: not a usable candidate
		}
		out = append(out, MiningResult{Series: cand, Result: res})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Result.Score > out[j].Result.Score })
	return out, nil
}

// Significant filters mining results to the significant ones.
func Significant(rs []MiningResult) []MiningResult {
	var out []MiningResult
	for _, r := range rs {
		if r.Result.Significant {
			out = append(out, r)
		}
	}
	return out
}
