package browser

import (
	"strings"
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func corpusForReport(t *testing.T) (*simnet.Dataset, *platform.System, []engine.Diagnosis) {
	t.Helper()
	d, err := simnet.Generate(simnet.Config{
		Seed: 83, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	return d, sys, eng.DiagnoseAll()
}

func TestWriteReport(t *testing.T) {
	_, sys, ds := corpusForReport(t)
	var b strings.Builder
	err := WriteReport(&b, sys.Store, ds, ReportOptions{
		Title:   "BGP flap SQM report",
		Display: bgpflap.DisplayLabel,
		View:    sys.View,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"BGP flap SQM report",
		"symptoms:  200",
		"Root cause breakdown",
		"Interface flap",
		"Symptom trend (per 24h0m0s)",
		"Unexplained symptoms:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
	// Empty population.
	var e strings.Builder
	if err := WriteReport(&e, sys.Store, nil, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "no symptoms") {
		t.Errorf("empty report = %q", e.String())
	}
}

// TestCalibrateMargins recovers the BGP hold timer from the lag
// distribution between eBGP flaps and interface flaps — the data-driven
// margin setting of §VI.
func TestCalibrateMargins(t *testing.T) {
	_, sys, _ := corpusForReport(t)
	first, last, _ := sys.Store.Span()
	m := Miner{Store: sys.Store}
	s, err := m.CalibrateMargins(sys.View, locus.Interface,
		event.EBGPFlap, event.InterfaceFlap, 10*time.Minute, first, last)
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples < 50 {
		t.Fatalf("samples = %d", s.Samples)
	}
	// Half the cascades take the fast-fallover path (lead ≈ 1 s), half
	// the hold-timer path (lead 180 s): the 99th-percentile lead must
	// cover the hold timer, and the suggested expansion must cover the
	// app's hand-written 185 s margin.
	if s.Left < 175*time.Second || s.Left > 200*time.Second {
		t.Errorf("calibrated left margin = %v, want ≈180s (the hold timer)", s.Left)
	}
	exp := s.Expansion(dgraph.SyslogFuzz)
	if exp.Left < 180*time.Second {
		t.Errorf("expansion left = %v", exp.Left)
	}
	if exp.Option.String() != "start/start" {
		t.Errorf("expansion option = %v", exp.Option)
	}
	// Unrelated pairs cannot be calibrated... the CPU spike series exists
	// but only co-occurs for its own incidents; an absent event errors.
	if _, err := m.CalibrateMargins(nil, locus.Interface,
		event.EBGPFlap, "no-such-event", time.Minute, first, last); err == nil {
		t.Error("calibration against absent series accepted")
	}
}
