package browser

import (
	"fmt"
	"io"
	"sort"
	"time"

	"grca/internal/engine"
	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/store"
	"grca/internal/temporal"
)

// ReportOptions configures WriteReport.
type ReportOptions struct {
	Title string
	// Display maps engine labels to table row names (per application).
	Display func(string) string
	// TrendBin is the trend bucket width (default 24h).
	TrendBin time.Duration
	// DrillDownTop is how many unexplained symptoms get a drill-down
	// section (default 3); requires View.
	DrillDownTop int
	View         *netstate.View
	// DrillLevel is the spatial level for drill-downs (default Router).
	DrillLevel locus.Type
	// DrillWindow is the temporal window for drill-downs (default 5m).
	DrillWindow time.Duration
	// Metrics, when set, appends a pipeline-health section with the
	// registry's counters and latency percentiles (typically obs.Default()).
	Metrics *obs.Registry
}

// WriteReport renders a complete SQM report for a diagnosed symptom
// population: summary, root-cause breakdown, symptom trend, and
// drill-downs into the top unexplained events — the §II's "processing and
// extracting actionable information from a large number of service
// impacting events in the aggregate", on paper.
func WriteReport(w io.Writer, st store.Store, ds []engine.Diagnosis, opts ReportOptions) error {
	if len(ds) == 0 {
		_, err := fmt.Fprintln(w, "no symptoms to report")
		return err
	}
	if opts.TrendBin <= 0 {
		opts.TrendBin = 24 * time.Hour
	}
	if opts.DrillDownTop == 0 {
		opts.DrillDownTop = 3
	}
	if !opts.DrillLevel.Valid() {
		opts.DrillLevel = locus.Router
	}
	if opts.DrillWindow <= 0 {
		opts.DrillWindow = 5 * time.Minute
	}

	first, last := ds[0].Symptom.Start, ds[0].Symptom.End
	var total time.Duration
	for _, d := range ds {
		if d.Symptom.Start.Before(first) {
			first = d.Symptom.Start
		}
		if d.Symptom.End.After(last) {
			last = d.Symptom.End
		}
		total += d.Elapsed
	}
	title := opts.Title
	if title == "" {
		title = "G-RCA service quality report"
	}
	fmt.Fprintf(w, "%s\n%s\n\n", title, repeat('=', len(title)))
	fmt.Fprintf(w, "window:    %s — %s\n", first.Format(time.DateTime), last.Format(time.DateTime))
	fmt.Fprintf(w, "symptoms:  %d (%s)\n", len(ds), ds[0].Symptom.Name)
	if total > 0 {
		fmt.Fprintf(w, "diagnosis: %v total, %v/event\n", total.Round(time.Millisecond),
			(total / time.Duration(len(ds))).Round(time.Microsecond))
	}
	fmt.Fprintln(w)

	if err := WriteTable(w, "Root cause breakdown", Breakdown(ds, opts.Display)); err != nil {
		return err
	}

	// Trend of the symptom population.
	fmt.Fprintf(w, "\nSymptom trend (per %v):\n", opts.TrendBin)
	bins := int(last.Sub(first)/opts.TrendBin) + 1
	points := make([]TrendPoint, bins)
	for i := range points {
		points[i].Start = first.Add(time.Duration(i) * opts.TrendBin)
	}
	for _, d := range ds {
		i := int(d.Symptom.Start.Sub(first) / opts.TrendBin)
		if i >= 0 && i < bins {
			points[i].Count++
		}
	}
	peak := 1
	for _, p := range points {
		if p.Count > peak {
			peak = p.Count
		}
	}
	for _, p := range points {
		bar := int(40 * p.Count / peak)
		fmt.Fprintf(w, "  %s  %4d  %s\n", p.Start.Format("2006-01-02 15:04"), p.Count, repeat('#', bar))
	}

	// Drill-downs into the largest unexplained events.
	if opts.View != nil {
		unexplained := Filter(ds, Unexplained())
		sort.SliceStable(unexplained, func(i, j int) bool {
			return unexplained[i].Symptom.Duration() > unexplained[j].Symptom.Duration()
		})
		if len(unexplained) > 0 {
			fmt.Fprintf(w, "\nUnexplained symptoms: %d (%.1f%%); drill-downs:\n",
				len(unexplained), 100*float64(len(unexplained))/float64(len(ds)))
		}
		for i, d := range unexplained {
			if i >= opts.DrillDownTop {
				break
			}
			fmt.Fprintf(w, "  %s\n", d.Symptom)
			related, err := DrillDown(st, opts.View, d.Symptom, opts.DrillWindow, opts.DrillLevel)
			if err != nil {
				fmt.Fprintf(w, "    (drill-down unavailable: %v)\n", err)
				continue
			}
			if len(related) == 0 {
				fmt.Fprintf(w, "    nothing co-located within %v\n", opts.DrillWindow)
			}
			for j, in := range related {
				if j >= 5 {
					fmt.Fprintf(w, "    ... and %d more\n", len(related)-5)
					break
				}
				fmt.Fprintf(w, "    saw %s\n", in)
			}
		}
	}

	// Pipeline health: what the platform did to produce the report above.
	if opts.Metrics != nil {
		fmt.Fprintf(w, "\nPipeline health\n%s\n", repeat('-', len("Pipeline health")))
		if err := obs.WriteText(w, opts.Metrics.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// MarginSuggestion is a data-driven recommendation for a rule's symptom
// expansion margins, addressing the paper's §VI goal of making temporal
// joining rules "less sensitive": instead of hand-picking X and Y, measure
// the lag distribution between symptom and diagnostic occurrences and
// cover its bulk.
type MarginSuggestion struct {
	Samples int
	// Left covers diagnostics preceding the symptom (the P99 lead);
	// Right covers diagnostics trailing it.
	Left, Right time.Duration
	// MedianLead is the P50 symptom-after-diagnostic lag, a direct read
	// of the dominant protocol timer (e.g. the BGP hold time).
	MedianLead time.Duration
}

// Expansion renders the suggestion as a Start/Start expansion with the
// syslog fuzz added on both sides.
func (m MarginSuggestion) Expansion(fuzz time.Duration) temporal.Expansion {
	return temporal.Expansion{Option: temporal.StartStart, Left: m.Left + fuzz, Right: m.Right + fuzz}
}

// CalibrateMargins measures, for each symptom instance, the nearest
// *spatially related* diagnostic instance within ±maxLag and returns
// margins covering 99% of the observed leads and trails. view and level
// scope the pairing the way the rule under calibration would (a nil view
// disables the spatial filter — only meaningful when the corpus carries a
// single failure domain).
func (m Miner) CalibrateMargins(view *netstate.View, level locus.Type, symptom, diagnostic string, maxLag time.Duration, from, to time.Time) (MarginSuggestion, error) {
	var leads, trails []time.Duration // lead: diagnostic before symptom
	for _, sym := range m.Store.Query(symptom, from, to) {
		var best time.Duration
		found := false
		for _, diag := range m.Store.Query(diagnostic, sym.Start.Add(-maxLag), sym.Start.Add(maxLag)) {
			lag := sym.Start.Sub(diag.Start)
			if lag > maxLag || lag < -maxLag {
				continue // overlapped the window without starting in it
			}
			if view != nil {
				rel, err := view.Related(sym.Loc, diag.Loc, level, sym.Start)
				if err != nil || !rel {
					continue
				}
			}
			if !found || abs(lag) < abs(best) {
				best, found = lag, true
			}
		}
		if !found {
			continue
		}
		if best >= 0 {
			leads = append(leads, best)
		} else {
			trails = append(trails, -best)
		}
	}
	n := len(leads) + len(trails)
	if n == 0 {
		return MarginSuggestion{}, fmt.Errorf("browser: no co-occurrences of %q and %q within %v",
			symptom, diagnostic, maxLag)
	}
	s := MarginSuggestion{Samples: n}
	s.Left = quantile(leads, 0.99)
	s.Right = quantile(trails, 0.99)
	s.MedianLead = quantile(leads, 0.50)
	return s, nil
}

func abs(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}
