package browser

import (
	"errors"
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
	"grca/internal/store"
	"grca/internal/temporal"
)

// TestValidateRuleOnCorpus checks the §II-E workflow on a simulated
// corpus: the real causal rule ("eBGP flap" <- "Interface flap") passes
// the Correlation Tester, while a fabricated rule joining the flaps to an
// unrelated noise signature fails it.
func TestValidateRuleOnCorpus(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 41, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{GenericSignatures: true})
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := bgpflap.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Miner{Store: sys.Store}
	from := d.Config.Start
	to := from.Add(d.Config.Duration)

	var flapRule dgraph.Rule
	for _, r := range g.RulesFor(event.EBGPFlap) {
		if r.Diagnostic == event.InterfaceFlap {
			flapRule = r
		}
	}
	v := m.ValidateRule(flapRule, from, to)
	if v.Err != nil {
		t.Fatalf("real rule untestable: %v", v.Err)
	}
	if !v.Result.Significant {
		t.Errorf("real rule failed the correlation test: %+v", v.Result)
	}

	bogus := flapRule
	bogus.Diagnostic = "syslog:NOISE00-5-NOTICE"
	v = m.ValidateRule(bogus, from, to)
	if v.Err != nil {
		t.Fatalf("bogus rule untestable: %v", v.Err)
	}
	if v.Result.Significant {
		t.Errorf("bogus rule passed the correlation test: %+v", v.Result)
	}

	// Full-graph validation: every testable rule of the BGP app that has
	// instances must pass.
	verdicts := m.ValidateGraph(g, from, to)
	if len(verdicts) != g.Len() {
		t.Fatalf("verdicts = %d, want %d", len(verdicts), g.Len())
	}
	for _, v := range verdicts {
		if v.Err != nil {
			continue // e.g. no optical restorations in this corpus
		}
		// A rule backed by a handful of instances cannot reach
		// significance — that is the test working as designed, not a bad
		// rule. Demand significance only where the data can support it.
		if sys.Store.Count(v.Rule.Diagnostic) < 5 {
			continue
		}
		if !v.Result.Significant {
			t.Errorf("rule %q failed validation: score %.2f", v.Rule.Key(), v.Result.Score)
		}
	}
}

func TestValidateRuleErrors(t *testing.T) {
	st := store.New()
	m := Miner{Store: st}
	r := dgraph.Rule{Symptom: "a", Diagnostic: "b", JoinLevel: locus.Router,
		Temporal: temporal.Rule{}}
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	// Too-short window: an error, but a *testable* configuration problem,
	// not ErrUntestable.
	if v := m.ValidateRule(r, t0, t0.Add(2*time.Minute)); v.Err == nil {
		t.Error("short window accepted")
	} else if errors.Is(v.Err, ErrUntestable) {
		t.Errorf("short window misclassified as untestable: %v", v.Err)
	}
	// No instances: the sentinel callers branch on.
	if v := m.ValidateRule(r, t0, t0.Add(24*time.Hour)); !errors.Is(v.Err, ErrUntestable) {
		t.Errorf("empty series: got %v, want ErrUntestable", v.Err)
	}
	// One side present only is still untestable.
	st.Add(event.Instance{Name: "a", Start: t0, End: t0, Loc: locus.At(locus.Router, "r")})
	if v := m.ValidateRule(r, t0, t0.Add(24*time.Hour)); !errors.Is(v.Err, ErrUntestable) {
		t.Errorf("half-empty series: got %v, want ErrUntestable", v.Err)
	}
}
