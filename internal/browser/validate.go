package browser

import (
	"errors"
	"fmt"
	"time"

	"grca/internal/dgraph"
	"grca/internal/nice"
)

// ErrUntestable marks a rule the Correlation Tester could not assess on
// the given window — one of the event series never occurs there. Callers
// (grca vet -validate) distinguish it with errors.Is: untestable is not
// the same as inaccurate, and on sparse data it is not even suspicious.
var ErrUntestable = errors.New("browser: rule untestable on this window")

// RuleVerdict is the Correlation Tester's assessment of one diagnosis
// rule (paper §II-E: "the diagnosis rule is only considered to be accurate
// when it passes the test").
type RuleVerdict struct {
	Rule   dgraph.Rule
	Result nice.Result
	// Err is set when the rule could not be tested on this data (e.g. one
	// of the event series never occurs); untestable is not the same as
	// inaccurate.
	Err error
}

// ValidateRule tests the statistical correlation between a rule's symptom
// and diagnostic event series over [from, to]. The series are smoothed by
// the rule's own temporal margins so that a causal lag the rule models
// (e.g. the 180 s BGP hold timer) does not defeat the test.
func (m Miner) ValidateRule(r dgraph.Rule, from, to time.Time) RuleVerdict {
	bin := m.Bin
	if bin <= 0 {
		bin = time.Minute
	}
	n := int(to.Sub(from)/bin) + 1
	if n < 8 {
		return RuleVerdict{Rule: r, Err: fmt.Errorf("browser: validation window too short")}
	}
	symIns := m.Store.Query(r.Symptom, from, to)
	diagIns := m.Store.Query(r.Diagnostic, from, to)
	if len(symIns) == 0 || len(diagIns) == 0 {
		return RuleVerdict{Rule: r, Err: fmt.Errorf("%w: no instances of %q and/or %q",
			ErrUntestable, r.Symptom, r.Diagnostic)}
	}
	// Smoothing radius: the rule's widest temporal reach, in bins.
	reach := r.Temporal.Symptom.Left
	for _, d := range []time.Duration{r.Temporal.Symptom.Right, r.Temporal.Diagnostic.Left, r.Temporal.Diagnostic.Right} {
		if d > reach {
			reach = d
		}
	}
	radius := int(reach/bin) + 1
	sym := nice.FromInstances(symIns, from, bin, n).Smooth(radius)
	diag := nice.FromInstances(diagIns, from, bin, n).Smooth(radius)
	res, err := m.Tester.Test(sym, diag)
	if err != nil {
		return RuleVerdict{Rule: r, Err: err}
	}
	return RuleVerdict{Rule: r, Result: res}
}

// ValidateGraph runs ValidateRule over every edge of a diagnosis graph —
// the periodic retest G-RCA applies to keep diagnosis rules up to date
// (§II-E). Verdicts are returned in the graph's rule order.
func (m Miner) ValidateGraph(g *dgraph.Graph, from, to time.Time) []RuleVerdict {
	rules := g.Rules()
	out := make([]RuleVerdict, 0, len(rules))
	for _, r := range rules {
		out = append(out, m.ValidateRule(r, from, to))
	}
	return out
}
