package browser

import (
	"strings"
	"testing"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
	"grca/internal/testnet"
)

var t0 = testnet.T0

func diag(label string, startMin int) engine.Diagnosis {
	sym := &event.Instance{Name: "sym", Start: t0.Add(time.Duration(startMin) * time.Minute),
		End: t0.Add(time.Duration(startMin) * time.Minute)}
	d := engine.Diagnosis{Symptom: sym, Root: &engine.Node{Event: "sym", Instance: sym}}
	if label != engine.Unknown {
		d.Causes = []engine.Cause{{Event: label}}
	}
	return d
}

func TestBreakdownAndTable(t *testing.T) {
	ds := []engine.Diagnosis{
		diag("A", 0), diag("A", 1), diag("A", 2),
		diag("B", 3),
		diag(engine.Unknown, 4),
	}
	rows := Breakdown(ds, nil)
	if len(rows) != 3 || rows[0].Label != "A" || rows[0].Count != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Percent != 60 {
		t.Errorf("A percent = %v", rows[0].Percent)
	}
	// Display mapping applied.
	rows = Breakdown(ds, func(s string) string {
		if s == engine.Unknown {
			return "Outside (Unknown)"
		}
		return s
	})
	found := false
	for _, r := range rows {
		if r.Label == "Outside (Unknown)" {
			found = true
		}
	}
	if !found {
		t.Error("display mapping not applied")
	}

	var b strings.Builder
	if err := WriteTable(&b, "Root Cause Breakdown", rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Root Cause") || !strings.Contains(out, "60.00%") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestFilterPredicates(t *testing.T) {
	ds := []engine.Diagnosis{diag("A", 0), diag(engine.Unknown, 1), diag("A", 2)}
	if got := Filter(ds, WithPrimary("A")); len(got) != 2 {
		t.Errorf("WithPrimary = %d", len(got))
	}
	if got := Filter(ds, Unexplained()); len(got) != 1 {
		t.Errorf("Unexplained = %d", len(got))
	}
}

func TestTrend(t *testing.T) {
	st := store.New()
	loc := locus.At(locus.Router, "r")
	for _, m := range []int{0, 1, 2, 65, 70, 130} {
		st.Add(event.Instance{Name: "e", Start: t0.Add(time.Duration(m) * time.Minute),
			End: t0.Add(time.Duration(m) * time.Minute), Loc: loc})
	}
	pts := Trend(st, "e", t0, t0.Add(3*time.Hour), time.Hour)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Count != 3 || pts[1].Count != 2 || pts[2].Count != 1 || pts[3].Count != 0 {
		t.Errorf("trend = %+v", pts)
	}
	if Trend(st, "e", t0, t0, time.Hour) != nil {
		t.Error("empty window should be nil")
	}
	if Trend(st, "e", t0, t0.Add(time.Hour), 0) != nil {
		t.Error("zero bin should be nil")
	}
}

func TestTrendDiagnoses(t *testing.T) {
	ds := []engine.Diagnosis{diag("A", 0), diag("A", 61), diag("B", 62)}
	pts := TrendDiagnoses(ds, "A", t0, time.Hour, 2)
	if pts[0].Count != 1 || pts[1].Count != 1 {
		t.Errorf("trend = %+v", pts)
	}
}

func TestDrillDown(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	st := store.New()
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	sym := st.Add(event.Instance{Name: event.EBGPFlap, Start: t0.Add(time.Hour), End: t0.Add(time.Hour),
		Loc: locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())})
	// Related: CPU spike on the same router inside the window.
	st.Add(event.Instance{Name: event.CPUHighSpike, Start: t0.Add(59 * time.Minute), End: t0.Add(59 * time.Minute),
		Loc: locus.At(locus.Router, "chi-per1")})
	// Unrelated in space.
	st.Add(event.Instance{Name: event.CPUHighSpike, Start: t0.Add(time.Hour), End: t0.Add(time.Hour),
		Loc: locus.At(locus.Router, "nyc-per1")})
	// Unrelated in time.
	st.Add(event.Instance{Name: event.RouterReboot, Start: t0.Add(5 * time.Hour), End: t0.Add(5 * time.Hour),
		Loc: locus.At(locus.Router, "chi-per1")})

	got, err := DrillDown(st, n.View, sym, 10*time.Minute, locus.Router)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != event.CPUHighSpike || got[0].Loc.A != "chi-per1" {
		t.Errorf("drill-down = %v", got)
	}
}

func TestMiner(t *testing.T) {
	st := store.New()
	loc := locus.At(locus.Router, "r")
	end := t0.Add(48 * time.Hour)
	// Symptom instances at pseudo-random minutes; a correlated series
	// leads each by one minute; an uncorrelated series elsewhere.
	var symptoms []*event.Instance
	minute := 17
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(minute) * time.Minute)
		symptoms = append(symptoms, st.Add(event.Instance{Name: "sym", Start: at, End: at, Loc: loc}))
		st.Add(event.Instance{Name: "workflow:cause", Start: at.Add(-time.Minute), End: at.Add(-time.Minute), Loc: loc})
		st.Add(event.Instance{Name: "workflow:noise", Start: at.Add(time.Duration(137*i%1440) * time.Minute), End: at, Loc: loc})
		minute = (minute*31 + 7) % (48 * 60)
	}
	m := Miner{Store: st}
	cands := m.CandidateSeries("workflow:")
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	results, err := m.Mine(symptoms, cands, t0, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	sig := Significant(results)
	if len(sig) != 1 || sig[0].Series != "workflow:cause" {
		t.Errorf("significant = %+v", sig)
	}
	// Window too short errors.
	if _, err := m.Mine(symptoms, cands, t0, t0.Add(3*time.Minute)); err == nil {
		t.Error("short window accepted")
	}
}
