package bgp

import (
	"net/netip"
	"testing"
	"time"

	"grca/internal/netmodel"
	"grca/internal/ospf"
)

var t0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// line builds a linear backbone a—b—c with unit weights, so that from "a"
// the IGP distance to "a" is 0, to "b" is 10, to "c" is 20.
func line(t *testing.T) (*netmodel.Topology, *ospf.Sim) {
	t.Helper()
	topo := netmodel.NewTopology()
	for i, n := range []string{"a", "b", "c"} {
		r := &netmodel.Router{Name: n, Role: netmodel.RoleCore,
			Loopback: netip.AddrFrom4([4]byte{10, 255, 0, byte(i + 1)})}
		if err := topo.AddRouter(r); err != nil {
			t.Fatal(err)
		}
		topo.AddCard(r)
	}
	sub := 0
	link := func(id, x, y string) {
		rx, ry := topo.Routers[x], topo.Routers[y]
		base := netip.AddrFrom4([4]byte{10, 0, 0, byte(sub * 4)})
		sub++
		pfx := netip.PrefixFrom(base, 30)
		i1, _ := topo.AddInterface(rx.Cards[0], "to-"+y, pfx, base.Next())
		i2, _ := topo.AddInterface(ry.Cards[0], "to-"+x, pfx, base.Next().Next())
		if _, err := topo.Connect(id, i1, i2); err != nil {
			t.Fatal(err)
		}
	}
	link("ab", "a", "b")
	link("bc", "b", "c")
	return topo, ospf.New(topo, map[string]int{"ab": 10, "bc": 10})
}

func TestLongestPrefixMatch(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Announce(t0, Route{Prefix: netip.MustParsePrefix("192.0.0.0/8"), Egress: "a", LocalPref: 100}))
	must(s.Announce(t0, Route{Prefix: netip.MustParsePrefix("192.0.2.0/24"), Egress: "c", LocalPref: 100}))

	ip := netip.MustParseAddr("192.0.2.55")
	pfx, ok := s.Lookup(ip, t0.Add(time.Minute))
	if !ok || pfx.Bits() != 24 {
		t.Fatalf("Lookup = %v, %v; want /24", pfx, ok)
	}
	// An address outside the /24 falls back to the /8.
	pfx, ok = s.Lookup(netip.MustParseAddr("192.9.9.9"), t0.Add(time.Minute))
	if !ok || pfx.Bits() != 8 {
		t.Fatalf("Lookup fallback = %v, %v; want /8", pfx, ok)
	}
	if _, ok := s.Lookup(netip.MustParseAddr("8.8.8.8"), t0); ok {
		t.Error("Lookup matched unannounced space")
	}
	// Before the announcement time there is no route.
	if _, ok := s.Lookup(ip, t0.Add(-time.Minute)); ok {
		t.Error("Lookup matched before announcement")
	}
}

func TestHotPotatoTieBreak(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	pfx := netip.MustParsePrefix("198.51.100.0/24")
	// Two egresses with identical attributes: b (distance 10 from a) and
	// c (distance 20 from a). Hot potato picks b.
	if err := s.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100, ASPathLen: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 100, ASPathLen: 3}); err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("198.51.100.1")
	r, err := s.BestEgress("a", ip, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if r.Egress != "b" {
		t.Errorf("hot potato egress = %s, want b", r.Egress)
	}
	// From c itself, c wins (distance 0).
	r, _ = s.BestEgress("c", ip, t0.Add(time.Second))
	if r.Egress != "c" {
		t.Errorf("egress from c = %s, want c", r.Egress)
	}
}

func TestDecisionProcessOrder(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	pfx := netip.MustParsePrefix("203.0.113.0/24")
	ip := netip.MustParseAddr("203.0.113.7")
	at := t0.Add(time.Second)

	// LocalPref dominates despite longer AS path and farther egress.
	s.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100, ASPathLen: 1})
	s.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 200, ASPathLen: 9})
	if r, _ := s.BestEgress("a", ip, at); r.Egress != "c" {
		t.Errorf("localpref not dominant: got %s", r.Egress)
	}

	// Equal localpref: shortest AS path wins.
	s2 := New(osim)
	s2.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100, ASPathLen: 5})
	s2.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 100, ASPathLen: 2})
	if r, _ := s2.BestEgress("a", ip, at); r.Egress != "c" {
		t.Errorf("as-path length not applied: got %s", r.Egress)
	}

	// Then origin, then MED.
	s3 := New(osim)
	s3.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100, ASPathLen: 2, Origin: 2})
	s3.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 100, ASPathLen: 2, Origin: 0})
	if r, _ := s3.BestEgress("a", ip, at); r.Egress != "c" {
		t.Errorf("origin not applied: got %s", r.Egress)
	}
	s4 := New(osim)
	s4.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100, MED: 50})
	s4.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 100, MED: 10})
	if r, _ := s4.BestEgress("a", ip, at); r.Egress != "c" {
		t.Errorf("MED not applied: got %s", r.Egress)
	}
}

func TestWithdrawAndEgressChanges(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	pfx := netip.MustParsePrefix("198.51.100.0/24")
	ip := netip.MustParseAddr("198.51.100.1")
	t1 := t0.Add(time.Hour)
	t2 := t0.Add(2 * time.Hour)

	s.Announce(t0, Route{Prefix: pfx, Egress: "b", LocalPref: 100})
	s.Announce(t0, Route{Prefix: pfx, Egress: "c", LocalPref: 100})
	// b withdraws at t1, re-announces at t2.
	if err := s.Withdraw(t1, pfx, "b"); err != nil {
		t.Fatal(err)
	}
	s.Announce(t2, Route{Prefix: pfx, Egress: "b", LocalPref: 100})

	if r, _ := s.BestEgress("a", ip, t1.Add(time.Minute)); r.Egress != "c" {
		t.Errorf("after withdraw egress = %s, want c", r.Egress)
	}
	if r, _ := s.BestEgress("a", ip, t2.Add(time.Minute)); r.Egress != "b" {
		t.Errorf("after re-announce egress = %s, want b", r.Egress)
	}

	changes := s.EgressChanges("a", ip, t0, t0.Add(3*time.Hour))
	if len(changes) != 2 {
		t.Fatalf("egress changes = %+v, want 2", changes)
	}
	if changes[0].Old != "b" || changes[0].New != "c" || !changes[0].At.Equal(t1) {
		t.Errorf("first change = %+v", changes[0])
	}
	if changes[1].Old != "c" || changes[1].New != "b" || !changes[1].At.Equal(t2) {
		t.Errorf("second change = %+v", changes[1])
	}
	// Outside the window: no changes.
	if got := s.EgressChanges("a", ip, t2.Add(time.Hour), t2.Add(2*time.Hour)); len(got) != 0 {
		t.Errorf("out-of-window changes = %+v", got)
	}
}

func TestRecordValidation(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	pfx := netip.MustParsePrefix("198.51.100.0/24")
	if err := s.Announce(t0, Route{Egress: "b"}); err == nil {
		t.Error("invalid prefix accepted")
	}
	if err := s.Announce(t0, Route{Prefix: pfx}); err == nil {
		t.Error("missing egress accepted")
	}
	if err := s.Announce(t0.Add(time.Hour), Route{Prefix: pfx, Egress: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Announce(t0, Route{Prefix: pfx, Egress: "b"}); err == nil {
		t.Error("out-of-order update accepted")
	}
	if len(s.Updates()) != 1 {
		t.Errorf("updates = %d, want 1", len(s.Updates()))
	}
}

func TestBestEgressNoRoute(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	if _, err := s.BestEgress("a", netip.MustParseAddr("192.0.2.1"), t0); err == nil {
		t.Error("BestEgress with empty RIB should fail")
	}
}

// TestEpochsAndBestPathMemo pins the interdomain half of the
// routing-epoch contract: EpochAt counts update instants, and the
// memoized BestEgress stays correct when either its BGP inputs change
// (withdraw) or only the OSPF hot-potato input changes (weight change
// with no BGP update at all).
func TestEpochsAndBestPathMemo(t *testing.T) {
	_, osim := line(t)
	s := New(osim)
	pfx := netip.MustParsePrefix("198.51.100.0/24")
	dst := netip.MustParseAddr("198.51.100.9")
	ann := func(at time.Time, egress string) {
		t.Helper()
		if err := s.Announce(at, Route{Prefix: pfx, Egress: egress, LocalPref: 100, ASPathLen: 3}); err != nil {
			t.Fatal(err)
		}
	}
	ann(t0, "a")
	ann(t0, "c")
	if s.Epochs() != 1 || s.EpochAt(t0) != 1 || s.EpochAt(t0.Add(-time.Second)) != 0 {
		t.Fatalf("epochs after two same-instant announcements: %d, EpochAt(t0)=%d", s.Epochs(), s.EpochAt(t0))
	}
	// Hot potato from b: a and c are both at distance 10, so the
	// deterministic name tie-break picks a. Query twice so the second
	// answer comes from the memo.
	for i := 0; i < 2; i++ {
		r, err := s.BestEgress("b", dst, t0.Add(time.Minute))
		if err != nil || r.Egress != "a" {
			t.Fatalf("query %d: best egress = %+v, %v; want a", i, r, err)
		}
	}
	// An OSPF-only change moves the tie-break without any BGP update: the
	// memo must not serve the pre-change selection at post-change instants.
	if err := osim.SetWeight(t0.Add(2*time.Minute), "ab", 50); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.BestEgress("b", dst, t0.Add(time.Minute)); r.Egress != "a" {
		t.Fatalf("pre-change instant after weight change: egress = %s, want a", r.Egress)
	}
	if r, _ := s.BestEgress("b", dst, t0.Add(3*time.Minute)); r.Egress != "c" {
		t.Fatalf("post-change instant: egress = %s, want c (ab costed to 50)", r.Egress)
	}
	// A withdraw opens a new BGP epoch; cached pre-withdraw selections
	// must not leak past it.
	if err := s.Withdraw(t0.Add(4*time.Minute), pfx, "c"); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.BestEgress("b", dst, t0.Add(5*time.Minute)); r.Egress != "a" {
		t.Fatalf("post-withdraw: egress = %s, want a (c withdrawn)", r.Egress)
	}
	if s.EpochAt(t0.Add(5*time.Minute)) != 2 {
		t.Fatalf("EpochAt after withdraw = %d, want 2", s.EpochAt(t0.Add(5*time.Minute)))
	}
	// Lookup memo: after every egress withdraws, the prefix stops matching.
	if err := s.Withdraw(t0.Add(6*time.Minute), pfx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(dst, t0.Add(7*time.Minute)); ok {
		t.Fatal("Lookup matched a fully-withdrawn prefix")
	}
	if _, ok := s.Lookup(dst, t0.Add(5*time.Minute)); !ok {
		t.Fatal("Lookup missed the prefix at a pre-withdraw instant")
	}
}
