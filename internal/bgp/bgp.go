// Package bgp emulates the interdomain routing view the G-RCA service
// dependency model needs: given the historical BGP route changes collected
// at the route reflectors, it answers "which egress router carried traffic
// from this ingress router toward this destination at time T?" (paper
// §II-B item 1).
//
// As in the paper, per-ingress BGP state is not directly observed; the BGP
// decision process at an ingress router is emulated from the reflector-
// learned candidate routes plus the OSPF distance to the available egress
// routers (hot-potato routing), and one best egress is picked per the BGP
// best-path selection rules.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/obs"
	"grca/internal/ospf"
)

// Best-path-memo metrics: decision-process emulation is the interdomain
// half of the route computation that dominates CDN diagnosis latency
// (§III-B.2); the hit ratios show how much of it the routing-epoch cache
// absorbs.
var (
	mLookupHits   = obs.GetCounter("bgp.lookup.cache.hits")
	mLookupMisses = obs.GetCounter("bgp.lookup.cache.misses")
	mBestHits     = obs.GetCounter("bgp.bestpath.cache.hits")
	mBestMisses   = obs.GetCounter("bgp.bestpath.cache.misses")
)

// Route is one reflector-learned path to an external prefix, already
// resolved to the ISP egress router that announced it.
type Route struct {
	Prefix    netip.Prefix
	Egress    string // egress router (the next hop's attachment point)
	LocalPref int    // higher preferred
	ASPathLen int    // shorter preferred
	Origin    int    // lower preferred (IGP=0 < EGP=1 < incomplete=2)
	MED       int    // lower preferred
}

type ribEntry struct {
	at        time.Time
	withdrawn bool
	route     Route
}

type timeline struct {
	egress  string
	entries []ribEntry // time-ordered
}

func (tl *timeline) at(t time.Time) (Route, bool) {
	i := sort.Search(len(tl.entries), func(i int) bool { return tl.entries[i].at.After(t) })
	if i == 0 {
		return Route{}, false
	}
	e := tl.entries[i-1]
	if e.withdrawn {
		return Route{}, false
	}
	return e.route, true
}

// Sim is the BGP route-history simulator. Like ospf.Sim it is safe for
// concurrent readers once all updates have been recorded, and memoizes its
// two expensive read paths — longest-prefix lookup and best-path selection
// — per routing epoch so the work is shared across diagnoses.
type Sim struct {
	ospf     *ospf.Sim
	prefixes map[netip.Prefix]map[string]*timeline // prefix → egress → timeline
	updates  []Update                              // global ordered update feed

	// epochs holds the distinct update instants in time order; between two
	// consecutive instants the RIB — and thus Lookup and Candidates — is
	// constant. Best-path selection additionally depends on the OSPF epoch
	// through the hot-potato tie-break, so bestKey carries both.
	epochs []time.Time
	gen    atomic.Int64
	memo   atomic.Pointer[bgpTable]
}

// lookupKey identifies one memoized longest-prefix match.
type lookupKey struct {
	addr  netip.Addr
	epoch int
}

// bestKey identifies one memoized decision-process emulation. The OSPF
// epoch is part of the key because an intradomain weight change can move
// the hot-potato tie-break without any BGP update.
type bestKey struct {
	ingress   string
	prefix    netip.Prefix
	epoch     int // BGP epoch
	ospfEpoch int
}

type lookupVal struct {
	pfx netip.Prefix
	ok  bool
}

type bestVal struct {
	route Route
	err   error
}

const bgpShards = 16 // power of two

func (k lookupKey) shard() int {
	h := uint32(2166136261)
	for _, b := range k.addr.As16() {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(k.epoch)) * 16777619
	return int(h & (bgpShards - 1))
}

func (k bestKey) shard() int {
	h := uint32(2166136261)
	for i := 0; i < len(k.ingress); i++ {
		h = (h ^ uint32(k.ingress[i])) * 16777619
	}
	for _, b := range k.prefix.Addr().As16() {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(k.prefix.Bits())) * 16777619
	h = (h ^ uint32(k.epoch)) * 16777619
	h = (h ^ uint32(k.ospfEpoch)) * 16777619
	return int(h & (bgpShards - 1))
}

type bgpShard struct {
	mu     sync.RWMutex
	lookup map[lookupKey]lookupVal
	best   map[bestKey]bestVal
}

// bgpTable is one generation of the memo; it is discarded whenever either
// the BGP update feed or the OSPF change log grows.
type bgpTable struct {
	gen     int64
	ospfGen int64
	shards  [bgpShards]bgpShard
}

func (s *Sim) table() *bgpTable {
	gen, ogen := s.gen.Load(), s.ospf.Generation()
	for {
		t := s.memo.Load()
		if t != nil && t.gen == gen && t.ospfGen == ogen {
			return t
		}
		nt := &bgpTable{gen: gen, ospfGen: ogen}
		for i := range nt.shards {
			nt.shards[i].lookup = map[lookupKey]lookupVal{}
			nt.shards[i].best = map[bestKey]bestVal{}
		}
		if s.memo.CompareAndSwap(t, nt) {
			return nt
		}
	}
}

// EpochAt returns the interdomain routing epoch of time t: the number of
// recorded update instants at or before t. The RIB is identical for any
// two instants in the same epoch.
func (s *Sim) EpochAt(t time.Time) int {
	return sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].After(t) })
}

// Epochs returns the number of distinct update instants recorded.
func (s *Sim) Epochs() int { return len(s.epochs) }

// Generation returns a counter incremented on every recorded update; see
// ospf.Sim.Generation.
func (s *Sim) Generation() int64 { return s.gen.Load() }

// Update is one observed reflector update, the unit of the BGP monitor feed.
type Update struct {
	At       time.Time
	Withdraw bool
	Route    Route
}

// New creates a simulator whose hot-potato tie-break consults o.
func New(o *ospf.Sim) *Sim {
	return &Sim{ospf: o, prefixes: map[netip.Prefix]map[string]*timeline{}}
}

// Announce records that egress r.Egress offered r for r.Prefix from time at.
// Updates per (prefix, egress) must be time-ordered.
func (s *Sim) Announce(at time.Time, r Route) error {
	return s.record(at, r, false)
}

// Withdraw records that the named egress stopped offering prefix at time at.
func (s *Sim) Withdraw(at time.Time, prefix netip.Prefix, egress string) error {
	return s.record(at, Route{Prefix: prefix, Egress: egress}, true)
}

func (s *Sim) record(at time.Time, r Route, withdraw bool) error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("bgp: invalid prefix in update")
	}
	if r.Egress == "" {
		return fmt.Errorf("bgp: update without egress router")
	}
	m := s.prefixes[r.Prefix.Masked()]
	if m == nil {
		m = map[string]*timeline{}
		s.prefixes[r.Prefix.Masked()] = m
	}
	tl := m[r.Egress]
	if tl == nil {
		tl = &timeline{egress: r.Egress}
		m[r.Egress] = tl
	}
	if n := len(tl.entries); n > 0 && tl.entries[n-1].at.After(at) {
		return fmt.Errorf("bgp: out-of-order update for %v via %s", r.Prefix, r.Egress)
	}
	tl.entries = append(tl.entries, ribEntry{at: at, withdrawn: withdraw, route: r})
	s.updates = append(s.updates, Update{At: at, Withdraw: withdraw, Route: r})
	// Maintain sorted, distinct epoch boundaries (updates to different
	// prefixes may interleave in time).
	i := sort.Search(len(s.epochs), func(i int) bool { return !s.epochs[i].Before(at) })
	if i == len(s.epochs) || !s.epochs[i].Equal(at) {
		s.epochs = append(s.epochs, time.Time{})
		copy(s.epochs[i+1:], s.epochs[i:])
		s.epochs[i] = at
	}
	s.gen.Add(1)
	return nil
}

// Updates returns the full reflector update feed in record order. The slice
// is shared; callers must not modify it.
func (s *Sim) Updates() []Update { return s.updates }

// Lookup performs the longest-prefix match over all prefixes that have at
// least one active route at time t, as the paper does against historical
// BGP table data. The scan over the prefix table is memoized per
// (address, epoch).
func (s *Sim) Lookup(ip netip.Addr, t time.Time) (netip.Prefix, bool) {
	k := lookupKey{addr: ip, epoch: s.EpochAt(t)}
	tab := s.table()
	sh := &tab.shards[k.shard()]
	sh.mu.RLock()
	v, ok := sh.lookup[k]
	sh.mu.RUnlock()
	if ok {
		mLookupHits.Inc()
		return v.pfx, v.ok
	}
	mLookupMisses.Inc()
	pfx, found := s.lookup(ip, t)
	sh.mu.Lock()
	sh.lookup[k] = lookupVal{pfx: pfx, ok: found}
	sh.mu.Unlock()
	return pfx, found
}

func (s *Sim) lookup(ip netip.Addr, t time.Time) (netip.Prefix, bool) {
	best := netip.Prefix{}
	found := false
	for pfx, egresses := range s.prefixes {
		if !pfx.Contains(ip) {
			continue
		}
		active := false
		for _, tl := range egresses {
			if _, ok := tl.at(t); ok {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		if !found || pfx.Bits() > best.Bits() {
			best, found = pfx, true
		}
	}
	return best, found
}

// Candidates returns the active routes for an exact prefix at time t,
// sorted by egress name for determinism.
func (s *Sim) Candidates(prefix netip.Prefix, t time.Time) []Route {
	var out []Route
	for _, tl := range s.prefixes[prefix.Masked()] {
		if r, ok := tl.at(t); ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Egress < out[j].Egress })
	return out
}

// better reports whether a beats b in the emulated BGP decision process at
// the given ingress router and time: highest local preference, shortest AS
// path, lowest origin, lowest MED, lowest IGP distance to the egress
// (hot-potato), then lowest egress identifier as the final deterministic
// tie-break (standing in for lowest router ID).
func (s *Sim) better(a, b Route, ingress string, t time.Time) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.ASPathLen != b.ASPathLen {
		return a.ASPathLen < b.ASPathLen
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	da := s.ospf.Distance(ingress, a.Egress, t)
	db := s.ospf.Distance(ingress, b.Egress, t)
	if da != db {
		return da < db
	}
	return a.Egress < b.Egress
}

// BestEgress emulates the decision process at ingress for traffic to ip at
// time t and returns the selected route. The selection is memoized per
// (ingress, prefix, BGP epoch, OSPF epoch): candidates are fixed within a
// BGP epoch and the hot-potato distances within an OSPF epoch, so the
// emulation runs once per epoch pair no matter how many diagnoses ask.
// A memoized error is returned verbatim, so its message names the first
// instant queried in the epoch rather than t.
func (s *Sim) BestEgress(ingress string, ip netip.Addr, t time.Time) (Route, error) {
	pfx, ok := s.Lookup(ip, t)
	if !ok {
		return Route{}, fmt.Errorf("bgp: no route to %v at %v", ip, t)
	}
	k := bestKey{ingress: ingress, prefix: pfx, epoch: s.EpochAt(t), ospfEpoch: s.ospf.EpochAt(t)}
	tab := s.table()
	sh := &tab.shards[k.shard()]
	sh.mu.RLock()
	v, hit := sh.best[k]
	sh.mu.RUnlock()
	if hit {
		mBestHits.Inc()
		return v.route, v.err
	}
	mBestMisses.Inc()
	route, err := s.bestEgress(ingress, pfx, t)
	sh.mu.Lock()
	sh.best[k] = bestVal{route: route, err: err}
	sh.mu.Unlock()
	return route, err
}

func (s *Sim) bestEgress(ingress string, pfx netip.Prefix, t time.Time) (Route, error) {
	cands := s.Candidates(pfx, t)
	if len(cands) == 0 {
		return Route{}, fmt.Errorf("bgp: prefix %v has no active route at %v", pfx, t)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if s.better(c, best, ingress, t) {
			best = c
		}
	}
	return best, nil
}

// EgressChange records that the best egress from Ingress toward the
// destination prefix changed at At.
type EgressChange struct {
	At      time.Time
	Ingress string
	Prefix  netip.Prefix
	Old     string
	New     string
}

// EgressChanges replays the update feed between from and to and reports
// every instant at which the emulated best egress from ingress toward dst
// changed. This drives the "BGP egress change" event of Table I.
func (s *Sim) EgressChanges(ingress string, dst netip.Addr, from, to time.Time) []EgressChange {
	var times []time.Time
	for _, u := range s.updates {
		if u.At.Before(from) || u.At.After(to) {
			continue
		}
		if u.Route.Prefix.Masked().Contains(dst) {
			times = append(times, u.At)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })

	var out []EgressChange
	prev := ""
	if r, err := s.BestEgress(ingress, dst, from); err == nil {
		prev = r.Egress
	}
	for _, at := range times {
		cur := ""
		var pfx netip.Prefix
		if r, err := s.BestEgress(ingress, dst, at); err == nil {
			cur, pfx = r.Egress, r.Prefix
		}
		if cur != prev {
			out = append(out, EgressChange{At: at, Ingress: ingress, Prefix: pfx, Old: prev, New: cur})
			prev = cur
		}
	}
	return out
}
