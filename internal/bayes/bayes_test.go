package bayes

import (
	"math"
	"testing"
	"testing/quick"
)

// fig8Config builds the Bayesian configuration of Fig. 8: three virtual
// root causes for the BGP-flap application. A line-card issue predicts
// simultaneous flaps across sessions sharing the card; an interface issue
// predicts a single-session flap with link-level evidence; a CPU issue
// predicts hold-timer expiry with high CPU.
func fig8Config(t *testing.T) *Config {
	t.Helper()
	c := NewConfig()
	add := func(cl Class) {
		t.Helper()
		if err := c.AddClass(cl); err != nil {
			t.Fatal(err)
		}
	}
	add(Class{
		Name:  "CPU High Issue",
		Prior: Low,
		Present: map[string]Ratio{
			"cpu-high": High, "ebgp-hte": Medium,
		},
		Absent: map[string]Ratio{"cpu-high": 1.0 / 50},
	})
	add(Class{
		Name:  "Interface Issue",
		Prior: Medium,
		Present: map[string]Ratio{
			"interface-flap": High, "line-proto-flap": Medium,
			"same-card-multi-flap": 1.0 / 100, // a lone interface issue does not flap the whole card
		},
	})
	add(Class{
		Name:  "Line-card Issue",
		Prior: Low,
		Present: map[string]Ratio{
			"interface-flap": Medium, "same-card-multi-flap": High,
		},
	})
	return c
}

func TestSingleSymptomInterfaceIssue(t *testing.T) {
	c := fig8Config(t)
	res, err := c.Classify(Evidence{"interface-flap": true, "line-proto-flap": true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != "Interface Issue" {
		t.Errorf("best = %q, want Interface Issue (ranked %+v)", res.Best, res.Ranked)
	}
}

func TestCPUIssue(t *testing.T) {
	c := fig8Config(t)
	res, err := c.Classify(Evidence{"cpu-high": true, "ebgp-hte": true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != "CPU High Issue" {
		t.Errorf("best = %q (ranked %+v)", res.Best, res.Ranked)
	}
}

// TestLineCardJointInference reproduces the §IV-C scenario shape: many
// flaps on sessions sharing one line card, each with an interface-flap
// signature. Per-instance classification says Interface Issue (the
// rule-based answer); joint classification over the group with the
// same-card feature says Line-card Issue.
func TestLineCardJointInference(t *testing.T) {
	c := fig8Config(t)
	single := Evidence{"interface-flap": true}
	res, err := c.Classify(single)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != "Interface Issue" {
		t.Fatalf("single-flap best = %q", res.Best)
	}

	group := make([]Evidence, 133)
	for i := range group {
		group[i] = Evidence{"interface-flap": true, "same-card-multi-flap": true}
	}
	jres, err := c.ClassifyJoint(group)
	if err != nil {
		t.Fatal(err)
	}
	if jres.Best != "Line-card Issue" {
		t.Errorf("joint best = %q, want Line-card Issue (ranked %+v)", jres.Best, jres.Ranked)
	}
}

func TestAbsenceCountsAgainst(t *testing.T) {
	c := fig8Config(t)
	// HTE without CPU evidence: the CPU class is penalized by its Absent
	// ratio, so Interface Issue (prior Medium) wins over it even with no
	// interface evidence at all... with no features present except HTE.
	res, err := c.Classify(Evidence{"ebgp-hte": true})
	if err != nil {
		t.Fatal(err)
	}
	// CPU: log(2) + log(100) + log(1/50) = log(4). Interface: log(100).
	if res.Best != "Interface Issue" {
		t.Errorf("best = %q (ranked %+v)", res.Best, res.Ranked)
	}
}

func TestValidation(t *testing.T) {
	c := NewConfig()
	if err := c.AddClass(Class{Prior: Low}); err == nil {
		t.Error("nameless class accepted")
	}
	if err := c.AddClass(Class{Name: "x", Prior: 0}); err == nil {
		t.Error("zero prior accepted")
	}
	if err := c.AddClass(Class{Name: "x", Prior: Low, Present: map[string]Ratio{"f": -1}}); err == nil {
		t.Error("negative ratio accepted")
	}
	if err := c.AddClass(Class{Name: "x", Prior: Low, Absent: map[string]Ratio{"f": 0}}); err == nil {
		t.Error("zero absence ratio accepted")
	}
	if err := c.AddClass(Class{Name: "x", Prior: Low}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(Class{Name: "x", Prior: Low}); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := c.Classify(nil); err != nil {
		t.Errorf("nil evidence should classify with defaults: %v", err)
	}
	if _, err := c.ClassifyJoint(nil); err == nil {
		t.Error("empty joint classification accepted")
	}
	if _, err := NewConfig().Classify(Evidence{}); err == nil {
		t.Error("classless classification accepted")
	}
}

func TestClassesAndFeatures(t *testing.T) {
	c := fig8Config(t)
	if got := c.Classes(); len(got) != 3 || got[0] != "CPU High Issue" {
		t.Errorf("Classes = %v", got)
	}
	f := c.Features()
	if len(f) != 5 {
		t.Errorf("Features = %v", f)
	}
	for i := 1; i < len(f); i++ {
		if f[i-1] > f[i] {
			t.Fatal("Features not sorted")
		}
	}
}

// TestScaleInvariance is the paper's observation that multiplying the
// probability parameters by a constant does not change the argmax: adding
// the same log-constant to every class's prior preserves the ranking.
func TestScaleInvariance(t *testing.T) {
	f := func(p1, p2, e1, e2 uint8, present bool) bool {
		mk := func(scale float64) *Config {
			c := NewConfig()
			c.AddClass(Class{Name: "a", Prior: Ratio(float64(p1%50+1) * scale),
				Present: map[string]Ratio{"f": Ratio(e1%50 + 1)}})
			c.AddClass(Class{Name: "b", Prior: Ratio(float64(p2%50+1) * scale),
				Present: map[string]Ratio{"f": Ratio(e2%50 + 1)}})
			return c
		}
		ev := Evidence{"f": present}
		r1, err1 := mk(1).Classify(ev)
		r2, err2 := mk(1000).Classify(ev)
		return err1 == nil && err2 == nil && r1.Best == r2.Best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestJointMonotone: adding another instance with supporting evidence for
// class X can only improve X's standing relative to a class indifferent to
// that evidence.
func TestJointMonotone(t *testing.T) {
	c := fig8Config(t)
	ev := Evidence{"interface-flap": true, "same-card-multi-flap": true}
	gap := func(n int) float64 {
		evs := make([]Evidence, n)
		for i := range evs {
			evs[i] = ev
		}
		res, err := c.ClassifyJoint(evs)
		if err != nil {
			t.Fatal(err)
		}
		var lc, ii float64
		for _, s := range res.Ranked {
			switch s.Class {
			case "Line-card Issue":
				lc = s.LogOdds
			case "Interface Issue":
				ii = s.LogOdds
			}
		}
		return lc - ii
	}
	if !(gap(10) > gap(2) && gap(2) > gap(1)) {
		t.Errorf("joint evidence not monotone: %v %v %v", gap(1), gap(2), gap(10))
	}
}

func TestLogOddsFinite(t *testing.T) {
	c := fig8Config(t)
	evs := make([]Evidence, 10000)
	for i := range evs {
		evs[i] = Evidence{"interface-flap": true}
	}
	res, err := c.ClassifyJoint(evs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Ranked {
		if math.IsInf(s.LogOdds, 0) || math.IsNaN(s.LogOdds) {
			t.Errorf("log-odds overflowed: %+v", s)
		}
	}
}
