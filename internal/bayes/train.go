package bayes

import (
	"fmt"
	"sort"
)

// Labeled is one training example: an evidence vector with its known (or
// rule-based-diagnosed) root-cause class. The paper bootstraps Bayesian
// parameters "from classified historical data, which we can bootstrap
// using the rule-based reasoning" (§II-D.2).
type Labeled struct {
	Class    string
	Evidence Evidence
}

// TrainOptions tunes parameter estimation.
type TrainOptions struct {
	// Smoothing is the Laplace pseudo-count guarding zero frequencies
	// (default 1).
	Smoothing float64
	// MinExamples drops classes with fewer training examples (default 1).
	MinExamples int
}

// Train estimates a classifier configuration from labeled examples:
// priors from class frequencies and per-feature likelihood ratios
// p(e|r)/p(e|r̄) with Laplace smoothing. Both presence and absence ratios
// are populated, so missing evidence counts against classes that usually
// exhibit it.
func Train(examples []Labeled, opts TrainOptions) (*Config, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("bayes: no training examples")
	}
	if opts.Smoothing <= 0 {
		opts.Smoothing = 1
	}
	if opts.MinExamples <= 0 {
		opts.MinExamples = 1
	}

	features := map[string]bool{}
	classCount := map[string]int{}
	// present[class][feature] = examples of class with feature observed.
	present := map[string]map[string]int{}
	for _, ex := range examples {
		if ex.Class == "" {
			return nil, fmt.Errorf("bayes: training example without a class")
		}
		classCount[ex.Class]++
		if present[ex.Class] == nil {
			present[ex.Class] = map[string]int{}
		}
		for f, on := range ex.Evidence {
			features[f] = true
			if on {
				present[ex.Class][f]++
			}
		}
	}

	classes := make([]string, 0, len(classCount))
	for c, n := range classCount {
		if n >= opts.MinExamples {
			classes = append(classes, c)
		}
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("bayes: every class below MinExamples=%d", opts.MinExamples)
	}
	sort.Strings(classes)

	total := len(examples)
	s := opts.Smoothing
	cfg := NewConfig()
	for _, c := range classes {
		nc := classCount[c]
		rest := total - nc
		cl := Class{
			Name:    c,
			Prior:   Ratio((float64(nc) + s) / (float64(rest) + s)),
			Present: map[string]Ratio{},
			Absent:  map[string]Ratio{},
		}
		for f := range features {
			inClass := present[c][f]
			elsewhere := 0
			for other, m := range present {
				if other != c {
					elsewhere += m[f]
				}
			}
			pPresent := (float64(inClass) + s) / (float64(nc) + 2*s)
			pPresentBar := (float64(elsewhere) + s) / (float64(rest) + 2*s)
			cl.Present[f] = Ratio(pPresent / pPresentBar)
			cl.Absent[f] = Ratio((1 - pPresent) / (1 - pPresentBar))
		}
		if err := cfg.AddClass(cl); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}
