// Package bayes implements G-RCA's Bayesian inference engine (paper
// §II-D.2): a Naive Bayes classifier in which the potential root causes
// are the classes and the presence or absence of diagnostic evidence are
// the features. The engine selects the class with the maximum likelihood
// ratio
//
//	argmax_r  p(r)/p(r̄) × Π_i p(e_i|r)/p(e_i|r̄)
//
// Ratios are configured with the paper's fuzzy discrete values Low,
// Medium, and High (2, 100, and 20000); because only the argmax matters,
// any constant scaling of the underlying probabilities cancels, which is
// why the coarse integer ratios work (§II-D.2).
//
// Unlike rule-based reasoning, classes may be *virtual* (unobservable)
// root causes with no event signature of their own — e.g. "Line-card
// Issue" — and multiple symptom instances can be classified jointly to
// deduce a common root cause (§IV-C).
package bayes

import (
	"fmt"
	"math"
	"sort"
)

// Ratio is a likelihood ratio. The fuzzy values below follow the paper;
// arbitrary positive values are also accepted (e.g. trained from
// rule-classified historical data).
type Ratio float64

const (
	// Low ≈ weak support (ratio 2).
	Low Ratio = 2
	// Medium ≈ moderate support (ratio 100).
	Medium Ratio = 100
	// High ≈ strong support (ratio 20000).
	High Ratio = 20000
	// Neutral carries no information.
	Neutral Ratio = 1
)

// Class is one candidate root cause.
type Class struct {
	// Name labels the root cause; virtual causes need no event signature.
	Name string
	// Prior is the a-priori odds ratio p(r)/p(r̄).
	Prior Ratio
	// Present maps a feature to the ratio p(e|r)/p(e|r̄) applied when the
	// feature is observed.
	Present map[string]Ratio
	// Absent maps a feature to the ratio applied when the feature is NOT
	// observed; unlisted features default to Neutral. Use a value below 1
	// to make missing evidence count against the class.
	Absent map[string]Ratio
}

// Evidence is the feature vector of one symptom instance: feature → was it
// observed. Features missing from the map are treated as absent.
type Evidence map[string]bool

// Config is a classifier configuration.
type Config struct {
	classes  []Class
	features map[string]bool
}

// NewConfig returns an empty classifier configuration.
func NewConfig() *Config { return &Config{features: map[string]bool{}} }

// AddClass registers a root-cause class. Names must be unique and all
// ratios positive.
func (c *Config) AddClass(cl Class) error {
	if cl.Name == "" {
		return fmt.Errorf("bayes: class without a name")
	}
	for _, existing := range c.classes {
		if existing.Name == cl.Name {
			return fmt.Errorf("bayes: duplicate class %q", cl.Name)
		}
	}
	if cl.Prior <= 0 {
		return fmt.Errorf("bayes: class %q has non-positive prior", cl.Name)
	}
	for f, r := range cl.Present {
		if r <= 0 {
			return fmt.Errorf("bayes: class %q feature %q has non-positive ratio", cl.Name, f)
		}
		c.features[f] = true
	}
	for f, r := range cl.Absent {
		if r <= 0 {
			return fmt.Errorf("bayes: class %q feature %q has non-positive absence ratio", cl.Name, f)
		}
		c.features[f] = true
	}
	c.classes = append(c.classes, cl)
	return nil
}

// Classes returns the configured class names in add order.
func (c *Config) Classes() []string {
	out := make([]string, len(c.classes))
	for i, cl := range c.classes {
		out[i] = cl.Name
	}
	return out
}

// Features returns the full feature universe, sorted.
func (c *Config) Features() []string {
	out := make([]string, 0, len(c.features))
	for f := range c.features {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Score is one class's posterior log-odds.
type Score struct {
	Class string
	// LogOdds is log(prior ratio) + Σ log(evidence ratios); comparable
	// across classes of the same classification only.
	LogOdds float64
}

// Result ranks all classes for a classification.
type Result struct {
	// Best is the maximum-likelihood-ratio class.
	Best string
	// Ranked lists all classes, best first. Ties break by add order.
	Ranked []Score
}

// Classify scores a single symptom's evidence vector.
func (c *Config) Classify(ev Evidence) (Result, error) {
	return c.ClassifyJoint([]Evidence{ev})
}

// ClassifyJoint scores a set of symptom instances together and deduces
// their common root cause: each class's log-odds accumulates the evidence
// ratios of every instance. This is the paper's multi-symptom inference —
// the mode that identified the line-card crash behind 133 near-simultaneous
// eBGP flaps.
func (c *Config) ClassifyJoint(evs []Evidence) (Result, error) {
	if len(c.classes) == 0 {
		return Result{}, fmt.Errorf("bayes: no classes configured")
	}
	if len(evs) == 0 {
		return Result{}, fmt.Errorf("bayes: no evidence to classify")
	}
	scores := make([]Score, len(c.classes))
	for i, cl := range c.classes {
		s := math.Log(float64(cl.Prior))
		for _, ev := range evs {
			for f := range c.features {
				if ev[f] {
					if r, ok := cl.Present[f]; ok {
						s += math.Log(float64(r))
					}
				} else if r, ok := cl.Absent[f]; ok {
					s += math.Log(float64(r))
				}
			}
		}
		scores[i] = Score{Class: cl.Name, LogOdds: s}
	}
	ranked := append([]Score(nil), scores...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].LogOdds > ranked[j].LogOdds })
	return Result{Best: ranked[0].Class, Ranked: ranked}, nil
}
