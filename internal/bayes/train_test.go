package bayes

import (
	"math/rand"
	"testing"
)

// synth draws labeled examples from a known generative model so we can
// check the trained classifier recovers it.
func synth(rng *rand.Rand, n int) []Labeled {
	var out []Labeled
	for i := 0; i < n; i++ {
		var ex Labeled
		if rng.Intn(10) < 7 {
			// Interface issues: flap almost always, HTE sometimes.
			ex.Class = "iface"
			ex.Evidence = Evidence{
				"flap": rng.Float64() < 0.95,
				"hte":  rng.Float64() < 0.3,
				"cpu":  rng.Float64() < 0.02,
			}
		} else {
			// CPU issues: cpu + hte, almost never a flap.
			ex.Class = "cpu"
			ex.Evidence = Evidence{
				"flap": rng.Float64() < 0.05,
				"hte":  rng.Float64() < 0.9,
				"cpu":  rng.Float64() < 0.9,
			}
		}
		out = append(out, ex)
	}
	return out
}

func TestTrainRecoversModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg, err := Train(synth(rng, 2000), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Classes(); len(got) != 2 {
		t.Fatalf("classes = %v", got)
	}
	// Held-out accuracy.
	held := synth(rng, 500)
	correct := 0
	for _, ex := range held {
		res, err := cfg.Classify(ex.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(held)); acc < 0.9 {
		t.Errorf("held-out accuracy = %.3f, want ≥ 0.9", acc)
	}
	// Canonical vectors classify as expected.
	res, _ := cfg.Classify(Evidence{"flap": true})
	if res.Best != "iface" {
		t.Errorf("flap-only = %q", res.Best)
	}
	res, _ = cfg.Classify(Evidence{"cpu": true, "hte": true})
	if res.Best != "cpu" {
		t.Errorf("cpu+hte = %q", res.Best)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]Labeled{{Class: "", Evidence: Evidence{}}}, TrainOptions{}); err == nil {
		t.Error("unlabeled example accepted")
	}
	// MinExamples filters sparse classes.
	examples := []Labeled{
		{Class: "a", Evidence: Evidence{"f": true}},
		{Class: "a", Evidence: Evidence{"f": true}},
		{Class: "a", Evidence: Evidence{"f": true}},
		{Class: "rare", Evidence: Evidence{"g": true}},
	}
	cfg, err := Train(examples, TrainOptions{MinExamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Classes(); len(got) != 1 || got[0] != "a" {
		t.Errorf("classes = %v", got)
	}
	if _, err := Train(examples, TrainOptions{MinExamples: 10}); err == nil {
		t.Error("all-filtered training accepted")
	}
}

func TestTrainSmoothingKeepsRatiosFinite(t *testing.T) {
	// A feature never seen in one class must not produce zero or infinite
	// ratios (the classifier validates positivity on AddClass).
	examples := []Labeled{
		{Class: "a", Evidence: Evidence{"f": true}},
		{Class: "b", Evidence: Evidence{"f": false}},
	}
	cfg, err := Train(examples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Classify(Evidence{"f": true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Classify(Evidence{"f": false}); err != nil {
		t.Fatal(err)
	}
}
