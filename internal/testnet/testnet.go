// Package testnet builds a small hand-crafted ISP network used by tests
// and examples across the repository. It is deliberately tiny (three PoPs,
// six core routers, three provider-edge routers) but exercises every
// relationship the spatial model knows about: intra- and inter-PoP links,
// ECMP, layer-1 diversity (SONET access circuits, optical-mesh backbone
// circuits), customer attachments, a CDN node, and peering egresses.
//
// Layout (all inter-PoP weights 10, intra-PoP 5, PER uplinks 5):
//
//	nyc-cr1 ──── chi-cr1 ──── wdc-cr1
//	   │    ╲  ╱    │    ╲  ╱    │
//	   │     ╳      │     ╳      │        (cross links nyc1–chi2 etc. absent;
//	nyc-cr2 ──── chi-cr2 ──── wdc-cr2      the ╳ marks only the drawing crossing)
//	   │            │            │
//	nyc-per1     chi-per1     wdc-per1
//	   │            │
//	 custA-nyc   custA-chi, custB
//
// nyc-per1 also hosts the CDN node "cdn-nyc" (server "cdn-nyc-s1"); the
// client prefix 198.51.100.0/24 is reachable via peering egresses at
// chi-per1 and wdc-per1 with equal BGP attributes, so hot-potato routing
// decides.
package testnet

import (
	"fmt"
	"net/netip"
	"time"

	"grca/internal/bgp"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/ospf"
)

// T0 is the reference start of time for the fixture: all announcements and
// initial weights are in effect at T0.
var T0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// Net bundles the fixture's substrates.
type Net struct {
	Topo *netmodel.Topology
	OSPF *ospf.Sim
	BGP  *bgp.Sim
	View *netstate.View
}

// ClientPrefix is the externally announced prefix containing the CDN
// measurement agent.
var ClientPrefix = netip.MustParsePrefix("198.51.100.0/24")

// AgentAddr is the CDN measurement agent's address.
var AgentAddr = netip.MustParseAddr("198.51.100.10")

type builder struct {
	topo    *netmodel.Topology
	nextSub int
	fail    func(format string, args ...any)
}

func (b *builder) router(name, pop string, role netmodel.Role, tz string) *netmodel.Router {
	n := len(b.topo.Routers) + 1
	r := &netmodel.Router{
		Name: name, PoP: pop, Role: role, TZName: tz,
		Loopback: netip.AddrFrom4([4]byte{10, 255, byte(n >> 8), byte(n)}),
	}
	if err := b.topo.AddRouter(r); err != nil {
		b.fail("testnet: %v", err)
	}
	b.topo.AddCard(r)
	b.topo.AddCard(r)
	return r
}

// link wires routers x and y on the given card slots and returns the link.
func (b *builder) link(id, x string, xSlot int, y string, ySlot int) *netmodel.LogicalLink {
	rx, ry := b.topo.Routers[x], b.topo.Routers[y]
	if rx == nil || ry == nil {
		b.fail("testnet: link %s references unknown router", id)
	}
	base := netip.AddrFrom4([4]byte{10, 0, byte(b.nextSub >> 6), byte(b.nextSub << 2)})
	b.nextSub++
	pfx := netip.PrefixFrom(base, 30)
	i1, err := b.topo.AddInterface(rx.Cards[xSlot], "to-"+y, pfx, base.Next())
	if err != nil {
		b.fail("testnet: %v", err)
	}
	i2, err := b.topo.AddInterface(ry.Cards[ySlot], "to-"+x, pfx, base.Next().Next())
	if err != nil {
		b.fail("testnet: %v", err)
	}
	l, err := b.topo.Connect(id, i1, i2)
	if err != nil {
		b.fail("testnet: %v", err)
	}
	return l
}

// Build constructs the fixture. fail is called on any internal
// inconsistency (tests pass t.Fatalf).
func Build(fail func(format string, args ...any)) *Net {
	b := &builder{topo: netmodel.NewTopology(), fail: fail}

	pops := []string{"nyc", "chi", "wdc"}
	tzs := map[string]string{"nyc": "America/New_York", "chi": "America/Chicago", "wdc": "America/New_York"}
	for _, p := range pops {
		b.router(p+"-cr1", p, netmodel.RoleCore, tzs[p])
		b.router(p+"-cr2", p, netmodel.RoleCore, tzs[p])
		b.router(p+"-per1", p, netmodel.RoleProviderEdge, tzs[p])
	}
	b.router("custA-nyc", "ext", netmodel.RoleCustomer, "UTC")
	b.router("custA-chi", "ext", netmodel.RoleCustomer, "UTC")
	b.router("custB", "ext", netmodel.RoleCustomer, "UTC")

	weights := map[string]int{}
	backbone := func(id, x, y string, w int) *netmodel.LogicalLink {
		l := b.link(id, x, 0, y, 0)
		weights[id] = w
		b.topo.AddPhysical(id+"-c1", l, netmodel.L1OpticalMesh, "mesh-"+x, "mesh-"+y)
		return l
	}
	// Intra-PoP core pairs.
	for _, p := range pops {
		backbone(p+"-core", p+"-cr1", p+"-cr2", 5)
	}
	// Inter-PoP parallel planes.
	backbone("nyc-chi-1", "nyc-cr1", "chi-cr1", 10)
	backbone("nyc-chi-2", "nyc-cr2", "chi-cr2", 10)
	backbone("chi-wdc-1", "chi-cr1", "wdc-cr1", 10)
	backbone("chi-wdc-2", "chi-cr2", "wdc-cr2", 10)
	backbone("nyc-wdc-1", "nyc-cr1", "wdc-cr1", 25)
	backbone("nyc-wdc-2", "nyc-cr2", "wdc-cr2", 25)

	// PER uplinks (dual-homed to both cores, card 1 on the PER side).
	for _, p := range pops {
		for i, cr := range []string{p + "-cr1", p + "-cr2"} {
			id := fmt.Sprintf("%s-up%d", p, i+1)
			l := b.link(id, p+"-per1", 1, cr, 1)
			weights[id] = 5
			b.topo.AddPhysical(id+"-c1", l, netmodel.L1OpticalMesh, "mesh-"+p+"-agg")
			for _, ifc := range []*netmodel.Interface{l.A, l.B} {
				if ifc.Router.Role == netmodel.RoleProviderEdge {
					ifc.Uplink = true
				}
			}
		}
	}

	// Customer attachments over SONET access rings (card 0 on the PER).
	attach := func(id, per, cust string) *netmodel.LogicalLink {
		l := b.link(id, per, 0, cust, 0)
		weights[id] = 100
		b.topo.AddPhysical(id+"-c1", l, netmodel.L1SONET, "sonet-"+per+"-a", "sonet-"+per+"-b")
		for _, ifc := range []*netmodel.Interface{l.A, l.B} {
			if ifc.Router.Role == netmodel.RoleProviderEdge {
				other := l.Other(ifc.Router.Name)
				ifc.CustomerFacing = true
				ifc.Peer = other.Router.Name
				ifc.PeerIP = other.IP
			}
		}
		return l
	}
	attach("custA-nyc-att", "nyc-per1", "custA-nyc")
	attach("custA-chi-att", "chi-per1", "custA-chi")
	attach("custB-att", "chi-per1", "custB")

	osim := ospf.New(b.topo, weights)
	bsim := bgp.New(osim)

	// Peering egresses for the client prefix: equal attributes at chi-per1
	// and wdc-per1; hot potato from nyc picks chi (distance 20 vs 35).
	mustAnnounce := func(r bgp.Route) {
		if err := bsim.Announce(T0, r); err != nil {
			fail("testnet: %v", err)
		}
	}
	mustAnnounce(bgp.Route{Prefix: ClientPrefix, Egress: "chi-per1", LocalPref: 100, ASPathLen: 3})
	mustAnnounce(bgp.Route{Prefix: ClientPrefix, Egress: "wdc-per1", LocalPref: 100, ASPathLen: 3})
	// A broad covering route via wdc only.
	mustAnnounce(bgp.Route{Prefix: netip.MustParsePrefix("198.51.0.0/16"), Egress: "wdc-per1", LocalPref: 100, ASPathLen: 4})

	view := netstate.NewView(b.topo, osim, bsim)
	view.RegisterServer("cdn-nyc-s1", "cdn-nyc", "nyc-per1")
	view.RegisterClient("agent-1", AgentAddr, "")

	return &Net{Topo: b.topo, OSPF: osim, BGP: bsim, View: view}
}
