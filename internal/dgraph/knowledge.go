package dgraph

import (
	"fmt"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/temporal"
)

// Standard temporal margins used by the catalogue defaults.
const (
	// SyslogFuzz models timestamp inaccuracy of syslog messages (the
	// paper's ±5 s).
	SyslogFuzz = 5 * time.Second
	// SNMPBin is the 5-minute aggregation interval of SNMP measurements; a
	// condition reported in a bin may have occurred anywhere within it.
	SNMPBin = 5 * time.Minute
	// BGPHoldTimer is the default eBGP hold time: a session flap may trail
	// its cause by up to this long.
	BGPHoldTimer = 180 * time.Second
	// RestorationLag bounds how long after a layer-1 restoration event the
	// layer-3 consequences (interface flaps) are still attributable to it.
	RestorationLag = 30 * time.Second
	// CommandLag bounds the delay between an operator command and the
	// routing events it triggers.
	CommandLag = 60 * time.Second
)

// Syslog5 is the default expansion for instantaneous syslog-derived
// events: pad the raw interval by the syslog timestamp fuzz.
var Syslog5 = temporal.Expansion{Option: temporal.StartEnd, Left: SyslogFuzz, Right: SyslogFuzz}

// SNMP5m is the default expansion for 5-minute-binned SNMP events.
var SNMP5m = temporal.Expansion{Option: temporal.StartEnd, Left: SNMPBin, Right: SNMPBin}

// Catalogue is the Knowledge Library's set of common diagnosis rules.
type Catalogue struct {
	rules []Rule
	byKey map[string]int
}

// Find returns the catalogue rule for the (symptom, diagnostic) pair.
func (c *Catalogue) Find(symptom, diagnostic string) (Rule, bool) {
	i, ok := c.byKey[symptom+" <- "+diagnostic]
	if !ok {
		return Rule{}, false
	}
	return c.rules[i], true
}

// All returns every catalogue rule. The slice is freshly allocated.
func (c *Catalogue) All() []Rule { return append([]Rule(nil), c.rules...) }

// Len returns the number of catalogue rules.
func (c *Catalogue) Len() int { return len(c.rules) }

// MustFind is Find for statically known pairs; it panics when the pair is
// absent, which indicates a programming error in an application package.
func (c *Catalogue) MustFind(symptom, diagnostic string) Rule {
	r, ok := c.Find(symptom, diagnostic)
	if !ok {
		panic(fmt.Sprintf("dgraph: catalogue has no rule %q <- %q", symptom, diagnostic))
	}
	return r
}

// Knowledge builds the common diagnosis-rule catalogue of Table II. Rows
// written "down/up/flap" in the paper are expanded into their variants:
// state-matched for layer-2/layer-3 escalation (line protocol down is
// explained by interface down, not by interface up), full cross product
// where the paper's row genuinely covers all variants (any restoration
// event can explain any interface transition).
//
// Catalogue rules carry Priority 0: priorities encode application-specific
// preference and are assigned when a rule is added to a graph.
func Knowledge() *Catalogue {
	c := &Catalogue{byKey: map[string]int{}}
	add := func(sym, diag string, tr temporal.Rule, level locus.Type, note string) {
		r := Rule{Symptom: sym, Diagnostic: diag, Temporal: tr, JoinLevel: level, Note: note}
		if err := r.Validate(nil); err != nil {
			panic(err)
		}
		if _, dup := c.byKey[r.Key()]; dup {
			panic("dgraph: duplicate catalogue rule " + r.Key())
		}
		c.byKey[r.Key()] = len(c.rules)
		c.rules = append(c.rules, r)
	}

	both5 := temporal.Rule{Symptom: Syslog5, Diagnostic: Syslog5}
	ifaceStates := []struct{ line, iface string }{
		{event.LineProtoDown, event.InterfaceDown},
		{event.LineProtoUp, event.InterfaceUp},
		{event.LineProtoFlap, event.InterfaceFlap},
	}

	// Line protocol down/up/flap <- Interface down/up/flap (state-matched,
	// same interface).
	for _, s := range ifaceStates {
		add(s.line, s.iface, both5, locus.Interface,
			"layer-2 line protocol follows its interface")
	}

	// Interface and line-protocol transitions <- layer-1 restorations.
	restoration := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartEnd, Left: SyslogFuzz, Right: SyslogFuzz},
		Diagnostic: temporal.Expansion{Option: temporal.StartEnd, Left: SyslogFuzz, Right: RestorationLag},
	}
	for _, l1 := range []string{event.SONETRestoration, event.OpticalRegular, event.OpticalFast} {
		for _, s := range ifaceStates {
			add(s.iface, l1, restoration, locus.Layer1Device,
				"layer-1 restoration rides under the interface's circuits")
			add(s.line, l1, restoration, locus.Layer1Device,
				"layer-1 restoration rides under the line protocol's circuits")
		}
	}

	// BGP egress change <- interface / line-protocol transitions along the
	// old path toward the destination.
	egress := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: CommandLag, Right: SyslogFuzz},
		Diagnostic: Syslog5,
	}
	for _, s := range ifaceStates {
		add(event.BGPEgressChange, s.iface, egress, locus.Interface,
			"egress shifts when a path interface transitions")
		add(event.BGPEgressChange, s.line, egress, locus.Interface,
			"egress shifts when a path line protocol transitions")
	}

	// Edge-to-edge performance symptoms <- routing and congestion causes.
	perf := []string{event.DelayIncrease, event.LossIncrease, event.ThroughputDrop}
	perfVsRouting := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: CommandLag, Right: SNMPBin},
		Diagnostic: Syslog5,
	}
	perfVsSNMP := temporal.Rule{Symptom: SNMP5m, Diagnostic: SNMP5m}
	for _, p := range perf {
		add(p, event.BGPEgressChange, perfVsRouting, locus.Router,
			"interdomain route change moves traffic onto a different path")
		add(p, event.LinkCongestion, perfVsSNMP, locus.Interface,
			"congested link on the backbone path")
		add(p, event.OSPFReconvergence, perfVsRouting, locus.Interface,
			"intradomain reconvergence transient on the path")
	}

	// Link loss alarm <- congestion on the same interface, or a flapping
	// line protocol corrupting packets.
	add(event.LinkLoss, event.LinkCongestion, perfVsSNMP, locus.Interface,
		"overflow losses accompany utilization peaks")
	lossVsSyslog := temporal.Rule{Symptom: SNMP5m, Diagnostic: Syslog5}
	for _, s := range ifaceStates {
		add(event.LinkLoss, s.line, lossVsSyslog, locus.Interface,
			"line-protocol instability corrupts packets")
	}

	// OSPF re-convergence <- the layer events and operator commands that
	// trigger it. The LSA and the trigger share the logical link.
	reconv := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: CommandLag, Right: SyslogFuzz},
		Diagnostic: Syslog5,
	}
	for _, s := range ifaceStates {
		add(event.OSPFReconvergence, s.line, reconv, locus.LogicalLink,
			"line-protocol transition floods new LSAs")
		add(event.OSPFReconvergence, s.iface, reconv, locus.LogicalLink,
			"interface transition floods new LSAs")
	}
	add(event.OSPFReconvergence, event.CommandCostIn, reconv, locus.LogicalLink,
		"operator cost-in command")
	add(event.OSPFReconvergence, event.CommandCostOut, reconv, locus.LogicalLink,
		"operator cost-out command")

	// Link cost out/down and in/up <- their triggers.
	add(event.LinkCostOutDown, event.LineProtoDown, reconv, locus.LogicalLink, "")
	add(event.LinkCostOutDown, event.InterfaceDown, reconv, locus.LogicalLink, "")
	add(event.LinkCostOutDown, event.CommandCostOut, reconv, locus.LogicalLink, "")
	add(event.LinkCostInUp, event.LineProtoUp, reconv, locus.LogicalLink, "")
	add(event.LinkCostInUp, event.InterfaceUp, reconv, locus.LogicalLink, "")
	add(event.LinkCostInUp, event.CommandCostIn, reconv, locus.LogicalLink, "")

	// Link congestion alarm <- OSPF re-convergence (rerouted traffic
	// piling onto the link). Routing scope: same router is the catalogue
	// default; applications refine.
	add(event.LinkCongestion, event.OSPFReconvergence,
		temporal.Rule{Symptom: SNMP5m, Diagnostic: Syslog5}, locus.Router,
		"reconvergence shifts traffic onto the congested link")

	return c
}
