package dgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the diagnosis graph in Graphviz format, matching the visual
// conventions of the paper's Figs. 4–6: the root symptom at the top,
// edges from symptom down to diagnostic labeled with the rule priority,
// and the join level on the edge tooltip. Event names listed in appSpecific
// are drawn as gray boxes, the paper's marker for application-specific
// events (Knowledge Library events stay white).
func (g *Graph) DOT(title string, appSpecific map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontsize=11];\n")

	events := g.Events()
	sort.Strings(events)
	for _, e := range events {
		attrs := ""
		switch {
		case e == g.Root:
			attrs = ", style=bold"
		case appSpecific[e]:
			attrs = ", style=filled, fillcolor=lightgray"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", e, e, attrs)
	}
	for _, r := range g.Rules() {
		style := ""
		if appSpecific[r.Symptom] || appSpecific[r.Diagnostic] {
			style = ", style=dashed" // application-specific rule
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, tooltip=%q%s];\n",
			r.Diagnostic, r.Symptom, fmt.Sprint(r.Priority),
			fmt.Sprintf("join %s; sym %s; diag %s", r.JoinLevel, r.Temporal.Symptom, r.Temporal.Diagnostic),
			style)
	}
	b.WriteString("}\n")
	return b.String()
}
