package dgraph

import (
	"strings"
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
)

func TestKnowledgeLibraryRules(t *testing.T) {
	c := Knowledge()
	// Table II's 30 compact rows expand to 55 concrete rules.
	if got := c.Len(); got != 55 {
		t.Errorf("catalogue size = %d, want 55", got)
	}
	// Spot-check representative rows of Table II.
	pairs := [][2]string{
		{event.LineProtoFlap, event.InterfaceFlap},
		{event.InterfaceFlap, event.SONETRestoration},
		{event.LineProtoDown, event.OpticalFast},
		{event.BGPEgressChange, event.InterfaceDown},
		{event.DelayIncrease, event.BGPEgressChange},
		{event.LossIncrease, event.LinkCongestion},
		{event.ThroughputDrop, event.OSPFReconvergence},
		{event.LinkLoss, event.LinkCongestion},
		{event.LinkLoss, event.LineProtoFlap},
		{event.OSPFReconvergence, event.CommandCostOut},
		{event.LinkCostOutDown, event.InterfaceDown},
		{event.LinkCostInUp, event.CommandCostIn},
		{event.LinkCongestion, event.OSPFReconvergence},
	}
	for _, p := range pairs {
		if _, ok := c.Find(p[0], p[1]); !ok {
			t.Errorf("catalogue missing rule %q <- %q", p[0], p[1])
		}
	}
	// State matching: line protocol down is not explained by interface up.
	if _, ok := c.Find(event.LineProtoDown, event.InterfaceUp); ok {
		t.Error("catalogue contains state-mismatched escalation rule")
	}
	// Every catalogue rule references a Knowledge Library event.
	lib := event.Knowledge()
	for _, r := range c.All() {
		if err := r.Validate(lib); err != nil {
			t.Errorf("catalogue rule invalid: %v", err)
		}
	}
}

func TestCatalogueMustFind(t *testing.T) {
	c := Knowledge()
	defer func() {
		if recover() == nil {
			t.Error("MustFind did not panic for unknown pair")
		}
	}()
	c.MustFind("no", "pair")
}

func TestGraphAddAndQuery(t *testing.T) {
	g := New(event.EBGPFlap)
	c := Knowledge()
	r := c.MustFind(event.InterfaceFlap, event.SONETRestoration)
	r.Priority = 190
	if err := g.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(r); err == nil {
		t.Error("duplicate edge accepted")
	}
	r.Priority = 200
	if err := g.Replace(r); err != nil {
		t.Fatal(err)
	}
	got := g.RulesFor(event.InterfaceFlap)
	if len(got) != 1 || got[0].Priority != 200 {
		t.Errorf("RulesFor after Replace = %+v", got)
	}
	if g.RulesFor("nothing") != nil {
		t.Error("RulesFor unknown symptom should be nil")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestRuleValidate(t *testing.T) {
	lib := event.Knowledge()
	bad := []Rule{
		{Symptom: "", Diagnostic: "x", JoinLevel: locus.Router},
		{Symptom: "x", Diagnostic: "x", JoinLevel: locus.Router},
		{Symptom: "x", Diagnostic: "y"},
		{Symptom: "undefined", Diagnostic: event.InterfaceFlap, JoinLevel: locus.Router},
		{Symptom: event.InterfaceFlap, Diagnostic: "undefined", JoinLevel: locus.Router},
	}
	for i, r := range bad {
		if err := r.Validate(lib); err == nil {
			t.Errorf("bad rule %d validated: %+v", i, r)
		}
	}
}

func TestGraphValidate(t *testing.T) {
	lib := event.Knowledge()
	c := Knowledge()

	g := New(event.LineProtoFlap)
	mustAdd := func(sym, diag string) {
		t.Helper()
		if err := g.Add(c.MustFind(sym, diag)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(event.LineProtoFlap, event.InterfaceFlap)
	mustAdd(event.InterfaceFlap, event.SONETRestoration)
	if err := g.Validate(lib); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}

	// Unreachable subtree.
	g2 := New(event.LineProtoFlap)
	if err := g2.Add(c.MustFind(event.InterfaceFlap, event.SONETRestoration)); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(lib); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable rules not detected: %v", err)
	}

	// Cycle: a <- b and b <- a via custom events.
	l := event.NewLibrary()
	for _, n := range []string{"a", "b", "root"} {
		if err := l.Define(event.Definition{Name: n, LocType: locus.Router}); err != nil {
			t.Fatal(err)
		}
	}
	g3 := New("root")
	add := func(s, d string) {
		t.Helper()
		if err := g3.Add(Rule{Symptom: s, Diagnostic: d, JoinLevel: locus.Router}); err != nil {
			t.Fatal(err)
		}
	}
	add("root", "a")
	add("a", "b")
	add("b", "a")
	if err := g3.Validate(l); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}

	// Empty root.
	if err := New("").Validate(lib); err == nil {
		t.Error("rootless graph validated")
	}
	// Undefined root.
	if err := New("no-such-event").Validate(lib); err == nil {
		t.Error("undefined root validated")
	}
}

func TestGraphEvents(t *testing.T) {
	c := Knowledge()
	g := New(event.LineProtoFlap)
	if err := g.Add(c.MustFind(event.LineProtoFlap, event.InterfaceFlap)); err != nil {
		t.Fatal(err)
	}
	ev := g.Events()
	if len(ev) != 2 {
		t.Fatalf("Events = %v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i-1] > ev[i] {
			t.Fatal("Events not sorted")
		}
	}
}
