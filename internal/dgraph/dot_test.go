package dgraph

import (
	"strings"
	"testing"

	"grca/internal/event"
	"grca/internal/locus"
)

func TestDOT(t *testing.T) {
	g := New("eBGP flap")
	mustAdd := func(r Rule) {
		t.Helper()
		if err := g.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	c := Knowledge()
	r := c.MustFind(event.LineProtoFlap, event.InterfaceFlap)
	r.Priority = 180
	mustAdd(r)
	mustAdd(Rule{Symptom: "eBGP flap", Diagnostic: event.LineProtoFlap,
		JoinLevel: locus.Interface, Priority: 170})

	dot := g.DOT("bgp-flap", map[string]bool{"eBGP flap": true})
	for _, want := range []string{
		`digraph "bgp-flap"`,
		`"eBGP flap" [label="eBGP flap", style=bold]`,
		`"Interface flap" -> "Line protocol flap" [label="180"`,
		`"Line protocol flap" -> "eBGP flap" [label="170"`,
		"style=dashed", // app-specific rule marker
		"rankdir=BT",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Rough structural sanity: one node line per event, one edge per rule.
	if got := strings.Count(dot, "->"); got != g.Len() {
		t.Errorf("edges = %d, want %d", got, g.Len())
	}
}
