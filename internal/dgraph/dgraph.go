// Package dgraph models G-RCA diagnosis graphs (paper §II-C, Figs. 4–6).
// Nodes are event signatures; each directed edge — a *diagnosis rule* —
// relates a symptom event to a diagnostic event and carries the temporal
// joining rule, the spatial joining rule (the join level), and the
// priority used by rule-based reasoning.
//
// The package also ships the RCA Knowledge Library's common diagnosis
// rules reproduced from Table II of the paper; applications assemble their
// graphs from catalogue rules plus application-specific rules, overriding
// priorities as their domain knowledge dictates.
package dgraph

import (
	"fmt"
	"sort"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/temporal"
)

// Rule is one edge of a diagnosis graph.
type Rule struct {
	// Symptom and Diagnostic name the two event signatures.
	Symptom    string
	Diagnostic string
	// Temporal is the six-parameter joining rule of Fig. 3.
	Temporal temporal.Rule
	// JoinLevel is the location type both event locations are converted to
	// for the spatial join.
	JoinLevel locus.Type
	// Priority orders root causes in rule-based reasoning; higher is a
	// stronger explanation. Deeper causes should carry higher priorities.
	Priority int
	// Note is free-form operator documentation.
	Note string
}

// Key identifies the edge (symptom, diagnostic) pair.
func (r Rule) Key() string { return r.Symptom + " <- " + r.Diagnostic }

// Validate performs static checks against an event library.
func (r Rule) Validate(lib *event.Library) error {
	if r.Symptom == "" || r.Diagnostic == "" {
		return fmt.Errorf("dgraph: rule with empty endpoint: %q", r.Key())
	}
	if r.Symptom == r.Diagnostic {
		return fmt.Errorf("dgraph: self-loop rule %q", r.Key())
	}
	if !r.JoinLevel.Valid() {
		return fmt.Errorf("dgraph: rule %q has invalid join level", r.Key())
	}
	if lib != nil {
		if _, ok := lib.Get(r.Symptom); !ok {
			return fmt.Errorf("dgraph: rule %q references undefined symptom event", r.Key())
		}
		if _, ok := lib.Get(r.Diagnostic); !ok {
			return fmt.Errorf("dgraph: rule %q references undefined diagnostic event", r.Key())
		}
	}
	return nil
}

// Graph is a diagnosis graph rooted at one symptom event signature.
type Graph struct {
	// Root is the symptom event the application diagnoses.
	Root string

	rules     []Rule
	bySymptom map[string][]int // symptom event → rule indexes, in add order
	byKey     map[string]int
}

// New returns an empty graph rooted at the named symptom event.
func New(root string) *Graph {
	return &Graph{Root: root, bySymptom: map[string][]int{}, byKey: map[string]int{}}
}

// Add inserts a rule. Duplicate (symptom, diagnostic) edges are rejected;
// use Replace to override a catalogue rule.
func (g *Graph) Add(r Rule) error {
	if err := r.Validate(nil); err != nil {
		return err
	}
	if _, dup := g.byKey[r.Key()]; dup {
		return fmt.Errorf("dgraph: duplicate rule %q", r.Key())
	}
	g.byKey[r.Key()] = len(g.rules)
	g.bySymptom[r.Symptom] = append(g.bySymptom[r.Symptom], len(g.rules))
	g.rules = append(g.rules, r)
	return nil
}

// Replace inserts or overwrites the rule with the same (symptom,
// diagnostic) pair.
func (g *Graph) Replace(r Rule) error {
	if err := r.Validate(nil); err != nil {
		return err
	}
	if i, ok := g.byKey[r.Key()]; ok {
		g.rules[i] = r
		return nil
	}
	return g.Add(r)
}

// RulesFor returns the rules whose symptom is the named event, in add
// order. The slice is shared; callers must not modify it.
func (g *Graph) RulesFor(symptom string) []Rule {
	idxs := g.bySymptom[symptom]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]Rule, len(idxs))
	for i, idx := range idxs {
		out[i] = g.rules[idx]
	}
	return out
}

// Rules returns every rule in the graph in add order.
func (g *Graph) Rules() []Rule { return append([]Rule(nil), g.rules...) }

// Len returns the number of rules.
func (g *Graph) Len() int { return len(g.rules) }

// Events returns every event name appearing in the graph, sorted.
func (g *Graph) Events() []string {
	set := map[string]bool{g.Root: true}
	for _, r := range g.rules {
		set[r.Symptom] = true
		set[r.Diagnostic] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks the whole graph: every rule validates against lib, every
// non-root symptom is reachable from the root, and the graph is acyclic.
// (The paper notes cyclic causal relationships — BGP flaps causing CPU
// overload causing BGP session timeouts — defeat evidence-based reasoning;
// G-RCA treats them as configuration errors to be refined, and so do we.)
func (g *Graph) Validate(lib *event.Library) error {
	if g.Root == "" {
		return fmt.Errorf("dgraph: graph without a root symptom")
	}
	if lib != nil {
		if _, ok := lib.Get(g.Root); !ok {
			return fmt.Errorf("dgraph: root event %q undefined", g.Root)
		}
	}
	for _, r := range g.rules {
		if err := r.Validate(lib); err != nil {
			return err
		}
	}
	// Reachability from the root.
	reach := map[string]bool{g.Root: true}
	queue := []string{g.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, idx := range g.bySymptom[n] {
			d := g.rules[idx].Diagnostic
			if !reach[d] {
				reach[d] = true
				queue = append(queue, d)
			}
		}
	}
	for sym := range g.bySymptom {
		if !reach[sym] {
			return fmt.Errorf("dgraph: rules for %q unreachable from root %q", sym, g.Root)
		}
	}
	return g.checkAcyclic()
}

func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) error
	visit = func(n string) error {
		color[n] = gray
		for _, idx := range g.bySymptom[n] {
			d := g.rules[idx].Diagnostic
			switch color[d] {
			case gray:
				return fmt.Errorf("dgraph: cycle through %q and %q", n, d)
			case white:
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for sym := range g.bySymptom {
		if color[sym] == white {
			if err := visit(sym); err != nil {
				return err
			}
		}
	}
	return nil
}
