// Package store implements the event store behind the G-RCA Data
// Collector. Normalized event instances are inserted as data is ingested
// and queried by the RCA engine by event name, time window, and location —
// the access pattern of the paper's "database tables" (§II-A) without the
// external database dependency.
//
// Instances are indexed per event name and kept sorted by start time; a
// per-name maximum-duration bound turns interval-overlap queries into two
// binary searches plus a bounded scan.
package store

import (
	"sort"
	"sync"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/obs"
)

// Pipeline-health metrics (see internal/obs): the engine's evidence
// search is store-bound, so query volume, window width, and result sizes
// are the first numbers to read when diagnosis latency drifts.
var (
	mAdds        = obs.GetCounter("store.adds")
	mQueries     = obs.GetCounter("store.queries")
	mQueryWindow = obs.GetHistogram("store.query.window.seconds",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200, 21600, 86400})
	mQueryResults  = obs.GetHistogram("store.query.results", obs.SizeBuckets)
	mLazyResorts   = obs.GetCounter("store.lazy.resorts")
	mQueryScanSkip = obs.GetCounter("store.query.scanned.nonoverlap")
)

type nameIndex struct {
	instances []*event.Instance // sorted by Start once clean
	maxDur    time.Duration
	dirty     bool
}

// Store is an in-memory event store. It is safe for concurrent use, and
// reads run under a shared lock so that diagnosis can fan out across
// goroutines. Reads may trigger a lazy re-sort after a batch of
// out-of-order writes; a read racing such a write may observe that
// batch partially, so run bulk analysis after ingestion settles (the
// normal collector → engine phasing).
type Store struct {
	mu     sync.RWMutex
	byName map[string]*nameIndex
	byID   []*event.Instance
	// first/last maintain the store-wide time span incrementally so Span
	// is O(1) instead of a full scan under the read lock.
	first, last time.Time
}

// New returns an empty store.
func New() *Store {
	return &Store{byName: map[string]*nameIndex{}}
}

// Add inserts a copy of in, assigns it a unique ID, and returns a pointer
// to the stored instance.
func (s *Store) Add(in event.Instance) *event.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(in)
}

func (s *Store) addLocked(in event.Instance) *event.Instance {
	mAdds.Inc()
	in.ID = len(s.byID)
	stored := &in
	s.byID = append(s.byID, stored)
	idx := s.byName[in.Name]
	if idx == nil {
		idx = &nameIndex{}
		s.byName[in.Name] = idx
	}
	if n := len(idx.instances); n > 0 && idx.instances[n-1].Start.After(in.Start) {
		idx.dirty = true
	}
	idx.instances = append(idx.instances, stored)
	if d := in.Duration(); d > idx.maxDur {
		idx.maxDur = d
	}
	if len(s.byID) == 1 || in.Start.Before(s.first) {
		s.first = in.Start
	}
	if len(s.byID) == 1 || in.End.After(s.last) {
		s.last = in.End
	}
	return stored
}

// AddAll inserts every instance, in order, under a single lock acquisition.
func (s *Store) AddAll(ins []event.Instance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, in := range ins {
		s.addLocked(in)
	}
}

// Get returns the instance with the given ID.
func (s *Store) Get(id int) (*event.Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.byID) {
		return nil, false
	}
	return s.byID[id], true
}

// Len returns the total number of stored instances.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Count returns the number of instances of the named event.
func (s *Store) Count(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if idx := s.byName[name]; idx != nil {
		return len(idx.instances)
	}
	return 0
}

// Names returns all event names present, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (idx *nameIndex) ensureSorted() {
	if !idx.dirty {
		return
	}
	sort.SliceStable(idx.instances, func(i, j int) bool {
		return idx.instances[i].Start.Before(idx.instances[j].Start)
	})
	idx.dirty = false
}

// Query returns the instances of the named event whose [Start, End]
// interval overlaps [from, to] (inclusive on both ends), ordered by start
// time. The returned slice is freshly allocated.
func (s *Store) Query(name string, from, to time.Time) []*event.Instance {
	return s.QueryFunc(name, from, to, nil)
}

// QueryFunc is Query with an optional location/content filter applied to
// each candidate. A nil filter accepts everything.
func (s *Store) QueryFunc(name string, from, to time.Time, keep func(*event.Instance) bool) []*event.Instance {
	mQueries.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.byName[name]
	if idx == nil || to.Before(from) {
		return nil
	}
	mQueryWindow.ObserveDuration(to.Sub(from))
	s.sortIfDirty(idx)
	ins := idx.instances
	// First candidate: an overlapping instance has Start >= from-maxDur.
	lowBound := from.Add(-idx.maxDur)
	lo := sort.Search(len(ins), func(i int) bool { return !ins[i].Start.Before(lowBound) })
	// Last candidate: Start <= to.
	hi := sort.Search(len(ins), func(i int) bool { return ins[i].Start.After(to) })
	var out []*event.Instance
	skipped := int64(0)
	for _, in := range ins[lo:hi] {
		if in.End.Before(from) {
			skipped++
			continue
		}
		if keep == nil || keep(in) {
			out = append(out, in)
		}
	}
	if skipped > 0 {
		mQueryScanSkip.Add(skipped)
	}
	mQueryResults.Observe(float64(len(out)))
	return out
}

// QueryAt returns the instances of the named event at the exact location,
// overlapping the window. This is the common engine fast path for
// element-level joins.
func (s *Store) QueryAt(name string, from, to time.Time, loc locus.Location) []*event.Instance {
	return s.QueryFunc(name, from, to, func(in *event.Instance) bool { return in.Loc == loc })
}

// sortIfDirty re-sorts an index that received out-of-order inserts. The
// caller holds the read lock; the upgrade re-checks under the write lock.
// It loops because a writer can slip in between the Unlock and the RLock
// re-acquisition and dirty the index again — returning then would let the
// caller binary-search an unsorted slice.
func (s *Store) sortIfDirty(idx *nameIndex) {
	for idx.dirty {
		mLazyResorts.Inc()
		s.mu.RUnlock()
		s.mu.Lock()
		idx.ensureSorted()
		s.mu.Unlock()
		s.mu.RLock()
	}
}

// All returns every instance of the named event ordered by start time.
func (s *Store) All(name string) []*event.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.byName[name]
	if idx == nil {
		return nil
	}
	s.sortIfDirty(idx)
	return append([]*event.Instance(nil), idx.instances...)
}

// Span returns the earliest start and latest end across the whole store;
// ok is false for an empty store. The bounds are maintained incrementally
// on insert, so this is O(1).
func (s *Store) Span() (first, last time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.byID) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.first, s.last, true
}
