// Package store implements the event store behind the G-RCA Data
// Collector. Normalized event instances are inserted as data is ingested
// and queried by the RCA engine by event name, time window, and location —
// the access pattern of the paper's "database tables" (§II-A) without the
// external database dependency.
//
// Instances are indexed per event name and kept sorted by start time; a
// per-name maximum-duration bound turns interval-overlap queries into two
// binary searches plus a bounded scan.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/obs"
)

// Pipeline-health metrics (see internal/obs): the engine's evidence
// search is store-bound, so query volume, window width, and result sizes
// are the first numbers to read when diagnosis latency drifts.
var (
	mAdds        = obs.GetCounter("store.adds")
	mQueries     = obs.GetCounter("store.queries")
	mQueryWindow = obs.GetHistogram("store.query.window.seconds",
		[]float64{1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200, 21600, 86400})
	mQueryResults  = obs.GetHistogram("store.query.results", obs.SizeBuckets)
	mLazyResorts   = obs.GetCounter("store.lazy.resorts")
	mQueryScanSkip = obs.GetCounter("store.query.scanned.nonoverlap")
	mEvicted       = obs.GetCounter("store.evicted")
	mEvictions     = obs.GetCounter("store.evictions")
)

type nameIndex struct {
	instances []*event.Instance // sorted by Start once clean
	maxDur    time.Duration
	dirty     bool
}

// Memory is the single-lock in-memory event store — one shard of the
// system. It is safe for concurrent use, and reads run under a shared
// lock so that diagnosis can fan out across goroutines. Reads may
// trigger a lazy re-sort after a batch of out-of-order writes; a read
// racing such a write may observe that batch partially, so run bulk
// analysis after ingestion settles (the normal collector → engine
// phasing). The Store interface abstracts over Memory and the
// multi-shard Sharded so readers never depend on placement.
type Memory struct {
	mu     sync.RWMutex
	byName map[string]*nameIndex
	// byID[i] holds the instance with ID base+i; a nil entry is an
	// evicted instance (a tombstone — IDs are never reused). Leading
	// tombstones are trimmed by advancing base.
	byID []*event.Instance
	base int
	live int
	// first/last maintain the store-wide time span incrementally so Span
	// is O(1) instead of a full scan under the read lock.
	first, last time.Time

	// retention, when positive, bounds the store's look-back window:
	// once the span exceeds retention (plus a 25% slack so eviction runs
	// in amortized batches rather than per insert), instances whose End
	// falls before last−retention are evicted.
	retention time.Duration

	// onAppend hooks are invoked for every stored instance, under the
	// write lock, in registration order; they must be fast and must not
	// call back into the store. The WAL records instances here; the
	// serving rollups maintain their aggregates here.
	onAppend []func(*event.Instance)
	// onEvict hooks are invoked after a retention eviction, outside the
	// lock, with the evicted instances and the cutoff applied.
	onEvict []func(evicted []*event.Instance, cutoff time.Time)
}

// New returns an empty single-shard store.
func New() *Memory {
	return &Memory{byName: map[string]*nameIndex{}}
}

// OnAppend registers fn to observe every stored instance. Hooks
// accumulate and run in registration order. Each is called synchronously
// under the store's write lock, so it must be cheap and must not call
// back into the store (enqueueing for a background writer is the
// intended use). Register hooks before concurrent use.
func (s *Memory) OnAppend(fn func(*event.Instance)) { s.onAppend = append(s.onAppend, fn) }

// OnEvict registers fn to run after each retention eviction, outside the
// store lock, with the evicted instances and the cutoff applied. Hooks
// accumulate and run in registration order. Snapshot/compaction
// coordination and rollup decrements hang off this hook. Register hooks
// before concurrent use.
func (s *Memory) OnEvict(fn func(evicted []*event.Instance, cutoff time.Time)) {
	s.onEvict = append(s.onEvict, fn)
}

// SetRetention bounds the store's look-back window: instances whose End
// falls more than d before the latest stored End are evicted, amortized
// over inserts. Zero disables eviction.
func (s *Memory) SetRetention(d time.Duration) {
	s.mu.Lock()
	s.retention = d
	s.mu.Unlock()
}

// Retention returns the configured look-back window (zero = unbounded).
func (s *Memory) Retention() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retention
}

// Add inserts a copy of in, assigns it a unique ID, and returns a pointer
// to the stored instance.
func (s *Memory) Add(in event.Instance) *event.Instance {
	s.mu.Lock()
	stored := s.addLocked(in)
	gone, cutoff := s.maybeEvictLocked()
	cbs := s.onEvict
	s.mu.Unlock()
	if len(gone) > 0 {
		for _, cb := range cbs {
			cb(gone, cutoff)
		}
	}
	return stored
}

func (s *Memory) addLocked(in event.Instance) *event.Instance {
	in.ID = s.base + len(s.byID)
	stored, _ := s.putLocked(in)
	return stored
}

// Put inserts a copy of in at its pre-assigned ID and returns a pointer
// to the stored instance. IDs are assigned externally (by a Sharded
// allocator or WAL replay), so a shard's ID sequence may be sparse: a
// forward gap leaves unassigned slots that behave exactly like
// tombstones. A Put below the current frontier fills the matching empty
// slot; reusing an occupied ID is an error.
func (s *Memory) Put(in event.Instance) (*event.Instance, error) {
	s.mu.Lock()
	stored, err := s.putLocked(in)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	gone, cutoff := s.maybeEvictLocked()
	cbs := s.onEvict
	s.mu.Unlock()
	if len(gone) > 0 {
		for _, cb := range cbs {
			cb(gone, cutoff)
		}
	}
	return stored, nil
}

// PutAll inserts every instance at its pre-assigned ID, in order, under a
// single lock acquisition. It stops at the first bad ID.
func (s *Memory) PutAll(ins []event.Instance) error {
	s.mu.Lock()
	for _, in := range ins {
		if _, err := s.putLocked(in); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	gone, cutoff := s.maybeEvictLocked()
	cbs := s.onEvict
	s.mu.Unlock()
	if len(gone) > 0 {
		for _, cb := range cbs {
			cb(gone, cutoff)
		}
	}
	return nil
}

func (s *Memory) putLocked(in event.Instance) (*event.Instance, error) {
	mAdds.Inc()
	next := s.base + len(s.byID)
	stored := &in
	switch {
	case len(s.byID) == 0 && in.ID >= next:
		// Empty (or fully trimmed) store: jump the base forward so a
		// shard whose first global ID is large doesn't allocate a nil
		// prefix.
		s.base = in.ID
		s.byID = append(s.byID, stored)
	case in.ID >= next:
		// Forward gap: IDs in between belong to other shards; leave
		// them as unassigned (tombstone-equivalent) slots.
		for next < in.ID {
			s.byID = append(s.byID, nil)
			next++
		}
		s.byID = append(s.byID, stored)
	case in.ID >= s.base:
		if s.byID[in.ID-s.base] != nil {
			return nil, fmt.Errorf("store: Put reuses occupied ID %d", in.ID)
		}
		s.byID[in.ID-s.base] = stored
	default:
		return nil, fmt.Errorf("store: Put ID %d below store base %d", in.ID, s.base)
	}
	s.live++
	idx := s.byName[in.Name]
	if idx == nil {
		idx = &nameIndex{}
		s.byName[in.Name] = idx
	}
	if n := len(idx.instances); n > 0 && idx.instances[n-1].Start.After(in.Start) {
		idx.dirty = true
	}
	idx.instances = append(idx.instances, stored)
	if d := in.Duration(); d > idx.maxDur {
		idx.maxDur = d
	}
	if s.live == 1 || in.Start.Before(s.first) {
		s.first = in.Start
	}
	if s.live == 1 || in.End.After(s.last) {
		s.last = in.End
	}
	for _, fn := range s.onAppend {
		fn(stored)
	}
	return stored, nil
}

// AddAll inserts every instance, in order, under a single lock acquisition.
func (s *Memory) AddAll(ins []event.Instance) {
	s.mu.Lock()
	for _, in := range ins {
		s.addLocked(in)
	}
	gone, cutoff := s.maybeEvictLocked()
	cbs := s.onEvict
	s.mu.Unlock()
	if len(gone) > 0 {
		for _, cb := range cbs {
			cb(gone, cutoff)
		}
	}
}

// Get returns the instance with the given ID. Evicted IDs report not
// found, exactly like IDs never assigned.
func (s *Memory) Get(id int) (*event.Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := id - s.base
	if i < 0 || i >= len(s.byID) || s.byID[i] == nil {
		return nil, false
	}
	return s.byID[i], true
}

// Len returns the number of live (non-evicted) stored instances.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// NextID returns the ID the next inserted instance will receive. IDs are
// assigned sequentially and never reused, so NextID−1 identifies the most
// recent insert even across evictions.
func (s *Memory) NextID() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base + len(s.byID)
}

// Count returns the number of instances of the named event.
func (s *Memory) Count(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if idx := s.byName[name]; idx != nil {
		return len(idx.instances)
	}
	return 0
}

// Names returns all event names present, sorted.
func (s *Memory) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (idx *nameIndex) ensureSorted() {
	if !idx.dirty {
		return
	}
	sort.SliceStable(idx.instances, func(i, j int) bool {
		return idx.instances[i].Start.Before(idx.instances[j].Start)
	})
	idx.dirty = false
}

// Query returns the instances of the named event whose [Start, End]
// interval overlaps [from, to] (inclusive on both ends), ordered by start
// time. The returned slice is freshly allocated.
func (s *Memory) Query(name string, from, to time.Time) []*event.Instance {
	return s.QueryFunc(name, from, to, nil)
}

// QueryFunc is Query with an optional location/content filter applied to
// each candidate. A nil filter accepts everything.
func (s *Memory) QueryFunc(name string, from, to time.Time, keep func(*event.Instance) bool) []*event.Instance {
	mQueries.Inc()
	s.mu.RLock()
	idx := s.byName[name]
	if idx == nil || to.Before(from) {
		s.mu.RUnlock()
		return nil
	}
	mQueryWindow.ObserveDuration(to.Sub(from))
	if idx.dirty {
		// Upgrade: drop the read lock and redo the whole read under the
		// write lock. Resuming on RLock after a write-locked re-sort would
		// trust state observed before the upgrade — the PR 3 store race,
		// now rejected by the deferunlock/lockorder analyzers.
		s.mu.RUnlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		if idx = s.byName[name]; idx == nil {
			return nil // evicted between the locks
		}
		if idx.dirty {
			mLazyResorts.Inc()
			idx.ensureSorted()
		}
		return queryScan(idx, from, to, keep)
	}
	defer s.mu.RUnlock()
	return queryScan(idx, from, to, keep)
}

// queryScan performs the window scan over a sorted index; the caller
// holds s.mu in either mode.
func queryScan(idx *nameIndex, from, to time.Time, keep func(*event.Instance) bool) []*event.Instance {
	ins := idx.instances
	// First candidate: an overlapping instance has Start >= from-maxDur.
	lowBound := from.Add(-idx.maxDur)
	lo := sort.Search(len(ins), func(i int) bool { return !ins[i].Start.Before(lowBound) })
	// Last candidate: Start <= to.
	hi := sort.Search(len(ins), func(i int) bool { return ins[i].Start.After(to) })
	var out []*event.Instance
	skipped := int64(0)
	for _, in := range ins[lo:hi] {
		if in.End.Before(from) {
			skipped++
			continue
		}
		if keep == nil || keep(in) {
			out = append(out, in)
		}
	}
	if skipped > 0 {
		mQueryScanSkip.Add(skipped)
	}
	mQueryResults.Observe(float64(len(out)))
	return out
}

// QueryAt returns the instances of the named event at the exact location,
// overlapping the window. This is the common engine fast path for
// element-level joins.
func (s *Memory) QueryAt(name string, from, to time.Time, loc locus.Location) []*event.Instance {
	return s.QueryFunc(name, from, to, func(in *event.Instance) bool { return in.Loc == loc })
}

// All returns every instance of the named event ordered by start time.
func (s *Memory) All(name string) []*event.Instance {
	s.mu.RLock()
	idx := s.byName[name]
	if idx == nil {
		s.mu.RUnlock()
		return nil
	}
	if idx.dirty {
		// Same upgrade discipline as QueryFunc: redo the read under the
		// write lock rather than resorting and resuming on RLock.
		s.mu.RUnlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		if idx = s.byName[name]; idx == nil {
			return nil
		}
		if idx.dirty {
			mLazyResorts.Inc()
			idx.ensureSorted()
		}
		return append([]*event.Instance(nil), idx.instances...)
	}
	defer s.mu.RUnlock()
	return append([]*event.Instance(nil), idx.instances...)
}

// ScanAfter returns up to limit live instances with ID > after, in ID
// (insertion) order, optionally restricted to one event name ("" matches
// every name). more reports whether further matching instances remain —
// the caller resumes with after = out[len(out)-1].ID. This is the
// pagination primitive behind the HTTP list endpoints: a bounded slice
// per call instead of one unbounded array for the whole store.
func (s *Memory) ScanAfter(name string, after, limit int) (out []*event.Instance, more bool) {
	if limit <= 0 {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := after + 1 - s.base
	if i < 0 {
		i = 0
	}
	for ; i < len(s.byID); i++ {
		in := s.byID[i]
		if in == nil || (name != "" && in.Name != name) {
			continue
		}
		if len(out) == limit {
			return out, true
		}
		out = append(out, in)
	}
	return out, false
}

// Span returns the earliest start and latest end across the whole store;
// ok is false for an empty store. The bounds are maintained incrementally
// on insert and recomputed on eviction, so this is O(1).
func (s *Memory) Span() (first, last time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.live == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.first, s.last, true
}

// ---------------------------------------------------------------------
// Retention eviction
// ---------------------------------------------------------------------

// EvictBefore removes every instance whose End falls strictly before
// cutoff and returns how many were evicted. Evicted IDs stay tombstoned
// (Get reports not found; later IDs are unchanged) and the Span bounds are
// recomputed so they stay exact. The registered OnEvict hooks, if any, run
// after the lock is released.
func (s *Memory) EvictBefore(cutoff time.Time) int {
	s.mu.Lock()
	gone := s.evictLocked(cutoff)
	cbs := s.onEvict
	s.mu.Unlock()
	if len(gone) > 0 {
		for _, cb := range cbs {
			cb(gone, cutoff)
		}
	}
	return len(gone)
}

// maybeEvictLocked applies the retention window with 25% slack so the
// O(n) sweep amortizes over many inserts.
func (s *Memory) maybeEvictLocked() (evicted []*event.Instance, cutoff time.Time) {
	if s.retention <= 0 || s.live == 0 {
		return nil, time.Time{}
	}
	if s.last.Sub(s.first) <= s.retention+s.retention/4 {
		return nil, time.Time{}
	}
	cutoff = s.last.Add(-s.retention)
	return s.evictLocked(cutoff), cutoff
}

func (s *Memory) evictLocked(cutoff time.Time) []*event.Instance {
	var gone []*event.Instance
	for i, in := range s.byID {
		if in != nil && in.End.Before(cutoff) {
			gone = append(gone, in)
			s.byID[i] = nil
		}
	}
	evicted := len(gone)
	if evicted == 0 {
		return nil
	}
	s.live -= evicted
	mEvicted.Add(int64(evicted))
	mEvictions.Inc()
	// Filter each name index in place; the kept instances stay in their
	// prior relative order so sortedness (and dirtiness) is preserved.
	// maxDur is left as an upper bound: a too-wide query bound only costs
	// extra scan, never correctness.
	for name, idx := range s.byName {
		kept := idx.instances[:0]
		for _, in := range idx.instances {
			if !in.End.Before(cutoff) {
				kept = append(kept, in)
			}
		}
		for i := len(kept); i < len(idx.instances); i++ {
			idx.instances[i] = nil
		}
		if len(kept) == 0 {
			delete(s.byName, name)
			continue
		}
		idx.instances = kept
	}
	// Trim leading tombstones, advancing the ID base; copy so the evicted
	// prefix of the backing array is actually released.
	trim := 0
	for trim < len(s.byID) && s.byID[trim] == nil {
		trim++
	}
	if trim > 0 {
		s.byID = append([]*event.Instance(nil), s.byID[trim:]...)
		s.base += trim
	}
	// Recompute the span bounds. Eviction is keyed on End < cutoff, so
	// last never shrinks, but first can.
	if s.live == 0 {
		s.first, s.last = time.Time{}, time.Time{}
		return gone
	}
	first := time.Time{}
	for _, in := range s.byID {
		if in != nil && (first.IsZero() || in.Start.Before(first)) {
			first = in.Start
		}
	}
	s.first = first
	return gone
}

// ---------------------------------------------------------------------
// Dump and restore (snapshot support)
// ---------------------------------------------------------------------

// Dump returns a copy of every live instance in ID order, together with
// the ID of the first slot (base) and the ID the next insert will receive
// (next). base..next−1 spans the live IDs plus any interior tombstones;
// Restore rebuilds exactly this state.
func (s *Memory) Dump() (base, next int, ins []event.Instance) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	base, next = s.base, s.base+len(s.byID)
	ins = make([]event.Instance, 0, s.live)
	for _, in := range s.byID {
		if in != nil {
			ins = append(ins, *in)
		}
	}
	return base, next, ins
}

// SnapshotTo streams the dumped state without copying it: header runs
// once with the Dump bounds and live count, then each runs per live
// instance in ID order, all under one read lock — so the header's count
// and the instances visited are a single consistent cut even with
// concurrent writers. The callbacks must not retain or mutate the
// instances, and must not call back into the store.
func (s *Memory) SnapshotTo(header func(base, next, count int) error, each func(*event.Instance) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := header(s.base, s.base+len(s.byID), s.live); err != nil {
		return err
	}
	for _, in := range s.byID {
		if in != nil {
			if err := each(in); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore rebuilds a dumped state into an empty store: each instance is
// placed at its recorded ID, interior gaps stay tombstoned, and the next
// insert receives ID next. It is the snapshot-recovery path; restoring
// into a non-empty store is an error.
func (s *Memory) Restore(base, next int, ins []event.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byID) != 0 || s.base != 0 {
		return fmt.Errorf("store: Restore into a non-empty store")
	}
	if base < 0 || next < base || len(ins) > next-base {
		return fmt.Errorf("store: Restore bounds [%d,%d) cannot hold %d instances", base, next, len(ins))
	}
	s.base = base
	s.byID = make([]*event.Instance, next-base)
	prev := base - 1
	for _, in := range ins {
		if in.ID <= prev || in.ID >= next {
			return fmt.Errorf("store: Restore instance ID %d out of order for bounds [%d,%d)", in.ID, base, next)
		}
		prev = in.ID
		stored := in
		s.byID[in.ID-base] = &stored
		s.live++
		idx := s.byName[in.Name]
		if idx == nil {
			idx = &nameIndex{}
			s.byName[in.Name] = idx
		}
		if n := len(idx.instances); n > 0 && idx.instances[n-1].Start.After(in.Start) {
			idx.dirty = true
		}
		idx.instances = append(idx.instances, &stored)
		if d := in.Duration(); d > idx.maxDur {
			idx.maxDur = d
		}
		if s.live == 1 || in.Start.Before(s.first) {
			s.first = in.Start
		}
		if s.live == 1 || in.End.After(s.last) {
			s.last = in.End
		}
	}
	return nil
}
