package store

import (
	"fmt"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// evictionStream builds a deterministic event stream spread over many
// locations (so a sharded store splits it) and a long time range (so
// retention actually evicts).
func evictionStream(n int) []event.Instance {
	t0 := time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)
	ins := make([]event.Instance, n)
	for i := range ins {
		at := t0.Add(time.Duration(i) * time.Minute)
		ins[i] = event.Instance{
			Name:  fmt.Sprintf("ev%d", i%3),
			Start: at, End: at.Add(30 * time.Second),
			Loc: locus.At(locus.Router, fmt.Sprintf("r%d", i%17)),
		}
	}
	return ins
}

// TestShardedEvictionRetentionParity pins the sharded store's retention
// semantics against the single store's. Each shard auto-evicts by its
// own local span with its own amortization phase, so the two stores may
// transiently hold different amounts of already-expired slack — but
// neither may ever drop an event still inside the retention window of
// the global head (every sweep's cutoff is its local head minus the
// window, and no local head is ahead of the global one). After an
// explicit EvictBefore at the same cutoff (what the server's retention
// sweep amounts to at a quiescent point), the two must hold the
// identical live instances and allocator frontier.
func TestShardedEvictionRetentionParity(t *testing.T) {
	const retention = 2 * time.Hour
	ins := evictionStream(600) // 10 hours of minutes

	single := New()
	single.SetRetention(retention)
	sharded := NewSharded(4, nil)
	sharded.SetRetention(retention)
	if sharded.Retention() != retention {
		t.Fatalf("sharded retention = %v", sharded.Retention())
	}
	for _, in := range ins {
		single.Add(in)
		sharded.Add(in)
	}

	_, last, ok := single.Span()
	if !ok {
		t.Fatal("empty single store")
	}
	windowCut := last.Add(-retention)

	liveIDs := func(st Store) map[int]event.Instance {
		m := map[int]event.Instance{}
		for _, name := range st.Names() {
			for _, in := range st.All(name) {
				m[in.ID] = *in
			}
		}
		return m
	}
	sl, shl := liveIDs(single), liveIDs(sharded)
	if len(sl) == len(ins) || len(shl) == len(ins) {
		t.Fatal("retention never evicted — the parity below would be vacuous")
	}
	// No event inside the global retention window may be missing.
	for i, in := range ins {
		if in.End.Before(windowCut) {
			continue
		}
		if _, ok := sl[i]; !ok {
			t.Fatalf("single store evicted in-window event %d", i)
		}
		if _, ok := shl[i]; !ok {
			t.Fatalf("sharded store evicted in-window event %d", i)
		}
	}

	// Converge both with an explicit sweep at the same cutoff: from here
	// the stores must be indistinguishable (bases aside, which encode
	// per-shard eviction history).
	single.EvictBefore(windowCut)
	sharded.EvictBefore(windowCut)
	sl, shl = liveIDs(single), liveIDs(sharded)
	if len(sl) != len(shl) {
		t.Fatalf("post-sweep live counts differ: single %d, sharded %d", len(sl), len(shl))
	}
	for id, want := range sl {
		got, ok := shl[id]
		if !ok {
			t.Fatalf("post-sweep: event %d missing from sharded", id)
		}
		if got.Name != want.Name || !got.Start.Equal(want.Start) || !got.End.Equal(want.End) || got.Loc != want.Loc {
			t.Fatalf("post-sweep: event %d differs: %+v vs %+v", id, got, want)
		}
	}
	if single.NextID() != sharded.NextID() {
		t.Fatalf("allocator frontiers differ: single %d, sharded %d", single.NextID(), sharded.NextID())
	}
	if single.Len() != sharded.Len() {
		t.Fatalf("Len differs: single %d, sharded %d", single.Len(), sharded.Len())
	}
}
