package store

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

var t0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func mk(name string, startMin, durMin int, loc locus.Location) event.Instance {
	st := t0.Add(time.Duration(startMin) * time.Minute)
	return event.Instance{Name: name, Start: st, End: st.Add(time.Duration(durMin) * time.Minute), Loc: loc}
}

func TestAddAssignsIDs(t *testing.T) {
	s := New()
	a := s.Add(mk("e", 0, 1, locus.At(locus.Router, "r1")))
	b := s.Add(mk("e", 5, 1, locus.At(locus.Router, "r2")))
	if a.ID == b.ID {
		t.Error("IDs not unique")
	}
	got, ok := s.Get(b.ID)
	if !ok || got.Loc.A != "r2" {
		t.Error("Get by ID failed")
	}
	if _, ok := s.Get(-1); ok {
		t.Error("negative ID accepted")
	}
	if _, ok := s.Get(999); ok {
		t.Error("out-of-range ID accepted")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestQueryOverlapSemantics(t *testing.T) {
	s := New()
	loc := locus.At(locus.Router, "r1")
	s.Add(mk("e", 0, 10, loc))  // [0,10]
	s.Add(mk("e", 20, 10, loc)) // [20,30]
	s.Add(mk("e", 50, 0, loc))  // instantaneous at 50

	q := func(fromMin, toMin int) int {
		return len(s.Query("e", t0.Add(time.Duration(fromMin)*time.Minute), t0.Add(time.Duration(toMin)*time.Minute)))
	}
	if got := q(5, 25); got != 2 {
		t.Errorf("overlap query = %d, want 2", got)
	}
	if got := q(10, 10); got != 1 { // touches first interval's end
		t.Errorf("point-at-end query = %d, want 1", got)
	}
	if got := q(11, 19); got != 0 {
		t.Errorf("gap query = %d, want 0", got)
	}
	if got := q(50, 50); got != 1 {
		t.Errorf("instantaneous query = %d, want 1", got)
	}
	if got := q(40, 30); got != 0 { // inverted window
		t.Errorf("inverted window query = %d, want 0", got)
	}
	if got := len(s.Query("other", t0, t0.Add(time.Hour))); got != 0 {
		t.Errorf("unknown name query = %d", got)
	}
}

func TestQueryOrderedAndOutOfOrderInsert(t *testing.T) {
	s := New()
	loc := locus.At(locus.Router, "r1")
	// Insert deliberately out of order.
	for _, m := range []int{30, 10, 20, 0, 40} {
		s.Add(mk("e", m, 1, loc))
	}
	got := s.Query("e", t0, t0.Add(time.Hour))
	if len(got) != 5 {
		t.Fatalf("got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start.After(got[i].Start) {
			t.Fatal("results not sorted by start time")
		}
	}
}

func TestQueryAtAndFunc(t *testing.T) {
	s := New()
	l1 := locus.Between(locus.Interface, "r1", "if0")
	l2 := locus.Between(locus.Interface, "r2", "if0")
	s.Add(mk("e", 0, 1, l1))
	s.Add(mk("e", 0, 1, l2))
	if got := s.QueryAt("e", t0, t0.Add(time.Hour), l1); len(got) != 1 || got[0].Loc != l1 {
		t.Errorf("QueryAt = %v", got)
	}
	got := s.QueryFunc("e", t0, t0.Add(time.Hour), func(in *event.Instance) bool {
		return in.Loc.A == "r2"
	})
	if len(got) != 1 || got[0].Loc != l2 {
		t.Errorf("QueryFunc = %v", got)
	}
}

func TestLongDurationNotMissed(t *testing.T) {
	// A very long instance starting far before the window must still be
	// found (this exercises the maxDur lower bound).
	s := New()
	loc := locus.At(locus.Router, "r1")
	s.Add(mk("e", 0, 600, loc)) // 10-hour event
	for m := 1; m < 100; m++ {
		s.Add(mk("e", m*10, 1, loc))
	}
	got := s.Query("e", t0.Add(9*time.Hour), t0.Add(9*time.Hour+time.Minute))
	found := false
	for _, in := range got {
		if in.Start.Equal(t0) {
			found = true
		}
	}
	if !found {
		t.Error("long-duration instance missed by windowed query")
	}
}

func TestNamesCountSpan(t *testing.T) {
	s := New()
	if _, _, ok := s.Span(); ok {
		t.Error("empty store has a span")
	}
	s.Add(mk("b", 10, 5, locus.At(locus.Router, "r")))
	s.Add(mk("a", 0, 1, locus.At(locus.Router, "r")))
	if n := s.Names(); len(n) != 2 || n[0] != "a" || n[1] != "b" {
		t.Errorf("Names = %v", n)
	}
	if s.Count("b") != 1 || s.Count("zzz") != 0 {
		t.Error("Count wrong")
	}
	first, last, ok := s.Span()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(15*time.Minute)) {
		t.Errorf("Span = %v %v %v", first, last, ok)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	s := New()
	s.Add(mk("e", 5, 1, locus.At(locus.Router, "r")))
	s.Add(mk("e", 0, 1, locus.At(locus.Router, "r")))
	all := s.All("e")
	if len(all) != 2 || all[0].Start.After(all[1].Start) {
		t.Fatalf("All = %v", all)
	}
	all[0] = nil // must not corrupt the index
	if got := s.All("e"); got[0] == nil {
		t.Error("All shares backing slice")
	}
	if s.All("none") != nil {
		t.Error("All for unknown name should be nil")
	}
}

// TestQueryMatchesLinearScan is a property test: the indexed query returns
// exactly the instances a straightforward linear scan does.
func TestQueryMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type iv struct{ st, en time.Time }
		var naive []iv
		for i := 0; i < 200; i++ {
			st := rng.Intn(10000)
			dur := rng.Intn(100)
			in := mk("e", 0, 0, locus.At(locus.Router, "r"))
			in.Start = t0.Add(time.Duration(st) * time.Second)
			in.End = in.Start.Add(time.Duration(dur) * time.Second)
			s.Add(in)
			naive = append(naive, iv{in.Start, in.End})
		}
		for trial := 0; trial < 20; trial++ {
			from := t0.Add(time.Duration(rng.Intn(10000)) * time.Second)
			to := from.Add(time.Duration(rng.Intn(500)) * time.Second)
			want := 0
			for _, v := range naive {
				if !v.st.After(to) && !v.en.Before(from) {
					want++
				}
			}
			if got := len(s.Query("e", from, to)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.Add(mk("e", i, 1, locus.At(locus.Router, "r")))
		}
	}()
	for i := 0; i < 200; i++ {
		s.Query("e", t0, t0.Add(time.Hour))
		s.Count("e")
	}
	<-done
	if s.Count("e") != 500 {
		t.Errorf("Count after concurrent writes = %d", s.Count("e"))
	}
}

// TestShuffledInsertEquivalence is the chaos-ingestion property: Query and
// All results are identical whether records were inserted in order or in a
// shuffled order (forcing the dirty/ensureSorted path on every read).
// Instances are compared by value — IDs reflect insertion order and are
// expected to differ.
func TestShuffledInsertEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ins []event.Instance
		for i := 0; i < 300; i++ {
			in := mk("e", 0, 0, locus.At(locus.Router, "r"))
			// Distinct starts keep the comparison exact: ties have no
			// defined relative order across insertion orders.
			in.Start = t0.Add(time.Duration(i*7+rng.Intn(7)) * time.Second)
			in.End = in.Start.Add(time.Duration(rng.Intn(600)) * time.Second)
			ins = append(ins, in)
		}
		ordered, shuffled := New(), New()
		sorted := append([]event.Instance(nil), ins...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })
		ordered.AddAll(sorted)
		perm := rng.Perm(len(ins))
		for _, i := range perm {
			shuffled.Add(ins[i])
		}
		same := func(a, b []*event.Instance) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if !a[i].Start.Equal(b[i].Start) || !a[i].End.Equal(b[i].End) ||
					a[i].Name != b[i].Name || a[i].Loc != b[i].Loc {
					return false
				}
			}
			return true
		}
		if !same(ordered.All("e"), shuffled.All("e")) {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			from := t0.Add(time.Duration(rng.Intn(2500)) * time.Second)
			to := from.Add(time.Duration(rng.Intn(900)) * time.Second)
			if !same(ordered.Query("e", from, to), shuffled.Query("e", from, to)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentOutOfOrderAddQuery hammers the lazy re-sort path: writers
// insert in reverse time order (every Add dirties the index) while readers
// query concurrently. Every query result must be sorted — the re-sort loop
// in sortIfDirty may not return while the index is dirty. Run with -race.
func TestConcurrentOutOfOrderAddQuery(t *testing.T) {
	s := New()
	loc := locus.At(locus.Router, "r")
	const writers, perWriter = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := perWriter; i > 0; i-- {
				s.Add(mk("e", i*writers+w, 1, loc))
			}
		}(w)
	}
	readDone := make(chan struct{})
	var sortViolation atomic.Bool
	go func() {
		defer close(readDone)
		for i := 0; i < 2000; i++ {
			got := s.Query("e", t0, t0.Add(100*time.Hour))
			for j := 1; j < len(got); j++ {
				if got[j-1].Start.After(got[j].Start) {
					sortViolation.Store(true)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readDone
	if sortViolation.Load() {
		t.Fatal("Query returned unsorted results during concurrent out-of-order Adds")
	}
	if got := s.Count("e"); got != writers*perWriter {
		t.Errorf("Count = %d, want %d", got, writers*perWriter)
	}
}

// TestSpanIncremental pins the O(1) Span maintenance against a brute-force
// recomputation under out-of-order and nested-interval inserts.
func TestSpanIncremental(t *testing.T) {
	s := New()
	specs := []struct{ start, dur int }{
		{50, 10}, {10, 200}, {300, 1}, {60, 5}, {0, 2}, {100, 500}, {20, 1},
	}
	wantFirst, wantLast := time.Time{}, time.Time{}
	for i, sp := range specs {
		in := mk("ev", sp.start, sp.dur, locus.At(locus.Router, "r"))
		if i == 0 || in.Start.Before(wantFirst) {
			wantFirst = in.Start
		}
		if i == 0 || in.End.After(wantLast) {
			wantLast = in.End
		}
		s.Add(in)
		first, last, ok := s.Span()
		if !ok || !first.Equal(wantFirst) || !last.Equal(wantLast) {
			t.Fatalf("after %d adds: Span = %v..%v %v, want %v..%v", i+1, first, last, ok, wantFirst, wantLast)
		}
	}
}
