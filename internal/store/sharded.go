package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// Sharded is a Store composed of N independent Memory shards. Each shard
// has its own lock (and, in the server, its own WAL segment directory,
// journal, and applier goroutine), so writes to different shards never
// contend. Event IDs stay globally monotonic via an atomic block
// allocator, which keeps ScanAfter pagination and StoreDigest
// well-defined across shards; a shard therefore sees a sparse ID
// subsequence and relies on Memory's gap-tolerant Put.
//
// Placement is a performance property, not a correctness one: every read
// scatter-gathers across all shards and merges in the same order a
// single Memory would have produced, so a Sharded store is
// indistinguishable from a Memory fed the same sequence of writes.
type Sharded struct {
	shards []*Memory
	route  func(locus.Location) int
	next   atomic.Int64
}

// HashRoute returns a deterministic location→shard function over n
// shards keyed on the location's canonical Key. It is the fallback
// router for locations outside any known topology component.
func HashRoute(n int) func(locus.Location) int {
	return func(loc locus.Location) int {
		h := fnv.New32a()
		h.Write([]byte(loc.Key()))
		return int(h.Sum32() % uint32(n))
	}
}

// NewSharded returns a Sharded store of n fresh shards. route maps a
// location to a shard index in [0,n); it must be deterministic. A nil
// route falls back to HashRoute(n).
func NewSharded(n int, route func(locus.Location) int) *Sharded {
	if n < 1 {
		n = 1
	}
	shards := make([]*Memory, n)
	for i := range shards {
		shards[i] = New()
	}
	return newShardedOf(shards, route)
}

// NewShardedOf assembles a Sharded store over existing shards (the
// recovery path: each shard was rebuilt by its own WAL). The caller must
// SetNext to the recovered global ID frontier; until then the allocator
// resumes from the highest frontier any shard has seen.
func NewShardedOf(shards []*Memory, route func(locus.Location) int) *Sharded {
	s := newShardedOf(shards, route)
	next := 0
	for _, sh := range shards {
		if n := sh.NextID(); n > next {
			next = n
		}
	}
	s.next.Store(int64(next))
	return s
}

func newShardedOf(shards []*Memory, route func(locus.Location) int) *Sharded {
	if route == nil {
		route = HashRoute(len(shards))
	}
	return &Sharded{shards: shards, route: route}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// SetRoute replaces the location→shard routing function. Routing is a
// placement decision only — reads scatter-gather, so events stored under
// the old route stay correct — but replacing it must be externally
// serialized with every Add/AddAll/ShardFor caller (the server swaps
// routes under its dispatch lock, where all writes originate).
func (s *Sharded) SetRoute(route func(locus.Location) int) {
	if route == nil {
		route = HashRoute(len(s.shards))
	}
	s.route = route
}

// Shard returns the i'th shard.
func (s *Sharded) Shard(i int) *Memory { return s.shards[i] }

// ShardFor returns the shard index a location routes to.
func (s *Sharded) ShardFor(loc locus.Location) int {
	i := s.route(loc)
	if i < 0 || i >= len(s.shards) {
		return 0
	}
	return i
}

// AllocBlock atomically reserves n consecutive global IDs and returns
// the first. The server's dispatcher allocates one block per ingest
// batch so a split batch keeps the exact IDs a 1-shard server would
// have assigned.
func (s *Sharded) AllocBlock(n int) int {
	return int(s.next.Add(int64(n))) - n
}

// SetNext moves the global allocator to next; used after recovery when
// journal replay proves IDs beyond any surviving shard frontier were
// assigned.
func (s *Sharded) SetNext(next int) {
	for {
		cur := s.next.Load()
		if int64(next) <= cur || s.next.CompareAndSwap(cur, int64(next)) {
			return
		}
	}
}

// NextID returns the next global ID the allocator will hand out.
func (s *Sharded) NextID() int { return int(s.next.Load()) }

// Add routes in to its shard under a freshly allocated global ID.
func (s *Sharded) Add(in event.Instance) *event.Instance {
	in.ID = s.AllocBlock(1)
	stored, err := s.shards[s.ShardFor(in.Loc)].Put(in)
	if err != nil {
		// IDs are allocated fresh and never reused, so Put cannot fail.
		panic(fmt.Sprintf("store: sharded Add: %v", err))
	}
	return stored
}

// AddAll allocates one ID block for the whole slice, splits it by shard
// preserving order, and bulk-inserts each sub-slice.
func (s *Sharded) AddAll(ins []event.Instance) {
	if len(ins) == 0 {
		return
	}
	first := s.AllocBlock(len(ins))
	per := make(map[int][]event.Instance, len(s.shards))
	for i, in := range ins {
		in.ID = first + i
		si := s.ShardFor(in.Loc)
		per[si] = append(per[si], in)
	}
	for si := 0; si < len(s.shards); si++ {
		sub, ok := per[si]
		if !ok {
			continue
		}
		if err := s.shards[si].PutAll(sub); err != nil {
			panic(fmt.Sprintf("store: sharded AddAll: %v", err))
		}
	}
}

// Get scans the shards for the ID; each probe is O(1).
func (s *Sharded) Get(id int) (*event.Instance, bool) {
	for _, sh := range s.shards {
		if in, ok := sh.Get(id); ok {
			return in, true
		}
	}
	return nil, false
}

// Len returns the number of live instances across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Count returns the number of instances of the named event.
func (s *Sharded) Count(name string) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Count(name)
	}
	return n
}

// Names returns the union of event names across shards, sorted.
func (s *Sharded) Names() []string {
	seen := map[string]bool{}
	for _, sh := range s.shards {
		for _, n := range sh.Names() {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query merges the per-shard results in (Start, ID) order — the order a
// single Memory's stable per-name index would have produced.
func (s *Sharded) Query(name string, from, to time.Time) []*event.Instance {
	return s.QueryFunc(name, from, to, nil)
}

// QueryFunc is Query with an optional filter.
func (s *Sharded) QueryFunc(name string, from, to time.Time, keep func(*event.Instance) bool) []*event.Instance {
	per := make([][]*event.Instance, 0, len(s.shards))
	for _, sh := range s.shards {
		if r := sh.QueryFunc(name, from, to, keep); len(r) > 0 {
			per = append(per, r)
		}
	}
	return mergeByStart(per)
}

// QueryAt restricts Query to one exact location. It still scatters
// across every shard: the routing function may change over the server's
// lifetime (hash routing before the topology is known, lattice routing
// after), so reads never assume placement.
func (s *Sharded) QueryAt(name string, from, to time.Time, loc locus.Location) []*event.Instance {
	per := make([][]*event.Instance, 0, len(s.shards))
	for _, sh := range s.shards {
		if r := sh.QueryAt(name, from, to, loc); len(r) > 0 {
			per = append(per, r)
		}
	}
	return mergeByStart(per)
}

// All merges every instance of the named event in (Start, ID) order.
func (s *Sharded) All(name string) []*event.Instance {
	per := make([][]*event.Instance, 0, len(s.shards))
	for _, sh := range s.shards {
		if r := sh.All(name); len(r) > 0 {
			per = append(per, r)
		}
	}
	return mergeByStart(per)
}

// ScanAfter merges the per-shard ID-ordered scans. Each shard stream is
// capped at limit, which is enough: any instance in the merged first
// `limit` is within the first `limit` of its own shard.
func (s *Sharded) ScanAfter(name string, after, limit int) (out []*event.Instance, more bool) {
	if limit <= 0 {
		return nil, false
	}
	per := make([][]*event.Instance, 0, len(s.shards))
	for _, sh := range s.shards {
		r, m := sh.ScanAfter(name, after, limit)
		if m {
			more = true
		}
		if len(r) > 0 {
			per = append(per, r)
		}
	}
	merged := mergeByID(per)
	if len(merged) > limit {
		return merged[:limit], true
	}
	return merged, more
}

// Span returns the earliest start and latest end across all shards.
func (s *Sharded) Span() (first, last time.Time, ok bool) {
	for _, sh := range s.shards {
		f, l, o := sh.Span()
		if !o {
			continue
		}
		if !ok || f.Before(first) {
			first = f
		}
		if !ok || l.After(last) {
			last = l
		}
		ok = true
	}
	return first, last, ok
}

// Dump merges the per-shard dumps in global ID order. base is the
// smallest shard base and next the allocator frontier, so the merged
// dump digests identically to a 1-shard store fed the same writes.
func (s *Sharded) Dump() (base, next int, ins []event.Instance) {
	per := make([][]event.Instance, 0, len(s.shards))
	total := 0
	base = 0
	haveBase := false
	for _, sh := range s.shards {
		b, _, d := sh.Dump()
		if len(d) > 0 || b > 0 {
			if !haveBase || b < base {
				base = b
				haveBase = true
			}
		}
		if len(d) > 0 {
			per = append(per, d)
			total += len(d)
		}
	}
	next = s.NextID()
	ins = make([]event.Instance, 0, total)
	idx := make([]int, len(per))
	for len(ins) < total {
		best := -1
		for i, p := range per {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || p[idx[i]].ID < per[best][idx[best]].ID {
				best = i
			}
		}
		ins = append(ins, per[best][idx[best]])
		idx[best]++
	}
	return base, next, ins
}

// OnAppend registers fn on every shard; it observes per-shard appends,
// potentially concurrently (one goroutine per shard applier), so fn must
// be safe for concurrent use.
func (s *Sharded) OnAppend(fn func(*event.Instance)) {
	for _, sh := range s.shards {
		sh.OnAppend(fn)
	}
}

// OnEvict registers fn on every shard; same concurrency caveat as
// OnAppend.
func (s *Sharded) OnEvict(fn func(evicted []*event.Instance, cutoff time.Time)) {
	for _, sh := range s.shards {
		sh.OnEvict(fn)
	}
}

// SetRetention bounds every shard's look-back window. Each shard evicts
// by its own span, which is conservative relative to a single store: a
// shard whose latest End lags the global maximum keeps slightly more
// history, and nothing inside the global retention window is ever
// evicted.
func (s *Sharded) SetRetention(d time.Duration) {
	for _, sh := range s.shards {
		sh.SetRetention(d)
	}
}

// Retention returns the configured look-back window.
func (s *Sharded) Retention() time.Duration { return s.shards[0].Retention() }

// EvictBefore applies the cutoff to every shard and returns the total
// evicted.
func (s *Sharded) EvictBefore(cutoff time.Time) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.EvictBefore(cutoff)
	}
	return n
}

// mergeByStart k-way merges slices each sorted by (Start, ID) — the
// per-shard Put order — into one slice in the same order. Equal starts
// break ties by ID, reproducing a single store's stable insertion order.
func mergeByStart(per [][]*event.Instance) []*event.Instance {
	if len(per) == 0 {
		return nil
	}
	if len(per) == 1 {
		return per[0]
	}
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]*event.Instance, 0, total)
	idx := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || less(p[idx[i]], per[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, per[best][idx[best]])
		idx[best]++
	}
	return out
}

func less(a, b *event.Instance) bool {
	if a.Start.Before(b.Start) {
		return true
	}
	if b.Start.Before(a.Start) {
		return false
	}
	return a.ID < b.ID
}

// mergeByID k-way merges ID-sorted slices into one ID-sorted slice.
func mergeByID(per [][]*event.Instance) []*event.Instance {
	if len(per) == 0 {
		return nil
	}
	if len(per) == 1 {
		return per[0]
	}
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]*event.Instance, 0, total)
	idx := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || p[idx[i]].ID < per[best][idx[best]].ID {
				best = i
			}
		}
		out = append(out, per[best][idx[best]])
		idx[best]++
	}
	return out
}
