package store

import (
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// Store is the event-store access surface shared by the single-shard
// Memory and the multi-shard Sharded. The engine, collector, rollups,
// browser, and WAL digesting all program against this interface, so the
// number of shards behind an ingest path is invisible to readers:
// placement affects parallelism, never results.
type Store interface {
	// Writes. Add/AddAll assign IDs internally; both implementations
	// keep IDs globally monotonic and never reuse them.
	Add(in event.Instance) *event.Instance
	AddAll(ins []event.Instance)

	// Point and scan reads.
	Get(id int) (*event.Instance, bool)
	Len() int
	NextID() int
	Count(name string) int
	Names() []string
	Query(name string, from, to time.Time) []*event.Instance
	QueryFunc(name string, from, to time.Time, keep func(*event.Instance) bool) []*event.Instance
	QueryAt(name string, from, to time.Time, loc locus.Location) []*event.Instance
	All(name string) []*event.Instance
	ScanAfter(name string, after, limit int) (out []*event.Instance, more bool)
	Span() (first, last time.Time, ok bool)
	Dump() (base, next int, ins []event.Instance)

	// Hooks and retention. Hooks must be registered before concurrent
	// use; on a Sharded store they observe per-shard appends and
	// evictions (concurrently, one goroutine per shard applier).
	OnAppend(fn func(*event.Instance))
	OnEvict(fn func(evicted []*event.Instance, cutoff time.Time))
	SetRetention(d time.Duration)
	Retention() time.Duration
	EvictBefore(cutoff time.Time) int
}

var (
	_ Store = (*Memory)(nil)
	_ Store = (*Sharded)(nil)
)
