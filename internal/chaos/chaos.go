// Package chaos is a seeded, fully deterministic fault-injection harness
// for the G-RCA pipeline. It perturbs simulated datasets *before*
// ingestion — per-router clock skew, out-of-order and duplicated records,
// truncated lines, dropped sources, delayed feed delivery into the
// streaming processor — and scores the diagnoses produced from the
// perturbed data against the generator's ground-truth labels.
//
// The paper validates G-RCA operationally against a tier-1 ISP's feeds
// (§IV); this harness reproduces the *conditions* of those feeds — ~600
// heterogeneous sources with skewed clocks, gaps, and duplicates (§II-A)
// — with labels we control, so every robustness claim ("diagnosis
// survives a dropped layer-1 feed") is a measured accuracy bound rather
// than an anecdote.
//
// Everything is derived from Config.Seed through per-(fault, source)
// sub-generators: the same seed produces byte-identical perturbed feeds
// and byte-identical JSON reports regardless of map iteration order or
// which other fault classes are active.
package chaos

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"grca/internal/collector"
	"grca/internal/platform"
)

// Fault names one injectable fault class.
type Fault string

const (
	// FaultSkew shifts each affected router's syslog clock by a fixed
	// per-router offset — the device-local-time failure mode the
	// collector's timezone normalization cannot see (a drifted clock
	// looks exactly like a correct one).
	FaultSkew Fault = "skew"
	// FaultReorder displaces records within each feed, breaking the
	// sorted-by-time delivery the simulator otherwise guarantees.
	FaultReorder Fault = "reorder"
	// FaultDuplicate repeats records — the at-least-once delivery of a
	// collector that retries on timeout.
	FaultDuplicate Fault = "duplicate"
	// FaultTruncate cuts records short mid-line, producing the malformed
	// tails of a feed interrupted mid-write.
	FaultTruncate Fault = "truncate"
	// FaultDropSource removes whole feeds, as when a monitor host dies
	// for the collection period.
	FaultDropSource Fault = "drop-source"
	// FaultDelay holds back a fraction of normalized events past the
	// streaming processor's grace window (exercised by Replay; feed text
	// is unaffected).
	FaultDelay Fault = "delay"
	// FaultCrashRestart kills and restarts a WAL-backed ingest mid-stream
	// (exercised by CrashReplay; feed text is unaffected): uncommitted
	// batches are lost and re-delivered after recovery, and the recovered
	// store must come back byte-identical.
	FaultCrashRestart Fault = "crash-restart"
	// FaultReplicaLag stalls a read replica's WAL-shipping stream once
	// LagFraction of the corpus has shipped (exercised by ReplicaReplay;
	// feed text is unaffected): the follower serves a consistent stale
	// prefix until the stream resumes, and the healed state must be
	// byte-identical to the primary.
	FaultReplicaLag Fault = "replica-lag"
	// FaultPartition severs the replication connection at seeded byte
	// offsets — usually mid-frame — PartitionCount times (exercised by
	// ReplicaReplay): each reconnect resumes from the follower's
	// frontier through the torn-frame discard path, and the healed
	// state must be byte-identical to the primary.
	FaultPartition Fault = "partition"
)

// AllFaults lists every fault class in canonical order.
func AllFaults() []Fault {
	return []Fault{FaultSkew, FaultReorder, FaultDuplicate, FaultTruncate, FaultDropSource, FaultDelay, FaultCrashRestart, FaultReplicaLag, FaultPartition}
}

// Bounds documents the maximum top-cause accuracy drop (absolute, on the
// matched-symptom accuracy of Score) each fault class may inflict at the
// default Config rates. The scenario-matrix tests enforce these bounds;
// widen one only with a DESIGN.md §9 note explaining what got worse.
var Bounds = map[Fault]float64{
	FaultSkew:         0.10, // seconds-scale skew sits well inside minutes-scale join windows
	FaultReorder:      0.02, // ingest restores record order on stateful feeds; pairing buffers sort in Finalize
	FaultDuplicate:    0.10, // duplicate edges re-pair into extra, but aligned, events
	FaultTruncate:     0.15, // lost evidence lines demote some diagnoses to shallower causes
	FaultDropSource:   0.35, // a whole evidence feed gone degrades its dependent classes
	FaultDelay:        0.15, // forced/late diagnoses run on incomplete evidence
	FaultCrashRestart: 0.0,  // recovery is byte-identical, so diagnoses must not move at all
	FaultReplicaLag:   0.0,  // lag delays visibility only: the healed follower is byte-identical
	FaultPartition:    0.0,  // torn frames never decode; reconnects re-ship, converging byte-identical
}

// DefaultDroppable lists the sources FaultDropSource picks from when
// Config.DropSources is empty: auxiliary evidence feeds whose loss
// degrades attribution but leaves symptoms detectable. Dropping a symptom
// feed itself (syslog, keynote) is allowed via explicit DropSources and
// is covered by the harness's no-panic tests rather than accuracy bounds.
var DefaultDroppable = []string{
	collector.SourceLayer1,
	collector.SourceTACACS,
	collector.SourceWorkflow,
	collector.SourceServer,
}

// Config parameterizes an Injector. The zero value of every rate takes
// the documented default; only the fault classes listed in Faults are
// applied.
type Config struct {
	Seed   int64
	Faults []Fault

	// SkewMax bounds the per-router clock offset (default 15s); skewed
	// routers draw uniformly from ±SkewMax at second granularity,
	// excluding zero. SkewFraction of routers are affected (default 0.5).
	SkewMax      time.Duration
	SkewFraction float64

	// ReorderFraction of records are displaced forward by up to
	// ReorderWindow positions (defaults 0.10 and 8).
	ReorderFraction float64
	ReorderWindow   int

	// DuplicateFraction of records are emitted twice (default 0.05).
	DuplicateFraction float64

	// TruncateFraction of records are cut short at a random byte
	// (default 0.02).
	TruncateFraction float64

	// DropSources lists feeds to remove. Empty means pick DropCount
	// (default 1) deterministically from DefaultDroppable.
	DropSources []string
	DropCount   int

	// DelayFraction of streamed events are delivered up to DelayMax
	// after their availability time (defaults 0.05 and 4h) — far enough
	// past any derived grace period to exercise the late path.
	DelayFraction float64
	DelayMax      time.Duration

	// CrashCount kill -9 restarts are simulated at seed-derived points in
	// the stream (default 3); CrashBatch events are delivered per
	// acknowledged WAL commit (default 256), bounding how much each crash
	// loses and re-delivers.
	CrashCount int
	CrashBatch int

	// LagFraction is where the replica-lag scenario stalls the shipping
	// stream, as a fraction of the corpus (default 0.6); PartitionCount
	// is how many seeded mid-stream connection cuts the partition
	// scenario inflicts before healing (default 3).
	LagFraction    float64
	PartitionCount int
}

func (c *Config) defaults() {
	if c.SkewMax == 0 {
		c.SkewMax = 15 * time.Second
	}
	if c.SkewFraction == 0 {
		c.SkewFraction = 0.5
	}
	if c.ReorderFraction == 0 {
		c.ReorderFraction = 0.10
	}
	if c.ReorderWindow == 0 {
		c.ReorderWindow = 8
	}
	if c.DuplicateFraction == 0 {
		c.DuplicateFraction = 0.05
	}
	if c.TruncateFraction == 0 {
		c.TruncateFraction = 0.02
	}
	if c.DropCount == 0 {
		c.DropCount = 1
	}
	if c.DelayFraction == 0 {
		c.DelayFraction = 0.05
	}
	if c.DelayMax == 0 {
		c.DelayMax = 4 * time.Hour
	}
	if c.CrashCount == 0 {
		c.CrashCount = 3
	}
	if c.CrashBatch == 0 {
		c.CrashBatch = 256
	}
	if c.LagFraction == 0 {
		c.LagFraction = 0.6
	}
	if c.PartitionCount == 0 {
		c.PartitionCount = 3
	}
}

// Injector applies a Config's fault mix. One Injector perturbs one
// dataset; build a fresh one per scenario.
type Injector struct {
	cfg Config

	// Dropped records which sources Bundle removed (sorted).
	Dropped []string
}

// New builds an injector; cfg rates at zero take the defaults.
func New(cfg Config) *Injector {
	cfg.defaults()
	return &Injector{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (inj *Injector) Config() Config { return inj.cfg }

func (inj *Injector) has(f Fault) bool {
	for _, g := range inj.cfg.Faults {
		if g == f {
			return true
		}
	}
	return false
}

// hash derives a stable 64-bit value from the seed and a tag path —
// independent of map iteration order and of which other faults run.
func (inj *Injector) hash(parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(inj.cfg.Seed))
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// rng derives a dedicated generator for one (fault, source) pair.
func (inj *Injector) rng(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(inj.hash(parts...))))
}

// Bundle returns a perturbed copy of b: sources dropped, then every
// surviving feed run through Feed. Configs, truth, and metadata are
// shared — only the raw feeds change, exactly like corruption between
// the network elements and the collector.
func (inj *Injector) Bundle(b platform.Bundle) platform.Bundle {
	out := b
	out.Feeds = map[string]string{}
	drop := map[string]bool{}
	if inj.has(FaultDropSource) {
		for _, src := range inj.pickDrops(b.Feeds) {
			drop[src] = true
		}
	}
	srcs := make([]string, 0, len(b.Feeds))
	for src := range b.Feeds {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	inj.Dropped = nil
	for _, src := range srcs {
		if drop[src] {
			inj.Dropped = append(inj.Dropped, src)
			continue
		}
		out.Feeds[src] = inj.Feed(src, b.Feeds[src])
	}
	return out
}

// pickDrops resolves the drop list: explicit DropSources, else DropCount
// picks from DefaultDroppable present in the feeds.
func (inj *Injector) pickDrops(feeds map[string]string) []string {
	if len(inj.cfg.DropSources) > 0 {
		return inj.cfg.DropSources
	}
	var cands []string
	for _, src := range DefaultDroppable {
		if _, ok := feeds[src]; ok {
			cands = append(cands, src)
		}
	}
	rng := inj.rng("drop")
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > inj.cfg.DropCount {
		cands = cands[:inj.cfg.DropCount]
	}
	sort.Strings(cands)
	return cands
}

// Feed applies the line-level fault classes (skew, reorder, duplicate,
// truncate) to one feed's raw text. Drop and delay operate at other
// layers and are ignored here. The mutation of a feed depends only on
// (seed, source name, feed text).
func (inj *Injector) Feed(source, text string) string {
	lines := splitLines(text)
	if inj.has(FaultSkew) {
		inj.skewLines(source, lines)
	}
	if inj.has(FaultReorder) {
		lines = inj.reorderLines(source, lines)
	}
	if inj.has(FaultDuplicate) {
		lines = inj.duplicateLines(source, lines)
	}
	if inj.has(FaultTruncate) {
		inj.truncateLines(source, lines)
	}
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

func splitLines(text string) []string {
	text = strings.TrimSuffix(text, "\n")
	if text == "" {
		return nil
	}
	return strings.Split(text, "\n")
}

// skewLines applies per-router clock skew. Only syslog carries
// device-local clocks (every other feed is stamped by a centralized
// poller), so skew rewrites the RFC 3164 timestamp of each affected
// device's lines by that device's fixed offset. The offset is a pure
// function of (seed, device token), so a device is skewed consistently
// across its whole feed — drifted clocks are wrong, not noisy.
func (inj *Injector) skewLines(source string, lines []string) {
	if source != collector.SourceSyslog {
		return
	}
	for i, line := range lines {
		if len(line) < 16 || line[0] == '#' {
			continue
		}
		stamp := line[:15]
		ts, err := time.Parse("Jan _2 15:04:05", stamp)
		if err != nil {
			continue
		}
		rest := line[15:]
		device := strings.Fields(rest)
		if len(device) == 0 {
			continue
		}
		skew := inj.skewFor(device[0])
		if skew == 0 {
			continue
		}
		lines[i] = ts.Add(skew).Format("Jan _2 15:04:05") + rest
	}
}

// skewFor returns the clock offset of one device token: zero for
// unaffected devices, else a uniform draw from ±SkewMax (seconds,
// nonzero).
func (inj *Injector) skewFor(device string) time.Duration {
	h := inj.hash("skew", device)
	if float64(h%1_000_000)/1_000_000 >= inj.cfg.SkewFraction {
		return 0
	}
	maxSec := int64(inj.cfg.SkewMax / time.Second)
	if maxSec <= 0 {
		return 0
	}
	h2 := inj.hash("skew-mag", device)
	v := int64(h2%uint64(2*maxSec)) - maxSec // [-maxSec, maxSec)
	if v >= 0 {
		v++ // skip zero: a selected device is always wrong
	}
	return time.Duration(v) * time.Second
}

// reorderLines displaces a fraction of records forward by up to
// ReorderWindow positions — local shuffling, the way multi-threaded relay
// daemons interleave, not wholesale scrambling.
func (inj *Injector) reorderLines(source string, lines []string) []string {
	rng := inj.rng("reorder", source)
	for i := range lines {
		if rng.Float64() >= inj.cfg.ReorderFraction {
			continue
		}
		j := i + 1 + rng.Intn(inj.cfg.ReorderWindow)
		if j < len(lines) {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	return lines
}

// duplicateLines re-emits a fraction of records immediately after the
// original (at-least-once delivery).
func (inj *Injector) duplicateLines(source string, lines []string) []string {
	rng := inj.rng("duplicate", source)
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		out = append(out, line)
		if rng.Float64() < inj.cfg.DuplicateFraction {
			out = append(out, line)
		}
	}
	return out
}

// truncateLines cuts a fraction of records short at a random byte. The
// collector must tally these as malformed (or, rarely, parse a still-
// valid prefix) without aborting.
func (inj *Injector) truncateLines(source string, lines []string) {
	rng := inj.rng("truncate", source)
	for i, line := range lines {
		if rng.Float64() >= inj.cfg.TruncateFraction || len(line) < 2 {
			continue
		}
		lines[i] = line[:1+rng.Intn(len(line)-1)]
	}
}
