package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"grca/internal/store"
	"grca/internal/wal"
)

// CrashResult reports one crash-restart replay.
type CrashResult struct {
	// Store is the WAL-recovered store after the final restart; diagnoses
	// are scored against it.
	Store store.Store
	// Crashes is how many kill -9 restarts were simulated.
	Crashes int
	// Redelivered counts events that were lost with an abandoned commit
	// buffer and delivered again by the next session.
	Redelivered int
	// DigestMatch reports whether the recovered store is byte-identical
	// to the unperturbed one — the WAL's whole contract.
	DigestMatch bool
}

// CrashReplay simulates a serve process being killed and restarted
// mid-ingest: the clean corpus is delivered in store order to a WAL-backed
// store, committing every CrashBatch events. At each deterministic crash
// point the log is abandoned without a commit or close — records buffered
// since the last acknowledged commit existed only in memory and are lost,
// exactly as under kill -9 — and the next session recovers from disk and
// re-delivers from the recovered high-water mark. After the final clean
// shutdown the store is recovered once more and compared byte-for-byte
// against the original.
func (inj *Injector) CrashReplay(clean store.Store) (CrashResult, error) {
	dir, err := os.MkdirTemp("", "grca-chaos-crash-")
	if err != nil {
		return CrashResult{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup

	_, _, ins := clean.Dump()
	n := len(ins)
	opts := wal.Options{SnapshotEvery: 4 * inj.cfg.CrashBatch}

	// Crash points: distinct positions in (0, n), drawn from the seed so
	// the same matrix run crashes at the same events.
	rng := inj.rng("crash")
	pts := map[int]bool{}
	for len(pts) < inj.cfg.CrashCount && len(pts) < n-1 {
		pts[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, len(pts))
	for p := range pts {
		cuts = append(cuts, p)
	}
	sort.Ints(cuts)

	res := CrashResult{}
	deliver := func(cut int, crash bool) error {
		l, st, _, err := wal.Open(dir, opts)
		if err != nil {
			return fmt.Errorf("chaos: crash recovery: %v", err)
		}
		resume := st.NextID()
		if crash && resume > cut {
			// An earlier crash already passed this point; nothing to do.
			return nil
		}
		for i := resume; i < cut; i++ {
			st.Add(ins[i])
			if (i+1-resume)%inj.cfg.CrashBatch == 0 {
				if err := l.Commit(); err != nil {
					return err
				}
			}
		}
		if !crash {
			if err := l.Commit(); err != nil {
				return err
			}
			return l.Close()
		}
		// kill -9: walk away. The uncommitted tail of the buffer is lost;
		// the abandoned descriptors hold only already-acknowledged bytes.
		res.Crashes++
		res.Redelivered += cut - int(lastCommitted(resume, cut, inj.cfg.CrashBatch))
		return nil
	}
	for _, cut := range cuts {
		if err := deliver(cut, true); err != nil {
			return res, err
		}
	}
	if err := deliver(n, false); err != nil {
		return res, err
	}

	// The scored store is what a restarted server would actually see.
	l, st, _, err := wal.Open(dir, opts)
	if err != nil {
		return res, fmt.Errorf("chaos: final recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		return res, err
	}
	res.Store = st
	res.DigestMatch = wal.StoreDigest(st) == wal.StoreDigest(clean)
	return res, nil
}

// lastCommitted returns the highest event index covered by an acknowledged
// commit in a session that resumed at resume and crashed before cut, with
// commits every batch events.
func lastCommitted(resume, cut, batch int) int64 {
	full := (cut - resume) / batch
	return int64(resume + full*batch)
}

// CrashReplaySharded is CrashReplay for the sharded write path: the
// corpus is delivered through an N-shard store where every shard owns
// its own WAL, a kill -9 abandons all shard logs at once, and each
// shard survives only to its own commit horizon — so recovery faces
// interleaved loss, with different shards torn at different points of
// the global ID sequence. Each session re-delivers exactly the events
// missing from the merged store, with their original IDs (the sparse
// per-shard Put path), and the final recovery must merge back
// byte-identical to the unperturbed store.
func (inj *Injector) CrashReplaySharded(clean store.Store, shards int) (CrashResult, error) {
	dir, err := os.MkdirTemp("", "grca-chaos-crash-sharded-")
	if err != nil {
		return CrashResult{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup

	_, _, ins := clean.Dump()
	n := len(ins)
	opts := wal.Options{SnapshotEvery: 4 * inj.cfg.CrashBatch}
	route := store.HashRoute(shards)

	// Same crash-point derivation as CrashReplay: the same seed crashes
	// at the same events in both topologies.
	rng := inj.rng("crash")
	pts := map[int]bool{}
	for len(pts) < inj.cfg.CrashCount && len(pts) < n-1 {
		pts[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, len(pts))
	for p := range pts {
		cuts = append(cuts, p)
	}
	sort.Ints(cuts)

	open := func() ([]*wal.Log, *store.Sharded, error) {
		logs := make([]*wal.Log, shards)
		mems := make([]*store.Memory, shards)
		for i := range logs {
			l, st, _, err := wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), opts)
			if err != nil {
				return nil, nil, fmt.Errorf("chaos: sharded crash recovery: %v", err)
			}
			logs[i], mems[i] = l, st
		}
		return logs, store.NewShardedOf(mems, route), nil
	}

	res := CrashResult{}
	prevCut := 0
	deliver := func(cut int, crash bool) error {
		logs, st, err := open()
		if err != nil {
			return err
		}
		commitAll := func() error {
			for _, l := range logs {
				if err := l.Commit(); err != nil {
					return err
				}
			}
			return nil
		}
		delivered := 0
		for i := 0; i < cut; i++ {
			// Redeliver exactly what the merged store is missing — some
			// shards committed past this point, others lost it.
			if _, ok := st.Get(ins[i].ID); ok {
				continue
			}
			if i < prevCut {
				res.Redelivered++
			}
			if _, err := st.Shard(st.ShardFor(ins[i].Loc)).Put(ins[i]); err != nil {
				return err
			}
			if delivered++; delivered%inj.cfg.CrashBatch == 0 {
				if err := commitAll(); err != nil {
					return err
				}
			}
		}
		if crash {
			// kill -9: walk away from every shard's log at once.
			res.Crashes++
			prevCut = cut
			return nil
		}
		if err := commitAll(); err != nil {
			return err
		}
		for _, l := range logs {
			if err := l.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, cut := range cuts {
		if err := deliver(cut, true); err != nil {
			return res, err
		}
	}
	if err := deliver(n, false); err != nil {
		return res, err
	}

	logs, st, err := open()
	if err != nil {
		return res, err
	}
	for _, l := range logs {
		if err := l.Close(); err != nil {
			return res, err
		}
	}
	res.Store = st
	res.DigestMatch = wal.StoreDigest(st) == wal.StoreDigest(clean)
	return res, nil
}
