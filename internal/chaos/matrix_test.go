package chaos_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"grca/internal/chaos"
	"grca/internal/platform"
	"grca/internal/simnet"
)

// matrixBundle generates the shared all-studies dataset for the scenario
// matrix. Incident counts are sized so one extra misdiagnosis moves an
// app's accuracy by well under the tightest documented bound.
func matrixBundle(t *testing.T) platform.Bundle {
	t.Helper()
	d, err := simnet.Generate(simnet.Config{
		Seed: 7, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		MVPNFraction: 0.4, Duration: 6 * 24 * time.Hour,
		BGPFlapIncidents: 120, CDNIncidents: 60, PIMIncidents: 60,
		BackboneIncidents: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return platform.BundleFromDataset(d)
}

// TestScenarioMatrix is the harness's acceptance test: every fault class
// crossed with every packaged application, asserting (a) nothing panics,
// (b) the top-cause accuracy loss stays within the documented Bounds, and
// (c) the report is byte-identical across two runs of the same seed.
func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix assembles the pipeline once per fault class")
	}
	b := matrixBundle(t)
	cfg := chaos.Config{Seed: 99}
	opts := chaos.Options{MaxPending: 256}

	rep, err := chaos.RunMatrix(b, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := chaos.RunMatrix(b, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.MarshalIndent(rep2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different reports across two runs")
	}

	if len(rep.Clean) != 4 {
		t.Fatalf("clean block covers %d apps, want 4", len(rep.Clean))
	}
	for _, sc := range rep.Clean {
		if sc.Score.Truths == 0 {
			t.Fatalf("%s: no ground truth in matrix dataset", sc.App)
		}
		if sc.Score.Matched == 0 {
			t.Fatalf("%s: clean run matched no diagnoses", sc.App)
		}
		if sc.Score.Accuracy < 0.85 {
			t.Errorf("%s: clean accuracy %.3f below 0.85 — harness baseline is broken",
				sc.App, sc.Score.Accuracy)
		}
	}

	if len(rep.Scenarios) != len(chaos.AllFaults()) {
		t.Fatalf("matrix ran %d scenarios, want %d", len(rep.Scenarios), len(chaos.AllFaults()))
	}
	for _, scen := range rep.Scenarios {
		bound, ok := chaos.Bounds[chaos.Fault(scen.Fault)]
		if !ok {
			t.Fatalf("no documented accuracy bound for fault %q", scen.Fault)
		}
		for _, sc := range scen.Apps {
			if sc.AccuracyDrop > bound+1e-9 {
				t.Errorf("%s/%s: accuracy drop %.3f exceeds documented bound %.2f (clean %.3f → %.3f)",
					scen.Fault, sc.App, sc.AccuracyDrop, bound,
					sc.Score.Accuracy+sc.AccuracyDrop, sc.Score.Accuracy)
			}
		}
		switch chaos.Fault(scen.Fault) {
		case chaos.FaultTruncate:
			if scen.Malformed == 0 {
				t.Error("truncate scenario recorded no malformed lines")
			}
		case chaos.FaultDropSource:
			if len(scen.Dropped) == 0 {
				t.Error("drop-source scenario dropped nothing")
			}
		case chaos.FaultDelay:
			for _, sc := range scen.Apps {
				if sc.Stream == nil {
					t.Fatalf("delay scenario missing stream stats for %s", sc.App)
				}
				if sc.Stream.Delayed == 0 {
					t.Errorf("%s: delay scenario delayed no deliveries", sc.App)
				}
				if sc.Stream.Late == 0 {
					t.Errorf("%s: 4h delays never crossed the grace window", sc.App)
				}
			}
		case chaos.FaultCrashRestart:
			if scen.Crashes == 0 {
				t.Error("crash-restart scenario crashed nothing")
			}
			if !scen.DigestMatch {
				t.Error("crash-restart recovery was not byte-identical to the clean store")
			}
			if !scen.BreakdownMatch {
				t.Error("rollup breakdown over the recovered store diverged from the batch browser breakdown")
			}
			if scen.Redelivered == 0 {
				t.Error("crash-restart scenario lost (and redelivered) no uncommitted events")
			}
		case chaos.FaultReplicaLag:
			if scen.StaleFrontier <= 0 || scen.StaleFrontier >= scen.Total {
				t.Errorf("replica-lag stalled at frontier %d of %d — no stale window to serve from",
					scen.StaleFrontier, scen.Total)
			}
			if !scen.DigestMatch {
				t.Error("healed replica was not byte-identical to the primary after lag")
			}
		case chaos.FaultPartition:
			if scen.Reconnects == 0 {
				t.Error("partition scenario severed no connections")
			}
			if !scen.DigestMatch {
				t.Error("healed replica was not byte-identical to the primary after partitions")
			}
		}
	}
}

// TestMatrixSubsetSelection exercises the app/fault narrowing used by the
// CLI without paying for the full matrix.
func TestMatrixSubsetSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("assembles the pipeline twice")
	}
	d, err := simnet.Generate(simnet.Config{
		Seed: 5, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 6,
		Duration: 3 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := platform.BundleFromDataset(d)
	rep, err := chaos.RunMatrix(b, chaos.Config{Seed: 1}, chaos.Options{
		Apps:   []string{"bgpflap"},
		Faults: []chaos.Fault{chaos.FaultDuplicate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clean) != 1 || rep.Clean[0].App != "bgpflap" {
		t.Fatalf("clean block = %+v, want bgpflap only", rep.Clean)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Fault != string(chaos.FaultDuplicate) {
		t.Fatalf("scenarios = %+v, want duplicate only", rep.Scenarios)
	}

	if _, err := chaos.RunMatrix(b, chaos.Config{Seed: 1}, chaos.Options{Apps: []string{"nope"}}); err == nil {
		t.Fatal("unknown app name not rejected")
	}
}
