package chaos

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"grca/internal/replica"
	"grca/internal/store"
	"grca/internal/wal"
)

// ReplicaResult reports one replication fault scenario: a follower WAL
// sink fed through the real shipping protocol (replica.ShipWALOnce →
// replica.Reader → replica.WALSink) with seeded stalls or mid-frame
// connection cuts, then healed and recovered like a promotion would.
type ReplicaResult struct {
	// Store is the healed follower store (a plain wal.Open over the
	// sink's directory, exactly what promotion runs); diagnoses are
	// scored against it.
	Store store.Store
	// Total is the primary's record count; StaleFrontier is the
	// follower's frontier while the fault held — the consistent prefix
	// a lagging replica was serving reads from.
	Total         int
	StaleFrontier int
	// Reconnects counts stream re-establishments; Torn counts
	// deliveries that ended mid-frame (partition only).
	Reconnects int
	Torn       int
	// DigestMatch reports whether the healed follower is byte-identical
	// to the clean store — replication's whole contract: lag and
	// partitions delay visibility, they never change what converges.
	DigestMatch bool
}

// applyStream decodes one shipped byte stream and applies it to the
// sink, stopping at clean EOF or at a torn frame (a connection cut
// mid-frame: the partial frame is discarded undecoded, exactly as the
// live client's reader does). stopAt, when >= 0, stalls the transfer
// once the sink frontier reaches it — a link that stopped draining.
func applyStream(sink *replica.WALSink, data []byte, stopAt int) (torn bool, err error) {
	r := replica.NewReader(wal.NewFrameReader(bytes.NewReader(data)))
	for {
		if stopAt >= 0 && sink.Frontier() >= stopAt {
			return false, nil
		}
		m, err := r.Next()
		if err == io.EOF {
			return false, nil
		}
		if err == wal.ErrTornFrame {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		switch m.Type {
		case replica.MsgHello, replica.MsgHeartbeat, replica.MsgEOF:
			// Framing only; the single-shot shipper has nothing to confirm.
		case replica.MsgWALRec:
			err = sink.WriteRecord(m.Rec)
		case replica.MsgSnapBegin:
			err = sink.BeginSnapshot(m.Next, m.Size)
		case replica.MsgSnapChunk:
			err = sink.WriteSnapshotChunk(m.Chunk)
		case replica.MsgSnapEnd:
			err = sink.EndSnapshot()
		default:
			err = fmt.Errorf("chaos: unexpected stream message type %d", m.Type)
		}
		if err != nil {
			return false, err
		}
	}
}

// shipInto ships the primary's state from the sink's frontier into a
// buffer via the deterministic single-shot shipper.
func shipInto(primDir, bootID string, sink *replica.WALSink) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := replica.ShipWALOnce(primDir, bootID, sink.Frontier(), &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReplicaReplay simulates a read replica under one replication fault
// class and returns the stale view it served plus the healed result:
//
//   - FaultReplicaLag: the stream stalls once LagFraction of the corpus
//     has shipped — a slow or stopped link. The follower serves a
//     consistent prefix until the stream resumes from its frontier.
//   - FaultPartition: PartitionCount times, the connection is severed at
//     a seeded byte offset — usually mid-frame — and the follower
//     reconnects from its frontier through the torn-frame discard path
//     (including snapshot-bootstrap restarts when the cut lands inside
//     a shipped snapshot).
//
// After the fault heals, the remaining stream drains and the follower
// directory is recovered with a plain wal.Open — the promotion path —
// and compared byte-for-byte against the clean store.
func (inj *Injector) ReplicaReplay(clean store.Store, f Fault) (ReplicaResult, error) {
	primDir, err := os.MkdirTemp("", "grca-chaos-replica-prim-")
	if err != nil {
		return ReplicaResult{}, err
	}
	defer os.RemoveAll(primDir) //nolint:errcheck // best-effort temp cleanup
	follDir, err := os.MkdirTemp("", "grca-chaos-replica-foll-")
	if err != nil {
		return ReplicaResult{}, err
	}
	defer os.RemoveAll(follDir) //nolint:errcheck // best-effort temp cleanup

	_, _, ins := clean.Dump()
	res := ReplicaResult{Total: len(ins)}

	// The lag scenario ships a pure record stream (no snapshots, so the
	// stall point is exact); the partition scenario leaves snapshots
	// behind so seeded cuts also land inside snapshot bootstraps.
	opts := wal.Options{}
	if f == FaultPartition {
		opts.SnapshotEvery = 4 * inj.cfg.CrashBatch
	}
	l, st, _, err := wal.Open(primDir, opts)
	if err != nil {
		return res, fmt.Errorf("chaos: replica primary: %v", err)
	}
	for i, in := range ins {
		st.Add(in)
		if (i+1)%inj.cfg.CrashBatch == 0 {
			if err := l.Commit(); err != nil {
				return res, err
			}
		}
	}
	if err := l.Commit(); err != nil {
		return res, err
	}
	// The primary stays "up" (log unclosed) while shipping: ShipWALOnce
	// reads the flushed segments and snapshots from disk, as the real
	// source does.

	const bootID = "chaos-replica"
	sink, err := replica.OpenWALSink(follDir, 0)
	if err != nil {
		return res, err
	}

	switch f {
	case FaultReplicaLag:
		stream, err := shipInto(primDir, bootID, sink)
		if err != nil {
			return res, err
		}
		stall := int(inj.cfg.LagFraction * float64(len(ins)))
		if _, err := applyStream(sink, stream, stall); err != nil {
			return res, err
		}
		res.StaleFrontier = sink.Frontier()
		res.Reconnects = 1 // the single resume after the stall clears
	case FaultPartition:
		rng := inj.rng("partition")
		for k := 0; k < inj.cfg.PartitionCount; k++ {
			stream, err := shipInto(primDir, bootID, sink)
			if err != nil {
				return res, err
			}
			if len(stream) == 0 {
				break
			}
			cut := 1 + rng.Intn(len(stream))
			torn, err := applyStream(sink, stream[:cut], -1)
			if err != nil {
				return res, err
			}
			if torn {
				res.Torn++
			}
			res.Reconnects++
		}
		res.StaleFrontier = sink.Frontier()
	default:
		return res, fmt.Errorf("chaos: %s is not a replication fault", f)
	}

	// Heal: the stream re-establishes from the follower's frontier and
	// drains to the primary's end.
	stream, err := shipInto(primDir, bootID, sink)
	if err != nil {
		return res, err
	}
	if torn, err := applyStream(sink, stream, -1); err != nil {
		return res, err
	} else if torn {
		return res, fmt.Errorf("chaos: heal stream ended torn")
	}
	if err := sink.Close(); err != nil {
		return res, err
	}
	if err := l.Close(); err != nil {
		return res, err
	}

	fl, fst, _, err := wal.Open(follDir, wal.Options{})
	if err != nil {
		return res, fmt.Errorf("chaos: follower recovery: %v", err)
	}
	if err := fl.Close(); err != nil {
		return res, err
	}
	res.Store = fst
	res.DigestMatch = wal.StoreDigest(fst) == wal.StoreDigest(clean)
	return res, nil
}
