package chaos

import (
	"fmt"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
	"grca/internal/wal"
)

func crashCorpus(n int) store.Store {
	st := store.New()
	base := time.Date(2010, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		in := event.Instance{
			Name: event.InterfaceDown, Start: at, End: at,
			Loc: locus.At(locus.Interface, fmt.Sprintf("r%02d", i%17)),
		}
		if i%3 == 0 {
			in.Name = event.InterfaceUp
			in.Attrs = map[string]string{"n": fmt.Sprint(i)}
		}
		st.Add(in)
	}
	return st
}

// TestCrashReplayByteIdentical is the fault class's core property: any
// number of kill -9 restarts mid-ingest still converges on a store
// byte-identical to never having crashed.
func TestCrashReplayByteIdentical(t *testing.T) {
	clean := crashCorpus(2000)
	inj := New(Config{Seed: 11, Faults: []Fault{FaultCrashRestart}, CrashCount: 4, CrashBatch: 64})
	res, err := inj.CrashReplay(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 4 {
		t.Errorf("crashes = %d, want 4", res.Crashes)
	}
	if !res.DigestMatch {
		t.Fatal("recovered store is not byte-identical to the clean one")
	}
	if res.Store.Len() != clean.Len() {
		t.Fatalf("recovered %d events, want %d", res.Store.Len(), clean.Len())
	}
	if wal.StoreDigest(res.Store) != wal.StoreDigest(clean) {
		t.Fatal("digest mismatch despite DigestMatch")
	}

	// Same seed, same crashes, same loss.
	res2, err := New(Config{Seed: 11, Faults: []Fault{FaultCrashRestart}, CrashCount: 4, CrashBatch: 64}).CrashReplay(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Crashes != res.Crashes || res2.Redelivered != res.Redelivered {
		t.Errorf("same seed diverged: %+v vs %+v", res, res2)
	}
}

// TestCrashReplayShardedByteIdentical extends the crash property to the
// sharded write path: crashes tear different shards' WALs at different
// points of the global ID sequence, and recovery must still converge on
// a merged store byte-identical to never having crashed.
func TestCrashReplayShardedByteIdentical(t *testing.T) {
	clean := crashCorpus(2000)
	cfg := Config{Seed: 11, Faults: []Fault{FaultCrashRestart}, CrashCount: 4, CrashBatch: 64}
	res, err := New(cfg).CrashReplaySharded(clean, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 4 {
		t.Errorf("crashes = %d, want 4", res.Crashes)
	}
	if !res.DigestMatch {
		t.Fatal("recovered sharded store is not byte-identical to the clean one")
	}
	if res.Store.Len() != clean.Len() {
		t.Fatalf("recovered %d events, want %d", res.Store.Len(), clean.Len())
	}
	// The 17 routers of the corpus must actually spread over the shards:
	// a degenerate all-on-one-shard run would not test interleaved loss.
	if res.Redelivered == 0 {
		t.Error("no events redelivered — crash points never hit an uncommitted tail")
	}

	res2, err := New(cfg).CrashReplaySharded(clean, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Crashes != res.Crashes || res2.Redelivered != res.Redelivered {
		t.Errorf("same seed diverged: %+v vs %+v", res, res2)
	}
}
