package chaos

import (
	"sort"
	"time"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/realtime"
	"grca/internal/store"
)

// ReplayResult summarizes one delayed streaming replay.
type ReplayResult struct {
	Delivered int // instances fed to the processor
	Delayed   int // instances held back past their availability
	Late      int // arrivals the processor flagged beyond its grace window
	Forced    int // diagnoses forced out by the pending-queue bound
	Diagnoses []engine.Diagnosis
}

// Replay streams every instance of st through a fresh realtime.Processor
// for graph g, in availability order except that DelayFraction of the
// instances are delivered up to DelayMax after they became available —
// the delayed-feed fault class (FaultDelay). maxPending bounds the
// processor's pending queue (0 = unbounded). The delivery schedule is a
// pure function of the injector seed and the instance set.
func (inj *Injector) Replay(view *netstate.View, g *dgraph.Graph, st store.Store, grace time.Duration, maxPending int) ReplayResult {
	type delivery struct {
		at time.Time
		in event.Instance
	}
	var sched []delivery
	rng := inj.rng("delay")
	// store.Names is sorted and All is ordered by start time, so the
	// pre-delay order — and with it every rng draw — is deterministic.
	for _, name := range st.Names() {
		for _, in := range st.All(name) {
			d := delivery{at: in.End, in: *in}
			if inj.has(FaultDelay) && rng.Float64() < inj.cfg.DelayFraction {
				// Delay by whole seconds up to DelayMax, at least one.
				secs := 1 + rng.Int63n(int64(inj.cfg.DelayMax/time.Second))
				d.at = in.End.Add(time.Duration(secs) * time.Second)
			}
			sched = append(sched, d)
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].at.Before(sched[j].at) })

	proc := realtime.New(view, g, grace)
	proc.MaxPending = maxPending
	var res ReplayResult
	for _, d := range sched {
		out, late := proc.Observe(d.in)
		res.Delivered++
		if late {
			res.Late++
		}
		if !d.at.Equal(d.in.End) {
			res.Delayed++
		}
		res.Diagnoses = append(res.Diagnoses, out...)
	}
	res.Diagnoses = append(res.Diagnoses, proc.Flush()...)
	res.Forced = proc.Forced()
	return res
}
