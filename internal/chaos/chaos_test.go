package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"grca/internal/collector"
	"grca/internal/platform"
)

func syslogFeed(n int) string {
	var b strings.Builder
	base := time.Date(2010, 1, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * 37 * time.Second)
		dev := fmt.Sprintf("r%d.pop%02d", i%5, i%3)
		fmt.Fprintf(&b, "%s %s %%SYS-5-TEST: unique line %d\n", at.Format("Jan _2 15:04:05"), dev, i)
	}
	return b.String()
}

func TestFeedDeterministicAndSeedSensitive(t *testing.T) {
	text := syslogFeed(500)
	cfg := Config{Seed: 42, Faults: AllFaults()}
	a := New(cfg).Feed(collector.SourceSyslog, text)
	b := New(cfg).Feed(collector.SourceSyslog, text)
	if a != b {
		t.Fatal("same seed produced different mutations")
	}
	cfg.Seed = 43
	if c := New(cfg).Feed(collector.SourceSyslog, text); c == a {
		t.Fatal("different seed produced identical mutations")
	}
}

func TestSkewConsistentPerDeviceAndBounded(t *testing.T) {
	text := syslogFeed(300)
	inj := New(Config{Seed: 7, Faults: []Fault{FaultSkew}})
	out := inj.Feed(collector.SourceSyslog, text)

	orig := splitLines(text)
	got := splitLines(out)
	if len(got) != len(orig) {
		t.Fatalf("skew changed line count: %d != %d", len(got), len(orig))
	}
	offsets := map[string]time.Duration{}
	skewed := 0
	for i := range orig {
		if got[i][15:] != orig[i][15:] {
			t.Fatalf("skew touched the body of line %d: %q", i, got[i])
		}
		t0, err := time.Parse("Jan _2 15:04:05", orig[i][:15])
		if err != nil {
			t.Fatal(err)
		}
		t1, err := time.Parse("Jan _2 15:04:05", got[i][:15])
		if err != nil {
			t.Fatalf("skewed timestamp unparseable: %q", got[i][:15])
		}
		delta := t1.Sub(t0)
		dev := strings.Fields(orig[i][15:])[0]
		if prev, ok := offsets[dev]; ok && prev != delta {
			t.Fatalf("device %s skewed inconsistently: %v then %v", dev, prev, delta)
		}
		offsets[dev] = delta
		if delta != 0 {
			skewed++
			if delta < -15*time.Second || delta > 15*time.Second {
				t.Fatalf("skew %v exceeds SkewMax", delta)
			}
		}
	}
	if skewed == 0 {
		t.Fatal("no line skewed at SkewFraction 0.5")
	}

	// Skew must not touch centrally-stamped feeds.
	snmp := "1262649600,r0.pop00,ifOperStatus,ge-0/0/0,1\n"
	if inj.Feed(collector.SourceSNMP, snmp) != snmp {
		t.Fatal("skew mutated a non-syslog feed")
	}
}

func TestReorderPreservesRecords(t *testing.T) {
	text := syslogFeed(1000)
	out := New(Config{Seed: 3, Faults: []Fault{FaultReorder}}).Feed(collector.SourceSyslog, text)
	orig, got := splitLines(text), splitLines(out)
	if len(got) != len(orig) {
		t.Fatalf("reorder changed line count: %d != %d", len(got), len(orig))
	}
	seen := map[string]int{}
	for _, l := range orig {
		seen[l]++
	}
	moved := 0
	for i, l := range got {
		seen[l]--
		if seen[l] < 0 {
			t.Fatalf("reorder invented line %q", l)
		}
		if l != orig[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("reorder moved nothing at ReorderFraction 0.10")
	}
}

func TestDuplicateAdjacentAndRateBounded(t *testing.T) {
	text := syslogFeed(4000)
	out := New(Config{Seed: 5, Faults: []Fault{FaultDuplicate}}).Feed(collector.SourceSyslog, text)
	orig, got := splitLines(text), splitLines(out)
	extra := len(got) - len(orig)
	if extra == 0 {
		t.Fatal("no duplicates at DuplicateFraction 0.05")
	}
	if rate := float64(extra) / float64(len(orig)); rate < 0.02 || rate > 0.09 {
		t.Fatalf("duplicate rate %.3f far from configured 0.05", rate)
	}
	// Removing adjacent repeats must recover the original exactly (the
	// source lines are unique, so any adjacent pair is an injected copy).
	var dedup []string
	for i, l := range got {
		if i > 0 && got[i-1] == l {
			continue
		}
		dedup = append(dedup, l)
	}
	if strings.Join(dedup, "\n") != strings.Join(orig, "\n") {
		t.Fatal("duplicates are not adjacent copies of original lines")
	}
}

func TestTruncateProducesPrefixes(t *testing.T) {
	text := syslogFeed(4000)
	out := New(Config{Seed: 9, Faults: []Fault{FaultTruncate}}).Feed(collector.SourceSyslog, text)
	orig, got := splitLines(text), splitLines(out)
	if len(got) != len(orig) {
		t.Fatalf("truncate changed line count: %d != %d", len(got), len(orig))
	}
	cut := 0
	for i := range got {
		if got[i] == orig[i] {
			continue
		}
		cut++
		if !strings.HasPrefix(orig[i], got[i]) || len(got[i]) == 0 {
			t.Fatalf("line %d is not a proper prefix: %q of %q", i, got[i], orig[i])
		}
	}
	if rate := float64(cut) / float64(len(orig)); rate < 0.005 || rate > 0.05 {
		t.Fatalf("truncate rate %.3f far from configured 0.02", rate)
	}
}

func TestFaultMixIndependence(t *testing.T) {
	// Each fault draws from its own (seed, fault, source) generator, so
	// enabling duplication must not change how skew lands: collapsing the
	// injected adjacent copies recovers the skew-only output exactly.
	text := syslogFeed(600)
	skewOnly := New(Config{Seed: 11, Faults: []Fault{FaultSkew}}).Feed(collector.SourceSyslog, text)
	both := New(Config{Seed: 11, Faults: []Fault{FaultSkew, FaultDuplicate}}).Feed(collector.SourceSyslog, text)
	var dedup []string
	lines := splitLines(both)
	for i, l := range lines {
		if i > 0 && lines[i-1] == l {
			continue
		}
		dedup = append(dedup, l)
	}
	if strings.Join(dedup, "\n")+"\n" != skewOnly {
		t.Fatal("activating duplicate changed the skew draw — sub-generators are coupled")
	}
}

func TestPickDropsDeterministicAndRestricted(t *testing.T) {
	feeds := map[string]string{}
	for _, src := range []string{
		collector.SourceSyslog, collector.SourceSNMP, collector.SourceLayer1,
		collector.SourceTACACS, collector.SourceWorkflow, collector.SourceServer,
	} {
		feeds[src] = "x\n"
	}
	b := platform.Bundle{Feeds: feeds}
	inj := New(Config{Seed: 21, Faults: []Fault{FaultDropSource}})
	out := inj.Bundle(b)
	if len(inj.Dropped) != 1 {
		t.Fatalf("Dropped = %v, want exactly DropCount=1 source", inj.Dropped)
	}
	allowed := map[string]bool{}
	for _, src := range DefaultDroppable {
		allowed[src] = true
	}
	if !allowed[inj.Dropped[0]] {
		t.Fatalf("dropped %q, not in DefaultDroppable", inj.Dropped[0])
	}
	if _, ok := out.Feeds[inj.Dropped[0]]; ok {
		t.Fatal("dropped source still present in perturbed bundle")
	}
	if len(out.Feeds) != len(feeds)-1 {
		t.Fatalf("perturbed bundle has %d feeds, want %d", len(out.Feeds), len(feeds)-1)
	}

	inj2 := New(Config{Seed: 21, Faults: []Fault{FaultDropSource}})
	inj2.Bundle(b)
	if inj2.Dropped[0] != inj.Dropped[0] {
		t.Fatalf("drop pick not seed-stable: %v vs %v", inj2.Dropped, inj.Dropped)
	}

	// Explicit DropSources wins over the seeded pick.
	inj3 := New(Config{Seed: 21, Faults: []Fault{FaultDropSource}, DropSources: []string{collector.SourceSNMP}})
	out3 := inj3.Bundle(b)
	if _, ok := out3.Feeds[collector.SourceSNMP]; ok || len(inj3.Dropped) != 1 || inj3.Dropped[0] != collector.SourceSNMP {
		t.Fatalf("explicit DropSources not honored: dropped %v", inj3.Dropped)
	}
}

func TestFeedEmptyAndHeaderLinesSurvive(t *testing.T) {
	inj := New(Config{Seed: 1, Faults: AllFaults()})
	if got := inj.Feed(collector.SourceSyslog, ""); got != "" {
		t.Fatalf("empty feed mutated to %q", got)
	}
	// A comment header is shorter than a syslog timestamp; it must pass
	// through skew unharmed (reorder/truncate may still act on it).
	one := "# header\n"
	out := New(Config{Seed: 1, Faults: []Fault{FaultSkew}}).Feed(collector.SourceSyslog, one)
	if out != one {
		t.Fatalf("header line mutated by skew: %q", out)
	}
}
