package chaos

import (
	"sort"
	"time"

	"grca/internal/engine"
	"grca/internal/platform"
	"grca/internal/simnet"
)

// LabelScore is the confusion tally for one root-cause label within a
// scenario: how often the engine named it correctly (TP), named it when
// the truth said otherwise (FP), and failed to name it when it was the
// injected cause (FN — including truth incidents no diagnosis matched at
// all, i.e. undetected symptoms).
type LabelScore struct {
	Label     string
	TP        int
	FP        int
	FN        int
	Precision float64 // TP / (TP+FP); 0 when the label was never predicted
	Recall    float64 // TP / (TP+FN); 0 when the label never resolved
}

// ScoreSummary scores one scenario's diagnoses against the injected
// ground truth of one study. Accuracy follows the platform scorer
// (correct / matched); Detection adds what that number hides — the
// fraction of injected incidents that produced *any* matched diagnosis.
// A fault that suppresses symptoms entirely leaves Accuracy flattering
// and Detection collapsed.
type ScoreSummary struct {
	Truths    int     // injected incidents for the study
	Matched   int     // diagnoses matched to a truth record
	Correct   int     // matched diagnoses whose top cause was the injected one
	Unmatched int     // diagnoses with no truth record within tolerance
	Missed    int     // truth records no diagnosis matched
	Accuracy  float64 // Correct / Matched
	Detection float64 // (Truths - Missed) / Truths
	Labels    []LabelScore
}

// Score matches each diagnosis to the nearest same-location truth record
// of the study within tolerance, then computes top-cause accuracy and
// per-label precision/recall. The expected label for a truth kind follows
// platform.ExpectedLabel (what rule-based reasoning *can* conclude, e.g. a
// line-card crash presents as an interface flap, §IV-C).
func Score(truths []simnet.Truth, study string, ds []engine.Diagnosis, tolerance time.Duration) ScoreSummary {
	type slot struct {
		truth   *simnet.Truth
		matched bool
	}
	byWhere := map[string][]*slot{}
	var s ScoreSummary
	for i := range truths {
		tr := &truths[i]
		if tr.Study != study {
			continue
		}
		s.Truths++
		byWhere[tr.Where] = append(byWhere[tr.Where], &slot{truth: tr})
	}

	counts := map[string]*LabelScore{}
	tally := func(label string) *LabelScore {
		ls := counts[label]
		if ls == nil {
			ls = &LabelScore{Label: label}
			counts[label] = ls
		}
		return ls
	}

	for _, d := range ds {
		where := d.Symptom.Loc.String()
		var best *slot
		var bestDelta time.Duration
		for _, sl := range byWhere[where] {
			delta := d.Symptom.Start.Sub(sl.truth.At)
			if delta < 0 {
				delta = -delta
			}
			if delta <= tolerance && (best == nil || delta < bestDelta) {
				best, bestDelta = sl, delta
			}
		}
		if best == nil {
			s.Unmatched++
			continue
		}
		best.matched = true
		s.Matched++
		expected := platform.ExpectedLabel(best.truth.Kind)
		predicted := d.Primary()
		if predicted == expected {
			s.Correct++
			tally(expected).TP++
		} else {
			tally(predicted).FP++
			tally(expected).FN++
		}
	}

	for _, slots := range byWhere {
		for _, sl := range slots {
			if !sl.matched {
				s.Missed++
				tally(platform.ExpectedLabel(sl.truth.Kind)).FN++
			}
		}
	}

	if s.Matched > 0 {
		s.Accuracy = float64(s.Correct) / float64(s.Matched)
	}
	if s.Truths > 0 {
		s.Detection = float64(s.Truths-s.Missed) / float64(s.Truths)
	}
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		ls := counts[l]
		if ls.TP+ls.FP > 0 {
			ls.Precision = float64(ls.TP) / float64(ls.TP+ls.FP)
		}
		if ls.TP+ls.FN > 0 {
			ls.Recall = float64(ls.TP) / float64(ls.TP+ls.FN)
		}
		s.Labels = append(s.Labels, *ls)
	}
	return s
}
