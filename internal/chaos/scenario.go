package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/browser"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/platform"
	"grca/internal/realtime"
	"grca/internal/rollup"
	"grca/internal/store"
)

// AppSpec binds one packaged RCA application to the harness.
type AppSpec struct {
	Name      string
	Study     string // ground-truth study key in simnet.Truth
	NewEngine func(store.Store, *netstate.View) (*engine.Engine, error)
	Build     func() (*event.Library, *dgraph.Graph, error)
}

// AppSpecs lists the packaged applications in canonical order.
func AppSpecs() []AppSpec {
	return []AppSpec{
		{"bgpflap", "bgp", bgpflap.NewEngine, bgpflap.Build},
		{"cdn", "cdn", cdn.NewEngine, cdn.Build},
		{"pim", "pim", pim.NewEngine, pim.Build},
		{"backbone", "backbone", backbone.NewEngine, backbone.Build},
	}
}

// StreamStats carries the delayed-replay counters of one app's delay
// scenario.
type StreamStats struct {
	Delivered int
	Delayed   int
	Late      int
	Forced    int
}

// AppScore is one application's accuracy under one scenario.
type AppScore struct {
	App      string
	Symptoms int // diagnoses produced
	Score    ScoreSummary
	// AccuracyDrop is the clean-run accuracy minus this scenario's
	// (positive = the fault cost accuracy); zero in the clean block.
	AccuracyDrop float64
	Stream       *StreamStats `json:",omitempty"`
}

// Scenario is the report block of one fault class.
type Scenario struct {
	Fault       string
	Malformed   int      `json:",omitempty"`
	Quarantined []string `json:",omitempty"`
	Dropped     []string `json:",omitempty"`
	// Crashes/Redelivered/DigestMatch are set by the crash-restart
	// scenario: restart count, events lost-and-redelivered across all
	// crashes, and whether WAL recovery reproduced the store
	// byte-identically.
	Crashes     int  `json:",omitempty"`
	Redelivered int  `json:",omitempty"`
	DigestMatch bool `json:",omitempty"`
	// BreakdownMatch reports whether, over the recovered store, the
	// incremental rollup's per-cause breakdown is byte-identical to the
	// batch browser.Breakdown for every application. Combined with
	// DigestMatch this asserts the Result Browser aggregates survive a
	// kill -9 restart exactly.
	BreakdownMatch bool `json:",omitempty"`
	// StaleFrontier/Total/Reconnects/Torn are set by the replication
	// scenarios (replica-lag, partition): the record frontier the
	// lagging follower was serving reads at, the primary's record
	// count, stream re-establishments, and deliveries cut mid-frame.
	// DigestMatch then reports the post-heal follower-vs-primary
	// comparison.
	StaleFrontier int `json:",omitempty"`
	Total         int `json:",omitempty"`
	Reconnects    int `json:",omitempty"`
	Torn          int `json:",omitempty"`
	Apps          []AppScore
}

// Report is the harness's machine-readable output. Every field is a pure
// function of the dataset and the seed — running the same matrix twice
// must produce byte-identical JSON (the scenario tests enforce this), so
// no wall-clock readings or map-ordered values belong here.
type Report struct {
	Seed             int64
	ToleranceSeconds int
	Clean            []AppScore
	Scenarios        []Scenario
}

// Options tunes RunMatrix.
type Options struct {
	// Apps restricts the matrix to the named applications (default all).
	Apps []string
	// Faults restricts the fault classes (default AllFaults).
	Faults []Fault
	// Tolerance is the truth-matching window (default 10m).
	Tolerance time.Duration
	// MaxPending bounds the streaming processor's pending queue in the
	// delay scenario (0 = unbounded).
	MaxPending int
}

// RunMatrix runs the scenario matrix over a dataset bundle: assemble and
// score the clean pipeline once per application, then for each fault
// class perturb the bundle with that single fault (at cfg's rates, under
// cfg.Seed) and score again. cfg.Faults is ignored — each scenario
// injects exactly one class, so a fault's accuracy cost is attributable.
func RunMatrix(b platform.Bundle, cfg Config, opts Options) (*Report, error) {
	if opts.Tolerance == 0 {
		opts.Tolerance = 10 * time.Minute
	}
	faults := opts.Faults
	if len(faults) == 0 {
		faults = AllFaults()
	}
	apps, err := selectApps(opts.Apps)
	if err != nil {
		return nil, err
	}

	rep := &Report{Seed: cfg.Seed, ToleranceSeconds: int(opts.Tolerance / time.Second)}

	cleanSys, err := b.Assemble(platform.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: clean assemble: %v", err)
	}
	cleanAcc := map[string]float64{}
	for _, a := range apps {
		sc, err := scoreApp(a, cleanSys, b, opts.Tolerance)
		if err != nil {
			return nil, err
		}
		cleanAcc[a.Name] = sc.Score.Accuracy
		rep.Clean = append(rep.Clean, sc)
	}

	for _, f := range faults {
		sCfg := cfg
		sCfg.Faults = []Fault{f}
		inj := New(sCfg)
		scen := Scenario{Fault: string(f)}

		if f == FaultDelay {
			// Delay perturbs delivery into the streaming processor, not
			// the feed text: replay the clean corpus per application.
			for _, a := range apps {
				_, g, err := a.Build()
				if err != nil {
					return nil, fmt.Errorf("chaos: %s graph: %v", a.Name, err)
				}
				grace := realtime.GraceFor(g, 15*time.Minute)
				res := inj.Replay(cleanSys.View, g, cleanSys.Store, grace, opts.MaxPending)
				sc := AppScore{
					App:      a.Name,
					Symptoms: len(res.Diagnoses),
					Score:    Score(b.Truth, a.Study, res.Diagnoses, opts.Tolerance),
					Stream: &StreamStats{
						Delivered: res.Delivered, Delayed: res.Delayed,
						Late: res.Late, Forced: res.Forced,
					},
				}
				sc.AccuracyDrop = cleanAcc[a.Name] - sc.Score.Accuracy
				scen.Apps = append(scen.Apps, sc)
			}
			rep.Scenarios = append(rep.Scenarios, scen)
			continue
		}

		if f == FaultCrashRestart {
			// Crash-restart perturbs durability, not the feed text: replay
			// the clean corpus through a WAL with seeded kill -9 restarts
			// and diagnose over the recovered store.
			res, err := inj.CrashReplay(cleanSys.Store)
			if err != nil {
				return nil, err
			}
			scen.Crashes, scen.Redelivered, scen.DigestMatch =
				res.Crashes, res.Redelivered, res.DigestMatch
			scen.BreakdownMatch = true
			for _, a := range apps {
				eng, err := a.NewEngine(res.Store, cleanSys.View)
				if err != nil {
					return nil, fmt.Errorf("chaos: %s engine: %v", a.Name, err)
				}
				ds := eng.DiagnoseAll()
				// Rebuild the Result Browser rollup from the recovered
				// store the way the server does on restart and compare
				// its breakdown byte-for-byte with the batch path.
				roll := rollup.New(rollup.Config{})
				roll.SeedEvents(res.Store)
				for _, d := range ds {
					roll.CountDiagnosis(a.Name, d)
				}
				counts, total := roll.BreakdownCounts(a.Name, time.Time{}, nil)
				got, err := json.Marshal(browser.Rows(counts, total))
				if err != nil {
					return nil, fmt.Errorf("chaos: %s breakdown: %v", a.Name, err)
				}
				want, err := json.Marshal(browser.Breakdown(ds, nil))
				if err != nil {
					return nil, fmt.Errorf("chaos: %s breakdown: %v", a.Name, err)
				}
				if !bytes.Equal(got, want) {
					scen.BreakdownMatch = false
				}
				sc := AppScore{App: a.Name, Symptoms: len(ds),
					Score: Score(b.Truth, a.Study, ds, opts.Tolerance)}
				sc.AccuracyDrop = cleanAcc[a.Name] - sc.Score.Accuracy
				scen.Apps = append(scen.Apps, sc)
			}
			rep.Scenarios = append(rep.Scenarios, scen)
			continue
		}

		if f == FaultReplicaLag || f == FaultPartition {
			// Replication faults perturb the shipping stream, not the
			// feed text: replay the clean corpus through the real
			// protocol with seeded stalls/cuts, heal, and diagnose over
			// the recovered follower — which must be byte-identical, so
			// the bound is zero, like crash-restart.
			res, err := inj.ReplicaReplay(cleanSys.Store, f)
			if err != nil {
				return nil, err
			}
			scen.StaleFrontier, scen.Total = res.StaleFrontier, res.Total
			scen.Reconnects, scen.Torn = res.Reconnects, res.Torn
			scen.DigestMatch = res.DigestMatch
			for _, a := range apps {
				eng, err := a.NewEngine(res.Store, cleanSys.View)
				if err != nil {
					return nil, fmt.Errorf("chaos: %s engine: %v", a.Name, err)
				}
				ds := eng.DiagnoseAll()
				sc := AppScore{App: a.Name, Symptoms: len(ds),
					Score: Score(b.Truth, a.Study, ds, opts.Tolerance)}
				sc.AccuracyDrop = cleanAcc[a.Name] - sc.Score.Accuracy
				scen.Apps = append(scen.Apps, sc)
			}
			rep.Scenarios = append(rep.Scenarios, scen)
			continue
		}

		fb := inj.Bundle(b)
		sys, err := fb.Assemble(platform.Options{})
		if err != nil {
			return nil, fmt.Errorf("chaos: %s assemble: %v", f, err)
		}
		sum := sys.Collector.Summary()
		scen.Malformed = sum.Totals.Malformed
		scen.Quarantined = sum.Quarantined()
		scen.Dropped = inj.Dropped
		for _, a := range apps {
			sc, err := scoreApp(a, sys, b, opts.Tolerance)
			if err != nil {
				return nil, err
			}
			sc.AccuracyDrop = cleanAcc[a.Name] - sc.Score.Accuracy
			scen.Apps = append(scen.Apps, sc)
		}
		rep.Scenarios = append(rep.Scenarios, scen)
	}
	return rep, nil
}

func selectApps(names []string) ([]AppSpec, error) {
	all := AppSpecs()
	if len(names) == 0 {
		return all, nil
	}
	var out []AppSpec
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("chaos: unknown application %q", name)
		}
	}
	return out, nil
}

func scoreApp(a AppSpec, sys *platform.System, b platform.Bundle, tol time.Duration) (AppScore, error) {
	eng, err := a.NewEngine(sys.Store, sys.View)
	if err != nil {
		return AppScore{}, fmt.Errorf("chaos: %s engine: %v", a.Name, err)
	}
	ds := eng.DiagnoseAll()
	return AppScore{App: a.Name, Symptoms: len(ds), Score: Score(b.Truth, a.Study, ds, tol)}, nil
}
