package netstate

import "grca/internal/locus"

// pathLevels are the join levels a router-pair span (the §II-B item 3
// shortest-path expansion) can produce: every element class that appears
// on an OSPF path.
var pathLevels = []locus.Type{
	locus.Router, locus.LogicalLink, locus.Interface, locus.Layer1Device, locus.PoP,
}

// ifaceLevels are the join levels an interface anchor can produce.
var ifaceLevels = []locus.Type{
	locus.Interface, locus.Router, locus.PoP, locus.LineCard,
	locus.LogicalLink, locus.PhysicalLink, locus.Layer1Device,
}

// convertible is the static image of View.Expand: convertible[from] lists
// every target type some location of type `from` can expand to, given
// suitable topology and routing state. It deliberately over-approximates
// nothing — each entry corresponds to a switch arm in expand and its
// helpers — so a (from, level) pair absent here ALWAYS fails at diagnosis
// time with "no conversion", which is exactly what grca vet flags before
// deployment. TestConvertibleToMatchesExpand cross-checks this table
// against the dynamic implementation.
var convertible = map[locus.Type][]locus.Type{
	locus.Router:       {locus.Router, locus.PoP, locus.LineCard, locus.Interface},
	locus.PoP:          {locus.PoP},
	locus.LogicalLink:  {locus.LogicalLink, locus.Interface, locus.Router, locus.PhysicalLink, locus.Layer1Device},
	locus.PhysicalLink: {locus.PhysicalLink, locus.Layer1Device, locus.LogicalLink},
	locus.Layer1Device: {locus.Layer1Device},
	locus.Server:       {locus.Server, locus.Router},
	locus.Interface:    ifaceLevels,
	locus.LineCard:     {locus.LineCard, locus.Router, locus.Interface},
	// An adjacency anchors at its attachment interface (external
	// neighbor) or spans the backbone path between the two routers
	// (internal neighbor); either way the interface and path levels are
	// reachable.
	locus.RouterNeighbor: append([]locus.Type{locus.RouterNeighbor}, ifaceLevels...),
	locus.IngressEgress:  append([]locus.Type{locus.IngressEgress}, pathLevels...),
	locus.IngressDestination: append([]locus.Type{
		locus.IngressDestination, locus.IngressEgress}, pathLevels...),
	locus.SourceDestination: append([]locus.Type{
		locus.SourceDestination, locus.SourceIngress, locus.EgressDestination,
		locus.IngressDestination, locus.IngressEgress}, pathLevels...),
	locus.SourceIngress:     {locus.SourceIngress, locus.Router, locus.PoP, locus.Interface},
	locus.EgressDestination: {locus.EgressDestination, locus.Router, locus.PoP},
	locus.ServerClient: append([]locus.Type{
		locus.ServerClient, locus.Server, locus.IngressDestination,
		locus.IngressEgress}, pathLevels...),
}

// ConvertibleTo reports whether the spatial model can ever convert a
// location of type `from` into locations of type `to` — i.e. whether a
// diagnosis rule joining an event located at `from` at join level `to`
// is feasible. It is a static property of the conversion lattice; the
// dynamic expansion may still yield an empty set (no route, no circuit)
// for particular locations and times.
func ConvertibleTo(from, to locus.Type) bool {
	if !from.Valid() || !to.Valid() {
		return false
	}
	if from == to {
		return true
	}
	for _, t := range convertible[from] {
		if t == to {
			return true
		}
	}
	return false
}

// JoinFeasible reports whether events located at types a and b can ever
// be spatially joined at the given level.
func JoinFeasible(a, b, level locus.Type) bool {
	return ConvertibleTo(a, level) && ConvertibleTo(b, level)
}
