package netstate

import (
	"hash/fnv"
	"sort"

	"grca/internal/locus"
)

// ShardMap partitions the location space for the sharded ingest path.
// Two locations that the conversion lattice can ever relate — an
// interface and its router, a link and its endpoints, a circuit and the
// layer-1 devices carrying it, a CDN server and its attachment router —
// must land on the same shard so the spatial joins behind one diagnosis
// stay shard-local. The map is the static transitive closure of that
// relation: a union-find over the topology's expansion edges, with each
// component named by its lexicographically smallest member so the
// partition is deterministic for any build order.
//
// Placement is a locality optimization, never a correctness requirement
// (reads scatter-gather across all shards), so locations outside the
// known topology simply key to themselves: distinct unknown anchors
// spread across shards by hash.
type ShardMap struct {
	root map[string]string // component key → canonical (min) member
	// srcIngress resolves a SourceDestination's configured ingress
	// router, the one anchor that is not derivable from the location
	// itself.
	srcIngress map[string]string
}

// Component keys. Each anchor class gets a distinct prefix so e.g. a
// router and a layer-1 device sharing a name stay distinct nodes.
func routerKey(name string) string { return "R|" + name }
func popKey(name string) string    { return "P|" + name }
func linkKey(id string) string     { return "L|" + id }
func physKey(id string) string     { return "PH|" + id }
func l1Key(name string) string     { return "D|" + name }
func serverKey(name string) string { return "S|" + name }

// anchorKey maps a location to its component anchor — the node the
// union-find relates to everything the lattice can convert the location
// into. An empty string means the type has no static anchor.
func anchorKey(loc locus.Location) string {
	switch loc.Type {
	case locus.Router, locus.Interface, locus.LineCard, locus.RouterNeighbor:
		return routerKey(loc.A)
	case locus.PoP:
		return popKey(loc.A)
	case locus.LogicalLink:
		return linkKey(loc.A)
	case locus.PhysicalLink:
		return physKey(loc.A)
	case locus.Layer1Device:
		return l1Key(loc.A)
	case locus.Server, locus.ServerClient:
		return serverKey(loc.A)
	case locus.IngressEgress, locus.IngressDestination, locus.EgressDestination:
		return routerKey(loc.A)
	case locus.SourceIngress:
		return routerKey(loc.B)
	}
	return ""
}

// BuildShardMap derives the location partition from a finalized view:
// one union-find edge per conversion the topology supports.
func BuildShardMap(v *View) *ShardMap {
	u := map[string]string{}
	find := func(k string) string {
		for u[k] != "" && u[k] != k {
			u[k] = u[u[k]] // path halving
			k = u[k]
		}
		if u[k] == "" {
			u[k] = k
		}
		return k
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			u[ra] = rb
		}
	}

	topo := v.Topo
	for _, r := range topo.Routers {
		union(routerKey(r.Name), popKey(r.PoP))
	}
	for _, l := range topo.Links {
		union(linkKey(l.ID), routerKey(l.A.Router.Name))
		union(linkKey(l.ID), routerKey(l.B.Router.Name))
	}
	for _, p := range topo.Phys {
		union(physKey(p.ID), linkKey(p.Logical.ID))
		for _, d := range p.L1 {
			union(l1Key(d.Name), physKey(p.ID))
		}
	}
	for server, router := range v.serverRouter {
		union(serverKey(server), routerKey(router))
	}

	// Canonicalize: every member of a component maps to the
	// lexicographically smallest member, independent of union order.
	members := map[string][]string{}
	for k := range u {
		r := find(k)
		members[r] = append(members[r], k)
	}
	m := &ShardMap{root: make(map[string]string, len(u)), srcIngress: map[string]string{}}
	for _, ks := range members {
		sort.Strings(ks)
		for _, k := range ks {
			m.root[k] = ks[0]
		}
	}
	for client, ingress := range v.clientIngr {
		m.srcIngress[client] = routerKey(ingress)
	}
	return m
}

// Key returns the deterministic shard key of a location: its component's
// canonical root when the anchor is part of the known topology, the
// location's own canonical Key otherwise. A nil map anchors nothing.
func (m *ShardMap) Key(loc locus.Location) string {
	k := anchorKey(loc)
	if k == "" && loc.Type == locus.SourceDestination && m != nil {
		k = m.srcIngress[loc.A]
	}
	if k == "" {
		return loc.Key()
	}
	if m != nil {
		if root, ok := m.root[k]; ok {
			return root
		}
	}
	return k
}

// Shard maps a location to a shard index in [0, n) by hashing its Key.
func (m *ShardMap) Shard(loc locus.Location, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(m.Key(loc)))
	return int(h.Sum32() % uint32(n))
}
