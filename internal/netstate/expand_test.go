package netstate_test

import (
	"testing"
	"time"

	"grca/internal/locus"
	"grca/internal/ospf"
	"grca/internal/testnet"
)

func TestExpandRouterLevels(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	r := locus.At(locus.Router, "nyc-per1")

	got, err := n.View.Expand(r, locus.PoP, testnet.T0)
	if err != nil || len(got) != 1 || got[0] != locus.At(locus.PoP, "nyc") {
		t.Errorf("router→pop = %v, %v", got, err)
	}
	cards, err := n.View.Expand(r, locus.LineCard, testnet.T0)
	if err != nil || len(cards) != 2 {
		t.Errorf("router→cards = %v, %v", cards, err)
	}
	ifaces, err := n.View.Expand(r, locus.Interface, testnet.T0)
	if err != nil || len(ifaces) < 3 {
		t.Errorf("router→interfaces = %v, %v", ifaces, err)
	}
	if _, err := n.View.Expand(r, locus.Layer1Device, testnet.T0); err == nil {
		t.Error("router→layer1 should be unsupported (ambiguous without a link)")
	}
	if _, err := n.View.Expand(locus.At(locus.Router, "ghost"), locus.PoP, testnet.T0); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestExpandLinkAndPhysical(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	link := locus.At(locus.LogicalLink, "custB-att")

	rts, err := n.View.Expand(link, locus.Router, testnet.T0)
	if err != nil || len(rts) != 2 {
		t.Fatalf("link→routers = %v, %v", rts, err)
	}
	ifs, err := n.View.Expand(link, locus.Interface, testnet.T0)
	if err != nil || len(ifs) != 2 {
		t.Fatalf("link→interfaces = %v, %v", ifs, err)
	}
	phys, err := n.View.Expand(link, locus.PhysicalLink, testnet.T0)
	if err != nil || len(phys) != 1 || phys[0].A != "custB-att-c1" {
		t.Fatalf("link→physical = %v, %v", phys, err)
	}
	l1, err := n.View.Expand(link, locus.Layer1Device, testnet.T0)
	if err != nil || len(l1) != 2 {
		t.Fatalf("link→layer1 = %v, %v", l1, err)
	}
	if _, err := n.View.Expand(link, locus.ServerClient, testnet.T0); err == nil {
		t.Error("link→server:client should be unsupported")
	}
	if _, err := n.View.Expand(locus.At(locus.LogicalLink, "ghost"), locus.Router, testnet.T0); err == nil {
		t.Error("unknown link accepted")
	}

	// Physical link conversions.
	back, err := n.View.Expand(phys[0], locus.LogicalLink, testnet.T0)
	if err != nil || len(back) != 1 || back[0] != link {
		t.Errorf("physical→logical = %v, %v", back, err)
	}
	devs, err := n.View.Expand(phys[0], locus.Layer1Device, testnet.T0)
	if err != nil || len(devs) != 2 {
		t.Errorf("physical→layer1 = %v, %v", devs, err)
	}
	if _, err := n.View.Expand(phys[0], locus.Router, testnet.T0); err == nil {
		t.Error("physical→router should be unsupported")
	}
	if _, err := n.View.Expand(locus.At(locus.PhysicalLink, "ghost"), locus.Layer1Device, testnet.T0); err == nil {
		t.Error("unknown physical accepted")
	}
}

func TestExpandLayer1AndPoP(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	d := locus.At(locus.Layer1Device, "mesh-nyc-cr1")
	got, err := n.View.Expand(d, locus.Layer1Device, testnet.T0)
	if err != nil || len(got) != 1 || got[0] != d {
		t.Errorf("layer1 identity = %v, %v", got, err)
	}
	p := locus.At(locus.PoP, "nyc")
	got, err = n.View.Expand(p, locus.PoP, testnet.T0)
	if err != nil || len(got) != 1 {
		t.Errorf("pop identity = %v, %v", got, err)
	}
	if _, err := n.View.Expand(p, locus.Router, testnet.T0); err == nil {
		t.Error("pop→router should be unsupported")
	}
}

func TestExpandIngressDestination(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// Destination given as a raw address.
	id := locus.Between(locus.IngressDestination, "nyc-per1", testnet.AgentAddr.String())

	norm, err := n.View.Expand(id, locus.IngressDestination, testnet.T0)
	if err != nil || len(norm) != 1 || norm[0].B != testnet.ClientPrefix.String() {
		t.Fatalf("normalize = %v, %v", norm, err)
	}
	ie, err := n.View.Expand(id, locus.IngressEgress, testnet.T0)
	if err != nil || len(ie) != 1 || ie[0].B != "chi-per1" {
		t.Fatalf("ingress:destination→ingress:egress = %v, %v", ie, err)
	}
	rts, err := n.View.Expand(id, locus.Router, testnet.T0)
	if err != nil || len(rts) < 3 {
		t.Fatalf("ingress:destination→routers = %v, %v", rts, err)
	}

	// A destination with no route expands to nothing (not an error).
	noRoute := locus.Between(locus.IngressDestination, "nyc-per1", "203.0.113.9")
	got, err := n.View.Expand(noRoute, locus.Router, testnet.T0)
	if err != nil || got != nil {
		t.Errorf("routeless destination = %v, %v", got, err)
	}
	// ...and normalization leaves it untouched.
	norm, err = n.View.Expand(noRoute, locus.IngressDestination, testnet.T0)
	if err != nil || norm[0] != noRoute {
		t.Errorf("routeless normalize = %v, %v", norm, err)
	}

	// A prefix literal destination resolves too.
	idp := locus.Between(locus.IngressDestination, "nyc-per1", testnet.ClientPrefix.String())
	ie, err = n.View.Expand(idp, locus.IngressEgress, testnet.T0)
	if err != nil || len(ie) != 1 {
		t.Errorf("prefix destination = %v, %v", ie, err)
	}
	// Garbage destination errors.
	if _, err := n.View.Expand(locus.Between(locus.IngressDestination, "nyc-per1", "wat"),
		locus.Router, testnet.T0); err == nil {
		t.Error("garbage destination accepted")
	}
}

func TestExpandServer(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	s := locus.At(locus.Server, "cdn-nyc-s1")
	got, err := n.View.Expand(s, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "nyc-per1" {
		t.Errorf("server→router = %v, %v", got, err)
	}
	// The node registers with the same attachment.
	got, err = n.View.Expand(locus.At(locus.Server, "cdn-nyc"), locus.Router, testnet.T0)
	if err != nil || len(got) != 1 {
		t.Errorf("node→router = %v, %v", got, err)
	}
	if _, err := n.View.Expand(locus.At(locus.Server, "ghost"), locus.Router, testnet.T0); err == nil {
		t.Error("unregistered server accepted")
	}
	if _, err := n.View.Expand(s, locus.Interface, testnet.T0); err == nil {
		t.Error("server→interface should be unsupported")
	}
}

func TestExpandServerClientEdges(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	sc := locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1")
	got, err := n.View.Expand(sc, locus.ServerClient, testnet.T0)
	if err != nil || len(got) != 1 || got[0] != sc {
		t.Errorf("identity = %v, %v", got, err)
	}
	// Client given as a literal address rather than a registered agent.
	scAddr := locus.Between(locus.ServerClient, "cdn-nyc-s1", testnet.AgentAddr.String())
	ie, err := n.View.Expand(scAddr, locus.IngressEgress, testnet.T0)
	if err != nil || len(ie) != 1 {
		t.Errorf("address client = %v, %v", ie, err)
	}
	// Client with no route expands to nothing.
	scNo := locus.Between(locus.ServerClient, "cdn-nyc-s1", "203.0.113.9")
	if got, err := n.View.Expand(scNo, locus.Router, testnet.T0); err != nil || got != nil {
		t.Errorf("routeless client = %v, %v", got, err)
	}
	// Garbage client errors.
	if _, err := n.View.Expand(locus.Between(locus.ServerClient, "cdn-nyc-s1", "wat"),
		locus.Router, testnet.T0); err == nil {
		t.Error("garbage client accepted")
	}
}

func TestExpandPathUnsupportedLevel(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	span := locus.Between(locus.IngressEgress, "nyc-per1", "chi-per1")
	if _, err := n.View.Expand(span, locus.LineCard, testnet.T0); err == nil {
		t.Error("path→line-card should be unsupported")
	}
	// PoP and Layer1 levels over a path.
	pops, err := n.View.Expand(span, locus.PoP, testnet.T0)
	if err != nil || len(pops) != 2 {
		t.Errorf("path→pops = %v, %v", pops, err)
	}
	l1, err := n.View.Expand(span, locus.Layer1Device, testnet.T0)
	if err != nil || len(l1) == 0 {
		t.Errorf("path→layer1 = %v, %v", l1, err)
	}
}

func TestExpandPIMPairFallbackWhenPartitioned(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	t1 := testnet.T0.Add(time.Hour)
	// Partition chi-per1 from the backbone.
	for _, l := range []string{"chi-up1", "chi-up2"} {
		if err := n.OSPF.SetWeight(t1, l, ospf.Infinity); err != nil {
			t.Fatal(err)
		}
	}
	adj := locus.Between(locus.RouterNeighbor, "nyc-per1", "chi-per1")
	got, err := n.View.Expand(adj, locus.Router, t1.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Unroutable pair still expands to its two endpoints.
	if len(got) != 2 {
		t.Errorf("partitioned pair expansion = %v", got)
	}
}

func TestClientAddrAndServerRouterAccessors(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	if a, ok := n.View.ClientAddr("agent-1"); !ok || a != testnet.AgentAddr {
		t.Errorf("ClientAddr = %v, %v", a, ok)
	}
	if _, ok := n.View.ClientAddr("nobody"); ok {
		t.Error("unknown client found")
	}
	if r, ok := n.View.ServerRouter("cdn-nyc"); !ok || r != "nyc-per1" {
		t.Errorf("ServerRouter = %v, %v", r, ok)
	}
	if _, ok := n.View.ServerRouter("nobody"); ok {
		t.Error("unknown server found")
	}
	// EgressFor with an address literal.
	eg, err := n.View.EgressFor("nyc-per1", testnet.AgentAddr.String(), testnet.T0)
	if err != nil || eg != "chi-per1" {
		t.Errorf("EgressFor literal = %v, %v", eg, err)
	}
	if _, err := n.View.EgressFor("nyc-per1", "203.0.113.9", testnet.T0); err == nil {
		t.Error("routeless EgressFor accepted")
	}
}
