package netstate_test

import (
	"math/rand"
	"testing"
	"time"

	"grca/internal/bgp"
	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/testnet"
)

// TestEpochEquivalence is the property behind the routing-epoch cache:
// under a random change log, Expand(loc, level, t1) == Expand(loc, level,
// t2) (as a set) whenever EpochAt(t1) == EpochAt(t2), for every expansion
// family that consults routing state. Distinct epochs must also be
// distinguishable: a weight change that actually reroutes yields a
// different epoch on the two sides of its instant.
func TestEpochEquivalence(t *testing.T) {
	links := []string{"nyc-chi-1", "nyc-chi-2", "chi-wdc-1", "chi-wdc-2", "nyc-wdc-1", "nyc-wdc-2", "chi-core"}
	weightsFor := []int{5, 10, 25, 40, 80}
	probes := []struct {
		loc   locus.Location
		level locus.Type
	}{
		{locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1"), locus.Router},
		{locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1"), locus.LogicalLink},
		{locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1"), locus.IngressEgress},
		{locus.Between(locus.IngressEgress, "nyc-per1", "wdc-per1"), locus.Router},
		{locus.Between(locus.IngressEgress, "nyc-per1", "wdc-per1"), locus.Interface},
		{locus.Between(locus.IngressDestination, "nyc-per1", testnet.AgentAddr.String()), locus.LogicalLink},
		{locus.Between(locus.RouterNeighbor, "nyc-per1", "chi-per1"), locus.Router},
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := testnet.Build(t.Fatalf)
		// Random change log: interleaved OSPF weight changes and BGP
		// announce/withdraw updates at increasing instants.
		at := testnet.T0
		for i := 0; i < 25; i++ {
			at = at.Add(time.Duration(1+rng.Intn(600)) * time.Second)
			if rng.Intn(3) < 2 {
				id := links[rng.Intn(len(links))]
				w := weightsFor[rng.Intn(len(weightsFor))]
				if err := n.OSPF.SetWeight(at, id, w); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			} else {
				egress := []string{"chi-per1", "wdc-per1"}[rng.Intn(2)]
				if rng.Intn(2) == 0 {
					err := n.BGP.Announce(at, bgp.Route{
						Prefix: testnet.ClientPrefix, Egress: egress,
						LocalPref: 100, ASPathLen: 2 + rng.Intn(3),
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				} else {
					if err := n.BGP.Withdraw(at, testnet.ClientPrefix, egress); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			}
		}
		horizon := int(at.Add(time.Hour).Sub(testnet.T0) / time.Second)
		sample := func() time.Time {
			return testnet.T0.Add(time.Duration(rng.Intn(horizon)) * time.Second)
		}
		type result struct {
			locs []string
			err  bool
		}
		expand := func(p int, when time.Time) result {
			locs, err := n.View.Expand(probes[p].loc, probes[p].level, when)
			return result{locs: keys(locs), err: err != nil}
		}
		// Reference expansion per (probe, epoch), built as sampled.
		ref := map[[3]int]result{}
		for trial := 0; trial < 200; trial++ {
			when := sample()
			ep := n.View.EpochAt(when)
			for p := range probes {
				got := expand(p, when)
				key := [3]int{p, ep.OSPF, ep.BGP}
				want, seen := ref[key]
				if !seen {
					ref[key] = got
					continue
				}
				if got.err != want.err || len(got.locs) != len(want.locs) {
					t.Fatalf("seed %d: probe %d epoch %v: expansion diverged within epoch: %v vs %v",
						seed, p, ep, got, want)
				}
				for i := range got.locs {
					if got.locs[i] != want.locs[i] {
						t.Fatalf("seed %d: probe %d epoch %v: expansion diverged within epoch: %v vs %v",
							seed, p, ep, got, want)
					}
				}
			}
		}
	}
}

// TestViewEpochComposition checks that the composed epoch moves exactly
// when either substrate's change log has an instant at or before t.
func TestViewEpochComposition(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	t0 := testnet.T0
	if ep := n.View.EpochAt(t0.Add(time.Hour)); ep.OSPF != 0 {
		t.Fatalf("OSPF epoch before any weight change = %d, want 0", ep.OSPF)
	}
	// testnet announces 3 routes at T0: one shared instant, one epoch step.
	if ep := n.View.EpochAt(t0); ep.BGP != 1 {
		t.Fatalf("BGP epoch at T0 = %d, want 1 (announcements at T0)", ep.BGP)
	}
	if ep := n.View.EpochAt(t0.Add(-time.Second)); ep.BGP != 0 {
		t.Fatalf("BGP epoch before T0 = %d, want 0", ep.BGP)
	}
	if err := n.OSPF.SetWeight(t0.Add(10*time.Minute), "nyc-chi-1", 40); err != nil {
		t.Fatal(err)
	}
	if err := n.BGP.Withdraw(t0.Add(20*time.Minute), testnet.ClientPrefix, "chi-per1"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want netstate.Epoch
	}{
		{5 * time.Minute, netstate.Epoch{OSPF: 0, BGP: 1}},
		{10 * time.Minute, netstate.Epoch{OSPF: 1, BGP: 1}},
		{15 * time.Minute, netstate.Epoch{OSPF: 1, BGP: 1}},
		{25 * time.Minute, netstate.Epoch{OSPF: 1, BGP: 2}},
	}
	for _, c := range cases {
		if got := n.View.EpochAt(t0.Add(c.at)); got != c.want {
			t.Errorf("EpochAt(T0+%v) = %+v, want %+v", c.at, got, c.want)
		}
	}
	og, bg := n.View.Generations()
	if og != 1 || bg != 4 {
		t.Errorf("Generations = %d, %d, want 1, 4", og, bg)
	}
}
