package netstate_test

import (
	"sort"
	"testing"
	"time"

	"grca/internal/locus"
	"grca/internal/ospf"
	"grca/internal/testnet"
)

func keys(locs []locus.Location) []string {
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = l.String()
	}
	sort.Strings(out)
	return out
}

func TestExpandIdentity(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	loc := locus.At(locus.Router, "nyc-cr1")
	got, err := n.View.Expand(loc, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0] != loc {
		t.Fatalf("identity expand = %v, %v", got, err)
	}
}

func TestExpandInterfaceChain(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// The customer-facing interface on chi-per1 toward custB.
	ifc := locus.Between(locus.Interface, "chi-per1", "to-custB")
	cases := []struct {
		level locus.Type
		want  []string
	}{
		{locus.Router, []string{"chi-per1"}},
		{locus.PoP, []string{"chi"}},
		{locus.LineCard, []string{"chi-per1:0"}},
		{locus.LogicalLink, []string{"custB-att"}},
		{locus.PhysicalLink, []string{"custB-att-c1"}},
		{locus.Layer1Device, []string{"sonet-chi-per1-a", "sonet-chi-per1-b"}},
	}
	for _, c := range cases {
		got, err := n.View.Expand(ifc, c.level, testnet.T0)
		if err != nil {
			t.Fatalf("expand to %v: %v", c.level, err)
		}
		if g := keys(got); len(g) != len(c.want) || !equal(g, c.want) {
			t.Errorf("expand to %v = %v, want %v", c.level, g, c.want)
		}
	}
	// Unknown interface errors.
	if _, err := n.View.Expand(locus.Between(locus.Interface, "chi-per1", "nope"), locus.Router, testnet.T0); err == nil {
		t.Error("unknown interface accepted")
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExpandRouterNeighborExternal(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// Find custB's address on the shared /30.
	ifc, ok := n.Topo.InterfaceByName("chi-per1", "to-custB")
	if !ok {
		t.Fatal("fixture missing customer interface")
	}
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())

	got, err := n.View.Expand(adj, locus.Interface, testnet.T0)
	if err != nil || len(got) != 1 || got[0].B != "to-custB" {
		t.Fatalf("neighbor→interface = %v, %v", got, err)
	}
	got, err = n.View.Expand(adj, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "chi-per1" {
		t.Fatalf("neighbor→router = %v, %v", got, err)
	}
	got, err = n.View.Expand(adj, locus.Layer1Device, testnet.T0)
	if err != nil || len(got) != 2 {
		t.Fatalf("neighbor→layer1 = %v, %v", got, err)
	}
	// A neighbor IP that matches no /30 resolves to nothing (not an error:
	// the session may terminate on an unmodeled attachment).
	got, err = n.View.Expand(locus.Between(locus.RouterNeighbor, "chi-per1", "203.0.113.99"), locus.Interface, testnet.T0)
	if err != nil || got != nil {
		t.Fatalf("unresolvable neighbor = %v, %v", got, err)
	}
	// A neighbor that is neither router nor address errors.
	if _, err := n.View.Expand(locus.Between(locus.RouterNeighbor, "chi-per1", "garbage"), locus.Interface, testnet.T0); err == nil {
		t.Error("garbage neighbor accepted")
	}
}

func TestExpandRouterNeighborInternalPIM(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// PE–PE adjacency nyc-per1 ↔ chi-per1 (custA's MVPN).
	adj := locus.Between(locus.RouterNeighbor, "nyc-per1", "chi-per1")
	got, err := n.View.Expand(adj, locus.Router, testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	g := keys(got)
	for _, want := range []string{"nyc-per1", "chi-per1"} {
		if !contains(g, want) {
			t.Errorf("PE pair expansion missing %s: %v", want, g)
		}
	}
	// The path routers between the PEs must be included too.
	foundCore := false
	for _, s := range g {
		if s == "nyc-cr1" || s == "nyc-cr2" || s == "chi-cr1" || s == "chi-cr2" {
			foundCore = true
		}
	}
	if !foundCore {
		t.Errorf("PE pair expansion lacks backbone routers: %v", g)
	}
	links, err := n.View.Expand(adj, locus.LogicalLink, testnet.T0)
	if err != nil || len(links) == 0 {
		t.Fatalf("PE pair link expansion = %v, %v", links, err)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestExpandIngressEgressECMP(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	span := locus.Between(locus.IngressEgress, "nyc-per1", "chi-per1")
	got, err := n.View.Expand(span, locus.Router, testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	g := keys(got)
	// Both planes are equal cost: per1 → cr1/cr2 → chi-cr1/cr2 → chi-per1.
	for _, want := range []string{"nyc-per1", "nyc-cr1", "nyc-cr2", "chi-cr1", "chi-cr2", "chi-per1"} {
		if !contains(g, want) {
			t.Errorf("ECMP expansion missing %s: %v", want, g)
		}
	}
	if contains(g, "wdc-cr1") {
		t.Errorf("ECMP expansion includes off-path router: %v", g)
	}
}

func TestTimeVaryingExpansion(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	t1 := testnet.T0.Add(time.Hour)
	// Cost out the plane-1 uplink of nyc-per1: all traffic shifts to cr2.
	if err := n.OSPF.SetWeight(t1, "nyc-up1", ospf.Infinity); err != nil {
		t.Fatal(err)
	}
	span := locus.Between(locus.IngressEgress, "nyc-per1", "chi-per1")
	before, err := n.View.Expand(span, locus.Router, t1.Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(keys(before), "nyc-cr1") {
		t.Error("cr1 missing before cost-out")
	}
	after, err := n.View.Expand(span, locus.Router, t1.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if contains(keys(after), "nyc-cr1") {
		t.Errorf("cr1 still on path after cost-out: %v", keys(after))
	}
}

func TestExpandServerClient(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	sc := locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1")

	// Server level: the server itself plus its CDN node.
	got, err := n.View.Expand(sc, locus.Server, testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	if g := keys(got); !contains(g, "cdn-nyc-s1") || !contains(g, "cdn-nyc") {
		t.Errorf("server-level expansion = %v", g)
	}

	// IngressEgress: hot potato sends agent traffic out at chi-per1.
	got, err = n.View.Expand(sc, locus.IngressEgress, testnet.T0)
	if err != nil || len(got) != 1 {
		t.Fatalf("ingress:egress expansion = %v, %v", got, err)
	}
	if got[0].A != "nyc-per1" || got[0].B != "chi-per1" {
		t.Errorf("ingress:egress = %v, want nyc-per1:chi-per1", got[0])
	}

	// IngressDestination normalizes to the matched /24.
	got, err = n.View.Expand(sc, locus.IngressDestination, testnet.T0)
	if err != nil || len(got) != 1 {
		t.Fatalf("ingress:destination expansion = %v, %v", got, err)
	}
	if got[0].B != testnet.ClientPrefix.String() {
		t.Errorf("destination = %q, want %q", got[0].B, testnet.ClientPrefix)
	}

	// Router level: the backbone path nyc-per1 → chi-per1.
	rts, err := n.View.Expand(sc, locus.Router, testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	if g := keys(rts); !contains(g, "nyc-per1") || !contains(g, "chi-per1") {
		t.Errorf("router path = %v", g)
	}

	// Unregistered server errors.
	if _, err := n.View.Expand(locus.Between(locus.ServerClient, "nope", "agent-1"), locus.Router, testnet.T0); err == nil {
		t.Error("unregistered server accepted")
	}
}

func TestEgressChangeAfterWithdraw(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	t1 := testnet.T0.Add(2 * time.Hour)
	if err := n.BGP.Withdraw(t1, testnet.ClientPrefix, "chi-per1"); err != nil {
		t.Fatal(err)
	}
	eg, err := n.View.EgressFor("nyc-per1", "agent-1", t1.Add(-time.Minute))
	if err != nil || eg != "chi-per1" {
		t.Fatalf("egress before withdraw = %q, %v", eg, err)
	}
	eg, err = n.View.EgressFor("nyc-per1", "agent-1", t1.Add(time.Minute))
	if err != nil || eg != "wdc-per1" {
		t.Fatalf("egress after withdraw = %q, %v", eg, err)
	}
	if _, err := n.View.EgressFor("nyc-per1", "unknown-agent", testnet.T0); err == nil {
		t.Error("unknown client accepted")
	}
}

func TestRelated(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	sc := locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1")
	// The nyc→chi shortest paths ride both planes directly, so the
	// ingress uplink interface is on path and the chi core-pair link is
	// not.
	upIfc := locus.Between(locus.Interface, "nyc-per1", "to-nyc-cr1")
	rel, err := n.View.Related(sc, upIfc, locus.Interface, testnet.T0)
	if err != nil || !rel {
		t.Errorf("uplink interface should relate to CDN span: %v, %v", rel, err)
	}
	offIfc := locus.Between(locus.Interface, "wdc-cr1", "to-wdc-cr2")
	rel, err = n.View.Related(sc, offIfc, locus.Interface, testnet.T0)
	if err != nil || rel {
		t.Errorf("off-path interface should not relate: %v, %v", rel, err)
	}
	intraPoP := locus.Between(locus.Interface, "chi-cr1", "to-chi-cr2")
	rel, err = n.View.Related(sc, intraPoP, locus.Interface, testnet.T0)
	if err != nil || rel {
		t.Errorf("intra-PoP core link should not relate: %v, %v", rel, err)
	}
	// Same-router join: CPU event on chi-per1 vs adjacency on chi-per1.
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	adj := locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String())
	rel, err = n.View.Related(adj, locus.At(locus.Router, "chi-per1"), locus.Router, testnet.T0)
	if err != nil || !rel {
		t.Errorf("router-level join failed: %v, %v", rel, err)
	}
	rel, err = n.View.Related(adj, locus.At(locus.Router, "nyc-per1"), locus.Router, testnet.T0)
	if err != nil || rel {
		t.Errorf("cross-router join should fail: %v, %v", rel, err)
	}
}

func TestExpandLineCard(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	card := locus.Between(locus.LineCard, "nyc-per1", "1")
	got, err := n.View.Expand(card, locus.Interface, testnet.T0)
	if err != nil {
		t.Fatal(err)
	}
	// Card 1 of nyc-per1 carries the two uplink ports.
	if len(got) != 2 {
		t.Errorf("card interfaces = %v", keys(got))
	}
	if _, err := n.View.Expand(locus.Between(locus.LineCard, "nyc-per1", "9"), locus.Interface, testnet.T0); err == nil {
		t.Error("unknown card accepted")
	}
	got, err = n.View.Expand(card, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "nyc-per1" {
		t.Errorf("card→router = %v, %v", got, err)
	}
}

func TestUnsupportedConversion(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	if _, err := n.View.Expand(locus.At(locus.Layer1Device, "mesh-nyc-cr1"), locus.Router, testnet.T0); err == nil {
		t.Error("layer1→router should be unsupported")
	}
	if _, err := n.View.Expand(locus.At(locus.Router, "nyc-cr1"), locus.ServerClient, testnet.T0); err == nil {
		t.Error("router→server:client should be unsupported")
	}
}
