package netstate_test

import (
	"fmt"
	"testing"

	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/platform"
	"grca/internal/simnet"
)

// TestShardMapCoShardsConvertibleLocations is the shard-routing property
// test: for every concrete location the builtin app bundles' topologies
// contain, every location reachable from it through the conversion
// lattice (View.Expand at every statically convertible level) must map
// to the same shard key — so the spatial joins behind one diagnosis
// always stay shard-local, for any shard count.
func TestShardMapCoShardsConvertibleLocations(t *testing.T) {
	bundles := map[string]simnet.Config{
		"bgpflap":  {Seed: 11, BGPFlapIncidents: 3},
		"cdn":      {Seed: 12, CDNIncidents: 3},
		"pim":      {Seed: 13, PIMIncidents: 3},
		"backbone": {Seed: 14, BackboneIncidents: 3},
	}
	for name, cfg := range bundles {
		t.Run(name, func(t *testing.T) {
			d, err := simnet.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := platform.FromDataset(d, platform.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m := netstate.BuildShardMap(sys.View)
			locs := enumerateLocations(sys)
			if len(locs) == 0 {
				t.Fatal("no locations enumerated")
			}
			when := d.Config.Start.Add(d.Config.Duration / 2)
			checked := 0
			for _, loc := range locs {
				key := m.Key(loc)
				for lt := locus.Type(1); lt < locus.Type(32); lt++ {
					if !lt.Valid() || !netstate.ConvertibleTo(loc.Type, lt) {
						continue
					}
					exp, err := sys.View.Expand(loc, lt, when)
					if err != nil {
						// Statically convertible but dynamically
						// infeasible for this particular location (no
						// route, no circuit) — not a routing concern.
						continue
					}
					for _, e := range exp {
						if got := m.Key(e); got != key {
							t.Fatalf("%s expands to %s at level %s, but shard keys differ: %q vs %q",
								loc.Key(), e.Key(), lt, key, got)
						}
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatal("no expansions checked")
			}
			// The partition must be stable for every shard count.
			for _, n := range []int{1, 2, 4, 7} {
				for _, loc := range locs {
					s := m.Shard(loc, n)
					if s < 0 || s >= n || (n == 1 && s != 0) {
						t.Fatalf("shard index %d out of range [0,%d) for %s", s, n, loc.Key())
					}
				}
			}
		})
	}
}

// TestShardMapUnknownLocationsSpread pins the fallback behavior the
// ingest benchmark relies on: anchors outside the topology key to
// themselves, so distinct unknown routers spread across shards instead
// of collapsing onto one.
func TestShardMapUnknownLocationsSpread(t *testing.T) {
	var m *netstate.ShardMap // nil map: nothing anchored
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		loc := locus.Between(locus.Interface, fmt.Sprintf("load-r%d", i), "ge-0/0/1")
		seen[m.Shard(loc, 4)] = true
		// Same-router locations still co-shard even without topology.
		other := locus.At(locus.Router, fmt.Sprintf("load-r%d", i))
		if m.Shard(other, 4) != m.Shard(loc, 4) {
			t.Fatalf("interface and its router diverge without a topology: %s", loc.Key())
		}
	}
	if len(seen) != 4 {
		t.Fatalf("64 distinct routers hit only shards %v, want all 4", seen)
	}
}

// enumerateLocations lists every concrete location type the topology and
// CDN registrations support.
func enumerateLocations(sys *platform.System) []locus.Location {
	var out []locus.Location
	topo := sys.Topo
	for _, r := range topo.Routers {
		out = append(out, locus.At(locus.Router, r.Name))
		out = append(out, locus.At(locus.PoP, r.PoP))
		for _, c := range r.Cards {
			out = append(out, locus.Between(locus.LineCard, r.Name, fmt.Sprint(c.Slot)))
			for _, p := range c.Ports {
				out = append(out, locus.Between(locus.Interface, r.Name, p.Name))
			}
		}
	}
	for _, l := range topo.Links {
		out = append(out, locus.At(locus.LogicalLink, l.ID))
	}
	for _, p := range topo.Phys {
		out = append(out, locus.At(locus.PhysicalLink, p.ID))
		for _, d := range p.L1 {
			out = append(out, locus.At(locus.Layer1Device, d.Name))
		}
	}
	return out
}
