// Package netstate reconstructs the "network condition" at a point in
// history (paper §II-B): it joins the static topology inventory with the
// time-varying OSPF and BGP simulations and exposes the conversion
// utilities that let the spatial model expand an event location into the
// set of network elements supporting the service at that time.
//
// The central operation is View.Expand, which converts a Location into the
// set of locations of a target type ("join level") at a given time. A
// symptom and a diagnostic event are spatially joined when their
// expansions at the rule's join level intersect.
package netstate

import (
	"fmt"
	"net/netip"
	"time"

	"grca/internal/bgp"
	"grca/internal/locus"
	"grca/internal/netmodel"
	"grca/internal/obs"
	"grca/internal/ospf"
)

// Conversion-utility metrics: Expand drives the spatial joins that
// dominate CDN diagnosis latency (§III-B.2), so its call volume and
// fan-out are the first read on a slow diagnosis.
var (
	mExpands      = obs.GetCounter("netstate.expands")
	mExpandErrors = obs.GetCounter("netstate.expand.errors")
	mExpandFanout = obs.GetHistogram("netstate.expand.locations", obs.SizeBuckets)
	mRelated      = obs.GetCounter("netstate.related")
	mEgressFor    = obs.GetCounter("netstate.egressfor")
)

// View is the queryable network condition. It is immutable after the
// registration calls complete and safe for concurrent readers.
type View struct {
	Topo *netmodel.Topology
	OSPF *ospf.Sim
	BGP  *bgp.Sim

	serverNode   map[string]string     // CDN server → CDN node (site)
	serverRouter map[string]string     // CDN server or node → attachment router
	clientAddr   map[string]netip.Addr // measurement agent / source → address
	clientIngr   map[string]string     // agent/source → ingress router, when known from config
}

// Epoch identifies an equivalence class of instants for spatial
// expansion: the topology is static, so Expand(loc, level, t) depends on t
// only through the OSPF weight state and the BGP RIB. Two instants with
// equal Epochs yield provably identical expansions for every location and
// level, which is what lets expansion results be cached process-wide and
// shared across diagnoses (see EpochAt and internal/engine's spatial
// cache).
type Epoch struct {
	OSPF int
	BGP  int
}

// EpochAt returns the composed routing epoch of time t.
func (v *View) EpochAt(t time.Time) Epoch {
	return Epoch{OSPF: v.OSPF.EpochAt(t), BGP: v.BGP.EpochAt(t)}
}

// Generations returns the change-log generation counters of the two
// routing substrates. Epoch-keyed caches over this view store both and
// rebuild when either moves — epoch numbering is only stable while the
// change logs are append-quiescent (the normal ingest-then-diagnose
// phasing).
func (v *View) Generations() (ospf, bgp int64) {
	return v.OSPF.Generation(), v.BGP.Generation()
}

// NewView assembles a view over the three routing/topology substrates.
func NewView(topo *netmodel.Topology, o *ospf.Sim, b *bgp.Sim) *View {
	return &View{
		Topo:         topo,
		OSPF:         o,
		BGP:          b,
		serverNode:   map[string]string{},
		serverRouter: map[string]string{},
		clientAddr:   map[string]netip.Addr{},
		clientIngr:   map[string]string{},
	}
}

// RegisterServer declares a CDN server hosted at node and attached to the
// network through router. The node itself is registered with the same
// attachment so node-level events expand consistently.
func (v *View) RegisterServer(server, node, router string) {
	v.serverNode[server] = node
	v.serverRouter[server] = router
	v.serverRouter[node] = router
}

// RegisterClient declares an external measurement agent or traffic source
// with its representative address; ingress names the ISP ingress router
// when it is known from configuration (e.g. a data-center attachment), and
// may be empty when only routing determines it.
func (v *View) RegisterClient(name string, addr netip.Addr, ingress string) {
	v.clientAddr[name] = addr
	if ingress != "" {
		v.clientIngr[name] = ingress
	}
}

// ServerRouter returns the attachment router of a CDN server or node.
func (v *View) ServerRouter(server string) (string, bool) {
	r, ok := v.serverRouter[server]
	return r, ok
}

// ClientAddr returns the registered address of an agent or source.
func (v *View) ClientAddr(name string) (netip.Addr, bool) {
	a, ok := v.clientAddr[name]
	return a, ok
}

// EgressFor emulates the BGP decision process from ingress toward the
// named client at time t and returns the egress router.
func (v *View) EgressFor(ingress, client string, t time.Time) (string, error) {
	mEgressFor.Inc()
	addr, ok := v.clientAddr[client]
	if !ok {
		if a, err := netip.ParseAddr(client); err == nil {
			addr = a
		} else {
			return "", fmt.Errorf("netstate: unknown client %q", client)
		}
	}
	r, err := v.BGP.BestEgress(ingress, addr, t)
	if err != nil {
		return "", err
	}
	return r.Egress, nil
}

// Expand converts loc into the set of locations of type level that support
// it at time t. Expansions that require routing (span locations, internal
// adjacencies) answer against the reconstructed network condition at t.
// Unsupported conversions return an error so misconfigured rules surface
// loudly instead of silently never joining.
func (v *View) Expand(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	locs, err := v.expand(loc, level, t)
	mExpands.Inc()
	if err != nil {
		mExpandErrors.Inc()
	} else {
		mExpandFanout.Observe(float64(len(locs)))
	}
	return locs, err
}

func (v *View) expand(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	if loc.Type == level && level != locus.IngressDestination {
		// Identity — except Ingress:Destination, whose destination element
		// must be normalized to the matched BGP prefix so that locations
		// produced by different systems compare equal.
		return []locus.Location{loc}, nil
	}
	switch loc.Type {
	case locus.Router:
		return v.expandRouter(loc.A, level)
	case locus.Interface:
		ifc, ok := v.Topo.InterfaceByName(loc.A, loc.B)
		if !ok {
			return nil, fmt.Errorf("netstate: unknown interface %s", loc)
		}
		return v.expandInterface(ifc, level)
	case locus.LineCard:
		return v.expandLineCard(loc, level)
	case locus.LogicalLink:
		l, ok := v.Topo.Links[loc.A]
		if !ok {
			return nil, fmt.Errorf("netstate: unknown link %s", loc)
		}
		return v.expandLink(l, level)
	case locus.PhysicalLink:
		p, ok := v.Topo.Phys[loc.A]
		if !ok {
			return nil, fmt.Errorf("netstate: unknown physical link %s", loc)
		}
		return v.expandPhysical(p, level)
	case locus.Layer1Device:
		return v.expandLayer1(loc.A, level)
	case locus.RouterNeighbor:
		return v.expandRouterNeighbor(loc, level, t)
	case locus.IngressEgress:
		return v.expandPath(loc.A, loc.B, level, t)
	case locus.IngressDestination:
		return v.expandIngressDestination(loc, level, t)
	case locus.ServerClient:
		return v.expandServerClient(loc, level, t)
	case locus.SourceDestination:
		return v.expandSourceDestination(loc, level, t)
	case locus.SourceIngress:
		return v.expandSourceIngress(loc, level, t)
	case locus.EgressDestination:
		return v.expandEgressDestination(loc, level)
	case locus.Server:
		return v.expandServer(loc.A, level)
	case locus.PoP:
		if level == locus.PoP {
			return []locus.Location{loc}, nil
		}
	}
	return nil, fmt.Errorf("netstate: no conversion from %v to %v", loc.Type, level)
}

// Related reports whether two locations are spatially related at join
// level `level` at time t: their expansions intersect.
func (v *View) Related(a, b locus.Location, level locus.Type, t time.Time) (bool, error) {
	mRelated.Inc()
	ea, err := v.Expand(a, level, t)
	if err != nil {
		return false, err
	}
	if len(ea) == 0 {
		return false, nil
	}
	eb, err := v.Expand(b, level, t)
	if err != nil {
		return false, err
	}
	set := make(map[locus.Location]bool, len(ea))
	for _, l := range ea {
		set[l] = true
	}
	for _, l := range eb {
		if set[l] {
			return true, nil
		}
	}
	return false, nil
}

func (v *View) expandRouter(name string, level locus.Type) ([]locus.Location, error) {
	r, ok := v.Topo.Routers[name]
	if !ok {
		return nil, fmt.Errorf("netstate: unknown router %q", name)
	}
	switch level {
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, name)}, nil
	case locus.PoP:
		return []locus.Location{locus.At(locus.PoP, r.PoP)}, nil
	case locus.LineCard:
		var out []locus.Location
		for _, c := range r.Cards {
			out = append(out, locus.Between(locus.LineCard, name, fmt.Sprint(c.Slot)))
		}
		return out, nil
	case locus.Interface:
		var out []locus.Location
		for _, c := range r.Cards {
			for _, p := range c.Ports {
				out = append(out, locus.Between(locus.Interface, name, p.Name))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from router to %v", level)
}

func (v *View) expandInterface(ifc *netmodel.Interface, level locus.Type) ([]locus.Location, error) {
	switch level {
	case locus.Interface:
		return []locus.Location{locus.Between(locus.Interface, ifc.Router.Name, ifc.Name)}, nil
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, ifc.Router.Name)}, nil
	case locus.PoP:
		return []locus.Location{locus.At(locus.PoP, ifc.Router.PoP)}, nil
	case locus.LineCard:
		return []locus.Location{locus.Between(locus.LineCard, ifc.Router.Name, fmt.Sprint(ifc.Card.Slot))}, nil
	case locus.LogicalLink:
		if ifc.Link == nil {
			return nil, nil
		}
		return []locus.Location{locus.At(locus.LogicalLink, ifc.Link.ID)}, nil
	case locus.PhysicalLink:
		if ifc.Link == nil {
			return nil, nil
		}
		var out []locus.Location
		for _, p := range ifc.Link.Phys {
			out = append(out, locus.At(locus.PhysicalLink, p.ID))
		}
		return out, nil
	case locus.Layer1Device:
		if ifc.Link == nil {
			return nil, nil
		}
		var out []locus.Location
		for _, d := range v.Topo.Layer1For(ifc.Link) {
			out = append(out, locus.At(locus.Layer1Device, d.Name))
		}
		return out, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from interface to %v", level)
}

func (v *View) expandLineCard(loc locus.Location, level locus.Type) ([]locus.Location, error) {
	r, ok := v.Topo.Routers[loc.A]
	if !ok {
		return nil, fmt.Errorf("netstate: unknown router %q", loc.A)
	}
	var card *netmodel.LineCard
	for _, c := range r.Cards {
		if fmt.Sprint(c.Slot) == loc.B {
			card = c
			break
		}
	}
	if card == nil {
		return nil, fmt.Errorf("netstate: unknown line card %s", loc)
	}
	switch level {
	case locus.LineCard:
		return []locus.Location{loc}, nil
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, loc.A)}, nil
	case locus.Interface:
		var out []locus.Location
		for _, p := range card.Ports {
			out = append(out, locus.Between(locus.Interface, loc.A, p.Name))
		}
		return out, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from line card to %v", level)
}

func (v *View) expandLink(l *netmodel.LogicalLink, level locus.Type) ([]locus.Location, error) {
	switch level {
	case locus.LogicalLink:
		return []locus.Location{locus.At(locus.LogicalLink, l.ID)}, nil
	case locus.Interface:
		return []locus.Location{
			locus.Between(locus.Interface, l.A.Router.Name, l.A.Name),
			locus.Between(locus.Interface, l.B.Router.Name, l.B.Name),
		}, nil
	case locus.Router:
		return []locus.Location{
			locus.At(locus.Router, l.A.Router.Name),
			locus.At(locus.Router, l.B.Router.Name),
		}, nil
	case locus.PhysicalLink:
		var out []locus.Location
		for _, p := range l.Phys {
			out = append(out, locus.At(locus.PhysicalLink, p.ID))
		}
		return out, nil
	case locus.Layer1Device:
		var out []locus.Location
		for _, d := range v.Topo.Layer1For(l) {
			out = append(out, locus.At(locus.Layer1Device, d.Name))
		}
		return out, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from logical link to %v", level)
}

func (v *View) expandPhysical(p *netmodel.PhysicalLink, level locus.Type) ([]locus.Location, error) {
	switch level {
	case locus.PhysicalLink:
		return []locus.Location{locus.At(locus.PhysicalLink, p.ID)}, nil
	case locus.Layer1Device:
		var out []locus.Location
		for _, d := range p.L1 {
			out = append(out, locus.At(locus.Layer1Device, d.Name))
		}
		return out, nil
	case locus.LogicalLink:
		if p.Logical == nil {
			return nil, nil
		}
		return []locus.Location{locus.At(locus.LogicalLink, p.Logical.ID)}, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from physical link to %v", level)
}

func (v *View) expandLayer1(name string, level locus.Type) ([]locus.Location, error) {
	if level == locus.Layer1Device {
		return []locus.Location{locus.At(locus.Layer1Device, name)}, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from layer-1 device to %v", level)
}

// expandRouterNeighbor handles adjacency locations. When the neighbor is
// identified by an address outside the ISP (an eBGP or PE–CE adjacency),
// the location is anchored at the attachment interface found by the /30
// match of §II-B item 2. When the neighbor names another ISP router (a
// PE–PE PIM adjacency over the backbone), the adjacency depends on both
// endpoints and the routed path between them.
func (v *View) expandRouterNeighbor(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	if _, internal := v.Topo.Routers[loc.B]; internal {
		switch level {
		case locus.RouterNeighbor:
			return []locus.Location{loc}, nil
		case locus.Router:
			out, err := v.expandPath(loc.A, loc.B, level, t)
			if err != nil {
				// Endpoints still matter even if currently unroutable.
				return []locus.Location{locus.At(locus.Router, loc.A), locus.At(locus.Router, loc.B)}, nil
			}
			return out, nil
		default:
			return v.expandPath(loc.A, loc.B, level, t)
		}
	}
	addr, err := netip.ParseAddr(loc.B)
	if err != nil {
		return nil, fmt.Errorf("netstate: neighbor %q is neither a known router nor an address", loc.B)
	}
	switch level {
	case locus.RouterNeighbor:
		return []locus.Location{loc}, nil
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, loc.A)}, nil
	case locus.PoP:
		return v.expandRouter(loc.A, level)
	}
	ifc, ok := v.Topo.InterfaceForNeighborIP(loc.A, addr)
	if !ok {
		return nil, nil // adjacency not resolvable to an attachment: joins nothing
	}
	return v.expandInterface(ifc, level)
}

// expandPath expands a router-pair span to the elements on all shortest
// paths between them at time t (§II-B item 3, including ECMP).
func (v *View) expandPath(a, b string, level locus.Type, t time.Time) ([]locus.Location, error) {
	pe, err := v.OSPF.Elements(a, b, t)
	if err != nil {
		return nil, err
	}
	switch level {
	case locus.Router:
		var out []locus.Location
		for r := range pe.Routers {
			out = append(out, locus.At(locus.Router, r))
		}
		return out, nil
	case locus.LogicalLink:
		var out []locus.Location
		for id := range pe.Links {
			out = append(out, locus.At(locus.LogicalLink, id))
		}
		return out, nil
	case locus.Interface:
		var out []locus.Location
		for id := range pe.Links {
			l := v.Topo.Links[id]
			out = append(out,
				locus.Between(locus.Interface, l.A.Router.Name, l.A.Name),
				locus.Between(locus.Interface, l.B.Router.Name, l.B.Name))
		}
		return out, nil
	case locus.Layer1Device:
		var out []locus.Location
		seen := map[string]bool{}
		for id := range pe.Links {
			for _, d := range v.Topo.Layer1For(v.Topo.Links[id]) {
				if !seen[d.Name] {
					seen[d.Name] = true
					out = append(out, locus.At(locus.Layer1Device, d.Name))
				}
			}
		}
		return out, nil
	case locus.PoP:
		var out []locus.Location
		seen := map[string]bool{}
		for r := range pe.Routers {
			pop := v.Topo.Routers[r].PoP
			if !seen[pop] {
				seen[pop] = true
				out = append(out, locus.At(locus.PoP, pop))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from router path to %v", level)
}

// expandIngressDestination maps "Ingress:Destination" through the BGP
// table at time t: the destination's egress router is resolved by
// longest-prefix match plus decision-process emulation (§II-B item 1), and
// the span becomes Ingress:Egress for routed levels.
func (v *View) expandIngressDestination(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	if level == locus.IngressDestination {
		return []locus.Location{v.normalizeIngressDestination(loc, t)}, nil
	}
	addr, err := v.resolveAddr(loc.B)
	if err != nil {
		return nil, err
	}
	r, err := v.BGP.BestEgress(loc.A, addr, t)
	if err != nil {
		return nil, nil // no route: nothing inside the network supports it
	}
	if level == locus.IngressEgress {
		return []locus.Location{locus.Between(locus.IngressEgress, loc.A, r.Egress)}, nil
	}
	return v.expandPath(loc.A, r.Egress, level, t)
}

// normalizeIngressDestination rewrites the destination element to the
// matched BGP prefix so that locations produced by different systems (an
// address from a measurement, a prefix from the BGP monitor) compare equal.
func (v *View) normalizeIngressDestination(loc locus.Location, t time.Time) locus.Location {
	if addr, err := v.resolveAddr(loc.B); err == nil {
		if pfx, ok := v.BGP.Lookup(addr, t); ok {
			return locus.Between(locus.IngressDestination, loc.A, pfx.String())
		}
	}
	return loc
}

// resolveAddr turns a destination element (registered client name, address
// literal, or prefix literal) into a representative address.
func (v *View) resolveAddr(s string) (netip.Addr, error) {
	if a, ok := v.clientAddr[s]; ok {
		return a, nil
	}
	if a, err := netip.ParseAddr(s); err == nil {
		return a, nil
	}
	if p, err := netip.ParsePrefix(s); err == nil {
		return p.Addr(), nil
	}
	return netip.Addr{}, fmt.Errorf("netstate: cannot resolve destination %q", s)
}

// expandSourceDestination implements the §II-B item 1 chain for endpoints
// both outside the ISP: the source maps to its ingress router (from
// configuration — e.g. a data-center attachment — as the paper does when
// NetFlow is unavailable), and the remainder proceeds as
// Ingress:Destination through the BGP and OSPF reconstructions.
func (v *View) expandSourceDestination(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	if level == locus.SourceDestination {
		return []locus.Location{loc}, nil
	}
	ingress, ok := v.clientIngr[loc.A]
	if !ok {
		return nil, fmt.Errorf("netstate: source %q has no configured ingress", loc.A)
	}
	switch level {
	case locus.SourceIngress:
		return []locus.Location{locus.Between(locus.SourceIngress, loc.A, ingress)}, nil
	case locus.EgressDestination:
		addr, err := v.resolveAddr(loc.B)
		if err != nil {
			return nil, err
		}
		r, err := v.BGP.BestEgress(ingress, addr, t)
		if err != nil {
			return nil, nil
		}
		return []locus.Location{locus.Between(locus.EgressDestination, r.Egress, loc.B)}, nil
	}
	return v.expandIngressDestination(
		locus.Between(locus.IngressDestination, ingress, loc.B), level, t)
}

// expandSourceIngress anchors at the ingress router (and, when the source
// is a registered client with a resolvable attachment, at its interface).
func (v *View) expandSourceIngress(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	switch level {
	case locus.SourceIngress:
		return []locus.Location{loc}, nil
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, loc.B)}, nil
	case locus.PoP:
		return v.expandRouter(loc.B, level)
	case locus.Interface:
		addr, ok := v.clientAddr[loc.A]
		if !ok {
			return nil, nil
		}
		ifc, found := v.Topo.InterfaceForNeighborIP(loc.B, addr)
		if !found {
			return nil, nil
		}
		return v.expandInterface(ifc, level)
	}
	return nil, fmt.Errorf("netstate: no conversion from source:ingress to %v", level)
}

// expandEgressDestination anchors at the egress router; the destination
// side lies outside the ISP.
func (v *View) expandEgressDestination(loc locus.Location, level locus.Type) ([]locus.Location, error) {
	switch level {
	case locus.EgressDestination:
		return []locus.Location{loc}, nil
	case locus.Router:
		return []locus.Location{locus.At(locus.Router, loc.A)}, nil
	case locus.PoP:
		return v.expandRouter(loc.A, level)
	}
	return nil, fmt.Errorf("netstate: no conversion from egress:destination to %v", level)
}

func (v *View) expandServer(name string, level locus.Type) ([]locus.Location, error) {
	switch level {
	case locus.Server:
		return []locus.Location{locus.At(locus.Server, name)}, nil
	case locus.Router:
		r, ok := v.serverRouter[name]
		if !ok {
			return nil, fmt.Errorf("netstate: unregistered server %q", name)
		}
		return []locus.Location{locus.At(locus.Router, r)}, nil
	}
	return nil, fmt.Errorf("netstate: no conversion from server to %v", level)
}

// expandServerClient maps a CDN measurement span (server, client agent)
// onto the network at time t: the server side resolves to its attachment
// router (the ingress for downstream traffic), the client side to its
// address; routing then determines the egress and the backbone path.
func (v *View) expandServerClient(loc locus.Location, level locus.Type, t time.Time) ([]locus.Location, error) {
	switch level {
	case locus.ServerClient:
		return []locus.Location{loc}, nil
	case locus.Server:
		out := []locus.Location{locus.At(locus.Server, loc.A)}
		if node, ok := v.serverNode[loc.A]; ok {
			out = append(out, locus.At(locus.Server, node))
		}
		return out, nil
	}
	ingress, ok := v.serverRouter[loc.A]
	if !ok {
		return nil, fmt.Errorf("netstate: unregistered server %q", loc.A)
	}
	if level == locus.IngressDestination {
		return []locus.Location{v.normalizeIngressDestination(
			locus.Between(locus.IngressDestination, ingress, loc.B), t)}, nil
	}
	addr, err := v.resolveAddr(loc.B)
	if err != nil {
		return nil, err
	}
	r, err := v.BGP.BestEgress(ingress, addr, t)
	if err != nil {
		return nil, nil // destination outside any known route
	}
	if level == locus.IngressEgress {
		return []locus.Location{locus.Between(locus.IngressEgress, ingress, r.Egress)}, nil
	}
	return v.expandPath(ingress, r.Egress, level, t)
}
