package netstate_test

import (
	"strings"
	"testing"

	"grca/internal/locus"
	"grca/internal/netstate"
	"grca/internal/testnet"
)

func TestConvertibleToBasics(t *testing.T) {
	cases := []struct {
		from, to locus.Type
		want     bool
	}{
		{locus.Router, locus.Interface, true},
		{locus.Router, locus.PoP, true},
		{locus.Interface, locus.Layer1Device, true},
		{locus.Layer1Device, locus.Interface, false}, // layer-1 only expands to itself
		{locus.PoP, locus.Router, false},
		{locus.RouterNeighbor, locus.Interface, true},
		{locus.IngressEgress, locus.Interface, true},
		{locus.IngressEgress, locus.LineCard, false},
		{locus.ServerClient, locus.Server, true},
		{locus.ServerClient, locus.SourceIngress, false},
		{locus.EgressDestination, locus.Interface, false},
		{locus.None, locus.Router, false},
		{locus.Router, locus.None, false},
	}
	for _, c := range cases {
		if got := netstate.ConvertibleTo(c.from, c.to); got != c.want {
			t.Errorf("ConvertibleTo(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	for typ := locus.Type(1); typ.Valid(); typ++ {
		if !netstate.ConvertibleTo(typ, typ) {
			t.Errorf("ConvertibleTo(%v, %v) = false, want identity", typ, typ)
		}
	}
}

// TestConvertibleToMatchesExpand cross-checks the static lattice against
// the dynamic implementation: over representative well-formed locations of
// every type in the test network, Expand must never succeed where the
// lattice says "infeasible", and must never report "no conversion" where
// the lattice says "feasible". (Other dynamic errors — unknown elements,
// unroutable spans — are state-dependent and carry no lattice information.)
func TestConvertibleToMatchesExpand(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	n.View.RegisterClient("src-1", testnet.AgentAddr, "chi-per1")

	ifc, ok := n.Topo.InterfaceByName("chi-per1", "to-custB")
	if !ok {
		t.Fatal("fixture interface missing")
	}
	reps := map[locus.Type]locus.Location{
		locus.Router:             locus.At(locus.Router, "chi-per1"),
		locus.PoP:                locus.At(locus.PoP, "chi"),
		locus.LogicalLink:        locus.At(locus.LogicalLink, "nyc-chi-1"),
		locus.PhysicalLink:       locus.At(locus.PhysicalLink, "nyc-chi-1-c1"),
		locus.Layer1Device:       locus.At(locus.Layer1Device, "mesh-nyc"),
		locus.Server:             locus.At(locus.Server, "cdn-nyc-s1"),
		locus.Interface:          locus.Between(locus.Interface, "chi-per1", "to-custB"),
		locus.LineCard:           locus.Between(locus.LineCard, "chi-per1", "0"),
		locus.RouterNeighbor:     locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String()),
		locus.IngressEgress:      locus.Between(locus.IngressEgress, "nyc-per1", "chi-per1"),
		locus.IngressDestination: locus.Between(locus.IngressDestination, "nyc-per1", testnet.AgentAddr.String()),
		locus.SourceDestination:  locus.Between(locus.SourceDestination, "src-1", testnet.AgentAddr.String()),
		locus.SourceIngress:      locus.Between(locus.SourceIngress, "src-1", "chi-per1"),
		locus.EgressDestination:  locus.Between(locus.EgressDestination, "chi-per1", testnet.AgentAddr.String()),
		locus.ServerClient:       locus.Between(locus.ServerClient, "cdn-nyc-s1", "agent-1"),
	}

	for from := locus.Type(1); from.Valid(); from++ {
		loc, ok := reps[from]
		if !ok {
			t.Errorf("no representative location for %v", from)
			continue
		}
		for to := locus.Type(1); to.Valid(); to++ {
			_, err := n.View.Expand(loc, to, testnet.T0)
			feasible := netstate.ConvertibleTo(from, to)
			switch {
			case err == nil && !feasible:
				t.Errorf("Expand(%v → %v) succeeded but lattice says infeasible", from, to)
			case err != nil && strings.Contains(err.Error(), "no conversion") && feasible:
				t.Errorf("Expand(%v → %v) says %q but lattice says feasible", from, to, err)
			}
		}
	}
}
