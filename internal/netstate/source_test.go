package netstate_test

import (
	"testing"

	"grca/internal/locus"
	"grca/internal/testnet"
)

// TestExpandSourceDestination covers the full §II-B item 1 chain for a
// source attached through a configured ingress (the paper's data-center
// case): Source:Destination → Source:Ingress, Ingress:Destination,
// Ingress:Egress, Egress:Destination, and the routed element levels.
func TestExpandSourceDestination(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// Register a source whose configured ingress is nyc-per1. The fixture
	// registers agent-1 without a configured ingress, so register another.
	n.View.RegisterClient("dc-app", testnet.AgentAddr, "nyc-per1")
	sd := locus.Between(locus.SourceDestination, "dc-app", testnet.AgentAddr.String())

	got, err := n.View.Expand(sd, locus.SourceDestination, testnet.T0)
	if err != nil || len(got) != 1 || got[0] != sd {
		t.Fatalf("identity = %v, %v", got, err)
	}
	got, err = n.View.Expand(sd, locus.SourceIngress, testnet.T0)
	if err != nil || len(got) != 1 || got[0].B != "nyc-per1" {
		t.Fatalf("source:ingress = %v, %v", got, err)
	}
	got, err = n.View.Expand(sd, locus.EgressDestination, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "chi-per1" {
		t.Fatalf("egress:destination = %v, %v", got, err)
	}
	got, err = n.View.Expand(sd, locus.IngressEgress, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "nyc-per1" || got[0].B != "chi-per1" {
		t.Fatalf("ingress:egress = %v, %v", got, err)
	}
	rts, err := n.View.Expand(sd, locus.Router, testnet.T0)
	if err != nil || len(rts) < 3 {
		t.Fatalf("routers = %v, %v", rts, err)
	}
	// The normalized ingress:destination carries the matched prefix.
	idl, err := n.View.Expand(sd, locus.IngressDestination, testnet.T0)
	if err != nil || len(idl) != 1 || idl[0].B != testnet.ClientPrefix.String() {
		t.Fatalf("ingress:destination = %v, %v", idl, err)
	}
	// A source without a configured ingress cannot expand.
	bad := locus.Between(locus.SourceDestination, "agent-1", testnet.AgentAddr.String())
	if _, err := n.View.Expand(bad, locus.Router, testnet.T0); err == nil {
		t.Error("ingress-less source accepted")
	}
}

func TestExpandSourceIngressAndEgressDestination(t *testing.T) {
	n := testnet.Build(t.Fatalf)
	// Attach a source at chi-per1's customer port so the interface
	// resolves through the /30 match.
	ifc, _ := n.Topo.InterfaceByName("chi-per1", "to-custB")
	n.View.RegisterClient("site-b", ifc.PeerIP, "chi-per1")

	si := locus.Between(locus.SourceIngress, "site-b", "chi-per1")
	got, err := n.View.Expand(si, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "chi-per1" {
		t.Fatalf("source:ingress→router = %v, %v", got, err)
	}
	got, err = n.View.Expand(si, locus.Interface, testnet.T0)
	if err != nil || len(got) != 1 || got[0].B != "to-custB" {
		t.Fatalf("source:ingress→interface = %v, %v", got, err)
	}
	got, err = n.View.Expand(si, locus.PoP, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "chi" {
		t.Fatalf("source:ingress→pop = %v, %v", got, err)
	}
	// Unregistered source: no interface anchor, no error.
	anon := locus.Between(locus.SourceIngress, "nobody", "chi-per1")
	if got, err := n.View.Expand(anon, locus.Interface, testnet.T0); err != nil || got != nil {
		t.Errorf("anonymous source = %v, %v", got, err)
	}
	if _, err := n.View.Expand(si, locus.LogicalLink, testnet.T0); err == nil {
		t.Error("source:ingress→link should be unsupported")
	}

	ed := locus.Between(locus.EgressDestination, "wdc-per1", "198.51.100.9")
	got, err = n.View.Expand(ed, locus.Router, testnet.T0)
	if err != nil || len(got) != 1 || got[0].A != "wdc-per1" {
		t.Fatalf("egress:destination→router = %v, %v", got, err)
	}
	if _, err := n.View.Expand(ed, locus.Interface, testnet.T0); err == nil {
		t.Error("egress:destination→interface should be unsupported")
	}
}
