package event

import (
	"strings"
	"testing"
	"time"

	"grca/internal/locus"
)

var t0 = time.Date(2010, 1, 1, 12, 30, 0, 0, time.UTC)

func TestKnowledgeLibraryEvents(t *testing.T) {
	l := Knowledge()
	// Table I has 24 rows.
	if got := l.Len(); got != 24 {
		t.Errorf("knowledge library size = %d, want 24 (Table I)", got)
	}
	cases := []struct {
		name string
		lt   locus.Type
		src  string
	}{
		{RouterReboot, locus.Router, SourceSyslog},
		{CPUHighAverage, locus.Router, SourceSNMP},
		{CPUHighSpike, locus.Router, SourceSyslog},
		{InterfaceFlap, locus.Interface, SourceSyslog},
		{SONETRestoration, locus.Layer1Device, SourceLayer1Log},
		{LinkCongestion, locus.Interface, SourceSNMP},
		{OSPFReconvergence, locus.Interface, SourceOSPFMonitor},
		{RouterCostInOut, locus.Router, SourceOSPFMonitor},
		{CommandCostOut, locus.Interface, SourceTACACS},
		{BGPEgressChange, locus.IngressDestination, SourceBGPMonitor},
		{ThroughputDrop, locus.IngressEgress, SourcePerfMonitor},
	}
	for _, c := range cases {
		d, ok := l.Get(c.name)
		if !ok {
			t.Errorf("missing event %q", c.name)
			continue
		}
		if d.LocType != c.lt {
			t.Errorf("%q location type = %v, want %v", c.name, d.LocType, c.lt)
		}
		if d.Source != c.src {
			t.Errorf("%q source = %q, want %q", c.name, d.Source, c.src)
		}
	}
}

func TestDefineAndRedefine(t *testing.T) {
	l := Knowledge()
	if err := l.Define(Definition{Name: LinkCongestion, LocType: locus.Interface}); err == nil {
		t.Error("Define allowed duplicate")
	}
	// The paper's example: the web-hosting analysis redefines the
	// congestion alarm threshold to 90%.
	if err := l.Redefine(Definition{
		Name: LinkCongestion, Description: ">= 90% link utilization in the SNMP traffic counter",
		LocType: locus.Interface, Source: SourceSNMP,
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := l.Get(LinkCongestion)
	if !strings.Contains(d.Description, "90%") {
		t.Errorf("redefinition not applied: %q", d.Description)
	}
	// Redefinition must not leak into a fresh library.
	d2, _ := Knowledge().Get(LinkCongestion)
	if strings.Contains(d2.Description, "90%") {
		t.Error("Knowledge() shares state across calls")
	}
}

func TestDefinitionValidate(t *testing.T) {
	if err := (Definition{LocType: locus.Router}).Validate(); err == nil {
		t.Error("nameless definition validated")
	}
	if err := (Definition{Name: "x"}).Validate(); err == nil {
		t.Error("typeless definition validated")
	}
	if err := (Definition{Name: "x", LocType: locus.Router}).Validate(); err != nil {
		t.Errorf("valid definition rejected: %v", err)
	}
	l := NewLibrary()
	if err := l.Define(Definition{}); err == nil {
		t.Error("library accepted invalid definition")
	}
	if err := l.Redefine(Definition{}); err == nil {
		t.Error("library accepted invalid redefinition")
	}
}

func TestInstanceValidate(t *testing.T) {
	def := Definition{Name: LinkCongestion, LocType: locus.Interface, Source: SourceSNMP}
	ok := Instance{
		Name:  LinkCongestion,
		Start: t0, End: t0.Add(5 * time.Minute),
		Loc: locus.Between(locus.Interface, "newyork-router1", "serial-interface0"),
	}
	if err := ok.Validate(def); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := ok
	bad.End = t0.Add(-time.Second)
	if err := bad.Validate(def); err == nil {
		t.Error("backwards interval validated")
	}
	bad = ok
	bad.Loc = locus.At(locus.Router, "r1")
	if err := bad.Validate(def); err == nil {
		t.Error("wrong location type validated")
	}
	bad = ok
	bad.Name = "other"
	if err := bad.Validate(def); err == nil {
		t.Error("mismatched name validated")
	}
}

func TestInstanceHelpers(t *testing.T) {
	in := Instance{Name: "e", Start: t0, End: t0.Add(time.Minute)}
	if in.Duration() != time.Minute {
		t.Error("Duration wrong")
	}
	if in.Attr("missing") != "" {
		t.Error("Attr on nil map should be empty")
	}
	in2 := in.WithAttr("rootcause", "fiber cut")
	if in2.Attr("rootcause") != "fiber cut" {
		t.Error("WithAttr did not set")
	}
	if in.Attrs != nil {
		t.Error("WithAttr mutated the receiver")
	}
	in3 := in2.WithAttr("k2", "v2")
	if in3.Attr("rootcause") != "fiber cut" || in2.Attr("k2") != "" {
		t.Error("WithAttr copy semantics broken")
	}
	s := in.String()
	if !strings.Contains(s, "e") || !strings.Contains(s, "2010-01-01") {
		t.Errorf("String = %q", s)
	}
}

func TestLibraryCloneIsolation(t *testing.T) {
	base := Knowledge()
	app := base.Clone()
	if err := app.Define(Definition{Name: EBGPFlap, LocType: locus.RouterNeighbor, Source: SourceSyslog}); err != nil {
		t.Fatal(err)
	}
	if _, leaked := base.Get(EBGPFlap); leaked {
		t.Error("Clone shares the definition map")
	}
	if app.Len() != base.Len()+1 {
		t.Errorf("clone size = %d, want %d", app.Len(), base.Len()+1)
	}
	names := app.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

// TestPaperExampleInstance reproduces the paper's worked example instance:
// (link-congestion, 2010-01-01 12:30:00, 2010-01-01 12:35:00,
// newyork-router1:serial-interface0).
func TestPaperExampleInstance(t *testing.T) {
	def, ok := Knowledge().Get(LinkCongestion)
	if !ok {
		t.Fatal("link congestion missing from knowledge library")
	}
	in := Instance{
		Name:  LinkCongestion,
		Start: time.Date(2010, 1, 1, 12, 30, 0, 0, time.UTC),
		End:   time.Date(2010, 1, 1, 12, 35, 0, 0, time.UTC),
		Loc:   locus.Between(locus.Interface, "newyork-router1", "serial-interface0"),
	}
	if err := in.Validate(def); err != nil {
		t.Fatal(err)
	}
	if got := in.Loc.String(); got != "newyork-router1:serial-interface0" {
		t.Errorf("location rendering = %q", got)
	}
}
