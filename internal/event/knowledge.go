package event

import "grca/internal/locus"

// Canonical event names. The common entries reproduce Table I of the paper;
// application-specific names reproduce Tables III, V, and VII.
const (
	// Common events (Table I).
	RouterReboot      = "Router reboot"
	CPUHighAverage    = "CPU high (average)"
	CPUHighSpike      = "CPU high (spike)"
	InterfaceDown     = "Interface down"
	InterfaceUp       = "Interface up"
	InterfaceFlap     = "Interface flap"
	LineProtoDown     = "Line protocol down"
	LineProtoUp       = "Line protocol up"
	LineProtoFlap     = "Line protocol flap"
	OpticalRegular    = "Regular optical mesh network restoration"
	OpticalFast       = "Fast optical mesh network restoration"
	SONETRestoration  = "SONET restoration"
	LinkCongestion    = "Link congestion alarm"
	LinkLoss          = "Link loss alarm"
	OSPFReconvergence = "OSPF re-convergence event"
	RouterCostInOut   = "Router Cost In/Out"
	LinkCostOutDown   = "Link Cost Out/Down"
	LinkCostInUp      = "Link Cost In/Up"
	CommandCostIn     = "Command to Cost In Links"
	CommandCostOut    = "Command to Cost Out Links"
	BGPEgressChange   = "BGP egress change"
	DelayIncrease     = "In-network delay increase"
	LossIncrease      = "In-network loss increase"
	ThroughputDrop    = "In-network throughput drop"

	// BGP flap application (Table III).
	EBGPFlap             = "eBGP flap"
	CustomerResetSession = "Customer reset session"
	EBGPHoldTimerExpired = "eBGP HTE"

	// CDN application (Table V and Fig. 5).
	CDNRTTIncrease    = "CDN round trip time increase"
	CDNThroughputDrop = "CDN end-to-end throughput drop"
	CDNServerIssue    = "CDN server issue"
	CDNPolicyChange   = "CDN assignment policy change"

	// PIM / MVPN application (Table VII).
	PIMAdjacencyChange       = "PIM Neighbor Adjacency Change"
	PIMConfigChange          = "PIM Configuration change"
	PIMUplinkAdjacencyChange = "Uplink PIM adjacency change"

	// Auxiliary signatures used by the domain-knowledge studies of §IV:
	// provisioning activity from workflow logs (the hidden vendor bug of
	// Fig. 7) and generic BGP notifications.
	ProvisioningActivity = "Provisioning activity"
	BGPNotification      = "BGP notification"
)

// Data source names as used throughout the collector.
const (
	SourceSyslog       = "syslog"
	SourceSNMP         = "SNMP"
	SourceLayer1Log    = "layer-1 device log"
	SourceOSPFMonitor  = "OSPF monitor"
	SourceBGPMonitor   = "BGP monitor"
	SourceTACACS       = "TACACS"
	SourcePerfMonitor  = "performance monitor"
	SourceKeynote      = "Keynote"
	SourceServerLogs   = "server logs"
	SourceCommandLogs  = "router command logs"
	SourceWorkflowLogs = "workflow logs"
)

// Knowledge returns a fresh copy of the RCA Knowledge Library's common
// event definitions (Table I of the paper). Callers may extend or redefine
// entries without affecting other callers.
func Knowledge() *Library {
	l := NewLibrary()
	add := func(name, desc string, lt locus.Type, src string) {
		// Definitions here are static and validated by tests; Define only
		// fails on programmer error, which must not be silently dropped.
		if err := l.Define(Definition{Name: name, Description: desc, LocType: lt, Source: src}); err != nil {
			panic(err)
		}
	}
	add(RouterReboot, "router was rebooted", locus.Router, SourceSyslog)
	add(CPUHighAverage, ">= 80% average utilization in 5-minute intervals", locus.Router, SourceSNMP)
	add(CPUHighSpike, ">= 90% average utilization over the past 5 seconds", locus.Router, SourceSyslog)
	add(InterfaceDown, "LINK-3-UPDOWN msg", locus.Interface, SourceSyslog)
	add(InterfaceUp, "LINK-3-UPDOWN msg", locus.Interface, SourceSyslog)
	add(InterfaceFlap, "LINK-3-UPDOWN msg", locus.Interface, SourceSyslog)
	add(LineProtoDown, "LINEPROTO-5-UPDOWN msg", locus.Interface, SourceSyslog)
	add(LineProtoUp, "LINEPROTO-5-UPDOWN msg", locus.Interface, SourceSyslog)
	add(LineProtoFlap, "LINEPROTO-5-UPDOWN msg", locus.Interface, SourceSyslog)
	add(OpticalRegular, "regular restoration events in layer-1 optical mesh network", locus.Layer1Device, SourceLayer1Log)
	add(OpticalFast, "fast restoration events in layer-1 optical mesh network", locus.Layer1Device, SourceLayer1Log)
	add(SONETRestoration, "restoration events in the layer-1 SONET network", locus.Layer1Device, SourceLayer1Log)
	add(LinkCongestion, ">= 80% link utilization in 5-minute intervals", locus.Interface, SourceSNMP)
	add(LinkLoss, ">= 100 corrupted packets in 5-minute intervals", locus.Interface, SourceSNMP)
	add(OSPFReconvergence, "link weight update in OSPF", locus.Interface, SourceOSPFMonitor)
	add(RouterCostInOut, "router cost in/out inferred from link weight changes", locus.Router, SourceOSPFMonitor)
	add(LinkCostOutDown, "link cost out or link down inferred from link weight changes", locus.Interface, SourceOSPFMonitor)
	add(LinkCostInUp, "link cost in or link up inferred from link weight changes", locus.Interface, SourceOSPFMonitor)
	add(CommandCostIn, "command typed by operators to cost in links", locus.Interface, SourceTACACS)
	add(CommandCostOut, "command typed by operators to cost out links", locus.Interface, SourceTACACS)
	add(BGPEgressChange, "BGP next hop to some external prefix changed", locus.IngressDestination, SourceBGPMonitor)
	add(DelayIncrease, "delay increase between two PoPs", locus.IngressEgress, SourcePerfMonitor)
	add(LossIncrease, "loss increase between two PoPs", locus.IngressEgress, SourcePerfMonitor)
	add(ThroughputDrop, "throughput drop between two PoPs", locus.IngressEgress, SourcePerfMonitor)
	return l
}
