// Package event defines the G-RCA event abstraction (paper §II-A): an
// event definition is the signature of a particular type of network
// condition — a tuple (event-name, location type, retrieval process,
// additional descriptive information) — and an event instance is one
// occurrence, (event-name, start-time, end-time, location, additional
// info).
//
// The package also ships the RCA Knowledge Library's common event
// catalogue reproduced from Table I of the paper; applications extend or
// redefine entries as needed (the paper's example: redefining the link
// congestion alarm threshold per application).
package event

import (
	"fmt"
	"sort"
	"time"

	"grca/internal/locus"
)

// Definition is an event signature. Retrieval in the paper points at the
// scripts or database queries producing matching instances; here retrieval
// is performed by the collector's detectors, and Source names the data
// source feeding them.
type Definition struct {
	Name        string
	Description string
	LocType     locus.Type
	Source      string
}

// Validate reports whether the definition is well formed.
func (d Definition) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("event: definition without a name")
	}
	if !d.LocType.Valid() {
		return fmt.Errorf("event: definition %q has invalid location type", d.Name)
	}
	return nil
}

// Instance is one occurrence of an event. Instantaneous conditions (a
// syslog line) have End equal to Start; interval conditions (a 5-minute
// SNMP bin, a flap spanning down and up messages) have End after Start.
type Instance struct {
	// ID is assigned by the store on insertion and is unique within it.
	ID    int
	Name  string
	Start time.Time
	End   time.Time
	Loc   locus.Location
	// Attrs carries the "additional info" of the tuple: raw message text,
	// measured values, ground-truth labels in simulation, etc.
	Attrs map[string]string
}

// Duration returns End − Start.
func (in Instance) Duration() time.Duration { return in.End.Sub(in.Start) }

// Attr returns the named attribute or "".
func (in Instance) Attr(key string) string {
	if in.Attrs == nil {
		return ""
	}
	return in.Attrs[key]
}

// WithAttr returns a copy of the instance with the attribute set.
func (in Instance) WithAttr(key, value string) Instance {
	attrs := make(map[string]string, len(in.Attrs)+1)
	for k, v := range in.Attrs {
		attrs[k] = v
	}
	attrs[key] = value
	in.Attrs = attrs
	return in
}

// String renders the instance in the paper's tuple notation.
func (in Instance) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s)", in.Name,
		in.Start.Format(time.DateTime), in.End.Format(time.DateTime), in.Loc)
}

// Validate checks the instance against its definition.
func (in Instance) Validate(def Definition) error {
	if in.Name != def.Name {
		return fmt.Errorf("event: instance name %q does not match definition %q", in.Name, def.Name)
	}
	if in.End.Before(in.Start) {
		return fmt.Errorf("event: instance %q ends before it starts", in.Name)
	}
	if in.Loc.Type != def.LocType {
		return fmt.Errorf("event: instance %q has location type %v, definition requires %v",
			in.Name, in.Loc.Type, def.LocType)
	}
	return nil
}

// Library is a set of event definitions, keyed by name. Applications layer
// their own definitions on top of the shared Knowledge Library; a
// redefinition shadows the library entry (paper §II-A).
type Library struct {
	defs map[string]Definition
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{defs: map[string]Definition{}} }

// Define adds a new definition; it is an error if the name exists.
func (l *Library) Define(d Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, dup := l.defs[d.Name]; dup {
		return fmt.Errorf("event: %q already defined (use Redefine to override)", d.Name)
	}
	l.defs[d.Name] = d
	return nil
}

// Redefine adds or replaces a definition, the application-override path.
func (l *Library) Redefine(d Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	l.defs[d.Name] = d
	return nil
}

// Get returns the definition for name.
func (l *Library) Get(name string) (Definition, bool) {
	d, ok := l.defs[name]
	return d, ok
}

// Names returns all defined event names, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.defs))
	for n := range l.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of definitions.
func (l *Library) Len() int { return len(l.defs) }

// Clone returns a copy of the library that can be extended independently;
// this is how each RCA application gets its private view of the Knowledge
// Library.
func (l *Library) Clone() *Library {
	c := NewLibrary()
	for n, d := range l.defs {
		c.defs[n] = d
	}
	return c
}
