// Package ospf implements the intradomain routing simulation used by the
// G-RCA service dependency model. Given the network-wide link weights
// observed by a route-monitoring tool such as OSPFMon (which listens to
// flooded OSPF messages), it reconstructs the logical-link and router-level
// path between any ingress/egress router pair at any historical time,
// considering all paths under Equal Cost Multipath (ECMP) — paper §II-B
// item 3.
//
// Link weights are time-varying: a weight timeline per link records every
// cost change (operator cost in/out, link failures flooding MaxLinkMetric).
// All path queries take an explicit timestamp and answer against the
// network condition at that time.
package ospf

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/netmodel"
	"grca/internal/obs"
)

// SPF-memo metrics: the Dijkstra runs behind Distance/Elements/Paths
// dominate routed expansions (§III-B.2), so the hit ratio here is the
// first read on whether the routing-epoch cache is doing its job.
var (
	mSPFHits   = obs.GetCounter("ospf.spf.cache.hits")
	mSPFMisses = obs.GetCounter("ospf.spf.cache.misses")
)

// Infinity is the link metric representing a costed-out or down link
// (OSPF's LSInfinity). Links at or above this weight never carry traffic.
const Infinity = 1 << 24

// WeightChange is one observed link-weight update from the OSPF monitor
// feed. Old is the weight before the change.
type WeightChange struct {
	At     time.Time
	LinkID string
	Old    int
	New    int
}

type weightPoint struct {
	at time.Time
	w  int
}

// Sim is the OSPF routing simulator. It is safe for concurrent readers
// once all weight changes have been recorded; the SPF memo below makes the
// read path cheap enough to share across every diagnosis in the process.
type Sim struct {
	topo *netmodel.Topology
	base map[string]int                     // link → weight at the beginning of time
	hist map[string][]weightPoint           // link → sorted weight timeline
	log  []WeightChange                     // global ordered change feed
	adj  map[string][]*netmodel.LogicalLink // router → incident internal links

	// epochs holds the distinct weight-change instants in time order; the
	// open interval between two consecutive instants is one routing epoch,
	// within which every SPF answer is provably constant (see EpochAt).
	epochs []time.Time
	// gen counts recorded changes; epoch-keyed caches compare it to detect
	// ingestion after they were filled and rebuild themselves.
	gen atomic.Int64
	// spf memoizes Dijkstra distance maps per (src, epoch); the pointer is
	// swapped wholesale when gen moves, so readers never see a stale mix.
	spf atomic.Pointer[spfTable]
}

// spfKey identifies one memoized single-source shortest-path run.
type spfKey struct {
	src   string
	epoch int
}

const spfShards = 16 // power of two; see spfKey.shard

// shard hashes the key (FNV-1a over the source name and epoch) so that
// concurrent diagnosis workers spread across stripe locks.
func (k spfKey) shard() int {
	h := uint32(2166136261)
	for i := 0; i < len(k.src); i++ {
		h = (h ^ uint32(k.src[i])) * 16777619
	}
	h = (h ^ uint32(k.epoch)) * 16777619
	return int(h & (spfShards - 1))
}

type spfShard struct {
	mu sync.RWMutex
	m  map[spfKey]map[string]int
}

// spfTable is one generation of the SPF memo. It is immutable in shape:
// shards fill under their stripe locks, and the whole table is discarded
// when the change log grows (gen mismatch).
type spfTable struct {
	gen    int64
	shards [spfShards]spfShard
}

// table returns the memo for the current generation, atomically replacing
// a stale one. Losing a CAS race is harmless: both tables are empty and
// the winner is adopted by every subsequent reader.
func (s *Sim) table() *spfTable {
	gen := s.gen.Load()
	for {
		t := s.spf.Load()
		if t != nil && t.gen == gen {
			return t
		}
		nt := &spfTable{gen: gen}
		for i := range nt.shards {
			nt.shards[i].m = map[spfKey]map[string]int{}
		}
		if s.spf.CompareAndSwap(t, nt) {
			return nt
		}
	}
}

// EpochAt returns the routing epoch of time t: the number of recorded
// weight-change instants at or before t. Every link weight — and
// therefore every Distance/Elements/Paths answer — is identical for any
// two instants in the same epoch, which is what lets SPF results and
// spatial expansions be shared across diagnoses keyed by epoch instead of
// by timestamp.
func (s *Sim) EpochAt(t time.Time) int {
	return sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].After(t) })
}

// Epochs returns the number of routing epochs recorded so far (the number
// of distinct change instants plus the implicit epoch 0 before any change
// is len+1; this returns the count of boundaries).
func (s *Sim) Epochs() int { return len(s.epochs) }

// Generation returns a counter incremented on every recorded weight
// change. Caches keyed by epoch store the generation they were built
// against and rebuild when it moves, so an ingest-after-diagnose sequence
// stays correct even though the normal phasing is ingest-then-diagnose.
func (s *Sim) Generation() int64 { return s.gen.Load() }

// New creates a simulator over topo with the given initial link weights.
// Links not present in weights default to a metric of DefaultMetric.
func New(topo *netmodel.Topology, weights map[string]int) *Sim {
	s := &Sim{
		topo: topo,
		base: map[string]int{},
		hist: map[string][]weightPoint{},
		adj:  map[string][]*netmodel.LogicalLink{},
	}
	for id := range topo.Links {
		w, ok := weights[id]
		if !ok {
			w = DefaultMetric
		}
		s.base[id] = w
	}
	for _, id := range topo.LinkIDs() {
		l := topo.Links[id]
		s.adj[l.A.Router.Name] = append(s.adj[l.A.Router.Name], l)
		s.adj[l.B.Router.Name] = append(s.adj[l.B.Router.Name], l)
	}
	return s
}

// DefaultMetric is the weight assumed for links without an explicit metric.
const DefaultMetric = 10

// SetWeight records a weight change for link id at time at. Changes must be
// recorded in nondecreasing time order per link; out-of-order records are
// rejected so that a corrupted monitor feed is surfaced rather than
// silently reordered.
func (s *Sim) SetWeight(at time.Time, id string, w int) error {
	if _, ok := s.base[id]; !ok {
		return fmt.Errorf("ospf: weight change for unknown link %q", id)
	}
	tl := s.hist[id]
	if n := len(tl); n > 0 && tl[n-1].at.After(at) {
		return fmt.Errorf("ospf: out-of-order weight change for link %q at %v", id, at)
	}
	old := s.WeightAt(id, at)
	if old == w {
		return nil // no-op refresh; OSPF re-floods identical LSAs periodically
	}
	s.hist[id] = append(tl, weightPoint{at: at, w: w})
	s.log = append(s.log, WeightChange{At: at, LinkID: id, Old: old, New: w})
	// Maintain the sorted, distinct epoch boundaries. Per-link ordering is
	// enforced above, but changes to different links may interleave in
	// time, so insert rather than append.
	i := sort.Search(len(s.epochs), func(i int) bool { return !s.epochs[i].Before(at) })
	if i == len(s.epochs) || !s.epochs[i].Equal(at) {
		s.epochs = append(s.epochs, time.Time{})
		copy(s.epochs[i+1:], s.epochs[i:])
		s.epochs[i] = at
	}
	s.gen.Add(1)
	return nil
}

// WeightAt returns the weight of link id at time t. Unknown links are
// treated as unusable.
func (s *Sim) WeightAt(id string, t time.Time) int {
	tl, ok := s.hist[id]
	if !ok || len(tl) == 0 || t.Before(tl[0].at) {
		if w, ok := s.base[id]; ok {
			return w
		}
		return Infinity
	}
	// Binary search for the last change at or before t.
	i := sort.Search(len(tl), func(i int) bool { return tl[i].at.After(t) })
	return tl[i-1].w
}

// Changes returns the global weight-change feed in record order. The slice
// is shared; callers must not modify it.
func (s *Sim) Changes() []WeightChange { return s.log }

// priority queue for Dijkstra

type pqItem struct {
	node string
	dist int
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// distances returns the Dijkstra distance map from src at time t, memoized
// per (src, epoch): within one routing epoch every weight is constant, so
// the first caller computes and every other query — across goroutines,
// diagnoses, and the BGP hot-potato tie-break — shares the result. The
// returned map is shared and must be treated as read-only.
func (s *Sim) distances(src string, t time.Time) map[string]int {
	k := spfKey{src: src, epoch: s.EpochAt(t)}
	tab := s.table()
	sh := &tab.shards[k.shard()]
	sh.mu.RLock()
	d, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		mSPFHits.Inc()
		return d
	}
	mSPFMisses.Inc()
	d = s.computeDistances(src, t)
	sh.mu.Lock()
	sh.m[k] = d
	sh.mu.Unlock()
	return d
}

// computeDistances runs Dijkstra from src over the internal topology at
// time t and returns the distance map. Customer routers do not participate
// in the IGP.
func (s *Sim) computeDistances(src string, t time.Time) map[string]int {
	dist := map[string]int{src: 0}
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, l := range s.adj[it.node] {
			w := s.WeightAt(l.ID, t)
			if w >= Infinity {
				continue
			}
			far := l.Other(it.node)
			if far == nil || far.Router.Role == netmodel.RoleCustomer {
				continue
			}
			nd := it.dist + w
			if cur, ok := dist[far.Router.Name]; !ok || nd < cur {
				dist[far.Router.Name] = nd
				heap.Push(q, pqItem{node: far.Router.Name, dist: nd})
			}
		}
	}
	return dist
}

// Distance returns the IGP distance between two routers at time t, or
// math.MaxInt if dst is unreachable. This is the hot-potato input to the
// BGP decision process.
func (s *Sim) Distance(src, dst string, t time.Time) int {
	if src == dst {
		return 0
	}
	d, ok := s.distances(src, t)[dst]
	if !ok {
		return math.MaxInt
	}
	return d
}

// PathElements holds every network element lying on at least one shortest
// path between a router pair, the expansion the spatial model needs when
// joining an end-to-end symptom with element-level diagnostics. Under ECMP
// all equal-cost paths contribute (paper §II-B item 3).
type PathElements struct {
	Src, Dst string
	Dist     int
	Routers  map[string]bool
	Links    map[string]bool
}

// Elements computes the routers and links on all shortest paths from src to
// dst at time t. A node v is on some shortest path iff
// d(src,v) + d(v,dst) == d(src,dst); a link likewise with its weight.
func (s *Sim) Elements(src, dst string, t time.Time) (PathElements, error) {
	pe := PathElements{Src: src, Dst: dst, Routers: map[string]bool{}, Links: map[string]bool{}}
	if _, ok := s.topo.Routers[src]; !ok {
		return pe, fmt.Errorf("ospf: unknown source router %q", src)
	}
	if _, ok := s.topo.Routers[dst]; !ok {
		return pe, fmt.Errorf("ospf: unknown destination router %q", dst)
	}
	if src == dst {
		pe.Routers[src] = true
		return pe, nil
	}
	df := s.distances(src, t)
	total, ok := df[dst]
	if !ok {
		return pe, fmt.Errorf("ospf: %s unreachable from %s", dst, src)
	}
	db := s.distances(dst, t) // topology is symmetric (point-to-point links)
	pe.Dist = total
	for r, d := range df {
		if bd, ok := db[r]; ok && d+bd == total {
			pe.Routers[r] = true
		}
	}
	for id, l := range s.topo.Links {
		w := s.WeightAt(id, t)
		if w >= Infinity {
			continue
		}
		a, b := l.A.Router.Name, l.B.Router.Name
		da, oka := df[a]
		db2, okb := db[b]
		if oka && okb && da+w+db2 == total {
			pe.Links[id] = true
			continue
		}
		da, oka = df[b]
		db2, okb = db[a]
		if oka && okb && da+w+db2 == total {
			pe.Links[id] = true
		}
	}
	return pe, nil
}

// Paths enumerates the explicit router sequences of all shortest paths,
// capped at limit paths (0 means no cap). Intended for tests, examples, and
// the Result Browser's drill-down display; the engine itself uses Elements.
func (s *Sim) Paths(src, dst string, t time.Time, limit int) ([][]string, error) {
	pe, err := s.Elements(src, dst, t)
	if err != nil {
		return nil, err
	}
	if src == dst {
		return [][]string{{src}}, nil
	}
	df := s.distances(src, t)
	var out [][]string
	var walk func(node string, acc []string) bool
	walk = func(node string, acc []string) bool {
		acc = append(acc, node)
		if node == dst {
			out = append(out, append([]string(nil), acc...))
			return limit == 0 || len(out) < limit
		}
		// Deterministic neighbor order.
		links := append([]*netmodel.LogicalLink(nil), s.adj[node]...)
		sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
		for _, l := range links {
			if !pe.Links[l.ID] {
				continue
			}
			far := l.Other(node)
			if far == nil {
				continue
			}
			next := far.Router.Name
			if df[next] == df[node]+s.WeightAt(l.ID, t) {
				if !walk(next, acc) {
					return false
				}
			}
		}
		return true
	}
	walk(src, nil)
	return out, nil
}
