package ospf

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"grca/internal/netmodel"
)

var t0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// diamond builds:
//
//	    b
//	  /   \
//	a       d --- e(per) --- cust
//	  \   /
//	    c
//
// with all weights 10, so a→d has two equal-cost paths (ECMP).
func diamond(t *testing.T) (*netmodel.Topology, *Sim) {
	t.Helper()
	topo := netmodel.NewTopology()
	names := []string{"a", "b", "c", "d", "e"}
	for i, n := range names {
		role := netmodel.RoleCore
		if n == "e" {
			role = netmodel.RoleProviderEdge
		}
		r := &netmodel.Router{Name: n, PoP: n, Role: role,
			Loopback: netip.MustParseAddr(netip.AddrFrom4([4]byte{10, 255, 0, byte(i + 1)}).String())}
		if err := topo.AddRouter(r); err != nil {
			t.Fatal(err)
		}
		topo.AddCard(r)
	}
	cust := &netmodel.Router{Name: "cust", Role: netmodel.RoleCustomer}
	if err := topo.AddRouter(cust); err != nil {
		t.Fatal(err)
	}
	topo.AddCard(cust)

	sub := 0
	link := func(id, x, y string) {
		rx, ry := topo.Routers[x], topo.Routers[y]
		base := netip.AddrFrom4([4]byte{10, 0, byte(sub >> 6), byte(sub << 2)})
		sub++
		pfx := netip.PrefixFrom(base, 30)
		a1 := base.Next()
		a2 := a1.Next()
		i1, err := topo.AddInterface(rx.Cards[0], "to-"+y, pfx, a1)
		if err != nil {
			t.Fatal(err)
		}
		i2, err := topo.AddInterface(ry.Cards[0], "to-"+x, pfx, a2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := topo.Connect(id, i1, i2); err != nil {
			t.Fatal(err)
		}
	}
	link("ab", "a", "b")
	link("ac", "a", "c")
	link("bd", "b", "d")
	link("cd", "c", "d")
	link("de", "d", "e")
	link("ecust", "e", "cust")

	return topo, New(topo, map[string]int{"ab": 10, "ac": 10, "bd": 10, "cd": 10, "de": 10, "ecust": 10})
}

func TestDistance(t *testing.T) {
	_, sim := diamond(t)
	if d := sim.Distance("a", "d", t0); d != 20 {
		t.Errorf("a→d = %d, want 20", d)
	}
	if d := sim.Distance("a", "a", t0); d != 0 {
		t.Errorf("a→a = %d, want 0", d)
	}
	if d := sim.Distance("a", "e", t0); d != 30 {
		t.Errorf("a→e = %d, want 30", d)
	}
	// Customer routers do not participate in the IGP.
	if d := sim.Distance("a", "cust", t0); d != math.MaxInt {
		t.Errorf("a→cust = %d, want unreachable", d)
	}
}

func TestECMPElements(t *testing.T) {
	_, sim := diamond(t)
	pe, err := sim.Elements("a", "d", t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"a", "b", "c", "d"} {
		if !pe.Routers[r] {
			t.Errorf("router %s missing from ECMP element set", r)
		}
	}
	if pe.Routers["e"] {
		t.Error("router e wrongly on a→d path")
	}
	for _, l := range []string{"ab", "ac", "bd", "cd"} {
		if !pe.Links[l] {
			t.Errorf("link %s missing from ECMP element set", l)
		}
	}
	if pe.Links["de"] {
		t.Error("link de wrongly on a→d path")
	}
}

func TestWeightChangeReroutes(t *testing.T) {
	_, sim := diamond(t)
	t1 := t0.Add(time.Hour)
	// Cost out link bd at t1: the b branch disappears from shortest paths.
	if err := sim.SetWeight(t1, "bd", Infinity); err != nil {
		t.Fatal(err)
	}
	before, err := sim.Elements("a", "d", t1.Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !before.Routers["b"] {
		t.Error("b should be on path before cost-out")
	}
	after, err := sim.Elements("a", "d", t1.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if after.Routers["b"] || after.Links["ab"] || after.Links["bd"] {
		t.Errorf("b branch should be off path after cost-out: %+v", after)
	}
	if !after.Routers["c"] || !after.Links["cd"] {
		t.Error("c branch missing after cost-out")
	}
}

func TestWeightTimeline(t *testing.T) {
	_, sim := diamond(t)
	t1, t2 := t0.Add(time.Hour), t0.Add(2*time.Hour)
	if err := sim.SetWeight(t1, "ab", 50); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetWeight(t2, "ab", 10); err != nil {
		t.Fatal(err)
	}
	if w := sim.WeightAt("ab", t0); w != 10 {
		t.Errorf("weight before any change = %d", w)
	}
	if w := sim.WeightAt("ab", t1); w != 50 {
		t.Errorf("weight at change instant = %d, want 50", w)
	}
	if w := sim.WeightAt("ab", t1.Add(30*time.Minute)); w != 50 {
		t.Errorf("weight mid-interval = %d, want 50", w)
	}
	if w := sim.WeightAt("ab", t2.Add(time.Minute)); w != 10 {
		t.Errorf("weight after revert = %d, want 10", w)
	}
	if got := len(sim.Changes()); got != 2 {
		t.Errorf("change log length = %d, want 2", got)
	}
	if c := sim.Changes()[0]; c.Old != 10 || c.New != 50 || c.LinkID != "ab" {
		t.Errorf("first change = %+v", c)
	}
}

func TestSetWeightValidation(t *testing.T) {
	_, sim := diamond(t)
	if err := sim.SetWeight(t0, "nope", 10); err == nil {
		t.Error("accepted change for unknown link")
	}
	if err := sim.SetWeight(t0.Add(time.Hour), "ab", 50); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetWeight(t0, "ab", 60); err == nil {
		t.Error("accepted out-of-order change")
	}
	// Identical re-flood is a silent no-op.
	n := len(sim.Changes())
	if err := sim.SetWeight(t0.Add(2*time.Hour), "ab", 50); err != nil {
		t.Fatal(err)
	}
	if len(sim.Changes()) != n {
		t.Error("no-op refresh appended to change log")
	}
}

func TestPathsEnumeration(t *testing.T) {
	_, sim := diamond(t)
	paths, err := sim.Paths("a", "d", t0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 ECMP paths", paths)
	}
	for _, p := range paths {
		if len(p) != 3 || p[0] != "a" || p[2] != "d" {
			t.Errorf("malformed path %v", p)
		}
	}
	if paths, _ := sim.Paths("a", "d", t0, 1); len(paths) != 1 {
		t.Error("limit not honored")
	}
	if paths, _ := sim.Paths("a", "a", t0, 0); len(paths) != 1 || len(paths[0]) != 1 {
		t.Errorf("self path = %v", paths)
	}
}

func TestElementsErrors(t *testing.T) {
	_, sim := diamond(t)
	if _, err := sim.Elements("nope", "d", t0); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := sim.Elements("a", "nope", t0); err == nil {
		t.Error("unknown dst accepted")
	}
	// Partition the graph: cost out everything around d.
	t1 := t0.Add(time.Hour)
	for _, l := range []string{"bd", "cd", "de"} {
		if err := sim.SetWeight(t1, l, Infinity); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Elements("a", "d", t1.Add(time.Second)); err == nil {
		t.Error("unreachable destination accepted")
	}
}

// TestSPFOptimality is a property test: for random weight assignments, the
// distance function satisfies the triangle inequality through any relay and
// every link reported on a shortest path actually lies on one.
func TestSPFOptimality(t *testing.T) {
	topo, _ := diamond(t)
	weightSets := [][]int{
		{1, 1, 1, 1, 1, 1},
		{5, 3, 2, 9, 4, 1},
		{10, 10, 10, 10, 10, 10},
		{7, 1, 1, 7, 3, 2},
		{100, 1, 100, 1, 50, 1},
	}
	ids := []string{"ab", "ac", "bd", "cd", "de", "ecust"}
	routers := []string{"a", "b", "c", "d", "e"}
	for _, ws := range weightSets {
		m := map[string]int{}
		for i, id := range ids {
			m[id] = ws[i]
		}
		sim := New(topo, m)
		for _, x := range routers {
			for _, y := range routers {
				dxy := sim.Distance(x, y, t0)
				for _, z := range routers {
					dxz, dzy := sim.Distance(x, z, t0), sim.Distance(z, y, t0)
					if dxz == math.MaxInt || dzy == math.MaxInt {
						continue
					}
					if dxz+dzy < dxy {
						t.Fatalf("triangle violation: d(%s,%s)=%d > d(%s,%s)+d(%s,%s)=%d (weights %v)",
							x, y, dxy, x, z, z, y, dxz+dzy, ws)
					}
				}
				if x == y || dxy == math.MaxInt {
					continue
				}
				pe, err := sim.Elements(x, y, t0)
				if err != nil {
					t.Fatal(err)
				}
				for id := range pe.Links {
					l := topo.Links[id]
					a, b := l.A.Router.Name, l.B.Router.Name
					w := sim.WeightAt(id, t0)
					ok1 := sim.Distance(x, a, t0)+w+sim.Distance(b, y, t0) == dxy
					ok2 := sim.Distance(x, b, t0)+w+sim.Distance(a, y, t0) == dxy
					if !ok1 && !ok2 {
						t.Fatalf("link %s reported on %s→%s shortest path but is not (weights %v)", id, x, y, ws)
					}
				}
			}
		}
	}
}

func TestDefaultMetric(t *testing.T) {
	topo, _ := diamond(t)
	sim := New(topo, nil) // all defaults
	if w := sim.WeightAt("ab", t0); w != DefaultMetric {
		t.Errorf("default weight = %d", w)
	}
	if w := sim.WeightAt("unknown-link", t0); w != Infinity {
		t.Errorf("unknown link weight = %d, want Infinity", w)
	}
}

// TestEpochsAndSPFMemo pins the routing-epoch contract: EpochAt counts the
// distinct change instants at or before t, no-op refreshes do not open a
// new epoch, and the memoized SPF layer answers identically before and
// after cache fills — including after a change recorded *earlier* than
// already-cached epochs shifts the numbering (generation invalidation).
func TestEpochsAndSPFMemo(t *testing.T) {
	_, s := diamond(t)
	if got := s.EpochAt(t0); got != 0 {
		t.Fatalf("EpochAt before any change = %d, want 0", got)
	}
	if err := s.SetWeight(t0.Add(100*time.Second), "bd", 40); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWeight(t0.Add(200*time.Second), "bd", 10); err != nil {
		t.Fatal(err)
	}
	// Refresh with the identical weight: no new epoch, no new generation.
	gen := s.Generation()
	if err := s.SetWeight(t0.Add(300*time.Second), "bd", 10); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != gen || s.Epochs() != 2 {
		t.Fatalf("no-op refresh changed epochs/gen: epochs=%d gen=%d", s.Epochs(), s.Generation())
	}
	for _, c := range []struct {
		at   time.Duration
		want int
	}{
		{0, 0}, {99 * time.Second, 0}, {100 * time.Second, 1},
		{150 * time.Second, 1}, {200 * time.Second, 2}, {10 * time.Hour, 2},
	} {
		if got := s.EpochAt(t0.Add(c.at)); got != c.want {
			t.Errorf("EpochAt(t0+%v) = %d, want %d", c.at, got, c.want)
		}
	}
	// Memoized answers: repeated queries in one epoch hit the cache and
	// agree; queries in the costed-out epoch see the detour.
	if d := s.Distance("a", "d", t0.Add(50*time.Second)); d != 20 {
		t.Fatalf("pre-change distance = %d, want 20 (ECMP)", d)
	}
	if d := s.Distance("a", "d", t0.Add(150*time.Second)); d != 20 {
		t.Fatalf("mid-epoch distance = %d, want 20 via c", d)
	}
	if d := s.Distance("a", "d", t0.Add(60*time.Second)); d != 20 {
		t.Fatalf("cached re-query = %d, want 20", d)
	}
	// A change recorded before the cached instants shifts every epoch
	// number; the memo must rebuild rather than serve stale distances.
	if err := s.SetWeight(t0.Add(40*time.Second), "ac", 100); err != nil {
		t.Fatal(err)
	}
	if d := s.Distance("a", "d", t0.Add(150*time.Second)); d != 50 {
		t.Fatalf("post-insert distance at 150s = %d, want 50 (bd=40, c-detour costed to 100)", d)
	}
	if d := s.Distance("a", "d", t0.Add(50*time.Second)); d != 20 {
		t.Fatalf("post-insert distance at 50s = %d, want 20 (bd still 10)", d)
	}
	if d := s.Distance("a", "d", t0.Add(250*time.Second)); d != 20 {
		t.Fatalf("post-insert distance at 250s = %d, want 20 (bd back to 10)", d)
	}
}
