package backbone

import (
	"testing"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func TestBuildGraphShape(t *testing.T) {
	lib, g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != event.LossIncrease {
		t.Errorf("root = %q", g.Root)
	}
	if got := len(g.RulesFor(event.LossIncrease)); got != 4 {
		t.Errorf("rules = %d, want 4", got)
	}
	if err := g.Validate(lib); err != nil {
		t.Fatal(err)
	}
}

func TestBackbonePipelineAccuracy(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 101, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 4,
		Duration: 14 * 24 * time.Hour, BackboneIncidents: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	if len(ds) < 130 {
		t.Fatalf("diagnosed %d loss events, want ≈150", len(ds))
	}
	score := platform.ScoreDiagnoses(d.Truth, "backbone", ds, 10*time.Minute)
	if score.Total < 130 {
		t.Fatalf("matched %d of %d (unmatched %d)", score.Total, len(ds), score.Unmatched)
	}
	if acc := score.Accuracy(); acc < 0.9 {
		shown := 0
		for _, diag := range ds {
			if shown >= 8 {
				break
			}
			for _, tr := range d.Truth {
				if tr.Study == "backbone" && tr.Where == diag.Symptom.Loc.String() &&
					absd(tr.At, diag.Symptom.Start) <= 10*time.Minute &&
					diag.Primary() != platform.ExpectedLabel(tr.Kind) {
					t.Logf("MISS %s at %v: got %q want %q",
						tr.Where, diag.Symptom.Start, diag.Primary(), platform.ExpectedLabel(tr.Kind))
					shown++
					break
				}
			}
		}
		t.Errorf("backbone diagnosis accuracy = %.3f, want ≥ 0.9", acc)
	}

	// The §I decision: with the default mix congestion dominates.
	b := engine.Breakdown(ds)
	rec := Recommend(b)
	if want := "capacity augmentation"; !contains(rec, want) {
		t.Errorf("recommendation = %q, want mention of %q (breakdown %v)", rec, want, b)
	}
}

func TestRecommend(t *testing.T) {
	if rec := Recommend(map[string]float64{event.OSPFReconvergence: 40, event.LinkCongestion: 10}); !contains(rec, "fast reroute") {
		t.Errorf("reconvergence-dominant recommendation = %q", rec)
	}
	if rec := Recommend(map[string]float64{}); !contains(rec, "no dominant") {
		t.Errorf("empty recommendation = %q", rec)
	}
}

func TestDisplayLabel(t *testing.T) {
	if got := DisplayLabel(event.LinkCongestion); !contains(got, "augment capacity") {
		t.Errorf("congestion label = %q", got)
	}
	if got := DisplayLabel("Unknown"); got != "Unknown" {
		t.Errorf("passthrough = %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func absd(a, b time.Time) time.Duration {
	d := a.Sub(b)
	if d < 0 {
		return -d
	}
	return d
}
