// Package backbone packages the in-network packet-loss RCA application of
// the paper's §I motivating scenario: sporadic losses reported by probe
// traffic between PoPs are diagnosed in the aggregate, and the dominant
// root cause drives the remediation — "should link congestion be
// determined to be the primary root cause, capacity augmentation is
// needed along the corresponding network path; alternatively, if packet
// losses are found to be largely due to intradomain routing
// reconvergence, deploying technologies such as MPLS fast reroute becomes
// a priority."
//
// The application is assembled almost entirely from the Knowledge
// Library: the symptom and the congestion/reconvergence rules come from
// Tables I and II; only two diagnosis rules are application-specific.
package backbone

import (
	"fmt"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/rulespec"
	"grca/internal/store"
)

// Spec is the application's rule-specification source.
const Spec = `
app "backbone-loss" root "In-network loss increase"

use "In-network loss increase" <- "Link congestion alarm" priority 120
use "In-network loss increase" <- "OSPF re-convergence event" priority 100

rule "In-network loss increase" <- "Interface flap" {
    priority 130
    join     interface
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 5s
    note     "transient loss while a path link flaps"
}
rule "In-network loss increase" <- "Link loss alarm" {
    priority 110
    join     interface
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
    note     "corrupted packets on a path link (dirty fiber)"
}
`

// Build parses the specification against the Knowledge Library.
func Build() (*event.Library, *dgraph.Graph, error) {
	spec, err := rulespec.Parse(Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("backbone: %v", err)
	}
	return spec.Build(event.Knowledge(), dgraph.Knowledge())
}

// NewEngine builds the application's RCA engine over collected data.
func NewEngine(st store.Store, view *netstate.View) (*engine.Engine, error) {
	_, g, err := Build()
	if err != nil {
		return nil, err
	}
	return engine.New(st, view, g), nil
}

// DisplayLabel maps diagnosis labels to operator-facing row names.
func DisplayLabel(primary string) string {
	switch primary {
	case event.LinkCongestion:
		return "Link congestion (augment capacity on the path)"
	case event.OSPFReconvergence:
		return "OSPF re-convergence (prioritize MPLS fast reroute)"
	case event.LinkLoss:
		return "Link loss / corrupted packets (inspect layer 1)"
	}
	return primary
}

// Recommend renders the §I remediation decision for a diagnosed breakdown
// keyed by primary labels (not display labels).
func Recommend(breakdown map[string]float64) string {
	congestion := breakdown[event.LinkCongestion]
	reconvergence := breakdown[event.OSPFReconvergence]
	switch {
	case congestion > reconvergence && congestion > 0:
		return "dominant cause is link congestion: plan capacity augmentation along the affected paths"
	case reconvergence > 0:
		return "dominant cause is routing re-convergence: prioritize MPLS fast reroute deployment"
	}
	return "no dominant in-network cause identified"
}
