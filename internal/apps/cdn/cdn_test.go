package cdn_test

import (
	"testing"
	"time"

	"grca/internal/apps/cdn"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func TestBuildGraphShape(t *testing.T) {
	lib, g, err := cdn.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != event.CDNRTTIncrease {
		t.Errorf("root = %q", g.Root)
	}
	rules := g.RulesFor(event.CDNRTTIncrease)
	if len(rules) != 7 {
		t.Fatalf("rules = %d, want 7 (Fig. 5 classes)", len(rules))
	}
	if err := g.Validate(lib); err != nil {
		t.Fatal(err)
	}
	// Application events of Table V present.
	for _, name := range []string{event.CDNRTTIncrease, event.CDNThroughputDrop,
		event.CDNServerIssue, event.CDNPolicyChange} {
		if _, ok := lib.Get(name); !ok {
			t.Errorf("missing app event %q", name)
		}
	}
	// The egress-change rule joins at ingress:destination — the spatial
	// conversion highlighted in §III-B.
	for _, r := range rules {
		if r.Diagnostic == event.BGPEgressChange && r.JoinLevel != locus.IngressDestination {
			t.Errorf("egress rule join level = %v", r.JoinLevel)
		}
		if r.Diagnostic == event.CDNServerIssue && r.JoinLevel != locus.Server {
			t.Errorf("server rule join level = %v", r.JoinLevel)
		}
	}
	// Priorities: inside-network evidence outranks the reconvergence
	// fallback; server issue is the strongest.
	var serverPrio, reconvPrio int
	for _, r := range rules {
		switch r.Diagnostic {
		case event.CDNServerIssue:
			serverPrio = r.Priority
		case event.OSPFReconvergence:
			reconvPrio = r.Priority
		}
	}
	if serverPrio <= reconvPrio {
		t.Errorf("priorities: server %d vs reconvergence %d", serverPrio, reconvPrio)
	}
}

func TestBuildThroughputVariant(t *testing.T) {
	lib, g, err := cdn.BuildThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != event.CDNThroughputDrop {
		t.Errorf("root = %q", g.Root)
	}
	if got := len(g.RulesFor(event.CDNThroughputDrop)); got != 7 {
		t.Errorf("rules = %d, want 7 (same classes as the RTT graph)", got)
	}
	if err := g.Validate(lib); err != nil {
		t.Fatal(err)
	}
}

// TestThroughputEngineOnCorpus diagnoses the throughput-drop symptoms the
// collector materializes alongside the RTT increases; the same simulated
// degradations (RTT up, throughput down in the same bins) must classify
// identically under both roots.
func TestThroughputEngineOnCorpus(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 103, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 4,
		Duration: 7 * 24 * time.Hour, CDNIncidents: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cdn.NewThroughputEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	if len(ds) < 60 {
		t.Fatalf("throughput drops diagnosed = %d, want ≈80", len(ds))
	}
	score := platform.ScoreDiagnoses(d.Truth, "cdn", ds, 10*time.Minute)
	if score.Total < 60 {
		t.Fatalf("matched %d of %d", score.Total, len(ds))
	}
	if acc := score.Accuracy(); acc < 0.9 {
		t.Errorf("throughput diagnosis accuracy = %.3f", acc)
	}
}

func TestDisplayLabelMapping(t *testing.T) {
	cases := map[string]string{
		engine.Unknown:          "Outside of our network (Unknown)",
		event.BGPEgressChange:   "Egress Change due to Inter-domain routing change",
		event.LinkCongestion:    "Link Congestions",
		event.LinkLoss:          "Link Loss",
		event.OSPFReconvergence: "OSPF re-convergence",
		event.InterfaceFlap:     event.InterfaceFlap, // passthrough
	}
	for in, want := range cases {
		if got := cdn.DisplayLabel(in); got != want {
			t.Errorf("cdn.DisplayLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
