// Package cdn packages the CDN service-impairment RCA application of
// paper §III-B: the application-specific events of Table V and the
// diagnosis graph of Fig. 5, expressed in the rule-specification language.
//
// The symptom is an end-to-end RTT degradation between a CDN server and a
// client measurement agent. Diagnosis leans entirely on the spatial model:
// the server side resolves through configuration to its attachment
// (ingress) router, the client side through historical BGP to the egress,
// and the backbone path between them through the OSPF simulation — the
// route computations that dominate this application's diagnosis latency
// (§III-B.2).
package cdn

import (
	"fmt"
	"net/netip"
	"time"

	"grca/internal/collector"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/rulespec"
	"grca/internal/store"
)

// Spec is the application's rule-specification source (Tables V–VI,
// Fig. 5).
const Spec = `
app "cdn-rtt" root "CDN round trip time increase"

event "CDN round trip time increase" {
    loctype  server:client
    source   Keynote
    desc     "increase in end-to-end round trip time (RTT) between end-users and CDN servers"
}
event "CDN end-to-end throughput drop" {
    loctype  server:client
    source   Keynote
    desc     "decrease in average download throughput"
}
event "CDN server issue" {
    loctype  server
    source   "server logs"
    desc     "CDN server load is high"
}
event "CDN assignment policy change" {
    loctype  server
    source   "server logs"
    desc     "request-routing policy changed at a CDN node"
}

rule "CDN round trip time increase" <- "CDN server issue" {
    priority 160
    join     server
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN round trip time increase" <- "CDN assignment policy change" {
    priority 150
    join     server
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
rule "CDN round trip time increase" <- "BGP egress change" {
    priority 140
    join     ingress:destination
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
rule "CDN round trip time increase" <- "Interface flap" {
    priority 130
    join     interface
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 5s
}
rule "CDN round trip time increase" <- "Link congestion alarm" {
    priority 120
    join     interface
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN round trip time increase" <- "Link loss alarm" {
    priority 110
    join     interface
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN round trip time increase" <- "OSPF re-convergence event" {
    priority 100
    join     router
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
`

// ThroughputSpec is the sibling application rooted at the other Table V
// symptom: §III-B.1 describes "CDN end-to-end throughput drop" as the
// input event inferred from Keynote measurements (a decrease in average
// download throughput). The diagnosis classes are those of Fig. 5; only
// the root differs, because throughput degrades through the same network
// and service causes as RTT.
const ThroughputSpec = `
app "cdn-throughput" root "CDN end-to-end throughput drop"

event "CDN end-to-end throughput drop" {
    loctype  server:client
    source   Keynote
    desc     "decrease in average download throughput"
}
event "CDN server issue" {
    loctype  server
    source   "server logs"
    desc     "CDN server load is high"
}
event "CDN assignment policy change" {
    loctype  server
    source   "server logs"
    desc     "request-routing policy changed at a CDN node"
}

rule "CDN end-to-end throughput drop" <- "CDN server issue" {
    priority 160
    join     server
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN end-to-end throughput drop" <- "CDN assignment policy change" {
    priority 150
    join     server
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
rule "CDN end-to-end throughput drop" <- "BGP egress change" {
    priority 140
    join     ingress:destination
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
rule "CDN end-to-end throughput drop" <- "Interface flap" {
    priority 130
    join     interface
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 5s
}
rule "CDN end-to-end throughput drop" <- "Link congestion alarm" {
    priority 120
    join     interface
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN end-to-end throughput drop" <- "Link loss alarm" {
    priority 110
    join     interface
    symptom  start/end expand 300s 300s
    diag     start/end expand 300s 300s
}
rule "CDN end-to-end throughput drop" <- "OSPF re-convergence event" {
    priority 100
    join     router
    symptom  start/end expand 120s 120s
    diag     start/end expand 5s 300s
}
`

// BuildThroughput parses the throughput-rooted specification.
func BuildThroughput() (*event.Library, *dgraph.Graph, error) {
	spec, err := rulespec.Parse(ThroughputSpec)
	if err != nil {
		return nil, nil, fmt.Errorf("cdn: %v", err)
	}
	return spec.Build(event.Knowledge(), dgraph.Knowledge())
}

// NewThroughputEngine builds the throughput-drop RCA engine.
func NewThroughputEngine(st store.Store, view *netstate.View) (*engine.Engine, error) {
	_, g, err := BuildThroughput()
	if err != nil {
		return nil, err
	}
	return engine.New(st, view, g), nil
}

// Deployment describes the CDN layout and client population the
// application diagnoses: the paper derives this from configuration and
// measurement metadata.
type Deployment struct {
	Node   string // CDN node (site) name
	Server string // server within the node
	Router string // the node's attachment router
	// Agents maps measurement agent names to representative addresses.
	Agents map[string]netip.Addr
	// Prefixes lists the client prefixes whose egress history matters.
	Prefixes []netip.Prefix
}

// Build parses the specification against the Knowledge Library.
func Build() (*event.Library, *dgraph.Graph, error) {
	spec, err := rulespec.Parse(Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("cdn: %v", err)
	}
	return spec.Build(event.Knowledge(), dgraph.Knowledge())
}

// Register wires the deployment into the network view so the spatial
// model can expand server:client locations.
func Register(view *netstate.View, dep Deployment) {
	view.RegisterServer(dep.Server, dep.Node, dep.Router)
	for name, addr := range dep.Agents {
		view.RegisterClient(name, addr, "")
	}
}

// MaterializeEgressChanges asks the collector to emit the "BGP egress
// change" events the diagnosis graph consumes, for this deployment's
// ingress and client prefixes over the observation window.
func MaterializeEgressChanges(c *collector.Collector, dep Deployment, from, to time.Time) {
	c.EmitEgressChanges([]string{dep.Router}, dep.Prefixes, from, to)
}

// NewEngine builds the application's RCA engine over collected data.
func NewEngine(st store.Store, view *netstate.View) (*engine.Engine, error) {
	_, g, err := Build()
	if err != nil {
		return nil, err
	}
	return engine.New(st, view, g), nil
}

// DisplayLabel maps diagnosis labels to the row names of Table VI.
func DisplayLabel(primary string) string {
	switch primary {
	case engine.Unknown:
		return "Outside of our network (Unknown)"
	case event.BGPEgressChange:
		return "Egress Change due to Inter-domain routing change"
	case event.LinkCongestion:
		return "Link Congestions"
	case event.LinkLoss:
		return "Link Loss"
	case event.OSPFReconvergence:
		return "OSPF re-convergence"
	case event.CDNPolicyChange:
		return "CDN assignment policy change"
	}
	return primary
}
