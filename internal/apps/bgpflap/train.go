package bgpflap

import (
	"grca/internal/bayes"
	"grca/internal/engine"
	"grca/internal/event"
)

// ClassOf maps a rule-based primary label onto the Bayesian class
// hierarchy of Fig. 8: the layer events roll up to the Interface Issue,
// CPU evidence to the CPU High Issue, customer actions to Customer Action.
// Labels with no class (Unknown, reboot) return "".
func ClassOf(primary string) string {
	switch primary {
	case event.InterfaceFlap, event.LineProtoFlap,
		event.SONETRestoration, event.OpticalFast, event.OpticalRegular:
		return ClassIface
	case event.CPUHighSpike, event.CPUHighAverage, event.EBGPHoldTimerExpired:
		return ClassCPU
	case event.CustomerResetSession:
		return ClassCustomer
	}
	return ""
}

// TrainingSet converts rule-based diagnoses into labeled Bayesian
// training examples — the paper's bootstrap of inference parameters from
// rule-classified historical data (§II-D.2). Diagnoses whose label maps to
// no class are skipped.
func TrainingSet(ds []engine.Diagnosis) []bayes.Labeled {
	var out []bayes.Labeled
	for _, d := range ds {
		class := ClassOf(d.Primary())
		if class == "" {
			continue
		}
		out = append(out, bayes.Labeled{Class: class, Evidence: Features(d)})
	}
	return out
}

// TrainedConfig bootstraps a Bayesian classifier from rule-based
// diagnoses, an alternative to the hand-set fuzzy ratios of BayesConfig.
func TrainedConfig(ds []engine.Diagnosis) (*bayes.Config, error) {
	return bayes.Train(TrainingSet(ds), bayes.TrainOptions{})
}
