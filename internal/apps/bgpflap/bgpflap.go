// Package bgpflap packages the BGP-flap root cause analysis application of
// paper §III-A: the application-specific events of Table III, the
// diagnosis graph of Fig. 4 expressed in the rule-specification language,
// and the Bayesian configuration of Fig. 8 (§IV-C) with its virtual
// root-cause classes.
package bgpflap

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"grca/internal/bayes"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/rulespec"
	"grca/internal/store"
)

// Spec is the application's rule-specification source: three
// application-specific events (Table III) plus the diagnosis rules of
// Fig. 4, most of which are pulled from the Knowledge Library. Priorities
// follow the paper's guidance: deeper causes carry higher priorities, and
// the layer flap (180) outranks CPU evidence, so a flap joining both is
// attributed to the layer event (§III-A.1).
const Spec = `
app "bgp-flap" root "eBGP flap"

event "eBGP flap" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP session goes down and comes up, BGP-5-ADJCHANGE msg."
}
event "Customer reset session" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP session is reset by the customer, BGP-5-NOTIFICATION msg."
}
event "eBGP HTE" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP hold timer expired, BGP-5-NOTIFICATION msg."
}

rule "eBGP flap" <- "Router reboot" {
    priority 210
    join     router
    symptom  start/start expand 60s 10s
    diag     start/end   expand 5s 5s
}
rule "eBGP flap" <- "Customer reset session" {
    priority 200
    join     router:neighbor
    symptom  start/start expand 10s 10s
    diag     start/end   expand 5s 5s
}
rule "eBGP flap" <- "Interface flap" {
    priority 180
    join     interface
    symptom  start/start expand 185s 10s
    diag     start/end   expand 5s 5s
    note     "BGP fast external fallover, or hold-timer expiry while down"
}
rule "eBGP flap" <- "Line protocol flap" {
    priority 170
    join     interface
    symptom  start/start expand 185s 10s
    diag     start/end   expand 5s 5s
}
rule "eBGP flap" <- "eBGP HTE" {
    priority 10
    join     router:neighbor
    symptom  start/start expand 10s 10s
    diag     start/end   expand 5s 5s
}

rule "eBGP HTE" <- "CPU high (spike)" {
    priority 30
    join     router
    symptom  start/start expand 90s 10s
    diag     start/end   expand 5s 5s
}
rule "eBGP HTE" <- "CPU high (average)" {
    priority 20
    join     router
    symptom  start/start expand 60s 10s
    diag     start/end   expand 300s 300s
}
rule "eBGP HTE" <- "Interface flap" {
    priority 180
    join     interface
    symptom  start/start expand 185s 10s
    diag     start/end   expand 5s 5s
}
rule "eBGP HTE" <- "Line protocol flap" {
    priority 170
    join     interface
    symptom  start/start expand 185s 10s
    diag     start/end   expand 5s 5s
}

use "Line protocol flap" <- "Interface flap" priority 180
use "Interface flap" <- "SONET restoration" priority 190
use "Interface flap" <- "Fast optical mesh network restoration" priority 191
use "Interface flap" <- "Regular optical mesh network restoration" priority 192
`

// Build parses the specification against the Knowledge Library.
func Build() (*event.Library, *dgraph.Graph, error) {
	spec, err := rulespec.Parse(Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("bgpflap: %v", err)
	}
	return spec.Build(event.Knowledge(), dgraph.Knowledge())
}

// NewEngine builds the application's RCA engine over collected data.
func NewEngine(st store.Store, view *netstate.View) (*engine.Engine, error) {
	_, g, err := Build()
	if err != nil {
		return nil, err
	}
	return engine.New(st, view, g), nil
}

// DisplayLabel maps diagnosis labels to the row names of Table IV.
func DisplayLabel(primary string) string {
	if primary == event.EBGPHoldTimerExpired {
		return "eBGP HTE (due to unknown reasons)"
	}
	return primary
}

// ---------------------------------------------------------------------
// Bayesian configuration (Fig. 8) and the line-card study of §IV-C.
// ---------------------------------------------------------------------

// Feature names used by the Bayesian classifier.
const (
	FeatInterfaceFlap = "interface-flap"
	FeatLineProto     = "line-proto-flap"
	FeatCPUHigh       = "cpu-high"
	FeatHTE           = "ebgp-hte"
	FeatReset         = "customer-reset"
	FeatReboot        = "router-reboot"
	FeatSameCardMulti = "same-card-multi-flap"
)

// Virtual root-cause class names (Fig. 8).
const (
	ClassCPU      = "CPU High Issue"
	ClassIface    = "Interface Issue"
	ClassLineCard = "Line-card Issue"
	ClassCustomer = "Customer Action"
)

// BayesConfig returns the Fig. 8 classifier: virtual root causes with
// fuzzy likelihood ratios.
func BayesConfig() (*bayes.Config, error) {
	c := bayes.NewConfig()
	classes := []bayes.Class{
		{
			Name:  ClassCPU,
			Prior: bayes.Low,
			Present: map[string]bayes.Ratio{
				FeatCPUHigh: bayes.High,
				FeatHTE:     bayes.Medium,
			},
			Absent: map[string]bayes.Ratio{FeatCPUHigh: 1.0 / 50},
		},
		{
			Name:  ClassIface,
			Prior: bayes.Medium,
			Present: map[string]bayes.Ratio{
				FeatInterfaceFlap: bayes.High,
				FeatLineProto:     bayes.Medium,
				FeatSameCardMulti: 1.0 / 100,
			},
		},
		{
			Name:  ClassLineCard,
			Prior: bayes.Low,
			Present: map[string]bayes.Ratio{
				FeatInterfaceFlap: bayes.Medium,
				FeatSameCardMulti: bayes.High,
			},
		},
		{
			Name:  ClassCustomer,
			Prior: bayes.Low,
			Present: map[string]bayes.Ratio{
				FeatReset: bayes.High,
			},
		},
	}
	for _, cl := range classes {
		if err := c.AddClass(cl); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Features extracts the Bayesian evidence vector from a rule-based
// diagnosis tree: which signatures joined the symptom.
func Features(d engine.Diagnosis) bayes.Evidence {
	ev := bayes.Evidence{}
	d.Root.Walk(func(n *engine.Node) {
		switch n.Event {
		case event.InterfaceFlap:
			ev[FeatInterfaceFlap] = true
		case event.LineProtoFlap:
			ev[FeatLineProto] = true
		case event.CPUHighSpike, event.CPUHighAverage:
			ev[FeatCPUHigh] = true
		case event.EBGPHoldTimerExpired:
			ev[FeatHTE] = true
		case event.CustomerResetSession:
			ev[FeatReset] = true
		case event.RouterReboot:
			ev[FeatReboot] = true
		}
	})
	return ev
}

// Group is a set of flaps that may share a common root cause: same line
// card, within the grouping window.
type Group struct {
	Card      string // "router:slot"
	Start     time.Time
	Diagnoses []engine.Diagnosis
}

// GroupByCard clusters diagnosed flaps by the line card carrying the
// session's attachment interface, splitting clusters that spread beyond
// window (the paper's line-card crash bunched 133 flaps within 3 min).
func GroupByCard(topo *netmodel.Topology, ds []engine.Diagnosis, window time.Duration) []Group {
	byCard := map[string][]engine.Diagnosis{}
	for _, d := range ds {
		loc := d.Symptom.Loc
		addr, err := netip.ParseAddr(loc.B)
		if err != nil {
			continue // neighbor is not an address: no attachment card
		}
		ifc, ok := topo.InterfaceForNeighborIP(loc.A, addr)
		if !ok {
			continue
		}
		byCard[ifc.Card.ID()] = append(byCard[ifc.Card.ID()], d)
	}
	cards := make([]string, 0, len(byCard))
	for card := range byCard {
		cards = append(cards, card)
	}
	sort.Strings(cards)

	var groups []Group
	for _, card := range cards {
		ds := byCard[card]
		sort.Slice(ds, func(i, j int) bool { return ds[i].Symptom.Start.Before(ds[j].Symptom.Start) })
		var cur *Group
		for _, d := range ds {
			if cur == nil || d.Symptom.Start.Sub(cur.Start) > window {
				groups = append(groups, Group{Card: card, Start: d.Symptom.Start})
				cur = &groups[len(groups)-1]
			}
			cur.Diagnoses = append(cur.Diagnoses, d)
		}
	}
	return groups
}

// ClassifyGroup runs joint Bayesian inference over a group: each flap
// contributes its evidence vector, and the group-level same-card feature
// is set when the group holds minMulti or more flaps on distinct
// sessions.
func ClassifyGroup(cfg *bayes.Config, g Group, minMulti int) (bayes.Result, error) {
	multi := len(g.Diagnoses) >= minMulti
	evs := make([]bayes.Evidence, len(g.Diagnoses))
	for i, d := range g.Diagnoses {
		ev := Features(d)
		if multi {
			ev[FeatSameCardMulti] = true
		}
		evs[i] = ev
	}
	return cfg.ClassifyJoint(evs)
}
