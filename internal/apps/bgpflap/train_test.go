package bgpflap

import (
	"testing"
	"time"

	"grca/internal/platform"
	"grca/internal/simnet"
)

// TestBootstrapTraining reproduces the §II-D.2 bootstrap: a Bayesian
// classifier trained on rule-based diagnoses agrees with the rule-based
// verdicts on the bulk of the corpus.
func TestBootstrapTraining(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 77, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	examples := TrainingSet(ds)
	if len(examples) < 200 {
		t.Fatalf("training set = %d examples", len(examples))
	}
	cfg, err := TrainedConfig(ds)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for _, diag := range ds {
		want := ClassOf(diag.Primary())
		if want == "" {
			continue
		}
		res, err := cfg.Classify(Features(diag))
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Best == want {
			agree++
		}
	}
	if acc := float64(agree) / float64(total); acc < 0.9 {
		t.Errorf("trained classifier agreement = %.3f, want ≥ 0.9", acc)
	}
}

func TestClassOfMapping(t *testing.T) {
	if ClassOf("Interface flap") != ClassIface {
		t.Error("interface flap mapping")
	}
	if ClassOf("CPU high (spike)") != ClassCPU {
		t.Error("cpu mapping")
	}
	if ClassOf("Customer reset session") != ClassCustomer {
		t.Error("customer mapping")
	}
	if ClassOf("Unknown") != "" || ClassOf("Router reboot") != "" {
		t.Error("unmapped labels must return empty")
	}
}
