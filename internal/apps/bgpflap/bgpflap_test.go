package bgpflap

import (
	"testing"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func TestBuildGraphShape(t *testing.T) {
	lib, g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != event.EBGPFlap {
		t.Errorf("root = %q", g.Root)
	}
	// Fig. 4 structure: five direct causes of the flap, four of the HTE,
	// the layer escalation chain, and three layer-1 rules.
	if got := len(g.RulesFor(event.EBGPFlap)); got != 5 {
		t.Errorf("direct rules = %d, want 5", got)
	}
	if got := len(g.RulesFor(event.EBGPHoldTimerExpired)); got != 4 {
		t.Errorf("HTE rules = %d, want 4", got)
	}
	if got := len(g.RulesFor(event.InterfaceFlap)); got != 3 {
		t.Errorf("layer-1 rules = %d, want 3", got)
	}
	if err := g.Validate(lib); err != nil {
		t.Fatal(err)
	}
	// The paper's priority example: layer flap (180) outranks CPU rules.
	for _, r := range g.RulesFor(event.EBGPHoldTimerExpired) {
		if r.Diagnostic == event.CPUHighSpike && r.Priority >= 180 {
			t.Error("CPU priority must stay below the layer flap's 180")
		}
	}
	// Application events defined (Table III).
	for _, name := range []string{event.EBGPFlap, event.CustomerResetSession, event.EBGPHoldTimerExpired} {
		if _, ok := lib.Get(name); !ok {
			t.Errorf("missing app event %q", name)
		}
	}
}

func TestBayesConfig(t *testing.T) {
	cfg, err := BayesConfig()
	if err != nil {
		t.Fatal(err)
	}
	classes := cfg.Classes()
	want := map[string]bool{ClassCPU: true, ClassIface: true, ClassLineCard: true, ClassCustomer: true}
	for _, c := range classes {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing classes: %v", want)
	}
}

func TestFeaturesExtraction(t *testing.T) {
	sym := &event.Instance{Name: event.EBGPFlap}
	root := &engine.Node{Event: event.EBGPFlap, Instance: sym, Children: []*engine.Node{
		{Event: event.EBGPHoldTimerExpired, Children: []*engine.Node{
			{Event: event.CPUHighSpike},
		}},
		{Event: event.InterfaceFlap},
	}}
	ev := Features(engine.Diagnosis{Symptom: sym, Root: root})
	if !ev[FeatHTE] || !ev[FeatCPUHigh] || !ev[FeatInterfaceFlap] {
		t.Errorf("features = %v", ev)
	}
	if ev[FeatReset] || ev[FeatReboot] {
		t.Errorf("spurious features = %v", ev)
	}
}

// TestLineCardStudy reproduces the §IV-C result shape end to end: the
// rule-based engine attributes the crash flaps to "Interface flap"; the
// Bayesian engine, classifying the same-card group jointly, identifies the
// Line-card Issue.
func TestLineCardStudy(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 23, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 12,
		Duration: 3 * 24 * time.Hour, LineCardCrash: true, BGPFlapIncidents: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()

	// Identify the crash flaps via ground truth.
	crashWhere := map[string]bool{}
	var crashAt time.Time
	for _, tr := range d.Truth {
		if tr.Kind == "line-card crash" {
			crashWhere[tr.Where] = true
			crashAt = tr.At
		}
	}
	if len(crashWhere) < 4 {
		t.Fatalf("crash sessions = %d", len(crashWhere))
	}

	var crashDiags []engine.Diagnosis
	for _, diag := range ds {
		if crashWhere[diag.Symptom.Loc.String()] &&
			diag.Symptom.Start.Sub(crashAt) < 10*time.Minute &&
			crashAt.Sub(diag.Symptom.Start) < 10*time.Minute {
			crashDiags = append(crashDiags, diag)
			if diag.Primary() != event.InterfaceFlap {
				t.Errorf("rule-based verdict for crash flap = %q, want Interface flap", diag.Primary())
			}
		}
	}
	if len(crashDiags) < 4 {
		t.Fatalf("crash diagnoses = %d", len(crashDiags))
	}

	groups := GroupByCard(sys.Topo, ds, 3*time.Minute)
	cfg, err := BayesConfig()
	if err != nil {
		t.Fatal(err)
	}
	foundLineCard := false
	for _, g := range groups {
		res, err := ClassifyGroup(cfg, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == ClassLineCard {
			foundLineCard = true
			if len(g.Diagnoses) < 4 {
				t.Errorf("line-card group size = %d", len(g.Diagnoses))
			}
		}
	}
	if !foundLineCard {
		t.Error("Bayesian inference did not surface the line-card issue")
	}
	// Singleton interface-flap groups must NOT classify as line card.
	for _, g := range groups {
		if len(g.Diagnoses) == 1 && g.Diagnoses[0].Primary() == event.InterfaceFlap {
			res, err := ClassifyGroup(cfg, g, 4)
			if err != nil {
				t.Fatal(err)
			}
			if res.Best == ClassLineCard {
				t.Errorf("lone flap classified as line card")
			}
		}
	}
}

func TestGroupByCardSkipsUnresolvable(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{Seed: 2, PoPs: 2, PERsPerPoP: 1,
		SessionsPerPER: 4, Duration: 2 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sym := &event.Instance{Name: event.EBGPFlap,
		Loc: locus.Between(locus.RouterNeighbor, "ghost", "not-an-ip")}
	groups := GroupByCard(sys.Topo, []engine.Diagnosis{{Symptom: sym, Root: &engine.Node{Instance: sym}}}, time.Minute)
	if len(groups) != 0 {
		t.Errorf("unresolvable symptom grouped: %+v", groups)
	}
}
