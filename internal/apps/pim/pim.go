// Package pim packages the PIM adjacency-change RCA application for
// Multicast VPN service of paper §III-C: the application-specific events
// of Table VII and the diagnosis graph of Fig. 6 in the
// rule-specification language.
//
// The symptom is a PE losing its PIM neighbor adjacency with another PE of
// the same MVPN. Root causes span router configuration changes (customers
// provisioned or removed), problems on the provider–customer link, routing
// changes within the backbone, and problems on the PER uplinks — exactly
// the classes of Table VIII. The paper built this application in under ten
// hours by reusing Knowledge Library events and rules; here the whole
// graph is the Spec constant below.
package pim

import (
	"fmt"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/rulespec"
	"grca/internal/store"
)

// Spec is the application's rule-specification source (Tables VII–VIII,
// Fig. 6). All joins run at router level: the adjacency location (the
// reporting PE and its peer PE) expands through the OSPF simulation to
// every router on the paths between them, so backbone evidence anywhere
// along the way is considered.
const Spec = `
app "pim-mvpn" root "PIM Neighbor Adjacency Change"

event "PIM Neighbor Adjacency Change" {
    loctype  router:neighbor
    source   syslog
    desc     "a PE lost a neighbor adjacency with another PE in the MVPN"
}
event "PIM Configuration change" {
    loctype  router
    source   "router command logs"
    desc     "a MVPN is either provisioned or de-provisioned on a router"
}
event "Uplink PIM adjacency change" {
    loctype  router:neighbor
    source   syslog
    desc     "a PE lost a neighbor adjacency with its directly connected router on its uplink to the backbone"
}

rule "PIM Neighbor Adjacency Change" <- "PIM Configuration change" {
    priority 200
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 5s
}
rule "PIM Neighbor Adjacency Change" <- "Uplink PIM adjacency change" {
    priority 150
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 60s
}
rule "PIM Neighbor Adjacency Change" <- "Interface flap" {
    priority 140
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 5s
    note     "customer-facing interface flap on either PE"
}
rule "PIM Neighbor Adjacency Change" <- "Router Cost In/Out" {
    priority 130
    join     router
    symptom  start/start expand 60s 10s
    diag     start/end   expand 5s 120s
}
rule "PIM Neighbor Adjacency Change" <- "Link Cost Out/Down" {
    priority 120
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 5s
}
rule "PIM Neighbor Adjacency Change" <- "Link Cost In/Up" {
    priority 110
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 5s
}
rule "PIM Neighbor Adjacency Change" <- "OSPF re-convergence event" {
    priority 100
    join     router
    symptom  start/start expand 30s 10s
    diag     start/end   expand 5s 5s
}
`

// Build parses the specification against the Knowledge Library.
func Build() (*event.Library, *dgraph.Graph, error) {
	spec, err := rulespec.Parse(Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("pim: %v", err)
	}
	return spec.Build(event.Knowledge(), dgraph.Knowledge())
}

// NewEngine builds the application's RCA engine over collected data.
func NewEngine(st store.Store, view *netstate.View) (*engine.Engine, error) {
	_, g, err := Build()
	if err != nil {
		return nil, err
	}
	return engine.New(st, view, g), nil
}

// DisplayLabel maps diagnosis labels to the row names of Table VIII.
func DisplayLabel(primary string) string {
	switch primary {
	case event.PIMConfigChange:
		return "PIM Configuration Change (to add and remove customers)"
	case event.PIMUplinkAdjacencyChange:
		return "Uplink PIM adjacency loss"
	case event.InterfaceFlap:
		return "interface (customer facing) flap"
	case event.OSPFReconvergence:
		return "OSPF re-convergence"
	}
	return primary
}
