package pim

import (
	"testing"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
)

func TestBuildGraphShape(t *testing.T) {
	lib, g, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Root != event.PIMAdjacencyChange {
		t.Errorf("root = %q", g.Root)
	}
	rules := g.RulesFor(event.PIMAdjacencyChange)
	if len(rules) != 7 {
		t.Fatalf("rules = %d, want 7 (Fig. 6 classes)", len(rules))
	}
	if err := g.Validate(lib); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{event.PIMAdjacencyChange, event.PIMConfigChange,
		event.PIMUplinkAdjacencyChange} {
		if _, ok := lib.Get(name); !ok {
			t.Errorf("missing app event %q (Table VII)", name)
		}
	}
	// Every rule joins at router level: the PE-pair location expands along
	// the backbone path.
	prios := map[string]int{}
	for _, r := range rules {
		if r.JoinLevel != locus.Router {
			t.Errorf("rule %q joins at %v, want router", r.Key(), r.JoinLevel)
		}
		prios[r.Diagnostic] = r.Priority
	}
	// Priority ordering: config change > uplink loss > customer-facing
	// flap > router cost > link cost out > link cost in > reconvergence.
	order := []string{
		event.PIMConfigChange, event.PIMUplinkAdjacencyChange, event.InterfaceFlap,
		event.RouterCostInOut, event.LinkCostOutDown, event.LinkCostInUp,
		event.OSPFReconvergence,
	}
	for i := 1; i < len(order); i++ {
		if prios[order[i-1]] <= prios[order[i]] {
			t.Errorf("priority inversion: %q (%d) vs %q (%d)",
				order[i-1], prios[order[i-1]], order[i], prios[order[i]])
		}
	}
}

func TestDisplayLabelMapping(t *testing.T) {
	cases := map[string]string{
		event.PIMConfigChange:          "PIM Configuration Change (to add and remove customers)",
		event.PIMUplinkAdjacencyChange: "Uplink PIM adjacency loss",
		event.InterfaceFlap:            "interface (customer facing) flap",
		event.OSPFReconvergence:        "OSPF re-convergence",
		event.RouterCostInOut:          event.RouterCostInOut,
		engine.Unknown:                 engine.Unknown,
	}
	for in, want := range cases {
		if got := DisplayLabel(in); got != want {
			t.Errorf("DisplayLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
