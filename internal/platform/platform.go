// Package platform assembles the full G-RCA pipeline: it parses the
// configuration archive into the topology, streams every raw feed through
// the Data Collector, reconstructs routing state, registers service
// deployments with the spatial model, and hands out per-application RCA
// engines. It is the glue used by the command-line tools, the examples,
// and the benchmark harness.
package platform

import (
	"net/netip"
	"time"

	"grca/internal/apps/cdn"
	"grca/internal/collector"
	"grca/internal/engine"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/simnet"
	"grca/internal/store"
)

// feedOrder lists every collector source in ingestion order. Routing feeds
// go first so that state reconstruction does not depend on map iteration.
var feedOrder = []string{
	collector.SourceOSPFMon,
	collector.SourceBGPMon,
	collector.SourceSyslog,
	collector.SourceSNMP,
	collector.SourceTACACS,
	collector.SourceWorkflow,
	collector.SourceLayer1,
	collector.SourcePerfMon,
	collector.SourceKeynote,
	collector.SourceServer,
}

// System is an assembled G-RCA instance.
type System struct {
	Topo      *netmodel.Topology
	Store     store.Store
	Collector *collector.Collector
	View      *netstate.View
}

// Options tunes assembly.
type Options struct {
	// GenericSignatures enables the per-signature event series needed by
	// the correlation-mining studies (§IV-B).
	GenericSignatures bool
	// Thresholds overrides the collector's detector thresholds.
	Thresholds *collector.Thresholds
}

// FromDataset builds a System from a simulated dataset: the topology is
// re-derived from the rendered configuration archive (not taken from the
// simulator's internal object graph), so the full config-parsing path is
// exercised exactly as it would be against a real archive.
func FromDataset(d *simnet.Dataset, opts Options) (*System, error) {
	return BundleFromDataset(d).Assemble(opts)
}

// Deployment derives the CDN deployment descriptor from a dataset.
func Deployment(d *simnet.Dataset) cdn.Deployment {
	dep := cdn.Deployment{
		Node:   d.CDNNode,
		Server: d.CDNServer,
		Router: d.CDNRouter,
		Agents: map[string]netip.Addr{},
	}
	for _, a := range d.Agents {
		dep.Agents[a] = d.AgentAddr[a]
		dep.Prefixes = append(dep.Prefixes, d.AgentPrefix[a])
	}
	return dep
}

// ---------------------------------------------------------------------
// Ground-truth scoring
// ---------------------------------------------------------------------

// Score compares diagnoses against the dataset's ground truth for one
// study.
type Score struct {
	Total     int // symptoms with a matching truth record
	Correct   int // Primary matched the expected label
	Unmatched int // symptoms with no truth record (cross-study spillover)
}

// Accuracy returns the fraction of matched symptoms diagnosed correctly.
func (s Score) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Total)
}

// ExpectedLabel maps a ground-truth kind to the Primary label rule-based
// reasoning should produce.
func ExpectedLabel(kind string) string {
	switch kind {
	case "external", "Unknown":
		return engine.Unknown
	case "provisioning bug":
		// The hidden vendor bug presents as a CPU-related flap (§IV-B).
		return "CPU high (spike)"
	case "line-card crash":
		// Rule-based reasoning sees only the interface flaps (§IV-C).
		return "Interface flap"
	}
	return kind
}

// ScoreDiagnoses matches each diagnosis to the nearest truth record for
// the study (same location, within tolerance) and scores Primary labels.
func ScoreDiagnoses(truths []simnet.Truth, study string, ds []engine.Diagnosis, tolerance time.Duration) Score {
	byWhere := map[string][]simnet.Truth{}
	for _, tr := range truths {
		if tr.Study == study {
			byWhere[tr.Where] = append(byWhere[tr.Where], tr)
		}
	}
	var s Score
	for _, d := range ds {
		where := d.Symptom.Loc.String()
		var best *simnet.Truth
		for i := range byWhere[where] {
			tr := &byWhere[where][i]
			delta := d.Symptom.Start.Sub(tr.At)
			if delta < 0 {
				delta = -delta
			}
			if delta <= tolerance && (best == nil || absDelta(d.Symptom.Start, tr.At) < absDelta(d.Symptom.Start, best.At)) {
				best = tr
			}
		}
		if best == nil {
			s.Unmatched++
			continue
		}
		s.Total++
		if d.Primary() == ExpectedLabel(best.Kind) {
			s.Correct++
		}
	}
	return s
}

func absDelta(a, b time.Time) time.Duration {
	d := a.Sub(b)
	if d < 0 {
		return -d
	}
	return d
}
