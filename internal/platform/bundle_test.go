package platform

import (
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/simnet"
)

func TestBundleSaveLoadRoundTrip(t *testing.T) {
	d, err := simnet.Generate(simnet.Config{
		Seed: 31, PoPs: 2, PERsPerPoP: 1, SessionsPerPER: 6,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := BundleFromDataset(d)
	dir := t.TempDir()
	if err := Save(dir, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(b.Start) || got.Duration != b.Duration {
		t.Errorf("window mismatch: %v/%v vs %v/%v", got.Start, got.Duration, b.Start, b.Duration)
	}
	if len(got.Feeds) != len(b.Feeds) {
		t.Fatalf("feeds = %d, want %d", len(got.Feeds), len(b.Feeds))
	}
	for src, text := range b.Feeds {
		if got.Feeds[src] != text {
			t.Errorf("feed %s differs after round trip", src)
		}
	}
	if len(got.Truth) != len(b.Truth) {
		t.Errorf("truth = %d, want %d", len(got.Truth), len(b.Truth))
	}
	if got.CDN.Router != b.CDN.Router || len(got.CDN.Agents) != len(b.CDN.Agents) {
		t.Errorf("cdn deployment mismatch: %+v", got.CDN)
	}

	// The loaded bundle assembles and diagnoses identically.
	sysA, err := b.Assemble(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := got.Assemble(Options{})
	if err != nil {
		t.Fatal(err)
	}
	engA, err := bgpflap.NewEngine(sysA.Store, sysA.View)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := bgpflap.NewEngine(sysB.Store, sysB.View)
	if err != nil {
		t.Fatal(err)
	}
	dsA, dsB := engA.DiagnoseAll(), engB.DiagnoseAll()
	if len(dsA) != len(dsB) {
		t.Fatalf("diagnosis counts differ: %d vs %d", len(dsA), len(dsB))
	}
	for i := range dsA {
		if dsA[i].Primary() != dsB[i].Primary() {
			t.Errorf("diagnosis %d differs: %q vs %q", i, dsA[i].Primary(), dsB[i].Primary())
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load of empty dir succeeded")
	}
}
