package platform

import (
	"testing"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/simnet"
)

// integration fixture: a moderate dataset with all three studies enabled.
func generate(t *testing.T, cfg simnet.Config) (*simnet.Dataset, *System) {
	t.Helper()
	d, err := simnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := FromDataset(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Collector.Malformed.Count != 0 {
		t.Fatalf("malformed lines: %+v", sys.Collector.Malformed)
	}
	return d, sys
}

func TestBGPFlapPipelineAccuracy(t *testing.T) {
	d, sys := generate(t, simnet.Config{
		Seed: 11, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 250,
	})
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	if len(ds) < 230 {
		t.Fatalf("diagnosed %d flaps, want ≈250", len(ds))
	}
	score := ScoreDiagnoses(d.Truth, "bgp", ds, 2*time.Minute)
	if score.Total < 230 {
		t.Fatalf("matched %d of %d", score.Total, len(ds))
	}
	if acc := score.Accuracy(); acc < 0.95 {
		// Dump a few mistakes for debugging.
		shown := 0
		for _, diag := range ds {
			if shown >= 8 {
				break
			}
			where := diag.Symptom.Loc.String()
			for _, tr := range d.Truth {
				if tr.Study == "bgp" && tr.Where == where &&
					absDelta(tr.At, diag.Symptom.Start) <= 2*time.Minute &&
					diag.Primary() != ExpectedLabel(tr.Kind) {
					t.Logf("MISS %s at %v: got %q want %q (label %q)",
						where, diag.Symptom.Start, diag.Primary(), ExpectedLabel(tr.Kind), diag.Label())
					shown++
					break
				}
			}
		}
		t.Errorf("BGP diagnosis accuracy = %.3f, want ≥ 0.95", acc)
	}
}

func TestCDNPipelineAccuracy(t *testing.T) {
	d, sys := generate(t, simnet.Config{
		Seed: 13, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 6,
		Duration: 7 * 24 * time.Hour, CDNIncidents: 150,
	})
	eng, err := cdn.NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	if len(ds) < 130 {
		t.Fatalf("diagnosed %d RTT degradations, want ≈150", len(ds))
	}
	score := ScoreDiagnoses(d.Truth, "cdn", ds, 10*time.Minute)
	if score.Total < 130 {
		t.Fatalf("matched %d of %d (unmatched %d)", score.Total, len(ds), score.Unmatched)
	}
	if acc := score.Accuracy(); acc < 0.9 {
		shown := 0
		for _, diag := range ds {
			if shown >= 8 {
				break
			}
			where := diag.Symptom.Loc.String()
			for _, tr := range d.Truth {
				if tr.Study == "cdn" && tr.Where == where &&
					absDelta(tr.At, diag.Symptom.Start) <= 10*time.Minute &&
					diag.Primary() != ExpectedLabel(tr.Kind) {
					t.Logf("MISS %s at %v: got %q want %q", where, diag.Symptom.Start, diag.Primary(), ExpectedLabel(tr.Kind))
					shown++
					break
				}
			}
		}
		t.Errorf("CDN diagnosis accuracy = %.3f, want ≥ 0.9", acc)
	}
}

func TestPIMPipelineAccuracy(t *testing.T) {
	d, sys := generate(t, simnet.Config{
		Seed: 17, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		MVPNFraction: 0.4, Duration: 7 * 24 * time.Hour, PIMIncidents: 150,
	})
	eng, err := pim.NewEngine(sys.Store, sys.View)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	if len(ds) < 130 {
		t.Fatalf("diagnosed %d adjacency changes, want ≈150", len(ds))
	}
	score := ScoreDiagnoses(d.Truth, "pim", ds, 2*time.Minute)
	if score.Total < 130 {
		t.Fatalf("matched %d of %d (unmatched %d)", score.Total, len(ds), score.Unmatched)
	}
	if acc := score.Accuracy(); acc < 0.9 {
		shown := 0
		for _, diag := range ds {
			if shown >= 10 {
				break
			}
			where := diag.Symptom.Loc.String()
			for _, tr := range d.Truth {
				if tr.Study == "pim" && tr.Where == where &&
					absDelta(tr.At, diag.Symptom.Start) <= 2*time.Minute &&
					diag.Primary() != ExpectedLabel(tr.Kind) {
					t.Logf("MISS %s at %v: got %q want %q", where, diag.Symptom.Start, diag.Primary(), ExpectedLabel(tr.Kind))
					shown++
					break
				}
			}
		}
		t.Errorf("PIM diagnosis accuracy = %.3f, want ≥ 0.9", acc)
	}
	// The paper classifies >98% of PIM events; at minimum the unknown
	// share must stay small.
	b := engine.Breakdown(ds)
	if b[engine.Unknown] > 10 {
		t.Errorf("unknown share = %.2f%%, want small (paper: <2%%)", b[engine.Unknown])
	}
}

func TestDisplayLabels(t *testing.T) {
	if got := cdn.DisplayLabel(engine.Unknown); got != "Outside of our network (Unknown)" {
		t.Errorf("cdn unknown label = %q", got)
	}
	if got := pim.DisplayLabel(event.InterfaceFlap); got != "interface (customer facing) flap" {
		t.Errorf("pim iface label = %q", got)
	}
	if got := bgpflap.DisplayLabel(event.EBGPHoldTimerExpired); got != "eBGP HTE (due to unknown reasons)" {
		t.Errorf("bgp HTE label = %q", got)
	}
	if got := bgpflap.DisplayLabel(event.InterfaceFlap); got != event.InterfaceFlap {
		t.Errorf("bgp passthrough label = %q", got)
	}
}
