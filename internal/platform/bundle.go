package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"grca/internal/apps/cdn"
	"grca/internal/collector"
	"grca/internal/conf"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/simnet"
	"grca/internal/store"
)

// Bundle is a self-contained dataset: the configuration archive, the raw
// feeds, the service deployment metadata, and (for simulated corpora) the
// ground truth. It is what cmd/grca-sim writes and cmd/grca reads.
type Bundle struct {
	Configs   []conf.DeviceConfig
	Inventory string
	Feeds     map[string]string
	Start     time.Time
	Duration  time.Duration
	CDN       cdn.Deployment
	Truth     []simnet.Truth
}

// BundleFromDataset packages a simulated dataset.
func BundleFromDataset(d *simnet.Dataset) Bundle {
	return Bundle{
		Configs:   d.Configs,
		Inventory: d.Inventory,
		Feeds:     d.Feeds,
		Start:     d.Config.Start,
		Duration:  d.Config.Duration,
		CDN:       Deployment(d),
		Truth:     d.Truth,
	}
}

// Assemble runs the full pipeline over the bundle.
func (b Bundle) Assemble(opts Options) (*System, error) {
	topo, err := conf.Parse(b.Configs, b.Inventory)
	if err != nil {
		return nil, fmt.Errorf("platform: config archive: %v", err)
	}
	sys, err := assemble(topo, b.Feeds, b.Start, b.Duration, opts)
	if err != nil {
		return nil, err
	}
	cdn.Register(sys.View, b.CDN)
	cdn.MaterializeEgressChanges(sys.Collector, b.CDN, b.Start, b.Start.Add(b.Duration))
	return sys, nil
}

// manifest is the JSON sidecar of an on-disk bundle.
type manifest struct {
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration"`
	CDN      cdn.Deployment `json:"cdn"`
	Truth    []simnet.Truth `json:"truth,omitempty"`
}

// Save writes the bundle under dir:
//
//	dir/configs.archive   (conf.WriteArchive format)
//	dir/feeds/<source>.log
//	dir/manifest.json
func Save(dir string, b Bundle) error {
	if err := os.MkdirAll(filepath.Join(dir, "feeds"), 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "configs.archive"))
	if err != nil {
		return err
	}
	if err := conf.WriteArchive(f, b.Configs, b.Inventory); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	srcs := make([]string, 0, len(b.Feeds))
	for src := range b.Feeds {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		if err := os.WriteFile(filepath.Join(dir, "feeds", src+".log"), []byte(b.Feeds[src]), 0o644); err != nil {
			return err
		}
	}
	m := manifest{Start: b.Start, Duration: b.Duration, CDN: b.CDN, Truth: b.Truth}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// Load reads a bundle previously written by Save.
func Load(dir string) (Bundle, error) {
	var b Bundle
	f, err := os.Open(filepath.Join(dir, "configs.archive"))
	if err != nil {
		return b, err
	}
	defer f.Close()
	configs, inventory, err := conf.ReadArchive(f)
	if err != nil {
		return b, err
	}
	b.Configs, b.Inventory = configs, inventory

	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return b, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return b, fmt.Errorf("platform: manifest: %v", err)
	}
	b.Start, b.Duration, b.CDN, b.Truth = m.Start, m.Duration, m.CDN, m.Truth

	b.Feeds = map[string]string{}
	entries, err := os.ReadDir(filepath.Join(dir, "feeds"))
	if err != nil {
		return b, err
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".log" {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, "feeds", name))
		if err != nil {
			return b, err
		}
		b.Feeds[name[:len(name)-len(".log")]] = string(text)
	}
	return b, nil
}

// assemble is the shared pipeline core.
func assemble(topo *netmodel.Topology, feeds map[string]string, start time.Time, duration time.Duration, opts Options) (*System, error) {
	st := store.New()
	c := collector.New(topo, st, start.Year())
	c.WindowStart, c.WindowEnd = start, start.Add(duration)
	c.EmitGenericSignatures = opts.GenericSignatures
	if opts.Thresholds != nil {
		c.Thresholds = *opts.Thresholds
	}
	for _, src := range feedOrder {
		feed, ok := feeds[src]
		if !ok {
			continue
		}
		if err := c.Ingest(src, strings.NewReader(feed)); err != nil {
			return nil, fmt.Errorf("platform: ingest %s: %v", src, err)
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	view := netstate.NewView(topo, c.OSPF, c.BGP)
	return &System{Topo: topo, Store: st, Collector: c, View: view}, nil
}
