package netmodel

import (
	"fmt"
	"net/netip"
	"strings"
)

// AliasTable canonicalizes the many ways different management systems refer
// to the same device. The paper (§II-A) notes that "the same device may be
// referenced in different ways by different systems or at different network
// layers (by a circuit identifier, an IP address, or an interface name)";
// the Data Collector resolves all of them to canonical names at ingest.
type AliasTable struct {
	byAlias map[string]string // normalized alias → canonical router name
	byIP    map[netip.Addr]string
}

// NewAliasTable builds the alias table for a topology, deriving the
// standard alias set for every router: the canonical name itself, its
// upper-case form, a fully-qualified domain form "<name>.net.example.com",
// and the loopback address.
func NewAliasTable(t *Topology) *AliasTable {
	a := &AliasTable{byAlias: map[string]string{}, byIP: map[netip.Addr]string{}}
	for name, r := range t.Routers {
		a.Add(name, name)
		a.Add(name+".net.example.com", name)
		if r.Loopback.IsValid() {
			a.byIP[r.Loopback] = name
		}
	}
	return a
}

// Add registers alias → canonical. Aliases are matched case-insensitively.
func (a *AliasTable) Add(alias, canonical string) {
	a.byAlias[strings.ToLower(strings.TrimSpace(alias))] = canonical
}

// Canonical resolves any known alias (case-insensitive, FQDN, or textual IP)
// to the canonical router name.
func (a *AliasTable) Canonical(ref string) (string, error) {
	ref = strings.TrimSpace(ref)
	if name, ok := a.byAlias[strings.ToLower(ref)]; ok {
		return name, nil
	}
	if ip, err := netip.ParseAddr(ref); err == nil {
		if name, ok := a.byIP[ip]; ok {
			return name, nil
		}
	}
	return "", fmt.Errorf("netmodel: unknown device reference %q", ref)
}

// CanonicalBytes resolves an alias given as raw feed bytes without
// allocating in the common cases: an already-normalized reference hits
// the map directly, and an upper-case ASCII reference is folded into the
// caller's scratch buffer first. ok=false means the reference needs the
// full Canonical treatment — unknown, an IP-address reference, or
// non-ASCII — and the caller must fall back to Canonical. The (possibly
// grown) scratch buffer is returned for reuse.
func (a *AliasTable) CanonicalBytes(ref, scratch []byte) (name string, scratch2 []byte, ok bool) {
	// Trim ASCII spaces and tabs; anything fancier at the boundaries
	// (other control bytes, possible unicode whitespace) is a miss.
	for len(ref) > 0 && (ref[0] == ' ' || ref[0] == '\t') {
		ref = ref[1:]
	}
	for len(ref) > 0 && (ref[len(ref)-1] == ' ' || ref[len(ref)-1] == '\t') {
		ref = ref[:len(ref)-1]
	}
	if len(ref) == 0 {
		return "", scratch, false
	}
	if c := ref[0]; c < 0x20 || c >= 0x80 {
		return "", scratch, false
	}
	if c := ref[len(ref)-1]; c < 0x20 || c >= 0x80 {
		return "", scratch, false
	}
	if name, ok := a.byAlias[string(ref)]; ok { // no-alloc map probe
		return name, scratch, true
	}
	// Fold upper-case ASCII and retry; refs with non-ASCII bytes would
	// need unicode-aware lowering, so they miss instead.
	scratch = scratch[:0]
	for _, c := range ref {
		if c >= 0x80 {
			return "", scratch, false
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		scratch = append(scratch, c)
	}
	if name, ok := a.byAlias[string(scratch)]; ok {
		return name, scratch, true
	}
	return "", scratch, false
}

// CanonicalIP resolves a loopback address to its router.
func (a *AliasTable) CanonicalIP(ip netip.Addr) (string, bool) {
	name, ok := a.byIP[ip]
	return name, ok
}
