package netmodel

import (
	"net/netip"
	"testing"
)

// buildTestTopo constructs a small topology:
//
//	r1(core) --- l1 --- r2(core) --- l2 --- r3(per) --- customer cust1
//
// l1 rides two SONET circuits (APS pair), l2 one optical-mesh circuit.
func buildTestTopo(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	mk := func(name, pop string, role Role, loop string) *Router {
		r := &Router{Name: name, PoP: pop, Role: role, Loopback: netip.MustParseAddr(loop), TZName: "UTC"}
		if err := topo.AddRouter(r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mk("nyc-cr1", "nyc", RoleCore, "10.255.0.1")
	r2 := mk("chi-cr1", "chi", RoleCore, "10.255.0.2")
	r3 := mk("chi-per1", "chi", RoleProviderEdge, "10.255.0.3")
	mk("cust1", "ext", RoleCustomer, "192.0.2.1")

	c1 := topo.AddCard(r1)
	c2 := topo.AddCard(r2)
	c2b := topo.AddCard(r2)
	c3 := topo.AddCard(r3)

	p30a := netip.MustParsePrefix("10.0.0.0/30")
	i1, err := topo.AddInterface(c1, "so-0/0/0", p30a, netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := topo.AddInterface(c2, "so-0/0/0", p30a, netip.MustParseAddr("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	p30b := netip.MustParsePrefix("10.0.0.4/30")
	i3, _ := topo.AddInterface(c2b, "so-1/0/0", p30b, netip.MustParseAddr("10.0.0.5"))
	i4, _ := topo.AddInterface(c3, "so-0/0/0", p30b, netip.MustParseAddr("10.0.0.6"))
	i4.Uplink = true

	p30c := netip.MustParsePrefix("10.1.0.0/30")
	i5, _ := topo.AddInterface(c3, "se-0/1/0", p30c, netip.MustParseAddr("10.1.0.1"))
	i5.CustomerFacing = true
	i5.Peer = "cust1"
	i5.PeerIP = netip.MustParseAddr("10.1.0.2")

	l1, err := topo.Connect("l1", i1, i2)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := topo.Connect("l2", i3, i4)
	if err != nil {
		t.Fatal(err)
	}
	topo.AddPhysical("l1-aps-w", l1, L1SONET, "sonet-n1", "sonet-n2")
	topo.AddPhysical("l1-aps-p", l1, L1SONET, "sonet-n1", "sonet-n3")
	topo.AddPhysical("l2-c1", l2, L1OpticalMesh, "mesh-a", "mesh-b")
	return topo
}

func TestTopologyBasics(t *testing.T) {
	topo := buildTestTopo(t)
	if got := len(topo.Routers); got != 4 {
		t.Fatalf("routers = %d, want 4", got)
	}
	if _, ok := topo.InterfaceByName("nyc-cr1", "so-0/0/0"); !ok {
		t.Error("InterfaceByName failed")
	}
	if _, ok := topo.InterfaceByName("nyc-cr1", "nope"); ok {
		t.Error("InterfaceByName found nonexistent interface")
	}
	if _, ok := topo.InterfaceByName("nope", "so-0/0/0"); ok {
		t.Error("InterfaceByName found interface on nonexistent router")
	}
	names := topo.RouterNames()
	if len(names) != 4 || names[0] > names[1] {
		t.Errorf("RouterNames not sorted: %v", names)
	}
}

func TestDuplicateDetection(t *testing.T) {
	topo := buildTestTopo(t)
	if err := topo.AddRouter(&Router{Name: "nyc-cr1"}); err == nil {
		t.Error("duplicate router accepted")
	}
	r := topo.Routers["nyc-cr1"]
	c := r.Cards[0]
	if _, err := topo.AddInterface(c, "dup", netip.MustParsePrefix("10.9.0.0/30"), netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Error("duplicate interface IP accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	topo := buildTestTopo(t)
	i1, _ := topo.InterfaceByName("nyc-cr1", "so-0/0/0")
	i4, _ := topo.InterfaceByName("chi-per1", "so-0/0/0")
	if _, err := topo.Connect("bad", i1, i4); err == nil {
		t.Error("Connect accepted endpoints on different subnets")
	}
	i2, _ := topo.InterfaceByName("chi-cr1", "so-0/0/0")
	if _, err := topo.Connect("l1", i1, i2); err == nil {
		t.Error("Connect accepted duplicate link ID")
	}
}

func TestNeighborIPConversion(t *testing.T) {
	topo := buildTestTopo(t)
	// The customer neighbor 10.1.0.2 should resolve to the customer-facing
	// interface se-0/1/0 on chi-per1 (paper §II-B item 2).
	ifc, ok := topo.InterfaceForNeighborIP("chi-per1", netip.MustParseAddr("10.1.0.2"))
	if !ok {
		t.Fatal("InterfaceForNeighborIP failed")
	}
	if ifc.Name != "se-0/1/0" || !ifc.CustomerFacing {
		t.Errorf("wrong interface: %+v", ifc)
	}
	// Must not match the interface's own address.
	if _, ok := topo.InterfaceForNeighborIP("chi-per1", netip.MustParseAddr("10.1.0.1")); ok {
		t.Error("matched own address as neighbor")
	}
	if _, ok := topo.InterfaceForNeighborIP("chi-per1", netip.MustParseAddr("172.16.0.1")); ok {
		t.Error("matched unrelated address")
	}
	if _, ok := topo.InterfaceForNeighborIP("nope", netip.MustParseAddr("10.1.0.2")); ok {
		t.Error("matched on unknown router")
	}
}

func TestCrossLayerMapping(t *testing.T) {
	topo := buildTestTopo(t)
	l1 := topo.Links["l1"]
	if len(l1.Phys) != 2 {
		t.Fatalf("l1 physical circuits = %d, want 2 (APS pair)", len(l1.Phys))
	}
	devs := topo.Layer1For(l1)
	if len(devs) != 3 { // sonet-n1 shared between working and protect
		t.Errorf("layer-1 devices for l1 = %d, want 3 (deduplicated)", len(devs))
	}
	l2 := topo.Links["l2"]
	if devs := topo.Layer1For(l2); len(devs) != 2 {
		t.Errorf("layer-1 devices for l2 = %d, want 2", len(devs))
	}
}

func TestLinkOther(t *testing.T) {
	topo := buildTestTopo(t)
	l1 := topo.Links["l1"]
	if o := l1.Other("nyc-cr1"); o == nil || o.Router.Name != "chi-cr1" {
		t.Error("Other from A end wrong")
	}
	if o := l1.Other("chi-cr1"); o == nil || o.Router.Name != "nyc-cr1" {
		t.Error("Other from B end wrong")
	}
	if o := l1.Other("chi-per1"); o != nil {
		t.Error("Other matched non-endpoint")
	}
}

func TestUplinks(t *testing.T) {
	topo := buildTestTopo(t)
	ups := topo.Uplinks("chi-per1")
	if len(ups) != 1 || ups[0].Name != "so-0/0/0" {
		t.Errorf("Uplinks = %v", ups)
	}
	if ups := topo.Uplinks("nyc-cr1"); len(ups) != 0 {
		t.Errorf("core router has uplinks: %v", ups)
	}
	if ups := topo.Uplinks("unknown"); ups != nil {
		t.Errorf("unknown router uplinks = %v", ups)
	}
}

func TestLinkBySubnet(t *testing.T) {
	topo := buildTestTopo(t)
	l, ok := topo.LinkBySubnet(netip.MustParseAddr("10.0.0.5"))
	if !ok || l.ID != "l2" {
		t.Errorf("LinkBySubnet = %v, %v", l, ok)
	}
	if _, ok := topo.LinkBySubnet(netip.MustParseAddr("203.0.113.9")); ok {
		t.Error("LinkBySubnet matched unknown address")
	}
}

func TestAliasTable(t *testing.T) {
	topo := buildTestTopo(t)
	at := NewAliasTable(topo)
	cases := []string{"nyc-cr1", "NYC-CR1", "nyc-cr1.net.example.com", "10.255.0.1", "  nyc-cr1 "}
	for _, ref := range cases {
		got, err := at.Canonical(ref)
		if err != nil || got != "nyc-cr1" {
			t.Errorf("Canonical(%q) = %q, %v", ref, got, err)
		}
	}
	if _, err := at.Canonical("no-such-device"); err == nil {
		t.Error("Canonical accepted unknown reference")
	}
	if _, err := at.Canonical("198.51.100.77"); err == nil {
		t.Error("Canonical accepted unknown IP")
	}
	at.Add("CIRCUIT-00042", "chi-per1")
	if got, _ := at.Canonical("circuit-00042"); got != "chi-per1" {
		t.Error("custom alias not resolved case-insensitively")
	}
	if name, ok := at.CanonicalIP(netip.MustParseAddr("10.255.0.2")); !ok || name != "chi-cr1" {
		t.Error("CanonicalIP failed")
	}
}

func TestLineCardID(t *testing.T) {
	topo := buildTestTopo(t)
	r := topo.Routers["chi-cr1"]
	if id := r.Cards[1].ID(); id != "chi-cr1:1" {
		t.Errorf("card ID = %q", id)
	}
	i, _ := topo.InterfaceByName("chi-cr1", "so-1/0/0")
	if i.Card.Slot != 1 {
		t.Errorf("interface on wrong card slot %d", i.Card.Slot)
	}
	if id := i.ID(); id != "chi-cr1:so-1/0/0" {
		t.Errorf("interface ID = %q", id)
	}
}

func TestRoleString(t *testing.T) {
	if RoleProviderEdge.String() != "provider-edge" {
		t.Error("RoleProviderEdge name wrong")
	}
	if Role(99).String() == "" {
		t.Error("out-of-range role should still render")
	}
}
