// Package netmodel defines the network topology entities underlying the
// G-RCA spatial model: routers, line cards, interfaces, logical (layer-3)
// links, physical circuits, and layer-1 devices, together with the
// containment and cross-layer associations of Fig. 2 of the paper.
//
// The model mirrors what the paper extracts from daily router-configuration
// snapshots and from an external layer-1 inventory database:
//
//   - a router consists of a set of line cards, which comprise interfaces
//     (§II-B item 6);
//   - a point-to-point logical link is associated with its attached routers
//     by matching interface addresses to a /30 network (item 4);
//   - a logical link may map to more than one physical link (APS, MLPPP
//     bundles; item 5);
//   - physical links map to the layer-1 devices in between (item 7).
package netmodel

import (
	"fmt"
	"net/netip"
	"sort"
)

// Role classifies a router's position in the ISP topology.
type Role uint8

const (
	// RoleCore routers form the backbone within and between PoPs.
	RoleCore Role = iota
	// RoleAggregation routers sit between core and provider edge.
	RoleAggregation
	// RoleProviderEdge routers (PERs) terminate customer attachments.
	RoleProviderEdge
	// RoleCustomer routers are outside the ISP's management domain.
	RoleCustomer
	// RoleCDN routers attach CDN data-center server farms to the backbone.
	RoleCDN
)

var roleNames = [...]string{"core", "aggregation", "provider-edge", "customer", "cdn"}

// String returns the lower-case role name.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("netmodel.Role(%d)", uint8(r))
}

// Router is one routing element. Customer routers are modeled too (the BGP
// application diagnoses sessions toward them) but carry no line cards.
type Router struct {
	Name     string // canonical name, e.g. "nyc-per3"
	PoP      string // point of presence, e.g. "nyc"
	Role     Role
	Loopback netip.Addr
	// TZName is the IANA-style zone the device stamps its syslog in. The
	// paper calls out that raw timestamps mix device-local time, provider
	// network time, and GMT; the collector normalizes using this.
	TZName string

	Cards []*LineCard
}

// LineCard is one slot in a router chassis.
type LineCard struct {
	Router *Router
	Slot   int
	Ports  []*Interface
}

// ID returns the canonical "router:slot" identifier of the card.
func (c *LineCard) ID() string { return fmt.Sprintf("%s:%d", c.Router.Name, c.Slot) }

// Interface is a router port. If it terminates a logical link inside the
// ISP, Link is set; if it faces a customer router, Peer names the customer
// device and PeerIP its address on the shared /30.
type Interface struct {
	Router *Router
	Card   *LineCard
	Name   string       // e.g. "so-3/0/1"
	Addr   netip.Prefix // the /30 (or /31) this end is numbered from
	IP     netip.Addr   // this end's address within Addr

	Link *LogicalLink // internal link, nil for customer-facing ports

	CustomerFacing bool
	Peer           string     // customer router name (customer-facing only)
	PeerIP         netip.Addr // customer-side address (customer-facing only)

	// Uplink marks a provider-edge port toward the backbone (the paper's
	// "uplink" footnote: the link connecting an access router to a core
	// network router).
	Uplink bool
}

// ID returns the canonical "router:interface" identifier.
func (i *Interface) ID() string { return i.Router.Name + ":" + i.Name }

// LogicalLink is a layer-3 point-to-point adjacency between two interfaces
// inside the ISP. Phys lists the physical circuits realizing it (more than
// one under APS protection or MLPPP bundling).
type LogicalLink struct {
	ID   string
	A, B *Interface
	Phys []*PhysicalLink
}

// Other returns the far-end interface as seen from r, or nil if r is not an
// endpoint of the link.
func (l *LogicalLink) Other(r string) *Interface {
	switch {
	case l.A.Router.Name == r:
		return l.B
	case l.B.Router.Name == r:
		return l.A
	}
	return nil
}

// L1Kind distinguishes the layer-1 technologies of the paper's event
// catalogue (SONET restoration vs regular/fast optical-mesh restoration).
type L1Kind uint8

const (
	// L1SONET marks SONET-ring elements (APS-protected circuits).
	L1SONET L1Kind = iota
	// L1OpticalMesh marks optical-mesh elements (mesh restoration).
	L1OpticalMesh
)

// String returns the lower-case kind name.
func (k L1Kind) String() string {
	if k == L1SONET {
		return "sonet"
	}
	return "optical-mesh"
}

// PhysicalLink is one circuit carrying (part of) a logical link across a
// chain of layer-1 devices.
type PhysicalLink struct {
	ID      string
	Kind    L1Kind
	Logical *LogicalLink
	L1      []*L1Device
}

// L1Device is a SONET or optical-mesh network element.
type L1Device struct {
	Name string
	Kind L1Kind
}

// Topology is the full network inventory. It is immutable after Build; the
// time-varying aspects of the dependency model (routing, configuration
// changes) live in the ospf, bgp, and netstate packages.
type Topology struct {
	Routers map[string]*Router
	Links   map[string]*LogicalLink
	Phys    map[string]*PhysicalLink
	L1      map[string]*L1Device

	byAddr map[netip.Prefix][]*Interface // /30 → member interfaces
	byIP   map[netip.Addr]*Interface     // interface address → interface
}

// NewTopology returns an empty topology ready for AddRouter/AddLink calls.
func NewTopology() *Topology {
	return &Topology{
		Routers: map[string]*Router{},
		Links:   map[string]*LogicalLink{},
		Phys:    map[string]*PhysicalLink{},
		L1:      map[string]*L1Device{},
		byAddr:  map[netip.Prefix][]*Interface{},
		byIP:    map[netip.Addr]*Interface{},
	}
}

// AddRouter registers r. It returns an error on duplicate names, which in
// the real system would indicate a normalization failure upstream.
func (t *Topology) AddRouter(r *Router) error {
	if _, dup := t.Routers[r.Name]; dup {
		return fmt.Errorf("netmodel: duplicate router %q", r.Name)
	}
	t.Routers[r.Name] = r
	return nil
}

// AddCard appends a new line card to r and returns it.
func (t *Topology) AddCard(r *Router) *LineCard {
	c := &LineCard{Router: r, Slot: len(r.Cards)}
	r.Cards = append(r.Cards, c)
	return c
}

// AddInterface creates an interface on card c and indexes its addressing.
func (t *Topology) AddInterface(c *LineCard, name string, prefix netip.Prefix, ip netip.Addr) (*Interface, error) {
	ifc := &Interface{Router: c.Router, Card: c, Name: name, Addr: prefix, IP: ip}
	if _, dup := t.byIP[ip]; dup && ip.IsValid() {
		return nil, fmt.Errorf("netmodel: duplicate interface address %v", ip)
	}
	c.Ports = append(c.Ports, ifc)
	if prefix.IsValid() {
		t.byAddr[prefix.Masked()] = append(t.byAddr[prefix.Masked()], ifc)
	}
	if ip.IsValid() {
		t.byIP[ip] = ifc
	}
	return ifc, nil
}

// Connect creates the logical link between interfaces a and b. Both must be
// numbered from the same /30; this mirrors the paper's item 4 association.
func (t *Topology) Connect(id string, a, b *Interface) (*LogicalLink, error) {
	if _, dup := t.Links[id]; dup {
		return nil, fmt.Errorf("netmodel: duplicate link %q", id)
	}
	if a.Addr.Masked() != b.Addr.Masked() {
		return nil, fmt.Errorf("netmodel: link %q endpoints %s and %s not on a shared subnet", id, a.Addr, b.Addr)
	}
	l := &LogicalLink{ID: id, A: a, B: b}
	a.Link, b.Link = l, l
	t.Links[id] = l
	return l, nil
}

// AddPhysical registers a physical circuit for link l across the given
// layer-1 devices (created on first reference).
func (t *Topology) AddPhysical(id string, l *LogicalLink, kind L1Kind, l1names ...string) *PhysicalLink {
	p := &PhysicalLink{ID: id, Kind: kind, Logical: l}
	for _, n := range l1names {
		d, ok := t.L1[n]
		if !ok {
			d = &L1Device{Name: n, Kind: kind}
			t.L1[n] = d
		}
		p.L1 = append(p.L1, d)
	}
	l.Phys = append(l.Phys, p)
	t.Phys[id] = p
	return p
}

// InterfaceByName returns the named interface on the named router.
func (t *Topology) InterfaceByName(router, ifname string) (*Interface, bool) {
	r, ok := t.Routers[router]
	if !ok {
		return nil, false
	}
	for _, c := range r.Cards {
		for _, p := range c.Ports {
			if p.Name == ifname {
				return p, true
			}
		}
	}
	return nil, false
}

// InterfaceForNeighborIP implements the paper's "Router:NeighborIP →
// Interface" conversion: it finds the interface on the named router whose
// /30 contains ip. This is how a BGP or PIM adjacency identified by a
// neighbor address is tied to the physical attachment.
func (t *Topology) InterfaceForNeighborIP(router string, ip netip.Addr) (*Interface, bool) {
	r, ok := t.Routers[router]
	if !ok {
		return nil, false
	}
	for _, c := range r.Cards {
		for _, p := range c.Ports {
			if p.Addr.IsValid() && p.Addr.Masked().Contains(ip) && p.IP != ip {
				return p, true
			}
		}
	}
	return nil, false
}

// InterfaceByIP returns the interface numbered with exactly ip.
func (t *Topology) InterfaceByIP(ip netip.Addr) (*Interface, bool) {
	i, ok := t.byIP[ip]
	return i, ok
}

// LinkBySubnet returns the logical link whose endpoints share the /30
// containing ip, if any.
func (t *Topology) LinkBySubnet(ip netip.Addr) (*LogicalLink, bool) {
	for pfx, ifaces := range t.byAddr {
		if pfx.Contains(ip) {
			for _, i := range ifaces {
				if i.Link != nil {
					return i.Link, true
				}
			}
		}
	}
	return nil, false
}

// RouterNames returns all router names sorted, for deterministic iteration.
func (t *Topology) RouterNames() []string {
	names := make([]string, 0, len(t.Routers))
	for n := range t.Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LinkIDs returns all logical link IDs sorted.
func (t *Topology) LinkIDs() []string {
	ids := make([]string, 0, len(t.Links))
	for id := range t.Links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Layer1For returns the layer-1 devices underlying a logical link, the
// paper's cross-layer conversion (items 5 and 7 combined).
func (t *Topology) Layer1For(l *LogicalLink) []*L1Device {
	var out []*L1Device
	seen := map[string]bool{}
	for _, p := range l.Phys {
		for _, d := range p.L1 {
			if !seen[d.Name] {
				seen[d.Name] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// Uplinks returns the uplink interfaces of a provider-edge router.
func (t *Topology) Uplinks(router string) []*Interface {
	r, ok := t.Routers[router]
	if !ok {
		return nil
	}
	var out []*Interface
	for _, c := range r.Cards {
		for _, p := range c.Ports {
			if p.Uplink {
				out = append(out, p)
			}
		}
	}
	return out
}
