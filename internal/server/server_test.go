package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"grca/internal/collector"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
	"grca/internal/store"
	"grca/internal/wal"
)

// feedOrder mirrors the platform's canonical ingestion order; posting
// feeds in this order is what makes serve byte-identical to batch.
var feedOrder = []string{
	collector.SourceOSPFMon, collector.SourceBGPMon, collector.SourceSyslog,
	collector.SourceSNMP, collector.SourceTACACS, collector.SourceWorkflow,
	collector.SourceLayer1, collector.SourcePerfMon, collector.SourceKeynote,
	collector.SourceServer,
}

func testBundle(t *testing.T) (*simnet.Dataset, platform.Bundle) {
	t.Helper()
	d, err := simnet.Generate(simnet.Config{
		Seed: 7, PoPs: 2, PERsPerPoP: 2, SessionsPerPER: 4,
		Duration: 2 * 24 * time.Hour, BGPFlapIncidents: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, platform.BundleFromDataset(d)
}

func openServer(t *testing.T, dir string, b platform.Bundle) *Server {
	t.Helper()
	s, err := Open(Config{DataDir: dir, Bundle: b})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func loadAndFinalize(t *testing.T, ts *httptest.Server, b platform.Bundle) {
	t.Helper()
	for _, src := range feedOrder {
		feed, ok := b.Feeds[src]
		if !ok {
			continue
		}
		code, body := post(t, ts, "/v1/ingest", IngestRequest{Source: src, Lines: feed})
		if code != http.StatusOK {
			t.Fatalf("ingest %s: %d %s", src, code, body)
		}
	}
	code, body := post(t, ts, "/v1/finalize", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("finalize: %d %s", code, body)
	}
}

// TestDiagnoseParityWithBatch is the service's defining contract:
// feeding the same corpus over HTTP and diagnosing via POST /v1/diagnose
// yields byte-identical diagnosis trees to the offline batch pipeline.
func TestDiagnoseParityWithBatch(t *testing.T) {
	d, b := testBundle(t)
	s := openServer(t, t.TempDir(), b)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	loadAndFinalize(t, ts, b)

	// Batch reference over the identical corpus.
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wal.StoreDigest(s.Store()), wal.StoreDigest(sys.Store); got != want {
		t.Fatalf("served store digest differs from batch store (%d vs %d events)",
			s.Store().Len(), sys.Store.Len())
	}

	for _, app := range []string{"bgpflap", "cdn"} {
		spec := specFor(t, app)
		eng, err := spec.newEngine(sys.Store, sys.View)
		if err != nil {
			t.Fatal(err)
		}
		var want []DiagnosisJSON
		for _, diag := range eng.DiagnoseAll() {
			want = append(want, diagnosisJSON(diag))
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}

		code, body := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		if code != http.StatusOK {
			t.Fatalf("diagnose %s: %d %s", app, code, body)
		}
		var resp DiagnoseResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Diagnoses) == 0 && app == "bgpflap" {
			t.Fatalf("%s: no diagnoses over a corpus with %d flap incidents", app, 40)
		}
		gotJSON, err := json.Marshal(resp.Diagnoses)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			if len(resp.Diagnoses) != 0 {
				t.Fatalf("%s: server returned diagnoses where batch has none", app)
			}
			continue
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: served diagnoses are not byte-identical to batch (%d vs %d)",
				app, len(resp.Diagnoses), len(want))
		}
	}

	// Single-symptom diagnosis matches the corresponding entry of All.
	code, body := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", All: true})
	if code != http.StatusOK {
		t.Fatal(string(body))
	}
	var all DiagnoseResponse
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	one := all.Diagnoses[0]
	code, body = post(t, ts, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", ID: one.Symptom.ID})
	if code != http.StatusOK {
		t.Fatal(string(body))
	}
	var single DiagnoseResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(single.Diagnoses[0])
	bb, _ := json.Marshal(one)
	if !bytes.Equal(a, bb) {
		t.Fatal("by-ID diagnosis differs from the same symptom in All")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func specFor(t *testing.T, name string) appSpec {
	t.Helper()
	for _, a := range appSpecs() {
		if a.name == name {
			return a
		}
	}
	t.Fatalf("no app %q", name)
	return appSpec{}
}

// TestRestartRecovery: a served corpus survives shutdown and reopen —
// same store digest, same diagnosis bytes, phase still serving — and a
// deleted WAL (the crashed-before-WAL-commit case) is rebuilt from the
// ingest journal with identical results.
func TestRestartRecovery(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	s := openServer(t, dir, b)
	ts := httptest.NewServer(s.Handler())
	loadAndFinalize(t, ts, b)
	digest := wal.StoreDigest(s.Store())
	_, diagBefore := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", All: true})
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, crash := range []bool{false, true} {
		if crash {
			// Crash persona: the WAL vanished (or tore) after the journal
			// fsync — the journal must rebuild everything.
			for _, sub := range []string{"wal", "snap"} {
				if err := os.RemoveAll(filepath.Join(dir, sub)); err != nil {
					t.Fatal(err)
				}
			}
		}
		s2 := openServer(t, dir, b)
		rec := s2.Recovery()
		if !rec.Finalized {
			t.Fatalf("crash=%v: recovery lost the finalized phase: %+v", crash, rec)
		}
		if rec.WALRebuilt != crash {
			t.Fatalf("crash=%v: WALRebuilt=%v", crash, rec.WALRebuilt)
		}
		if got := wal.StoreDigest(s2.Store()); got != digest {
			t.Fatalf("crash=%v: recovered store digest differs", crash)
		}
		ts2 := httptest.NewServer(s2.Handler())
		_, diagAfter := post(t, ts2, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", All: true})
		if !bytes.Equal(diagBefore, diagAfter) {
			t.Fatalf("crash=%v: post-restart diagnoses differ from pre-restart", crash)
		}
		ts2.Close()
		if err := s2.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEventIngestStreaming: after finalize, normalized events flow
// through the streaming processors and the response carries their
// diagnoses; the events are durable like any other batch.
func TestEventIngestStreaming(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	s := openServer(t, dir, b)
	ts := httptest.NewServer(s.Handler())
	loadAndFinalize(t, ts, b)
	before := s.Store().Len()

	at := b.Start.Add(b.Duration).Add(time.Hour)
	sym := EventJSON{
		Name: event.EBGPFlap, Start: at, End: at.Add(time.Minute),
		Loc: LocationJSON{Type: "router:neighbor", A: "pop00-per1", B: "10.99.0.1"},
	}
	tick := EventJSON{
		Name: "synthetic tick", Start: at.Add(48 * time.Hour), End: at.Add(48 * time.Hour),
		Loc: LocationJSON{Type: "router", A: "pop00-per1"},
	}
	code, body := post(t, ts, "/v1/ingest", IngestRequest{Events: []EventJSON{sym, tick}})
	if code != http.StatusOK {
		t.Fatalf("event ingest: %d %s", code, body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stored != 2 {
		t.Fatalf("stored %d, want 2", resp.Stored)
	}
	if len(resp.Diagnoses) != 1 {
		t.Fatalf("streaming diagnoses = %d, want 1 (tick advances past grace)", len(resp.Diagnoses))
	}
	if resp.Diagnoses[0].App != "bgpflap" {
		t.Errorf("diagnosis app = %q", resp.Diagnoses[0].App)
	}
	if s.Store().Len() != before+2 {
		t.Fatalf("store grew by %d, want 2", s.Store().Len()-before)
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The event batch is journaled + WAL'd: both survive restart.
	s2 := openServer(t, dir, b)
	if s2.Store().Len() != before+2 {
		t.Fatalf("restart lost event-mode batch: %d, want %d", s2.Store().Len(), before+2)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestIngestValidation: bad batches are rejected before they are
// journaled, with the right statuses.
func TestIngestValidation(t *testing.T) {
	_, b := testBundle(t)
	s := openServer(t, t.TempDir(), b)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _ := post(t, ts, "/v1/ingest", IngestRequest{Source: "nosuch", Lines: "x"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown source: %d", code)
	}
	code, _ = post(t, ts, "/v1/ingest", IngestRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("empty request: %d", code)
	}
	code, _ = post(t, ts, "/v1/ingest", IngestRequest{Events: []EventJSON{{Name: ""}}})
	if code != http.StatusBadRequest {
		t.Errorf("nameless event: %d", code)
	}
	code, _ = post(t, ts, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", All: true})
	if code != http.StatusConflict {
		t.Errorf("diagnose before finalize: %d", code)
	}
	// Finalize, then feeds must be refused (and journal replay must not
	// see the refused batch — restart proves it).
	if code, body := post(t, ts, "/v1/finalize", struct{}{}); code != http.StatusOK {
		t.Fatalf("finalize: %d %s", code, body)
	}
	code, _ = post(t, ts, "/v1/ingest", IngestRequest{Source: collector.SourceSyslog, Lines: "x"})
	if code != http.StatusConflict {
		t.Errorf("feed after finalize: %d", code)
	}
	code, _ = post(t, ts, "/v1/finalize", struct{}{})
	if code != http.StatusConflict {
		t.Errorf("double finalize: %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure429: a full ingest queue answers 429 + Retry-After
// instead of buffering. The applier is deliberately absent, so the queue
// stays full.
func TestBackpressure429(t *testing.T) {
	// A server whose only shard queue is pre-filled and has no applier:
	// dispatch must reject at admission, before consuming a sequence
	// number or IDs.
	s := &Server{
		cfg:        Config{MaxInflight: 2, RequestTimeout: time.Second},
		st:         store.NewSharded(1, nil),
		routeCache: map[locus.Location]int{},
		closing:    make(chan struct{}),
	}
	s.shards = []*shard{{queue: make(chan shardTask, 2)}}
	s.shards[0].queue <- shardTask{}
	s.shards[0].queue <- shardTask{}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data, _ := json.Marshal(IngestRequest{Events: []EventJSON{{
		Name: "x", Start: time.Unix(0, 0).UTC(), End: time.Unix(1, 0).UTC(),
		Loc: LocationJSON{Type: "router", A: "r0"},
	}}})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// Retry-After scales with queue depth: a fully loaded pipeline
	// (depth 2 of 2) must push clients beyond the old constant 1s.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 2 {
		t.Errorf("Retry-After = %q, want a depth-derived value >= 2",
			resp.Header.Get("Retry-After"))
	}
	if s.seq != 0 || s.st.NextID() != 0 {
		t.Errorf("rejection consumed seq=%d nextID=%d, want neither", s.seq, s.st.NextID())
	}
}

// TestHealthAndStats: the operational endpoints expose phase, span, and
// the metrics registry.
func TestHealthAndStats(t *testing.T) {
	_, b := testBundle(t)
	s := openServer(t, t.TempDir(), b)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) map[string]any {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if got := get("/healthz")["phase"]; got != "loading" {
		t.Errorf("phase = %v, want loading", got)
	}
	loadAndFinalize(t, ts, b)
	if got := get("/healthz")["phase"]; got != "serving" {
		t.Errorf("phase = %v, want serving", got)
	}
	stats := get("/v1/stats")
	if stats["events"].(float64) <= 0 {
		t.Error("stats reports no events after a full load")
	}
	if _, ok := stats["metrics"]; !ok {
		t.Error("stats lacks the metrics snapshot")
	}
	ev := get("/v1/events")
	if len(ev["names"].([]any)) == 0 {
		t.Error("no event names listed")
	}
	name := ev["names"].([]any)[0].(string)
	lim := get("/v1/events?name=" + url.QueryEscape(name) + "&limit=3")
	if n := len(lim["events"].([]any)); n > 3 {
		t.Errorf("limit ignored: %d events", n)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
