package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grca/internal/wal"
)

// primarySealedMin returns the primary's minimum sealed sequence — with
// the pipeline quiesced, the last sequence it committed.
func primarySealedMin(p *Server) int {
	s := p.sealer.sealed()
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

// waitReplicaCaughtUp blocks until the follower has applied every
// sealed journal sequence and its WAL sinks reach the primary's
// frontiers.
func waitReplicaCaughtUp(t *testing.T, foll, prim *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		target := primarySealedMin(prim)
		applied := int(foll.follower.appliedSeq.Load())
		walOK := true
		for i := range prim.shards {
			if int(foll.follower.walNext[i].Load()) < prim.shards[i].log.Frontier() {
				walOK = false
				break
			}
		}
		if applied >= target && walOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stalled: applied seq %d, want %d (wal caught up: %v)", applied, target, walOK)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaParityAndPromote is the replication subsystem's core
// contract at 1 and 4 shards: a follower caught up to a quiesced
// primary has byte-identical per-shard store digests and byte-identical
// diagnose/breakdown bodies, redirects writes to the primary, exposes
// lag gauges, and — promoted — becomes a primary that accepts writes.
func TestReplicaParityAndPromote(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, b := testBundle(t)
			prim, err := Open(Config{DataDir: t.TempDir(), Bundle: b, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(prim.Handler())
			loadAndFinalize(t, ts, b)
			for i, evs := range lifecycleBatches(b) {
				code, body := post(t, ts, "/v1/ingest", IngestRequest{Events: evs})
				if code != http.StatusOK {
					t.Fatalf("event batch %d: %d %s", i, code, body)
				}
			}

			foll, err := Open(Config{
				DataDir: t.TempDir(), Bundle: b, Shards: shards,
				ReplicaOf: ts.URL, ReplicaPoll: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ts2 := httptest.NewServer(foll.Handler())
			waitReplicaCaughtUp(t, foll, prim)

			// Byte-identical state: merged and per-shard digests.
			if got, want := wal.StoreDigest(foll.st), wal.StoreDigest(prim.st); got != want {
				t.Fatalf("merged store digest differs: follower %s, primary %s", got, want)
			}
			for i := range prim.shards {
				got, want := wal.StoreDigest(foll.shards[i].st), wal.StoreDigest(prim.shards[i].st)
				if got != want {
					t.Fatalf("shard %d digest differs: follower %s, primary %s", i, got, want)
				}
			}

			// Byte-identical read surfaces.
			for _, app := range []string{"bgpflap", "cdn", "pim", "backbone"} {
				code, pbody := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
				if code != http.StatusOK {
					t.Fatalf("primary diagnose %s: %d %s", app, code, pbody)
				}
				code, fbody := post(t, ts2, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
				if code != http.StatusOK {
					t.Fatalf("replica diagnose %s: %d %s", app, code, fbody)
				}
				if !bytes.Equal(pbody, fbody) {
					t.Fatalf("diagnose %s differs between primary and replica", app)
				}
				code, pbody = get(t, ts, "/v1/breakdown?app="+app)
				if code != http.StatusOK {
					t.Fatalf("primary breakdown %s: %d %s", app, code, pbody)
				}
				code, fbody = get(t, ts2, "/v1/breakdown?app="+app)
				if code != http.StatusOK {
					t.Fatalf("replica breakdown %s: %d %s", app, code, fbody)
				}
				if !bytes.Equal(pbody, fbody) {
					t.Fatalf("breakdown %s differs between primary and replica", app)
				}
			}

			// Write fencing: ingest and finalize 307 to the primary.
			noRedirect := &http.Client{
				CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
			}
			resp, err := noRedirect.Post(ts2.URL+"/v1/ingest", "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusTemporaryRedirect {
				t.Fatalf("replica ingest status %d, want 307", resp.StatusCode)
			}
			if loc := resp.Header.Get("Location"); loc != ts.URL+"/v1/ingest" {
				t.Fatalf("redirect location %q, want %q", loc, ts.URL+"/v1/ingest")
			}

			// Replication status and lag gauges.
			code, body := get(t, ts2, "/v1/replication/status")
			if code != http.StatusOK {
				t.Fatalf("replication status: %d %s", code, body)
			}
			var rs ReplicationStatusJSON
			if err := json.Unmarshal(body, &rs); err != nil {
				t.Fatal(err)
			}
			if rs.Role != "replica" || rs.Primary != ts.URL || len(rs.ShardLag) != shards {
				t.Fatalf("replica status = %s", body)
			}
			code, body = get(t, ts, "/v1/replication/status")
			if code != http.StatusOK {
				t.Fatalf("primary replication status: %d %s", code, body)
			}
			if err := json.Unmarshal(body, &rs); err != nil {
				t.Fatal(err)
			}
			if rs.Role != "primary" || len(rs.Followers) == 0 {
				t.Fatalf("primary status = %s", body)
			}
			code, body = get(t, ts2, "/v1/stats")
			if code != http.StatusOK {
				t.Fatalf("replica stats: %d", code)
			}
			if !bytes.Contains(body, []byte("replica.follower.applied.seq")) {
				t.Fatalf("replica stats carry no lag gauges")
			}

			// Promote: the replica reopens as a primary and accepts writes.
			code, body = post(t, ts2, "/v1/replication/promote", struct{}{})
			if code != http.StatusOK {
				t.Fatalf("promote: %d %s", code, body)
			}
			var info PromoteInfo
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatal(err)
			}
			if info.Role != "primary" || len(info.Digests) != shards {
				t.Fatalf("promote info = %s", body)
			}
			for i := range prim.shards {
				if want := wal.StoreDigest(prim.shards[i].st); info.Digests[i] != want {
					t.Fatalf("promoted shard %d digest %s, want %s", i, info.Digests[i], want)
				}
			}
			code, body = post(t, ts2, "/v1/ingest", IngestRequest{Events: lifecycleBatches(b)[0]})
			if code != http.StatusOK {
				t.Fatalf("post-promote ingest: %d %s", code, body)
			}

			ts2.Close()
			if err := foll.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			ts.Close()
			if err := prim.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFailoverPromoteMatchesCleanReplay kills the primary abruptly
// (connections severed, no shutdown), promotes the follower, and checks
// the promoted node against a clean single-node replay of the
// follower's own journals: identical per-shard digests and identical
// diagnose/breakdown bodies.
func TestFailoverPromoteMatchesCleanReplay(t *testing.T) {
	_, b := testBundle(t)
	const shards = 2
	primDir, follDir, cleanDir := t.TempDir(), t.TempDir(), t.TempDir()
	prim, err := Open(Config{DataDir: primDir, Bundle: b, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(prim.Handler())
	loadAndFinalize(t, ts, b)

	foll, err := Open(Config{
		DataDir: follDir, Bundle: b, Shards: shards,
		ReplicaOf: ts.URL, ReplicaPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(foll.Handler())

	// Ingest riding while replication streams: post every batch, then cut
	// the primary without any graceful handoff.
	for i, evs := range lifecycleBatches(b) {
		code, body := post(t, ts, "/v1/ingest", IngestRequest{Events: evs})
		if code != http.StatusOK {
			t.Fatalf("event batch %d: %d %s", i, code, body)
		}
	}
	waitReplicaCaughtUp(t, foll, prim)
	ts.CloseClientConnections()
	ts.Close()

	code, body := post(t, ts2, "/v1/replication/promote", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("promote: %d %s", code, body)
	}
	var info PromoteInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	// Clean replay: the follower's journals, copied verbatim into a fresh
	// data dir, opened as a plain single node.
	for i := 0; i < shards; i++ {
		src := journalPath(shardDir(follDir, shards, i))
		dstDir := shardDir(cleanDir, shards, i)
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(journalPath(dstDir), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(cleanDir, "SHARDS"), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	clean, err := Open(Config{DataDir: cleanDir, Bundle: b, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	tsClean := httptest.NewServer(clean.Handler())

	for i := range clean.shards {
		if want := wal.StoreDigest(clean.shards[i].st); info.Digests[i] != want {
			t.Fatalf("promoted shard %d digest %s != clean replay %s", i, info.Digests[i], want)
		}
	}
	for _, app := range []string{"bgpflap", "cdn", "pim", "backbone"} {
		code, pbody := post(t, ts2, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		if code != http.StatusOK {
			t.Fatalf("promoted diagnose %s: %d %s", app, code, pbody)
		}
		code, cbody := post(t, tsClean, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		if code != http.StatusOK {
			t.Fatalf("clean diagnose %s: %d %s", app, code, cbody)
		}
		if !bytes.Equal(pbody, cbody) {
			t.Fatalf("diagnose %s differs between promoted node and clean replay", app)
		}
		code, pbody = get(t, ts2, "/v1/breakdown?app="+app)
		if code != http.StatusOK {
			t.Fatalf("promoted breakdown %s: %d %s", app, code, pbody)
		}
		code, cbody = get(t, tsClean, "/v1/breakdown?app="+app)
		if code != http.StatusOK {
			t.Fatalf("clean breakdown %s: %d %s", app, code, cbody)
		}
		if !bytes.Equal(pbody, cbody) {
			t.Fatalf("breakdown %s differs between promoted node and clean replay", app)
		}
	}

	// The promoted node is a writable primary.
	code, body = post(t, ts2, "/v1/ingest", IngestRequest{Events: lifecycleBatches(b)[0]})
	if code != http.StatusOK {
		t.Fatalf("post-promote ingest: %d %s", code, body)
	}
	code, body = get(t, ts2, "/v1/replication/status")
	if code != http.StatusOK {
		t.Fatalf("post-promote status: %d", code)
	}
	var rs ReplicationStatusJSON
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Role != "primary" {
		t.Fatalf("post-promote role %q, want primary", rs.Role)
	}

	tsClean.Close()
	if err := clean.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	if err := foll.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := prim.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareReplicaState covers the REPLICA marker: a boot-ID change
// wipes shipped shard state and keeps the follower's stable ID.
func TestPrepareReplicaState(t *testing.T) {
	dir := t.TempDir()
	id1, err := prepareReplicaState(dir, 1, "boot-a")
	if err != nil {
		t.Fatal(err)
	}
	if id1 == "" {
		t.Fatal("empty follower id")
	}
	// Same boot: state survives, ID is stable.
	jp := journalPath(shardDir(dir, 1, 0))
	if err := os.WriteFile(jp, []byte("journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	id2, err := prepareReplicaState(dir, 1, "boot-a")
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1 {
		t.Fatalf("follower id changed across same-boot reopen: %q -> %q", id1, id2)
	}
	if _, err := os.Stat(jp); err != nil {
		t.Fatalf("journal wiped on same-boot reopen: %v", err)
	}
	// New boot: shipped state wiped, ID still stable.
	id3, err := prepareReplicaState(dir, 1, "boot-b")
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("follower id changed across resync: %q -> %q", id1, id3)
	}
	if _, err := os.Stat(jp); !os.IsNotExist(err) {
		t.Fatalf("journal survived a boot-ID change: %v", err)
	}
}
