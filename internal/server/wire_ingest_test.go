package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/wal"
	"grca/internal/wire"
)

func postWire(t *testing.T, ts *httptest.Server, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/ingest", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestWireIngestParity is the fast path's defining contract: a server
// fed the whole corpus through the binary wire format and the zero-copy
// parsers must be byte-identical — store digest and diagnosis JSON — to
// a server fed the same corpus as JSON through the reference string
// parsers.
func TestWireIngestParity(t *testing.T) {
	_, b := testBundle(t)

	refDir, fastDir := t.TempDir(), t.TempDir()
	ref, err := Open(Config{DataDir: refDir, Bundle: b, LegacyParsers: true})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	fast := openServer(t, fastDir, b)
	fastTS := httptest.NewServer(fast.Handler())
	defer fastTS.Close()

	// Reference: JSON feeds + legacy parsers. Fast: binary feed batches +
	// zero-copy parsers.
	loadAndFinalize(t, refTS, b)
	for _, src := range feedOrder {
		feed, ok := b.Feeds[src]
		if !ok {
			continue
		}
		code, body := postWire(t, fastTS, wire.AppendFeed(nil, src, feed))
		if code != http.StatusOK {
			t.Fatalf("wire ingest %s: %d %s", src, code, body)
		}
	}
	if code, body := post(t, fastTS, "/v1/finalize", struct{}{}); code != http.StatusOK {
		t.Fatalf("finalize: %d %s", code, body)
	}

	// Serving phase: the same normalized-event batch, JSON to one server
	// and binary to the other.
	at := b.Start.Add(b.Duration).Add(time.Hour)
	evs := []EventJSON{
		{Name: event.EBGPFlap, Start: at, End: at.Add(time.Minute),
			Loc: LocationJSON{Type: "router:neighbor", A: "pop00-per1", B: "10.99.0.1"}},
		{Name: "synthetic tick", Start: at.Add(48 * time.Hour), End: at.Add(48 * time.Hour),
			Loc: LocationJSON{Type: "router", A: "pop00-per1"}},
	}
	ins, err := decodeEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	code, body := post(t, refTS, "/v1/ingest", IngestRequest{Events: evs})
	if code != http.StatusOK {
		t.Fatalf("json event ingest: %d %s", code, body)
	}
	var refResp IngestResponse
	if err := json.Unmarshal(body, &refResp); err != nil {
		t.Fatal(err)
	}
	code, body = postWire(t, fastTS, wire.AppendEvents(nil, ins))
	if code != http.StatusOK {
		t.Fatalf("wire event ingest: %d %s", code, body)
	}
	var fastResp IngestResponse
	if err := json.Unmarshal(body, &fastResp); err != nil {
		t.Fatal(err)
	}
	if fastResp.Stored != refResp.Stored || fastResp.Late != refResp.Late ||
		len(fastResp.Diagnoses) != len(refResp.Diagnoses) {
		t.Fatalf("wire ingest response %+v, json reference %+v", fastResp, refResp)
	}

	if got, want := wal.StoreDigest(fast.Store()), wal.StoreDigest(ref.Store()); got != want {
		t.Fatalf("wire+fast store digest differs from json+legacy (%d vs %d events)",
			fast.Store().Len(), ref.Store().Len())
	}
	for _, app := range []string{"bgpflap", "cdn"} {
		_, refBody := post(t, refTS, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		_, fastBody := post(t, fastTS, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		if !bytes.Equal(refBody, fastBody) {
			t.Fatalf("%s: diagnosis bytes differ between wire+fast and json+legacy", app)
		}
	}

	// Restart the wire-fed server: journal replay decodes the verbatim
	// wire records (recFeed raw lines + recEventsWire), so the recovered
	// digest must not move.
	want := wal.StoreDigest(fast.Store())
	fastTS.Close()
	if err := fast.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	fast2 := openServer(t, fastDir, b)
	defer fast2.Shutdown(context.Background()) //nolint:errcheck // test teardown
	if got := wal.StoreDigest(fast2.Store()); got != want {
		t.Fatal("restart after wire ingest changed the store digest")
	}
	if !fast2.Recovery().Finalized {
		t.Fatal("restart lost the finalize marker")
	}
}

// TestWireIngestValidation: malformed wire bodies and unknown feed
// sources are rejected with 400 before being journaled.
func TestWireIngestValidation(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	s := openServer(t, dir, b)
	ts := httptest.NewServer(s.Handler())

	if code, _ := postWire(t, ts, []byte("not a wire batch")); code != http.StatusBadRequest {
		t.Fatalf("garbage wire body: %d, want 400", code)
	}
	if code, _ := postWire(t, ts, wire.AppendFeed(nil, "nonsense", "x")); code != http.StatusBadRequest {
		t.Fatalf("unknown wire source: %d, want 400", code)
	}
	truncated := wire.AppendEvents(nil, []event.Instance{})
	if code, _ := postWire(t, ts, truncated[:len(truncated)-1]); code != http.StatusBadRequest {
		t.Fatalf("truncated wire body: %d, want 400", code)
	}
	// An empty-but-well-formed event batch must be rejected like the JSON
	// path rejects it — dispatching it used to panic on routes[0] under
	// dispatchMu and wedge the whole write path (Shutdown below would
	// hang).
	if code, _ := postWire(t, ts, wire.AppendEvents(nil, nil)); code != http.StatusBadRequest {
		t.Fatalf("empty wire event batch: %d, want 400", code)
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// None of the rejections may have reached the journal.
	s2 := openServer(t, dir, b)
	defer s2.Shutdown(context.Background()) //nolint:errcheck // test teardown
	if n := s2.Recovery().Batches; n != 0 {
		t.Fatalf("rejected batches were journaled: recovered %d", n)
	}
}
