package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/locus"
	"grca/internal/obs"
	"grca/internal/rollup"
)

// The live Result Browser (paper §II-F): breakdown tables, trending,
// cause filtering, drill-down, and the SSE diagnosis stream. Breakdown
// and trend answer from the incremental rollups maintained on the
// ingest/diagnose path (internal/rollup); the only per-request diagnosis
// work is the handful of symptoms still inside their grace window.

var mBrowserSecs = obs.GetHistogram("server.http.browser.seconds", obs.LatencyBuckets)

// StreamDiagnosisJSON is one diagnosis on the Result Browser stream: a
// DiagnosisJSON plus its stream sequence number (the SSE event id).
type StreamDiagnosisJSON struct {
	Seq int64 `json:"seq"`
	DiagnosisJSON
}

// streamFrame renders one ring entry as a complete SSE frame.
func streamFrame(e rollup.Entry) []byte {
	dj := diagnosisJSON(e.D)
	dj.App = e.App
	body, err := json.Marshal(StreamDiagnosisJSON{Seq: e.Seq, DiagnosisJSON: dj})
	if err != nil {
		return nil
	}
	return []byte(fmt.Sprintf("id: %d\nevent: diagnosis\ndata: %s\n\n", e.Seq, body))
}

// browserApp resolves the app query parameter to its display mapping,
// writing the error response itself on failure.
func (s *Server) browserApp(w http.ResponseWriter, r *http.Request) (string, func(string) string, bool) {
	if !s.isFinalized() {
		writeErr(w, http.StatusConflict, "not finalized: POST /v1/finalize first")
		return "", nil, false
	}
	app := r.URL.Query().Get("app")
	for _, a := range appSpecs() {
		if a.name == app {
			return app, a.display, true
		}
	}
	if app == "" {
		writeErr(w, http.StatusBadRequest, "app parameter required")
	} else {
		writeErr(w, http.StatusBadRequest, "unknown application %q", app)
	}
	return "", nil, false
}

// pendingDiagnoses diagnoses, on demand, the symptoms still pending in
// app's realtime processor — the delta between the rollup counters and
// the full store that BreakdownCounts/CauseTrend merge back in.
func (s *Server) pendingDiagnoses(app string) []engine.Diagnosis {
	s.mu.RLock()
	p := s.procs[app]
	eng := s.engines[app]
	s.mu.RUnlock()
	if p == nil || eng == nil {
		return nil
	}
	syms := p.PendingSymptoms()
	ds := make([]engine.Diagnosis, 0, len(syms))
	for _, sym := range syms {
		ds = append(ds, eng.Diagnose(sym))
	}
	return ds
}

// handleBreakdown serves GET /v1/breakdown?app=&window=: the root-cause
// breakdown table (display labels), equal to the batch browser.Breakdown
// over one full-evidence diagnosis of every live root symptom.
func (s *Server) handleBreakdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	app, display, ok := s.browserApp(w, r)
	if !ok {
		return
	}
	var from time.Time
	window := r.URL.Query().Get("window")
	if window != "" {
		d, err := time.ParseDuration(window)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad window %q (want a positive duration)", window)
			return
		}
		if _, last, ok := s.st.Span(); ok {
			from = last.Add(-d)
		}
	}
	counts, total := s.roll.BreakdownCounts(app, from, s.pendingDiagnoses(app))
	mapped := make(map[string]int, len(counts))
	for label, n := range counts {
		mapped[display(label)] += n
	}
	rows := browser.Rows(mapped, total)
	if rows == nil {
		rows = []browser.Row{}
	}
	resp := map[string]any{"app": app, "total": total, "rows": rows}
	if window != "" {
		resp["window"] = window
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCauses serves GET /v1/causes?app=: the raw root-cause labels
// (the filter/trend vocabulary) with live counts.
func (s *Server) handleCauses(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	app, _, ok := s.browserApp(w, r)
	if !ok {
		return
	}
	counts, total := s.roll.BreakdownCounts(app, time.Time{}, s.pendingDiagnoses(app))
	rows := browser.Rows(counts, total)
	if rows == nil {
		rows = []browser.Row{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"app": app, "total": total, "causes": rows})
}

// handleTrend serves GET /v1/trend: per-bin counts of an event name
// (?name=) or of a diagnosed cause (?app=&cause=, raw label) over
// [from, to]. bin must be a multiple of the rollup base bin; from is
// truncated onto the bin grid; defaults cover the store span, where the
// series equals the batch browser.Trend exactly.
func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	bin := s.roll.Bin()
	if v := q.Get("bin"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad bin %q (want a positive duration)", v)
			return
		}
		if d%s.roll.Bin() != 0 {
			writeErr(w, http.StatusBadRequest, "bin %v must be a multiple of the base bin %v", d, s.roll.Bin())
			return
		}
		bin = d
	}
	first, last, haveSpan := s.st.Span()
	from, to := first, last
	if v := q.Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad from %q: %v", v, err)
			return
		}
		from = t
	}
	if v := q.Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad to %q: %v", v, err)
			return
		}
		to = t
	}
	from = from.Truncate(bin)

	name, cause := q.Get("name"), q.Get("cause")
	var points []browser.TrendPoint
	resp := map[string]any{"bin": bin.String(), "from": from, "to": to}
	switch {
	case cause != "":
		app, _, ok := s.browserApp(w, r)
		if !ok {
			return
		}
		resp["app"], resp["cause"] = app, cause
		if haveSpan {
			points = s.roll.CauseTrend(app, cause, from, to, bin, s.pendingDiagnoses(app))
		}
	case name != "":
		resp["name"] = name
		if haveSpan {
			points = s.roll.Trend(name, from, to, bin)
		}
	default:
		writeErr(w, http.StatusBadRequest, "provide name= (event trend) or app=&cause= (cause trend)")
		return
	}
	if points == nil {
		points = []browser.TrendPoint{}
	}
	resp["points"] = points
	writeJSON(w, http.StatusOK, resp)
}

// drilldown defaults: how far around the symptom to look and at which
// spatial join level.
const (
	defaultDrillWindow = 15 * time.Minute
	defaultDrillLevel  = locus.Router
)

// handleDrilldown serves GET /v1/drilldown/{id}?app=&window=&level=: the
// full investigation view for one stored symptom — a traced diagnosis
// (evidence chain plus staged timings) and every co-located raw event
// within the window, the paper's §IV-B manual exploration.
func (s *Server) handleDrilldown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.isFinalized() {
		writeErr(w, http.StatusConflict, "not finalized: POST /v1/finalize first")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/drilldown/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad event id %q", idStr)
		return
	}
	sym, ok := s.st.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no event with id %d", id)
		return
	}
	q := r.URL.Query()
	app := q.Get("app")
	s.mu.RLock()
	view := s.view
	if app == "" {
		for _, a := range appSpecs() {
			if eng := s.engines[a.name]; eng != nil && eng.Graph.Root == sym.Name {
				app = a.name
				break
			}
		}
	}
	teng := s.traced[app]
	s.mu.RUnlock()
	if teng == nil {
		if app == "" {
			writeErr(w, http.StatusBadRequest,
				"event %d (%q) is no application's root symptom; pass app=", id, sym.Name)
		} else {
			writeErr(w, http.StatusBadRequest, "unknown application %q", app)
		}
		return
	}
	window := defaultDrillWindow
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "bad window %q", v)
			return
		}
		window = d
	}
	level := defaultDrillLevel
	if v := q.Get("level"); v != "" {
		t, err := locus.ParseType(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		level = t
	}
	d := teng.Diagnose(sym)
	colocated, err := browser.DrillDown(s.st, view, sym, window, level)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "drill-down: %v", err)
		return
	}
	evs := make([]EventJSON, 0, len(colocated))
	for _, in := range colocated {
		evs = append(evs, eventJSON(in))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "app": app,
		"window": window.String(), "level": level.String(),
		"diagnosis": diagnosisJSON(d),
		"trace":     d.Trace.JSON(),
		"colocated": evs,
	})
}

// handleRecent serves GET /v1/recent?after=&limit=: the ring of recent
// streaming diagnoses, the poll-based sibling of /v1/stream.
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	after := int64(0)
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = n
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	out := []StreamDiagnosisJSON{}
	for _, e := range s.roll.RecentSince(after, limit) {
		dj := diagnosisJSON(e.D)
		dj.App = e.App
		out = append(out, StreamDiagnosisJSON{Seq: e.Seq, DiagnosisJSON: dj})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": s.roll.LastSeq(), "diagnoses": out,
	})
}

// handleStream serves GET /v1/stream: fresh diagnoses over SSE. A client
// may catch up with ?after=<seq> (every ring entry past seq) or
// ?replay=<n> (the last n ring entries) before going live. Each client
// gets a bounded buffer; one that stops reading is evicted rather than
// backpressuring the ingest path, and reconnects from its last seen id.
// Deliberately not wrapped in the request timeout: the stream lives
// until the client leaves or the server drains.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	q := r.URL.Query()
	after := int64(-1)
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = n
	}
	if v := q.Get("replay"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad replay %q", v)
			return
		}
		if after = s.roll.LastSeq() - int64(n); after < 0 {
			after = 0
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so nothing published in between is
	// lost; duplicates from that overlap are dropped by sequence below.
	c := s.hub.subscribe()
	defer s.hub.unsubscribe(c)
	last := int64(0)
	if after >= 0 {
		last = after
		for _, e := range s.roll.RecentSince(after, 0) {
			if _, err := w.Write(streamFrame(e)); err != nil {
				return
			}
			last = e.Seq
		}
	} else {
		last = s.roll.LastSeq()
	}
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case m, ok := <-c.ch:
			if !ok {
				return // evicted as a slow consumer
			}
			if m.seq <= last {
				continue
			}
			if _, err := w.Write(m.frame); err != nil {
				return
			}
			last = m.seq
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}
