package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/wal"
	"grca/internal/wire"
)

// lifecycleOutcome captures everything externally observable about one
// complete life of the service: every ingest response body in order,
// the merged store digest, and the query surfaces the Result Browser
// and the diagnosis API serve.
type lifecycleOutcome struct {
	ingest    [][]byte
	digest    string
	events    int
	diagnose  map[string][]byte
	breakdown map[string][]byte
}

// lifecycleBatches builds the post-finalize event stream the harness
// replays identically against every shard count: EBGPFlap symptoms on
// real PERs (co-sharded with their PoP components by the lattice)
// interleaved with synthetic ticks on unknown routers (spread across
// shards by hash), so every batch exercises the cross-shard split and
// the streaming-diagnosis path.
func lifecycleBatches(b platform.Bundle) [][]EventJSON {
	at := b.Start.Add(b.Duration).Add(time.Hour)
	var batches [][]EventJSON
	for i := 0; i < 6; i++ {
		t0 := at.Add(time.Duration(i) * 10 * time.Minute)
		var evs []EventJSON
		evs = append(evs, EventJSON{
			Name: event.EBGPFlap, Start: t0, End: t0.Add(time.Minute),
			Loc: LocationJSON{Type: "router:neighbor",
				A: fmt.Sprintf("pop%02d-per%d", i%2, 1+i%2), B: fmt.Sprintf("10.99.%d.1", i)},
		})
		for j := 0; j < 8; j++ {
			evs = append(evs, EventJSON{
				Name: "synthetic tick", Start: t0.Add(time.Second), End: t0.Add(time.Second),
				Loc: LocationJSON{Type: "router", A: fmt.Sprintf("load-r%d", i*8+j)},
			})
		}
		batches = append(batches, evs)
	}
	// A far-future tick drains every pending grace window so the last
	// responses carry the remaining streaming diagnoses.
	drain := at.Add(96 * time.Hour)
	batches = append(batches, []EventJSON{{
		Name: "synthetic tick", Start: drain, End: drain,
		Loc: LocationJSON{Type: "router", A: "load-r0"},
	}})
	return batches
}

// driveLifecycle runs the full service life at one shard count and
// captures the outcome. The caller owns dir (reopened by restart tests).
func driveLifecycle(t *testing.T, dir string, b platform.Bundle, shards int) lifecycleOutcome {
	t.Helper()
	s, err := Open(Config{DataDir: dir, Bundle: b, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	out := lifecycleOutcome{diagnose: map[string][]byte{}, breakdown: map[string][]byte{}}
	record := func(code int, body []byte, what string) {
		if code != http.StatusOK {
			t.Fatalf("%s (shards=%d): %d %s", what, shards, code, body)
		}
		out.ingest = append(out.ingest, body)
	}
	for _, src := range feedOrder {
		feed, ok := b.Feeds[src]
		if !ok {
			continue
		}
		code, body := post(t, ts, "/v1/ingest", IngestRequest{Source: src, Lines: feed})
		record(code, body, "feed "+src)
	}
	code, body := post(t, ts, "/v1/finalize", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("finalize (shards=%d): %d %s", shards, code, body)
	}
	for i, evs := range lifecycleBatches(b) {
		if i%2 == 1 {
			// Odd batches ride the binary wire format so both journaled
			// event representations are under differential test.
			ins, err := decodeEvents(evs)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/ingest", wire.ContentType,
				bytes.NewReader(wire.AppendEvents(nil, ins)))
			if err != nil {
				t.Fatal(err)
			}
			wbody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			record(resp.StatusCode, wbody, fmt.Sprintf("wire event batch %d", i))
			continue
		}
		code, body := post(t, ts, "/v1/ingest", IngestRequest{Events: evs})
		record(code, body, fmt.Sprintf("event batch %d", i))
	}
	for _, app := range []string{"bgpflap", "cdn", "pim", "backbone"} {
		code, body := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: app, All: true})
		if code != http.StatusOK {
			t.Fatalf("diagnose %s (shards=%d): %d %s", app, shards, code, body)
		}
		out.diagnose[app] = body
		code, body = get(t, ts, "/v1/breakdown?app="+app)
		if code != http.StatusOK {
			t.Fatalf("breakdown %s (shards=%d): %d %s", app, shards, code, body)
		}
		out.breakdown[app] = body
	}
	out.digest = wal.StoreDigest(s.Store())
	out.events = s.Store().Len()
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedParityDifferential is the sharded pipeline's correctness
// gate: the same corpus driven through 1, 2, and 4 shards must be
// externally indistinguishable — every ingest response byte-identical
// (streaming diagnosis lists included), the merged store digest equal,
// and the diagnose/breakdown surfaces byte-identical.
func TestShardedParityDifferential(t *testing.T) {
	_, b := testBundle(t)
	base := driveLifecycle(t, t.TempDir(), b, 1)
	if base.events == 0 {
		t.Fatal("baseline stored no events")
	}
	for _, n := range []int{2, 4} {
		got := driveLifecycle(t, t.TempDir(), b, n)
		if got.digest != base.digest {
			t.Errorf("shards=%d: merged store digest differs (%d vs %d events)",
				n, got.events, base.events)
		}
		if len(got.ingest) != len(base.ingest) {
			t.Fatalf("shards=%d: %d ingest responses, want %d", n, len(got.ingest), len(base.ingest))
		}
		for i := range base.ingest {
			if !bytes.Equal(got.ingest[i], base.ingest[i]) {
				t.Errorf("shards=%d: ingest response %d differs:\n  got  %s\n  want %s",
					n, i, got.ingest[i], base.ingest[i])
			}
		}
		for app, want := range base.diagnose {
			if !bytes.Equal(got.diagnose[app], want) {
				t.Errorf("shards=%d: diagnose %s differs", n, app)
			}
		}
		for app, want := range base.breakdown {
			if !bytes.Equal(got.breakdown[app], want) {
				t.Errorf("shards=%d: breakdown %s differs", n, app)
			}
		}
	}
}

// TestShardedRestartAndPartialWALLoss: a sharded data dir must recover
// byte-identically after a clean restart, and — the crash-point
// property — after losing any subset of its shard WALs, which the
// journals rebuild. The digest must be stable across one more restart
// after the rebuild.
func TestShardedRestartAndPartialWALLoss(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	const shards = 3
	before := driveLifecycle(t, dir, b, shards)

	reopen := func(wantRebuilt bool, what string) string {
		t.Helper()
		s, err := Open(Config{DataDir: dir, Bundle: b, Shards: shards})
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		rec := s.Recovery()
		if !rec.Finalized || rec.Shards != shards {
			t.Fatalf("%s: recovery = %+v", what, rec)
		}
		if rec.WALRebuilt != wantRebuilt {
			t.Errorf("%s: WALRebuilt = %v, want %v", what, rec.WALRebuilt, wantRebuilt)
		}
		d := wal.StoreDigest(s.Store())
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return d
	}

	if d := reopen(false, "clean restart"); d != before.digest {
		t.Fatalf("clean restart changed the store digest")
	}
	// Lose shard WALs in growing subsets; each recovery must rebuild the
	// lost shards from the journals and land on the identical store.
	for _, lost := range [][]int{{1}, {0, 2}, {0, 1, 2}} {
		for _, i := range lost {
			for _, sub := range []string{"wal", "snap"} {
				if err := os.RemoveAll(filepath.Join(dir, fmt.Sprintf("shard-%d", i), sub)); err != nil {
					t.Fatal(err)
				}
			}
		}
		what := fmt.Sprintf("lost shards %v", lost)
		if d := reopen(true, what); d != before.digest {
			t.Fatalf("%s: recovered digest differs", what)
		}
		if d := reopen(false, what+" (second restart)"); d != before.digest {
			t.Fatalf("%s: digest not stable across a second restart", what)
		}
	}
}

// TestShardedConcurrentIngest hammers a 4-shard server from parallel
// clients (retrying 429s) and checks the pipeline's accounting: the
// store grows by exactly the acknowledged events, and a restart
// recovers the identical digest — under the race detector this is also
// the concurrency soak for dispatcher, appliers, and finisher.
func TestShardedConcurrentIngest(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Bundle: b, Shards: 4, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	loadAndFinalize(t, ts, b)
	before := s.Store().Len()

	const workers, batches, perBatch = 8, 30, 4
	at := b.Start.Add(b.Duration).Add(time.Hour)
	var acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				evs := make([]EventJSON, perBatch)
				for j := range evs {
					evs[j] = EventJSON{
						Name:  "synthetic tick",
						Start: at.Add(time.Duration(i) * time.Second),
						End:   at.Add(time.Duration(i) * time.Second),
						Loc:   LocationJSON{Type: "router", A: fmt.Sprintf("load-w%d-r%d", w, j)},
					}
				}
				data, err := json.Marshal(IngestRequest{Events: evs})
				if err != nil {
					t.Error(err)
					return
				}
				for {
					resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(data))
					if err != nil {
						t.Error(err)
						return
					}
					code := resp.StatusCode
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for reuse
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						time.Sleep(time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						t.Errorf("worker %d batch %d: status %d", w, i, code)
						return
					}
					acked.Add(perBatch)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := s.Store().Len()-before, int(acked.Load()); got != want {
		t.Fatalf("store grew by %d, acknowledged %d", got, want)
	}
	digest := wal.StoreDigest(s.Store())
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{DataDir: dir, Bundle: b, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := wal.StoreDigest(s2.Store()); got != digest {
		t.Fatal("restart after concurrent ingest changed the store digest")
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardCountPinned: a data directory refuses to reopen with a
// different shard count — the journals' interleave is a function of N.
func TestShardCountPinned(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Bundle: b, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{DataDir: dir, Bundle: b, Shards: 4}); err == nil {
		t.Fatal("reopening a 2-shard dir with 4 shards succeeded")
	}
}

// TestLegacyLayoutRefusesSharding: a pre-sharding data directory (state
// at the root, no SHARDS marker) is adopted as single-shard only.
// Opening it with more shards must refuse up front — stamping a
// multi-shard marker would silently orphan the root-level journal and
// WAL under the shard-<i>/ layout and pin the directory there.
func TestLegacyLayoutRefusesSharding(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	before := driveLifecycle(t, dir, b, 1)
	// Simulate a directory created before the marker existed.
	if err := os.Remove(filepath.Join(dir, "SHARDS")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{DataDir: dir, Bundle: b, Shards: 4}); err == nil {
		t.Fatal("opening a legacy single-shard dir with 4 shards succeeded")
	}
	// The refusal must not have stamped a marker: single-shard adoption
	// still recovers the full state.
	s, err := Open(Config{DataDir: dir, Bundle: b, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background()) //nolint:errcheck // test teardown
	if got := wal.StoreDigest(s.Store()); got != before.digest {
		t.Fatal("single-shard adoption of a legacy dir changed the store digest")
	}
}

// TestShardedTornJournalTail: a torn frame at the tail of one shard's
// journal (the batch never acknowledged) must truncate deterministically
// and leave a consistent, digest-stable store behind.
func TestShardedTornJournalTail(t *testing.T) {
	_, b := testBundle(t)
	dir := t.TempDir()
	const shards = 2
	before := driveLifecycle(t, dir, b, shards)

	// Append garbage (a torn partial frame) to each shard journal.
	for i := 0; i < shards; i++ {
		f, err := os.OpenFile(journalPath(filepath.Join(dir, fmt.Sprintf("shard-%d", i))),
			os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xFF, 0x13, 0x37}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Config{DataDir: dir, Bundle: b, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	got := wal.StoreDigest(s.Store())
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != before.digest {
		t.Fatal("torn journal tails changed the recovered store")
	}
}
