package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"grca/internal/obs"
	"grca/internal/wire"
)

// Per-endpoint latency and inflight-request metrics; 429s and queue
// depth live in pipeline.go.
var (
	mHTTPInflight = obs.GetGauge("server.http.inflight")
	mIngestSecs   = obs.GetHistogram("server.http.ingest.seconds", obs.LatencyBuckets)
	mDiagnoseSecs = obs.GetHistogram("server.http.diagnose.seconds", obs.LatencyBuckets)
	mEventsSecs   = obs.GetHistogram("server.http.events.seconds", obs.LatencyBuckets)
	mStatsSecs    = obs.GetHistogram("server.http.stats.seconds", obs.LatencyBuckets)
)

// maxBody bounds one request body (a feed batch of raw lines); matched
// to the collector's own 4MiB line-scanner ceiling with framing slack.
const maxBody = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/ingest         one batch of raw feed lines or normalized events
//	POST /v1/finalize       close the feeds, build the view, start serving
//	POST /v1/diagnose       diagnose one stored symptom (or all) for an app
//	GET  /v1/events         list stored events (?name=&limit=&after=)
//	GET  /v1/stats          phase, store, collector, and metrics snapshot
//	GET  /v1/breakdown      live root-cause breakdown (?app=&window=)
//	GET  /v1/trend          per-bin series (?name= | ?app=&cause=; &bin=&from=&to=)
//	GET  /v1/causes         raw cause labels with counts (?app=)
//	GET  /v1/drilldown/{id} traced diagnosis + co-located events (?app=&window=&level=)
//	GET  /v1/recent         recent streaming diagnoses (?after=&limit=)
//	GET  /v1/stream         SSE diagnosis stream (?after= | ?replay=)
//	GET  /browser/          embedded Result Browser dashboard
//	GET  /healthz           liveness + phase
//
// With Config.Debug, expvar and pprof are additionally mounted under
// /debug/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.timed(mIngestSecs, s.handleIngest))
	mux.HandleFunc("/v1/finalize", s.timed(mIngestSecs, s.handleFinalize))
	mux.HandleFunc("/v1/diagnose", s.timed(mDiagnoseSecs, s.handleDiagnose))
	mux.HandleFunc("/v1/events", s.timed(mEventsSecs, s.handleEvents))
	mux.HandleFunc("/v1/stats", s.timed(mStatsSecs, s.handleStats))
	mux.HandleFunc("/v1/breakdown", s.timed(mBrowserSecs, s.handleBreakdown))
	mux.HandleFunc("/v1/trend", s.timed(mBrowserSecs, s.handleTrend))
	mux.HandleFunc("/v1/causes", s.timed(mBrowserSecs, s.handleCauses))
	mux.HandleFunc("/v1/drilldown/", s.timed(mBrowserSecs, s.handleDrilldown))
	mux.HandleFunc("/v1/recent", s.timed(mBrowserSecs, s.handleRecent))
	// The stream outlives any request timeout; it is bounded by the
	// client and server lifetimes instead of s.timed.
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/replication/status", s.timed(mStatsSecs, s.handleReplStatus))
	mux.HandleFunc("/v1/replication/meta", s.timed(mStatsSecs, s.handleReplMeta))
	// Replication streams live until the follower disconnects, and a
	// promotion replays the whole journal history — none fit under the
	// request timeout.
	mux.HandleFunc("/v1/replication/journal", s.handleReplJournal)
	mux.HandleFunc("/v1/replication/wal", s.handleReplWAL)
	mux.HandleFunc("/v1/replication/promote", s.handleReplPromote)
	mux.HandleFunc("/browser/", s.handleDashboard)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Debug {
		mux.Handle("/debug/", obs.DebugMux())
	}
	// After a promotion the replica's old pipeline stays up for in-flight
	// requests, but every new request belongs to the promoted primary.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if node := s.promoted.Load(); node != nil {
			node.h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// timed wraps a handler with the inflight gauge, a request-scoped
// timeout, and a latency histogram.
func (s *Server) timed(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		began := obs.Now()
		mHTTPInflight.Add(1)
		defer mHTTPInflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		fn(w, r.WithContext(ctx))
		h.ObserveDuration(obs.Since(began))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.isFollower() {
		s.redirectToPrimary(w, r)
		return
	}
	var t task
	// Content negotiation: the compact binary batch format rides the same
	// endpoint under its own media type; everything else is the JSON
	// IngestRequest.
	if strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType) {
		body, err := readBody(w, r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		b, err := wire.Decode(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		switch b.Kind {
		case wire.KindFeed:
			if !knownSource(b.Source) {
				writeErr(w, http.StatusBadRequest, "unknown source %q", b.Source)
				return
			}
			t = task{kind: recFeed, source: b.Source, lines: []byte(b.Lines)}
		case wire.KindEvents:
			if len(b.Events) == 0 {
				writeErr(w, http.StatusBadRequest, "empty event batch")
				return
			}
			// The verbatim request bytes are the journal record: replay
			// re-decodes them, so the store recovers byte-identically
			// without a JSON round-trip.
			t = task{kind: recEventsWire, events: b.Events, raw: body}
		}
		s.finishIngest(w, r, t)
		return
	}
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	switch {
	case req.Source != "" && len(req.Events) == 0:
		if !knownSource(req.Source) {
			writeErr(w, http.StatusBadRequest, "unknown source %q", req.Source)
			return
		}
		t = task{kind: recFeed, source: req.Source, lines: []byte(req.Lines)}
	case req.Source == "" && len(req.Events) > 0:
		ins, err := decodeEvents(req.Events)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		raw, err := json.Marshal(req.Events)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		t = task{kind: recEvents, events: ins, raw: raw}
	default:
		writeErr(w, http.StatusBadRequest, "provide either source+lines or events")
		return
	}
	s.finishIngest(w, r, t)
}

// readBody reads the bounded request body in one allocation when the
// client sent a Content-Length (io.ReadAll's incremental growth copies a
// large batch several times over).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBody)
	if n := r.ContentLength; n > 0 && n <= maxBody {
		buf := make([]byte, n)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return io.ReadAll(rd)
}

func (s *Server) finishIngest(w http.ResponseWriter, r *http.Request, t task) {
	res := s.dispatch(r.Context(), t)
	if res.err != nil {
		if res.status == http.StatusTooManyRequests {
			// Retry-After is derived from the pipeline's current depth at
			// rejection time, so clients back off proportionally to the
			// overload instead of hammering a constant cadence.
			ra := res.retryAfter
			if ra < 1 {
				ra = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		writeErr(w, res.status, "%v", res.err)
		return
	}
	writeJSON(w, res.status, res.resp)
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.isFollower() {
		s.redirectToPrimary(w, r)
		return
	}
	res := s.dispatch(r.Context(), task{kind: recFinalize})
	if res.err != nil {
		writeErr(w, res.status, "%v", res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"phase": "serving"})
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DiagnoseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.RLock()
	finalized := s.finalized
	eng := s.engines[req.App]
	if req.Trace {
		eng = s.traced[req.App]
	}
	s.mu.RUnlock()
	if !finalized {
		writeErr(w, http.StatusConflict, "not finalized: POST /v1/finalize first")
		return
	}
	if eng == nil {
		writeErr(w, http.StatusBadRequest, "unknown application %q", req.App)
		return
	}
	resp := DiagnoseResponse{App: req.App, Diagnoses: []DiagnosisJSON{}}
	switch {
	case req.All:
		for _, d := range eng.DiagnoseAll() {
			resp.Diagnoses = append(resp.Diagnoses, diagnosisJSON(d))
		}
	default:
		sym, ok := s.st.Get(req.ID)
		if !ok {
			writeErr(w, http.StatusNotFound, "no event with id %d", req.ID)
			return
		}
		if sym.Name != eng.Graph.Root {
			writeErr(w, http.StatusBadRequest, "event %d is %q, not the %q symptom %q",
				req.ID, sym.Name, req.App, eng.Graph.Root)
			return
		}
		resp.Diagnoses = append(resp.Diagnoses, diagnosisJSON(eng.Diagnose(sym)))
	}
	writeJSON(w, http.StatusOK, resp)
}

// Event listing pagination: responses are bounded regardless of store
// size — a 100k-event store answers in pages, never one giant array.
const (
	defaultEventsPage = 1000
	maxEventsPage     = 10000
)

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" && !q.Has("limit") && !q.Has("after") {
		first, last, _ := s.st.Span()
		writeJSON(w, http.StatusOK, map[string]any{
			"names": s.st.Names(), "events": s.st.Len(),
			"span": map[string]any{"first": first, "last": last},
		})
		return
	}
	limit := defaultEventsPage
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		if n > 0 {
			limit = n
		}
	}
	if limit > maxEventsPage {
		limit = maxEventsPage
	}
	// Cursor: return live instances with ID > after, in insertion order;
	// resume from the returned next cursor.
	after := -1
	if v := q.Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = n
	}
	ins, more := s.st.ScanAfter(name, after, limit)
	out := make([]EventJSON, 0, len(ins))
	for _, in := range ins {
		out = append(out, eventJSON(in))
	}
	resp := map[string]any{"name": name, "events": out, "more": more}
	if more && len(ins) > 0 {
		resp["next"] = ins[len(ins)-1].ID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	first, last, _ := s.st.Span()
	phase := "loading"
	if s.isFinalized() {
		phase = "serving"
	}
	depth, capacity := s.queueTotals()
	writeJSON(w, http.StatusOK, map[string]any{
		"phase":    phase,
		"events":   s.st.Len(),
		"span":     map[string]any{"first": first, "last": last},
		"recovery": s.recovery,
		"sources":  s.coll.Summary(),
		"pipeline": map[string]any{
			"shards":         len(s.shards),
			"queue_depth":    depth,
			"queue_capacity": capacity,
		},
		"metrics": obs.Default().Snapshot(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	phase := "loading"
	if s.isFinalized() {
		phase = "serving"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "phase": phase})
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

// Start listens on addr and serves the API until Shutdown. It returns
// the bound address (addr may carry port 0).
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	//lint:ignore goroutinelife lifecycle lives in net/http: Shutdown/Close stops Serve via the listener
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: stop accepting work, let in-flight
// requests finish, drain every shard's queue and the finisher,
// force-drain the streaming processors, snapshot each shard, and close
// the WALs and journals. Safe to call once; the ctx bounds the HTTP
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.closing)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if s.isFollower() {
		return s.shutdownFollower(ctx, err)
	}
	// Closing the queues under dispatchMu excludes in-flight dispatchers:
	// anyone who passed the closing check has finished enqueueing before
	// we close, anyone after sees closing first.
	s.dispatchMu.Lock()
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.dispatchMu.Unlock()
	for _, sh := range s.shards {
		<-sh.done
	}
	close(s.finishQ)
	<-s.finishDone
	s.mu.RLock()
	procs := s.procs
	s.mu.RUnlock()
	for _, a := range appSpecs() {
		if p, ok := procs[a.name]; ok {
			p.Close()
		}
	}
	for _, sh := range s.shards {
		if e := sh.log.Snapshot(); e != nil && err == nil {
			err = e
		}
		if e := sh.log.Close(); e != nil && err == nil {
			err = e
		}
		if e := sh.jour.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
