package server

import (
	"sync"

	"grca/internal/obs"
)

var (
	mSSEClients = obs.GetGauge("server.sse.clients")
	mSSEEvicted = obs.GetCounter("server.sse.evicted")
	mSSESent    = obs.GetCounter("server.sse.sent")
)

// sseClientBuf bounds one subscriber's unread backlog. The publisher
// never blocks: a client that falls this far behind is evicted (its
// channel closed), because a diagnosis stream that backs up into the
// ingest path would turn one slow reader into service-wide
// backpressure. Evicted clients reconnect and catch up via ?after=.
const sseClientBuf = 64

// sseMsg is one published stream frame. Seq lets a freshly-subscribed
// handler skip frames it already served from the replay ring.
type sseMsg struct {
	seq   int64
	frame []byte
}

type sseClient struct {
	ch chan sseMsg
}

// sseHub fans diagnosis frames out to the connected /v1/stream clients.
// publish runs on the applier goroutine and must stay non-blocking.
type sseHub struct {
	mu      sync.Mutex
	clients map[*sseClient]struct{}
}

func newSSEHub() *sseHub {
	return &sseHub{clients: map[*sseClient]struct{}{}}
}

// active reports whether anyone is subscribed — lets the publisher skip
// frame marshaling when nobody is listening.
func (h *sseHub) active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients) > 0
}

func (h *sseHub) subscribe() *sseClient {
	c := &sseClient{ch: make(chan sseMsg, sseClientBuf)}
	h.mu.Lock()
	h.clients[c] = struct{}{}
	mSSEClients.Set(int64(len(h.clients)))
	h.mu.Unlock()
	return c
}

// unsubscribe detaches a client; safe to call after an eviction already
// removed it.
func (h *sseHub) unsubscribe(c *sseClient) {
	h.mu.Lock()
	if _, ok := h.clients[c]; ok {
		delete(h.clients, c)
		close(c.ch)
	}
	mSSEClients.Set(int64(len(h.clients)))
	h.mu.Unlock()
}

// publish delivers one frame to every subscriber without blocking: a
// client with a full buffer is evicted and its channel closed, which its
// handler observes as end-of-stream.
func (h *sseHub) publish(seq int64, frame []byte) {
	m := sseMsg{seq: seq, frame: frame}
	h.mu.Lock()
	for c := range h.clients {
		select {
		case c.ch <- m:
			mSSESent.Inc()
		default:
			delete(h.clients, c)
			close(c.ch)
			mSSEEvicted.Inc()
		}
	}
	mSSEClients.Set(int64(len(h.clients)))
	h.mu.Unlock()
}
